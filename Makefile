GO ?= go

.PHONY: all build vet test race check bench benchjson

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate: everything CI runs.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Refresh the committed hot-path benchmark record. The existing baseline
# ("before" section) is preserved so the comparison stays anchored to the
# pre-optimisation numbers.
benchjson:
	$(GO) run ./cmd/benchjson -keep-before -o BENCH_2.json
