GO ?= go

.PHONY: all build vet test race check bench benchjson bench5 bench6 bench7 bench8 bench9 benchregress smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate: everything CI runs.
check: vet build race smoke

# Loopback smoke of the network detection service (stapserve + staploadgen).
smoke:
	sh scripts/serve_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Refresh the committed hot-path benchmark record (now including the
# readahead/decode-worker sweep). BENCH_2.json's "after" section is the
# baseline: it captured the depth-1 pipeline just before the readahead
# work, so the comparison is exactly depth-1 vs the new I/O frontend.
benchjson:
	$(GO) run ./cmd/benchjson -before BENCH_2.json -o BENCH_3.json

# Refresh the committed auto-tuner sweep: fixed-even vs fixed-stapopt vs
# online-autotuned worker splits on the skewed scenarios. Historical —
# BENCH_5.json captured the compute-only solve; bench6 supersedes it.
bench5:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkAutoTune' -benchtime 1x -o BENCH_5.json

# Refresh the committed auto-tuner sweep with the joint I/O + compute
# solve: the slowstore scenario now starts from a cold depth-1 frontend
# and the tuner trades budget between compute workers and the I/O knobs.
# Median of three runs; BENCH_5.json rides along as the before section.
bench6:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkAutoTune' -benchtime 1x -repeat 3 -before BENCH_5.json -o BENCH_6.json

# Refresh the committed streaming-ingest record: framed vs streamed
# submission over loopback TCP at a fixed CPI count, plus the
# slow-producer autotune scenario over synchronous in-process pipes
# (cold-start vs converged arrival rate, warmup-x is the tuner's gain).
# Median of three runs.
bench7:
	$(GO) run ./cmd/benchjson -pkg ./internal/serve -bench 'BenchmarkServeFramedLoopback|BenchmarkServeStreamLoopback|BenchmarkServeStreamAutotune' -benchtime 1x -repeat 3 -o BENCH_7.json

# Refresh the committed out-of-core record: one chunked striped dataset
# processed unlimited, under a quarter-of-peak budget with the spill tier
# armed, and through the banded executor in less memory than one cube's
# residency. Median of three runs.
bench8:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkOutOfCore' -benchtime 1x -repeat 3 -o BENCH_8.json

# Refresh the committed blocked-kernel record: the compute kernel
# microbenchmarks (FFT, Doppler, covariance, weights, beamform, pulse
# compression) plus the real-pipeline I/O designs at the default benchtime,
# and the autotuner sweep at one-CPI granularity, merged into one artifact.
# Median of three runs each; the existing before section is preserved.
bench9:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkKernel|BenchmarkRealPipelineIODesigns' -repeat 3 -o .bench9-kernels.tmp.json
	$(GO) run ./cmd/benchjson -bench 'BenchmarkAutoTune' -benchtime 1x -repeat 3 -o .bench9-autotune.tmp.json
	$(GO) run ./cmd/benchjson -merge .bench9-kernels.tmp.json,.bench9-autotune.tmp.json -keep-before -o BENCH_9.json
	rm -f .bench9-kernels.tmp.json .bench9-autotune.tmp.json

# Rerun the sweep and diff its steady throughput against the committed
# baselines. The embedded-I/O scenarios are gated (>25% loss fails); the
# slowstore scenario stays annotate-only.
benchregress:
	sh scripts/bench_regress.sh
