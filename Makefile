GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate: everything CI runs.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
