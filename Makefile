GO ?= go

.PHONY: all build vet test race check bench benchjson bench5 benchregress smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-commit gate: everything CI runs.
check: vet build race smoke

# Loopback smoke of the network detection service (stapserve + staploadgen).
smoke:
	sh scripts/serve_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Refresh the committed hot-path benchmark record (now including the
# readahead/decode-worker sweep). BENCH_2.json's "after" section is the
# baseline: it captured the depth-1 pipeline just before the readahead
# work, so the comparison is exactly depth-1 vs the new I/O frontend.
benchjson:
	$(GO) run ./cmd/benchjson -before BENCH_2.json -o BENCH_3.json

# Refresh the committed auto-tuner sweep: fixed-even vs fixed-stapopt vs
# online-autotuned worker splits on the skewed scenarios.
bench5:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkAutoTune' -benchtime 1x -o BENCH_5.json

# Rerun the sweep and diff its steady throughput against the committed
# baselines (never fails on timing alone).
benchregress:
	sh scripts/bench_regress.sh
