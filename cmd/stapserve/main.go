// Command stapserve runs the STAP pipeline as a long-running network
// detection service: producers stream CPI cubes over TCP (see the serve
// package's wire protocol) and receive their detection reports on the same
// connection.
//
//	stapserve                                      # small scenario on :7420
//	stapserve -addr :9000 -replicas 2 -inflight 16
//	stapserve -scenario paper -http 127.0.0.1:7421
//	stapserve -addr 127.0.0.1:0 -announce /tmp/addr # scripts: port 0 + file
//
// SIGINT/SIGTERM drain gracefully: new submits are rejected, in-flight CPIs
// finish and flush, then the process exits with a stats summary. A second
// signal during the drain aborts immediately with exit status 2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stapio/internal/membudget"
	"stapio/internal/radar"
	"stapio/internal/serve"
	"stapio/internal/stap"
	"stapio/internal/tune"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7420", "TCP listen address for CPI ingest (port 0 picks a free port)")
		httpAddr = flag.String("http", "", "HTTP listen address for /healthz and /stats (empty disables)")
		scenario = flag.String("scenario", "small", "cube geometry the service processes: small | paper")
		replicas = flag.Int("replicas", 1, "pipeline replicas CPIs are dispatched across")
		inflight = flag.Int("inflight", 0, "admission window: max CPIs in flight (0 = 4 per replica)")
		workers  = flag.Int("workers", 1, "worker goroutines per pipeline task")
		combine  = flag.Bool("combine", false, "merge the pulse-compression and CFAR stages")
		repairs  = flag.Int("repair-rounds", 2, "chunk re-request rounds before a corrupt CPI is rejected")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight CPIs")
		announce = flag.String("announce", "", "write the bound TCP and HTTP addresses to this file once listening")
		tuneBud  = flag.Int("autotune-budget", 0, "give each replica an online worker rebalancer with this worker budget (0 disables; -1 tunes from the -workers split)")
		memBud   = flag.String("membudget", "", `server-wide hard byte budget for cube + intermediate residency, split evenly across replicas, e.g. "512M" (empty = unlimited; residency is still tracked)`)
	)
	flag.Parse()

	s, err := scenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	p := stap.DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth

	cfg := serve.Config{
		Params:        p,
		Replicas:      *replicas,
		MaxInFlight:   *inflight,
		CombinePCCFAR: *combine,
		RepairRounds:  *repairs,
	}
	for _, n := range []*int{
		&cfg.Workers.Doppler, &cfg.Workers.EasyWeight, &cfg.Workers.HardWeight,
		&cfg.Workers.EasyBF, &cfg.Workers.HardBF, &cfg.Workers.PulseComp, &cfg.Workers.CFAR,
	} {
		*n = *workers
	}
	switch {
	case *tuneBud > 0:
		cfg.AutoTune = &tune.Config{Budget: *tuneBud}
	case *tuneBud < 0:
		cfg.AutoTune = &tune.Config{} // budget = sum of the -workers split
	}
	if *memBud != "" {
		n, err := membudget.ParseBytes(*memBud)
		if err != nil {
			fatal(err)
		}
		cfg.MemBudget = n
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(*addr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "stapserve: ingest on %s (%s cubes %v, %d replica(s))\n",
		srv.Addr(), *scenario, s.Dims, *replicas)
	if cfg.MemBudget > 0 {
		fmt.Fprintf(os.Stderr, "stapserve: memory budget %s (%s per replica)\n",
			membudget.FormatBytes(cfg.MemBudget), membudget.FormatBytes(cfg.MemBudget/int64(*replicas)))
	}

	var httpLn net.Listener
	if *httpAddr != "" {
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		go http.Serve(httpLn, srv.StatsHandler())
		fmt.Fprintf(os.Stderr, "stapserve: stats on http://%s/stats\n", httpLn.Addr())
	}
	if *announce != "" {
		lines := srv.Addr().String() + "\n"
		if httpLn != nil {
			lines += httpLn.Addr().String() + "\n"
		}
		if err := os.WriteFile(*announce, []byte(lines), 0o644); err != nil {
			fatal(err)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "stapserve: draining... (again to abort)")
	// A second signal during the drain aborts immediately — operators (and
	// the chaos harness) must always have a fast way out.
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "stapserve: aborted")
		os.Exit(2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := srv.Shutdown(ctx)
	if httpLn != nil {
		httpLn.Close()
	}

	st := srv.Stats()
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(st)
	if shutdownErr != nil {
		fatal(shutdownErr)
	}
}

func scenarioByName(name string) (*radar.Scenario, error) {
	switch name {
	case "small":
		return radar.SmallTestScenario(), nil
	case "paper":
		return radar.PaperScenario(), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (want small or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stapserve:", err)
	os.Exit(1)
}
