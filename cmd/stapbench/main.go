// Command stapbench regenerates every table and figure of the paper's
// evaluation section on the simulated machines:
//
//	stapbench -all                 # everything
//	stapbench -table 1             # Table 1 (embedded I/O)
//	stapbench -table 4             # Table 4 (latency improvement)
//	stapbench -figure 8            # Figure 8 (with/without combining)
//	stapbench -all -csv out/       # additionally write CSV files
//	stapbench -cpis 120 -summary   # longer runs, summary tables only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"stapio/internal/experiments"
	"stapio/internal/pipesim"
	"stapio/internal/report"
)

func main() {
	var (
		table     = flag.Int("table", 0, "render one table (1-4; 5 = optimizer extension; 6 = fault-injection sweep)")
		figure    = flag.Int("figure", 0, "render one figure (5-8)")
		all       = flag.Bool("all", false, "render every table and figure")
		summary   = flag.Bool("summary", false, "print compact summary tables instead of per-task rows")
		cpis      = flag.Int("cpis", 60, "CPIs per simulation run")
		warmup    = flag.Int("warmup", 12, "warmup CPIs excluded from statistics")
		csvDir    = flag.String("csv", "", "also write tables as CSV into this directory")
		timeline  = flag.Bool("timeline", false, "render an execution timeline (Gantt) instead of tables")
		setupIdx  = flag.Int("setup", 0, "timeline: setup index (0 PFS-16, 1 PFS-64, 2 PIOFS)")
		caseIdx   = flag.Int("case", 2, "timeline: node case index (0=50, 1=100, 2=200 nodes)")
		design    = flag.String("design", "embedded", "timeline/graph: embedded | separate | combined")
		graph     = flag.Bool("graph", false, "print the pipeline task graph (the paper's figures 2-4) and exit")
		faultSeed = flag.Int64("faultseed", 42, "table 6: fault-plan seed")
	)
	flag.Parse()
	if *graph {
		d, err := parseDesign(*design)
		if err != nil {
			fatal(err)
		}
		p, err := experiments.Build(d, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Print(p.Describe())
		return
	}
	if *timeline {
		renderTimeline(*setupIdx, *caseIdx, *design)
		return
	}
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opts := pipesim.Options{CPIs: *cpis, Warmup: *warmup, PrefetchDepth: 1, BufferDepth: 2}

	run := func(d experiments.Design) *experiments.Grid {
		g, err := experiments.RunGrid(d, opts)
		if err != nil {
			fatal(err)
		}
		return g
	}

	var emb, sep, comb *experiments.Grid
	need := func(d experiments.Design) *experiments.Grid {
		switch d {
		case experiments.Embedded:
			if emb == nil {
				emb = run(d)
			}
			return emb
		case experiments.Separate:
			if sep == nil {
				sep = run(d)
			}
			return sep
		default:
			if comb == nil {
				comb = run(d)
			}
			return comb
		}
	}

	emit := func(t *report.Table) {
		t.Render(os.Stdout)
		fmt.Println()
		if *csvDir != "" {
			writeCSV(*csvDir, t)
		}
	}
	taskOrSummary := func(g *experiments.Grid, title string) *report.Table {
		if *summary {
			return experiments.SummaryTable(g, title)
		}
		return experiments.TaskTable(g, title)
	}

	doTable := func(n int) {
		switch n {
		case 1:
			emit(taskOrSummary(need(experiments.Embedded),
				"Table 1: performance with the I/O embedded in the Doppler filter processing task"))
		case 2:
			emit(taskOrSummary(need(experiments.Separate),
				"Table 2: performance with the I/O implemented as a separate task"))
		case 3:
			emit(taskOrSummary(need(experiments.Combined),
				"Table 3: performance with pulse compression and CFAR tasks combined"))
		case 4:
			t, err := experiments.ImprovementTable(need(experiments.Embedded), need(experiments.Combined))
			if err != nil {
				fatal(err)
			}
			emit(t)
		case 5:
			oc, err := experiments.RunOptimized(need(experiments.Embedded), opts)
			if err != nil {
				fatal(err)
			}
			emit(oc.Table())
		case 6:
			sw, err := experiments.RunFaultSweep(nil, *faultSeed, opts)
			if err != nil {
				fatal(err)
			}
			emit(experiments.FaultTable(sw,
				"Table 6: throughput and latency under injected stripe-server faults (embedded I/O, case 3)"))
		default:
			fatal(fmt.Errorf("no table %d (the paper has tables 1-4; 5-6 are this library's extensions)", n))
		}
	}
	doFigure := func(n int) {
		var thr, lat *report.BarChart
		switch n {
		case 5:
			thr, lat = experiments.Figure(need(experiments.Embedded), "Figure 5 (embedded I/O)")
		case 6:
			thr, lat = experiments.Figure(need(experiments.Separate), "Figure 6 (separate I/O task)")
		case 7:
			thr, lat = experiments.Figure(need(experiments.Combined), "Figure 7 (PC+CFAR combined)")
		case 8:
			thr, lat = experiments.Figure8(need(experiments.Embedded), need(experiments.Combined))
		default:
			fatal(fmt.Errorf("no figure %d (the paper's result figures are 5-8)", n))
		}
		thr.Render(os.Stdout)
		fmt.Println()
		lat.Render(os.Stdout)
		fmt.Println()
	}

	switch {
	case *all:
		for n := 1; n <= 4; n++ {
			doTable(n)
		}
		for n := 5; n <= 8; n++ {
			doFigure(n)
		}
	case *table != 0:
		doTable(*table)
	case *figure != 0:
		doFigure(*figure)
	}
}

// renderTimeline traces one configuration and prints its steady-state
// schedule as an ASCII Gantt chart.
func renderTimeline(setupIdx, caseIdx int, designName string) {
	setups := experiments.Setups()
	cases := experiments.Cases()
	if setupIdx < 0 || setupIdx >= len(setups) || caseIdx < 0 || caseIdx >= len(cases) {
		fatal(fmt.Errorf("setup %d / case %d out of range", setupIdx, caseIdx))
	}
	d, err := parseDesign(designName)
	if err != nil {
		fatal(err)
	}
	s := setups[setupIdx]
	c := cases[caseIdx]
	p, err := experiments.Build(d, c.Scale)
	if err != nil {
		fatal(err)
	}
	opts := pipesim.Options{CPIs: 24, Warmup: 8, PrefetchDepth: 1, BufferDepth: 2, Trace: true}
	res, err := pipesim.Run(p, s.Prof, s.FS, opts)
	if err != nil {
		fatal(err)
	}
	// Window: a few steady-state periods in the middle of the run.
	period := 1 / res.Throughput
	from := res.Horizon - 6*period
	if from < 0 {
		from = 0
	}
	title := fmt.Sprintf("Execution timeline — %s, %s, %s (r=read-wait == recv # compute > send w=write-wait . idle)",
		d, s.Label, c.Label)
	g := experiments.TimelineChart(res, title, from, res.Horizon)
	g.Width = 110
	g.Render(os.Stdout)
	fmt.Printf("\nthroughput %.2f CPIs/s, latency %.3f s, busiest stripe server %.0f%% utilised\n",
		res.Throughput, res.Latency, res.FSBusiestUtilization*100)
}

func parseDesign(name string) (experiments.Design, error) {
	switch name {
	case "embedded":
		return experiments.Embedded, nil
	case "separate":
		return experiments.Separate, nil
	case "combined":
		return experiments.Combined, nil
	default:
		return 0, fmt.Errorf("unknown design %q", name)
	}
}

func writeCSV(dir string, t *report.Table) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, strings.SplitN(t.Title, ":", 2)[0])
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stapbench:", err)
	os.Exit(1)
}
