// Command staploadgen is a closed-loop load generator for the stapserve
// detection service: it replays a pre-encoded radar dataset over TCP,
// keeping a fixed number of CPIs in flight, and reports the sustained
// throughput and the submit-to-result latency percentiles.
//
//	staploadgen -addr 127.0.0.1:7420 -n 500
//	staploadgen -addr 127.0.0.1:7420 -n 500 -window 4 -json BENCH_4.json
//	staploadgen -addr 127.0.0.1:7420 -faults corrupt=0.1,seed=7
//
// The generator pre-encodes a small set of distinct CPIs once (generation
// is far slower than the pipeline) and replays them round-robin, restamping
// each submission's sequence number. With -faults it corrupts payload
// chunks on the wire, exercising the server's chunk re-request repair; a
// repaired CPI still counts as delivered, not dropped.
//
// Exit status is non-zero if any CPI was dropped (rejected or unanswered),
// so scripts can assert lossless runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7420", "detection service address")
		scenario  = flag.String("scenario", "small", "cube geometry to replay: small | paper")
		n         = flag.Int("n", 500, "CPIs to submit")
		window    = flag.Int("window", 0, "CPIs kept in flight (0 = the server's advertised capacity)")
		templates = flag.Int("templates", 8, "distinct pre-encoded CPIs replayed round-robin")
		chunk     = flag.Int("chunk", 4096, "cube chunk size in bytes (multiple of 8)")
		faultSpec = flag.String("faults", "", "wire fault spec, e.g. corrupt=0.1,seed=7 (empty = clean)")
		jsonOut   = flag.String("json", "", "append the run to this JSON report file")
		phaseK    = flag.Int("phasek", 0, "per-phase window: also report steady throughput over the first K and last K results (0 = n/4, min 2) — shows tuner convergence, not just the average")
	)
	flag.Parse()

	s, err := scenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	plan, err := pfs.ParseFaultSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	tc := *templates
	if tc > *n {
		tc = *n
	}
	frames, err := radar.EncodeCPIs(s, tc, *chunk)
	if err != nil {
		fatal(err)
	}

	cl, err := serve.Dial(*addr, serve.Options{Dims: s.Dims, Faults: plan, ResultBuffer: 256})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	w := *window
	if w < 1 || w > cl.MaxInFlight() {
		w = cl.MaxInFlight()
	}
	run, err := drive(cl, frames, *n, w, *phaseK)
	if err != nil {
		fatal(err)
	}
	run.Addr = *addr
	run.Scenario = *scenario
	run.ChunkSize = *chunk
	run.Faults = *faultSpec
	run.Timestamp = time.Now().UTC().Format(time.RFC3339)

	fmt.Printf("submitted %d CPIs in %.2fs: %.0f CPIs/s, latency p50 %.3fms p90 %.3fms p99 %.3fms max %.3fms\n",
		run.CPIs, run.WallSeconds, run.Throughput,
		run.LatencyMs["p50"], run.LatencyMs["p90"], run.LatencyMs["p99"], run.LatencyMs["max"])
	if run.PhaseK > 0 {
		fmt.Printf("phases (K=%d): first-K %.0f CPIs/s, last-K %.0f CPIs/s (steady %.0f)\n",
			run.PhaseK, run.SteadyFirst, run.SteadyLast, run.Steady)
	}
	if run.Repaired > 0 || run.Injected > 0 {
		fmt.Printf("repair: %d corruptions injected, %d repair requests served, %d chunks re-sent\n",
			run.Injected, run.RepairReqs, run.ChunkResends)
	}
	if *jsonOut != "" {
		if err := appendRun(*jsonOut, run); err != nil {
			fatal(err)
		}
	}
	if run.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "staploadgen: %d of %d CPIs dropped\n", run.Dropped, run.CPIs)
		os.Exit(1)
	}
}

// Run is one load-generation run, as appended to the JSON report.
type Run struct {
	Timestamp   string  `json:"timestamp"`
	Addr        string  `json:"addr"`
	Scenario    string  `json:"scenario"`
	CPIs        int     `json:"cpis"`
	Window      int     `json:"window"`
	ChunkSize   int     `json:"chunk_size"`
	Faults      string  `json:"faults,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_cpi_per_s"`
	// Steady is the BENCH_3-comparable steady-state rate: results-per-second
	// between the first and last result arrival, excluding connect/ramp.
	Steady float64 `json:"steady_cpi_per_s"`
	// PhaseK splits the run into phases of K results; SteadyFirst/SteadyLast
	// are the arrival rates over the first and last K. Against an autotuned
	// server the gap is the tuner's convergence gain — the last-K rate is the
	// post-convergence throughput, where Steady averages the cold split in.
	PhaseK      int                `json:"phase_k,omitempty"`
	SteadyFirst float64            `json:"steady_first_cpi_per_s,omitempty"`
	SteadyLast  float64            `json:"steady_last_cpi_per_s,omitempty"`
	LatencyMs   map[string]float64 `json:"latency_ms"`
	ServerMs    map[string]float64 `json:"server_latency_ms"`
	Dropped     int                `json:"dropped"`

	Injected     int64 `json:"corruptions_injected,omitempty"`
	RepairReqs   int64 `json:"repair_reqs,omitempty"`
	ChunkResends int64 `json:"chunk_resends,omitempty"`
	Repaired     int64 `json:"repaired,omitempty"`
}

// drive replays the frames closed-loop and gathers the statistics.
func drive(cl *serve.Client, frames [][]byte, n, window, phaseK int) (*Run, error) {
	sem := make(chan struct{}, window)
	latencies := make([]time.Duration, 0, n)
	serverLat := make([]time.Duration, 0, n)
	arrivals := make([]time.Time, 0, n)
	dropped := 0
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		got := 0
		for r := range cl.Results() {
			if r.Err != nil {
				dropped++
				fmt.Fprintf(os.Stderr, "staploadgen: CPI %d: %v\n", r.Seq, r.Err)
			} else {
				latencies = append(latencies, r.Latency)
				serverLat = append(serverLat, r.ServerLatency)
				arrivals = append(arrivals, time.Now())
			}
			<-sem
			if got++; got == n {
				return
			}
		}
	}()

	start := time.Now()
	for seq := 0; seq < n; seq++ {
		// The submitted buffer must stay untouched until its result is in,
		// so each in-flight CPI gets its own copy of the template,
		// restamped with its sequence number.
		frame := append([]byte(nil), frames[seq%len(frames)]...)
		if err := cube.PatchSeq(frame, uint64(seq)); err != nil {
			return nil, err
		}
		sem <- struct{}{}
		if _, err := cl.Submit(frame); err != nil {
			return nil, fmt.Errorf("submit CPI %d: %w", seq, err)
		}
	}
	<-collected
	wall := time.Since(start)

	run := &Run{
		CPIs:        n,
		Window:      window,
		WallSeconds: wall.Seconds(),
		Throughput:  float64(n) / wall.Seconds(),
		LatencyMs:   percentilesMs(latencies),
		ServerMs:    percentilesMs(serverLat),
		Dropped:     dropped,
	}
	if len(arrivals) > 1 {
		if span := arrivals[len(arrivals)-1].Sub(arrivals[0]).Seconds(); span > 0 {
			run.Steady = float64(len(arrivals)-1) / span
		}
	}
	if k := phaseWindow(phaseK, len(arrivals)); k > 0 {
		run.PhaseK = k
		run.SteadyFirst = arrivalRate(arrivals[:k])
		run.SteadyLast = arrivalRate(arrivals[len(arrivals)-k:])
	}
	run.RepairReqs, run.ChunkResends, run.Injected = cl.RepairStats()
	run.Repaired = cl.RepairedFrames()
	return run, nil
}

// phaseWindow resolves the -phasek flag: 0 defaults to a quarter of the
// delivered results, the window never drops below 2 results or exceeds
// what was delivered, and fewer than 4 results carry no phase signal.
func phaseWindow(k, delivered int) int {
	if delivered < 4 {
		return 0
	}
	if k <= 0 {
		k = delivered / 4
	}
	if k < 2 {
		k = 2
	}
	if k > delivered {
		k = delivered
	}
	return k
}

// arrivalRate is results-per-second across a window of arrival times.
func arrivalRate(a []time.Time) float64 {
	if len(a) < 2 {
		return 0
	}
	span := a[len(a)-1].Sub(a[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(a)-1) / span
}

// percentilesMs summarises latencies in milliseconds.
func percentilesMs(d []time.Duration) map[string]float64 {
	out := map[string]float64{"p50": 0, "p90": 0, "p99": 0, "max": 0}
	if len(d) == 0 {
		return out
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(d)-1))
		return float64(d[i]) / float64(time.Millisecond)
	}
	out["p50"] = at(0.50)
	out["p90"] = at(0.90)
	out["p99"] = at(0.99)
	out["max"] = float64(d[len(d)-1]) / float64(time.Millisecond)
	return out
}

// report is the committed artifact: an append-only list of runs.
type report struct {
	Runs []*Run `json:"runs"`
}

func appendRun(path string, run *Run) error {
	var doc report
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Runs = append(doc.Runs, run)
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func scenarioByName(name string) (*radar.Scenario, error) {
	switch name {
	case "small":
		return radar.SmallTestScenario(), nil
	case "paper":
		return radar.PaperScenario(), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (want small or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "staploadgen:", err)
	os.Exit(1)
}
