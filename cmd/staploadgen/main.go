// Command staploadgen is a closed-loop load generator for the stapserve
// detection service: it replays a pre-encoded radar dataset over TCP,
// keeping a fixed number of CPIs in flight, and reports the sustained
// throughput and the submit-to-result latency percentiles.
//
//	staploadgen -addr 127.0.0.1:7420 -n 500
//	staploadgen -addr 127.0.0.1:7420 -n 500 -window 4 -json BENCH_4.json
//	staploadgen -addr 127.0.0.1:7420 -faults corrupt=0.1,seed=7
//	staploadgen -addr 127.0.0.1:7420 -stream -chunkpace 200us
//	staploadgen -addr 127.0.0.1:7420 -arrivals poisson -rate 400 -n 2000
//	staploadgen -addr host1:7420,host2:7420,host3:7420 -n 1000
//
// With one -addr the generator drives a single serve.Client directly.
// With several (comma-separated), it drives a fleet.Client instead: CPIs
// are routed by rendezvous hashing, failures fail over between servers
// with per-server circuit breakers, and the run reports per-server latency
// percentiles plus the fleet's failover/retry/breaker counters — this is
// the harness the chaos smoke test kills servers under. -health supplies
// the matching /healthz endpoints so open breakers can probe for recovery.
//
// The generator pre-encodes a small set of distinct CPIs once (generation
// is far slower than the pipeline) and replays them round-robin, restamping
// each submission's sequence number. With -faults it corrupts payload
// chunks on the wire, exercising the server's chunk re-request repair; a
// repaired CPI still counts as delivered, not dropped. With -stream the
// cubes cross the wire chunk-by-chunk (no file image server-side);
// -chunkpace additionally throttles the chunk stream to model a slow
// front-end producer.
//
// The default arrival process is closed-loop: the next submit waits for a
// free window slot, so offered load tracks service rate. -arrivals poisson
// switches to an open-loop process: submissions fire on a pre-drawn,
// seeded exponential schedule at -rate CPIs/s regardless of completions
// (still bounded by the admission window — when the service falls behind,
// the generator blocks and the latency percentiles show the queueing).
//
// Exit status is non-zero if any CPI was dropped (rejected or unanswered).
// In fleet mode, -tolerate downgrades typed per-CPI failures (e.g. a CPI
// abandoned on a crashed server) to warnings — only an unanswered CPI (a
// hang, which the fleet client is designed to never produce) still fails
// the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
	"stapio/internal/fleet"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7420", "detection service address(es), comma-separated; more than one drives the fleet client")
		health    = flag.String("health", "", "matching /healthz HTTP address(es), comma-separated, for breaker recovery probes (fleet mode)")
		scenario  = flag.String("scenario", "small", "cube geometry to replay: small | paper")
		n         = flag.Int("n", 500, "CPIs to submit")
		window    = flag.Int("window", 0, "CPIs kept in flight (0 = the advertised capacity)")
		templates = flag.Int("templates", 8, "distinct pre-encoded CPIs replayed round-robin")
		chunk     = flag.Int("chunk", 4096, "cube chunk size in bytes (multiple of 8)")
		faultSpec = flag.String("faults", "", "wire fault spec, e.g. corrupt=0.1,seed=7 (empty = clean)")
		stream    = flag.Bool("stream", false, "chunk-streamed submits: cubes cross the wire chunk-by-chunk and decode server-side without a file image")
		chunkPace = flag.Duration("chunkpace", 0, "minimum delay between streamed chunks, modelling a slow producer (requires -stream)")
		arrivals  = flag.String("arrivals", "closed", "arrival process: closed (next submit waits for a window slot) | poisson (open-loop exponential inter-arrivals at -rate)")
		rate      = flag.Float64("rate", 0, "offered arrival rate in CPIs/s for -arrivals poisson")
		seed      = flag.Int64("seed", 1, "arrival-process RNG seed")
		jsonOut   = flag.String("json", "", "append the run to this JSON report file")
		phaseK    = flag.Int("phasek", 0, "per-phase window: also report steady throughput over the first K and last K results (0 = n/4, min 2) — shows tuner convergence, not just the average")
		pace      = flag.Duration("pace", 0, "minimum delay between submissions (stretches the run so chaos events land mid-load)")
		deadline  = flag.Duration("deadline", 15*time.Second, "per-CPI deadline budget across retries (fleet mode)")
		retries   = flag.Int("retries", 4, "max submit attempts per CPI across the fleet")
		cooldown  = flag.Duration("breaker-cooldown", time.Second, "circuit-breaker open duration before a recovery trial (fleet mode)")
		tolerate  = flag.Bool("tolerate", false, "fleet mode: typed per-CPI failures are warnings, only unanswered CPIs fail the run")
		httpAddr  = flag.String("http", "", "serve the fleet client's /healthz and /stats on this HTTP address during the run (fleet mode; empty disables)")
	)
	flag.Parse()

	switch *arrivals {
	case "closed":
		if *rate != 0 {
			fatal(fmt.Errorf("-rate requires -arrivals poisson"))
		}
	case "poisson":
		if *rate <= 0 {
			fatal(fmt.Errorf("-arrivals poisson requires -rate > 0"))
		}
		if *pace > 0 {
			fatal(fmt.Errorf("-pace and -arrivals poisson both schedule submissions; pick one"))
		}
	default:
		fatal(fmt.Errorf("unknown -arrivals %q (want closed or poisson)", *arrivals))
	}
	if *chunkPace > 0 && !*stream {
		fatal(fmt.Errorf("-chunkpace requires -stream"))
	}

	s, err := scenarioByName(*scenario)
	if err != nil {
		fatal(err)
	}
	plan, err := pfs.ParseFaultSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	tc := *templates
	if tc > *n {
		tc = *n
	}
	frames, err := radar.EncodeCPIs(s, tc, *chunk)
	if err != nil {
		fatal(err)
	}

	addrs := splitList(*addr)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("no server address given"))
	}
	healths := splitList(*health)
	if len(healths) > 0 && len(healths) != len(addrs) {
		fatal(fmt.Errorf("-health lists %d addresses for %d servers", len(healths), len(addrs)))
	}

	opts := genOptions{
		n: *n, window: *window, phaseK: *phaseK, pace: *pace,
		arrivals: *arrivals, rate: *rate, seed: *seed,
		stream: *stream, chunkPace: *chunkPace,
	}
	var run *Run
	if len(addrs) == 1 && len(healths) == 0 {
		run, err = driveDirect(addrs[0], s, plan, frames, opts)
	} else {
		run, err = driveFleetMode(addrs, healths, s, plan, frames, opts,
			*deadline, *retries, *cooldown, *httpAddr)
	}
	if err != nil {
		fatal(err)
	}
	run.Addr = *addr
	run.Scenario = *scenario
	run.ChunkSize = *chunk
	run.Faults = *faultSpec
	run.Streaming = *stream
	if *arrivals == "poisson" {
		run.Arrivals = *arrivals
		run.OfferedRate = *rate
	}
	run.Timestamp = time.Now().UTC().Format(time.RFC3339)

	fmt.Printf("submitted %d CPIs in %.2fs: %.0f CPIs/s, latency p50 %.3fms p95 %.3fms p99 %.3fms max %.3fms\n",
		run.CPIs, run.WallSeconds, run.Throughput,
		run.LatencyMs["p50"], run.LatencyMs["p95"], run.LatencyMs["p99"], run.LatencyMs["max"])
	if run.Arrivals != "" {
		fmt.Printf("arrivals: poisson, offered %.0f CPIs/s, delivered %.0f\n", run.OfferedRate, run.Steady)
	}
	if run.PhaseK > 0 {
		fmt.Printf("phases (K=%d): first-K %.0f CPIs/s, last-K %.0f CPIs/s (steady %.0f)\n",
			run.PhaseK, run.SteadyFirst, run.SteadyLast, run.Steady)
	}
	if run.Repaired > 0 || run.Injected > 0 {
		fmt.Printf("repair: %d corruptions injected, %d repair requests served, %d chunks re-sent\n",
			run.Injected, run.RepairReqs, run.ChunkResends)
	}
	if len(run.Servers) > 0 {
		fmt.Printf("fleet: %d servers, %d answered (%d ok, %d typed-failed, %d unanswered), %d failovers, %d retries, %d abandoned\n",
			len(run.Servers), run.Answered, run.Answered-int(run.Failed), run.Failed, run.Unanswered,
			run.Failovers, run.Retries, run.Abandoned)
		fmt.Printf("breakers: %d opens, %d half-opens, %d closes\n",
			run.BreakerOpens, run.BreakerHalfOpens, run.BreakerCloses)
		for _, ss := range run.Servers {
			p := run.PerServerLatencyMs[ss.Addr]
			fmt.Printf("  %s: %d completed, p50 %.3fms p99 %.3fms, breaker %s (%d/%d/%d)\n",
				ss.Addr, ss.Completed, p["p50"], p["p99"],
				ss.Breaker.State, ss.Breaker.Opens, ss.Breaker.HalfOpens, ss.Breaker.Closes)
		}
	}
	if *jsonOut != "" {
		if err := appendRun(*jsonOut, run); err != nil {
			fatal(err)
		}
	}
	switch {
	case run.Unanswered > 0:
		fmt.Fprintf(os.Stderr, "staploadgen: %d of %d CPIs unanswered (hang)\n", run.Unanswered, run.CPIs)
		os.Exit(1)
	case run.Dropped > 0 && !(*tolerate && len(run.Servers) > 0):
		fmt.Fprintf(os.Stderr, "staploadgen: %d of %d CPIs dropped\n", run.Dropped, run.CPIs)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Run is one load-generation run, as appended to the JSON report.
type Run struct {
	Timestamp   string  `json:"timestamp"`
	Addr        string  `json:"addr"`
	Scenario    string  `json:"scenario"`
	CPIs        int     `json:"cpis"`
	Window      int     `json:"window"`
	ChunkSize   int     `json:"chunk_size"`
	Faults      string  `json:"faults,omitempty"`
	Streaming   bool    `json:"streaming,omitempty"`
	// Arrivals/OfferedRate record an open-loop run: submissions fired on a
	// seeded exponential schedule at OfferedRate CPIs/s rather than waiting
	// for completions.
	Arrivals    string  `json:"arrivals,omitempty"`
	OfferedRate float64 `json:"offered_rate_cpi_per_s,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_cpi_per_s"`
	// Steady is the BENCH_3-comparable steady-state rate: results-per-second
	// between the first and last result arrival, excluding connect/ramp.
	Steady float64 `json:"steady_cpi_per_s"`
	// PhaseK splits the run into phases of K results; SteadyFirst/SteadyLast
	// are the arrival rates over the first and last K. Against an autotuned
	// server the gap is the tuner's convergence gain — the last-K rate is the
	// post-convergence throughput, where Steady averages the cold split in.
	PhaseK      int                `json:"phase_k,omitempty"`
	SteadyFirst float64            `json:"steady_first_cpi_per_s,omitempty"`
	SteadyLast  float64            `json:"steady_last_cpi_per_s,omitempty"`
	LatencyMs   map[string]float64 `json:"latency_ms"`
	ServerMs    map[string]float64 `json:"server_latency_ms"`
	// Dropped counts CPIs that did not complete: typed failures plus
	// unanswered ones. Answered/Unanswered split the accounting the fleet's
	// exactly-once contract cares about: every CPI must be answered —
	// completed or typed-failed — and Unanswered must be zero even when a
	// server is SIGKILLed mid-run.
	Dropped    int `json:"dropped"`
	Answered   int `json:"answered"`
	Unanswered int `json:"unanswered"`

	Injected     int64 `json:"corruptions_injected,omitempty"`
	RepairReqs   int64 `json:"repair_reqs,omitempty"`
	ChunkResends int64 `json:"chunk_resends,omitempty"`
	Repaired     int64 `json:"repaired,omitempty"`

	// Fleet-mode extras (absent on single-server runs).
	Failed             int64                         `json:"failed_typed,omitempty"`
	Failovers          int64                         `json:"failovers,omitempty"`
	Retries            int64                         `json:"retries,omitempty"`
	Abandoned          int64                         `json:"abandoned,omitempty"`
	BreakerOpens       int64                         `json:"breaker_opens,omitempty"`
	BreakerHalfOpens   int64                         `json:"breaker_half_opens,omitempty"`
	BreakerCloses      int64                         `json:"breaker_closes,omitempty"`
	Servers            []fleet.ServerStats           `json:"servers,omitempty"`
	PerServerLatencyMs map[string]map[string]float64 `json:"per_server_latency_ms,omitempty"`
}

// genOptions is the arrival/transport shape of a run, shared by the direct
// and fleet drivers.
type genOptions struct {
	n, window, phaseK int
	pace              time.Duration
	arrivals          string  // "closed" | "poisson"
	rate              float64 // offered CPIs/s for poisson
	seed              int64
	stream            bool
	chunkPace         time.Duration
}

// schedule pre-draws the open-loop submit offsets, or nil for the closed
// loop. Drawing the whole schedule up front keeps the arrival process
// independent of service jitter (and reproducible under -seed).
func (o genOptions) schedule() []time.Duration {
	if o.arrivals != "poisson" {
		return nil
	}
	rng := rand.New(rand.NewSource(o.seed))
	out := make([]time.Duration, o.n)
	var t float64
	for i := range out {
		t += rng.ExpFloat64() / o.rate
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

// driveDirect replays the frames against one server over a plain
// serve.Client — the original BENCH_4-comparable path.
func driveDirect(addr string, s *radar.Scenario, plan *pfs.FaultPlan, frames [][]byte, opts genOptions) (*Run, error) {
	n := opts.n
	cl, err := serve.Dial(addr, serve.Options{
		Dims: s.Dims, Faults: plan, ResultBuffer: 256,
		Streaming: opts.stream, ChunkPace: opts.chunkPace,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	w := opts.window
	if w < 1 || w > cl.MaxInFlight() {
		w = cl.MaxInFlight()
	}
	sem := make(chan struct{}, w)
	latencies := make([]time.Duration, 0, n)
	serverLat := make([]time.Duration, 0, n)
	arrivals := make([]time.Time, 0, n)
	dropped := 0
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		got := 0
		for r := range cl.Results() {
			if r.Err != nil {
				dropped++
				fmt.Fprintf(os.Stderr, "staploadgen: CPI %d: %v\n", r.Seq, r.Err)
			} else {
				latencies = append(latencies, r.Latency)
				serverLat = append(serverLat, r.ServerLatency)
				arrivals = append(arrivals, time.Now())
			}
			<-sem
			if got++; got == n {
				return
			}
		}
	}()

	sched := opts.schedule()
	start := time.Now()
	for seq := 0; seq < n; seq++ {
		// The submitted buffer must stay untouched until its result is in,
		// so each in-flight CPI gets its own copy of the template,
		// restamped with its sequence number.
		frame := append([]byte(nil), frames[seq%len(frames)]...)
		if err := cube.PatchSeq(frame, uint64(seq)); err != nil {
			return nil, err
		}
		if sched != nil {
			if d := time.Until(start.Add(sched[seq])); d > 0 {
				time.Sleep(d)
			}
		}
		sem <- struct{}{}
		if _, err := cl.Submit(frame); err != nil {
			return nil, fmt.Errorf("submit CPI %d: %w", seq, err)
		}
		if opts.pace > 0 {
			time.Sleep(opts.pace)
		}
	}
	<-collected
	wall := time.Since(start)

	run := &Run{
		CPIs:        n,
		Window:      w,
		WallSeconds: wall.Seconds(),
		Throughput:  float64(n) / wall.Seconds(),
		LatencyMs:   percentilesMs(latencies),
		ServerMs:    percentilesMs(serverLat),
		Dropped:     dropped,
		Answered:    n,
	}
	fillArrivalStats(run, arrivals, opts.phaseK)
	run.RepairReqs, run.ChunkResends, run.Injected = cl.RepairStats()
	run.Repaired = cl.RepairedFrames()
	return run, nil
}

// driveFleetMode replays the frames closed-loop through a fleet.Client
// spanning several servers, gathering per-server latency splits and the
// fleet's failover/breaker counters.
func driveFleetMode(addrs, healths []string, s *radar.Scenario, plan *pfs.FaultPlan, frames [][]byte,
	opts genOptions, deadline time.Duration, retries int, cooldown time.Duration, httpAddr string) (*Run, error) {
	n := opts.n
	specs := make([]fleet.ServerSpec, len(addrs))
	for i, a := range addrs {
		specs[i] = fleet.ServerSpec{Addr: a}
		if len(healths) > 0 {
			specs[i].Health = healths[i]
		}
	}
	fc, err := fleet.New(fleet.Options{
		Dims:    s.Dims,
		Servers: specs,
		Dial: serve.Options{
			Faults: plan, ResultBuffer: 256,
			Streaming: opts.stream, ChunkPace: opts.chunkPace,
		},
		MaxAttempts: retries,
		CPIDeadline: deadline,
		Breaker:     fleet.BreakerConfig{Cooldown: cooldown},
	})
	if err != nil {
		return nil, err
	}
	defer fc.Close()
	capacity, err := fc.Connect()
	if err != nil {
		return nil, err
	}
	if httpAddr != "" {
		go http.ListenAndServe(httpAddr, fc.StatsHandler())
	}

	w := opts.window
	if w < 1 || w > capacity {
		w = capacity
	}
	sem := make(chan struct{}, w)
	latencies := make([]time.Duration, 0, n)
	serverLat := make([]time.Duration, 0, n)
	arrivals := make([]time.Time, 0, n)
	perServer := make(map[string][]time.Duration)
	var answered, failed atomic.Int64
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		got := 0
		for r := range fc.Results() {
			if r.Err != nil {
				failed.Add(1)
				fmt.Fprintf(os.Stderr, "staploadgen: CPI %d (attempt %d): %v\n", r.Seq, r.Attempts, r.Err)
			} else {
				latencies = append(latencies, r.Latency)
				serverLat = append(serverLat, r.ServerLatency)
				arrivals = append(arrivals, time.Now())
				perServer[r.Server] = append(perServer[r.Server], r.Latency)
			}
			answered.Add(1)
			<-sem
			if got++; got == n {
				return
			}
		}
	}()

	sched := opts.schedule()
	start := time.Now()
	submitErr := make(chan error, 1)
	go func() {
		for seq := 0; seq < n; seq++ {
			frame := append([]byte(nil), frames[seq%len(frames)]...)
			if err := cube.PatchSeq(frame, uint64(seq)); err != nil {
				submitErr <- err
				return
			}
			if sched != nil {
				if d := time.Until(start.Add(sched[seq])); d > 0 {
					time.Sleep(d)
				}
			}
			sem <- struct{}{}
			if _, err := fc.Submit(frame); err != nil {
				submitErr <- fmt.Errorf("submit CPI %d: %w", seq, err)
				return
			}
			if opts.pace > 0 {
				time.Sleep(opts.pace)
			}
		}
	}()

	// The fleet client's contract is that every CPI resolves within its
	// deadline; the watchdog is the backstop that turns a contract
	// violation (a hang) into a reported unanswered count, not a stuck
	// process.
	watchdog := time.Duration(n)*opts.pace + deadline + 30*time.Second
	if sched != nil {
		watchdog += sched[len(sched)-1]
	}
	timedOut := false
	select {
	case <-collected:
	case err := <-submitErr:
		return nil, err
	case <-time.After(watchdog):
		timedOut = true
	}
	wall := time.Since(start)

	run := &Run{
		CPIs:        n,
		Window:      w,
		WallSeconds: wall.Seconds(),
		Throughput:  float64(n) / wall.Seconds(),
		Answered:    int(answered.Load()),
		Failed:      failed.Load(),
	}
	run.Unanswered = n - run.Answered
	run.Dropped = int(run.Failed) + run.Unanswered
	if !timedOut {
		// The collector goroutine has exited; its slices are safe to read.
		run.LatencyMs = percentilesMs(latencies)
		run.ServerMs = percentilesMs(serverLat)
		fillArrivalStats(run, arrivals, opts.phaseK)
		run.PerServerLatencyMs = make(map[string]map[string]float64, len(perServer))
		for a, d := range perServer {
			run.PerServerLatencyMs[a] = percentilesMs(d)
		}
	} else {
		run.LatencyMs = percentilesMs(nil)
		run.ServerMs = percentilesMs(nil)
	}
	st := fc.Stats()
	run.Failovers = st.Failovers
	run.Retries = st.Retries
	run.Abandoned = st.Abandoned
	run.BreakerOpens = st.BreakerOpens
	run.BreakerHalfOpens = st.BreakerHalfOpens
	run.BreakerCloses = st.BreakerCloses
	run.Servers = st.Servers
	return run, nil
}

// fillArrivalStats derives the steady-state and phase throughput figures
// from the result arrival times.
func fillArrivalStats(run *Run, arrivals []time.Time, phaseK int) {
	if len(arrivals) > 1 {
		if span := arrivals[len(arrivals)-1].Sub(arrivals[0]).Seconds(); span > 0 {
			run.Steady = float64(len(arrivals)-1) / span
		}
	}
	if k := phaseWindow(phaseK, len(arrivals)); k > 0 {
		run.PhaseK = k
		run.SteadyFirst = arrivalRate(arrivals[:k])
		run.SteadyLast = arrivalRate(arrivals[len(arrivals)-k:])
	}
}

// phaseWindow resolves the -phasek flag: 0 defaults to a quarter of the
// delivered results, the window never drops below 2 results or exceeds
// what was delivered, and fewer than 4 results carry no phase signal.
func phaseWindow(k, delivered int) int {
	if delivered < 4 {
		return 0
	}
	if k <= 0 {
		k = delivered / 4
	}
	if k < 2 {
		k = 2
	}
	if k > delivered {
		k = delivered
	}
	return k
}

// arrivalRate is results-per-second across a window of arrival times.
func arrivalRate(a []time.Time) float64 {
	if len(a) < 2 {
		return 0
	}
	span := a[len(a)-1].Sub(a[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(a)-1) / span
}

// percentilesMs summarises latencies in milliseconds.
func percentilesMs(d []time.Duration) map[string]float64 {
	out := map[string]float64{"p50": 0, "p90": 0, "p95": 0, "p99": 0, "max": 0}
	if len(d) == 0 {
		return out
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(d)-1))
		return float64(d[i]) / float64(time.Millisecond)
	}
	out["p50"] = at(0.50)
	out["p90"] = at(0.90)
	out["p95"] = at(0.95)
	out["p99"] = at(0.99)
	out["max"] = float64(d[len(d)-1]) / float64(time.Millisecond)
	return out
}

// report is the committed artifact: an append-only list of runs.
type report struct {
	Runs []*Run `json:"runs"`
}

func appendRun(path string, run *Run) error {
	var doc report
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Runs = append(doc.Runs, run)
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func scenarioByName(name string) (*radar.Scenario, error) {
	switch name {
	case "small":
		return radar.SmallTestScenario(), nil
	case "paper":
		return radar.PaperScenario(), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (want small or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "staploadgen:", err)
	os.Exit(1)
}
