package main

import "testing"

func mkReport(nsop, bop float64, iters int64) *Report {
	return &Report{
		Go:  "go1.22",
		CPU: "test-cpu",
		Benchmarks: []Bench{
			{Name: "BenchmarkA", Iterations: iters, Metrics: map[string]float64{"ns/op": nsop, "B/op": bop}},
		},
	}
}

func TestAggregateReportsMedianMinMax(t *testing.T) {
	runs := []*Report{
		mkReport(300, 64, 10),
		mkReport(100, 64, 30),
		mkReport(200, 64, 20),
	}
	// A benchmark present in only one run still aggregates over that run.
	runs[2].Benchmarks = append(runs[2].Benchmarks,
		Bench{Name: "BenchmarkB", Iterations: 5, Metrics: map[string]float64{"ns/op": 7}})

	agg := aggregateReports(runs)
	if agg.Runs != 3 {
		t.Errorf("Runs = %d, want 3", agg.Runs)
	}
	if agg.Go != "go1.22" || agg.CPU != "test-cpu" {
		t.Errorf("environment not carried over: %q %q", agg.Go, agg.CPU)
	}
	if len(agg.Benchmarks) != 2 {
		t.Fatalf("aggregated %d benchmarks, want 2", len(agg.Benchmarks))
	}
	a := agg.Benchmarks[0]
	if a.Name != "BenchmarkA" {
		t.Fatalf("first benchmark is %q, want the first run's order", a.Name)
	}
	if a.Metrics["ns/op"] != 200 {
		t.Errorf("median ns/op = %v, want 200", a.Metrics["ns/op"])
	}
	if a.Min["ns/op"] != 100 || a.Max["ns/op"] != 300 {
		t.Errorf("ns/op spread = [%v, %v], want [100, 300]", a.Min["ns/op"], a.Max["ns/op"])
	}
	if a.Min["B/op"] != 64 || a.Metrics["B/op"] != 64 || a.Max["B/op"] != 64 {
		t.Errorf("constant metric must aggregate to itself, got min %v med %v max %v",
			a.Min["B/op"], a.Metrics["B/op"], a.Max["B/op"])
	}
	if a.Iterations != 20 {
		t.Errorf("median iterations = %d, want 20", a.Iterations)
	}
	b := agg.Benchmarks[1]
	if b.Metrics["ns/op"] != 7 || b.Min["ns/op"] != 7 || b.Max["ns/op"] != 7 {
		t.Errorf("single-run benchmark aggregated wrong: %+v", b)
	}
}

// Lower median: an even number of runs must pick a real sample, not an
// interpolated value, so the headline metric is always a measured run.
func TestAggregateReportsLowerMedian(t *testing.T) {
	runs := []*Report{mkReport(100, 1, 1), mkReport(400, 1, 1), mkReport(200, 1, 1), mkReport(300, 1, 1)}
	agg := aggregateReports(runs)
	if got := agg.Benchmarks[0].Metrics["ns/op"]; got != 200 {
		t.Errorf("lower median of {100,200,300,400} = %v, want 200", got)
	}
}

func TestAggregateReportsSingleRunPassthrough(t *testing.T) {
	r := mkReport(123, 8, 9)
	agg := aggregateReports([]*Report{r})
	if agg != r {
		t.Error("single run must pass through unchanged")
	}
	if agg.Runs != 0 {
		t.Errorf("single run must not set Runs (got %d)", agg.Runs)
	}
	if agg.Benchmarks[0].Min != nil {
		t.Error("single run must not grow min/max maps")
	}
}
