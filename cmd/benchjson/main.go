// Command benchjson runs the repository's benchmark suite (or parses saved
// `go test -bench` output) and emits the results as JSON, so before/after
// performance comparisons can be committed alongside the code they measure.
//
//	benchjson -o BENCH.json                        # run the default suite
//	benchjson -parse old.txt -o before.json        # convert saved output
//	benchjson -before before.json -o BENCH.json    # embed a before section
//	benchjson -keep-before -o BENCH.json           # refresh "after", keep "before"
//	benchjson -repeat 5 -o BENCH.json              # median of 5 runs, with min/max spread
//	benchjson -merge a.json,b.json -o BENCH.json   # combine saved reports, run nothing
//
// The -before file may be either a JSON report produced by this tool or raw
// `go test -bench` text; the format is sniffed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the kernel and real-pipeline benchmarks — the hot
// path this repository's performance work targets — rather than the full
// table/figure regeneration suite, which takes far longer.
const defaultBench = `BenchmarkKernelFFT|BenchmarkKernelDoppler|BenchmarkKernelWeights|BenchmarkKernelCovariance|BenchmarkKernelBeamform|BenchmarkKernelPulseCompressionCFAR|BenchmarkRealPipeline$|BenchmarkRealPipelineIODesigns|BenchmarkRealPipelineReadahead`

// Bench is one benchmark result line. With -repeat, Metrics holds the
// per-metric median across runs and Min/Max the spread — the median is the
// headline number so one noisy run cannot move a committed comparison.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Min        map[string]float64 `json:"min,omitempty"`
	Max        map[string]float64 `json:"max,omitempty"`
}

// Report is the result of one benchmark run (or, with -repeat, the
// per-metric aggregate of Runs identical runs).
type Report struct {
	Go         string  `json:"go,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Runs       int     `json:"runs,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Document is the committed artifact: the current run plus an optional
// baseline it is compared against.
type Document struct {
	Generated string  `json:"generated,omitempty"`
	Before    *Report `json:"before,omitempty"`
	After     *Report `json:"after"`
}

func main() {
	var (
		bench      = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		benchtime  = flag.String("benchtime", "0.5s", "go test -benchtime value")
		pkg        = flag.String("pkg", ".", "package to benchmark")
		parse      = flag.String("parse", "", "parse this saved `go test -bench` output instead of running benchmarks")
		merge      = flag.String("merge", "", "comma-separated saved reports to concatenate into the after section instead of running benchmarks")
		before     = flag.String("before", "", "baseline file (JSON report or raw bench text) embedded as the before section")
		keepBefore = flag.Bool("keep-before", false, "preserve the before section of an existing -o file")
		repeat     = flag.Int("repeat", 1, "run the suite this many times; report the per-metric median with min/max spread")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		after *Report
		err   error
	)
	switch {
	case *merge != "":
		after, err = mergeReports(strings.Split(*merge, ","))
	case *parse != "":
		after, err = loadReport(*parse)
	default:
		runs := make([]*Report, 0, *repeat)
		for i := 0; i < *repeat || len(runs) == 0; i++ {
			if *repeat > 1 {
				fmt.Fprintf(os.Stderr, "benchjson: run %d of %d\n", i+1, *repeat)
			}
			var rep *Report
			if rep, err = runBenchmarks(*bench, *benchtime, *pkg); err != nil {
				break
			}
			runs = append(runs, rep)
		}
		if err == nil {
			after = aggregateReports(runs)
		}
	}
	if err != nil {
		fatal(err)
	}

	doc := &Document{
		Generated: time.Now().UTC().Format(time.RFC3339),
		After:     after,
	}
	switch {
	case *before != "":
		doc.Before, err = loadReport(*before)
		if err != nil {
			fatal(fmt.Errorf("loading baseline: %w", err))
		}
	case *keepBefore && *out != "":
		doc.Before, err = previousBefore(*out)
		if err != nil {
			fatal(fmt.Errorf("preserving baseline from %s: %w", *out, err))
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(after.Benchmarks), *out)
}

// mergeReports concatenates saved reports into one, in argument order.
// Different suites run at different benchtimes (the kernel microbenchmarks
// versus the one-CPI-granular tuner sweeps) land in separate files; merging
// them afterwards yields the single committed artifact. Go/CPU/Runs come
// from the first report; a benchmark name appearing twice is an error, so
// the same suite cannot be merged in at two different settings unnoticed.
func mergeReports(paths []string) (*Report, error) {
	var merged *Report
	seen := make(map[string]string)
	for _, path := range paths {
		path = strings.TrimSpace(path)
		rep, err := loadReport(path)
		if err != nil {
			return nil, fmt.Errorf("merging %s: %w", path, err)
		}
		if merged == nil {
			merged = &Report{Go: rep.Go, CPU: rep.CPU, Runs: rep.Runs}
		}
		for _, b := range rep.Benchmarks {
			if prev, dup := seen[b.Name]; dup {
				return nil, fmt.Errorf("merging %s: %s already present from %s", path, b.Name, prev)
			}
			seen[b.Name] = path
			merged.Benchmarks = append(merged.Benchmarks, b)
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("-merge needs at least one report")
	}
	return merged, nil
}

// aggregateReports folds repeated runs of the same suite into one report:
// each metric becomes its lower median across runs, with the min/max spread
// recorded alongside. Benchmarks keep the first run's order; one missing
// from some runs is aggregated over the runs that have it.
func aggregateReports(runs []*Report) *Report {
	if len(runs) == 1 {
		return runs[0]
	}
	agg := &Report{Go: runs[0].Go, CPU: runs[0].CPU, Runs: len(runs)}
	var order []string
	byName := make(map[string][]Bench)
	for _, rep := range runs {
		for _, b := range rep.Benchmarks {
			if _, seen := byName[b.Name]; !seen {
				order = append(order, b.Name)
			}
			byName[b.Name] = append(byName[b.Name], b)
		}
	}
	for _, name := range order {
		samples := byName[name]
		out := Bench{
			Name:    name,
			Metrics: map[string]float64{},
			Min:     map[string]float64{},
			Max:     map[string]float64{},
		}
		iters := make([]int64, 0, len(samples))
		keys := make(map[string]bool)
		for _, s := range samples {
			iters = append(iters, s.Iterations)
			for k := range s.Metrics {
				keys[k] = true
			}
		}
		sort.Slice(iters, func(i, j int) bool { return iters[i] < iters[j] })
		out.Iterations = iters[(len(iters)-1)/2]
		for k := range keys {
			vals := make([]float64, 0, len(samples))
			for _, s := range samples {
				if v, ok := s.Metrics[k]; ok {
					vals = append(vals, v)
				}
			}
			sort.Float64s(vals)
			out.Min[k] = vals[0]
			out.Metrics[k] = vals[(len(vals)-1)/2]
			out.Max[k] = vals[len(vals)-1]
		}
		agg.Benchmarks = append(agg.Benchmarks, out)
	}
	return agg
}

// runBenchmarks invokes go test and parses its output. The benchmark run's
// stderr passes through so progress is visible.
func runBenchmarks(bench, benchtime, pkg string) (*Report, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		os.Stderr.Write(outBuf)
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return parseBenchOutput(bytes.NewReader(outBuf))
}

// loadReport reads a baseline file, accepting either a JSON document
// written by this tool (its after section, or a bare report) or raw
// `go test -bench` text.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var doc Document
		if err := json.Unmarshal(trimmed, &doc); err == nil && doc.After != nil {
			return doc.After, nil
		}
		var rep Report
		if err := json.Unmarshal(trimmed, &rep); err != nil {
			return nil, err
		}
		return &rep, nil
	}
	return parseBenchOutput(bytes.NewReader(data))
}

// previousBefore returns the before section of an existing document, so a
// refresh keeps comparing against the original baseline. A missing file
// yields no baseline rather than an error.
func previousBefore(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	return doc.Before, nil
}

// parseBenchOutput converts `go test -bench -benchmem` text into a Report.
// A result line is "BenchmarkName[-procs]  N  v1 unit1  v2 unit2 ...".
func parseBenchOutput(r *bytes.Reader) (*Report, error) {
	rep := &Report{Go: runtime.Version()}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." chatter, not a result line
		}
		name := fields[0]
		// Strip the GOMAXPROCS suffix so names are stable across machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Bench{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad metric value %q", line, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
