// Command pfsgen generates the radar's round-robin staging dataset on a
// striped local store — the on-disk substitute for the radar writing its
// four data files into the parallel file system:
//
//	pfsgen -root /tmp/stap-data                     # paper-scale, 4 files
//	pfsgen -root /tmp/d -small -stripedirs 8        # small test dataset
//	pfsgen -root /tmp/d -cpis 8 -files 4 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"stapio/internal/pfs"
	"stapio/internal/radar"
)

func main() {
	var (
		root    = flag.String("root", "", "root directory of the striped store (required)")
		dirs    = flag.Int("stripedirs", 16, "stripe factor (number of stripe directories)")
		unit    = flag.Int64("unit", 64<<10, "stripe unit in bytes")
		files   = flag.Int("files", radar.DefaultFileCount, "round-robin staging files")
		cpis    = flag.Int("cpis", radar.DefaultFileCount, "CPIs to generate (file i holds the last CPI = i mod files)")
		small   = flag.Bool("small", false, "generate the small test scenario instead of the paper-scale one")
		seed    = flag.Int64("seed", 0, "override the scenario seed (0 keeps the default)")
		targets = flag.Int("targets", -1, "limit the number of injected targets (-1 keeps all)")
	)
	flag.Parse()
	if *root == "" {
		flag.Usage()
		os.Exit(2)
	}
	sc := radar.PaperScenario()
	if *small {
		sc = radar.SmallTestScenario()
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *targets >= 0 && *targets < len(sc.Targets) {
		sc.Targets = sc.Targets[:*targets]
	}
	fs, err := pfs.CreateReal(*root, *dirs, *unit, true)
	if err != nil {
		fatal(err)
	}
	if _, err := radar.WriteDataset(fs, sc, *cpis, *files, false); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d CPIs (%v, %d bytes each) into %d round-robin files striped over %d dirs at %s\n",
		*cpis, sc.Dims, radar.DatasetFileBytes(sc.Dims), *files, *dirs, *root)
	for i, tg := range sc.Targets {
		fmt.Printf("  truth target %d: angle=%.2f doppler=%.3f range=%d snr=%.1fdB\n",
			i, tg.Angle, tg.Doppler, tg.Range, tg.SNR)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfsgen:", err)
	os.Exit(1)
}
