// Command stapopt solves the node-assignment problem behind the paper's
// hand-picked cases: given a total node budget, a machine, and a parallel
// file system, distribute nodes over the pipeline tasks to maximise
// throughput, and compare against the naive proportional split and the
// paper-style hand assignment.
//
//	stapopt -nodes 50
//	stapopt -nodes 200 -fs pfs16 -design separate
package main

import (
	"flag"
	"fmt"
	"os"

	"stapio/internal/core"
	"stapio/internal/experiments"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/report"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 50, "total compute-node budget")
		fsName = flag.String("fs", "pfs64", "file system: pfs16 | pfs64 | piofs")
		mach   = flag.String("machine", "paragon", "machine profile: paragon | sp")
		design = flag.String("design", "embedded", "pipeline design: embedded | separate")
	)
	flag.Parse()

	var fsCfg pfs.Config
	switch *fsName {
	case "pfs16":
		fsCfg = pfs.ParagonPFS(16)
	case "pfs64":
		fsCfg = pfs.ParagonPFS(64)
	case "piofs":
		fsCfg = pfs.PIOFS()
	default:
		fatal(fmt.Errorf("unknown file system %q", *fsName))
	}
	var prof machine.Profile
	switch *mach {
	case "paragon":
		prof = machine.Paragon()
	case "sp":
		prof = machine.SP()
	default:
		fatal(fmt.Errorf("unknown machine %q", *mach))
	}
	var d experiments.Design
	switch *design {
	case "embedded":
		d = experiments.Embedded
	case "separate":
		d = experiments.Separate
	default:
		fatal(fmt.Errorf("unknown design %q", *design))
	}

	// The hand assignment scaled to roughly the requested budget.
	scale := *nodes / experiments.BaseNodes().Compute()
	if scale < 1 {
		scale = 1
	}
	hand, err := experiments.Build(d, scale)
	if err != nil {
		fatal(err)
	}
	handAn, err := core.Analyze(hand, prof, fsCfg)
	if err != nil {
		fatal(err)
	}

	budget := *nodes
	if d == experiments.Separate {
		budget += experiments.BaseNodes().IO * scale
	}
	prop, err := core.ProportionalAssignment(hand, budget)
	if err != nil {
		fatal(err)
	}
	propPipe, err := hand.Apply(prop)
	if err != nil {
		fatal(err)
	}
	propAn, err := core.Analyze(propPipe, prof, fsCfg)
	if err != nil {
		fatal(err)
	}

	opt, optAn, err := core.OptimizeAssignment(hand, prof, fsCfg, budget)
	if err != nil {
		fatal(err)
	}

	t := &report.Table{
		Title:   fmt.Sprintf("Node assignment for %d nodes on %s / %s (%s design)", budget, prof.Name, fsCfg.Name, d),
		Columns: []string{"task", "hand", "proportional", "optimized"},
	}
	for i, task := range hand.Tasks {
		t.AddRow(task.Name,
			fmt.Sprintf("%d", task.Nodes),
			fmt.Sprintf("%d", prop[i]),
			fmt.Sprintf("%d", opt[i]))
	}
	t.AddRow("total",
		fmt.Sprintf("%d", hand.TotalNodes()),
		fmt.Sprintf("%d", prop.Total()),
		fmt.Sprintf("%d", opt.Total()))
	t.AddRow("throughput (CPIs/s)",
		fmt.Sprintf("%.2f", handAn.Throughput),
		fmt.Sprintf("%.2f", propAn.Throughput),
		fmt.Sprintf("%.2f", optAn.Throughput))
	t.AddRow("latency (s)",
		fmt.Sprintf("%.3f", handAn.Latency),
		fmt.Sprintf("%.3f", propAn.Latency),
		fmt.Sprintf("%.3f", optAn.Latency))
	t.AddRow("bottleneck task",
		handAn.Timings[handAn.Bottleneck].Name,
		propAn.Timings[propAn.Bottleneck].Name,
		optAn.Timings[optAn.Bottleneck].Name)
	t.Render(os.Stdout)
	if opt.Total() < budget {
		fmt.Printf("\nnote: the optimizer left %d nodes unused — adding more cannot raise\n", budget-opt.Total())
		fmt.Println("throughput (the bottleneck is I/O- or overhead-bound, not compute-bound).")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stapopt:", err)
	os.Exit(1)
}
