// Command benchdiff renders a markdown table comparing the steady
// throughput of a fresh benchmark run against one or more committed
// baseline reports, so CI can annotate a job summary with the delta
// without gating on noisy shared-runner timings.
//
//	benchdiff -new /tmp/bench6.json -base BENCH_6.json
//	benchdiff -new /tmp/bench6.json -base BENCH_6.json -base BENCH_3.json -base BENCH_4.json
//	benchdiff -new ... -base ... -gate 'BenchmarkAutoTune/(hardweights|pccfar)/' -maxloss 25
//
// The -new file must be a benchjson document. Each -base file may be a
// benchjson document or a staploadgen report ({"runs": [...]}); the format
// is sniffed. Benchmarks present in both the new run and a baseline get a
// delta row; baseline-only entries are listed as reference rows, so the
// committed network-service numbers (BENCH_4.json) sit alongside the
// in-process pipeline sweep they contextualise.
//
// By default every delta is annotate-only. -gate promotes the matching
// benchmarks to a hard check: any gated benchmark whose throughput drops
// more than -maxloss percent below its baseline fails the run with exit
// status 3. Gate the scenarios whose injected loads make them
// host-independent; leave the ones riding on real disk and timer
// behaviour ungated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// bench is one benchmark result in a benchjson document.
type bench struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []bench `json:"benchmarks"`
}

type document struct {
	After *report `json:"after"`
}

// loadRun is the subset of a staploadgen run benchdiff compares.
type loadRun struct {
	Scenario string  `json:"scenario"`
	CPIs     int     `json:"cpis"`
	Faults   string  `json:"faults"`
	Steady   float64 `json:"steady_cpi_per_s"`
}

type loadReport struct {
	Runs []loadRun `json:"runs"`
}

// entry is one named throughput number from any report format.
type entry struct {
	Name   string
	Steady float64
}

// throughputMetrics lists the metric keys treated as steady throughput,
// in preference order.
var throughputMetrics = []string{"CPIs/s", "tail-CPIs/s"}

func main() {
	var (
		newPath = flag.String("new", "", "fresh benchjson document to compare (required)")
		gate    = flag.String("gate", "", "regexp of benchmark names whose throughput regression fails the check (exit 3)")
		maxLoss = flag.Float64("maxloss", 25, "percent throughput drop tolerated on gated benchmarks")
		bases   multiFlag
	)
	flag.Var(&bases, "base", "baseline report to diff against (repeatable; benchjson or staploadgen format)")
	flag.Parse()
	if *newPath == "" || len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -new file.json -base baseline.json [-base ...]")
		os.Exit(2)
	}
	var gateRe *regexp.Regexp
	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			fatal(fmt.Errorf("bad -gate regexp: %w", err))
		}
		gateRe = re
	}

	fresh, err := loadEntries(*newPath)
	if err != nil {
		fatal(err)
	}
	byName := make(map[string]float64, len(fresh))
	for _, e := range fresh {
		byName[e.Name] = e.Steady
	}

	fmt.Println("## Benchmark regression check")
	fmt.Println()
	fmt.Println("| benchmark | baseline | base CPIs/s | new CPIs/s | delta |")
	fmt.Println("|---|---|---:|---:|---:|")
	matchedAny := false
	var failures []string
	for _, base := range bases {
		ents, err := loadEntries(base)
		if err != nil {
			fatal(err)
		}
		for _, e := range ents {
			if cur, ok := byName[e.Name]; ok {
				matchedAny = true
				fmt.Printf("| %s | %s | %.1f | %.1f | %s |\n",
					e.Name, base, e.Steady, cur, deltaCell(e.Steady, cur))
				if gateRe != nil && gateRe.MatchString(e.Name) && e.Steady > 0 {
					if pct := 100 * (cur - e.Steady) / e.Steady; pct < -*maxLoss {
						failures = append(failures, fmt.Sprintf("%s: %.1f -> %.1f CPIs/s (%+.1f%%, limit -%.0f%%) vs %s",
							e.Name, e.Steady, cur, pct, *maxLoss, base))
					}
				}
			} else {
				fmt.Printf("| %s | %s | %.1f | — | reference |\n", e.Name, base, e.Steady)
			}
		}
	}
	if !matchedAny {
		fmt.Println()
		fmt.Println("_No benchmark names matched between the new run and the baselines._")
	}
	if len(failures) > 0 {
		fmt.Println()
		fmt.Printf("**FAILED**: %d gated benchmark(s) regressed beyond the %.0f%% budget.\n", len(failures), *maxLoss)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", f)
		}
		os.Exit(3)
	}
}

// deltaCell formats the relative change, flagging drops beyond 10% so the
// job summary draws the eye without failing the build.
func deltaCell(base, cur float64) string {
	if base <= 0 {
		return "n/a"
	}
	pct := 100 * (cur - base) / base
	s := fmt.Sprintf("%+.1f%%", pct)
	if pct < -10 {
		s += " ⚠"
	}
	return s
}

// loadEntries reads either report format and flattens it to named
// steady-throughput numbers.
func loadEntries(path string) ([]entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, ok := probe["runs"]; ok {
		var doc loadReport
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return loadgenEntries(doc), nil
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.After == nil {
		return nil, fmt.Errorf("%s: benchjson document has no \"after\" report", path)
	}
	var out []entry
	for _, b := range doc.After.Benchmarks {
		for _, key := range throughputMetrics {
			if v, ok := b.Metrics[key]; ok {
				out = append(out, entry{Name: b.Name, Steady: v})
				break
			}
		}
	}
	return out, nil
}

// loadgenEntries names staploadgen runs by scenario and fault spec;
// multiple runs of the same shape keep the best steady rate, since the
// committed file is append-only across experiments.
func loadgenEntries(doc loadReport) []entry {
	best := map[string]float64{}
	for _, r := range doc.Runs {
		name := "staploadgen/" + r.Scenario
		if r.Faults != "" {
			name += "/" + strings.ReplaceAll(r.Faults, ",", "_")
		}
		if r.Steady > best[name] {
			best[name] = r.Steady
		}
	}
	names := make([]string, 0, len(best))
	for n := range best {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]entry, 0, len(names))
	for _, n := range names {
		out = append(out, entry{Name: n, Steady: best[n]})
	}
	return out
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
