// Command stapdetect runs the real parallel pipelined STAP system — actual
// Doppler filtering, adaptive beamforming, pulse compression, and CFAR on
// synthetic radar data — and prints the detection reports.
//
//	stapdetect -small -cpis 4                     # in-memory small scenario
//	stapdetect -cpis 3                            # paper-scale, in-memory
//	stapdetect -data /tmp/stap-data -stripedirs 16 -cpis 4   # from striped files
//	stapdetect -separate-io -combine-pc-cfar ...  # pipeline variants
//	stapdetect -data ... -faults fail=0.05,corrupt=0.01,seed=42 -degrade skip
//	                                              # fault injection + resilience
//	stapdetect -data ... -separate-io -readahead 4 -decodeworkers 4
//	                                              # deep readahead, parallel decode/verify
//	stapdetect -small -cpis 200 -autotune -budget 14 -stagestats
//	                                              # online worker rebalancing + histograms
//	stapdetect -small -workers-per-stage dop=3,wh=4,cfar=1
//	                                              # hand-picked per-stage split
//	stapdetect -data ... -membudget 256M -readahead 8
//	                                              # hard residency budget + spill tier
//	stapdetect -data ... -membudget 16M -band 64  # out-of-core banded execution
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/membudget"
	"stapio/internal/pfs"
	"stapio/internal/pipexec"
	"stapio/internal/radar"
	"stapio/internal/stap"
	"stapio/internal/tune"
)

func main() {
	var (
		small    = flag.Bool("small", false, "use the small test scenario")
		cpis     = flag.Int("cpis", 4, "CPIs to process")
		data     = flag.String("data", "", "read CPIs from this striped dataset root (see pfsgen) instead of memory")
		dirs     = flag.Int("stripedirs", 16, "stripe factor of the dataset")
		unit     = flag.Int64("unit", 64<<10, "stripe unit of the dataset")
		files    = flag.Int("files", radar.DefaultFileCount, "round-robin staging files in the dataset")
		sepIO    = flag.Bool("separate-io", false, "use the separate I/O task design")
		combine  = flag.Bool("combine-pc-cfar", false, "combine pulse compression and CFAR into one task")
		workers  = flag.Int("workers", 2, "worker goroutines per task (uniform split)")
		perStage = flag.String("workers-per-stage", "", `per-stage worker counts overriding -workers, e.g. "dop=3,wh=4,cfar=1" (dop we wh bfe bfh pc cfar io)`)
		autotune = flag.Bool("autotune", false, "rebalance the worker budget online against measured per-stage service times")
		budget   = flag.Int("budget", 0, "autotune worker budget; 0 keeps the sum of the configured per-stage counts")
		stats    = flag.Bool("stagestats", false, "print per-stage service-time histograms (p50/p90/max)")
		maxPrint = flag.Int("max-print", 12, "maximum detections printed per CPI")
		cfarKind = flag.String("cfar", "ca", "CFAR variant: ca | goca | soca | os")
		staggers = flag.Int("staggers", 0, "PRI stagger count (0 = the paper's 2)")
		faults   = flag.String("faults", "", `inject faults into the striped reads, e.g. "fail=0.05,corrupt=0.01,seed=42" (requires -data)`)
		degrade  = flag.String("degrade", "failfast", "degradation policy once retries are exhausted: failfast | skip | lastgood")
		retries  = flag.Int("retries", 3, "read attempts per CPI before the degradation policy applies")
		stream   = flag.Bool("stream", false, "feed the pipeline through the streaming CubeSource (pooled slabs, credit-windowed producer) instead of per-CPI generation")
		rdAhead  = flag.Int("readahead", 1, "readahead depth: striped reads kept in flight beyond the CPI being consumed")
		decodeW  = flag.Int("decodeworkers", 1, "goroutines sharding each cube's checksum verify and decode")
		maxRA    = flag.Int("maxreadahead", 0, "cap on autotuned readahead depth (0 = default 32)")
		memBud   = flag.String("membudget", "", `hard byte budget for cube + intermediate residency, e.g. "256M" or "1G" (empty = unlimited; residency is still tracked). With -data, cold prefetched cubes spill to the striped store under pressure`)
		band     = flag.Int("band", 0, "out-of-core banded execution: stream each CPI through range-bin bands of this many bins, peak residency O(band) instead of O(cube) (0 = full-cube pipeline)")
		traceOut = flag.String("tunetrace", "", "write the auto-tuner's full decision log (no-op windows included) as JSON to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	sc := radar.PaperScenario()
	if *small {
		sc = radar.SmallTestScenario()
	}
	params := stap.DefaultParams(sc.Dims)
	params.PulseLen = sc.PulseLen
	params.Bandwidth = sc.Bandwidth
	params.Staggers = *staggers
	switch *cfarKind {
	case "ca":
		params.CFAR.Kind = stap.CFARCellAveraging
	case "goca":
		params.CFAR.Kind = stap.CFARGreatestOf
	case "soca":
		params.CFAR.Kind = stap.CFARSmallestOf
	case "os":
		params.CFAR.Kind = stap.CFAROrderedStatistic
	default:
		fatal(fmt.Errorf("unknown CFAR variant %q", *cfarKind))
	}

	policy, err := pipexec.ParseDegradePolicy(*degrade)
	if err != nil {
		fatal(err)
	}
	w := *workers
	split := core.STAPNodes{
		Doppler: w, EasyWeight: w, HardWeight: w,
		EasyBF: w, HardBF: w, PulseComp: w, CFAR: w,
	}
	if *perStage != "" {
		split, err = core.ParseWorkerSpec(*perStage, split)
		if err != nil {
			fatal(err)
		}
	}
	cfg := pipexec.Config{
		Params:        params,
		Workers:       split,
		SeparateIO:    *sepIO,
		CombinePCCFAR: *combine,
		Degrade:       policy,
		Retry:         pipexec.RetryPolicy{MaxAttempts: *retries},
		ReadAhead:     *rdAhead,
		DecodeWorkers: *decodeW,
		MaxReadAhead:  *maxRA,
	}
	if *autotune {
		cfg.AutoTune = &tune.Config{Budget: *budget}
	} else if *budget != 0 {
		fatal(fmt.Errorf("-budget needs -autotune"))
	}
	if *traceOut != "" && !*autotune {
		fatal(fmt.Errorf("-tunetrace needs -autotune"))
	}
	if *memBud != "" {
		n, err := membudget.ParseBytes(*memBud)
		if err != nil {
			fatal(err)
		}
		cfg.MemBudget = membudget.New("stapdetect", n)
	}
	cfg.BandRanges = *band

	var (
		src     pipexec.CubeSource
		fileSrc *pipexec.FileSource
	)
	if *data != "" {
		fs, err := pfs.CreateReal(*data, *dirs, *unit, true)
		if err != nil {
			fatal(err)
		}
		if *faults != "" {
			plan, err := pfs.ParseFaultSpec(*faults)
			if err != nil {
				fatal(err)
			}
			fs.SetFaults(plan)
			fmt.Printf("injecting faults: %v; degradation policy %v, %d read attempts\n",
				plan, policy, cfg.Retry.MaxAttempts)
		}
		fsrc, err := pipexec.NewFileSource(fs, sc.Dims, *files)
		if err != nil {
			fatal(err)
		}
		src, fileSrc = fsrc, fsrc
		if cfg.MemBudget != nil {
			// Under a budget the readahead window's cold cubes are better on
			// disk than squeezing out admissions: arm the spill tier against
			// the same striped store the dataset lives on.
			cfg.Spill = &pipexec.SpillConfig{FS: fs}
		}
		fmt.Printf("reading %v CPIs from striped dataset %s (stripe factor %d)\n", sc.Dims, *data, *dirs)
	} else {
		if *faults != "" {
			fatal(fmt.Errorf("-faults injects into the striped file system and needs -data"))
		}
		if *stream {
			// The streaming frontend: a credit-windowed producer publishes
			// into pooled slabs, the same source the detection service feeds
			// from the network. The window tracks the (possibly autotuned)
			// readahead depth so the producer stays ahead of the pipeline.
			window := cfg.ReadAhead + 1
			gen := pipexec.NewGeneratorSource(sc.Dims, window, sc.Generate)
			defer gen.Close()
			src = gen
			fmt.Printf("streaming %v CPIs through pooled slabs (producer window %d)\n", sc.Dims, window)
		} else {
			src = pipexec.ScenarioSource(sc)
			fmt.Printf("generating %v CPIs in memory\n", sc.Dims)
		}
	}

	var res *pipexec.Result
	if *band > 0 {
		if *stream {
			fatal(fmt.Errorf("-band is a sequential out-of-core mode and cannot feed from -stream"))
		}
		bsrc := pipexec.BandedSource(fileSrc)
		if fileSrc == nil {
			bsrc = bandedScenarioSource(sc)
		}
		fmt.Printf("banded execution: %d range bins per band\n", *band)
		res, err = pipexec.RunBanded(context.Background(), cfg, bsrc, *cpis)
	} else {
		res, err = pipexec.Run(context.Background(), cfg, src, *cpis)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("processed %d CPIs in %v — throughput %.2f CPIs/s, mean latency %v\n",
		len(res.CPIs), res.Elapsed.Round(1e6), res.Throughput, res.MeanLatency().Round(1e6))
	st := res.Stats
	if *faults != "" || st.Retries+st.Drops+st.ChecksumFailures+st.DeadlineHits+st.WeightFallbacks+st.ChunkRereads > 0 {
		fmt.Printf("resilience: %v\n", st)
		if len(st.DroppedSeqs) > 0 {
			fmt.Printf("  dropped CPIs: %v\n", st.DroppedSeqs)
		}
	}
	if *data != "" && *band == 0 {
		fmt.Printf("I/O frontend: readahead=%d decode-workers=%d source-stalls=%d (%v stalled) window-occupancy %.2f\n",
			st.FinalReadAhead, st.FinalDecodeWorkers, st.SourceStalls, st.SourceStall.Round(1e6), st.ReadaheadReady)
	}
	if *memBud != "" {
		lim := "unlimited"
		if st.MemLimit > 0 {
			lim = membudget.FormatBytes(st.MemLimit)
		}
		fmt.Printf("memory: budget %s, high water %s, budget stalls %d (%v stalled)\n",
			lim, membudget.FormatBytes(st.MemHighWater), st.MemStalls, st.MemStall.Round(1e6))
		if st.Spills+st.Reloads > 0 {
			fmt.Printf("  spill tier: %d spills (%s written), %d reloads (%s re-read)\n",
				st.Spills, membudget.FormatBytes(st.SpillBytes), st.Reloads, membudget.FormatBytes(st.ReloadBytes))
		}
	}
	fmt.Println("per-stage busy time (mean per CPI):")
	for _, st := range res.Stages {
		fmt.Printf("  %-18s %v\n", st.Name, st.MeanBusy().Round(1e5))
	}
	if *stats {
		fmt.Println("per-stage service-time histograms:")
		for _, h := range res.Stats.StageTimes {
			fmt.Printf("  %v\n", h)
		}
	}
	if *autotune {
		applied := 0
		for _, d := range res.Stats.TuneDecisions {
			if d.Applied {
				applied++
			}
		}
		fmt.Printf("autotune: %d decisions (%d applied), final split %s\n",
			len(res.Stats.TuneDecisions), applied, pipexec.FormatSplit(res.Stats.TuneStages, res.Stats.TuneFinalSplit))
		for _, d := range res.Stats.TuneDecisions {
			if !d.Applied {
				continue
			}
			fmt.Printf("  CPI %-5d %s -> %s (bottleneck %s, %v/CPI)\n",
				d.CPI, pipexec.FormatSplit(res.Stats.TuneStages, d.Old),
				pipexec.FormatSplit(res.Stats.TuneStages, d.New),
				res.Stats.TuneStages[d.Bottleneck], d.Service[d.Bottleneck].Round(1e4))
		}
		if *traceOut != "" {
			// The full log, no-op windows included — a trace showing zero
			// applied rebalances still explains itself (warmup, hysteresis,
			// starved windows) instead of being silently empty.
			trace := struct {
				Stages     []string        `json:"stages"`
				FinalSplit []int           `json:"final_split"`
				MemBudget  int64           `json:"mem_budget"`
				Decisions  []tune.Decision `json:"decisions"`
			}{res.Stats.TuneStages, res.Stats.TuneFinalSplit, res.Stats.MemLimit, res.Stats.TuneDecisions}
			b, err := json.MarshalIndent(trace, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*traceOut, append(b, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("decision log (%d entries) written to %s\n", len(res.Stats.TuneDecisions), *traceOut)
		}
	}
	fmt.Printf("ground truth: %d injected targets\n", len(sc.Targets))
	for _, tg := range sc.Targets {
		fmt.Printf("  angle=%.2f doppler=%.3f range=%d snr=%.1fdB -> expected bin %d\n",
			tg.Angle, tg.Doppler, tg.Range, tg.SNR, params.BinForDoppler(tg.Doppler))
	}
	for _, c := range res.CPIs {
		dets := stap.ClusterDetections(c.Detections, 4)
		fmt.Printf("CPI %d: %d detections (%d clustered), latency %v\n",
			c.Seq, len(c.Detections), len(dets), c.Latency.Round(1e6))
		for i, d := range dets {
			if i >= *maxPrint {
				fmt.Printf("  ... %d more\n", len(dets)-i)
				break
			}
			fmt.Printf("  beam=%d doppler-bin=%-3d range=%-4d power=%8.1f snr=%.1fdB\n",
				d.Beam, d.Bin, d.Range, d.Power, d.SNR(&params))
		}
	}
}

// bandedScenarioSource adapts an in-memory generator scenario to the banded
// executor: the full cube is synthesised once per CPI and bands are copied
// out of it. Real out-of-core runs come from -data, where ReadBand fetches
// only the band's chunks; this adapter exists so -band is demonstrable
// without staging a dataset.
func bandedScenarioSource(sc *radar.Scenario) pipexec.BandedSource {
	var (
		seq  = ^uint64(0)
		full *cube.Cube
	)
	return pipexec.FuncBandSource(func(k uint64, lo, hi int, dst *cube.Cube) error {
		if k != seq {
			cb, err := sc.Generate(k)
			if err != nil {
				return err
			}
			full, seq = cb, k
		}
		return stap.CopyBand(dst, full, lo)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stapdetect:", err)
	os.Exit(1)
}
