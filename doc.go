// Package stapio reproduces "Design and Evaluation of I/O Strategies for
// Parallel Pipelined STAP Applications" (Liao, Choudhary, Weiner,
// Varshney; IPPS/IPDPS 2000) as a Go library.
//
// The system has two halves:
//
//   - A working parallel pipelined STAP processor (internal/stap,
//     internal/pipexec): Doppler filter processing, easy/hard adaptive
//     weight computation, easy/hard beamforming, pulse compression, and
//     CFAR detection over goroutine worker pools, fed by a striped
//     parallel-file-system backend (internal/pfs) with asynchronous
//     iread/iowait-style reads.
//
//   - A performance model of the paper's machines (internal/core,
//     internal/machine, internal/pfs, internal/pipesim): the pipeline
//     task graph with spatial and temporal dependencies, the throughput
//     and latency equations, the task-combination algebra, and a
//     discrete-event simulation that regenerates every table and figure
//     of the paper's evaluation (internal/experiments, cmd/stapbench).
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// reconstruction decisions, and EXPERIMENTS.md for paper-vs-measured
// results.
package stapio
