#!/bin/sh
# End-to-end smoke test for the network detection service: build the
# daemon and the load generator, start the daemon on an ephemeral
# loopback port, push 50 CPIs through it closed-loop, then 50 more over
# streaming ingest with Poisson arrivals, require zero dropped CPIs in
# both legs (staploadgen exits non-zero on any drop), and verify the
# daemon shuts down cleanly on SIGTERM.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'status=$?; [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null; rm -rf "$workdir"; exit $status' EXIT INT TERM

go build -o "$workdir/stapserve" ./cmd/stapserve
go build -o "$workdir/staploadgen" ./cmd/staploadgen

"$workdir/stapserve" -addr 127.0.0.1:0 -http "" -scenario small \
    -replicas 1 -announce "$workdir/addr" &
server_pid=$!

# Wait for the announce file (the daemon writes it once the listener is up).
i=0
while [ ! -s "$workdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_smoke: server never announced its address" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || { echo "serve_smoke: server died on startup" >&2; exit 1; }
    sleep 0.1
done
addr=$(head -n 1 "$workdir/addr")

"$workdir/staploadgen" -addr "$addr" -scenario small -n 50 -json "$workdir/bench.json"
grep -q '"dropped": 0' "$workdir/bench.json" || {
    echo "serve_smoke: BENCH json does not record zero drops" >&2
    exit 1
}

# Streaming-ingest leg: the same 50 CPIs cross the wire as chunk frames
# (no file image server-side) under open-loop Poisson arrivals.
"$workdir/staploadgen" -addr "$addr" -scenario small -n 50 -stream \
    -arrivals poisson -rate 200 -seed 1 -json "$workdir/bench_stream.json"
grep -q '"dropped": 0' "$workdir/bench_stream.json" || {
    echo "serve_smoke: streaming BENCH json does not record zero drops" >&2
    exit 1
}
grep -q '"streaming": true' "$workdir/bench_stream.json" || {
    echo "serve_smoke: streaming leg did not take the streaming path" >&2
    exit 1
}

kill -TERM "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_smoke: server did not exit within 10s of SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$server_pid" 2>/dev/null || {
    echo "serve_smoke: server exited non-zero on SIGTERM" >&2
    exit 1
}
server_pid=
echo "serve_smoke: ok (50 framed + 50 streamed CPIs, zero dropped, clean shutdown)"
