#!/bin/sh
# Crash-restart chaos smoke for the detection fleet: build the daemon and
# the load generator, start THREE servers on ephemeral loopback ports, and
# drive a paced closed-loop run across all of them through the fleet
# client. Mid-run, one server is SIGKILLed, then restarted on the same
# TCP and HTTP addresses while the load is still flowing.
#
# Assertions:
#   - the load generator exits 0 under -tolerate: every CPI was answered,
#     completed or typed-failed — a SIGKILL must never hang a producer;
#   - the JSON records zero unanswered CPIs;
#   - at least one CPI failed over off the killed server;
#   - the killed server's circuit breaker completed the open -> half-open
#     -> closed recovery arc (breaker_closes present; it is omitted at 0).
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'status=$?; for p in "${pid1:-}" "${pid2:-}" "${pid3:-}" "${pid2b:-}" "${load_pid:-}"; do
    [ -n "$p" ] && kill -KILL "$p" 2>/dev/null; done; rm -rf "$workdir"; exit $status' EXIT INT TERM

go build -o "$workdir/stapserve" ./cmd/stapserve
go build -o "$workdir/staploadgen" ./cmd/staploadgen

# wait_announce <file> <pid>: block until the announce file is written.
wait_announce() {
    i=0
    while [ ! -s "$1" ] || [ "$(wc -l < "$1")" -lt 2 ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos_smoke: server never announced its address" >&2
            exit 1
        fi
        kill -0 "$2" 2>/dev/null || { echo "chaos_smoke: server died on startup" >&2; exit 1; }
        sleep 0.1
    done
}

start_server() { # $1 = announce file, $2 = tcp addr, $3 = http addr
    "$workdir/stapserve" -addr "$2" -http "$3" -scenario small \
        -replicas 1 -announce "$1" 2>> "$workdir/servers.log" &
}

start_server "$workdir/a1" 127.0.0.1:0 127.0.0.1:0; pid1=$!
start_server "$workdir/a2" 127.0.0.1:0 127.0.0.1:0; pid2=$!
start_server "$workdir/a3" 127.0.0.1:0 127.0.0.1:0; pid3=$!
wait_announce "$workdir/a1" "$pid1"
wait_announce "$workdir/a2" "$pid2"
wait_announce "$workdir/a3" "$pid3"
t1=$(head -n 1 "$workdir/a1"); h1=$(sed -n 2p "$workdir/a1")
t2=$(head -n 1 "$workdir/a2"); h2=$(sed -n 2p "$workdir/a2")
t3=$(head -n 1 "$workdir/a3"); h3=$(sed -n 2p "$workdir/a3")

# Paced run: 240 CPIs at >= 10ms apart stretches the load past the kill,
# the restart, and the breaker's recovery trial. -tolerate accepts typed
# per-CPI failures (abandoned on the killed server) but still fails the
# run if any CPI goes unanswered.
"$workdir/staploadgen" -addr "$t1,$t2,$t3" -health "$h1,$h2,$h3" \
    -scenario small -n 240 -window 6 -pace 10ms -retries 6 \
    -breaker-cooldown 250ms -tolerate -json "$workdir/chaos.json" \
    > "$workdir/load.log" 2>&1 &
load_pid=$!

# Let the run ramp, then SIGKILL server 2 with CPIs in flight.
sleep 0.8
kill -0 "$load_pid" 2>/dev/null || { echo "chaos_smoke: load generator died before the kill" >&2; cat "$workdir/load.log" >&2; exit 1; }
kill -KILL "$pid2"
wait "$pid2" 2>/dev/null || true
pid2=

# Restart it on the SAME TCP and HTTP addresses mid-load: the fleet must
# probe /healthz on the old address and walk the breaker back closed.
sleep 0.5
start_server "$workdir/a2b" "$t2" "$h2"; pid2b=$!
wait_announce "$workdir/a2b" "$pid2b"

kill -0 "$load_pid" 2>/dev/null || { echo "chaos_smoke: load generator died around the restart" >&2; cat "$workdir/load.log" >&2; exit 1; }
if ! wait "$load_pid"; then
    echo "chaos_smoke: load generator failed" >&2
    cat "$workdir/load.log" >&2
    exit 1
fi
load_pid=

grep -q '"unanswered": 0' "$workdir/chaos.json" || {
    echo "chaos_smoke: some CPIs were never answered" >&2
    cat "$workdir/load.log" >&2
    exit 1
}
# failovers/breaker_closes are omitempty: their presence means nonzero.
grep -q '"failovers":' "$workdir/chaos.json" || {
    echo "chaos_smoke: no failovers recorded across a SIGKILL" >&2
    cat "$workdir/load.log" "$workdir/chaos.json" >&2
    exit 1
}
grep -q '"breaker_closes":' "$workdir/chaos.json" || {
    echo "chaos_smoke: the killed server's breaker never recovered" >&2
    cat "$workdir/load.log" "$workdir/chaos.json" >&2
    exit 1
}

for p in "$pid1" "$pid3" "$pid2b"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "$pid1" "$pid3" "$pid2b"; do
    i=0
    while kill -0 "$p" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos_smoke: a server did not exit within 10s of SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
done
pid1=; pid3=; pid2b=
echo "chaos_smoke: ok (240 CPIs across 3 servers, SIGKILL + restart, zero unanswered, breaker recovered)"
