#!/bin/sh
# Non-blocking benchmark regression check: rerun the auto-tuner sweep,
# diff its steady throughput against the committed baselines, and (under
# GitHub Actions) append the markdown table to the job summary.
#
# Exit status is always 0 for timing differences — shared runners are too
# noisy to gate on — and non-zero only if the benchmarks fail to run.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp -t bench5.XXXXXX.json)
trap 'rm -f "$out"' EXIT

go run ./cmd/benchjson -bench 'BenchmarkAutoTune' -benchtime 1x -o "$out"

table=$(go run ./cmd/benchdiff -new "$out" \
	-base BENCH_5.json -base BENCH_3.json -base BENCH_4.json)

printf '%s\n' "$table"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
	printf '%s\n' "$table" >>"$GITHUB_STEP_SUMMARY"
fi
