#!/bin/sh
# Benchmark regression check: rerun the auto-tuner sweep (median of three
# runs), diff its steady throughput against the committed baselines, and
# (under GitHub Actions) append the markdown table to the job summary.
#
# The embedded-I/O scenarios (hardweights, pccfar) are gated: their
# injected sleep-based loads make them host-independent, so a drop of more
# than 25% steady throughput against the committed baseline is a real
# regression and fails the check (exit 3). The separate-I/O slowstore
# scenario stays annotate-only — its numbers ride on the host's disk and
# timer behaviour.
#
# A second leg reruns the blocked compute-kernel microbenchmarks
# (beamform, covariance) and gates them against BENCH_9.json the same way:
# they are pure CPU work on fixed geometry, so losing more than 25% of
# their CPIs/s against the committed record means a kernel regressed.
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp -t bench6.XXXXXX.json)
kout=$(mktemp -t bench9.XXXXXX.json)
trap 'rm -f "$out" "$kout"' EXIT

go run ./cmd/benchjson -bench 'BenchmarkAutoTune' -benchtime 1x -repeat 3 -o "$out"

status=0
table=$(go run ./cmd/benchdiff -new "$out" \
	-base BENCH_6.json -base BENCH_3.json -base BENCH_4.json \
	-gate 'BenchmarkAutoTune/(hardweights|pccfar)/' -maxloss 25) || status=$?

go run ./cmd/benchjson -bench 'BenchmarkKernelBeamform|BenchmarkKernelCovariance' -repeat 3 -o "$kout"

kstatus=0
ktable=$(go run ./cmd/benchdiff -new "$kout" \
	-base BENCH_9.json \
	-gate 'BenchmarkKernel(Beamform|Covariance)' -maxloss 25) || kstatus=$?
if [ "$status" -eq 0 ]; then
	status=$kstatus
fi

table=$(printf '%s\n\n%s\n' "$table" "$ktable")
printf '%s\n' "$table"
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
	printf '%s\n' "$table" >>"$GITHUB_STEP_SUMMARY"
fi
exit "$status"
