#!/bin/sh
# Pre-commit gate: vet, staticcheck (when installed), build, and the
# race-instrumented test suite. Mirrors .github/workflows/ci.yml.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
# staticcheck is optional locally (no network install here); CI always
# runs it, so a missing binary skips rather than fails.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping (CI runs it)" >&2
fi
go build ./...
go test -race ./...
# Small-budget smoke: the pipeline under a budget barely above its minimum
# residency must complete (serializing, never deadlocking), and the banded
# executor must finish in less memory than even one cube's residency.
go run ./cmd/stapdetect -small -cpis 4 -membudget 200K >/dev/null
go run ./cmd/stapdetect -small -cpis 4 -membudget 100K -band 16 >/dev/null
sh scripts/serve_smoke.sh
sh scripts/chaos_smoke.sh
