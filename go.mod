module stapio

go 1.22
