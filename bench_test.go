// Benchmark harness: one benchmark per paper table and figure, plus kernel
// microbenchmarks and the ablation studies called out in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks time a full regeneration of the artifact on
// the simulated machines and report the headline throughput/latency (or
// improvement) as custom metrics, so `-bench` output doubles as a compact
// results summary.
package stapio_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/experiments"
	"stapio/internal/machine"
	"stapio/internal/membudget"
	"stapio/internal/pfs"
	"stapio/internal/pipesim"
	"stapio/internal/pipexec"
	"stapio/internal/radar"
	"stapio/internal/signal"
	"stapio/internal/stap"
	"stapio/internal/tune"
)

func benchOpts() pipesim.Options {
	return pipesim.Options{CPIs: 40, Warmup: 10, PrefetchDepth: 1, BufferDepth: 2}
}

// benchGrid measures one (design, setup, case) cell b.N times and reports
// throughput and latency metrics.
func benchGrid(b *testing.B, d experiments.Design) {
	for _, s := range experiments.Setups() {
		for _, c := range experiments.Cases() {
			name := fmt.Sprintf("%s/scale%d", s.FS.Name, c.Scale)
			b.Run(name, func(b *testing.B) {
				p, err := experiments.Build(d, c.Scale)
				if err != nil {
					b.Fatal(err)
				}
				var last *pipesim.Result
				for i := 0; i < b.N; i++ {
					last, err = pipesim.Measure(p, s.Prof, s.FS, benchOpts())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(last.Throughput, "CPIs/s")
				b.ReportMetric(last.Latency*1e3, "latency-ms")
			})
		}
	}
}

// BenchmarkTable1EmbeddedIO regenerates Table 1: the seven-task pipeline
// with the parallel read embedded in the Doppler filter task.
func BenchmarkTable1EmbeddedIO(b *testing.B) { benchGrid(b, experiments.Embedded) }

// BenchmarkTable2SeparateIO regenerates Table 2: the eight-task pipeline
// with a dedicated parallel-read task.
func BenchmarkTable2SeparateIO(b *testing.B) { benchGrid(b, experiments.Separate) }

// BenchmarkTable3TaskCombining regenerates Table 3: pulse compression and
// CFAR merged into a single task.
func BenchmarkTable3TaskCombining(b *testing.B) { benchGrid(b, experiments.Combined) }

// BenchmarkTable4LatencyImprovement regenerates Table 4: the percentage
// latency improvement of combining, reported per cell as a metric.
func BenchmarkTable4LatencyImprovement(b *testing.B) {
	for _, s := range experiments.Setups() {
		for _, c := range experiments.Cases() {
			name := fmt.Sprintf("%s/scale%d", s.FS.Name, c.Scale)
			b.Run(name, func(b *testing.B) {
				emb, err := experiments.Build(experiments.Embedded, c.Scale)
				if err != nil {
					b.Fatal(err)
				}
				comb, err := experiments.Build(experiments.Combined, c.Scale)
				if err != nil {
					b.Fatal(err)
				}
				var imp float64
				for i := 0; i < b.N; i++ {
					re, err := pipesim.Measure(emb, s.Prof, s.FS, benchOpts())
					if err != nil {
						b.Fatal(err)
					}
					rc, err := pipesim.Measure(comb, s.Prof, s.FS, benchOpts())
					if err != nil {
						b.Fatal(err)
					}
					imp = 100 * (re.Latency - rc.Latency) / re.Latency
				}
				b.ReportMetric(imp, "improv-%")
			})
		}
	}
}

// benchFigure regenerates one of the bar-chart figures (5-7) — grid run
// plus chart rendering.
func benchFigure(b *testing.B, d experiments.Design, title string) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunGrid(d, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		thr, lat := experiments.Figure(g, title)
		thr.Render(io.Discard)
		lat.Render(io.Discard)
	}
}

// BenchmarkFigure5 regenerates Figure 5 (embedded-I/O bar charts).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Embedded, "Figure 5") }

// BenchmarkFigure6 regenerates Figure 6 (separate-I/O bar charts).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Separate, "Figure 6") }

// BenchmarkFigure7 regenerates Figure 7 (combined-task bar charts).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Combined, "Figure 7") }

// BenchmarkFigure8 regenerates Figure 8 (7-task vs 6-task comparison).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emb, err := experiments.RunGrid(experiments.Embedded, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		comb, err := experiments.RunGrid(experiments.Combined, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		thr, lat := experiments.Figure8(emb, comb)
		thr.Render(io.Discard)
		lat.Render(io.Discard)
	}
}

// ---- Ablations (DESIGN.md Section 4) ----

// BenchmarkAblationPrefetchDepth sweeps the asynchronous read prefetch
// window on the bottlenecked configuration.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	p, err := experiments.Build(experiments.Embedded, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			opts := benchOpts()
			opts.PrefetchDepth = depth
			var last *pipesim.Result
			for i := 0; i < b.N; i++ {
				last, err = pipesim.Measure(p, machine.Paragon(), pfs.ParagonPFS(16), opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "CPIs/s")
		})
	}
}

// BenchmarkAblationStripeFactor sweeps the stripe factor at the largest
// node case, locating the point where the file system stops being the
// bottleneck.
func BenchmarkAblationStripeFactor(b *testing.B) {
	p, err := experiments.Build(experiments.Embedded, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, sf := range []int{4, 8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("stripe%d", sf), func(b *testing.B) {
			var last *pipesim.Result
			for i := 0; i < b.N; i++ {
				last, err = pipesim.Measure(p, machine.Paragon(), pfs.ParagonPFS(sf), benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "CPIs/s")
		})
	}
}

// BenchmarkAblationMergePairs tries combining other spatially adjacent
// task pairs, confirming the paper's choice of PC+CFAR and that the
// read+Doppler merge is exactly the embedded design.
func BenchmarkAblationMergePairs(b *testing.B) {
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	sep, err := experiments.Build(experiments.Separate, 1)
	if err != nil {
		b.Fatal(err)
	}
	pairs := []struct {
		name string
		i, j int
	}{
		{"read+doppler", 0, 1},
		{"doppler+easyweight", 1, 2},
		{"pc+cfar", 6, 7},
	}
	for _, pr := range pairs {
		b.Run(pr.name, func(b *testing.B) {
			m, err := sep.Merge(pr.i, pr.j)
			if err != nil {
				b.Fatal(err)
			}
			var last *pipesim.Result
			for i := 0; i < b.N; i++ {
				last, err = pipesim.Measure(m, prof, fsCfg, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Latency*1e3, "latency-ms")
			b.ReportMetric(last.Throughput, "CPIs/s")
		})
	}
}

// BenchmarkAblationStripeUnit sweeps the stripe unit size at a fixed
// stripe factor: smaller units raise per-request overhead, larger ones
// reduce parallel spread for partial reads.
func BenchmarkAblationStripeUnit(b *testing.B) {
	p, err := experiments.Build(experiments.Embedded, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, unit := range []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("unit%dKiB", unit>>10), func(b *testing.B) {
			cfg := pfs.ParagonPFS(16)
			cfg.StripeUnit = unit
			var last *pipesim.Result
			for i := 0; i < b.N; i++ {
				last, err = pipesim.Measure(p, machine.Paragon(), cfg, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "CPIs/s")
		})
	}
}

// BenchmarkAblationRadarWriter measures the cost of the radar concurrently
// refilling the staging files while the pipeline reads them (the paper's
// round-robin staggering scenario), per stripe factor.
func BenchmarkAblationRadarWriter(b *testing.B) {
	p, err := experiments.Build(experiments.Embedded, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, sf := range []int{16, 64} {
		for _, writer := range []bool{false, true} {
			name := fmt.Sprintf("stripe%d/writer=%v", sf, writer)
			b.Run(name, func(b *testing.B) {
				opts := benchOpts()
				if writer {
					opts.RadarWriteBytes = 16 << 20
				}
				var last *pipesim.Result
				for i := 0; i < b.N; i++ {
					last, err = pipesim.Run(p, machine.Paragon(), pfs.ParagonPFS(sf), opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(last.Throughput, "CPIs/s")
			})
		}
	}
}

// BenchmarkAblationReportOutput measures the cost of persisting detection
// reports from the CFAR task, async vs sync file systems.
func BenchmarkAblationReportOutput(b *testing.B) {
	base, err := experiments.Build(experiments.Embedded, 2)
	if err != nil {
		b.Fatal(err)
	}
	withOut, err := core.AttachReportOutput(base, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	async := pfs.ParagonPFS(64)
	sync := async
	sync.Async = false
	sync.Name = "PFS-64-sync"
	for _, cfg := range []struct {
		name string
		p    *core.Pipeline
		fs   pfs.Config
	}{
		{"async/no-reports", base, async},
		{"async/reports", withOut, async},
		{"sync/no-reports", base, sync},
		{"sync/reports", withOut, sync},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var last *pipesim.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipesim.Measure(cfg.p, machine.Paragon(), cfg.fs, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "CPIs/s")
			b.ReportMetric(last.Latency*1e3, "latency-ms")
		})
	}
}

// BenchmarkAblationStaggers sweeps the PRI-stagger count: more staggers
// raise the hard bins' adaptive degrees of freedom (and the Doppler and
// weight workloads with them).
func BenchmarkAblationStaggers(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("staggers%d", k), func(b *testing.B) {
			p := experiments.PaperParams()
			p.Staggers = k
			w := stap.ComputeWorkloads(&p)
			pipe, err := core.BuildEmbedded(w, experiments.BaseNodes().Scale(2))
			if err != nil {
				b.Fatal(err)
			}
			var last *pipesim.Result
			for i := 0; i < b.N; i++ {
				last, err = pipesim.Measure(pipe, machine.Paragon(), pfs.ParagonPFS(64), benchOpts())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "CPIs/s")
			b.ReportMetric(last.Latency*1e3, "latency-ms")
		})
	}
}

// ---- Kernel microbenchmarks (the real signal processing) ----

func benchParams() stap.Params {
	// A mid-size cube keeps kernel benches meaningful but quick.
	p := stap.DefaultParams(cube.Dims{Channels: 8, Pulses: 65, Ranges: 512})
	return p
}

func benchCube(b *testing.B, p stap.Params) *cube.Cube {
	b.Helper()
	s := &radar.Scenario{
		Dims: p.Dims, PulseLen: p.PulseLen, Bandwidth: p.Bandwidth,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: 0.2, Doppler: 0.2, Range: 100, SNR: 10}},
		Seed:       1,
	}
	cb, err := s.Generate(0)
	if err != nil {
		b.Fatal(err)
	}
	return cb
}

// BenchmarkKernelFFT measures the radix-2 FFT at pulse-compression size.
func BenchmarkKernelFFT(b *testing.B) {
	for _, n := range []int{128, 1024, 4096} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			x[1] = 1
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				signal.FFT(x)
			}
		})
	}
}

// BenchmarkKernelDoppler measures task 0 on one CPI. "oneshot" is the
// allocating convenience form (fresh output cube and scratch per call);
// "steady" is the form the pipeline runs in steady state — pooled output
// cube plus per-worker scratch — and must stay at zero allocations.
func BenchmarkKernelDoppler(b *testing.B) {
	p := benchParams()
	cb := benchCube(b, p)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stap.DopplerFilter(&p, cb, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("steady", func(b *testing.B) {
		out := stap.NewDopplerCube(&p)
		sc := stap.NewDopplerScratch(&p)
		blk := cube.Block{Lo: 0, Hi: p.Dims.Ranges}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := stap.DopplerFilterRanges(&p, cb, blk, out, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelWeights measures tasks 1 and 2 on one CPI.
func BenchmarkKernelWeights(b *testing.B) {
	p := benchParams()
	cb := benchCube(b, p)
	dc, err := stap.DopplerFilter(&p, cb, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("easy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stap.ComputeWeights(&p, dc, p.EasyBins(), false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stap.ComputeWeights(&p, dc, p.HardBins(), true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelBeamform measures tasks 3 and 4 on one CPI.
func BenchmarkKernelBeamform(b *testing.B) {
	p := benchParams()
	cb := benchCube(b, p)
	dc, err := stap.DopplerFilter(&p, cb, 0)
	if err != nil {
		b.Fatal(err)
	}
	easy := stap.InitialWeights(&p, p.EasyBins())
	hard := stap.InitialWeights(&p, p.HardBins())
	bc := stap.NewBeamCube(&p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stap.Beamform(&p, dc, easy, p.EasyBins(), bc); err != nil {
			b.Fatal(err)
		}
		if err := stap.Beamform(&p, dc, hard, p.HardBins(), bc); err != nil {
			b.Fatal(err)
		}
	}
	// CPIs/s lets benchdiff gate this kernel alongside the pipeline runs.
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "CPIs/s")
}

// BenchmarkKernelCovariance measures the covariance estimation half of
// tasks 1 and 2 in isolation: the panel-packed Hermitian accumulation,
// without the solve that ComputeWeights adds on top.
func BenchmarkKernelCovariance(b *testing.B) {
	p := benchParams()
	cb := benchCube(b, p)
	dc, err := stap.DopplerFilter(&p, cb, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		bins []int
		hard bool
	}{
		{"easy", p.EasyBins(), false},
		{"hard", p.HardBins(), true},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stap.EstimateCovariances(&p, dc, c.bins, c.hard); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "CPIs/s")
		})
	}
}

// BenchmarkKernelPulseCompressionCFAR measures tasks 5 and 6 on one CPI.
func BenchmarkKernelPulseCompressionCFAR(b *testing.B) {
	p := benchParams()
	bc := stap.NewBeamCube(&p)
	for i := range bc.Data {
		bc.Data[i] = complex(float64(i%7)*0.1, 0.05)
	}
	comp := stap.NewCompressor(&p)
	b.Run("pulsecomp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := stap.Compress(&p, bc, comp, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cfar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stap.CFAR(&p, bc, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetectionPerformance measures end-to-end Pd/Pfa of the full
// chain per CFAR variant via Monte-Carlo trials (reported as metrics).
func BenchmarkDetectionPerformance(b *testing.B) {
	sc := &radar.Scenario{
		Dims:       cube.Dims{Channels: 4, Pulses: 17, Ranges: 64},
		PulseLen:   8,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: 0, Doppler: 0.25, Range: 20, SNR: 12}},
		Clutter:    radar.Clutter{Patches: 8, CNR: 20, Beta: 1},
		Seed:       99,
	}
	for _, kind := range []stap.CFARKind{stap.CFARCellAveraging, stap.CFARGreatestOf, stap.CFAROrderedStatistic} {
		b.Run(kind.String(), func(b *testing.B) {
			p := stap.DefaultParams(sc.Dims)
			p.PulseLen = sc.PulseLen
			p.Bandwidth = sc.Bandwidth
			p.CFAR.Kind = kind
			p.CFAR.ThresholdDB = 13
			cfg := stap.DefaultMCConfig()
			cfg.Trials = 6
			var stats stap.MCStats
			for i := 0; i < b.N; i++ {
				var err error
				stats, err = stap.MonteCarlo(sc, p, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Pd(), "Pd")
			b.ReportMetric(stats.Pfa()*1e6, "Pfa-ppm")
		})
	}
}

// BenchmarkRealPipelineIODesigns compares the two I/O designs and task
// combination on the real executor with real striped files — the
// wall-clock analogue of Tables 1-3.
func BenchmarkRealPipelineIODesigns(b *testing.B) {
	s := radar.SmallTestScenario()
	root := b.TempDir()
	fs, err := pfs.CreateReal(root, 4, 4096, true)
	if err != nil {
		b.Fatal(err)
	}
	const files = 4
	if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name     string
		separate bool
		combine  bool
	}{
		{"embedded", false, false},
		{"separate", true, false},
		{"combined", false, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := stap.DefaultParams(s.Dims)
			p.PulseLen = s.PulseLen
			p.Bandwidth = s.Bandwidth
			pc := pipexec.Config{
				Params: p,
				Workers: core.STAPNodes{
					Doppler: 2, EasyWeight: 1, HardWeight: 1,
					EasyBF: 2, HardBF: 1, PulseComp: 2, CFAR: 1,
				},
				SeparateIO:    cfg.separate,
				CombinePCCFAR: cfg.combine,
			}
			src, err := pipexec.NewFileSource(fs, s.Dims, files)
			if err != nil {
				b.Fatal(err)
			}
			var last *pipexec.Result
			for i := 0; i < b.N; i++ {
				last, err = pipexec.Run(context.Background(), pc, src, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.SteadyThroughput(), "CPIs/s")
			b.ReportMetric(float64(last.MeanLatency().Microseconds())/1e3, "latency-ms")
		})
	}
}

// BenchmarkRealPipelineReadahead sweeps the readahead depth and the
// decode-worker count on the separate-I/O design against a deliberately
// slow striped store (an injected 2ms service latency per stripe read,
// modelling a loaded parallel file system). At depth 1 the pipeline is
// read-bound; deeper windows overlap several striped reads and their
// decode/verify work, so throughput recovers toward the compute bound —
// the sweep behind BENCH_3.json.
func BenchmarkRealPipelineReadahead(b *testing.B) {
	s := radar.SmallTestScenario()
	root := b.TempDir()
	fs, err := pfs.CreateReal(root, 4, 4096, true)
	if err != nil {
		b.Fatal(err)
	}
	const files = 4
	if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
		b.Fatal(err)
	}
	fs.SetFaults(&pfs.FaultPlan{Seed: 1, SlowRate: 1, SlowDelay: 2 * time.Millisecond})
	src, err := pipexec.NewFileSource(fs, s.Dims, files)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("depth%d/decode%d", depth, workers), func(b *testing.B) {
				p := stap.DefaultParams(s.Dims)
				p.PulseLen = s.PulseLen
				p.Bandwidth = s.Bandwidth
				pc := pipexec.Config{
					Params: p,
					Workers: core.STAPNodes{
						Doppler: 2, EasyWeight: 1, HardWeight: 1,
						EasyBF: 2, HardBF: 1, PulseComp: 2, CFAR: 1,
					},
					SeparateIO:    true,
					ReadAhead:     depth,
					DecodeWorkers: workers,
				}
				var last *pipexec.Result
				for i := 0; i < b.N; i++ {
					last, err = pipexec.Run(context.Background(), pc, src, 8)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(last.SteadyThroughput(), "CPIs/s")
				b.ReportMetric(float64(last.MeanLatency().Microseconds())/1e3, "latency-ms")
			})
		}
	}
}

// BenchmarkAutoTune compares three worker-assignment strategies on skewed
// load scenarios — the sweep behind BENCH_6.json:
//
//   - even: the uniform split a user picks with no timing information
//   - stapopt: the offline water-filling optimum computed from the known
//     injected per-stage workloads (the best hand-picked split)
//   - autotune: the online controller starting from the even split
//
// Per-stage load is injected via pipexec.Config.StageLoad (sleep-based
// per-item service time), which makes the paper's T_i = W_i/P_i model
// physically real and host-independent: stage wall time scales with
// items/workers regardless of core count. The injected totals are chosen
// so the balanced split beats the even one by construction; the benchmark
// measures whether the tuner actually finds it from cold within the run.
// "CPIs/s" is whole-run steady throughput, "tail-CPIs/s" the last third —
// the post-convergence rate the tuner should push toward the stapopt line.
//
// The slowstore scenario exercises the joint I/O + compute solve: the
// budget there covers the readahead window and decode pool as well as the
// compute workers, and the even variant's cold depth-1 frontend leaves the
// pipeline read-bound. The tuner must discover that budget slots are worth
// more as prefetch depth than as compute workers ("io-rebalances" counts
// the applied decisions that moved an I/O knob, "final-readahead" the
// depth it converged to).
func BenchmarkAutoTune(b *testing.B) {
	s := radar.SmallTestScenario()
	p := stap.DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	const cpis = 72
	// Per-stage work items (the parallel() partition sizes); injected
	// per-CPI totals divide by these, and they cap useful worker counts.
	pairs := len(p.Beams) * p.Bins()
	items := [7]int{p.Dims.Ranges, len(p.EasyBins()), len(p.HardBins()), len(p.EasyBins()), len(p.HardBins()), pairs, pairs}

	scenarios := []struct {
		name    string
		combine bool
		slow    bool             // slow striped store (separate-I/O, read-bound)
		budget  int              // shared worker budget (slow: I/O knobs included)
		loads   [7]time.Duration // injected per-CPI totals, task order
	}{
		// Hard weights dominate 5x: the balanced split must strip workers
		// from the fast stages (hard weight itself caps at 3 items).
		{name: "hardweights", budget: 14, loads: [7]time.Duration{
			4 * time.Millisecond, 2 * time.Millisecond, 20 * time.Millisecond,
			2 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}},
		// Combined PC+CFAR design with the merged stage dominating.
		{name: "pccfar", combine: true, budget: 14, loads: [7]time.Duration{
			3 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
			2 * time.Millisecond, 2 * time.Millisecond, 12 * time.Millisecond, 8 * time.Millisecond}},
		// Slow store: every striped read carries a 10ms latency spike, so the
		// serial read path towers over the light compute stages. A depth-1
		// window caps the pipeline near 1/10ms; the win is moving budget into
		// prefetch slots, which no compute-only tuner can do.
		{name: "slowstore", slow: true, budget: 16, loads: [7]time.Duration{
			500 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond,
			500 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond, 500 * time.Microsecond}},
	}

	for _, sc := range scenarios {
		// The offline optimum over the injected workloads (capped by item
		// counts) — the fixed-stapopt baseline the tuner chases.
		slots := 7
		if sc.combine {
			slots = 6
		}
		work := make([]float64, slots)
		caps := make([]int, slots)
		for i := 0; i < slots; i++ {
			work[i] = float64(sc.loads[i])
			caps[i] = items[i]
		}
		if sc.combine {
			work[5] = float64(sc.loads[5] + sc.loads[6])
		}
		if sc.slow {
			// The slow scenario's offline solve spans nine slots: the read
			// slot is serial (its work is the known per-fetch latency — the
			// 10ms injected spike plus ~0.2ms of real striped read — hidden
			// by prefetch depth), the decode pool a small compute stage.
			work = append(work, float64(10200*time.Microsecond), float64(100*time.Microsecond))
			caps = append(caps, 32, 16)
		}
		opt := tune.Balance(work, sc.budget, caps)
		optRA, optDW := 1, 1
		if sc.slow {
			optRA, optDW = opt[slots], opt[slots+1]
		}

		// The even and autotune variants start cold: depth-1, one decoder,
		// the remaining budget spread evenly over compute. A positive tuner
		// budget hands the whole allowance — I/O knobs included — to the
		// online controller.
		computeBudget := sc.budget
		atCfg := &tune.Config{Interval: 4, Warmup: 4}
		if sc.slow {
			computeBudget = sc.budget - 2
			atCfg.Budget = sc.budget
		}
		variants := []struct {
			name     string
			workers  core.STAPNodes
			ra, dw   int
			autotune *tune.Config
		}{
			{name: "even", workers: evenNodes(computeBudget), ra: 1, dw: 1},
			{name: "stapopt", workers: nodesFromSplit(opt[:slots], sc.combine), ra: optRA, dw: optDW},
			{name: "autotune", workers: evenNodes(computeBudget), ra: 1, dw: 1, autotune: atCfg},
		}
		for _, v := range variants {
			b.Run(sc.name+"/"+v.name, func(b *testing.B) {
				var load pipexec.StageLoad
				for i, d := range []*time.Duration{
					&load.Doppler, &load.EasyWeight, &load.HardWeight,
					&load.EasyBF, &load.HardBF, &load.PulseComp, &load.CFAR,
				} {
					*d = sc.loads[i] / time.Duration(items[i])
				}
				cfg := pipexec.Config{
					Params:        p,
					Workers:       v.workers,
					CombinePCCFAR: sc.combine,
					StageLoad:     load,
					AutoTune:      v.autotune,
					Buffer:        2,
				}
				var src pipexec.CubeSource = pipexec.ScenarioSource(s)
				if sc.slow {
					root := b.TempDir()
					fs, err := pfs.CreateReal(root, 4, 4096, true)
					if err != nil {
						b.Fatal(err)
					}
					const files = 4
					if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
						b.Fatal(err)
					}
					fs.SetFaults(&pfs.FaultPlan{Seed: 1, SlowRate: 1, SlowDelay: 10 * time.Millisecond})
					fsrc, err := pipexec.NewFileSource(fs, s.Dims, files)
					if err != nil {
						b.Fatal(err)
					}
					src = fsrc
					cfg.SeparateIO = true
					cfg.ReadAhead = v.ra
					cfg.DecodeWorkers = v.dw
				}
				var last *pipexec.Result
				for i := 0; i < b.N; i++ {
					var err error
					last, err = pipexec.Run(context.Background(), cfg, src, cpis)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(last.SteadyThroughput(), "CPIs/s")
				b.ReportMetric(last.SteadyTail(cpis/3), "tail-CPIs/s")
				if sc.slow {
					b.ReportMetric(float64(last.Stats.FinalReadAhead), "final-readahead")
				}
				if v.autotune != nil {
					// Applied rebalances, split into all and those that moved
					// an I/O knob (the slots from "src read" on, present only
					// when the joint solve ran).
					ioStart := len(last.Stats.TuneStages)
					for i, n := range last.Stats.TuneStages {
						if n == "src read" {
							ioStart = i
							break
						}
					}
					applied, ioRebal := 0, 0
					for _, d := range last.Stats.TuneDecisions {
						if !d.Applied {
							continue
						}
						applied++
						for i := ioStart; i < len(d.New) && i < len(d.Old); i++ {
							if d.New[i] != d.Old[i] {
								ioRebal++
								break
							}
						}
					}
					b.ReportMetric(float64(applied), "rebalances")
					if sc.slow {
						b.ReportMetric(float64(ioRebal), "io-rebalances")
					}
				}
			})
		}
	}
}

// evenNodes is the uniform cold-start split of a worker budget over the
// seven tasks.
func evenNodes(budget int) core.STAPNodes {
	s := tune.EvenSplit(budget, 7)
	return core.STAPNodes{Doppler: s[0], EasyWeight: s[1], HardWeight: s[2],
		EasyBF: s[3], HardBF: s[4], PulseComp: s[5], CFAR: s[6]}
}

// nodesFromSplit maps a tune.Balance split back onto STAPNodes. In the
// combined design the last slot is the merged PC+CFAR stage; pipexec sums
// PulseComp+CFAR for it, so the pair just has to preserve the slot total.
func nodesFromSplit(s []int, combine bool) core.STAPNodes {
	if combine {
		return core.STAPNodes{Doppler: s[0], EasyWeight: s[1], HardWeight: s[2],
			EasyBF: s[3], HardBF: s[4], PulseComp: s[5] - 1, CFAR: 1}
	}
	return core.STAPNodes{Doppler: s[0], EasyWeight: s[1], HardWeight: s[2],
		EasyBF: s[3], HardBF: s[4], PulseComp: s[5], CFAR: s[6]}
}

// BenchmarkRealPipeline runs the actual goroutine pipeline end to end,
// sweeping worker counts — the real-executor analogue of the paper's node
// scaling.
func BenchmarkRealPipeline(b *testing.B) {
	s := radar.SmallTestScenario()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			p := stap.DefaultParams(s.Dims)
			p.PulseLen = s.PulseLen
			p.Bandwidth = s.Bandwidth
			cfg := pipexec.Config{
				Params: p,
				Workers: core.STAPNodes{
					Doppler: w, EasyWeight: w, HardWeight: w,
					EasyBF: w, HardBF: w, PulseComp: w, CFAR: w,
				},
			}
			src := pipexec.ScenarioSource(s)
			var last *pipexec.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = pipexec.Run(context.Background(), cfg, src, 6)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Throughput, "CPIs/s")
		})
	}
}

// BenchmarkOutOfCore measures the price of the hard memory budget — the
// sweep behind BENCH_8.json. One chunked striped dataset is processed
// three ways: unlimited (residency merely tracked), under a budget of one
// quarter of the unlimited run's peak with the spill tier armed (deep
// readahead must now earn its bytes, evicting cold prefetches to the
// store), and through the banded executor in less memory than even one
// cube's full residency. Detections are byte-identical across all three;
// only throughput and residency move.
func BenchmarkOutOfCore(b *testing.B) {
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(b.TempDir(), 4, 4096, true)
	if err != nil {
		b.Fatal(err)
	}
	const files = 12
	if _, err := radar.WriteDatasetChunked(fs, s, files, files, false, 4096); err != nil {
		b.Fatal(err)
	}
	src, err := pipexec.NewFileSource(fs, s.Dims, files)
	if err != nil {
		b.Fatal(err)
	}
	p := stap.DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	base := pipexec.Config{
		Params: p,
		Workers: core.STAPNodes{
			Doppler: 2, EasyWeight: 1, HardWeight: 1,
			EasyBF: 2, HardBF: 1, PulseComp: 2, CFAR: 1,
		},
		SeparateIO:    true,
		ReadAhead:     4,
		DecodeWorkers: 2,
	}
	// One probe run pins the unlimited peak the budgeted legs are scaled
	// from.
	probe, err := pipexec.Run(context.Background(), base, src, files)
	if err != nil {
		b.Fatal(err)
	}
	quarter := probe.Stats.MemHighWater / 4
	if min := pipexec.MinResidency(&p); quarter < min {
		quarter = min
	}

	run := func(b *testing.B, budget int64, spill bool) {
		var last *pipexec.Result
		for i := 0; i < b.N; i++ {
			cfg := base
			if budget > 0 {
				// Budgets are per-run: an aborted run may leak charges
				// into a budget that outlives it.
				cfg.MemBudget = membudget.New("bench", budget)
			}
			if spill {
				cfg.Spill = &pipexec.SpillConfig{FS: fs}
			}
			var err error
			last, err = pipexec.Run(context.Background(), cfg, src, files)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(last.SteadyThroughput(), "CPIs/s")
		b.ReportMetric(float64(last.Stats.MemHighWater)/1024, "peak-KiB")
		b.ReportMetric(float64(last.Stats.Spills), "spills")
	}
	b.Run("unlimited", func(b *testing.B) { run(b, 0, false) })
	b.Run("quarter-budget", func(b *testing.B) { run(b, quarter, true) })
	b.Run("banded", func(b *testing.B) {
		const band = 16
		budget := pipexec.BandedMinResidency(&p, band)
		var last *pipexec.Result
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.SeparateIO = false
			cfg.BandRanges = band
			cfg.MemBudget = membudget.New("bench", budget)
			var err error
			last, err = pipexec.RunBanded(context.Background(), cfg, src, files)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(last.SteadyThroughput(), "CPIs/s")
		b.ReportMetric(float64(last.Stats.MemHighWater)/1024, "peak-KiB")
	})
}
