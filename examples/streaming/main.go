// Streaming: run the pipeline the way a deployed system would — unbounded,
// consuming detection reports as CFAR emits them, until shut down. The
// radar here is the synthetic scenario generator; swap in a FileSource
// over a striped store for disk-staged data.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pipexec"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

func main() {
	scenario := &radar.Scenario{
		Dims:       cube.Dims{Channels: 6, Pulses: 33, Ranges: 128},
		PulseLen:   16,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: 0, Doppler: 0.25, Range: 30, SNR: 10}},
		Motion:     &radar.Motion{GatesPerCPI: 4}, // the target closes range
		Clutter:    radar.Clutter{Patches: 10, CNR: 25, Beta: 1},
		Seed:       64,
	}
	params := stap.DefaultParams(scenario.Dims)
	params.PulseLen = scenario.PulseLen
	params.Bandwidth = scenario.Bandwidth
	params.CFAR.ThresholdDB = 15
	params.Forgetting = 0.5 // smooth the training across CPIs

	cfg := pipexec.Config{
		Params: params,
		Workers: core.STAPNodes{
			Doppler: 2, EasyWeight: 1, HardWeight: 2,
			EasyBF: 2, HardBF: 2, PulseComp: 2, CFAR: 1,
		},
	}
	h, err := pipexec.Stream(context.Background(), cfg, pipexec.ScenarioSource(scenario))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("streaming; the target walks 4 gates per CPI:")
	const watch = 6
	seen := 0
	for res := range h.Results {
		dets := stap.ClusterDetections(res.Detections, 4)
		best := -1
		for _, d := range dets {
			if d.Beam == 1 && d.Bin >= 7 && d.Bin <= 9 {
				best = d.Range
				break
			}
		}
		truth := scenario.TargetGate(0, res.Seq)
		fmt.Printf("  CPI %d: truth gate %3d, detected gate %3d (latency %v)\n",
			res.Seq, truth, best, res.Latency.Round(1e5))
		seen++
		if seen == watch {
			break
		}
	}
	sum, err := h.Stop()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stopped after %d CPIs, %.0f CPIs/s wall clock\n", seen, sum.Throughput)
}
