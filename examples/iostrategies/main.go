// I/O strategies: reproduce the paper's central comparison on the
// simulated machines — embedding the parallel read in the Doppler task
// versus adding a separate I/O task — across the three parallel file
// systems and three node-assignment cases.
//
//	go run ./examples/iostrategies
package main

import (
	"fmt"
	"log"
	"os"

	"stapio/internal/experiments"
	"stapio/internal/pipesim"
	"stapio/internal/report"
)

func main() {
	opts := pipesim.DefaultOptions()
	emb, err := experiments.RunGrid(experiments.Embedded, opts)
	if err != nil {
		log.Fatal(err)
	}
	sep, err := experiments.RunGrid(experiments.Separate, opts)
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title: "Embedded I/O vs separate I/O task (simulated)",
		Columns: []string{"file system", "case",
			"thr emb", "thr sep", "lat emb (s)", "lat sep (s)", "read wait emb (s)"},
	}
	for si, row := range emb.Cells {
		for ci, e := range row {
			s := sep.Cells[si][ci]
			t.AddRow(
				e.Setup.Label, e.Case.Label,
				fmt.Sprintf("%.2f", e.Measured.Throughput),
				fmt.Sprintf("%.2f", s.Measured.Throughput),
				fmt.Sprintf("%.3f", e.Measured.Latency),
				fmt.Sprintf("%.3f", s.Measured.Latency),
				fmt.Sprintf("%.3f", e.Measured.Tasks[0].ReadWait),
			)
		}
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Observations (the paper's findings):")
	fmt.Println("  * throughput is roughly equal between designs — the bottleneck task is unchanged;")
	fmt.Println("  * the separate-task latency is strictly worse — one more pipeline term (eq. 4);")
	fmt.Println("  * with stripe factor 16 the Doppler read-wait phase blows up at 200 nodes:")
	fmt.Println("    the parallel file system has become the pipeline bottleneck, relieved at 64.")
}
