// Stripe sweep: locate the point where the parallel file system stops
// being the pipeline bottleneck by sweeping the stripe factor at the
// largest node case — the design question behind the paper's PFS-16 vs
// PFS-64 comparison — and visualise one bottlenecked schedule.
//
//	go run ./examples/stripesweep
package main

import (
	"fmt"
	"log"
	"os"

	"stapio/internal/experiments"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/pipesim"
	"stapio/internal/report"
)

func main() {
	p, err := experiments.Build(experiments.Embedded, 4) // 200 compute nodes
	if err != nil {
		log.Fatal(err)
	}
	prof := machine.Paragon()
	opts := pipesim.DefaultOptions()

	chart := &report.BarChart{
		Title: "Throughput at 200 nodes vs stripe factor (Paragon PFS)",
		Unit:  "CPIs/s",
	}
	group := report.BarGroup{Label: "stripe factor sweep"}
	var prev float64
	knee := 0
	for _, sf := range []int{4, 8, 16, 32, 64, 128} {
		res, err := pipesim.Measure(p, prof, pfs.ParagonPFS(sf), opts)
		if err != nil {
			log.Fatal(err)
		}
		group.Bars = append(group.Bars, report.Bar{
			Label: fmt.Sprintf("stripe=%3d", sf),
			Value: res.Throughput,
		})
		if prev > 0 && res.Throughput < prev*1.05 && knee == 0 {
			knee = sf
		}
		prev = res.Throughput
	}
	chart.Group = []report.BarGroup{group}
	chart.Render(os.Stdout)
	if knee > 0 {
		fmt.Printf("\nthroughput stops improving around stripe factor %d — beyond that the\n", knee)
		fmt.Println("Doppler task's compute time, not the file system, limits the pipeline.")
	}

	// Show the bottlenecked schedule at the smallest stripe factor.
	fmt.Println()
	traceOpts := pipesim.Options{CPIs: 24, Warmup: 8, PrefetchDepth: 1, BufferDepth: 2, Trace: true}
	res, err := pipesim.Run(p, prof, pfs.ParagonPFS(8), traceOpts)
	if err != nil {
		log.Fatal(err)
	}
	period := 1 / res.Throughput
	g := experiments.TimelineChart(res,
		"Schedule at stripe=8 (r=read-wait = recv # compute > send . idle)",
		res.Horizon-5*period, res.Horizon)
	g.Width = 100
	g.Render(os.Stdout)
}
