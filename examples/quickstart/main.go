// Quickstart: build a small radar scenario, run the real parallel
// pipelined STAP system over a few CPIs, and print the detections next to
// the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pipexec"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

func main() {
	// 1. Describe the scene: a 6-channel, 33-pulse, 128-gate radar with
	// two targets buried in clutter and noise.
	scenario := &radar.Scenario{
		Dims:       cube.Dims{Channels: 6, Pulses: 33, Ranges: 128},
		PulseLen:   16,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets: []radar.Target{
			{Angle: 0, Doppler: 0.25, Range: 40, SNR: 8},
			{Angle: -0.5, Doppler: -0.31, Range: 90, SNR: 8},
		},
		Clutter: radar.Clutter{Patches: 10, CNR: 25, Beta: 1},
		Seed:    2026,
	}

	// 2. Configure the STAP chain to match the transmitted waveform.
	params := stap.DefaultParams(scenario.Dims)
	params.PulseLen = scenario.PulseLen
	params.Bandwidth = scenario.Bandwidth
	params.TrainHard = 64
	params.CFAR.ThresholdDB = 15

	// 3. Run the pipeline: each task gets a small pool of worker
	// goroutines (the analogue of the paper's compute-node assignments).
	cfg := pipexec.Config{
		Params: params,
		Workers: core.STAPNodes{
			Doppler: 2, EasyWeight: 1, HardWeight: 2,
			EasyBF: 2, HardBF: 2, PulseComp: 2, CFAR: 1,
		},
	}
	res, err := pipexec.Run(context.Background(), cfg, pipexec.ScenarioSource(scenario), 4)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the reports. The first CPI uses non-adaptive weights
	// (nothing to train on yet); later CPIs use weights trained on the
	// previous CPI and suppress the clutter ridge.
	fmt.Printf("processed %d CPIs in %v (%.1f CPIs/s)\n",
		len(res.CPIs), res.Elapsed.Round(1e6), res.Throughput)
	fmt.Println("ground truth:")
	for _, tg := range scenario.Targets {
		fmt.Printf("  angle=%+.2f doppler=%+.3f -> doppler bin %d, range gate %d\n",
			tg.Angle, tg.Doppler, params.BinForDoppler(tg.Doppler), tg.Range)
	}
	last := res.CPIs[len(res.CPIs)-1]
	for _, d := range stap.ClusterDetections(last.Detections, 4) {
		fmt.Printf("CPI %d detection: beam=%d doppler-bin=%d range=%d (%.1f dB)\n",
			last.Seq, d.Beam, d.Bin, d.Range, d.SNR(&params))
	}
}
