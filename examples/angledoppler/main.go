// Angle-Doppler diagnostics: build a scene with a clutter ridge, a jammer,
// and a target; render the classic angle-Doppler power map (ridge =
// diagonal, jammer = vertical stripe, target = point) and show the
// adaptive weights' interference suppression.
//
//	go run ./examples/angledoppler
package main

import (
	"fmt"
	"log"
	"os"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/report"
	"stapio/internal/stap"
)

func main() {
	dims := cube.Dims{Channels: 8, Pulses: 33, Ranges: 128}
	s := &radar.Scenario{
		Dims:       dims,
		PulseLen:   16,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: -0.5, Doppler: 0.35, Range: 64, SNR: 25}},
		Clutter:    radar.Clutter{Patches: 24, CNR: 35, Beta: 1},
		Jammers:    []radar.Jammer{{Angle: 0.7, JNR: 30}},
		Seed:       11,
	}
	cb, err := s.Generate(0)
	if err != nil {
		log.Fatal(err)
	}
	p := stap.DefaultParams(dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	p.TrainEasy = 48
	p.TrainHard = 64
	dc, err := stap.DopplerFilter(&p, cb, 0)
	if err != nil {
		log.Fatal(err)
	}

	m, err := stap.ComputeAngleDopplerMap(&p, dc, 64, 33)
	if err != nil {
		log.Fatal(err)
	}
	m.Centre()
	hm := &report.Heatmap{
		Title:    "Angle-Doppler map at range gate 64 (rows: sin angle -1..+1, cols: Doppler bins)",
		ColLabel: "Doppler bins in centred order (negative Doppler left, zero centre)",
		FloorDB:  35,
		Values:   m.Power,
	}
	for _, u := range m.Angles {
		hm.RowLabels = append(hm.RowLabels, fmt.Sprintf("%+.2f", u))
	}
	hm.Render(os.Stdout)
	angle, bin, _ := m.Peak()
	fmt.Printf("\nmap peak (the clutter ridge) at angle %+.2f, Doppler bin %d;\n", angle, bin)
	fmt.Printf("the diagonal is the clutter ridge, the vertical stripe at +0.70 the jammer,\n")
	fmt.Printf("and the isolated bright point the target at angle %.2f / bin %d.\n\n",
		s.Targets[0].Angle, p.BinForDoppler(s.Targets[0].Doppler))

	// Adaptive suppression per bin set.
	for _, set := range []struct {
		name string
		bins []int
		hard bool
	}{
		{"easy (outside clutter notch)", p.EasyBins(), false},
		{"hard (inside clutter notch)", p.HardBins(), true},
	} {
		ws, err := stap.ComputeWeights(&p, dc, set.bins, set.hard)
		if err != nil {
			log.Fatal(err)
		}
		gain, err := stap.SINRImprovement(&p, dc, ws, set.bins)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("adaptive interference suppression, %s bins: %.1f dB\n", set.name, gain)
	}
}
