// Fault injection and graceful degradation: write a round-robin CPI
// dataset onto a striped local store, then run the real pipeline three
// times against increasingly hostile stripe servers — healthy, faulty
// under fail-fast, and faulty under skip-CPI with retries — and show what
// the resilience layer buys. A seeded fault plan makes the injected
// failures, latency spikes, and payload corruption fully reproducible.
//
//	go run ./examples/faultinjection
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/pipexec"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

func main() {
	scenario := radar.SmallTestScenario()
	root, err := os.MkdirTemp("", "stapio-faults-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	const files = radar.DefaultFileCount
	const stripeDirs = 4
	fs, err := pfs.CreateReal(root, stripeDirs, 4096, true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := radar.WriteDataset(fs, scenario, files, files, false); err != nil {
		log.Fatal(err)
	}
	src, err := pipexec.NewFileSource(fs, scenario.Dims, files)
	if err != nil {
		log.Fatal(err)
	}

	params := stap.DefaultParams(scenario.Dims)
	params.PulseLen = scenario.PulseLen
	params.Bandwidth = scenario.Bandwidth
	base := pipexec.Config{
		Params: params,
		Workers: core.STAPNodes{
			Doppler: 2, EasyWeight: 1, HardWeight: 1,
			EasyBF: 2, HardBF: 1, PulseComp: 2, CFAR: 1,
		},
	}

	const cpis = 32
	run := func(label string, plan *pfs.FaultPlan, cfg pipexec.Config) *pipexec.Result {
		fs.SetFaults(plan)
		res, err := pipexec.Run(context.Background(), cfg, src, cpis)
		if err != nil {
			fmt.Printf("%-28s aborted: %v\n", label, err)
			return nil
		}
		fmt.Printf("%-28s %2d/%d CPIs, %6.1f CPIs/s   %v\n",
			label, len(res.CPIs), cpis, res.Throughput, res.Stats)
		return res
	}

	fmt.Printf("dataset: %d files striped across %d dirs; %d-CPI runs\n\n", files, stripeDirs, cpis)
	clean := run("healthy servers", nil, base)

	// 5% of stripe reads fail, 2% of payloads arrive corrupted, 2% are
	// served slow. Fail-fast (the pre-resilience behaviour) dies on the
	// first CPI whose retries run out.
	plan := func() *pfs.FaultPlan {
		return &pfs.FaultPlan{
			Seed: 7, FailRate: 0.05, CorruptRate: 0.02,
			SlowRate: 0.02, SlowDelay: 200 * time.Microsecond,
		}
	}
	strict := base
	strict.Retry = pipexec.RetryPolicy{MaxAttempts: 1}
	run("faulty, fail-fast", plan(), strict)

	resilient := base
	resilient.Retry = pipexec.RetryPolicy{MaxAttempts: 6, BaseBackoff: 200 * time.Microsecond}
	resilient.Degrade = pipexec.DegradeSkipCPI
	degraded := run("faulty, skip-CPI + retries", plan(), resilient)

	if clean == nil || degraded == nil {
		return
	}
	// Every CPI the degraded run delivered carries exactly the detections
	// of the healthy run: retries re-draw the fault plan until the read
	// comes back clean, and the CRC rejects corrupted payloads.
	same := 0
	byIdx := make(map[uint64][]stap.Detection, len(clean.CPIs))
	for _, c := range clean.CPIs {
		byIdx[c.Seq] = c.Detections
	}
	for _, c := range degraded.CPIs {
		if equal(byIdx[c.Seq], c.Detections) {
			same++
		}
	}
	fmt.Printf("\ndelivered CPIs identical to the healthy run: %d/%d\n", same, len(degraded.CPIs))
	fmt.Printf("(%d bytes per CPI; injected faults are a pure function of the seed,\n",
		cube.FileBytes(scenario.Dims))
	fmt.Println(" so every run of this example reports the same counters)")
}

func equal(a, b []stap.Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
