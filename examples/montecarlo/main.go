// Monte-Carlo detection performance: sweep target SNR and measure the full
// chain's probability of detection and false-alarm rate over independent
// noise realisations, comparing CFAR variants.
//
//	go run ./examples/montecarlo
package main

import (
	"fmt"
	"log"
	"os"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/report"
	"stapio/internal/stap"
)

func main() {
	dims := cube.Dims{Channels: 4, Pulses: 17, Ranges: 64}
	base := &radar.Scenario{
		Dims:       dims,
		PulseLen:   8,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: 0, Doppler: 0.25, Range: 20}},
		Clutter:    radar.Clutter{Patches: 8, CNR: 20, Beta: 1},
		Seed:       2026_07_06,
	}
	cfg := stap.DefaultMCConfig()
	cfg.Trials = 12

	t := &report.Table{
		Title:   fmt.Sprintf("Detection performance, %d Monte-Carlo trials per cell", cfg.Trials),
		Columns: []string{"SNR (dB)", "CA Pd", "CA Pfa", "OS Pd", "OS Pfa"},
	}
	chart := &report.BarChart{Title: "Pd vs SNR (CA-CFAR)", Unit: "Pd"}
	group := report.BarGroup{Label: "SNR sweep"}
	// The chain has ~27 dB of processing gain (Doppler integration, pulse
	// compression, beamforming), so the interesting region is well below
	// 0 dB per-sample SNR.
	for _, snr := range []float64{-12, -10, -8, -6, -4} {
		sc := *base
		sc.Targets = []radar.Target{{Angle: 0, Doppler: 0.25, Range: 20, SNR: snr}}
		row := []string{fmt.Sprintf("%.0f", snr)}
		for _, kind := range []stap.CFARKind{stap.CFARCellAveraging, stap.CFAROrderedStatistic} {
			p := stap.DefaultParams(dims)
			p.PulseLen = sc.PulseLen
			p.Bandwidth = sc.Bandwidth
			p.CFAR.Kind = kind
			p.CFAR.ThresholdDB = 13
			stats, err := stap.MonteCarlo(&sc, p, cfg)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.2f", stats.Pd()), fmt.Sprintf("%.1e", stats.Pfa()))
			if kind == stap.CFARCellAveraging {
				group.Bars = append(group.Bars, report.Bar{
					Label: fmt.Sprintf("%2.0f dB", snr),
					Value: stats.Pd(),
				})
			}
		}
		t.AddRow(row...)
	}
	chart.Group = []report.BarGroup{group}
	t.Render(os.Stdout)
	fmt.Println()
	chart.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Pd rises with SNR along the classic detection curve; the false-alarm rate")
	fmt.Println("stays near the CFAR design point independent of the target (that is the")
	fmt.Println("'constant false alarm rate' property the detector is named for).")
}
