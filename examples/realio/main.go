// Real striped I/O: write a round-robin CPI dataset onto a striped local
// store (the working stand-in for the Paragon PFS stripe directories),
// then run the real pipeline twice — asynchronous reads overlapping
// computation versus synchronous PIOFS-style reads — and compare wall
// clock.
//
//	go run ./examples/realio
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/pipexec"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

func main() {
	scenario := &radar.Scenario{
		Dims:       cube.Dims{Channels: 8, Pulses: 65, Ranges: 512},
		PulseLen:   32,
		Bandwidth:  0.85,
		NoisePower: 1,
		Targets: []radar.Target{
			{Angle: 0.2, Doppler: 0.2, Range: 150, SNR: 8},
		},
		Clutter: radar.Clutter{Patches: 12, CNR: 25, Beta: 1},
		Seed:    7,
	}
	root, err := os.MkdirTemp("", "stapio-realio-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	const files = radar.DefaultFileCount
	const stripeDirs = 8

	run := func(async bool) float64 {
		fs, err := pfs.CreateReal(root, stripeDirs, 64<<10, async)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := radar.WriteDataset(fs, scenario, files, files, false); err != nil {
			log.Fatal(err)
		}
		src, err := pipexec.NewFileSource(fs, scenario.Dims, files)
		if err != nil {
			log.Fatal(err)
		}
		params := stap.DefaultParams(scenario.Dims)
		params.PulseLen = scenario.PulseLen
		params.Bandwidth = scenario.Bandwidth
		cfg := pipexec.Config{
			Params: params,
			Workers: core.STAPNodes{
				Doppler: 2, EasyWeight: 1, HardWeight: 1,
				EasyBF: 2, HardBF: 1, PulseComp: 2, CFAR: 1,
			},
		}
		res, err := pipexec.Run(context.Background(), cfg, src, files)
		if err != nil {
			log.Fatal(err)
		}
		mode := "sync (PIOFS-style)"
		if async {
			mode = "async (PFS iread/iowait-style)"
		}
		var dets int
		for _, c := range res.CPIs {
			dets += len(stap.ClusterDetections(c.Detections, 4))
		}
		fmt.Printf("%-32s %d CPIs of %d bytes: %.2f CPIs/s, mean latency %v, %d detections\n",
			mode, len(res.CPIs), cube.FileBytes(scenario.Dims), res.Throughput,
			res.MeanLatency().Round(1e5), dets)
		return res.Throughput
	}

	fmt.Printf("dataset: %d round-robin files striped across %d directories under %s\n\n",
		files, stripeDirs, root)
	async := run(true)
	sync := run(false)
	fmt.Printf("\nasync/sync wall-clock throughput ratio: %.2fx\n", async/sync)
	fmt.Println("(the paper's PIOFS result: without asynchronous reads the I/O cannot hide")
	fmt.Println(" behind computation, so the first task's service time grows by the read.)")
}
