// Netserve: the pipeline as a network service, end to end in one process.
// A serve.Server listens on loopback with two pipeline replicas; a
// serve.Client streams encoded CPI cubes to it — deliberately corrupting
// some chunks on the wire — and reads detection reports back. The per-chunk
// CRC-32C of the cube file format carries over the network, so every
// corrupted frame is repaired by chunk re-request instead of being dropped.
//
//	go run ./examples/netserve
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/serve"
	"stapio/internal/stap"
)

func main() {
	scenario := radar.SmallTestScenario()
	params := stap.DefaultParams(scenario.Dims)
	params.PulseLen = scenario.PulseLen
	params.Bandwidth = scenario.Bandwidth

	srv, err := serve.New(serve.Config{
		Params:   params,
		Workers:  core.STAPNodes{Doppler: 2, EasyWeight: 1, HardWeight: 1, EasyBF: 1, HardBF: 1, PulseComp: 2, CFAR: 1},
		Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service on %s: 2 pipeline replicas, window %d CPIs\n",
		srv.Addr(), srv.Stats().MaxInFlight)

	// A producer with a seeded wire-fault plan: roughly a quarter of the
	// submitted frames get one corrupted chunk.
	cl, err := serve.Dial(srv.Addr().String(), serve.Options{
		Dims:   scenario.Dims,
		Faults: &pfs.FaultPlan{Seed: 11, CorruptRate: 0.02},
	})
	if err != nil {
		log.Fatal(err)
	}

	const cpis = 12
	frames, err := radar.EncodeCPIs(scenario, 4, 4096)
	if err != nil {
		log.Fatal(err)
	}
	// Closed-loop submission: never more than the server's advertised
	// window in flight, or the admission control rejects (by design).
	window := make(chan struct{}, cl.MaxInFlight())
	go func() {
		for seq := 0; seq < cpis; seq++ {
			frame := append([]byte(nil), frames[seq%len(frames)]...)
			if err := cube.PatchSeq(frame, uint64(seq)); err != nil {
				log.Fatal(err)
			}
			window <- struct{}{}
			if _, err := cl.Submit(frame); err != nil {
				log.Fatal(err)
			}
		}
	}()

	got := 0
	for r := range cl.Results() {
		<-window
		if r.Err != nil {
			log.Fatalf("CPI %d dropped: %v", r.Seq, r.Err)
		}
		fmt.Printf("  CPI %2d: %2d detections, round trip %v\n",
			r.Seq, len(r.Detections), r.Latency.Round(10*time.Microsecond))
		if got++; got == cpis {
			break
		}
	}

	reqs, resent, injected := cl.RepairStats()
	fmt.Printf("wire faults: %d chunks corrupted in flight, %d repair requests, %d chunks re-sent — zero CPIs dropped\n",
		injected, reqs, resent)
	cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("drained: %d accepted, %d results sent, %d repaired frames\n",
		st.Accepted, st.ResultsSent, st.RepairedFrames)
}
