// Task combination: reproduce the paper's Section 6 experiment — merge the
// pulse compression and CFAR tasks into one (keeping the total node count)
// and compare the analytic prediction of eqs. (5)-(15) with the simulated
// measurement.
//
//	go run ./examples/taskmerge
package main

import (
	"fmt"
	"log"
	"os"

	"stapio/internal/core"
	"stapio/internal/experiments"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/pipesim"
	"stapio/internal/report"
	"stapio/internal/stap"
)

func main() {
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	params := experiments.PaperParams()
	w := stap.ComputeWorkloads(&params)

	t := &report.Table{
		Title: "Combining pulse compression + CFAR (Paragon, PFS stripe=64)",
		Columns: []string{"nodes", "T5+T6 (s)", "T5+6 (s)",
			"latency 7-task (s)", "latency 6-task (s)", "improvement", "thr 7 (CPIs/s)", "thr 6"},
	}
	for _, scale := range []int{1, 2, 4} {
		nodes := experiments.BaseNodes().Scale(scale)
		p7, err := core.BuildEmbedded(w, nodes)
		if err != nil {
			log.Fatal(err)
		}
		p6, err := core.CombinePCCFAR(p7)
		if err != nil {
			log.Fatal(err)
		}

		// Analytic (the paper's algebra).
		a7, err := core.Analyze(p7, prof, fsCfg)
		if err != nil {
			log.Fatal(err)
		}
		a6, err := core.Analyze(p6, prof, fsCfg)
		if err != nil {
			log.Fatal(err)
		}
		pred := core.PredictMerge(p7, p7.TaskIndex(core.NamePulseComp), p7.TaskIndex(core.NameCFAR), a7, a6)

		// Measured (discrete-event simulation).
		opts := pipesim.DefaultOptions()
		r7, err := pipesim.Measure(p7, prof, fsCfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		r6, err := pipesim.Measure(p6, prof, fsCfg, opts)
		if err != nil {
			log.Fatal(err)
		}

		t.AddRow(
			fmt.Sprintf("%d", p7.TotalNodes()),
			fmt.Sprintf("%.3f", pred.SeparateSum),
			fmt.Sprintf("%.3f", pred.MergedService),
			fmt.Sprintf("%.3f", r7.Latency),
			fmt.Sprintf("%.3f", r6.Latency),
			fmt.Sprintf("%.1f%%", 100*(r7.Latency-r6.Latency)/r7.Latency),
			fmt.Sprintf("%.2f", r7.Throughput),
			fmt.Sprintf("%.2f", r6.Throughput),
		)
	}
	t.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Eq. (11): T5+6 < T5 + T6 — the merged task always beats the pair, so latency")
	fmt.Println("improves while throughput is unchanged (the bottleneck task is elsewhere).")
	fmt.Println("The improvement percentage shrinks as nodes are added: fixed per-kernel and")
	fmt.Println("per-node overheads claim a growing share of each task's time.")
}
