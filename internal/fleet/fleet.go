// Package fleet routes CPIs across a pool of stapserve instances and
// survives individual servers crashing, restarting, shedding load, or
// dropping off the network mid-run.
//
// A fleet.Client holds one lazily-dialed serve.Client per server. Each
// submitted CPI is routed by rendezvous (highest-random-weight) hashing
// over (cube geometry, sequence number), so a fixed fleet gives every CPI
// a stable primary server and removing one server only remaps the CPIs it
// owned. When the primary is unhealthy — its circuit breaker is open, its
// connection just died, or it rejected the CPI — the submission fails over
// to the next server in hash order and retries under an exponential
// backoff with deterministic jitter, bounded by a per-CPI deadline budget.
//
// Retry safety follows the serve protocol's accept semantics: a CPI
// rejected with ErrOverloaded/ErrDraining, or whose connection died before
// the server acknowledged it (serve.Result.Accepted == false), was never
// admitted anywhere and is safe to resubmit. A CPI the server accepted
// before the connection died may still be processed even though its answer
// is lost; resubmitting it could process it twice, so it surfaces as a
// typed ErrAbandoned instead. Every submission therefore completes exactly
// once or returns a typed error — never silently twice, and never a hang.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
	"stapio/internal/serve"
	"stapio/internal/stap"
)

// Typed sentinel errors, matched with errors.Is.
var (
	// ErrClosed reports an operation on a closed fleet client.
	ErrClosed = errors.New("fleet: client closed")
	// ErrAbandoned reports a CPI a server accepted but whose answer was
	// lost (the connection died mid-stream or the CPI deadline expired
	// while it was processing). The server may still have processed it, so
	// the fleet does not resubmit it — doing so could process it twice.
	ErrAbandoned = errors.New("fleet: CPI abandoned mid-stream")
	// ErrExhausted reports a CPI whose retry attempts or deadline budget
	// ran out before any server completed it; it wraps the last cause.
	ErrExhausted = errors.New("fleet: retry budget exhausted")
	// ErrNoHealthy reports that every server's circuit breaker was open
	// when a submission (or one of its retries) looked for a target.
	ErrNoHealthy = errors.New("fleet: no healthy server")
)

// ServerSpec names one stapserve instance.
type ServerSpec struct {
	// Addr is the TCP CPI-ingest address. Required.
	Addr string
	// Health is the optional HTTP host:port serving the server's /healthz
	// endpoint (stapserve -http). When set, an open circuit breaker probes
	// it before admitting trial traffic, so recovery is detected without
	// risking a real CPI on a still-dead server.
	Health string
}

// Options configure a fleet client.
type Options struct {
	// Dims is the cube geometry every server in the fleet must process.
	// Required.
	Dims cube.Dims
	// Servers lists the fleet members. At least one is required; addresses
	// must be unique.
	Servers []ServerSpec
	// Dial is the template for each per-server connection (Dims is
	// overridden with the fleet's). Zero values take serve's defaults,
	// except DialTimeout, which defaults to 2s here — a fleet wants to
	// fail over to a live server faster than a lone client wants to give
	// up on its only one.
	Dial serve.Options
	// MaxAttempts bounds the submit attempts per CPI across all servers
	// (values < 1 mean 4).
	MaxAttempts int
	// CPIDeadline is the per-CPI wall-clock budget covering every attempt,
	// backoff, and result wait (values <= 0 mean 30s). A CPI still
	// unanswered at the deadline is abandoned, never retried: the server
	// holding it may yet complete it.
	CPIDeadline time.Duration
	// BaseBackoff is the first retry's backoff ceiling; attempt k waits in
	// [2^(k-1)*Base/2, 2^(k-1)*Base], jittered deterministically from the
	// CPI's sequence number (values <= 0 mean 20ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (values <= 0 mean 500ms).
	MaxBackoff time.Duration
	// Breaker configures the per-server circuit breakers.
	Breaker BreakerConfig
	// ResultBuffer is the Results channel depth (values < 1 mean 256).
	ResultBuffer int
}

func (o *Options) maxAttempts() int {
	if o.MaxAttempts < 1 {
		return 4
	}
	return o.MaxAttempts
}

func (o *Options) cpiDeadline() time.Duration {
	if o.CPIDeadline <= 0 {
		return 30 * time.Second
	}
	return o.CPIDeadline
}

func (o *Options) baseBackoff() time.Duration {
	if o.BaseBackoff <= 0 {
		return 20 * time.Millisecond
	}
	return o.BaseBackoff
}

func (o *Options) maxBackoff() time.Duration {
	if o.MaxBackoff <= 0 {
		return 500 * time.Millisecond
	}
	return o.MaxBackoff
}

func (o *Options) resultBuffer() int {
	if o.ResultBuffer < 1 {
		return 256
	}
	return o.ResultBuffer
}

// Result is the outcome of one submitted CPI, from whichever server
// answered it.
type Result struct {
	Seq        uint64
	Detections []stap.Detection
	// Latency is submit-to-result wall clock including every retry.
	Latency time.Duration
	// ServerLatency is receipt-to-result measured at the answering server.
	ServerLatency time.Duration
	// Server is the address of the server that answered (empty when no
	// server did).
	Server string
	// Attempts counts the submit attempts this CPI consumed (1 = no retry).
	Attempts int
	// Err is non-nil when the CPI failed everywhere; errors.Is-match
	// against ErrAbandoned / ErrExhausted / ErrClosed and the serve
	// sentinels a terminal rejection wraps.
	Err error
}

// Client is a resilient multi-server producer. Submissions are
// asynchronous, like serve.Client's: Submit returns once the CPI is
// registered, and its outcome arrives on Results. The caller must drain
// Results; it is closed by Close once every outstanding submission has
// resolved.
type Client struct {
	opt     Options
	members []*member
	results chan Result

	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	abandoned atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	start     time.Time
}

// New validates the options and builds a client. No connection is made
// until the first submission (or Connect) needs one.
func New(opt Options) (*Client, error) {
	if !opt.Dims.Valid() {
		return nil, fmt.Errorf("fleet: options need valid dims, got %v", opt.Dims)
	}
	if len(opt.Servers) == 0 {
		return nil, errors.New("fleet: options need at least one server")
	}
	seen := make(map[string]bool, len(opt.Servers))
	c := &Client{
		opt:     opt,
		results: make(chan Result, opt.resultBuffer()),
		closeCh: make(chan struct{}),
		start:   time.Now(),
	}
	for _, spec := range opt.Servers {
		if spec.Addr == "" {
			return nil, errors.New("fleet: server spec without an address")
		}
		if seen[spec.Addr] {
			return nil, fmt.Errorf("fleet: duplicate server address %s", spec.Addr)
		}
		seen[spec.Addr] = true
		c.members = append(c.members, newMember(spec, &c.opt))
	}
	return c, nil
}

// Connect eagerly dials every server and returns the sum of the admission
// capacities the reachable ones advertise — the natural window for a
// closed-loop producer. Unreachable servers are tolerated (their breakers
// record the failure and the fleet retries them later); only a fleet with
// zero reachable servers is an error.
func (c *Client) Connect() (int, error) {
	total := 0
	var lastErr error
	for _, m := range c.members {
		cl, err := m.ensure()
		if err != nil {
			m.breaker.record(false)
			lastErr = err
			continue
		}
		total += cl.MaxInFlight()
	}
	if total == 0 {
		return 0, fmt.Errorf("fleet: no server reachable: %w", lastErr)
	}
	return total, nil
}

// Results delivers each submitted CPI's outcome. Order follows completion,
// not submission.
func (c *Client) Results() <-chan Result { return c.results }

// Submit routes one encoded cube file (see serve.Client.Submit for the
// frame contract) to the fleet. The frame's header sequence number must be
// unique among this client's in-flight CPIs, and the caller must not
// mutate the frame until its Result arrives. The submission itself —
// routing, retries, failover — proceeds asynchronously.
func (c *Client) Submit(frame []byte) (uint64, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	h, err := cube.ParseHeader(frame)
	if err != nil {
		return 0, fmt.Errorf("fleet: submit: %w", err)
	}
	c.submitted.Add(1)
	c.wg.Add(1)
	go c.run(frame, h.Seq, time.Now())
	return h.Seq, nil
}

// run drives one CPI to a terminal outcome: completed on some server, or a
// typed error. It is the only writer of this CPI's Result.
func (c *Client) run(frame []byte, seq uint64, t0 time.Time) {
	defer c.wg.Done()
	deadline := t0.Add(c.opt.cpiDeadline())
	var lastErr error
	var lastMember *member
	attempts := 0
	for attempts < c.opt.maxAttempts() {
		if c.closed.Load() {
			lastErr = ErrClosed
			break
		}
		if !time.Now().Before(deadline) {
			break
		}
		m, failover := c.pick(seq, lastMember)
		if m == nil {
			// Every breaker is open. Wait one backoff step — a cooldown may
			// elapse or a health probe may pass — and look again; the
			// attempt budget is only spent on real submits.
			lastErr = ErrNoHealthy
			if !c.sleep(c.backoff(seq, 1), deadline) {
				break
			}
			continue
		}
		if failover {
			c.failovers.Add(1)
		}
		attempts++
		res, retry, err := m.trySubmit(frame, seq, deadline)
		if err == nil {
			c.completed.Add(1)
			c.deliver(Result{
				Seq:           seq,
				Detections:    res.Detections,
				Latency:       time.Since(t0),
				ServerLatency: res.ServerLatency,
				Server:        m.spec.Addr,
				Attempts:      attempts,
			})
			return
		}
		if !retry {
			c.failed.Add(1)
			if errors.Is(err, ErrAbandoned) {
				c.abandoned.Add(1)
			}
			c.deliver(Result{Seq: seq, Err: err, Server: m.spec.Addr, Attempts: attempts, Latency: time.Since(t0)})
			return
		}
		lastErr, lastMember = err, m
		if attempts >= c.opt.maxAttempts() {
			break
		}
		c.retries.Add(1)
		if !c.sleep(c.backoff(seq, attempts), deadline) {
			break
		}
	}
	c.failed.Add(1)
	if lastErr == nil {
		lastErr = ErrNoHealthy
	}
	c.deliver(Result{
		Seq:      seq,
		Err:      fmt.Errorf("%w after %d attempts in %v: %w", ErrExhausted, attempts, time.Since(t0).Round(time.Millisecond), lastErr),
		Attempts: attempts,
		Latency:  time.Since(t0),
	})
}

func (c *Client) deliver(r Result) { c.results <- r }

// pick returns the best admissible server for seq in rendezvous-hash
// order, and whether that choice is a failover (not the CPI's primary).
// avoid — the server the previous attempt just failed on — is considered
// last, so a retry lands elsewhere whenever anything else is admissible.
func (c *Client) pick(seq uint64, avoid *member) (m *member, failover bool) {
	order := rankMembers(c.members, c.opt.Dims, seq)
	var avoided *member
	for i, cand := range order {
		if cand == avoid {
			avoided = cand
			continue
		}
		if cand.breaker.allow() {
			return cand, i != 0
		}
	}
	if avoided != nil && avoided.breaker.allow() {
		return avoided, avoided != order[0]
	}
	return nil, false
}

// backoff returns attempt k's wait: exponential in k, capped, and jittered
// deterministically from the sequence number so simultaneous retries from
// a burst of CPIs spread out without shared mutable state.
func (c *Client) backoff(seq uint64, attempt int) time.Duration {
	d := c.opt.baseBackoff()
	for i := 1; i < attempt && d < c.opt.maxBackoff(); i++ {
		d *= 2
	}
	if d > c.opt.maxBackoff() {
		d = c.opt.maxBackoff()
	}
	// Jitter into [d/2, d].
	span := uint64(d/2) + 1
	j := time.Duration(mix64(seq^uint64(attempt)<<48) % span)
	return d/2 + j
}

// sleep waits d (truncated to the deadline), reporting false when the
// submission should stop instead of retrying (client closed, or the
// deadline already passed).
func (c *Client) sleep(d time.Duration, deadline time.Time) bool {
	if until := time.Until(deadline); d > until {
		d = until
	}
	if d <= 0 {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closeCh:
		return false
	}
}

// Close tears the fleet down: in-flight submissions resolve (their server
// connections close, so waits fail fast with typed errors), then Results
// closes. The caller must keep draining Results until then.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.closeCh)
	for _, m := range c.members {
		m.close()
	}
	c.wg.Wait()
	close(c.results)
	return nil
}
