package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/serve"
)

// isClosed reports whether ch has been closed, without blocking.
func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// TestFleetSurvivesServerCrashAndRestart is the in-process chaos drill
// behind scripts/chaos_smoke.sh: three servers, one killed abruptly
// (connection resets, exactly what a SIGKILLed process produces) while a
// closed-loop run is in flight, then restarted on the same address.
//
// Invariants asserted:
//   - every submitted CPI is answered exactly once — completed, or a typed
//     error (ErrAbandoned for accepted-then-lost CPIs) — with zero hangs;
//   - at least one CPI failed over away from its hash-primary;
//   - the killed server's breaker walks the open → half-open → closed
//     recovery arc and the server completes CPIs again after the restart.
func TestFleetSurvivesServerCrashAndRestart(t *testing.T) {
	const (
		n      = 150
		window = 4
		killAt = 25 // results seen before the kill
	)
	s := radar.SmallTestScenario()

	srvA := startServer(t, "")
	srvC := startServer(t, "")
	victim, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	victimAddr := victim.Addr().String()

	opt := fleetOptions(srvA.Addr().String(), victimAddr, srvC.Addr().String())
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	frames, err := radar.EncodeCPIs(s, 8, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		results = make(map[uint64]Result, n)
	)
	sem := make(chan struct{}, window)
	killed := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		for r := range c.Results() {
			mu.Lock()
			if _, dup := results[r.Seq]; dup {
				t.Errorf("seq %d answered twice", r.Seq)
			}
			results[r.Seq] = r
			mu.Unlock()
			<-sem
			if got++; got == killAt {
				// Crash the victim mid-run, with CPIs in flight.
				victim.Kill()
				close(killed)
			}
			if got == n {
				return
			}
		}
	}()

	var restarted *serve.Server
	for i := 0; i < n; i++ {
		frame := append([]byte(nil), frames[i%len(frames)]...)
		if err := cube.PatchSeq(frame, uint64(i)); err != nil {
			t.Fatal(err)
		}
		sem <- struct{}{}
		if _, err := c.Submit(frame); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		// Once the kill has landed and a third of the run is through,
		// bring the victim back on the same address, mid-load.
		if restarted == nil && i >= n/3 && isClosed(killed) {
			restarted, err = serve.New(testServeConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := restarted.Start(victimAddr); err != nil {
				t.Fatalf("restart on %s: %v", victimAddr, err)
			}
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				restarted.Shutdown(ctx)
			})
		}
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		mu.Lock()
		answered := len(results)
		mu.Unlock()
		t.Fatalf("run hung: only %d of %d CPIs answered", answered, n)
	}
	if restarted == nil {
		t.Fatal("the victim was never restarted; the chaos scenario did not play out")
	}

	// Exactly-once: every seq answered, completed or typed-failed.
	completedByVictim := int64(0)
	for seq := uint64(0); seq < n; seq++ {
		r, ok := results[seq]
		if !ok {
			t.Errorf("seq %d was never answered", seq)
			continue
		}
		if r.Err != nil {
			if !errors.Is(r.Err, ErrAbandoned) && !errors.Is(r.Err, ErrExhausted) {
				t.Errorf("seq %d failed with an untyped error: %v", seq, r.Err)
			}
			continue
		}
		if r.Server == victimAddr {
			completedByVictim++
		}
	}

	st := c.Stats()
	if st.Failovers == 0 {
		t.Error("no failovers recorded across a mid-run server crash")
	}
	// The breaker must have tripped on the crash...
	var vs *ServerStats
	for i := range st.Servers {
		if st.Servers[i].Addr == victimAddr {
			vs = &st.Servers[i]
		}
	}
	if vs == nil {
		t.Fatal("victim missing from fleet stats")
	}
	if vs.Breaker.Opens == 0 {
		t.Errorf("victim breaker never opened; crash went unnoticed (stats %+v)", vs)
	}

	// ...and recover once traffic flows again: keep submitting single CPIs
	// until the recovery arc completes (half-open trial succeeded).
	deadline := time.Now().Add(20 * time.Second)
	seq := uint64(n)
	for {
		st = c.Stats()
		for i := range st.Servers {
			if st.Servers[i].Addr == victimAddr {
				vs = &st.Servers[i]
			}
		}
		if vs.Breaker.Closes >= 1 && vs.Breaker.HalfOpens >= 1 && vs.Breaker.State == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim breaker never recovered: %+v", vs.Breaker)
		}
		frame := append([]byte(nil), frames[0]...)
		if err := cube.PatchSeq(frame, seq); err != nil {
			t.Fatal(err)
		}
		seq++
		if _, err := c.Submit(frame); err != nil {
			t.Fatal(err)
		}
		r, ok := <-c.Results()
		if !ok {
			t.Fatal("Results closed during recovery probing")
		}
		if r.Err != nil && !errors.Is(r.Err, ErrAbandoned) && !errors.Is(r.Err, ErrExhausted) {
			t.Fatalf("recovery probe seq %d: untyped error %v", r.Seq, r.Err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("chaos: %d CPIs, %d failovers, %d retries, %d abandoned; victim %d/%d/%d open/half/close, %d dials",
		n, st.Failovers, st.Retries, st.Abandoned,
		vs.Breaker.Opens, vs.Breaker.HalfOpens, vs.Breaker.Closes, vs.Dials)
}
