package fleet

import (
	"hash/fnv"
	"sort"

	"stapio/internal/cube"
)

// Routing is rendezvous (highest-random-weight) hashing: every (server,
// key) pair gets an independent pseudo-random score, and a CPI's server
// preference is the servers sorted by score. Two properties matter here:
// a fixed fleet maps every key to a stable primary (so per-server caches,
// weight chains, and tuner state see consistent streams), and removing one
// server only remaps the keys it owned — the others' rankings are
// untouched, which is what keeps a crash from reshuffling the whole run.

// cpiKey folds the cube geometry and sequence number into the routing key,
// so fleets hosting mixed geometries shard by scenario first.
func cpiKey(d cube.Dims, seq uint64) uint64 {
	k := uint64(d.Channels)<<42 ^ uint64(d.Pulses)<<21 ^ uint64(d.Ranges)
	return mix64(k) ^ mix64(seq)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// memberScore is the rendezvous weight of one server for one key.
func memberScore(addr string, key uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return mix64(h.Sum64() ^ key)
}

// rankMembers returns the fleet sorted by descending rendezvous score for
// this CPI; index 0 is the primary.
func rankMembers(ms []*member, d cube.Dims, seq uint64) []*member {
	key := cpiKey(d, seq)
	type scored struct {
		m *member
		s uint64
	}
	ranked := make([]scored, len(ms))
	for i, m := range ms {
		ranked[i] = scored{m: m, s: memberScore(m.spec.Addr, key)}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	out := make([]*member, len(ranked))
	for i, r := range ranked {
		out[i] = r.m
	}
	return out
}
