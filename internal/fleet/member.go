package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/serve"
)

// member is one server in the fleet: a lazily-(re)dialed serve.Client, the
// routing registry that matches results back to waiting submissions, and
// the server's circuit breaker and counters.
type member struct {
	spec    ServerSpec
	opt     *Options
	breaker *breaker

	// mu guards the connection lifecycle; stopped blocks redials after the
	// fleet client closes.
	mu      sync.Mutex
	cl      *serve.Client
	stopped bool

	// pmu guards pending: seq → the waiting submission's rendezvous
	// channel. The pump goroutine routes each serve.Result through it.
	pmu     sync.Mutex
	pending map[uint64]chan serve.Result

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	abandoned atomic.Int64
	dials     atomic.Int64
	late      atomic.Int64
}

func newMember(spec ServerSpec, opt *Options) *member {
	return &member{
		spec:    spec,
		opt:     opt,
		breaker: newBreaker(opt.Breaker, spec.Health),
		pending: make(map[uint64]chan serve.Result),
	}
}

// dialOptions derives this member's connection options from the fleet's.
func (m *member) dialOptions() serve.Options {
	o := m.opt.Dial
	o.Dims = m.opt.Dims
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	return o
}

// ensure returns the live connection, dialing one if needed. Redials are
// lazy: the connection a crash killed stays nil until the next submission
// routed here needs it (by then the breaker has usually opened, so the
// redial doubles as the recovery trial).
func (m *member) ensure() (*serve.Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, ErrClosed
	}
	if m.cl != nil {
		return m.cl, nil
	}
	cl, err := serve.Dial(m.spec.Addr, m.dialOptions())
	if err != nil {
		return nil, err
	}
	m.cl = cl
	m.dials.Add(1)
	go m.pump(cl)
	return cl, nil
}

// pump routes one connection's results to the submissions waiting on them,
// then clears the dead connection so the next submission redials. The
// serve client guarantees every pending CPI gets a Result (ErrClosed at
// worst) before its Results channel closes, so no registered waiter is
// ever left hanging.
func (m *member) pump(cl *serve.Client) {
	for r := range cl.Results() {
		m.pmu.Lock()
		ch, ok := m.pending[r.Seq]
		if ok {
			delete(m.pending, r.Seq)
		}
		m.pmu.Unlock()
		if ok {
			ch <- r
		} else {
			// The waiter gave up (deadline) before the answer arrived.
			m.late.Add(1)
		}
	}
	m.mu.Lock()
	if m.cl == cl {
		m.cl = nil
	}
	m.mu.Unlock()
}

// trySubmit makes one attempt to complete the CPI on this server: submit,
// then wait for its result or the deadline. retry reports whether the
// failure is retry-safe — the CPI was provably never admitted here, so
// resubmitting it elsewhere cannot process it twice.
func (m *member) trySubmit(frame []byte, seq uint64, deadline time.Time) (res serve.Result, retry bool, err error) {
	cl, err := m.ensure()
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return serve.Result{}, false, ErrClosed
		}
		m.failed.Add(1)
		m.breaker.record(false)
		return serve.Result{}, true, fmt.Errorf("fleet: dial %s: %w", m.spec.Addr, err)
	}

	ch := make(chan serve.Result, 1)
	m.pmu.Lock()
	m.pending[seq] = ch
	m.pmu.Unlock()
	m.submitted.Add(1)

	if _, err := cl.Submit(frame); err != nil {
		m.pmu.Lock()
		delete(m.pending, seq)
		m.pmu.Unlock()
		m.failed.Add(1)
		m.breaker.record(false)
		// The frame never reached the server (write failed, draining, or
		// the connection is already dead): retry-safe.
		return serve.Result{}, true, fmt.Errorf("fleet: submit to %s: %w", m.spec.Addr, err)
	}

	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case r := <-ch:
		return m.classify(r)
	case <-t.C:
		// Deadline with the CPI possibly processing on a live server:
		// deregister and abandon. Retrying elsewhere could run it twice.
		m.pmu.Lock()
		delete(m.pending, seq)
		m.pmu.Unlock()
		m.abandoned.Add(1)
		m.failed.Add(1)
		m.breaker.record(false)
		return serve.Result{}, false, fmt.Errorf("%w: %s holds seq %d past the CPI deadline", ErrAbandoned, m.spec.Addr, seq)
	}
}

// classify turns one serve.Result into the fleet's retry decision.
func (m *member) classify(r serve.Result) (serve.Result, bool, error) {
	switch {
	case r.Err == nil:
		m.completed.Add(1)
		m.breaker.record(true)
		return r, false, nil
	case errors.Is(r.Err, serve.ErrClosed) && r.Accepted:
		// Accepted, then the connection died: the server may still process
		// the CPI (its answer is simply lost). Never resubmit.
		m.abandoned.Add(1)
		m.failed.Add(1)
		m.breaker.record(false)
		return r, false, fmt.Errorf("%w: %s accepted seq %d and the connection died: %v", ErrAbandoned, m.spec.Addr, r.Seq, r.Err)
	case errors.Is(r.Err, serve.ErrOverloaded),
		errors.Is(r.Err, serve.ErrDraining),
		errors.Is(r.Err, serve.ErrClosed):
		// Typed rejects and pre-accept connection loss: nothing was queued
		// here, so another server can safely take the CPI.
		m.failed.Add(1)
		m.breaker.record(false)
		return r, true, fmt.Errorf("fleet: %s: %w", m.spec.Addr, r.Err)
	default:
		// ErrCorrupt / bad-frame / bad-dims: the frame itself is the
		// problem; every server would refuse it. Terminal, and not held
		// against this server's breaker.
		m.failed.Add(1)
		return r, false, fmt.Errorf("fleet: %s: %w", m.spec.Addr, r.Err)
	}
}

// close stops the member: no further dials, and the live connection (if
// any) closes, which resolves every registered waiter via the pump.
func (m *member) close() {
	m.mu.Lock()
	m.stopped = true
	cl := m.cl
	m.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}
