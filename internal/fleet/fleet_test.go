package fleet

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"stapio/internal/core"
	"stapio/internal/radar"
	"stapio/internal/serve"
	"stapio/internal/stap"
)

const testChunkSize = 4096

func testServeConfig() serve.Config {
	s := radar.SmallTestScenario()
	p := stap.DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	return serve.Config{
		Params:  p,
		Workers: core.STAPNodes{Doppler: 2, EasyWeight: 1, HardWeight: 1, EasyBF: 1, HardBF: 1, PulseComp: 2, CFAR: 1},
	}
}

// startServer brings one stapserve-equivalent up on addr ("" = ephemeral)
// and schedules a graceful shutdown.
func startServer(t *testing.T, addr string) *serve.Server {
	t.Helper()
	srv, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if err := srv.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// fleetOptions builds quick-failover options over the given servers.
func fleetOptions(addrs ...string) Options {
	s := radar.SmallTestScenario()
	specs := make([]ServerSpec, len(addrs))
	for i, a := range addrs {
		specs[i] = ServerSpec{Addr: a}
	}
	return Options{
		Dims:        s.Dims,
		Servers:     specs,
		Dial:        serve.Options{DialTimeout: time.Second},
		MaxAttempts: 5,
		CPIDeadline: 20 * time.Second,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Breaker:     BreakerConfig{FailureThreshold: 2, Cooldown: 50 * time.Millisecond},
	}
}

// driveFleet submits n restamped CPIs closed-loop with the given window
// and returns every result, keyed by seq.
func driveFleet(t *testing.T, c *Client, n, window int) map[uint64]Result {
	t.Helper()
	s := radar.SmallTestScenario()
	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[uint64]Result, n)
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := range c.Results() {
			if _, dup := results[r.Seq]; dup {
				t.Errorf("seq %d answered twice", r.Seq)
			}
			results[r.Seq] = r
			<-sem
			if len(results) == n {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		if _, err := c.Submit(frames[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	return results
}

func TestFleetSpreadsAcrossServers(t *testing.T) {
	const n = 48
	srvs := []*serve.Server{startServer(t, ""), startServer(t, ""), startServer(t, "")}
	addrs := make([]string, len(srvs))
	for i, s := range srvs {
		addrs[i] = s.Addr().String()
	}
	c, err := New(fleetOptions(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if cap, err := c.Connect(); err != nil || cap < 3 {
		t.Fatalf("Connect: capacity %d, err %v", cap, err)
	}

	results := driveFleet(t, c, n, 6)
	if len(results) != n {
		t.Fatalf("answered %d of %d CPIs", len(results), n)
	}
	for seq, r := range results {
		if r.Err != nil {
			t.Errorf("CPI %d failed on a healthy fleet: %v", seq, r.Err)
		}
	}
	st := c.Stats()
	if st.Completed != n || st.Failed != 0 {
		t.Errorf("stats completed=%d failed=%d, want %d/0", st.Completed, st.Failed, n)
	}
	busy := 0
	for _, ss := range st.Servers {
		if ss.Completed > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d of 3 servers completed CPIs; hashing did not spread", busy)
	}
}

// A fleet with one dead address fails over every CPI the hash routes there
// and still completes the full run with zero losses.
func TestFleetFailsOverFromDeadServer(t *testing.T) {
	const n = 32
	live := startServer(t, "")
	// A listener that is closed immediately: dials are refused instantly.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	c, err := New(fleetOptions(live.Addr().String(), deadAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := driveFleet(t, c, n, 4)
	for seq, r := range results {
		if r.Err != nil {
			t.Errorf("CPI %d lost to the dead server: %v", seq, r.Err)
		}
		if r.Server != live.Addr().String() {
			t.Errorf("CPI %d answered by %q, want the live server", seq, r.Server)
		}
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Error("no failovers recorded although half the keys map to the dead server")
	}
	for _, ss := range st.Servers {
		if ss.Addr == deadAddr && ss.Breaker.State != "open" {
			t.Errorf("dead server's breaker is %q, want open", ss.Breaker.State)
		}
	}
}

// Typed overload rejects are retried until a slot frees, so a fleet
// driven harder than its admission capacity sheds latency, not CPIs.
func TestFleetRetriesOverloadedRejects(t *testing.T) {
	const n = 24
	cfg := testServeConfig()
	cfg.MaxInFlight = 2
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	opt := fleetOptions(srv.Addr().String())
	opt.MaxAttempts = 50 // the window outruns capacity; keep retrying
	opt.Breaker.FailureThreshold = 1000
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := driveFleet(t, c, n, 8) // window 8 >> capacity 2
	for seq, r := range results {
		if r.Err != nil {
			t.Errorf("CPI %d dropped under overload: %v", seq, r.Err)
		}
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Error("no retries recorded although the window exceeded admission capacity")
	}
}

// Close resolves in-flight submissions with typed errors and closes
// Results — no hangs, no goroutine leaks for the race detector to chew on.
func TestFleetCloseResolvesInFlight(t *testing.T) {
	srv := startServer(t, "")
	c, err := New(fleetOptions(srv.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	s := radar.SmallTestScenario()
	frames, err := radar.EncodeCPIs(s, 6, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := c.Submit(f); err != nil {
			t.Fatal(err)
		}
	}
	drained := make(chan int)
	go func() {
		got := 0
		for range c.Results() {
			got++
		}
		drained <- got
	}()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-drained:
		if got != 6 {
			t.Errorf("drained %d results after Close, want 6 (every in-flight CPI resolved)", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Results did not close after Close")
	}
	if _, err := c.Submit(frames[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
}
