package fleet

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the per-server circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open (values < 1 mean 3). Connection errors, deadline
	// misses, and typed overload/drain rejects all count; any success
	// resets the streak.
	FailureThreshold int
	// Cooldown is how long an open breaker blocks traffic before it may
	// transition to half-open and admit one trial (values <= 0 mean 1s).
	Cooldown time.Duration
	// ProbeTimeout bounds one /healthz probe when the server has a health
	// address (values <= 0 mean 1s).
	ProbeTimeout time.Duration
}

func (c *BreakerConfig) threshold() int {
	if c.FailureThreshold < 1 {
		return 3
	}
	return c.FailureThreshold
}

func (c *BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return time.Second
	}
	return c.Cooldown
}

func (c *BreakerConfig) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return time.Second
	}
	return c.ProbeTimeout
}

// Breaker states.
const (
	stateClosed int32 = iota // healthy: traffic flows
	stateOpen                // tripped: no traffic until the cooldown
	stateHalfOpen            // probing: exactly one trial in flight
)

func stateName(s int32) string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state-%d", s)
	}
}

// breaker is one server's circuit breaker: closed → open after a failure
// streak, open → half-open after the cooldown (gated on a /healthz probe
// when the server has a health endpoint), half-open → closed on a
// successful trial, half-open → open on a failed one.
type breaker struct {
	cfg    BreakerConfig
	health string // optional http host:port for /healthz

	mu       sync.Mutex
	state    int32
	failures int
	openedAt time.Time
	probing  bool // the half-open trial is in flight

	opens     atomic.Int64
	halfOpens atomic.Int64
	closes    atomic.Int64
}

func newBreaker(cfg BreakerConfig, health string) *breaker {
	return &breaker{cfg: cfg, health: health}
}

// allow reports whether a submission may target this server right now. In
// the half-open state only one caller at a time gets true — the trial —
// and an open breaker past its cooldown first verifies /healthz (when
// configured) before becoming that trial's half-open gate.
func (b *breaker) allow() bool {
	b.mu.Lock()
	switch {
	case b.state == stateClosed:
		b.mu.Unlock()
		return true
	case b.state == stateHalfOpen && !b.probing:
		b.probing = true
		b.mu.Unlock()
		return true
	case b.state == stateOpen && time.Since(b.openedAt) >= b.cfg.cooldown():
		b.mu.Unlock()
		if b.health != "" && !b.probeHealth() {
			b.mu.Lock()
			// Still down per its own health endpoint: restart the cooldown
			// so probes are rate-limited to one per cooldown.
			if b.state == stateOpen {
				b.openedAt = time.Now()
			}
			b.mu.Unlock()
			return false
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		// Re-check under the lock: another caller may have raced through
		// the same transition while the probe ran.
		switch {
		case b.state == stateClosed:
			return true
		case b.state == stateOpen && time.Since(b.openedAt) >= b.cfg.cooldown():
			b.state = stateHalfOpen
			b.halfOpens.Add(1)
			b.probing = true
			return true
		case b.state == stateHalfOpen && !b.probing:
			b.probing = true
			return true
		default:
			return false
		}
	default:
		b.mu.Unlock()
		return false
	}
}

// record feeds one attempt's outcome back into the state machine.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state != stateClosed {
			b.closes.Add(1)
		}
		b.state = stateClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.probing = false
	switch b.state {
	case stateHalfOpen:
		// The trial failed: back to open, cooldown restarts.
		b.state = stateOpen
		b.openedAt = time.Now()
		b.opens.Add(1)
	case stateClosed:
		b.failures++
		if b.failures >= b.cfg.threshold() {
			b.state = stateOpen
			b.openedAt = time.Now()
			b.opens.Add(1)
		}
	case stateOpen:
		// Stragglers from before the trip (in-flight attempts failing
		// late) don't push openedAt: under constant traffic that would
		// starve recovery.
	}
}

// probeHealth asks the server's own /healthz whether it is serving again.
func (b *breaker) probeHealth() bool {
	c := http.Client{Timeout: b.cfg.probeTimeout()}
	resp, err := c.Get("http://" + b.health + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// snapshot returns the state name and transition counters for stats.
func (b *breaker) snapshot() (state string, opens, halfOpens, closes int64) {
	b.mu.Lock()
	s := b.state
	b.mu.Unlock()
	return stateName(s), b.opens.Load(), b.halfOpens.Load(), b.closes.Load()
}
