package fleet

import (
	"encoding/json"
	"net/http"
	"time"
)

// BreakerStats is one server's circuit-breaker slice of a stats snapshot.
type BreakerStats struct {
	State string `json:"state"`
	// Opens / HalfOpens / Closes count the state transitions into each
	// state — the open→half-open→closed recovery arc of a crashed server
	// shows up as one increment of each.
	Opens     int64 `json:"opens"`
	HalfOpens int64 `json:"half_opens"`
	Closes    int64 `json:"closes"`
}

// ServerStats is one server's slice of a fleet stats snapshot.
type ServerStats struct {
	Addr string `json:"addr"`
	// Submitted counts attempts routed here; Completed the CPIs this
	// server answered; Failed every attempt that did not complete
	// (rejects, connection losses, deadline misses); Abandoned the subset
	// that was accepted (or possibly processing) when the failure hit and
	// therefore could not be retried elsewhere.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Abandoned int64 `json:"abandoned"`
	// Dials counts connections made to this server; anything past 1 is a
	// redial after a crash or drain.
	Dials int64 `json:"dials"`
	// LateResults counts answers that arrived after their submission had
	// already given up on the deadline.
	LateResults int64        `json:"late_results,omitempty"`
	Breaker     BreakerStats `json:"breaker"`
}

// Stats is a point-in-time snapshot of the fleet client, as served on the
// stats HTTP endpoint (the client-side mirror of serve.Stats).
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Submitted counts CPIs handed to Submit; Completed/Failed their
	// terminal outcomes (Failed includes Abandoned). Retries counts extra
	// attempts after a retry-safe failure; Failovers submits routed away
	// from the CPI's hash-primary server.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Abandoned int64 `json:"abandoned"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`

	// Aggregate breaker transitions across the fleet.
	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`

	Servers []ServerStats `json:"servers"`
}

// Stats snapshots the fleet counters.
func (c *Client) Stats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(c.start).Seconds(),
		Submitted:     c.submitted.Load(),
		Completed:     c.completed.Load(),
		Failed:        c.failed.Load(),
		Abandoned:     c.abandoned.Load(),
		Retries:       c.retries.Load(),
		Failovers:     c.failovers.Load(),
	}
	for _, m := range c.members {
		state, opens, halfOpens, closes := m.breaker.snapshot()
		st.BreakerOpens += opens
		st.BreakerHalfOpens += halfOpens
		st.BreakerCloses += closes
		st.Servers = append(st.Servers, ServerStats{
			Addr:        m.spec.Addr,
			Submitted:   m.submitted.Load(),
			Completed:   m.completed.Load(),
			Failed:      m.failed.Load(),
			Abandoned:   m.abandoned.Load(),
			Dials:       m.dials.Load(),
			LateResults: m.late.Load(),
			Breaker: BreakerStats{
				State:     state,
				Opens:     opens,
				HalfOpens: halfOpens,
				Closes:    closes,
			},
		})
	}
	return st
}

// StatsHandler returns the fleet's health/stats HTTP handler, the same
// pattern as serve.Server.StatsHandler:
//
//	GET /healthz  200 "ok" while any server's breaker admits traffic,
//	              503 when every breaker is open (or the client is closed)
//	GET /stats    the Stats snapshot as JSON
func (c *Client) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if c.closed.Load() {
			http.Error(w, "closed", http.StatusServiceUnavailable)
			return
		}
		for _, m := range c.members {
			if state, _, _, _ := m.breaker.snapshot(); state != "open" {
				w.Write([]byte("ok\n"))
				return
			}
		}
		http.Error(w, "no healthy server", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Stats())
	})
	return mux
}
