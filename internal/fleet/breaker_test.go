package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerOpensAfterFailureStreak(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour}, "")
	for i := 0; i < 2; i++ {
		b.record(false)
		if !b.allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.record(false)
	if b.allow() {
		t.Fatal("breaker still closed after hitting the failure threshold")
	}
	if state, opens, _, _ := b.snapshot(); state != "open" || opens != 1 {
		t.Fatalf("state %q opens %d, want open/1", state, opens)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}, "")
	b.record(false)
	b.record(true)
	b.record(false)
	if !b.allow() {
		t.Fatal("interleaved success did not reset the failure streak")
	}
}

func TestBreakerHalfOpenAdmitsOneTrial(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Millisecond}, "")
	b.record(false)
	if b.allow() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Trial succeeds: closed, and the recovery arc is visible.
	b.record(true)
	if !b.allow() {
		t.Fatal("breaker did not close after a successful trial")
	}
	state, opens, halfOpens, closes := b.snapshot()
	if state != "closed" || opens != 1 || halfOpens != 1 || closes != 1 {
		t.Fatalf("recovery arc: state %q opens %d half-opens %d closes %d, want closed/1/1/1", state, opens, halfOpens, closes)
	}
}

func TestBreakerFailedTrialReopens(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Millisecond}, "")
	b.record(false)
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open")
	}
	b.record(false)
	if b.allow() {
		t.Fatal("breaker stayed permeable after a failed half-open trial")
	}
	if state, opens, _, _ := b.snapshot(); state != "open" || opens != 2 {
		t.Fatalf("state %q opens %d after a failed trial, want open/2", state, opens)
	}
}

// A breaker with a health endpoint must not half-open while that endpoint
// says the server is down, and must recover once it says ok — without a
// real CPI being risked on the probe decision.
func TestBreakerHealthProbeGatesRecovery(t *testing.T) {
	var healthy atomic.Bool
	var probes atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer hs.Close()
	health := strings.TrimPrefix(hs.URL, "http://")

	b := newBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 5 * time.Millisecond}, health)
	b.record(false)
	time.Sleep(10 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker half-opened although /healthz reports down")
	}
	if probes.Load() == 0 {
		t.Fatal("allow() never probed the health endpoint")
	}
	// The failed probe restarts the cooldown, rate-limiting probes.
	if b.allow() {
		t.Fatal("breaker probed again inside the restarted cooldown")
	}

	healthy.Store(true)
	time.Sleep(10 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after /healthz recovered")
	}
	b.record(true)
	if state, _, halfOpens, closes := b.snapshot(); state != "closed" || halfOpens != 1 || closes != 1 {
		t.Fatalf("post-recovery: state %q half-opens %d closes %d, want closed/1/1", state, halfOpens, closes)
	}
}
