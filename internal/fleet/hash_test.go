package fleet

import (
	"fmt"
	"testing"

	"stapio/internal/cube"
)

func testMembers(n int) []*member {
	opt := &Options{}
	ms := make([]*member, n)
	for i := range ms {
		ms[i] = newMember(ServerSpec{Addr: fmt.Sprintf("10.0.0.%d:7420", i+1)}, opt)
	}
	return ms
}

var hashDims = cube.Dims{Channels: 4, Pulses: 16, Ranges: 64}

func TestRankMembersIsStable(t *testing.T) {
	ms := testMembers(5)
	for seq := uint64(0); seq < 50; seq++ {
		a := rankMembers(ms, hashDims, seq)
		b := rankMembers(ms, hashDims, seq)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seq %d: ranking not deterministic at position %d", seq, i)
			}
		}
	}
}

func TestRankMembersSpreadsKeys(t *testing.T) {
	ms := testMembers(3)
	const n = 3000
	counts := make(map[string]int)
	for seq := uint64(0); seq < n; seq++ {
		counts[rankMembers(ms, hashDims, seq)[0].spec.Addr]++
	}
	for addr, got := range counts {
		// Rendezvous over 3 servers should put roughly a third on each;
		// anything under a sixth means the scoring is badly skewed.
		if got < n/6 {
			t.Errorf("server %s is primary for only %d of %d keys", addr, got, n)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 servers are ever primary", len(counts))
	}
}

// Removing one server must only remap the keys it owned: every other key
// keeps its primary. This is the property that makes a crash a local
// event instead of a fleet-wide reshuffle.
func TestRankMembersRemovalOnlyRemapsOwnedKeys(t *testing.T) {
	ms := testMembers(4)
	removed := ms[2]
	rest := append(append([]*member{}, ms[:2]...), ms[3])
	moved, kept := 0, 0
	for seq := uint64(0); seq < 1000; seq++ {
		before := rankMembers(ms, hashDims, seq)[0]
		after := rankMembers(rest, hashDims, seq)[0]
		if before == removed {
			moved++
			continue // its keys must move somewhere, anywhere
		}
		if before != after {
			t.Fatalf("seq %d: primary changed from %s to %s though neither was removed",
				seq, before.spec.Addr, after.spec.Addr)
		}
		kept++
	}
	if moved == 0 {
		t.Fatal("removed server owned no keys; the test exercised nothing")
	}
	t.Logf("removal remapped %d keys, kept %d", moved, kept)
}

// Different geometries shard differently even at the same sequence
// numbers, so a mixed-geometry fleet splits by scenario first.
func TestCpiKeyDependsOnDims(t *testing.T) {
	other := cube.Dims{Channels: 16, Pulses: 128, Ranges: 512}
	same := 0
	const n = 256
	for seq := uint64(0); seq < n; seq++ {
		if cpiKey(hashDims, seq) == cpiKey(other, seq) {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d of %d keys collide across geometries", same, n)
	}
}
