// Package tune implements the online pipeline auto-tuner: a controller
// that watches the measured per-stage service times of a running pipeline
// and rebalances a fixed worker budget across the stages between CPIs.
//
// The paper (and cmd/stapopt) solves the same problem offline: given the
// per-task workloads W_i and a node budget P, assign P_i to minimise the
// bottleneck service time max_i W_i/P_i (eqs. (1)-(15) reduce throughput
// to 1/max_i T_i). The marginal-allocation greedy is optimal because each
// task's service time is non-increasing in its own worker count and
// independent of the others'. The controller here runs the identical
// discrete water-filling, but against *measured* busy times instead of the
// analytic model: every decision window it estimates each stage's serial
// work as measuredService x currentWorkers, re-solves the split, and
// applies it only when the predicted bottleneck improvement clears a
// hysteresis threshold (so measurement noise cannot make it thrash).
//
// The controller is deliberately pipeline-agnostic: stages are just names
// with optional worker caps, and the caller feeds cumulative (busyNS,
// cpis) counters after every completed CPI. pipexec owns the mapping onto
// its stage goroutines and the atomic worker-count swap.
package tune

import (
	"fmt"
	"time"
)

// Config parameterises the controller.
type Config struct {
	// Budget is the total worker budget distributed across the tunable
	// stages. 0 means "the sum of the initial per-stage counts".
	Budget int
	// Interval is the number of completed CPIs between decisions
	// (default 8). Shorter intervals react faster but measure noisier
	// service times.
	Interval int
	// Warmup is the number of completed CPIs ignored before the first
	// measurement window opens (default: Interval), excluding the
	// pipeline-fill transient from the first decision.
	Warmup int
	// Hysteresis is the minimum predicted relative improvement of the
	// bottleneck service time required to apply a rebalance. 0 means the
	// default (0.1); negative means none (every differing split is
	// applied — useful in tests).
	Hysteresis float64
}

func (c Config) interval() int {
	if c.Interval < 1 {
		return 8
	}
	return c.Interval
}

func (c Config) warmup() int {
	if c.Warmup < 1 {
		return c.interval()
	}
	return c.Warmup
}

func (c Config) hysteresis() float64 {
	switch {
	case c.Hysteresis < 0:
		return 0
	case c.Hysteresis == 0:
		return 0.1
	default:
		return c.Hysteresis
	}
}

// Stage describes one tunable pipeline stage.
type Stage struct {
	Name string
	// Max caps the useful worker count (0 = uncapped) — typically the
	// number of work items the stage partitions, beyond which extra
	// workers receive empty blocks.
	Max int
}

// Decision is one evaluation of the balance condition, recorded whether or
// not it changed the split — the trace replays how the tuner converged.
type Decision struct {
	// CPI is the number of CPIs the pipeline had completed when the
	// decision was taken (timestamp-free, so traces are comparable
	// across runs and machines).
	CPI int
	// Service is the measured mean wall-clock service time per CPI of
	// each stage over the window just closed, at the Old worker counts.
	Service []time.Duration
	// Old and New are the per-stage worker splits before and after the
	// decision (New == Old when not applied).
	Old, New []int
	// Bottleneck indexes the stage with the largest measured service.
	Bottleneck int
	// Applied reports whether the split was actually swapped; false when
	// the re-solve reproduced the current split or the predicted gain
	// did not clear the hysteresis threshold.
	Applied bool
}

// traceCap bounds the decision trace so unbounded streaming runs cannot
// grow memory; decisions beyond it still apply, they are just not recorded.
const traceCap = 4096

// Controller holds the tuner state. It is not internally synchronised: the
// caller must invoke Observe from a single goroutine (pipexec calls it
// from the terminal pipeline stage) and read Trace/Split only after the
// run has stopped or from that same goroutine.
type Controller struct {
	cfg    Config
	stages []Stage
	budget int

	split    []int
	prevBusy []int64
	prevCPI  []int64

	seen      int  // CPIs observed so far
	lastAt    int  // seen value at the last window boundary
	baselined bool // a window baseline has been snapshotted

	trace   []Decision
	skipped int // decisions not recorded after traceCap

	// scratch reused across decisions to keep Observe allocation-light.
	work []float64
	caps []int
}

// NewController validates the configuration and returns a controller
// starting from the given split.
func NewController(cfg Config, stages []Stage, initial []int) (*Controller, error) {
	n := len(stages)
	if n == 0 {
		return nil, fmt.Errorf("tune: no stages")
	}
	if len(initial) != n {
		return nil, fmt.Errorf("tune: initial split covers %d stages, have %d", len(initial), n)
	}
	sum := 0
	for i, w := range initial {
		if w < 1 {
			return nil, fmt.Errorf("tune: stage %q starts with %d workers, need >= 1", stages[i].Name, w)
		}
		sum += w
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = sum
	}
	if budget != sum {
		return nil, fmt.Errorf("tune: budget %d does not match the initial split's %d workers", budget, sum)
	}
	if budget < n {
		return nil, fmt.Errorf("tune: budget %d cannot cover %d stages", budget, n)
	}
	c := &Controller{
		cfg:      cfg,
		stages:   append([]Stage(nil), stages...),
		budget:   budget,
		split:    append([]int(nil), initial...),
		prevBusy: make([]int64, n),
		prevCPI:  make([]int64, n),
		work:     make([]float64, n),
		caps:     make([]int, n),
	}
	for i, s := range c.stages {
		c.caps[i] = s.Max
	}
	return c, nil
}

// Budget returns the total worker budget.
func (c *Controller) Budget() int { return c.budget }

// Split returns a copy of the current per-stage worker split.
func (c *Controller) Split() []int { return append([]int(nil), c.split...) }

// StageNames returns the stage names in split order.
func (c *Controller) StageNames() []string {
	names := make([]string, len(c.stages))
	for i, s := range c.stages {
		names[i] = s.Name
	}
	return names
}

// Trace returns the recorded decisions.
func (c *Controller) Trace() []Decision { return append([]Decision(nil), c.trace...) }

// SkippedDecisions reports how many decisions were evaluated but not
// recorded because the trace hit its cap.
func (c *Controller) SkippedDecisions() int { return c.skipped }

// Observe feeds the cumulative per-stage busy time (nanoseconds) and CPI
// counts after one completed CPI. Every Interval completions (after
// Warmup) it evaluates the balance condition. The returned split is the
// current one; applied is true when this call rebalanced it — the caller
// must then install the new counts before the next CPI starts.
func (c *Controller) Observe(busyNS, cpis []int64) (split []int, applied bool) {
	c.seen++
	if !c.baselined {
		if c.seen >= c.cfg.warmup() {
			copy(c.prevBusy, busyNS)
			copy(c.prevCPI, cpis)
			c.lastAt = c.seen
			c.baselined = true
		}
		return c.split, false
	}
	if c.seen-c.lastAt < c.cfg.interval() {
		return c.split, false
	}
	applied = c.decide(busyNS, cpis)
	copy(c.prevBusy, busyNS)
	copy(c.prevCPI, cpis)
	c.lastAt = c.seen
	return c.split, applied
}

// effective is the number of workers of stage i that actually carry work
// when w are assigned: the stage's cap truncates the rest.
func (c *Controller) effective(i, w int) int {
	if cap := c.stages[i].Max; cap > 0 && w > cap {
		return cap
	}
	return w
}

// decide closes the current measurement window, re-solves the split, and
// applies it if the predicted gain clears the hysteresis threshold.
func (c *Controller) decide(busyNS, cpis []int64) bool {
	n := len(c.stages)
	service := make([]time.Duration, n)
	bottleneck := 0
	for i := 0; i < n; i++ {
		dc := cpis[i] - c.prevCPI[i]
		if dc <= 0 {
			// A stage saw no CPIs this window (a skip policy dropped
			// everything, or the window raced a drain); there is nothing
			// to measure, so keep the window open.
			return false
		}
		db := busyNS[i] - c.prevBusy[i]
		if db < 0 {
			db = 0
		}
		service[i] = time.Duration(db / dc)
		// The stage's serial work per CPI: measured wall time at the
		// current worker count, scaled back up. Workers beyond the cap
		// partition empty blocks and contribute nothing, so the scale
		// factor is the *effective* count — an over-cap split's surplus
		// is then correctly seen as free to move elsewhere. Stages that
		// do not scale linearly (memory-bound kernels) are over-estimated
		// here, but the next window re-measures at the new count, so the
		// estimate self-corrects; hysteresis damps the resulting
		// oscillation.
		c.work[i] = float64(db) / float64(dc) * float64(c.effective(i, c.split[i]))
		if service[i] > service[bottleneck] {
			bottleneck = i
		}
	}
	next := Balance(c.work, c.budget, c.caps)

	oldMax, newMax := 0.0, 0.0
	changed := false
	for i := 0; i < n; i++ {
		if v := c.work[i] / float64(c.effective(i, c.split[i])); v > oldMax {
			oldMax = v
		}
		if v := c.work[i] / float64(c.effective(i, next[i])); v > newMax {
			newMax = v
		}
		if next[i] != c.split[i] {
			changed = true
		}
	}
	applied := changed && newMax <= oldMax*(1-c.cfg.hysteresis())

	d := Decision{
		CPI:        c.seen,
		Service:    service,
		Old:        append([]int(nil), c.split...),
		Bottleneck: bottleneck,
		Applied:    applied,
	}
	if applied {
		copy(c.split, next)
	}
	d.New = append([]int(nil), c.split...)
	if len(c.trace) < traceCap {
		c.trace = append(c.trace, d)
	} else {
		c.skipped++
	}
	return applied
}

// Balance distributes budget workers over stages with estimated serial
// work per CPI, minimising the bottleneck service time max_i work_i/w_i —
// the paper's balance condition (equalise busy/workers across stages) as
// discrete water-filling. Every stage gets at least one worker; caps, when
// non-nil and positive, bound per-stage counts (a capped stage stops
// receiving workers once at its cap). The greedy is optimal because each
// height work_i/w_i is strictly decreasing in w_i and independent of the
// other stages. Stages with zero work keep exactly one worker. Unusable
// budget (everything capped) is left unassigned.
func Balance(work []float64, budget int, caps []int) []int {
	n := len(work)
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	height := func(i int) float64 { return work[i] / float64(w[i]) }
	for used := n; used < budget; used++ {
		best := -1
		for i := range w {
			if work[i] <= 0 {
				continue
			}
			if caps != nil && caps[i] > 0 && w[i] >= caps[i] {
				continue
			}
			if best == -1 || height(i) > height(best) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		w[best]++
	}
	return w
}

// EvenSplit distributes budget over n stages as evenly as possible — the
// cold-start split the tuner begins from. The first budget%n stages get
// the extra worker. It panics if budget < n (every stage needs a worker).
func EvenSplit(budget, n int) []int {
	if n <= 0 || budget < n {
		panic(fmt.Sprintf("tune: EvenSplit budget %d cannot cover %d stages", budget, n))
	}
	w := make([]int, n)
	base, extra := budget/n, budget%n
	for i := range w {
		w[i] = base
		if i < extra {
			w[i]++
		}
	}
	return w
}
