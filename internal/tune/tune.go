// Package tune implements the online pipeline auto-tuner: a controller
// that watches the measured per-stage service times of a running pipeline
// and rebalances a fixed worker budget across the stages between CPIs.
//
// The paper (and cmd/stapopt) solves the same problem offline: given the
// per-task workloads W_i and a node budget P, assign P_i to minimise the
// bottleneck service time max_i W_i/P_i (eqs. (1)-(15) reduce throughput
// to 1/max_i T_i). The marginal-allocation greedy is optimal because each
// task's service time is non-increasing in its own worker count and
// independent of the others'. The controller here runs the identical
// discrete water-filling, but against *measured* busy times instead of the
// analytic model: every decision window it estimates each stage's serial
// work, re-solves the split, and applies it only when the predicted
// bottleneck improvement clears a hysteresis threshold (so measurement
// noise cannot make it thrash).
//
// Two refinements extend the paper's T = W/P model:
//
//   - Serial stages (Stage.Serial) model I/O frontends whose "workers" are
//     latency-hiding slots rather than compute parallelism: a prefetch
//     window of depth D overlaps D fetches of serial latency L each, so
//     the pipeline-visible service time is L/D. Their fed busy counters
//     record per-fetch latency, which the controller uses as the stage's
//     serial work directly — depth then enters the balance condition
//     exactly like a worker count, and the tuner trades compute workers
//     for prefetch depth under the one shared budget.
//
//   - Measured per-worker efficiency replaces perfect scaling: whenever a
//     stage is observed at two different worker counts, the controller
//     fits the linear-overhead rate model rate(w) = 1 + e(w-1) (e = 1 is
//     perfect scaling) and feeds e into the height function, so stages
//     that cannot use extra workers (memory-bound kernels) stop being
//     over-credited them.
//
// The controller is deliberately pipeline-agnostic: stages are just names
// with optional worker caps, and the caller feeds cumulative (busyNS,
// cpis) counters after every completed CPI. pipexec owns the mapping onto
// its stage goroutines and the atomic worker-count swap.
package tune

import (
	"fmt"
	"time"
)

// Config parameterises the controller.
type Config struct {
	// Budget is the total worker budget distributed across the tunable
	// stages. 0 means "the sum of the initial per-stage counts".
	Budget int
	// Interval is the number of completed CPIs between decisions
	// (default 8). Shorter intervals react faster but measure noisier
	// service times.
	Interval int
	// Warmup is the number of completed CPIs ignored before the first
	// measurement window opens (default: Interval), excluding the
	// pipeline-fill transient from the first decision.
	Warmup int
	// Hysteresis is the minimum predicted relative improvement of the
	// bottleneck service time required to apply a rebalance. 0 means the
	// default (0.1); negative means none (every differing split is
	// applied — useful in tests).
	Hysteresis float64
}

func (c Config) interval() int {
	if c.Interval < 1 {
		return 8
	}
	return c.Interval
}

func (c Config) warmup() int {
	if c.Warmup < 1 {
		return c.interval()
	}
	return c.Warmup
}

func (c Config) hysteresis() float64 {
	switch {
	case c.Hysteresis < 0:
		return 0
	case c.Hysteresis == 0:
		return 0.1
	default:
		return c.Hysteresis
	}
}

// Stage describes one tunable pipeline stage.
type Stage struct {
	Name string
	// Max caps the useful worker count (0 = uncapped) — typically the
	// number of work items the stage partitions, beyond which extra
	// workers receive empty blocks.
	Max int
	// Serial marks a latency-hiding stage (an I/O frontend): its busy
	// counter records the serial latency of each operation (e.g. one
	// striped read), operations overlap freely, and assigning it w
	// "workers" (a prefetch window of depth w) divides the
	// pipeline-visible service time by w. The controller uses the
	// measured per-operation latency as the stage's serial work directly
	// instead of scaling it by the current worker count, and pins the
	// stage's efficiency at 1 (overlap is genuine concurrency, not
	// compute speedup). If the store saturates, the measured latency
	// itself rises with depth and the estimate self-corrects.
	Serial bool
}

// Reason classifies a Decision: why the tuner did (or did not) move.
type Reason string

const (
	// ReasonRebalanced: the re-solve produced a better split and it was
	// installed.
	ReasonRebalanced Reason = "rebalanced"
	// ReasonBalanced: the re-solve reproduced the current split — there
	// was nothing to move.
	ReasonBalanced Reason = "balanced"
	// ReasonHysteresis: a different split existed but its predicted gain
	// did not clear the hysteresis threshold.
	ReasonHysteresis Reason = "hysteresis"
	// ReasonWarmup: the warmup window closed and the measurement baseline
	// was snapshotted; no measurement existed yet.
	ReasonWarmup Reason = "warmup"
	// ReasonStarved: a stage recorded no CPIs in the window (a skip
	// policy dropped everything, or the window raced a drain), so the
	// service times were unmeasurable and the split was left alone.
	ReasonStarved Reason = "starved-window"
)

// Decision is one evaluation of the balance condition, recorded whether or
// not it changed the split — the trace replays how the tuner converged.
// No-op windows are recorded too (with Reason saying why nothing moved),
// so a trace with zero applied rebalances is still explainable.
type Decision struct {
	// CPI is the number of CPIs the pipeline had completed when the
	// decision was taken (timestamp-free, so traces are comparable
	// across runs and machines).
	CPI int `json:"cpi"`
	// Service is the measured mean wall-clock service time per CPI of
	// each stage over the window just closed, at the Old worker counts.
	// Nil for warmup/starved entries, which close no measured window.
	Service []time.Duration `json:"service_ns,omitempty"`
	// Old and New are the per-stage worker splits before and after the
	// decision (New == Old when not applied).
	Old []int `json:"old"`
	New []int `json:"new"`
	// Bottleneck indexes the stage with the largest measured service;
	// -1 when nothing was measured (warmup/starved entries).
	Bottleneck int `json:"bottleneck"`
	// Applied reports whether the split was actually swapped.
	Applied bool `json:"applied"`
	// Reason says why the decision moved or held still.
	Reason Reason `json:"reason"`
	// Efficiency is the per-stage learned scaling efficiency in (0, 1]
	// at decision time (1 = perfect scaling; serial stages stay 1).
	// Omitted on entries that measured nothing.
	Efficiency []float64 `json:"efficiency,omitempty"`
}

// traceCap bounds the decision trace so unbounded streaming runs cannot
// grow memory; decisions beyond it still apply, they are just not recorded.
const traceCap = 4096

// Efficiency model: measured service s(w) = W / rate(w) with
// rate(w) = 1 + e(w-1). e below effMin is clamped — a stage that appears
// to gain nothing from workers is still granted a floor so one noisy
// window cannot permanently write it off.
const (
	effMin   = 0.1
	effBlend = 0.5 // EWMA weight of a fresh efficiency estimate
)

// rate is the modelled speedup of w workers at efficiency e: 1 + e(w-1).
// e <= 0 (unknown) means perfect scaling, i.e. rate = w.
func rate(e float64, w int) float64 {
	if w < 1 {
		w = 1
	}
	if e <= 0 || e > 1 {
		return float64(w)
	}
	return 1 + e*float64(w-1)
}

// Controller holds the tuner state. It is not internally synchronised: the
// caller must invoke Observe from a single goroutine (pipexec calls it
// from the terminal pipeline stage) and read Trace/Split only after the
// run has stopped or from that same goroutine.
type Controller struct {
	cfg    Config
	stages []Stage
	budget int

	split    []int
	prevBusy []int64
	prevCPI  []int64

	seen      int  // CPIs observed so far
	lastAt    int  // seen value at the last window boundary
	baselined bool // a window baseline has been snapshotted

	trace   []Decision
	skipped int // decisions not recorded after traceCap

	// eff is the learned per-stage scaling efficiency (1 = perfect);
	// lastService/lastEffW remember the previous window's measurement so
	// a worker-count change between windows yields an efficiency sample.
	eff         []float64
	lastService []float64
	lastEffW    []int

	// scratch reused across decisions to keep Observe allocation-light.
	work []float64
	caps []int
}

// NewController validates the configuration and returns a controller
// starting from the given split.
func NewController(cfg Config, stages []Stage, initial []int) (*Controller, error) {
	n := len(stages)
	if n == 0 {
		return nil, fmt.Errorf("tune: no stages")
	}
	if len(initial) != n {
		return nil, fmt.Errorf("tune: initial split covers %d stages, have %d", len(initial), n)
	}
	sum := 0
	for i, w := range initial {
		if w < 1 {
			return nil, fmt.Errorf("tune: stage %q starts with %d workers, need >= 1", stages[i].Name, w)
		}
		sum += w
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = sum
	}
	if budget != sum {
		return nil, fmt.Errorf("tune: budget %d does not match the initial split's %d workers", budget, sum)
	}
	if budget < n {
		return nil, fmt.Errorf("tune: budget %d cannot cover %d stages", budget, n)
	}
	c := &Controller{
		cfg:         cfg,
		stages:      append([]Stage(nil), stages...),
		budget:      budget,
		split:       append([]int(nil), initial...),
		prevBusy:    make([]int64, n),
		prevCPI:     make([]int64, n),
		eff:         make([]float64, n),
		lastService: make([]float64, n),
		lastEffW:    make([]int, n),
		work:        make([]float64, n),
		caps:        make([]int, n),
	}
	for i, s := range c.stages {
		c.caps[i] = s.Max
		c.eff[i] = 1
	}
	return c, nil
}

// Budget returns the total worker budget.
func (c *Controller) Budget() int { return c.budget }

// Split returns a copy of the current per-stage worker split.
func (c *Controller) Split() []int { return append([]int(nil), c.split...) }

// Efficiency returns a copy of the learned per-stage scaling efficiencies
// (1 = perfect scaling; serial stages are pinned at 1).
func (c *Controller) Efficiency() []float64 { return append([]float64(nil), c.eff...) }

// StageNames returns the stage names in split order.
func (c *Controller) StageNames() []string {
	names := make([]string, len(c.stages))
	for i, s := range c.stages {
		names[i] = s.Name
	}
	return names
}

// Trace returns the recorded decisions.
func (c *Controller) Trace() []Decision { return append([]Decision(nil), c.trace...) }

// SkippedDecisions reports how many decisions were evaluated but not
// recorded because the trace hit its cap.
func (c *Controller) SkippedDecisions() int { return c.skipped }

// Observe feeds the cumulative per-stage busy time (nanoseconds) and CPI
// counts after one completed CPI. Every Interval completions (after
// Warmup) it evaluates the balance condition. The returned split is the
// current one; applied is true when this call rebalanced it — the caller
// must then install the new counts before the next CPI starts.
func (c *Controller) Observe(busyNS, cpis []int64) (split []int, applied bool) {
	c.seen++
	if !c.baselined {
		if c.seen >= c.cfg.warmup() {
			copy(c.prevBusy, busyNS)
			copy(c.prevCPI, cpis)
			c.lastAt = c.seen
			c.baselined = true
			c.recordNoop(ReasonWarmup)
		}
		return c.split, false
	}
	if c.seen-c.lastAt < c.cfg.interval() {
		return c.split, false
	}
	applied = c.decide(busyNS, cpis)
	copy(c.prevBusy, busyNS)
	copy(c.prevCPI, cpis)
	c.lastAt = c.seen
	return c.split, applied
}

// effective is the number of workers of stage i that actually carry work
// when w are assigned: the stage's cap truncates the rest.
func (c *Controller) effective(i, w int) int {
	if cap := c.stages[i].Max; cap > 0 && w > cap {
		return cap
	}
	return w
}

// recordNoop traces a window that measured nothing (warmup baseline or a
// starved stage), so quiet runs still leave an explainable trail.
func (c *Controller) recordNoop(why Reason) {
	c.record(Decision{
		CPI:        c.seen,
		Old:        append([]int(nil), c.split...),
		New:        append([]int(nil), c.split...),
		Bottleneck: -1,
		Reason:     why,
	})
}

func (c *Controller) record(d Decision) {
	if len(c.trace) < traceCap {
		c.trace = append(c.trace, d)
	} else {
		c.skipped++
	}
}

// updateEfficiency folds one window's (service, effective workers) sample
// into stage i's learned efficiency. Two windows at different worker
// counts pin the rate model down: s1/s2 = rate(w2)/rate(w1) solves to
// e = (s1/s2 - 1) / ((w2-1) - (s1/s2)(w1-1)).
func (c *Controller) updateEfficiency(i int, serviceNS float64, effW int) {
	defer func() {
		c.lastService[i] = serviceNS
		c.lastEffW[i] = effW
	}()
	s1, w1 := c.lastService[i], c.lastEffW[i]
	if s1 <= 0 || serviceNS <= 0 || w1 < 1 || w1 == effW {
		return
	}
	ratio := s1 / serviceNS
	den := float64(effW-1) - ratio*float64(w1-1)
	if den > -1e-9 && den < 1e-9 {
		return
	}
	e := (ratio - 1) / den
	if e < effMin {
		e = effMin
	}
	if e > 1 {
		e = 1
	}
	c.eff[i] = (1-effBlend)*c.eff[i] + effBlend*e
}

// decide closes the current measurement window, re-solves the split, and
// applies it if the predicted gain clears the hysteresis threshold.
func (c *Controller) decide(busyNS, cpis []int64) bool {
	n := len(c.stages)
	service := make([]time.Duration, n)
	bottleneck := -1
	for i := 0; i < n; i++ {
		dc := cpis[i] - c.prevCPI[i]
		if dc <= 0 {
			if c.stages[i].Serial {
				// A serial (I/O) stage that issued nothing this window has
				// drained its input: it is no longer a constraint, so its
				// work is zero rather than unmeasurable.
				service[i] = 0
				c.work[i] = 0
				continue
			}
			// A compute stage saw no CPIs (a skip policy dropped
			// everything, or the window raced a drain); the window is
			// unmeasurable, so hold the split and say why.
			c.recordNoop(ReasonStarved)
			return false
		}
		db := busyNS[i] - c.prevBusy[i]
		if db < 0 {
			db = 0
		}
		meas := float64(db) / float64(dc)
		if c.stages[i].Serial {
			// The busy counter records per-fetch serial latency: that IS
			// the stage's serial work; depth w hides it as work/w. The
			// pipeline-visible service is work over the current depth.
			c.work[i] = meas
			service[i] = time.Duration(meas / float64(c.effective(i, c.split[i])))
		} else {
			effW := c.effective(i, c.split[i])
			c.updateEfficiency(i, meas, effW)
			// The stage's serial work per CPI: measured wall time at the
			// current worker count, scaled back up by the modelled rate.
			// Workers beyond the cap partition empty blocks and contribute
			// nothing, so the scale factor uses the *effective* count — an
			// over-cap split's surplus is then correctly seen as free to
			// move elsewhere.
			service[i] = time.Duration(meas)
			c.work[i] = meas * rate(c.eff[i], effW)
		}
		if bottleneck < 0 || service[i] > service[bottleneck] {
			bottleneck = i
		}
	}
	next := BalanceEfficiency(c.work, c.budget, c.caps, c.eff)

	oldMax, newMax := 0.0, 0.0
	changed := false
	for i := 0; i < n; i++ {
		if v := c.work[i] / rate(c.effFor(i), c.effective(i, c.split[i])); v > oldMax {
			oldMax = v
		}
		if v := c.work[i] / rate(c.effFor(i), c.effective(i, next[i])); v > newMax {
			newMax = v
		}
		if next[i] != c.split[i] {
			changed = true
		}
	}
	applied := changed && newMax <= oldMax*(1-c.cfg.hysteresis())

	reason := ReasonBalanced
	switch {
	case applied:
		reason = ReasonRebalanced
	case changed:
		reason = ReasonHysteresis
	}
	d := Decision{
		CPI:        c.seen,
		Service:    service,
		Old:        append([]int(nil), c.split...),
		Bottleneck: bottleneck,
		Applied:    applied,
		Reason:     reason,
		Efficiency: append([]float64(nil), c.eff...),
	}
	if applied {
		copy(c.split, next)
	}
	d.New = append([]int(nil), c.split...)
	c.record(d)
	return applied
}

// effFor is stage i's efficiency for height computations: serial stages
// overlap operations with genuine concurrency, so they scale perfectly.
func (c *Controller) effFor(i int) float64 {
	if c.stages[i].Serial {
		return 1
	}
	return c.eff[i]
}

// Balance distributes budget workers over stages with estimated serial
// work per CPI, minimising the bottleneck service time max_i work_i/w_i —
// the paper's balance condition (equalise busy/workers across stages) as
// discrete water-filling under perfect scaling. See BalanceEfficiency for
// the generalised height function.
func Balance(work []float64, budget int, caps []int) []int {
	return BalanceEfficiency(work, budget, caps, nil)
}

// BalanceEfficiency is Balance with per-stage scaling efficiencies: stage
// i's service at w workers is modelled as work_i/rate(e_i, w) with
// rate(e, w) = 1 + e(w-1), so a stage with e < 1 is credited less speedup
// per extra worker and the greedy hands its surplus to stages that can
// use it. eff may be nil (or hold entries <= 0) for perfect scaling.
// Every stage gets at least one worker; caps, when non-nil and positive,
// bound per-stage counts. The greedy stays optimal: each height is
// strictly decreasing in its own worker count (e > 0) and independent of
// the other stages. Stages with zero work keep exactly one worker.
// Unusable budget (everything capped) is left unassigned, as is a budget
// below the stage count (every stage keeps its mandatory single worker).
func BalanceEfficiency(work []float64, budget int, caps []int, eff []float64) []int {
	n := len(work)
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	effOf := func(i int) float64 {
		if eff == nil {
			return 1
		}
		return eff[i]
	}
	height := func(i int) float64 { return work[i] / rate(effOf(i), w[i]) }
	for used := n; used < budget; used++ {
		best := -1
		for i := range w {
			if work[i] <= 0 {
				continue
			}
			if caps != nil && caps[i] > 0 && w[i] >= caps[i] {
				continue
			}
			if best == -1 || height(i) > height(best) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		w[best]++
	}
	return w
}

// EvenSplit distributes budget over n stages as evenly as possible — the
// cold-start split the tuner begins from. The first budget%n stages get
// the extra worker. It panics if budget < n (every stage needs a worker).
func EvenSplit(budget, n int) []int {
	if n <= 0 || budget < n {
		panic(fmt.Sprintf("tune: EvenSplit budget %d cannot cover %d stages", budget, n))
	}
	w := make([]int, n)
	base, extra := budget/n, budget%n
	for i := range w {
		w[i] = base
		if i < extra {
			w[i]++
		}
	}
	return w
}
