package tune

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceMax finds the optimal bottleneck height by exhaustive search
// over all splits of budget (small instances only).
func bruteForceMax(work []float64, budget int, caps []int) float64 {
	n := len(work)
	best := math.Inf(1)
	var rec func(i, left int, cur []int)
	rec = func(i, left int, cur []int) {
		if i == n {
			if left != 0 {
				return
			}
			h := 0.0
			for j, w := range cur {
				if v := work[j] / float64(w); v > h {
					h = v
				}
			}
			if h < best {
				best = h
			}
			return
		}
		max := left - (n - i - 1)
		for w := 1; w <= max; w++ {
			if caps != nil && caps[i] > 0 && w > caps[i] {
				break
			}
			cur[i] = w
			rec(i+1, left-w, cur)
		}
	}
	rec(0, budget, make([]int, n))
	return best
}

func heightOf(work []float64, split []int) float64 {
	h := 0.0
	for i, w := range split {
		if v := work[i] / float64(w); v > h {
			h = v
		}
	}
	return h
}

func TestBalanceMatchesBruteForce(t *testing.T) {
	cases := []struct {
		work   []float64
		budget int
		caps   []int
	}{
		{[]float64{4, 2, 20, 2, 2, 4, 4}, 14, nil},
		{[]float64{1, 1, 1, 1}, 8, nil},
		{[]float64{10, 1, 1}, 6, nil},
		{[]float64{5, 5, 5}, 10, []int{2, 0, 0}},
		{[]float64{7, 3, 9, 1}, 9, []int{0, 1, 4, 0}},
	}
	for _, c := range cases {
		got := Balance(c.work, c.budget, c.caps)
		sum := 0
		for i, w := range got {
			sum += w
			if w < 1 {
				t.Fatalf("Balance(%v,%d): stage %d got %d workers", c.work, c.budget, i, w)
			}
			if c.caps != nil && c.caps[i] > 0 && w > c.caps[i] {
				t.Errorf("Balance(%v,%d): stage %d exceeds cap %d with %d", c.work, c.budget, i, c.caps[i], w)
			}
		}
		if sum > c.budget {
			t.Errorf("Balance(%v,%d) used %d workers", c.work, c.budget, sum)
		}
		want := bruteForceMax(c.work, c.budget, c.caps)
		if got := heightOf(c.work, got); got > want*(1+1e-9) {
			t.Errorf("Balance(%v,%d): bottleneck %g, optimum %g", c.work, c.budget, got, want)
		}
	}
}

func TestBalanceZeroWorkKeepsOneWorker(t *testing.T) {
	got := Balance([]float64{0, 10, 0}, 9, nil)
	if got[0] != 1 || got[2] != 1 {
		t.Errorf("zero-work stages should keep exactly 1 worker, got %v", got)
	}
	if got[1] != 7 {
		t.Errorf("all spare budget should flow to the loaded stage, got %v", got)
	}
}

func TestBalanceAllCappedLeavesBudgetUnused(t *testing.T) {
	got := Balance([]float64{5, 5}, 10, []int{2, 2})
	if got[0] != 2 || got[1] != 2 {
		t.Errorf("caps must bound the split, got %v", got)
	}
}

func TestEvenSplit(t *testing.T) {
	got := EvenSplit(14, 7)
	for i, w := range got {
		if w != 2 {
			t.Fatalf("EvenSplit(14,7)[%d] = %d, want 2", i, w)
		}
	}
	got = EvenSplit(10, 7)
	sum := 0
	for _, w := range got {
		sum += w
		if w < 1 || w > 2 {
			t.Fatalf("EvenSplit(10,7) uneven: %v", got)
		}
	}
	if sum != 10 {
		t.Fatalf("EvenSplit(10,7) sums to %d: %v", sum, got)
	}
	defer func() {
		if recover() == nil {
			t.Error("EvenSplit(3, 7) should panic")
		}
	}()
	EvenSplit(3, 7)
}

func TestNewControllerValidation(t *testing.T) {
	stages := []Stage{{Name: "a"}, {Name: "b"}}
	if _, err := NewController(Config{}, nil, nil); err == nil {
		t.Error("no stages should fail")
	}
	if _, err := NewController(Config{}, stages, []int{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewController(Config{}, stages, []int{0, 2}); err == nil {
		t.Error("zero initial workers should fail")
	}
	if _, err := NewController(Config{Budget: 5}, stages, []int{2, 2}); err == nil {
		t.Error("budget != sum(initial) should fail")
	}
	c, err := NewController(Config{}, stages, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget() != 4 {
		t.Errorf("implied budget = %d, want 4", c.Budget())
	}
}

// simulate drives a controller against a synthetic pipeline whose stages
// scale perfectly: each CPI adds work[i]/split[i] busy time to stage i.
func simulate(t *testing.T, c *Controller, work []float64, cpis int) {
	t.Helper()
	n := len(work)
	busy := make([]int64, n)
	count := make([]int64, n)
	for k := 0; k < cpis; k++ {
		split := c.Split()
		for i := 0; i < n; i++ {
			busy[i] += int64(work[i] / float64(split[i]))
			count[i]++
		}
		c.Observe(busy, count)
	}
}

func TestControllerConvergesToBalance(t *testing.T) {
	stages := []Stage{{Name: "dop"}, {Name: "we"}, {Name: "wh"}, {Name: "bfe"}, {Name: "bfh"}, {Name: "pc"}, {Name: "cfar"}}
	initial := EvenSplit(14, 7)
	c, err := NewController(Config{Interval: 4}, stages, initial)
	if err != nil {
		t.Fatal(err)
	}
	// Hard weights dominate 5x; the balanced split must hand them the
	// spare budget.
	work := []float64{4e6, 2e6, 20e6, 2e6, 2e6, 4e6, 4e6}
	simulate(t, c, work, 40)
	got := c.Split()
	want := Balance(work, 14, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("converged split %v, water-filling optimum %v", got, want)
		}
	}
	trace := c.Trace()
	if len(trace) == 0 {
		t.Fatal("no decisions recorded")
	}
	applied := 0
	for _, d := range trace {
		if d.Reason == ReasonWarmup {
			continue // the baseline snapshot measures nothing
		}
		if d.Bottleneck != 2 && !d.Applied && applied == 0 {
			t.Errorf("first decisions should see the hard-weight bottleneck, got stage %d", d.Bottleneck)
		}
		if d.Applied {
			applied++
		}
		sum := 0
		for _, w := range d.New {
			sum += w
		}
		if sum != 14 {
			t.Errorf("decision at CPI %d breaks the budget: %v", d.CPI, d.New)
		}
	}
	if applied == 0 {
		t.Error("no decision was applied")
	}
}

func TestControllerHysteresisHoldsBalancedSplit(t *testing.T) {
	stages := []Stage{{Name: "a"}, {Name: "b"}}
	c, err := NewController(Config{Interval: 2, Hysteresis: 0.1}, stages, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly balanced load: every re-solve reproduces {2,2}; nothing
	// may be applied and the trace must say so.
	simulate(t, c, []float64{10e6, 10e6}, 20)
	for _, d := range c.Trace() {
		if d.Applied {
			t.Fatalf("balanced load caused a rebalance at CPI %d: %v -> %v", d.CPI, d.Old, d.New)
		}
	}
	got := c.Split()
	if got[0] != 2 || got[1] != 2 {
		t.Errorf("split drifted to %v", got)
	}
}

func TestControllerHysteresisBlocksMarginalGain(t *testing.T) {
	stages := []Stage{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	// With a huge hysteresis nothing can ever clear the bar.
	c, err := NewController(Config{Interval: 2, Hysteresis: 10}, stages, []int{1, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	simulate(t, c, []float64{30e6, 1e6, 1e6}, 20)
	got := c.Split()
	if got[0] != 1 || got[2] != 4 {
		t.Errorf("hysteresis 10 must freeze the split, got %v", got)
	}
	trace := c.Trace()
	if len(trace) == 0 {
		t.Fatal("decisions should still be evaluated and traced")
	}
	for _, d := range trace {
		if d.Applied {
			t.Errorf("decision at CPI %d applied despite hysteresis", d.CPI)
		}
	}
}

func TestControllerRespectsCaps(t *testing.T) {
	stages := []Stage{{Name: "a", Max: 2}, {Name: "b"}}
	c, err := NewController(Config{Interval: 2, Hysteresis: -1}, stages, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	simulate(t, c, []float64{50e6, 1e6}, 20)
	if got := c.Split(); got[0] > 2 {
		t.Errorf("stage a capped at 2 but got %d", got[0])
	}
}

func TestControllerWarmupAndInterval(t *testing.T) {
	stages := []Stage{{Name: "a"}, {Name: "b"}}
	c, err := NewController(Config{Interval: 5, Warmup: 3, Hysteresis: -1}, stages, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	busy := make([]int64, 2)
	count := make([]int64, 2)
	decisions := 0
	for k := 0; k < 13; k++ {
		split := c.Split()
		busy[0] += int64(40e6 / float64(split[0]))
		busy[1] += int64(1e6 / float64(split[1]))
		count[0]++
		count[1]++
		if _, applied := c.Observe(busy, count); applied {
			decisions++
		}
	}
	// Baseline (warmup entry) at CPI 3, first decision at CPI 8, second
	// at 13.
	tr := c.Trace()
	if len(tr) != 3 {
		t.Fatalf("expected 3 trace entries (warmup + CPI 8 and 13), got %d: %+v", len(tr), tr)
	}
	if decisions == 0 {
		t.Error("skewed load with negative hysteresis must rebalance")
	}
	if tr[0].CPI != 3 || tr[0].Reason != ReasonWarmup || tr[0].Applied {
		t.Errorf("first entry should be the warmup baseline at CPI 3, got %+v", tr[0])
	}
	if tr[1].CPI != 8 || tr[2].CPI != 13 {
		t.Errorf("decision CPIs %d,%d; want 8,13", tr[1].CPI, tr[2].CPI)
	}
}

func TestControllerSkipsWindowWithoutCPIs(t *testing.T) {
	stages := []Stage{{Name: "a"}, {Name: "b"}}
	c, err := NewController(Config{Interval: 2, Warmup: 1, Hysteresis: -1}, stages, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	busy := []int64{1e6, 1e6}
	count := []int64{1, 1}
	c.Observe(busy, count) // warmup baseline
	c.Observe(busy, count)
	// Stage b's counter never advances: the window must not rebalance on a
	// divide-by-zero — but it must still leave a traced, reasoned no-op.
	busy[0] += 2e6
	count[0] += 2
	if _, applied := c.Observe(busy, count); applied {
		t.Error("decision applied with a starved stage")
	}
	tr := c.Trace()
	if len(tr) != 2 {
		t.Fatalf("expected warmup + starved trace entries, got %+v", tr)
	}
	if tr[0].Reason != ReasonWarmup {
		t.Errorf("first entry reason %q, want %q", tr[0].Reason, ReasonWarmup)
	}
	if tr[1].Reason != ReasonStarved || tr[1].Applied || tr[1].Bottleneck != -1 {
		t.Errorf("starved window entry %+v, want reason %q, not applied", tr[1], ReasonStarved)
	}
}

// ---- joint-solve edge cases (I/O-aware, efficiency-aware Balance) ----

// bruteForceMaxEff is bruteForceMax under the rate model: stage service at
// w workers is work/rate(eff, w).
func bruteForceMaxEff(work []float64, budget int, caps []int, eff []float64) float64 {
	n := len(work)
	best := math.Inf(1)
	var rec func(i, left int, cur []int)
	rec = func(i, left int, cur []int) {
		if i == n {
			if left != 0 {
				return
			}
			h := 0.0
			for j, w := range cur {
				if v := work[j] / rate(eff[j], w); v > h {
					h = v
				}
			}
			if h < best {
				best = h
			}
			return
		}
		max := left - (n - i - 1)
		for w := 1; w <= max; w++ {
			if caps != nil && caps[i] > 0 && w > caps[i] {
				break
			}
			cur[i] = w
			rec(i+1, left-w, cur)
		}
	}
	rec(0, budget, make([]int, n))
	return best
}

func TestBalanceBudgetOfOne(t *testing.T) {
	// A budget of 1 over one stage is the degenerate minimum: the single
	// mandatory worker, nothing to distribute.
	if got := Balance([]float64{5e6}, 1, nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("Balance single stage, budget 1 = %v, want [1]", got)
	}
	// A budget below the stage count cannot strip the mandatory workers:
	// every stage keeps exactly one (the controller refuses such budgets
	// up front; Balance itself must still be safe).
	got := Balance([]float64{5e6, 1e6, 3e6}, 1, nil)
	for i, w := range got {
		if w != 1 {
			t.Errorf("stage %d got %d workers from an infeasible budget", i, w)
		}
	}
}

func TestBalanceEfficiencyMatchesBruteForce(t *testing.T) {
	cases := []struct {
		work   []float64
		budget int
		caps   []int
		eff    []float64
	}{
		// Efficiency < 1 on every stage.
		{[]float64{4, 2, 20, 2}, 10, nil, []float64{0.5, 0.8, 0.6, 0.9}},
		{[]float64{10, 10}, 8, nil, []float64{0.3, 0.3}},
		// Mixed: a perfectly-scaling I/O stage against lossy compute.
		{[]float64{12, 5, 5}, 9, nil, []float64{1, 0.4, 0.4}},
		// Caps still bind under the rate model.
		{[]float64{9, 9, 1}, 9, []int{2, 0, 0}, []float64{0.7, 0.7, 0.7}},
	}
	for _, c := range cases {
		got := BalanceEfficiency(c.work, c.budget, c.caps, c.eff)
		sum := 0
		for i, w := range got {
			sum += w
			if w < 1 {
				t.Fatalf("BalanceEfficiency(%v,%d): stage %d got %d workers", c.work, c.budget, i, w)
			}
			if c.caps != nil && c.caps[i] > 0 && w > c.caps[i] {
				t.Errorf("BalanceEfficiency(%v,%d): stage %d exceeds cap %d", c.work, c.budget, i, c.caps[i])
			}
		}
		if sum > c.budget {
			t.Errorf("BalanceEfficiency(%v,%d) used %d workers", c.work, c.budget, sum)
		}
		h := 0.0
		for i, w := range got {
			if v := c.work[i] / rate(c.eff[i], w); v > h {
				h = v
			}
		}
		want := bruteForceMaxEff(c.work, c.budget, c.caps, c.eff)
		if h > want*(1+1e-9) {
			t.Errorf("BalanceEfficiency(%v,%d,eff=%v): bottleneck %g, optimum %g (split %v)",
				c.work, c.budget, c.eff, h, want, got)
		}
	}
}

func TestBalanceEfficiencyZeroWorkKeepsOneWorker(t *testing.T) {
	got := BalanceEfficiency([]float64{0, 10, 0}, 9, nil, []float64{0.5, 0.5, 0.5})
	if got[0] != 1 || got[2] != 1 {
		t.Errorf("zero-work stages should keep exactly 1 worker, got %v", got)
	}
	if got[1] != 7 {
		t.Errorf("all spare budget should flow to the loaded stage, got %v", got)
	}
}

// TestControllerIOStageDominant drives a controller whose first stage is a
// serial I/O frontend: its busy counter records a constant per-fetch
// latency regardless of the assigned depth (fetches overlap), while the
// compute stage scales perfectly. The tuner must discover that prefetch
// depth is where the budget belongs.
func TestControllerIOStageDominant(t *testing.T) {
	stages := []Stage{{Name: "src read", Max: 32, Serial: true}, {Name: "compute"}}
	c, err := NewController(Config{Interval: 2, Warmup: 2, Hysteresis: -1}, stages, []int{1, 7})
	if err != nil {
		t.Fatal(err)
	}
	const (
		readLatency = 3e6 // serial per-fetch latency, depth-independent
		computeWork = 1e6
	)
	busy := make([]int64, 2)
	count := make([]int64, 2)
	for k := 0; k < 30; k++ {
		split := c.Split()
		busy[0] += readLatency // each fetch records its full serial latency
		busy[1] += int64(computeWork / float64(split[1]))
		count[0]++
		count[1]++
		c.Observe(busy, count)
	}
	got := c.Split()
	want := Balance([]float64{readLatency, computeWork}, 8, []int{32, 0})
	if got[0] != want[0] || got[1] != want[1] {
		t.Errorf("converged split %v, want the joint optimum %v", got, want)
	}
	if got[0] <= got[1] {
		t.Errorf("I/O-dominant load must trade compute workers for prefetch depth, got %v", got)
	}
	if eff := c.Efficiency(); eff[0] != 1 {
		t.Errorf("serial stage efficiency pinned at 1, got %v", eff)
	}
}

// TestControllerDrainedSerialStage: a serial stage whose counter stops
// advancing (source drained) is measured as zero work rather than starving
// the window — the compute stages can still be rebalanced.
func TestControllerDrainedSerialStage(t *testing.T) {
	stages := []Stage{{Name: "src read", Serial: true}, {Name: "a"}, {Name: "b"}}
	c, err := NewController(Config{Interval: 2, Warmup: 2, Hysteresis: -1}, stages, []int{4, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	busy := make([]int64, 3)
	count := make([]int64, 3)
	for k := 0; k < 12; k++ {
		split := c.Split()
		// The read counter never advances: drained.
		busy[1] += int64(30e6 / float64(split[1]))
		busy[2] += int64(1e6 / float64(split[2]))
		count[1]++
		count[2]++
		c.Observe(busy, count)
	}
	got := c.Split()
	if got[0] != 1 {
		t.Errorf("drained serial stage should fall to its mandatory worker, got %v", got)
	}
	if got[1] <= got[2] {
		t.Errorf("loaded compute stage should own the reclaimed budget, got %v", got)
	}
	for _, d := range c.Trace() {
		if d.Reason == ReasonStarved {
			t.Errorf("drained serial stage must not starve the window: %+v", d)
		}
	}
}

// simulateEff drives the controller against stages with true per-worker
// efficiencies: stage i's per-CPI busy time is work[i]/rate(eff[i], w).
func simulateEff(t *testing.T, c *Controller, work, eff []float64, cpis int) {
	t.Helper()
	n := len(work)
	busy := make([]int64, n)
	count := make([]int64, n)
	for k := 0; k < cpis; k++ {
		split := c.Split()
		for i := 0; i < n; i++ {
			busy[i] += int64(work[i] / rate(eff[i], split[i]))
			count[i]++
		}
		c.Observe(busy, count)
	}
}

// TestControllerLearnsEfficiency: a stage that scales at 50% per-worker
// efficiency must be found out once the tuner has observed it at two
// worker counts, and the learned value must pull the split toward the
// true joint optimum instead of the perfect-scaling one.
func TestControllerLearnsEfficiency(t *testing.T) {
	stages := []Stage{{Name: "memory-bound"}, {Name: "scalable"}}
	c, err := NewController(Config{Interval: 2, Warmup: 2, Hysteresis: -1}, stages, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	work := []float64{20e6, 5e6}
	trueEff := []float64{0.5, 1}
	simulateEff(t, c, work, trueEff, 40)
	eff := c.Efficiency()
	if eff[0] > 0.8 {
		t.Errorf("memory-bound stage's learned efficiency %v never dropped (true 0.5)", eff)
	}
	if eff[1] < 0.9 {
		t.Errorf("scalable stage's learned efficiency %v should stay near 1", eff)
	}
	for _, d := range c.Trace() {
		if len(d.Efficiency) == 0 && d.Reason != ReasonWarmup {
			t.Errorf("measured decision at CPI %d carries no efficiency snapshot", d.CPI)
		}
	}
}

// TestControllerJitterWithinHysteresisNoChurn: once converged, random
// measurement jitter smaller than the hysteresis margin must never flip
// the split back and forth. Seeded, so the test is deterministic.
func TestControllerJitterWithinHysteresisNoChurn(t *testing.T) {
	stages := []Stage{{Name: "dop"}, {Name: "we"}, {Name: "wh"}, {Name: "bfe"}, {Name: "bfh"}, {Name: "pc"}, {Name: "cfar"}}
	c, err := NewController(Config{Interval: 4, Hysteresis: 0.1}, stages, EvenSplit(14, 7))
	if err != nil {
		t.Fatal(err)
	}
	work := []float64{4e6, 2e6, 20e6, 2e6, 2e6, 4e6, 4e6}
	n := len(work)
	busy := make([]int64, n)
	count := make([]int64, n)
	rng := rand.New(rand.NewSource(7))
	observe := func(cpis int, jitter float64) {
		for k := 0; k < cpis; k++ {
			split := c.Split()
			for i := 0; i < n; i++ {
				scale := 1 + jitter*(2*rng.Float64()-1)
				busy[i] += int64(work[i] / float64(split[i]) * scale)
				count[i]++
			}
			c.Observe(busy, count)
		}
	}
	observe(60, 0) // converge on clean measurements
	converged := c.Split()
	before := len(c.Trace())
	observe(60, 0.03) // ±3% noise, well inside the 10% hysteresis margin
	for _, d := range c.Trace()[before:] {
		if d.Applied {
			t.Fatalf("jitter within hysteresis bounds caused churn at CPI %d: %v -> %v", d.CPI, d.Old, d.New)
		}
	}
	got := c.Split()
	for i := range got {
		if got[i] != converged[i] {
			t.Fatalf("split drifted under bounded jitter: %v -> %v", converged, got)
		}
	}
}
