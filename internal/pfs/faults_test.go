package pfs

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"stapio/internal/sim"
)

func TestFaultPlanDeterministic(t *testing.T) {
	a := &FaultPlan{Seed: 42, FailRate: 0.3, CorruptRate: 0.1, SlowRate: 0.2}
	b := &FaultPlan{Seed: 42, FailRate: 0.3, CorruptRate: 0.1, SlowRate: 0.2}
	for dir := 0; dir < 4; dir++ {
		for attempt := 0; attempt < 3; attempt++ {
			if a.ReadOutcome("cpi_0.dat", 0, dir, attempt) != b.ReadOutcome("cpi_0.dat", 0, dir, attempt) {
				t.Fatalf("same seed drew different outcomes (dir %d attempt %d)", dir, attempt)
			}
		}
	}
	c := &FaultPlan{Seed: 43, FailRate: 0.3, CorruptRate: 0.1, SlowRate: 0.2}
	same := true
	for dir := 0; dir < 64; dir++ {
		if a.ReadOutcome("cpi_0.dat", 0, dir, 0) != c.ReadOutcome("cpi_0.dat", 0, dir, 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds drew identical outcome streams")
	}
}

func TestFaultPlanRates(t *testing.T) {
	p := &FaultPlan{Seed: 7, FailRate: 0.2}
	const n = 20000
	fails := 0
	for i := 0; i < n; i++ {
		if p.SeqOutcome(0, uint64(i)).Fail {
			fails++
		}
	}
	got := float64(fails) / n
	if math.Abs(got-0.2) > 0.02 {
		t.Errorf("empirical fail rate %.3f, want ~0.20", got)
	}
	// Zero plan injects nothing.
	zero := &FaultPlan{Seed: 7}
	for i := 0; i < 100; i++ {
		if o := zero.SeqOutcome(0, uint64(i)); o.Fail || o.Corrupt || o.Slow {
			t.Fatal("zero-rate plan injected a fault")
		}
	}
}

func TestFaultPlanDownDirs(t *testing.T) {
	p := &FaultPlan{Seed: 1, DownDirs: []int{2}}
	if !p.ReadOutcome("f", 0, 2, 0).Fail {
		t.Error("down dir must always fail")
	}
	if p.ReadOutcome("f", 0, 1, 0).Fail {
		t.Error("healthy dir failed with zero fail rate")
	}
}

func TestFaultPlanValidateAndParse(t *testing.T) {
	if err := (&FaultPlan{FailRate: 1.5}).Validate(); err == nil {
		t.Error("fail rate > 1 must not validate")
	}
	p, err := ParseFaultSpec("fail=0.05,corrupt=0.01,slow=0.02,seed=9,down=1+3")
	if err != nil {
		t.Fatal(err)
	}
	if p.FailRate != 0.05 || p.CorruptRate != 0.01 || p.SlowRate != 0.02 || p.Seed != 9 {
		t.Errorf("parsed plan %+v", p)
	}
	if len(p.DownDirs) != 2 || !p.Down(1) || !p.Down(3) {
		t.Errorf("down dirs %v", p.DownDirs)
	}
	if p, err := ParseFaultSpec(""); err != nil || p != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"fail", "fail=x", "bogus=1", "fail=2", "down=x"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		}
	}
}

// writeStriped fills a small striped file and returns its contents.
func writeStriped(t *testing.T, fs *RealFS, name string, n int) []byte {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile(name, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRealFSInjectedFailureIdentifiesServer(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 4, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	writeStriped(t, fs, "f.dat", 1024)
	fs.SetFaults(&FaultPlan{Seed: 3, DownDirs: []int{2}})
	buf := make([]byte, 1024)
	err = fs.ReadAt("f.dat", 0, buf)
	var se *StripeReadError
	if !errors.As(err, &se) {
		t.Fatalf("want StripeReadError, got %v", err)
	}
	if se.Dir != 2 {
		t.Errorf("failure attributed to dir %d, want 2", se.Dir)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Errorf("injected failure should unwrap to FaultError, got %v", err)
	}
	if fs.Faults().Stats().Failures == 0 {
		t.Error("failure not counted")
	}
}

func TestRealFSDeterministicFirstError(t *testing.T) {
	// Two permanently-down servers: the error must name the lowest dir on
	// every run, not whichever goroutine lost the race.
	fs, err := CreateReal(t.TempDir(), 4, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	writeStriped(t, fs, "f.dat", 1024)
	fs.SetFaults(&FaultPlan{Seed: 3, DownDirs: []int{3, 1}})
	buf := make([]byte, 1024)
	for i := 0; i < 20; i++ {
		err := fs.ReadAt("f.dat", 0, buf)
		var se *StripeReadError
		if !errors.As(err, &se) || se.Dir != 1 {
			t.Fatalf("run %d: got %v, want stripe dir 1", i, err)
		}
	}
}

func TestRealFSCorruptionAndRetryClears(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 4, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	want := writeStriped(t, fs, "f.dat", 1024)
	// Corrupt every read on attempt 0; attempt draws are independent, so
	// retrying with a higher attempt eventually serves clean bytes.
	fs.SetFaults(&FaultPlan{Seed: 11, CorruptRate: 1})
	buf := make([]byte, 1024)
	if err := fs.ReadAt("f.dat", 0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, want) {
		t.Fatal("corruption rate 1 left the payload intact")
	}
	if fs.Faults().Stats().Corruptions == 0 {
		t.Error("corruption not counted")
	}
	fs.SetFaults(&FaultPlan{Seed: 11, CorruptRate: 0.5})
	clean := false
	for attempt := 0; attempt < 20 && !clean; attempt++ {
		if err := fs.ReadAtAttempt("f.dat", 0, buf, attempt); err != nil {
			t.Fatal(err)
		}
		clean = bytes.Equal(buf, want)
	}
	if !clean {
		t.Error("20 retries at corrupt rate 0.5 never served clean bytes")
	}
}

func TestModelFaultsSlowThroughput(t *testing.T) {
	// A faulty stripe-server farm must serve the same reads in more
	// virtual time than a healthy one.
	run := func(plan *FaultPlan) (float64, int64) {
		var eng sim.Engine
		m, err := NewModel(&eng, ParagonPFS(4))
		if err != nil {
			t.Fatal(err)
		}
		if plan != nil {
			m.SetFaults(plan)
		}
		for i := 0; i < 32; i++ {
			m.Read(0, 1<<20, func() {})
		}
		eng.Run()
		return eng.Now(), m.FaultRetries()
	}
	healthy, r0 := run(nil)
	faulty, r1 := run(&FaultPlan{Seed: 5, FailRate: 0.2})
	if r0 != 0 {
		t.Errorf("healthy run charged %d retries", r0)
	}
	if r1 == 0 {
		t.Error("faulty run charged no retries")
	}
	if faulty <= healthy {
		t.Errorf("faulty horizon %.4f not beyond healthy %.4f", faulty, healthy)
	}
	// Same seed, same horizon: the model is deterministic.
	again, r2 := run(&FaultPlan{Seed: 5, FailRate: 0.2})
	if again != faulty || r2 != r1 {
		t.Errorf("re-run drifted: horizon %v vs %v, retries %d vs %d", again, faulty, r2, r1)
	}
}
