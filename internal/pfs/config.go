// Package pfs models the parallel file systems of the paper and provides a
// working striped-file backend.
//
// Two implementations share the same striping layout:
//
//   - Model: a discrete-event simulation of N stripe directories (one disk
//     server each) used by the pipeline performance simulator. It
//     reproduces the paper's PFS configurations — Paragon PFS with stripe
//     factors 16 and 64 (asynchronous reads via iread/iowait) and IBM
//     PIOFS with 80 slices (synchronous reads only).
//
//   - RealFS: actual files striped across local directories, served by one
//     goroutine per stripe directory, with an asynchronous read API
//     mirroring the NX iread()/iowait() pair. The functional pipeline
//     executor reads CPI cubes through it.
package pfs

import (
	"fmt"
)

// Config describes a parallel file system: its striping geometry, its read
// semantics, and (for the model) its per-server service constants.
type Config struct {
	// Name identifies the configuration in reports, e.g. "PFS-16".
	Name string
	// StripeDirs is the stripe factor: the number of stripe directories
	// (I/O servers) a file is spread across.
	StripeDirs int
	// StripeUnit is the striping unit in bytes (64 KB in the paper).
	StripeUnit int64
	// Async reports whether the file system offers asynchronous reads
	// (Paragon NX iread/iowait). PIOFS does not, so reads cannot overlap
	// computation.
	Async bool
	// ServerBandwidth is the sustained per-server transfer rate in
	// bytes/second (model only).
	ServerBandwidth float64
	// ServerLatency is the fixed per-request service overhead in seconds
	// (seek + software path; model only).
	ServerLatency float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StripeDirs < 1 {
		return fmt.Errorf("pfs: %s: stripe factor %d < 1", c.Name, c.StripeDirs)
	}
	if c.StripeUnit < 1 {
		return fmt.Errorf("pfs: %s: stripe unit %d < 1", c.Name, c.StripeUnit)
	}
	if c.ServerBandwidth <= 0 {
		return fmt.Errorf("pfs: %s: server bandwidth %v <= 0", c.Name, c.ServerBandwidth)
	}
	if c.ServerLatency < 0 {
		return fmt.Errorf("pfs: %s: negative server latency", c.Name)
	}
	return nil
}

// UnitsFor returns the number of stripe units a file of the given size
// occupies.
func (c Config) UnitsFor(bytes int64) int {
	return int((bytes + c.StripeUnit - 1) / c.StripeUnit)
}

// ServerFor returns the stripe directory holding unit u (round-robin).
func (c Config) ServerFor(unit int) int { return unit % c.StripeDirs }

// unitSpan returns the first unit, the number of units, touched by the
// byte interval [off, off+length).
func (c Config) unitSpan(off, length int64) (first, count int) {
	if length <= 0 {
		return 0, 0
	}
	first = int(off / c.StripeUnit)
	last := int((off + length - 1) / c.StripeUnit)
	return first, last - first + 1
}

// UnitServiceTime returns the model's service time for one request of n
// bytes at a stripe server.
func (c Config) UnitServiceTime(n int64) float64 {
	return c.ServerLatency + float64(n)/c.ServerBandwidth
}

// EstimateReadTime returns the contention-free time for one parallel read
// of [off, off+length): every touched server works concurrently, each
// serving its units back to back, so the read completes when the
// most-loaded server finishes. This is the closed-form counterpart of the
// model used by the analytic pipeline equations.
func (c Config) EstimateReadTime(off, length int64) float64 {
	first, count := c.unitSpan(off, length)
	if count == 0 {
		return 0
	}
	perServer := make([]float64, c.StripeDirs)
	for u := first; u < first+count; u++ {
		lo := max64(off, int64(u)*c.StripeUnit)
		hi := min64(off+length, int64(u+1)*c.StripeUnit)
		perServer[c.ServerFor(u)] += c.UnitServiceTime(hi - lo)
	}
	var worst float64
	for _, t := range perServer {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// ParagonPFS returns the Paragon PFS configuration with the given stripe
// factor (the paper tested 16 and 64). Asynchronous reads are available
// through the NX library.
func ParagonPFS(stripeFactor int) Config {
	return Config{
		Name:            fmt.Sprintf("PFS-%d", stripeFactor),
		StripeDirs:      stripeFactor,
		StripeUnit:      64 << 10,
		Async:           true,
		ServerBandwidth: 8e6,
		ServerLatency:   3e-3,
	}
}

// PIOFS returns the IBM SP PIOFS configuration: 80 slices, synchronous
// reads only ("asynchronous parallel read/write subroutines are not
// supported on IBM PIOFS").
func PIOFS() Config {
	return Config{
		Name:            "PIOFS-80",
		StripeDirs:      80,
		StripeUnit:      64 << 10,
		Async:           false,
		ServerBandwidth: 6e6,
		ServerLatency:   4e-3,
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
