package pfs

import (
	"fmt"

	"stapio/internal/sim"
)

// Model is the discrete-event simulation of a parallel file system: one
// FIFO server per stripe directory. Concurrent reads from different
// pipeline stages queue at the shared servers, which is exactly how the
// paper's I/O bottleneck arises — the read of the next CPI competes for
// the same stripe directories while earlier reads are still draining.
type Model struct {
	Cfg          Config
	eng          *sim.Engine
	servers      []*sim.Server
	reads        int64
	bytes        int64
	writes       int64
	bytesWritten int64

	// Fault injection: each stripe server's operations draw from the plan
	// in per-server sequence order (the engine is single-threaded, so the
	// order — and therefore the run — is fully deterministic).
	faults   *FaultPlan
	faultOps []uint64 // per-server operation counter
	retries  int64    // extra attempts charged by the plan
}

// NewModel builds the server array on the engine.
func NewModel(eng *sim.Engine, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, eng: eng}
	m.servers = make([]*sim.Server, cfg.StripeDirs)
	for i := range m.servers {
		m.servers[i] = sim.NewServer(eng, fmt.Sprintf("%s/dir%d", cfg.Name, i), 1)
	}
	return m, nil
}

// SetFaults installs a fault plan: unit requests at a degraded server are
// re-served after each injected failure (the retry cost a resilient client
// pays) and stretched by latency spikes. Must be called before the run.
func (m *Model) SetFaults(p *FaultPlan) {
	m.faults = p
	m.faultOps = make([]uint64, m.Cfg.StripeDirs)
}

// FaultRetries returns the number of extra service attempts the fault plan
// charged over the run.
func (m *Model) FaultRetries() int64 { return m.retries }

// serviceTime prices one unit request at server dir, applying the fault
// plan when installed.
func (m *Model) serviceTime(dir int, n int64) float64 {
	base := m.Cfg.UnitServiceTime(n)
	if m.faults == nil {
		return base
	}
	t, attempts := m.faults.ModelServiceTime(dir, m.faultOps[dir], base)
	m.faultOps[dir] += uint64(attempts)
	m.retries += int64(attempts - 1)
	return t
}

// Read simulates a parallel read of [off, off+length): the byte interval is
// decomposed into stripe-unit requests, each queued at its stripe server;
// done fires when the last request completes. The caller models the
// client-side semantics (async overlap vs synchronous blocking).
func (m *Model) Read(off, length int64, done func()) {
	first, count := m.Cfg.unitSpan(off, length)
	m.reads++
	m.bytes += length
	if count == 0 {
		// Empty read completes after one server latency.
		m.eng.Schedule(m.Cfg.ServerLatency, done)
		return
	}
	batch := sim.NewBatch(count, done)
	for u := first; u < first+count; u++ {
		lo := max64(off, int64(u)*m.Cfg.StripeUnit)
		hi := min64(off+length, int64(u+1)*m.Cfg.StripeUnit)
		dir := m.Cfg.ServerFor(u)
		m.servers[dir].Submit(m.serviceTime(dir, hi-lo), batch.Done)
	}
}

// Write simulates a parallel write of [off, off+length): stripe-unit
// requests queue at the same servers as reads, so a radar writing its
// staging files steals service capacity from the pipeline's reads —
// the contention the paper's round-robin staggering is designed to
// minimise. done fires when the last unit is on disk.
func (m *Model) Write(off, length int64, done func()) {
	first, count := m.Cfg.unitSpan(off, length)
	m.writes++
	m.bytesWritten += length
	if count == 0 {
		m.eng.Schedule(m.Cfg.ServerLatency, done)
		return
	}
	batch := sim.NewBatch(count, done)
	for u := first; u < first+count; u++ {
		lo := max64(off, int64(u)*m.Cfg.StripeUnit)
		hi := min64(off+length, int64(u+1)*m.Cfg.StripeUnit)
		dir := m.Cfg.ServerFor(u)
		m.servers[dir].Submit(m.serviceTime(dir, hi-lo), batch.Done)
	}
}

// Reads returns the number of Read calls issued.
func (m *Model) Reads() int64 { return m.reads }

// Writes returns the number of Write calls issued.
func (m *Model) Writes() int64 { return m.writes }

// BytesRead returns the total bytes requested.
func (m *Model) BytesRead() int64 { return m.bytes }

// BytesWritten returns the total bytes written.
func (m *Model) BytesWritten() int64 { return m.bytesWritten }

// BusiestUtilization returns the highest per-server utilization over the
// horizon; a value near 1.0 identifies the file system as the pipeline
// bottleneck.
func (m *Model) BusiestUtilization(horizon float64) float64 {
	var worst float64
	for _, s := range m.servers {
		if u := s.Utilization(horizon); u > worst {
			worst = u
		}
	}
	return worst
}
