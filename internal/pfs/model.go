package pfs

import (
	"fmt"

	"stapio/internal/sim"
)

// Model is the discrete-event simulation of a parallel file system: one
// FIFO server per stripe directory. Concurrent reads from different
// pipeline stages queue at the shared servers, which is exactly how the
// paper's I/O bottleneck arises — the read of the next CPI competes for
// the same stripe directories while earlier reads are still draining.
type Model struct {
	Cfg          Config
	eng          *sim.Engine
	servers      []*sim.Server
	reads        int64
	bytes        int64
	writes       int64
	bytesWritten int64
}

// NewModel builds the server array on the engine.
func NewModel(eng *sim.Engine, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, eng: eng}
	m.servers = make([]*sim.Server, cfg.StripeDirs)
	for i := range m.servers {
		m.servers[i] = sim.NewServer(eng, fmt.Sprintf("%s/dir%d", cfg.Name, i), 1)
	}
	return m, nil
}

// Read simulates a parallel read of [off, off+length): the byte interval is
// decomposed into stripe-unit requests, each queued at its stripe server;
// done fires when the last request completes. The caller models the
// client-side semantics (async overlap vs synchronous blocking).
func (m *Model) Read(off, length int64, done func()) {
	first, count := m.Cfg.unitSpan(off, length)
	m.reads++
	m.bytes += length
	if count == 0 {
		// Empty read completes after one server latency.
		m.eng.Schedule(m.Cfg.ServerLatency, done)
		return
	}
	batch := sim.NewBatch(count, done)
	for u := first; u < first+count; u++ {
		lo := max64(off, int64(u)*m.Cfg.StripeUnit)
		hi := min64(off+length, int64(u+1)*m.Cfg.StripeUnit)
		srv := m.servers[m.Cfg.ServerFor(u)]
		srv.Submit(m.Cfg.UnitServiceTime(hi-lo), batch.Done)
	}
}

// Write simulates a parallel write of [off, off+length): stripe-unit
// requests queue at the same servers as reads, so a radar writing its
// staging files steals service capacity from the pipeline's reads —
// the contention the paper's round-robin staggering is designed to
// minimise. done fires when the last unit is on disk.
func (m *Model) Write(off, length int64, done func()) {
	first, count := m.Cfg.unitSpan(off, length)
	m.writes++
	m.bytesWritten += length
	if count == 0 {
		m.eng.Schedule(m.Cfg.ServerLatency, done)
		return
	}
	batch := sim.NewBatch(count, done)
	for u := first; u < first+count; u++ {
		lo := max64(off, int64(u)*m.Cfg.StripeUnit)
		hi := min64(off+length, int64(u+1)*m.Cfg.StripeUnit)
		srv := m.servers[m.Cfg.ServerFor(u)]
		srv.Submit(m.Cfg.UnitServiceTime(hi-lo), batch.Done)
	}
}

// Reads returns the number of Read calls issued.
func (m *Model) Reads() int64 { return m.reads }

// Writes returns the number of Write calls issued.
func (m *Model) Writes() int64 { return m.writes }

// BytesRead returns the total bytes requested.
func (m *Model) BytesRead() int64 { return m.bytes }

// BytesWritten returns the total bytes written.
func (m *Model) BytesWritten() int64 { return m.bytesWritten }

// BusiestUtilization returns the highest per-server utilization over the
// horizon; a value near 1.0 identifies the file system as the pipeline
// bottleneck.
func (m *Model) BusiestUtilization(horizon float64) float64 {
	var worst float64
	for _, s := range m.servers {
		if u := s.Utilization(horizon); u > worst {
			worst = u
		}
	}
	return worst
}
