package pfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// RealFS stripes files across local directories, mirroring the layout of
// the modelled parallel file system: unit u of a file lives in stripe
// directory u mod StripeDirs, at unit index u div StripeDirs within that
// directory's sub-file. Reads fan out one goroutine per touched stripe
// directory, and an asynchronous API (Start/Wait) mirrors the Paragon NX
// iread()/iowait() pair so the pipeline's first task can overlap I/O with
// computation.
type RealFS struct {
	root   string
	dirs   int
	unit   int64
	async  bool
	faults *FaultPlan
}

// CreateReal initialises (or reuses) a striped store rooted at root with
// the given stripe geometry. Stripe directories are created eagerly.
func CreateReal(root string, stripeDirs int, stripeUnit int64, async bool) (*RealFS, error) {
	if stripeDirs < 1 || stripeUnit < 1 {
		return nil, fmt.Errorf("pfs: invalid stripe geometry dirs=%d unit=%d", stripeDirs, stripeUnit)
	}
	fs := &RealFS{root: root, dirs: stripeDirs, unit: stripeUnit, async: async}
	for i := 0; i < stripeDirs; i++ {
		if err := os.MkdirAll(fs.dirPath(i), 0o755); err != nil {
			return nil, fmt.Errorf("pfs: creating stripe dir: %w", err)
		}
	}
	return fs, nil
}

// StripeDirs returns the stripe factor.
func (fs *RealFS) StripeDirs() int { return fs.dirs }

// StripeUnit returns the stripe unit in bytes.
func (fs *RealFS) StripeUnit() int64 { return fs.unit }

// Async reports whether asynchronous reads are enabled (false emulates
// PIOFS semantics: Start degenerates to a completed synchronous read).
func (fs *RealFS) Async() bool { return fs.async }

// SetFaults installs (or, with nil, removes) a fault-injection plan. Must
// not be called while reads are in flight.
func (fs *RealFS) SetFaults(p *FaultPlan) { fs.faults = p }

// Faults returns the installed fault plan, or nil.
func (fs *RealFS) Faults() *FaultPlan { return fs.faults }

func (fs *RealFS) dirPath(i int) string {
	return filepath.Join(fs.root, fmt.Sprintf("sd%03d", i))
}

func (fs *RealFS) subPath(dir int, name string) string {
	return filepath.Join(fs.dirPath(dir), name)
}

// WriteFile stripes data across the directories, replacing any previous
// contents of the named file. It satisfies radar.FileStore.
func (fs *RealFS) WriteFile(name string, data []byte) error {
	nUnits := int((int64(len(data)) + fs.unit - 1) / fs.unit)
	touched := fs.dirs
	if nUnits < touched {
		touched = nUnits
	}
	// Assemble each directory's sub-file, then write them concurrently —
	// one writer goroutine per stripe directory, as the striped server
	// farm would.
	var wg sync.WaitGroup
	errs := make([]error, fs.dirs)
	for d := 0; d < fs.dirs; d++ {
		var sub []byte
		for u := d; u < nUnits; u += fs.dirs {
			lo := int64(u) * fs.unit
			hi := lo + fs.unit
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			sub = append(sub, data[lo:hi]...)
		}
		if len(sub) == 0 && d >= touched {
			// Remove stale sub-file from a previous, larger version.
			if err := os.Remove(fs.subPath(d, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("pfs: removing stale stripe: %w", err)
			}
			continue
		}
		wg.Add(1)
		go func(d int, sub []byte) {
			defer wg.Done()
			errs[d] = os.WriteFile(fs.subPath(d, name), sub, 0o644)
		}(d, sub)
	}
	wg.Wait()
	for d, err := range errs {
		if err != nil {
			return fmt.Errorf("pfs: writing stripe dir %d of %q: %w", d, name, err)
		}
	}
	return nil
}

// FileSize returns the total logical size of the named striped file.
func (fs *RealFS) FileSize(name string) (int64, error) {
	var total int64
	found := false
	for d := 0; d < fs.dirs; d++ {
		st, err := os.Stat(fs.subPath(d, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return 0, err
		}
		found = true
		total += st.Size()
	}
	if !found {
		return 0, fmt.Errorf("pfs: file %q not found", name)
	}
	return total, nil
}

// segment is one contiguous run of bytes within a single stripe sub-file.
type segment struct {
	dir    int
	subOff int64 // offset within the sub-file
	bufOff int64 // offset within the caller's buffer
	length int64
}

// segments decomposes a logical read [off, off+length) into per-directory
// sub-file runs.
func (fs *RealFS) segments(off, length int64) []segment {
	var segs []segment
	pos := off
	end := off + length
	for pos < end {
		u := pos / fs.unit
		unitEnd := (u + 1) * fs.unit
		hi := end
		if unitEnd < hi {
			hi = unitEnd
		}
		dir := int(u) % fs.dirs
		idxInDir := u / int64(fs.dirs)
		segs = append(segs, segment{
			dir:    dir,
			subOff: idxInDir*fs.unit + (pos - u*fs.unit),
			bufOff: pos - off,
			length: hi - pos,
		})
		pos = hi
	}
	return segs
}

// StripeReadError identifies which stripe server failed a fan-out read: the
// stripe directory index and the sub-file offset of the failing run, so a
// degraded server is attributable rather than lost in an anonymous error.
type StripeReadError struct {
	Dir  int    // stripe directory index
	Name string // file name
	Off  int64  // offset within the stripe sub-file
	Err  error
}

// Error implements error.
func (e *StripeReadError) Error() string {
	return fmt.Sprintf("pfs: stripe dir %d of %q at sub-offset %d: %v", e.Dir, e.Name, e.Off, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *StripeReadError) Unwrap() error { return e.Err }

// ReadAt reads length bytes at logical offset off of the named file into
// buf (len(buf) >= length), fanning out one goroutine per stripe directory
// touched. It blocks until the read completes. When several stripe
// directories fail, the error of the lowest-numbered one is returned, so a
// multi-server failure reports deterministically rather than in map
// iteration order.
func (fs *RealFS) ReadAt(name string, off int64, buf []byte) error {
	return fs.ReadAtAttempt(name, off, buf, 0)
}

// ReadAtAttempt is ReadAt with an explicit retry-attempt number, which the
// fault plan folds into its deterministic per-operation draw: a retried
// read re-draws, so transient injected faults clear under retry exactly as
// transient real faults do.
func (fs *RealFS) ReadAtAttempt(name string, off int64, buf []byte, attempt int) error {
	segs := fs.segments(off, int64(len(buf)))
	// Group segments by directory so each directory is served by exactly
	// one goroutine reading its sub-file sequentially.
	byDir := make(map[int][]segment)
	for _, s := range segs {
		byDir[s.dir] = append(byDir[s.dir], s)
	}
	dirs := make([]int, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Ints(dirs)
	var wg sync.WaitGroup
	errs := make([]error, len(dirs))
	for i, d := range dirs {
		group := byDir[d]
		wg.Add(1)
		go func(i, d int, group []segment) {
			defer wg.Done()
			errs[i] = fs.readDir(name, off, d, group, attempt, buf)
		}(i, d, group)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ProbeAt reads length bytes at logical offset off of the named file into
// buf like ReadAt, but without fault injection or fan-out — the metadata
// probe a client performs once at startup to learn file geometry, which
// the injected fault stream covering data reads should not fail.
func (fs *RealFS) ProbeAt(name string, off int64, buf []byte) error {
	for _, s := range fs.segments(off, int64(len(buf))) {
		f, err := os.Open(fs.subPath(s.dir, name))
		if err != nil {
			return &StripeReadError{Dir: s.dir, Name: name, Off: s.subOff, Err: err}
		}
		_, err = f.ReadAt(buf[s.bufOff:s.bufOff+s.length], s.subOff)
		f.Close()
		if err != nil {
			return &StripeReadError{Dir: s.dir, Name: name, Off: s.subOff, Err: err}
		}
	}
	return nil
}

// readDir serves one stripe directory's share of a fan-out read, applying
// the fault plan: a latency spike sleeps, an injected failure aborts the
// directory's runs, and a corruption flips one bit of the bytes served.
func (fs *RealFS) readDir(name string, off int64, d int, group []segment, attempt int, buf []byte) error {
	var o FaultOutcome
	if fp := fs.faults; fp != nil {
		o = fp.ReadOutcome(name, off, d, attempt)
		if o.Slow {
			fp.countSlow()
			time.Sleep(fp.slowDelay())
		}
		if o.Fail {
			fp.countFailure()
			return &StripeReadError{Dir: d, Name: name, Off: group[0].subOff,
				Err: &FaultError{Dir: d, Name: name, Off: off}}
		}
	}
	f, err := os.Open(fs.subPath(d, name))
	if err != nil {
		return &StripeReadError{Dir: d, Name: name, Off: group[0].subOff, Err: err}
	}
	defer f.Close()
	for _, s := range group {
		if _, err := f.ReadAt(buf[s.bufOff:s.bufOff+s.length], s.subOff); err != nil {
			return &StripeReadError{Dir: d, Name: name, Off: s.subOff, Err: err}
		}
	}
	if o.Corrupt {
		fs.faults.countCorrupt()
		// Flip one bit at a deterministic position within this
		// directory's first run.
		s := group[0]
		buf[s.bufOff+fs.faults.CorruptOffset(name, off, d, s.length)] ^= 0x40
	}
	return nil
}

// Pending is an in-flight asynchronous read, the analogue of the NX
// iread() handle.
type Pending struct {
	done chan struct{}
	err  error
}

// Wait blocks until the read completes and returns its error — the
// analogue of iowait().
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Start begins an asynchronous read and returns immediately. When the file
// system was created without async support (PIOFS semantics), Start
// performs the read synchronously before returning, so Wait never
// overlaps anything — matching the paper's observation that PIOFS reads
// cannot be hidden behind computation.
func (fs *RealFS) Start(name string, off int64, buf []byte) *Pending {
	return fs.StartAttempt(name, off, buf, 0)
}

// StartAttempt is Start with an explicit retry-attempt number (see
// ReadAtAttempt).
func (fs *RealFS) StartAttempt(name string, off int64, buf []byte, attempt int) *Pending {
	p := &Pending{done: make(chan struct{})}
	if !fs.async {
		p.err = fs.ReadAtAttempt(name, off, buf, attempt)
		close(p.done)
		return p
	}
	go func() {
		p.err = fs.ReadAtAttempt(name, off, buf, attempt)
		close(p.done)
	}()
	return p
}

// StartWrite begins an asynchronous whole-file write — how the radar
// refills a staging file while the pipeline computes. The data slice must
// not be modified until Wait returns. On a sync-only store the write
// happens before StartWrite returns.
func (fs *RealFS) StartWrite(name string, data []byte) *Pending {
	p := &Pending{done: make(chan struct{})}
	if !fs.async {
		p.err = fs.WriteFile(name, data)
		close(p.done)
		return p
	}
	go func() {
		p.err = fs.WriteFile(name, data)
		close(p.done)
	}()
	return p
}
