package pfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// RealFS stripes files across local directories, mirroring the layout of
// the modelled parallel file system: unit u of a file lives in stripe
// directory u mod StripeDirs, at unit index u div StripeDirs within that
// directory's sub-file. Reads fan out one goroutine per touched stripe
// directory, and an asynchronous API (Start/Wait) mirrors the Paragon NX
// iread()/iowait() pair so the pipeline's first task can overlap I/O with
// computation.
type RealFS struct {
	root  string
	dirs  int
	unit  int64
	async bool
}

// CreateReal initialises (or reuses) a striped store rooted at root with
// the given stripe geometry. Stripe directories are created eagerly.
func CreateReal(root string, stripeDirs int, stripeUnit int64, async bool) (*RealFS, error) {
	if stripeDirs < 1 || stripeUnit < 1 {
		return nil, fmt.Errorf("pfs: invalid stripe geometry dirs=%d unit=%d", stripeDirs, stripeUnit)
	}
	fs := &RealFS{root: root, dirs: stripeDirs, unit: stripeUnit, async: async}
	for i := 0; i < stripeDirs; i++ {
		if err := os.MkdirAll(fs.dirPath(i), 0o755); err != nil {
			return nil, fmt.Errorf("pfs: creating stripe dir: %w", err)
		}
	}
	return fs, nil
}

// StripeDirs returns the stripe factor.
func (fs *RealFS) StripeDirs() int { return fs.dirs }

// StripeUnit returns the stripe unit in bytes.
func (fs *RealFS) StripeUnit() int64 { return fs.unit }

// Async reports whether asynchronous reads are enabled (false emulates
// PIOFS semantics: Start degenerates to a completed synchronous read).
func (fs *RealFS) Async() bool { return fs.async }

func (fs *RealFS) dirPath(i int) string {
	return filepath.Join(fs.root, fmt.Sprintf("sd%03d", i))
}

func (fs *RealFS) subPath(dir int, name string) string {
	return filepath.Join(fs.dirPath(dir), name)
}

// WriteFile stripes data across the directories, replacing any previous
// contents of the named file. It satisfies radar.FileStore.
func (fs *RealFS) WriteFile(name string, data []byte) error {
	nUnits := int((int64(len(data)) + fs.unit - 1) / fs.unit)
	touched := fs.dirs
	if nUnits < touched {
		touched = nUnits
	}
	// Assemble each directory's sub-file, then write them concurrently —
	// one writer goroutine per stripe directory, as the striped server
	// farm would.
	var wg sync.WaitGroup
	errs := make([]error, fs.dirs)
	for d := 0; d < fs.dirs; d++ {
		var sub []byte
		for u := d; u < nUnits; u += fs.dirs {
			lo := int64(u) * fs.unit
			hi := lo + fs.unit
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			sub = append(sub, data[lo:hi]...)
		}
		if len(sub) == 0 && d >= touched {
			// Remove stale sub-file from a previous, larger version.
			if err := os.Remove(fs.subPath(d, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("pfs: removing stale stripe: %w", err)
			}
			continue
		}
		wg.Add(1)
		go func(d int, sub []byte) {
			defer wg.Done()
			errs[d] = os.WriteFile(fs.subPath(d, name), sub, 0o644)
		}(d, sub)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("pfs: writing stripe: %w", err)
		}
	}
	return nil
}

// FileSize returns the total logical size of the named striped file.
func (fs *RealFS) FileSize(name string) (int64, error) {
	var total int64
	found := false
	for d := 0; d < fs.dirs; d++ {
		st, err := os.Stat(fs.subPath(d, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return 0, err
		}
		found = true
		total += st.Size()
	}
	if !found {
		return 0, fmt.Errorf("pfs: file %q not found", name)
	}
	return total, nil
}

// segment is one contiguous run of bytes within a single stripe sub-file.
type segment struct {
	dir    int
	subOff int64 // offset within the sub-file
	bufOff int64 // offset within the caller's buffer
	length int64
}

// segments decomposes a logical read [off, off+length) into per-directory
// sub-file runs.
func (fs *RealFS) segments(off, length int64) []segment {
	var segs []segment
	pos := off
	end := off + length
	for pos < end {
		u := pos / fs.unit
		unitEnd := (u + 1) * fs.unit
		hi := end
		if unitEnd < hi {
			hi = unitEnd
		}
		dir := int(u) % fs.dirs
		idxInDir := u / int64(fs.dirs)
		segs = append(segs, segment{
			dir:    dir,
			subOff: idxInDir*fs.unit + (pos - u*fs.unit),
			bufOff: pos - off,
			length: hi - pos,
		})
		pos = hi
	}
	return segs
}

// ReadAt reads length bytes at logical offset off of the named file into
// buf (len(buf) >= length), fanning out one goroutine per stripe directory
// touched. It blocks until the read completes.
func (fs *RealFS) ReadAt(name string, off int64, buf []byte) error {
	segs := fs.segments(off, int64(len(buf)))
	// Group segments by directory so each directory is served by exactly
	// one goroutine reading its sub-file sequentially.
	byDir := make(map[int][]segment)
	for _, s := range segs {
		byDir[s.dir] = append(byDir[s.dir], s)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(byDir))
	for d, group := range byDir {
		wg.Add(1)
		go func(d int, group []segment) {
			defer wg.Done()
			f, err := os.Open(fs.subPath(d, name))
			if err != nil {
				errCh <- fmt.Errorf("pfs: open stripe %d of %q: %w", d, name, err)
				return
			}
			defer f.Close()
			for _, s := range group {
				if _, err := f.ReadAt(buf[s.bufOff:s.bufOff+s.length], s.subOff); err != nil {
					errCh <- fmt.Errorf("pfs: read stripe %d of %q: %w", d, name, err)
					return
				}
			}
		}(d, group)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pending is an in-flight asynchronous read, the analogue of the NX
// iread() handle.
type Pending struct {
	done chan struct{}
	err  error
}

// Wait blocks until the read completes and returns its error — the
// analogue of iowait().
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Start begins an asynchronous read and returns immediately. When the file
// system was created without async support (PIOFS semantics), Start
// performs the read synchronously before returning, so Wait never
// overlaps anything — matching the paper's observation that PIOFS reads
// cannot be hidden behind computation.
func (fs *RealFS) Start(name string, off int64, buf []byte) *Pending {
	p := &Pending{done: make(chan struct{})}
	if !fs.async {
		p.err = fs.ReadAt(name, off, buf)
		close(p.done)
		return p
	}
	go func() {
		p.err = fs.ReadAt(name, off, buf)
		close(p.done)
	}()
	return p
}

// StartWrite begins an asynchronous whole-file write — how the radar
// refills a staging file while the pipeline computes. The data slice must
// not be modified until Wait returns. On a sync-only store the write
// happens before StartWrite returns.
func (fs *RealFS) StartWrite(name string, data []byte) *Pending {
	p := &Pending{done: make(chan struct{})}
	if !fs.async {
		p.err = fs.WriteFile(name, data)
		close(p.done)
		return p
	}
	go func() {
		p.err = fs.WriteFile(name, data)
		close(p.done)
	}()
	return p
}
