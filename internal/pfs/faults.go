package pfs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Fault injection for the striped file system.
//
// A FaultPlan makes individual stripe servers misbehave — fail a request,
// serve it slowly, or hand back corrupted bytes — the degraded modes a real
// parallel file system exhibits and the happy-path reproduction never
// exercised. The same plan drives both backends: RealFS injects the faults
// into its per-directory read goroutines (so the resilient client in
// pipexec pays for them in wall-clock time), and the DES Model prices them
// into per-unit service times (so the paper-style throughput/latency
// experiments extend to a fault-rate axis).
//
// Every decision is a pure function of (seed, operation identity), not of
// goroutine scheduling: the real backend keys on (file name, read offset,
// stripe dir, attempt) and the model on (stripe dir, per-dir sequence
// number). A retried operation carries attempt+1 and therefore re-draws,
// which is what makes retry-with-backoff effective against transient
// faults, while two runs with the same seed inject exactly the same faults
// regardless of prefetch interleaving.

// FaultOutcome is the drawn fate of one stripe-server operation.
type FaultOutcome struct {
	// Fail aborts the operation with an injected error.
	Fail bool
	// Corrupt flips one payload bit after a successful read.
	Corrupt bool
	// Slow delays (real) or stretches (model) the service.
	Slow bool
}

// FaultStats counts the faults a plan actually injected.
type FaultStats struct {
	Failures    int64
	Corruptions int64
	Slowdowns   int64
}

// FaultPlan describes seeded, deterministic fault injection for the stripe
// servers. The zero value injects nothing; rates are probabilities in
// [0, 1] applied independently per stripe-server operation.
type FaultPlan struct {
	// Seed selects the deterministic fault stream.
	Seed int64
	// FailRate is the probability one stripe server fails one request.
	FailRate float64
	// CorruptRate is the probability a served payload is bit-flipped.
	CorruptRate float64
	// SlowRate is the probability of a latency spike on a request.
	SlowRate float64
	// SlowDelay is the real-time delay of one spike (RealFS; default 1ms).
	SlowDelay time.Duration
	// SlowFactor is the service-time multiplier of one spike (Model;
	// default 8).
	SlowFactor float64
	// DownDirs lists stripe directories that are permanently failed: every
	// request to them fails regardless of FailRate.
	DownDirs []int
	// MaxModelAttempts caps the retries the DES model charges for before a
	// resilient client gives up on a unit (default 4).
	MaxModelAttempts int

	failures    atomic.Int64
	corruptions atomic.Int64
	slowdowns   atomic.Int64
}

// Validate checks the plan's rates.
func (p *FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"fail", p.FailRate}, {"corrupt", p.CorruptRate}, {"slow", p.SlowRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("pfs: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// Stats returns a snapshot of the injected-fault counters.
func (p *FaultPlan) Stats() FaultStats {
	return FaultStats{
		Failures:    p.failures.Load(),
		Corruptions: p.corruptions.Load(),
		Slowdowns:   p.slowdowns.Load(),
	}
}

// Down reports whether stripe directory d is permanently failed.
func (p *FaultPlan) Down(d int) bool {
	for _, x := range p.DownDirs {
		if x == d {
			return true
		}
	}
	return false
}

func (p *FaultPlan) slowDelay() time.Duration {
	if p.SlowDelay > 0 {
		return p.SlowDelay
	}
	return time.Millisecond
}

func (p *FaultPlan) slowFactor() float64 {
	if p.SlowFactor > 1 {
		return p.SlowFactor
	}
	return 8
}

func (p *FaultPlan) maxModelAttempts() int {
	if p.MaxModelAttempts > 0 {
		return p.MaxModelAttempts
	}
	return 4
}

// mix64 is the splitmix64 finalizer, used to turn an operation key into a
// uniform draw.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw maps a key and stream index to a uniform float in [0, 1).
func (p *FaultPlan) draw(key, stream uint64) float64 {
	h := mix64(uint64(p.Seed) ^ mix64(key^mix64(stream)))
	return float64(h>>11) / float64(1<<53)
}

func (p *FaultPlan) outcome(key uint64) FaultOutcome {
	return FaultOutcome{
		Fail:    p.draw(key, 1) < p.FailRate,
		Corrupt: p.draw(key, 2) < p.CorruptRate,
		Slow:    p.draw(key, 3) < p.SlowRate,
	}
}

// ReadOutcome draws the fate of one stripe-server read: the operation is
// identified by the file name, the logical read offset, the stripe
// directory, and the retry attempt, so the result is independent of
// goroutine interleaving and a retry re-draws.
func (p *FaultPlan) ReadOutcome(name string, off int64, dir, attempt int) FaultOutcome {
	h := fnv.New64a()
	h.Write([]byte(name))
	key := h.Sum64() ^ mix64(uint64(off)) ^ mix64(uint64(dir)<<20^uint64(attempt))
	o := p.outcome(key)
	if p.Down(dir) {
		o.Fail = true
	}
	return o
}

// CorruptOffset returns the deterministic byte position within an n-byte
// region that a corruption of this operation flips.
func (p *FaultPlan) CorruptOffset(name string, off int64, dir int, n int64) int64 {
	if n <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	key := h.Sum64() ^ mix64(uint64(off)^uint64(dir)<<40)
	return int64(mix64(key^0xc0ffee) % uint64(n))
}

// SeqOutcome draws the fate of operation seq at stripe directory dir — the
// model-side identity, where the single-threaded DES gives every server a
// deterministic operation order.
func (p *FaultPlan) SeqOutcome(dir int, seq uint64) FaultOutcome {
	o := p.outcome(mix64(uint64(dir)+1) ^ seq)
	if p.Down(dir) {
		o.Fail = true
	}
	return o
}

// ModelServiceTime prices one unit request of base service time at stripe
// directory dir under the plan, as paid by a resilient client: a latency
// spike multiplies the service time, and each failed attempt is re-served
// (the server burned the time before failing) up to MaxModelAttempts. seq
// is the per-directory operation counter maintained by the model; the
// number of attempts consumed is returned so the model can advance it and
// count retries.
func (p *FaultPlan) ModelServiceTime(dir int, seq uint64, base float64) (t float64, attempts int) {
	max := p.maxModelAttempts()
	for attempts = 1; ; attempts++ {
		o := p.SeqOutcome(dir, seq+uint64(attempts-1))
		step := base
		if o.Slow {
			step *= p.slowFactor()
			p.slowdowns.Add(1)
		}
		t += step
		if !o.Fail {
			return t, attempts
		}
		p.failures.Add(1)
		if attempts >= max {
			return t, attempts
		}
	}
}

func (p *FaultPlan) countFailure() { p.failures.Add(1) }
func (p *FaultPlan) countCorrupt() { p.corruptions.Add(1) }
func (p *FaultPlan) countSlow()    { p.slowdowns.Add(1) }

// String summarises the plan for logs and reports.
func (p *FaultPlan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.FailRate > 0 {
		parts = append(parts, fmt.Sprintf("fail=%g", p.FailRate))
	}
	if p.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.CorruptRate))
	}
	if p.SlowRate > 0 {
		parts = append(parts, fmt.Sprintf("slow=%g", p.SlowRate))
	}
	if len(p.DownDirs) > 0 {
		ds := make([]string, len(p.DownDirs))
		for i, d := range p.DownDirs {
			ds[i] = strconv.Itoa(d)
		}
		sort.Strings(ds)
		parts = append(parts, "down="+strings.Join(ds, "+"))
	}
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses a compact fault-plan spec of the form
// "fail=0.05,corrupt=0.01,slow=0.02,seed=42,down=3+7". Unknown keys are
// errors; an empty spec returns nil (no injection).
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, field := range strings.Split(spec, ",") {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("pfs: fault spec field %q is not key=value", field)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "fail", "corrupt", "slow":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("pfs: fault spec %s: %w", key, err)
			}
			switch key {
			case "fail":
				p.FailRate = f
			case "corrupt":
				p.CorruptRate = f
			case "slow":
				p.SlowRate = f
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("pfs: fault spec seed: %w", err)
			}
			p.Seed = n
		case "down":
			for _, d := range strings.Split(val, "+") {
				n, err := strconv.Atoi(d)
				if err != nil {
					return nil, fmt.Errorf("pfs: fault spec down: %w", err)
				}
				p.DownDirs = append(p.DownDirs, n)
			}
		default:
			return nil, fmt.Errorf("pfs: unknown fault spec key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FaultError is the injected failure of one stripe-server operation,
// carrying the server identity so a resilient client can report which
// server degraded.
type FaultError struct {
	Dir  int    // stripe directory index
	Name string // file name
	Off  int64  // logical read offset
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("pfs: injected fault at stripe dir %d of %q (offset %d)", e.Dir, e.Name, e.Off)
}
