package pfs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stapio/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{ParagonPFS(16), ParagonPFS(64), PIOFS()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := []Config{
		{Name: "a", StripeDirs: 0, StripeUnit: 1, ServerBandwidth: 1},
		{Name: "b", StripeDirs: 1, StripeUnit: 0, ServerBandwidth: 1},
		{Name: "c", StripeDirs: 1, StripeUnit: 1, ServerBandwidth: 0},
		{Name: "d", StripeDirs: 1, StripeUnit: 1, ServerBandwidth: 1, ServerLatency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

func TestPaperConfigurations(t *testing.T) {
	// Reconstructed paper setup: 64 KB stripe unit everywhere; Paragon PFS
	// async, PIOFS sync with 80 slices.
	if u := ParagonPFS(16).StripeUnit; u != 64<<10 {
		t.Errorf("stripe unit = %d, want 64 KiB", u)
	}
	if !ParagonPFS(64).Async {
		t.Error("Paragon PFS must support async reads")
	}
	p := PIOFS()
	if p.Async {
		t.Error("PIOFS must not support async reads")
	}
	if p.StripeDirs != 80 {
		t.Errorf("PIOFS slices = %d, want 80", p.StripeDirs)
	}
	// A 16 MiB CPI file spans 256 units: evenly divisible across 16 and
	// 64 stripe dirs.
	units := ParagonPFS(16).UnitsFor(16 << 20)
	if units != 256 {
		t.Errorf("16 MiB = %d units, want 256", units)
	}
}

func TestUnitSpanAndServer(t *testing.T) {
	c := Config{Name: "t", StripeDirs: 4, StripeUnit: 100, ServerBandwidth: 1}
	first, count := c.unitSpan(250, 300) // bytes 250..549 -> units 2..5
	if first != 2 || count != 4 {
		t.Errorf("unitSpan = (%d,%d), want (2,4)", first, count)
	}
	if _, count := c.unitSpan(0, 0); count != 0 {
		t.Errorf("empty span count = %d", count)
	}
	for u := 0; u < 8; u++ {
		if got := c.ServerFor(u); got != u%4 {
			t.Errorf("ServerFor(%d) = %d", u, got)
		}
	}
}

func TestEstimateReadTimeScalesWithStripeFactor(t *testing.T) {
	fileBytes := int64(16 << 20)
	t16 := ParagonPFS(16).EstimateReadTime(0, fileBytes)
	t64 := ParagonPFS(64).EstimateReadTime(0, fileBytes)
	if t64 >= t16 {
		t.Errorf("stripe factor 64 read %.3fs not faster than 16 %.3fs", t64, t16)
	}
	// 256 units over 16 dirs = 16 units/server; over 64 dirs = 4:
	// exactly 4x fewer, so the estimate must be exactly 4x smaller.
	if math.Abs(t16/t64-4) > 1e-9 {
		t.Errorf("expected exact 4x ratio, got %v", t16/t64)
	}
	if ParagonPFS(16).EstimateReadTime(0, 0) != 0 {
		t.Error("empty read estimate should be 0")
	}
}

func TestModelReadMatchesEstimate(t *testing.T) {
	// A single uncontended read in the DES must complete in exactly the
	// analytic estimate.
	for _, cfg := range []Config{ParagonPFS(16), ParagonPFS(64), PIOFS()} {
		var eng sim.Engine
		m, err := NewModel(&eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fileBytes := int64(16<<20) + 32
		var completed float64 = -1
		m.Read(0, fileBytes, func() { completed = eng.Now() })
		eng.Run()
		want := cfg.EstimateReadTime(0, fileBytes)
		if math.Abs(completed-want) > 1e-9 {
			t.Errorf("%s: DES read %.6fs, estimate %.6fs", cfg.Name, completed, want)
		}
		if m.Reads() != 1 || m.BytesRead() != fileBytes {
			t.Errorf("%s: stats reads=%d bytes=%d", cfg.Name, m.Reads(), m.BytesRead())
		}
		if u := m.BusiestUtilization(completed); u <= 0 || u > 1+1e-9 {
			t.Errorf("%s: utilization %v outside (0,1]", cfg.Name, u)
		}
	}
}

func TestModelContention(t *testing.T) {
	// Two concurrent full-file reads must take about twice as long as one
	// (every server serves twice the units).
	cfg := ParagonPFS(16)
	var eng sim.Engine
	m, err := NewModel(&eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fileBytes := int64(16 << 20)
	var t1, t2 float64
	m.Read(0, fileBytes, func() { t1 = eng.Now() })
	m.Read(0, fileBytes, func() { t2 = eng.Now() })
	eng.Run()
	single := cfg.EstimateReadTime(0, fileBytes)
	last := math.Max(t1, t2)
	if last < 1.9*single || last > 2.1*single {
		t.Errorf("two concurrent reads finished at %.3fs, want ~%.3fs", last, 2*single)
	}
	if m.BusiestUtilization(last) < 0.99 {
		t.Errorf("servers should be saturated, got %v", m.BusiestUtilization(last))
	}
}

func TestModelEmptyRead(t *testing.T) {
	var eng sim.Engine
	m, err := NewModel(&eng, ParagonPFS(16))
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	m.Read(0, 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Error("empty read completion did not fire")
	}
}

func TestNewModelRejectsBadConfig(t *testing.T) {
	var eng sim.Engine
	if _, err := NewModel(&eng, Config{Name: "bad"}); err == nil {
		t.Error("expected config error")
	}
}

func TestRealFSRoundTrip(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 4, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 1000) // 7.8 units -> uneven tail
	rng.Read(data)
	if err := fs.WriteFile("a.dat", data); err != nil {
		t.Fatal(err)
	}
	size, err := fs.FileSize("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if size != 1000 {
		t.Errorf("FileSize = %d, want 1000", size)
	}
	// Full read.
	buf := make([]byte, 1000)
	if err := fs.ReadAt("a.dat", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("full read mismatch")
	}
	// Partial, unaligned reads.
	for _, span := range []struct{ off, n int64 }{{0, 1}, {127, 2}, {100, 500}, {990, 10}, {383, 129}} {
		b := make([]byte, span.n)
		if err := fs.ReadAt("a.dat", span.off, b); err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", span.off, span.n, err)
		}
		if !bytes.Equal(b, data[span.off:span.off+span.n]) {
			t.Errorf("ReadAt(%d,%d) mismatch", span.off, span.n)
		}
	}
}

func TestRealFSReadProperty(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 3, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 777)
	rng.Read(data)
	if err := fs.WriteFile("p.dat", data); err != nil {
		t.Fatal(err)
	}
	f := func(offRaw, nRaw uint16) bool {
		off := int64(offRaw) % 777
		n := int64(nRaw) % (777 - off)
		if n == 0 {
			return true
		}
		b := make([]byte, n)
		if err := fs.ReadAt("p.dat", off, b); err != nil {
			return false
		}
		return bytes.Equal(b, data[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRealFSOverwriteShrinks(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 4, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64*8) // 8 units, 2 per dir
	for i := range big {
		big[i] = byte(i)
	}
	if err := fs.WriteFile("f", big); err != nil {
		t.Fatal(err)
	}
	small := []byte{1, 2, 3}
	if err := fs.WriteFile("f", small); err != nil {
		t.Fatal(err)
	}
	size, err := fs.FileSize("f")
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Errorf("after shrink FileSize = %d, want 3", size)
	}
	buf := make([]byte, 3)
	if err := fs.ReadAt("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, small) {
		t.Error("shrunken file content mismatch")
	}
}

func TestRealFSAsyncMatchesSync(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 4, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := fs.WriteFile("x", data); err != nil {
		t.Fatal(err)
	}
	bufA := make([]byte, 2048)
	p := fs.Start("x", 0, bufA)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, data) {
		t.Error("async read mismatch")
	}
	// Sync-only mode still works via Start.
	fsSync, err := CreateReal(t.TempDir(), 2, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	if fsSync.Async() {
		t.Error("Async() should be false")
	}
	if err := fsSync.WriteFile("y", data); err != nil {
		t.Fatal(err)
	}
	bufB := make([]byte, 2048)
	if err := fsSync.Start("y", 0, bufB).Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufB, data) {
		t.Error("sync-mode Start read mismatch")
	}
}

func TestRealFSStartWrite(t *testing.T) {
	fs, err := CreateReal(t.TempDir(), 4, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := fs.StartWrite("w", data).Wait(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := fs.ReadAt("w", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("async write roundtrip mismatch")
	}
	// Sync-only store: StartWrite completes before returning.
	fsSync, err := CreateReal(t.TempDir(), 2, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	p := fsSync.StartWrite("w", data)
	select {
	case <-p.done:
	default:
		t.Error("sync StartWrite should complete before returning")
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRealFSErrors(t *testing.T) {
	if _, err := CreateReal(t.TempDir(), 0, 64, true); err == nil {
		t.Error("expected geometry error")
	}
	fs, err := CreateReal(t.TempDir(), 2, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.FileSize("missing"); err == nil {
		t.Error("expected missing-file error")
	}
	buf := make([]byte, 10)
	if err := fs.ReadAt("missing", 0, buf); err == nil {
		t.Error("expected read error for missing file")
	}
	if err := fs.Start("missing", 0, buf).Wait(); err == nil {
		t.Error("expected async read error for missing file")
	}
	if fs.StripeDirs() != 2 || fs.StripeUnit() != 64 || !fs.Async() {
		t.Error("accessor mismatch")
	}
}
