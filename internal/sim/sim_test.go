package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1.5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2.5 {
		t.Errorf("times = %v, want [1 2.5]", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(5, func() { fired++ })
	e.RunUntil(3)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 || e.Now() != 5 {
		t.Errorf("after Run: fired=%d Now=%v", fired, e.Now())
	}
}

func TestEnginePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var e Engine
	mustPanic("negative delay", func() { e.Schedule(-1, func() {}) })
	mustPanic("NaN delay", func() { e.Schedule(math.NaN(), func() {}) })
	mustPanic("nil fn", func() { e.Schedule(1, nil) })
	e2 := &Engine{}
	e2.Schedule(5, func() {})
	e2.Run()
	mustPanic("past", func() { e2.ScheduleAt(1, func() {}) })
}

func TestEventHeapIsPriorityQueueProperty(t *testing.T) {
	// Property: however events are scheduled, they fire in nondecreasing
	// time order.
	f := func(delaysRaw []uint16) bool {
		var e Engine
		var fired []float64
		for _, d := range delaysRaw {
			dd := float64(d % 1000)
			e.Schedule(dd, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delaysRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestServerSerialQueueing(t *testing.T) {
	var e Engine
	s := NewServer(&e, "disk", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		s.Submit(2, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if math.Abs(finish[i]-want[i]) > 1e-12 {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if s.Served() != 3 {
		t.Errorf("Served = %d", s.Served())
	}
	if math.Abs(s.BusyTime()-6) > 1e-12 {
		t.Errorf("BusyTime = %v, want 6", s.BusyTime())
	}
	// Jobs 2 and 3 waited 2 and 4 seconds -> mean (0+2+4)/3 = 2.
	if math.Abs(s.MeanWait()-2) > 1e-12 {
		t.Errorf("MeanWait = %v, want 2", s.MeanWait())
	}
	if s.MaxQueue() != 2 {
		t.Errorf("MaxQueue = %d, want 2", s.MaxQueue())
	}
	if u := s.Utilization(6); math.Abs(u-1) > 1e-12 {
		t.Errorf("Utilization = %v, want 1", u)
	}
}

func TestServerParallelSlots(t *testing.T) {
	var e Engine
	s := NewServer(&e, "pool", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		s.Submit(3, func() { finish = append(finish, e.Now()) })
	}
	e.Run()
	// Two at t=3, two at t=6.
	want := []float64{3, 3, 6, 6}
	for i := range want {
		if math.Abs(finish[i]-want[i]) > 1e-12 {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestServerConservationProperty(t *testing.T) {
	// Property: with capacity 1, total makespan equals sum of durations
	// when all jobs are submitted at t=0; BusyTime always equals the sum.
	f := func(durs []uint8) bool {
		var e Engine
		s := NewServer(&e, "d", 1)
		var total float64
		var last float64
		for _, d := range durs {
			dd := float64(d)/10 + 0.01
			total += dd
			s.Submit(dd, func() { last = e.Now() })
		}
		e.Run()
		if len(durs) == 0 {
			return true
		}
		return math.Abs(last-total) < 1e-9 && math.Abs(s.BusyTime()-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestServerPanics(t *testing.T) {
	var e Engine
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("capacity", func() { NewServer(&e, "x", 0) })
	s := NewServer(&e, "x", 1)
	mustPanic("negative duration", func() { s.Submit(-1, nil) })
}

func TestBatch(t *testing.T) {
	fired := false
	b := NewBatch(3, func() { fired = true })
	b.Done()
	b.Done()
	if fired {
		t.Error("fired early")
	}
	b.Done()
	if !fired {
		t.Error("did not fire")
	}
	// Zero-size batch fires immediately.
	immediate := false
	NewBatch(0, func() { immediate = true })
	if !immediate {
		t.Error("zero batch did not fire")
	}
	defer func() {
		if recover() == nil {
			t.Error("over-completion should panic")
		}
	}()
	b.Done()
}

func TestServerUtilizationZeroHorizon(t *testing.T) {
	var e Engine
	s := NewServer(&e, "x", 1)
	if s.Utilization(0) != 0 {
		t.Error("zero horizon utilization should be 0")
	}
	if s.MeanWait() != 0 {
		t.Error("MeanWait with no jobs should be 0")
	}
}
