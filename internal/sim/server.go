package sim

import "fmt"

// Server is a FIFO service resource with a fixed number of identical
// service slots (capacity). Jobs are served in submission order; each
// occupies one slot for its service duration, then its completion callback
// fires. A Server with capacity 1 models a disk stripe server or a network
// link; larger capacities model node pools.
type Server struct {
	eng      *Engine
	name     string
	capacity int
	busy     int
	queue    []job

	// statistics
	busyTime   float64 // slot-seconds of service delivered
	waitTime   float64 // total queueing delay
	served     int64
	maxQueue   int
	lastSubmit float64
}

type job struct {
	duration float64
	enqueued float64
	done     func()
}

// NewServer creates a server with the given capacity on the engine.
func NewServer(eng *Engine, name string, capacity int) *Server {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: server %q capacity %d < 1", name, capacity))
	}
	return &Server{eng: eng, name: name, capacity: capacity}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Submit queues a job with the given service duration; done (which may be
// nil) fires at completion time.
func (s *Server) Submit(duration float64, done func()) {
	if duration < 0 {
		panic(fmt.Sprintf("sim: server %q negative duration %v", s.name, duration))
	}
	s.lastSubmit = s.eng.Now()
	j := job{duration: duration, enqueued: s.eng.Now(), done: done}
	if s.busy < s.capacity {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
}

func (s *Server) start(j job) {
	s.busy++
	s.waitTime += s.eng.Now() - j.enqueued
	s.busyTime += j.duration
	s.served++
	s.eng.Schedule(j.duration, func() {
		s.busy--
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}

// Served returns the number of jobs that started service.
func (s *Server) Served() int64 { return s.served }

// BusyTime returns the total slot-seconds of service delivered.
func (s *Server) BusyTime() float64 { return s.busyTime }

// MeanWait returns the average queueing delay of started jobs.
func (s *Server) MeanWait() float64 {
	if s.served == 0 {
		return 0
	}
	return s.waitTime / float64(s.served)
}

// MaxQueue returns the high-water mark of the wait queue length.
func (s *Server) MaxQueue() int { return s.maxQueue }

// Utilization returns BusyTime normalised by capacity over [0, horizon].
func (s *Server) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return s.busyTime / (horizon * float64(s.capacity))
}

// Batch tracks a fan-out of n concurrent operations and fires its callback
// when the last one completes (a completion barrier — e.g. "all stripe-unit
// requests of this read are done").
type Batch struct {
	remaining int
	done      func()
}

// NewBatch creates a barrier over n completions. If n == 0 the callback
// fires immediately (synchronously).
func NewBatch(n int, done func()) *Batch {
	if n < 0 {
		panic(fmt.Sprintf("sim: batch size %d < 0", n))
	}
	b := &Batch{remaining: n, done: done}
	if n == 0 && done != nil {
		done()
	}
	return b
}

// Done records one completion, firing the callback on the last.
func (b *Batch) Done() {
	if b.remaining <= 0 {
		panic("sim: batch over-completed")
	}
	b.remaining--
	if b.remaining == 0 && b.done != nil {
		b.done()
	}
}
