// Package sim is a small deterministic discrete-event simulation engine:
// a virtual clock, an event queue, and FIFO service resources. The pipeline
// performance simulator builds the paper's machines — compute nodes,
// network, parallel file system stripe servers — out of these pieces.
//
// Determinism: events at equal times fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so simulations are
// exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is the simulation core. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	ran    int64
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.ran }

// Schedule queues fn to run delay seconds from now. Negative delays panic:
// the past is immutable.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t >= Now().
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the next event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t float64) {
	for e.events.Len() > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }
