package radar

import (
	"fmt"

	"stapio/internal/cube"
)

// Replay support for the network detection service's load generator: a
// closed-loop producer does not want to synthesise a fresh CPI per
// submission (generation is far slower than the pipeline at full rate), so
// it pre-encodes a small set of distinct cubes once and replays them
// round-robin, restamping the sequence number per submission with
// cube.PatchSeq.

// EncodeCPIs generates CPIs seq = 0..count-1 from the scenario and returns
// each encoded as a chunked version-3 cube file — the frame payload the
// detection service's wire protocol carries. chunkSize <= 0 selects the
// default chunk size.
func EncodeCPIs(s *Scenario, count, chunkSize int) ([][]byte, error) {
	if count < 1 {
		return nil, fmt.Errorf("radar: replay set needs at least one CPI, got %d", count)
	}
	if chunkSize <= 0 {
		chunkSize = cube.DefaultChunkSize
	}
	if chunkSize%8 != 0 {
		return nil, fmt.Errorf("radar: chunk size %d is not a multiple of 8", chunkSize)
	}
	frames := make([][]byte, count)
	size := cube.FileBytesChunked(s.Dims, chunkSize)
	for seq := 0; seq < count; seq++ {
		cb, err := s.Generate(uint64(seq))
		if err != nil {
			return nil, err
		}
		frames[seq] = make([]byte, size)
		cube.EncodeChunked(cb, uint64(seq), chunkSize, frames[seq])
	}
	return frames, nil
}
