package radar

import (
	"math"
	"testing"

	"stapio/internal/linalg"
	"stapio/internal/signal"
)

func TestJammerValidation(t *testing.T) {
	s := SmallTestScenario()
	s.Jammers = []Jammer{{Angle: 2, JNR: 10}}
	if err := s.Validate(); err == nil {
		t.Error("expected jammer angle validation error")
	}
}

func TestJammerPowerAndSpatialCoherence(t *testing.T) {
	s := SmallTestScenario()
	s.Targets = nil
	s.NoisePower = 1
	s.Jammers = []Jammer{{Angle: 0.6, JNR: 20}}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	// Total power ~ noise (1) + jammer (100) per sample per channel...
	// jammer power per channel is |spatial|^2 * sigma^2 = JNR.
	avg := cb.Power() / float64(cb.Samples())
	if avg < 30 || avg > 300 {
		t.Errorf("average power with 20 dB JNR = %g, want ~101", avg)
	}
	// Spatial coherence: the channel covariance at one (pulse, range)
	// sequence should be dominated by the jammer's steering vector —
	// beamforming toward the jammer collects ~C times the per-channel
	// jammer power, while an orthogonal direction collects ~noise.
	c := s.Dims.Channels
	sv := signal.SteeringVector(c, 0.6)
	for i := range sv {
		sv[i] /= complex(float64(c), 0)
	}
	var toward, away float64
	avSV := signal.SteeringVector(c, -0.6)
	for i := range avSV {
		avSV[i] /= complex(float64(c), 0)
	}
	snap := make([]complex128, c)
	n := 0
	for p := 0; p < s.Dims.Pulses; p++ {
		for r := 0; r < s.Dims.Ranges; r += 4 {
			for ch := 0; ch < c; ch++ {
				snap[ch] = complex128(cb.At(ch, p, r))
			}
			y := linalg.Dot(sv, snap)
			toward += real(y)*real(y) + imag(y)*imag(y)
			y = linalg.Dot(avSV, snap)
			away += real(y)*real(y) + imag(y)*imag(y)
			n++
		}
	}
	ratio := 10 * math.Log10(toward/away)
	if ratio < 10 {
		t.Errorf("beam toward jammer only %.1f dB above away-beam, want >= 10", ratio)
	}
}

func TestTargetMotionRangeWalk(t *testing.T) {
	s := SmallTestScenario()
	s.NoisePower = 0
	s.Targets = s.Targets[:1]
	s.Targets[0].Range = 20
	s.Motion = &Motion{GatesPerCPI: 2.5}
	if got := s.TargetGate(0, 0); got != 20 {
		t.Errorf("gate(0) = %d, want 20", got)
	}
	if got := s.TargetGate(0, 2); got != 25 {
		t.Errorf("gate(2) = %d, want 25", got)
	}
	// Energy follows the walk.
	cb, err := s.Generate(2)
	if err != nil {
		t.Fatal(err)
	}
	if cb.At(0, 0, 25) == 0 {
		t.Error("no energy at walked gate")
	}
	if cb.At(0, 0, 20) != 0 {
		t.Error("energy remained at original gate")
	}
	// Walking outside the range window must error, not wrap.
	s.Motion.GatesPerCPI = 40
	if _, err := s.Generate(2); err == nil {
		t.Error("expected range-walk overflow error")
	}
	// Negative walk below zero likewise.
	s.Motion.GatesPerCPI = -15
	if _, err := s.Generate(2); err == nil {
		t.Error("expected negative range-walk error")
	}
}

func TestMotionlessTargetGate(t *testing.T) {
	s := SmallTestScenario()
	if s.TargetGate(1, 99) != s.Targets[1].Range {
		t.Error("without Motion the gate must not move")
	}
}

func TestJammerFillsAllDopplerBins(t *testing.T) {
	// Unlike clutter, jamming is white in Doppler: after an FFT across
	// pulses the jammer power should spread over all bins rather than
	// concentrate.
	s := SmallTestScenario()
	s.Targets = nil
	s.NoisePower = 0.0001
	s.Jammers = []Jammer{{Angle: 0.3, JNR: 30}}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	col := cb.PulseColumn(0, 8, nil)
	x := make([]complex128, len(col))
	for i, v := range col {
		x[i] = complex128(v)
	}
	signal.FFT(x)
	var maxP, sumP float64
	for _, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		sumP += p
		if p > maxP {
			maxP = p
		}
	}
	// A coherent tone would put ~all energy in one bin (max/sum ~ 1); a
	// white process spreads it (max/sum ~ few / N).
	if maxP/sumP > 0.5 {
		t.Errorf("jammer energy concentration %.2f — looks coherent in Doppler", maxP/sumP)
	}
}
