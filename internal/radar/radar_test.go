package radar

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/signal"
)

func TestValidate(t *testing.T) {
	ok := SmallTestScenario()
	if err := ok.Validate(); err != nil {
		t.Fatalf("SmallTestScenario invalid: %v", err)
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.Dims.Channels = 0 },
		func(s *Scenario) { s.PulseLen = 0 },
		func(s *Scenario) { s.PulseLen = s.Dims.Ranges + 1 },
		func(s *Scenario) { s.Bandwidth = 0 },
		func(s *Scenario) { s.Bandwidth = 1.5 },
		func(s *Scenario) { s.NoisePower = -1 },
		func(s *Scenario) { s.Targets[0].Range = -1 },
		func(s *Scenario) { s.Targets[0].Range = s.Dims.Ranges },
		func(s *Scenario) { s.Targets[0].Angle = 2 },
		func(s *Scenario) { s.Targets[0].Doppler = 0.5 },
		func(s *Scenario) { s.Clutter.Patches = -1 },
	}
	for i, mutate := range bad {
		s := SmallTestScenario()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := SmallTestScenario()
	a, err := s.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.Equal(a, b, 0) {
		t.Error("same seed+seq should generate identical cubes")
	}
	c, err := s.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	if cube.Equal(a, c, 0) {
		t.Error("different seq should generate different cubes")
	}
}

func TestGenerateNoisePower(t *testing.T) {
	s := SmallTestScenario()
	s.Targets = nil
	s.NoisePower = 2.5
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	avg := cb.Power() / float64(cb.Samples())
	if math.Abs(avg-2.5) > 0.25 {
		t.Errorf("average noise power %g, want ~2.5", avg)
	}
}

func TestGenerateTargetEnergyLocalised(t *testing.T) {
	s := SmallTestScenario()
	s.NoisePower = 0 // target only
	s.Targets = s.Targets[:1]
	tg := s.Targets[0]
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	// All energy must lie in gates [Range, Range+PulseLen).
	for c := 0; c < cb.Channels; c++ {
		for p := 0; p < cb.Pulses; p++ {
			row := cb.PulseRow(c, p)
			for r, v := range row {
				in := r >= tg.Range && r < tg.Range+s.PulseLen
				if !in && v != 0 {
					t.Fatalf("energy at gate %d outside echo window", r)
				}
				if in && v == 0 {
					t.Fatalf("missing echo energy at (c=%d,p=%d,r=%d)", c, p, r)
				}
			}
		}
	}
	// Per-sample power inside the echo must match SNR dB over NoisePower=1
	// reference: here NoisePower=0 so amplitude uses 0 -> zero. Instead
	// re-check with NoisePower=1.
	s.NoisePower = 1
	s.Targets[0].SNR = 20 // amplitude 10
	cb, err = s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	v := cb.At(0, 0, tg.Range) // channel 0, pulse 0: steering phases = 1, chirp[0] = 1
	// Sample = noise + 10*chirp[0]; magnitude should be near 10.
	if a := cmplx.Abs(complex128(v)); a < 5 || a > 15 {
		t.Errorf("target sample magnitude %g, want ~10", a)
	}
}

func TestGenerateDopplerSignature(t *testing.T) {
	// With a single zero-angle target and no noise, the pulse dimension at
	// the target's first gate is a pure tone at the target Doppler.
	s := SmallTestScenario()
	s.NoisePower = 0
	s.Targets = []Target{{Angle: 0, Doppler: 0.25, Range: 10, SNR: 0}}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	col := cb.PulseColumn(0, 10, nil)
	x := make([]complex128, len(col))
	for i, v := range col {
		x[i] = complex128(v)
	}
	signal.FFT(x)
	// Doppler 0.25 cycles/PRI over 16 pulses = bin 4.
	peak, peakIdx := 0.0, -1
	for i, v := range x {
		if a := cmplx.Abs(v); a > peak {
			peak, peakIdx = a, i
		}
	}
	if peakIdx != 4 {
		t.Errorf("Doppler peak at bin %d, want 4", peakIdx)
	}
}

func TestClutterRidgePower(t *testing.T) {
	s := SmallTestScenario()
	s.Targets = nil
	s.NoisePower = 1
	s.Clutter = Clutter{Patches: 8, CNR: 20, Beta: 1}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	avg := cb.Power() / float64(cb.Samples())
	// Total power ~ noise (1) + clutter (100).
	if avg < 30 || avg > 300 {
		t.Errorf("average power with 20dB CNR clutter = %g, want ~101", avg)
	}
}

func TestPhaseNoisePreservesPower(t *testing.T) {
	s := SmallTestScenario()
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	before := cb.Power()
	PhaseNoise(cb, 0.2, 7)
	after := cb.Power()
	if math.Abs(before-after) > 1e-3*before {
		t.Errorf("phase noise changed power: %g -> %g", before, after)
	}
}

func TestFileForAndName(t *testing.T) {
	if FileName(2) != "cpi_2.dat" {
		t.Errorf("FileName(2) = %q", FileName(2))
	}
	for seq := uint64(0); seq < 12; seq++ {
		if got, want := FileFor(seq, 4), int(seq%4); got != want {
			t.Errorf("FileFor(%d,4) = %d, want %d", seq, got, want)
		}
	}
}

func TestWriteDatasetRoundRobin(t *testing.T) {
	s := SmallTestScenario()
	fs := NewMemStore()
	kept, err := WriteDataset(fs, s, 6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 6 {
		t.Fatalf("kept %d cubes, want 6", len(kept))
	}
	if len(fs.Files) != 4 {
		t.Fatalf("wrote %d files, want 4", len(fs.Files))
	}
	// File 1 must hold the latest CPI with seq%4==1, i.e. seq 5.
	data := fs.Files[FileName(1)]
	cb, h, err := cube.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 5 {
		t.Errorf("file 1 holds seq %d, want 5", h.Seq)
	}
	if !cube.Equal(cb, kept[5], 0) {
		t.Error("file contents differ from generated cube")
	}
	// File 2 and 3 hold seqs 2 and 3.
	for _, fi := range []int{2, 3} {
		_, h, err := cube.Read(bytes.NewReader(fs.Files[FileName(fi)]))
		if err != nil {
			t.Fatal(err)
		}
		if int(h.Seq) != fi {
			t.Errorf("file %d holds seq %d, want %d", fi, h.Seq, fi)
		}
	}
}

func TestWriteDatasetErrors(t *testing.T) {
	s := SmallTestScenario()
	fs := NewMemStore()
	if _, err := WriteDataset(fs, s, 2, 0, false); err == nil {
		t.Error("fileCount=0 should error")
	}
	if _, err := WriteDataset(fs, s, -1, 4, false); err == nil {
		t.Error("count<0 should error")
	}
	s.Bandwidth = 0
	if _, err := WriteDataset(fs, s, 1, 4, false); err == nil {
		t.Error("invalid scenario should error")
	}
}

func TestPaperScenarioGeometry(t *testing.T) {
	s := PaperScenario()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Dims.Bytes(), int64(16<<20); got != want {
		t.Errorf("paper cube payload %d bytes, want 16 MiB", got)
	}
}
