package radar

import (
	"fmt"

	"stapio/internal/cube"
)

// The paper stages radar data through four disk files: "we assume that the
// radar writes its collected data into these four files in a round-robin
// manner and, similarly, the STAP pipeline system reads the four files in a
// round-robin fashion". Dataset reproduces that layout on any file store.

// DefaultFileCount is the paper's number of round-robin staging files.
const DefaultFileCount = 4

// FileStore abstracts where dataset files land: the real striped parallel
// file system backend, a plain directory, or an in-memory store in tests.
type FileStore interface {
	// WriteFile creates (or replaces) the named file with data.
	WriteFile(name string, data []byte) error
}

// FileName returns the canonical name of round-robin staging file i.
func FileName(i int) string { return fmt.Sprintf("cpi_%d.dat", i) }

// FileFor returns the staging file index used for CPI sequence number seq.
func FileFor(seq uint64, fileCount int) int { return int(seq % uint64(fileCount)) }

// WriteDataset generates CPIs seq = 0..count-1 from the scenario and writes
// each into its round-robin staging file on fs (so after the call file i
// holds the most recent CPI with seq ≡ i mod fileCount). It returns the
// generated cubes for ground-truth checks; pass keep=false to discard them
// and bound memory.
func WriteDataset(fs FileStore, s *Scenario, count, fileCount int, keep bool) ([]*cube.Cube, error) {
	if fileCount <= 0 {
		return nil, fmt.Errorf("radar: fileCount %d <= 0", fileCount)
	}
	if count < 0 {
		return nil, fmt.Errorf("radar: count %d < 0", count)
	}
	var kept []*cube.Cube
	buf := make([]byte, cube.FileBytes(s.Dims))
	for seq := 0; seq < count; seq++ {
		cb, err := s.Generate(uint64(seq))
		if err != nil {
			return nil, err
		}
		cube.Encode(cb, uint64(seq), buf)
		name := FileName(FileFor(uint64(seq), fileCount))
		if err := fs.WriteFile(name, buf); err != nil {
			return nil, fmt.Errorf("radar: writing %s: %w", name, err)
		}
		if keep {
			kept = append(kept, cb)
		}
	}
	return kept, nil
}

// MemStore is an in-memory FileStore for tests.
type MemStore struct {
	Files map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{Files: make(map[string][]byte)} }

// WriteFile implements FileStore.
func (m *MemStore) WriteFile(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.Files[name] = cp
	return nil
}
