package radar

import (
	"fmt"

	"stapio/internal/cube"
)

// The paper stages radar data through four disk files: "we assume that the
// radar writes its collected data into these four files in a round-robin
// manner and, similarly, the STAP pipeline system reads the four files in a
// round-robin fashion". Dataset reproduces that layout on any file store.

// DefaultFileCount is the paper's number of round-robin staging files.
const DefaultFileCount = 4

// FileStore abstracts where dataset files land: the real striped parallel
// file system backend, a plain directory, or an in-memory store in tests.
type FileStore interface {
	// WriteFile creates (or replaces) the named file with data.
	WriteFile(name string, data []byte) error
}

// FileName returns the canonical name of round-robin staging file i.
func FileName(i int) string { return fmt.Sprintf("cpi_%d.dat", i) }

// FileFor returns the staging file index used for CPI sequence number seq.
func FileFor(seq uint64, fileCount int) int { return int(seq % uint64(fileCount)) }

// WriteDataset generates CPIs seq = 0..count-1 from the scenario and writes
// each into its round-robin staging file on fs (so after the call file i
// holds the most recent CPI with seq ≡ i mod fileCount). Files are written
// in the chunked version-3 cube format at the default chunk size, so
// readers can shard decode/verify and re-read individual corrupt chunks.
// It returns the generated cubes for ground-truth checks; pass keep=false
// to discard them and bound memory.
func WriteDataset(fs FileStore, s *Scenario, count, fileCount int, keep bool) ([]*cube.Cube, error) {
	return writeDataset(fs, s, count, fileCount, keep, cube.DefaultChunkSize)
}

// WriteDatasetFlat is WriteDataset emitting the flat version-2 format —
// how pre-chunking datasets were staged, kept so the compatibility path
// stays exercised.
func WriteDatasetFlat(fs FileStore, s *Scenario, count, fileCount int, keep bool) ([]*cube.Cube, error) {
	return writeDataset(fs, s, count, fileCount, keep, 0)
}

// WriteDatasetChunked is WriteDataset with an explicit chunk size (a
// positive multiple of 8), for callers tuning checksum granularity — small
// test cubes need small chunks before partial re-read has anything partial
// about it.
func WriteDatasetChunked(fs FileStore, s *Scenario, count, fileCount int, keep bool, chunkSize int) ([]*cube.Cube, error) {
	if chunkSize <= 0 || chunkSize%8 != 0 {
		return nil, fmt.Errorf("radar: chunk size %d is not a positive multiple of 8", chunkSize)
	}
	return writeDataset(fs, s, count, fileCount, keep, chunkSize)
}

func writeDataset(fs FileStore, s *Scenario, count, fileCount int, keep bool, chunkSize int) ([]*cube.Cube, error) {
	if fileCount <= 0 {
		return nil, fmt.Errorf("radar: fileCount %d <= 0", fileCount)
	}
	if count < 0 {
		return nil, fmt.Errorf("radar: count %d < 0", count)
	}
	var kept []*cube.Cube
	size := cube.FileBytes(s.Dims)
	if chunkSize > 0 {
		size = cube.FileBytesChunked(s.Dims, chunkSize)
	}
	buf := make([]byte, size)
	for seq := 0; seq < count; seq++ {
		cb, err := s.Generate(uint64(seq))
		if err != nil {
			return nil, err
		}
		if chunkSize > 0 {
			cube.EncodeChunked(cb, uint64(seq), chunkSize, buf)
		} else {
			cube.Encode(cb, uint64(seq), buf)
		}
		name := FileName(FileFor(uint64(seq), fileCount))
		if err := fs.WriteFile(name, buf); err != nil {
			return nil, fmt.Errorf("radar: writing %s: %w", name, err)
		}
		if keep {
			kept = append(kept, cb)
		}
	}
	return kept, nil
}

// DatasetFileBytes returns the size of one staging file as WriteDataset
// lays it out (chunked format, default chunk size).
func DatasetFileBytes(d cube.Dims) int64 {
	return cube.FileBytesChunked(d, cube.DefaultChunkSize)
}

// MemStore is an in-memory FileStore for tests.
type MemStore struct {
	Files map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{Files: make(map[string][]byte)} }

// WriteFile implements FileStore.
func (m *MemStore) WriteFile(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.Files[name] = cp
	return nil
}
