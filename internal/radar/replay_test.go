package radar

import (
	"bytes"
	"testing"

	"stapio/internal/cube"
)

func TestEncodeCPIsRoundTrip(t *testing.T) {
	s := SmallTestScenario()
	frames, err := EncodeCPIs(s, 3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for seq, frame := range frames {
		cb, h, err := cube.Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("frame %d: %v", seq, err)
		}
		if h.Seq != uint64(seq) {
			t.Errorf("frame %d encodes seq %d", seq, h.Seq)
		}
		if h.Version != cube.FormatVersionChunked || h.ChunkSize != 4096 {
			t.Errorf("frame %d: version %d chunk size %d, want v%d at 4096",
				seq, h.Version, h.ChunkSize, cube.FormatVersionChunked)
		}
		want, err := s.Generate(uint64(seq))
		if err != nil {
			t.Fatal(err)
		}
		if !cube.Equal(cb, want, 0) {
			t.Errorf("frame %d decodes to different samples", seq)
		}
	}
}

func TestEncodeCPIsRejectsBadArgs(t *testing.T) {
	s := SmallTestScenario()
	if _, err := EncodeCPIs(s, 0, 4096); err == nil {
		t.Error("count 0 accepted")
	}
	if _, err := EncodeCPIs(s, 1, 12); err == nil {
		t.Error("unaligned chunk size accepted")
	}
}

// PatchSeq must restamp the header sequence number without invalidating any
// checksum — the replay path submits the same encoded cube under many
// sequence numbers.
func TestPatchSeqKeepsFrameValid(t *testing.T) {
	s := SmallTestScenario()
	frames, err := EncodeCPIs(s, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	frame := frames[0]
	if err := cube.PatchSeq(frame, 99); err != nil {
		t.Fatal(err)
	}
	cb, h, err := cube.Read(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("patched frame no longer decodes: %v", err)
	}
	if h.Seq != 99 {
		t.Errorf("patched seq %d, want 99", h.Seq)
	}
	want, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cube.Equal(cb, want, 0) {
		t.Error("patching the seq disturbed the samples")
	}
	if err := cube.PatchSeq(frame[:10], 1); err == nil {
		t.Error("truncated frame accepted")
	}
	if err := cube.PatchSeq(make([]byte, cube.HeaderSize), 1); err == nil {
		t.Error("bad magic accepted")
	}
}
