// Package radar generates synthetic phased-array radar data for the STAP
// pipeline. The paper processed data cubes produced by an airborne radar
// and staged through four disk files written round-robin; neither the radar
// nor its recordings are available, so this package synthesises CPI cubes
// with injected targets, a ground-clutter ridge, and thermal noise. The
// synthetic cubes have the same geometry, the same on-disk format, and
// exercise exactly the same compute and I/O paths; in addition the known
// ground truth lets tests verify end-to-end detection.
package radar

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"stapio/internal/cube"
	"stapio/internal/signal"
)

// Target is a point scatterer injected into the scene.
type Target struct {
	// Angle is the normalised direction sin(theta) in [-1, 1].
	Angle float64
	// Doppler is the normalised Doppler frequency in cycles/PRI,
	// in [-0.5, 0.5).
	Doppler float64
	// Range is the range gate of the leading edge of the echo.
	Range int
	// SNR is the per-sample signal-to-noise ratio in dB relative to the
	// unit-variance thermal noise floor (before any processing gain).
	SNR float64
}

// Jammer is a broadband noise source at a fixed angle: spatially coherent
// (one steering vector) but temporally white, so it fills every Doppler
// bin and can only be cancelled spatially — the classic test of the
// adaptive weights' spatial nulling.
type Jammer struct {
	// Angle is the normalised direction sin(theta) in [-1, 1].
	Angle float64
	// JNR is the jammer-to-noise power ratio in dB.
	JNR float64
}

// Motion gives targets a constant radial velocity so their echoes walk
// through range gates across CPIs: gate(seq) = Range + round(seq *
// GatesPerCPI). Useful for multi-CPI tracking tests.
type Motion struct {
	// GatesPerCPI is the per-CPI range-gate drift (may be negative).
	GatesPerCPI float64
}

// Clutter describes a ground-clutter ridge: many independent patches whose
// Doppler is proportional to their angle (fd = Beta * u / 2), the classic
// STAP clutter locus for a side-looking airborne radar.
type Clutter struct {
	// Patches is the number of discrete clutter patches spread uniformly
	// in angle across [-1, 1]. Zero disables clutter.
	Patches int
	// CNR is the total clutter-to-noise power ratio in dB.
	CNR float64
	// Beta is the clutter ridge slope (ratio of Doppler extent to angular
	// extent); 1 is the DPCA condition.
	Beta float64
}

// Scenario fully specifies a synthetic data generation run. The zero value
// is not usable; fill in Dims and (optionally) targets/clutter.
type Scenario struct {
	Dims cube.Dims
	// PulseLen is the length in range gates of the transmitted LFM pulse;
	// echoes occupy [Range, Range+PulseLen). It must be >= 1 and <= Ranges.
	PulseLen int
	// Bandwidth is the chirp's fractional bandwidth in (0, 1].
	Bandwidth float64
	// NoisePower is the per-sample thermal noise power; 1.0 is the
	// reference level for Target.SNR and Clutter.CNR.
	NoisePower float64
	Targets    []Target
	Clutter    Clutter
	Jammers    []Jammer
	// Motion, when non-nil, applies range walk to every target across
	// CPIs.
	Motion *Motion
	// Seed makes generation deterministic. Successive CPIs use Seed mixed
	// with the CPI sequence number.
	Seed int64
}

// Validate checks the scenario parameters.
func (s *Scenario) Validate() error {
	if !s.Dims.Valid() {
		return fmt.Errorf("radar: invalid cube dims %v", s.Dims)
	}
	if s.PulseLen < 1 || s.PulseLen > s.Dims.Ranges {
		return fmt.Errorf("radar: pulse length %d outside [1, %d]", s.PulseLen, s.Dims.Ranges)
	}
	if s.Bandwidth <= 0 || s.Bandwidth > 1 {
		return fmt.Errorf("radar: bandwidth %v outside (0, 1]", s.Bandwidth)
	}
	if s.NoisePower < 0 {
		return fmt.Errorf("radar: negative noise power %v", s.NoisePower)
	}
	for i, tg := range s.Targets {
		if tg.Range < 0 || tg.Range+s.PulseLen > s.Dims.Ranges {
			return fmt.Errorf("radar: target %d echo [%d,%d) outside range window [0,%d)",
				i, tg.Range, tg.Range+s.PulseLen, s.Dims.Ranges)
		}
		if tg.Angle < -1 || tg.Angle > 1 {
			return fmt.Errorf("radar: target %d angle %v outside [-1,1]", i, tg.Angle)
		}
		if tg.Doppler < -0.5 || tg.Doppler >= 0.5 {
			return fmt.Errorf("radar: target %d doppler %v outside [-0.5,0.5)", i, tg.Doppler)
		}
	}
	if s.Clutter.Patches < 0 {
		return fmt.Errorf("radar: negative clutter patch count %d", s.Clutter.Patches)
	}
	for i, j := range s.Jammers {
		if j.Angle < -1 || j.Angle > 1 {
			return fmt.Errorf("radar: jammer %d angle %v outside [-1,1]", i, j.Angle)
		}
	}
	return nil
}

// TargetGate returns the range gate of target i's leading edge at CPI seq,
// applying the scenario's motion model.
func (s *Scenario) TargetGate(i int, seq uint64) int {
	g := s.Targets[i].Range
	if s.Motion != nil {
		g += int(math.Round(float64(seq) * s.Motion.GatesPerCPI))
	}
	return g
}

// Pulse returns the transmitted chirp waveform of the scenario.
func (s *Scenario) Pulse() []complex128 {
	return signal.LFMChirp(s.PulseLen, s.Bandwidth)
}

// Generate synthesises the CPI cube with sequence number seq.
func (s *Scenario) Generate(seq uint64) (*cube.Cube, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := s.Dims
	cb := cube.New(d)
	rng := rand.New(rand.NewSource(s.Seed ^ int64(seq*0x9E3779B97F4A7C15)))

	// Thermal noise: circular complex Gaussian, variance NoisePower.
	if s.NoisePower > 0 {
		sigma := math.Sqrt(s.NoisePower / 2)
		for i := range cb.Data {
			cb.Data[i] = complex(float32(rng.NormFloat64()*sigma), float32(rng.NormFloat64()*sigma))
		}
	}

	pulse := s.Pulse()

	// SNR/CNR reference: the noise floor, or unit power when noise is
	// disabled (so noise-free scenarios still contain their targets).
	ref := s.NoisePower
	if ref == 0 {
		ref = 1
	}

	// Targets (with optional range walk across CPIs).
	for i, tg := range s.Targets {
		gate := s.TargetGate(i, seq)
		if gate < 0 || gate+s.PulseLen > d.Ranges {
			return nil, fmt.Errorf("radar: target %d walked to gate %d, echo outside [0,%d) at CPI %d",
				i, gate, d.Ranges, seq)
		}
		amp := math.Sqrt(ref * math.Pow(10, tg.SNR/10))
		spatial := signal.SteeringVector(d.Channels, tg.Angle)
		temporal := signal.DopplerSteeringVector(d.Pulses, tg.Doppler)
		for c := 0; c < d.Channels; c++ {
			for p := 0; p < d.Pulses; p++ {
				phase := spatial[c] * temporal[p] * complex(amp, 0)
				row := cb.PulseRow(c, p)
				for k, pv := range pulse {
					v := phase * pv
					row[gate+k] += complex64(v)
				}
			}
		}
	}

	// Jammers: spatially coherent, temporally and range white.
	for _, jm := range s.Jammers {
		sigma := math.Sqrt(ref * math.Pow(10, jm.JNR/10) / 2)
		spatial := signal.SteeringVector(d.Channels, jm.Angle)
		for p := 0; p < d.Pulses; p++ {
			for r := 0; r < d.Ranges; r++ {
				g := complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
				for c := 0; c < d.Channels; c++ {
					cb.Data[cb.Index(c, p, r)] += complex64(g * spatial[c])
				}
			}
		}
	}

	// Clutter ridge: per patch, one spatial and one temporal vector; each
	// range gate gets an independent complex reflectivity per patch.
	if s.Clutter.Patches > 0 && s.Clutter.CNR > -200 {
		totalClutterPower := ref * math.Pow(10, s.Clutter.CNR/10)
		patchPower := totalClutterPower / float64(s.Clutter.Patches)
		sigma := math.Sqrt(patchPower / 2)
		outer := make([]complex128, d.Channels*d.Pulses)
		for pi := 0; pi < s.Clutter.Patches; pi++ {
			u := -1 + 2*(float64(pi)+0.5)/float64(s.Clutter.Patches)
			fd := s.Clutter.Beta * u / 2
			spatial := signal.SteeringVector(d.Channels, u)
			temporal := signal.DopplerSteeringVector(d.Pulses, fd)
			for c := 0; c < d.Channels; c++ {
				for p := 0; p < d.Pulses; p++ {
					outer[c*d.Pulses+p] = spatial[c] * temporal[p]
				}
			}
			for r := 0; r < d.Ranges; r++ {
				gamma := complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
				if gamma == 0 {
					continue
				}
				for c := 0; c < d.Channels; c++ {
					base := cb.Index(c, 0, r)
					for p := 0; p < d.Pulses; p++ {
						cb.Data[base+p*d.Ranges] += complex64(gamma * outer[c*d.Pulses+p])
					}
				}
			}
		}
	}
	return cb, nil
}

// SteeringFor returns the spatial steering vector toward angle u for this
// scenario's array (uniform linear, half-wavelength spacing).
func (s *Scenario) SteeringFor(u float64) []complex128 {
	return signal.SteeringVector(s.Dims.Channels, u)
}

// ExpectedPeakGate returns the range gate at which the pipeline's matched
// filter concentrates the echo of t: the leading-edge gate itself.
func (s *Scenario) ExpectedPeakGate(t Target) int { return t.Range }

// SmallTestScenario returns a deterministic scenario small enough for unit
// tests (4 channels, 16 pulses, 64 ranges) with two well-separated targets
// and no clutter.
func SmallTestScenario() *Scenario {
	return &Scenario{
		Dims:       cube.Dims{Channels: 4, Pulses: 16, Ranges: 64},
		PulseLen:   8,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets: []Target{
			{Angle: 0.0, Doppler: 0.25, Range: 20, SNR: 10},
			{Angle: 0.5, Doppler: -0.25, Range: 40, SNR: 10},
		},
		Seed: 12345,
	}
}

// PaperScenario returns the reconstructed full-scale scenario of the paper:
// a 16 x 128 x 1024 cube (16 MiB per CPI file) with a modest target set and
// a clutter ridge. Generation at this size is expensive; it is used by the
// cmd tools and benches, not unit tests.
func PaperScenario() *Scenario {
	return &Scenario{
		Dims:       cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024},
		PulseLen:   64,
		Bandwidth:  0.9,
		NoisePower: 1,
		Targets: []Target{
			{Angle: 0.1, Doppler: 0.3, Range: 200, SNR: 0},
			{Angle: -0.4, Doppler: -0.2, Range: 500, SNR: 3},
			{Angle: 0.6, Doppler: 0.12, Range: 800, SNR: 6},
		},
		Clutter: Clutter{Patches: 24, CNR: 30, Beta: 1},
		Seed:    20000321,
	}
}

// PhaseNoise applies a small random phase rotation per channel, modelling
// uncalibrated receivers; useful in robustness tests of the adaptive
// weights. maxRad is the maximum absolute phase error.
func PhaseNoise(cb *cube.Cube, maxRad float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cb.Channels; c++ {
		rot := cmplx.Exp(complex(0, (rng.Float64()*2-1)*maxRad))
		rot64 := complex64(rot)
		for p := 0; p < cb.Pulses; p++ {
			row := cb.PulseRow(c, p)
			for i := range row {
				row[i] *= rot64
			}
		}
	}
}
