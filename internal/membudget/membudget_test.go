package membudget

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestAcquireReleaseAccounting(t *testing.T) {
	b := New("root", 100)
	if err := b.Acquire(context.Background(), 60); err != nil {
		t.Fatalf("acquire 60: %v", err)
	}
	if err := b.Acquire(context.Background(), 40); err != nil {
		t.Fatalf("acquire 40: %v", err)
	}
	if got := b.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	b.Release(30)
	if got := b.InUse(); got != 70 {
		t.Fatalf("InUse after release = %d, want 70", got)
	}
	if got := b.HighWater(); got != 100 {
		t.Fatalf("HighWater = %d, want 100", got)
	}
	b.Release(70)
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after drain = %d, want 0", got)
	}
}

func TestUnlimitedStillAccounts(t *testing.T) {
	b := New("root", 0)
	if err := b.Acquire(context.Background(), 1 << 40); err != nil {
		t.Fatalf("unlimited acquire: %v", err)
	}
	if got := b.HighWater(); got != 1<<40 {
		t.Fatalf("HighWater = %d, want %d", got, int64(1)<<40)
	}
	b.Release(1 << 40)
}

func TestBudgetExceededIsImmediate(t *testing.T) {
	b := New("root", 100)
	err := b.Acquire(context.Background(), 101)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("oversized acquire: got %v, want ErrBudgetExceeded", err)
	}
	// Via an unlimited child the parent's limit still rejects.
	c := b.Child("child", 0)
	err = c.Acquire(context.Background(), 101)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("oversized child acquire: got %v, want ErrBudgetExceeded", err)
	}
}

func TestOverReleasePanicsTyped(t *testing.T) {
	b := New("root", 100)
	if err := b.Acquire(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		b.Release(20)
	}()
	if recovered == nil {
		t.Fatal("over-release did not panic")
	}
	err, ok := recovered.(error)
	if !ok {
		t.Fatalf("panic value %T is not an error", recovered)
	}
	var ore *OverReleaseError
	if !errors.As(err, &ore) {
		t.Fatalf("panic %v is not an *OverReleaseError", err)
	}
	if !errors.Is(err, ErrOverRelease) {
		t.Fatalf("panic %v does not match ErrOverRelease", err)
	}
	if ore.N != 20 || ore.InUse != 10 || ore.Budget != "root" {
		t.Fatalf("OverReleaseError = %+v, want N=20 InUse=10 Budget=root", ore)
	}
	// The failed release must not have corrupted the books.
	if got := b.InUse(); got != 10 {
		t.Fatalf("InUse after failed release = %d, want 10", got)
	}
}

func TestChildCannotExceedParent(t *testing.T) {
	root := New("root", 100)
	// Child with a larger nominal limit is still bounded by the parent.
	a := root.Child("a", 1000)
	if err := a.Acquire(context.Background(), 80); err != nil {
		t.Fatal(err)
	}
	if a.TryAcquire(30) {
		t.Fatal("child exceeded parent: 80+30 admitted under a 100-byte root")
	}
	// A sibling is squeezed by the shared parent too.
	bb := root.Child("b", 0)
	if bb.TryAcquire(30) {
		t.Fatal("sibling exceeded parent")
	}
	if !bb.TryAcquire(20) {
		t.Fatal("sibling denied bytes the parent still has")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx, 30); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked child acquire: got %v, want deadline exceeded", err)
	}
	if got := root.InUse(); got != 100 {
		t.Fatalf("root InUse = %d, want 100", got)
	}
	a.Release(80)
	bb.Release(20)
	if got := root.InUse(); got != 0 {
		t.Fatalf("root InUse after drain = %d, want 0", got)
	}
}

func TestChildOwnLimitBinds(t *testing.T) {
	root := New("root", 1000)
	c := root.Child("c", 50)
	if c.TryAcquire(60) {
		t.Fatal("child's own limit ignored")
	}
	if err := c.Acquire(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if got := root.InUse(); got != 50 {
		t.Fatalf("child charge did not propagate to root: InUse = %d", got)
	}
	c.Release(50)
}

// TestConcurrentAcquireReleaseNoDeadlock hammers one budget tree from
// many goroutines; the test passes by terminating (a watchdog converts a
// hang into a failure) and by the books balancing to zero.
func TestConcurrentAcquireReleaseNoDeadlock(t *testing.T) {
	root := New("root", 1000)
	children := []*Budget{root.Child("a", 600), root.Child("b", 600), root.Child("c", 0)}
	const goroutines = 12
	const iters = 300
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				b := children[g%len(children)]
				ctx := context.Background()
				for i := 0; i < iters; i++ {
					n := int64(1 + rng.Intn(200))
					if rng.Intn(3) == 0 {
						if !b.TryAcquire(n) {
							continue
						}
					} else if err := b.AcquirePri(ctx, n, uint64(rng.Intn(4))); err != nil {
						continue
					}
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					}
					b.Release(n)
				}
			}(g)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent acquire/release deadlocked")
	}
	if got := root.InUse(); got != 0 {
		t.Fatalf("root InUse after all releases = %d, want 0", got)
	}
	for _, c := range children {
		if got := c.InUse(); got != 0 {
			t.Fatalf("child %s InUse = %d, want 0", c.Name(), got)
		}
	}
}

// TestPriorityAdmissionOrder pins the deadlock-avoiding admission rule:
// the most urgent waiter is granted first even when a less urgent one
// queued earlier, and a later fast-path acquire cannot overtake it.
func TestPriorityAdmissionOrder(t *testing.T) {
	b := New("root", 100)
	if err := b.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	start := func(name string, pri uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.AcquirePri(context.Background(), 50, pri); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			order <- name
		}()
	}
	start("background", 9)
	// Make sure the background waiter is queued before the urgent one.
	waitForStalls(t, b, 1)
	start("urgent", 1)
	waitForStalls(t, b, 2)

	// Fast path may not overtake queued waiters even though 50 would fit
	// after this partial release.
	b.Release(50)
	if b.TryAcquire(10) {
		t.Fatal("TryAcquire overtook queued waiters")
	}
	if got := <-order; got != "urgent" {
		t.Fatalf("first grant went to %q, want urgent", got)
	}
	b.Release(50)
	if got := <-order; got != "background" {
		t.Fatalf("second grant went to %q, want background", got)
	}
	wg.Wait()
	b.Release(100)
	st := b.Stats()
	if st.Stalls != 2 || st.StallTime <= 0 {
		t.Fatalf("stall stats = %+v, want 2 stalls with positive stall time", st)
	}
}

// waitForStalls spins until the budget has seen n stalled reservations.
func waitForStalls(t *testing.T, b *Budget, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Stalls < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d stalls", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestPressureHandlerFreesWaiters(t *testing.T) {
	b := New("root", 100)
	if err := b.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	var fired atomic
	b.OnPressure(func(need int64) int64 {
		fired.set()
		b.Release(100) // the "spill": evict the cold reservation
		return 100
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Acquire(ctx, 60); err != nil {
		t.Fatalf("acquire under pressure: %v", err)
	}
	if !fired.get() {
		t.Fatal("pressure handler never fired")
	}
	b.Release(60)
}

// atomic is a tiny test-local flag (avoids importing sync/atomic for one
// bool).
type atomic struct {
	mu sync.Mutex
	v  bool
}

func (a *atomic) set()      { a.mu.Lock(); a.v = true; a.mu.Unlock() }
func (a *atomic) get() bool { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestAcquireCancelDoesNotLeak(t *testing.T) {
	b := New("root", 100)
	if err := b.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.Acquire(ctx, 50) }()
	waitForStalls(t, b, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: got %v", err)
	}
	b.Release(100)
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse after cancel+drain = %d, want 0 (cancelled waiter leaked a charge)", got)
	}
	// The budget still admits new work after the cancellation.
	if !b.TryAcquire(100) {
		t.Fatal("budget stuck after cancelled waiter")
	}
	b.Release(100)
}

func TestNilBudgetIsNoOp(t *testing.T) {
	var b *Budget
	if err := b.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if !b.TryAcquire(100) {
		t.Fatal("nil TryAcquire should succeed")
	}
	b.Release(100)
	b.Kick()
	if st := b.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if c := b.Child("x", 1); c != nil {
		t.Fatal("nil Child should be nil")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"1048576", 1 << 20, false},
		{"64k", 64 << 10, false},
		{"512M", 512 << 20, false},
		{"2g", 2 << 30, false},
		{"2GiB", 2 << 30, false},
		{"1t", 1 << 40, false},
		{"24mb", 24 << 20, false},
		{"", 0, true},
		{"-5", 0, true},
		{"12q", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseBytes(%q): err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := FormatBytes(24 << 20); got != "24 MiB" {
		t.Errorf("FormatBytes(24MiB) = %q", got)
	}
	if got := FormatBytes(1000); got != "1000 B" {
		t.Errorf("FormatBytes(1000) = %q", got)
	}
}
