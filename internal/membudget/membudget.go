// Package membudget is a hierarchical byte-budget manager for
// external-memory execution: a process-global root budget is split into
// per-pipeline (or per-replica) child budgets, and every large slab a
// pipeline materialises — input cubes, Doppler cubes, beam cubes, spill
// reload buffers — is charged against its budget before it exists and
// released when it is recycled. Acquire blocks when the budget is
// exhausted; admission is ordered by caller-supplied priority (lower is
// more urgent), which is how the pipeline avoids self-deadlock: the
// reservation whose completion will free memory (the CPI at the head of
// the pipeline) always outranks speculative prefetch for future CPIs, so
// prefetch can never exhaust the budget and then wait forever on memory
// only the starved head could release.
//
// A Budget with limit 0 is unlimited but still accounts: InUse, HighWater
// and stall counters keep working, so the unlimited path gets residency
// observability for free.
package membudget

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrBudgetExceeded reports a reservation that can never be admitted: it
// is larger than the limit of the budget (or one of its ancestors), so
// waiting would block forever. Returned immediately, wrapped with the
// sizes involved.
var ErrBudgetExceeded = errors.New("membudget: reservation exceeds budget limit")

// ErrOverRelease is the sentinel wrapped by OverReleaseError: a Release
// of more bytes than the budget currently has in use.
var ErrOverRelease = errors.New("membudget: release exceeds bytes in use")

// OverReleaseError is the panic value of an over-release — an accounting
// bug, not a runtime condition, hence a panic rather than an error
// return. It unwraps to ErrOverRelease so recovering code can match it
// with errors.Is / errors.As.
type OverReleaseError struct {
	// Budget is the name of the node whose accounting went negative.
	Budget string
	// N is the released byte count; InUse was the node's balance.
	N, InUse int64
}

func (e *OverReleaseError) Error() string {
	return fmt.Sprintf("membudget: budget %q: releasing %d bytes with only %d in use", e.Budget, e.N, e.InUse)
}

// Unwrap lets errors.Is(err, ErrOverRelease) match.
func (e *OverReleaseError) Unwrap() error { return ErrOverRelease }

// PressureHandler is invoked (outside the budget lock) when an Acquire
// has to wait: it should try to free up to need bytes — e.g. by spilling
// cold intermediates to disk — and return how many bytes it released.
type PressureHandler func(need int64) (freed int64)

// Budget is one node of the reservation tree. The root is built with New,
// children with Child; a child's reservations charge every ancestor, so a
// child can never hold more bytes than any limit on its path to the root.
// All methods are safe for concurrent use and safe on a nil receiver
// (no-ops), so optional budgeting needs no call-site guards.
type Budget struct {
	name   string
	parent *Budget
	root   *Budget
	limit  int64 // 0 = unlimited (accounting only)

	// Root-only shared state; every node locks root.mu.
	mu           sync.Mutex
	seq          uint64
	waiters      []*waiter
	handlers     []PressureHandler
	pressureBusy bool

	// Guarded by root.mu.
	inUse     int64
	highWater int64
	stalls    int64
	stallNS   int64
}

// waiter is one blocked Acquire. Grant-side charging: whoever closes
// ready has already charged the bytes, so a cancelled waiter that lost
// the race must uncharge.
type waiter struct {
	b     *Budget
	n     int64
	pri   uint64
	seq   uint64
	ready chan struct{}
}

// New builds a root budget. limit 0 means unlimited with accounting.
func New(name string, limit int64) *Budget {
	b := &Budget{name: name, limit: limit}
	b.root = b
	return b
}

// Child carves a sub-budget out of b. limit 0 means no additional cap —
// the child is bounded only by its ancestors; a positive limit caps the
// child even when the parent has room. The child shares the root's lock
// and pressure handlers.
func (b *Budget) Child(name string, limit int64) *Budget {
	if b == nil {
		return nil
	}
	return &Budget{name: name, parent: b, root: b.root, limit: limit}
}

// Name returns the node's name.
func (b *Budget) Name() string {
	if b == nil {
		return ""
	}
	return b.name
}

// Limit returns the node's own limit (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// PathLimit returns the tightest positive limit on the path from this
// node to the root — the true byte ceiling an acquire must fit under —
// or 0 when every node on the path is unlimited.
func (b *Budget) PathLimit() int64 {
	if b == nil {
		return 0
	}
	var lim int64
	for a := b; a != nil; a = a.parent {
		if a.limit > 0 && (lim == 0 || a.limit < lim) {
			lim = a.limit
		}
	}
	return lim
}

// fitsLocked reports whether n more bytes fit under every limit on the
// path to the root. Caller holds root.mu.
func (b *Budget) fitsLocked(n int64) bool {
	for a := b; a != nil; a = a.parent {
		if a.limit > 0 && a.inUse+n > a.limit {
			return false
		}
	}
	return true
}

// chargeLocked adds n bytes along the path to the root.
func (b *Budget) chargeLocked(n int64) {
	for a := b; a != nil; a = a.parent {
		a.inUse += n
		if a.inUse > a.highWater {
			a.highWater = a.inUse
		}
	}
}

// unchargeLocked removes n bytes along the path to the root.
func (b *Budget) unchargeLocked(n int64) {
	for a := b; a != nil; a = a.parent {
		a.inUse -= n
	}
}

// blockedByWaiterLocked reports whether a waiter at least as urgent as
// pri is queued on b; a fast-path acquire must not overtake it (equal
// priorities stay FIFO).
func (b *Budget) blockedByWaiterLocked(pri uint64) bool {
	for _, w := range b.root.waiters {
		if w.b == b && w.pri <= pri {
			return true
		}
	}
	return false
}

// grantLocked wakes every waiter that can now be admitted. Admission is
// per-node priority order: only a node's most urgent waiter (lowest pri,
// FIFO within a priority) is a candidate, so urgent reservations are
// never starved by smaller, later ones slipping past them.
func (root *Budget) grantLocked() {
	for {
		// The most urgent waiter per node is the only candidate for it.
		head := make(map[*Budget]*waiter, len(root.waiters))
		for _, w := range root.waiters {
			h := head[w.b]
			if h == nil || w.pri < h.pri || (w.pri == h.pri && w.seq < h.seq) {
				head[w.b] = w
			}
		}
		granted := false
		for i, w := range root.waiters {
			if head[w.b] == w && w.b.fitsLocked(w.n) {
				w.b.chargeLocked(w.n)
				close(w.ready)
				root.waiters = append(root.waiters[:i], root.waiters[i+1:]...)
				granted = true
				break // the waiter list changed; rescan
			}
		}
		if !granted {
			return
		}
	}
}

// removeWaiterLocked drops w from the queue; reports whether it was
// still queued (false means it was granted concurrently).
func (root *Budget) removeWaiterLocked(w *waiter) bool {
	for i, q := range root.waiters {
		if q == w {
			root.waiters = append(root.waiters[:i], root.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Acquire reserves n bytes with the least-urgent priority; see
// AcquirePri.
func (b *Budget) Acquire(ctx context.Context, n int64) error {
	return b.AcquirePri(ctx, n, ^uint64(0))
}

// AcquirePri reserves n bytes, blocking while the budget (or any
// ancestor) is full. pri orders admission: lower values are granted
// first, and a fast-path acquire never overtakes a queued waiter that is
// at least as urgent. Returns ErrBudgetExceeded (wrapped) immediately if
// n alone exceeds a limit on the path — such a request could never be
// admitted — and ctx.Err() if the context ends first. n <= 0 and nil
// budgets are no-ops.
func (b *Budget) AcquirePri(ctx context.Context, n int64, pri uint64) error {
	if b == nil || n <= 0 {
		return nil
	}
	root := b.root
	root.mu.Lock()
	for a := b; a != nil; a = a.parent {
		if a.limit > 0 && n > a.limit {
			name, lim := a.name, a.limit
			root.mu.Unlock()
			return fmt.Errorf("%w: need %d bytes, budget %q holds at most %d", ErrBudgetExceeded, n, name, lim)
		}
	}
	if !b.blockedByWaiterLocked(pri) && b.fitsLocked(n) {
		b.chargeLocked(n)
		root.mu.Unlock()
		return nil
	}
	w := &waiter{b: b, n: n, pri: pri, seq: root.seq, ready: make(chan struct{})}
	root.seq++
	root.waiters = append(root.waiters, w)
	b.stalls++
	root.mu.Unlock()

	t0 := time.Now()
	b.firePressure(n)
	select {
	case <-w.ready:
		root.mu.Lock()
		b.stallNS += int64(time.Since(t0))
		root.mu.Unlock()
		return nil
	case <-ctx.Done():
		root.mu.Lock()
		if !root.removeWaiterLocked(w) {
			// Granted while we were cancelling: the grant already charged
			// the bytes, so hand them back and wake whoever fits now.
			b.unchargeLocked(w.n)
			root.grantLocked()
		}
		b.stallNS += int64(time.Since(t0))
		root.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire reserves n bytes only if they fit right now and no waiter is
// queued on this node (speculative work never overtakes blocked
// reservations). Reports whether the bytes were charged.
func (b *Budget) TryAcquire(n int64) bool {
	if b == nil || n <= 0 {
		return true
	}
	root := b.root
	root.mu.Lock()
	defer root.mu.Unlock()
	if b.blockedByWaiterLocked(^uint64(0)) || !b.fitsLocked(n) {
		return false
	}
	b.chargeLocked(n)
	return true
}

// Release returns n bytes and admits any waiters that now fit. Releasing
// more than is in use on the node (or an ancestor) panics with an
// *OverReleaseError: that is double-release accounting corruption, and
// continuing would let the budget over-admit silently.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	root := b.root
	root.mu.Lock()
	for a := b; a != nil; a = a.parent {
		if n > a.inUse {
			name, inUse := a.name, a.inUse
			root.mu.Unlock()
			panic(&OverReleaseError{Budget: name, N: n, InUse: inUse})
		}
	}
	b.unchargeLocked(n)
	root.grantLocked()
	root.mu.Unlock()
}

// OnPressure registers a handler invoked when reservations have to wait.
// Handlers are shared tree-wide (they live on the root) and run outside
// the budget lock, so they may call Release; they must not call a
// blocking Acquire.
func (b *Budget) OnPressure(h PressureHandler) {
	if b == nil || h == nil {
		return
	}
	root := b.root
	root.mu.Lock()
	root.handlers = append(root.handlers, h)
	root.mu.Unlock()
}

// Kick re-runs the pressure handlers if any reservation is still
// waiting. Eviction sources call it when new spill candidates appear —
// a waiter may have found nothing spillable when it first blocked.
func (b *Budget) Kick() {
	if b == nil {
		return
	}
	root := b.root
	root.mu.Lock()
	var need int64
	for _, w := range root.waiters {
		need += w.n
	}
	root.mu.Unlock()
	if need > 0 {
		b.firePressure(need)
	}
}

// firePressure runs the handlers until need bytes were freed or the
// handlers are exhausted. One run at a time: concurrent blockers skip
// rather than stampede (the running handler's releases will wake them).
func (b *Budget) firePressure(need int64) {
	root := b.root
	root.mu.Lock()
	if root.pressureBusy || len(root.handlers) == 0 {
		root.mu.Unlock()
		return
	}
	root.pressureBusy = true
	handlers := append([]PressureHandler(nil), root.handlers...)
	root.mu.Unlock()
	for _, h := range handlers {
		if need <= 0 {
			break
		}
		need -= h(need)
	}
	root.mu.Lock()
	root.pressureBusy = false
	root.mu.Unlock()
}

// Stats is a point-in-time snapshot of one node's accounting.
type Stats struct {
	Name string
	// Limit is the node's own cap (0 = unlimited).
	Limit int64
	// InUse is the node's current charged bytes; HighWater its maximum.
	InUse, HighWater int64
	// Stalls counts reservations that had to wait; StallTime is their
	// total waiting time.
	Stalls    int64
	StallTime time.Duration
}

// Stats snapshots the node.
func (b *Budget) Stats() Stats {
	if b == nil {
		return Stats{}
	}
	b.root.mu.Lock()
	defer b.root.mu.Unlock()
	return Stats{
		Name:      b.name,
		Limit:     b.limit,
		InUse:     b.inUse,
		HighWater: b.highWater,
		Stalls:    b.stalls,
		StallTime: time.Duration(b.stallNS),
	}
}

// InUse returns the node's current charged bytes.
func (b *Budget) InUse() int64 {
	if b == nil {
		return 0
	}
	b.root.mu.Lock()
	defer b.root.mu.Unlock()
	return b.inUse
}

// HighWater returns the node's maximum charged bytes so far.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	b.root.mu.Lock()
	defer b.root.mu.Unlock()
	return b.highWater
}

// ParseBytes parses a human byte count: a plain integer, optionally with
// a k/m/g/t suffix (binary multiples, case-insensitive, optional "b" or
// "ib" tail: "512m", "2GiB", "1048576").
func ParseBytes(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("membudget: empty byte count")
	}
	mult := int64(1)
	t = strings.TrimSuffix(strings.TrimSuffix(t, "b"), "i")
	switch {
	case strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "g"):
		mult, t = 1<<30, t[:len(t)-1]
	case strings.HasSuffix(t, "t"):
		mult, t = 1<<40, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("membudget: bad byte count %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("membudget: negative byte count %q", s)
	}
	return n * mult, nil
}

// FormatBytes renders n in the largest whole binary unit ("24 MiB",
// "512 B") — the human half of ParseBytes for CLI summaries.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<40 && n%(1<<40) == 0:
		return fmt.Sprintf("%d TiB", n>>40)
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%d GiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%d KiB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
