package cube

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzChunkData drives the standalone chunk codec — the entry points the
// streaming ingest path feeds straight from network read buffers — with
// arbitrary chunk indices and bytes. Invariants: verification never
// panics and accepts only exact-length, CRC-clean chunk bytes (truncated
// data reports ErrTruncated, anything else ErrCorrupt); bytes that verify
// as the original chunk decode to exactly the original samples of that
// chunk's span and touch nothing outside it; and the reader-based variant
// fails cleanly on short streams.
func FuzzChunkData(f *testing.F) {
	cb := fuzzCube()
	const chunkSize = 64
	frame := make([]byte, FileBytesChunked(cb.Dims, chunkSize))
	EncodeChunked(cb, 9, chunkSize, frame)
	h, err := ParseHeader(frame)
	if err != nil {
		f.Fatal(err)
	}
	payload := frame[h.PayloadOffset():]
	chunk3 := payload[64*3 : 64*4]

	f.Add(3, chunk3)                                 // clean chunk
	f.Add(3, chunk3[:10])                            // truncated mid-chunk
	f.Add(0, chunk3)                                 // right bytes, wrong index
	f.Add(-1, []byte{})                              // hostile index
	f.Add(h.Chunks(), chunk3)                        // index past the table
	f.Add(h.Chunks()-1, payload[len(payload)-64:])   // last (short) chunk
	corrupt := append([]byte(nil), chunk3...)
	corrupt[7] ^= 0x40
	f.Add(3, corrupt) // CRC mismatch mid-stream

	f.Fuzz(func(t *testing.T, idx int, data []byte) {
		err := VerifyChunkData(&h, idx, data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("VerifyChunkData: unexpected error class %v", err)
			}
			return // rejected inputs only need to fail cleanly
		}
		// Accepted: the index is in range and the length is exact.
		if idx < 0 || idx >= h.Chunks() {
			t.Fatalf("accepted out-of-range chunk index %d", idx)
		}
		lo, hi := h.ChunkSpan(idx)
		if int64(len(data)) != hi-lo {
			t.Fatalf("accepted %d bytes for chunk %d spanning %d", len(data), idx, hi-lo)
		}

		// Decode into a fresh cube and check the chunk's sample range —
		// and only that range — was written.
		dst := New(h.Dims)
		DecodeChunkData(dst, &h, idx, data)
		if bytes.Equal(data, payload[lo:hi]) {
			for s := int(lo / 8); s < int(hi/8); s++ {
				if dst.Data[s] != cb.Data[s] {
					t.Fatalf("chunk %d sample %d decoded %v, want %v", idx, s, dst.Data[s], cb.Data[s])
				}
			}
		}
		for s := range dst.Data {
			if s >= int(lo/8) && s < int(hi/8) {
				continue
			}
			if dst.Data[s] != 0 {
				t.Fatalf("chunk %d decode wrote sample %d outside its span [%d, %d)", idx, s, lo/8, hi/8)
			}
		}

		// The reader-based variant must accept the same bytes whole and
		// fail cleanly (no panic, typed error) on a short stream.
		dst2 := New(h.Dims)
		if _, err := DecodeChunkFrom(bytes.NewReader(data), dst2, &h, idx, nil); err != nil {
			t.Fatalf("DecodeChunkFrom rejects bytes VerifyChunkData accepted: %v", err)
		}
		if len(data) > 0 {
			if _, err := DecodeChunkFrom(bytes.NewReader(data[:len(data)-1]), New(h.Dims), &h, idx, nil); err == nil ||
				(!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt)) {
				t.Fatalf("short stream: got %v, want a clean truncation error", err)
			}
		}
	})
}
