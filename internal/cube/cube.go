// Package cube provides the 3-dimensional complex data cube that a phased
// array radar produces for each coherent processing interval (CPI), together
// with layout, partitioning, and binary codec helpers.
//
// A cube is indexed by (channel, pulse, range): Channels antenna channels,
// Pulses pulse repetition intervals, and Ranges range gates. Samples are
// complex64 (8 bytes) and are stored in a single flat slice in
// channel-major, pulse-middle, range-minor order, i.e. the sample for
// (c, p, r) lives at offset ((c*Pulses)+p)*Ranges + r. That order matches
// the on-disk file format used by the round-robin radar datasets: a file is
// the flat sample array preceded by a small fixed header.
package cube

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Dims describes the geometry of a data cube.
type Dims struct {
	Channels int // antenna channels (spatial dimension)
	Pulses   int // pulses per CPI (temporal dimension)
	Ranges   int // range gates (fast-time dimension)
}

// Valid reports whether all three dimensions are positive.
func (d Dims) Valid() bool {
	return d.Channels > 0 && d.Pulses > 0 && d.Ranges > 0
}

// Samples returns the total number of complex samples in a cube with these
// dimensions.
func (d Dims) Samples() int { return d.Channels * d.Pulses * d.Ranges }

// Bytes returns the payload size in bytes of a cube with these dimensions
// (8 bytes per complex64 sample), excluding any file header.
func (d Dims) Bytes() int64 { return int64(d.Samples()) * 8 }

// String implements fmt.Stringer.
func (d Dims) String() string {
	return fmt.Sprintf("%dch x %dpulse x %drange", d.Channels, d.Pulses, d.Ranges)
}

// Cube is one CPI of radar data.
type Cube struct {
	Dims
	// Data holds the samples in channel-major, range-minor order; its
	// length is always Dims.Samples().
	Data []complex64
}

// New allocates a zero-filled cube with the given dimensions.
// It panics if the dimensions are not valid.
func New(d Dims) *Cube {
	if !d.Valid() {
		panic(fmt.Sprintf("cube: invalid dims %+v", d))
	}
	return &Cube{Dims: d, Data: make([]complex64, d.Samples())}
}

// Index returns the flat offset of sample (c, p, r).
func (d Dims) Index(c, p, r int) int {
	return (c*d.Pulses+p)*d.Ranges + r
}

// Coords is the inverse of Index: it maps a flat offset back to (c, p, r).
func (d Dims) Coords(i int) (c, p, r int) {
	r = i % d.Ranges
	i /= d.Ranges
	p = i % d.Pulses
	c = i / d.Pulses
	return
}

// At returns the sample at (c, p, r).
func (cb *Cube) At(c, p, r int) complex64 { return cb.Data[cb.Index(c, p, r)] }

// Set stores v at (c, p, r).
func (cb *Cube) Set(c, p, r int, v complex64) { cb.Data[cb.Index(c, p, r)] = v }

// PulseRow returns the contiguous range-gate row for (channel c, pulse p).
// The returned slice aliases the cube's storage.
func (cb *Cube) PulseRow(c, p int) []complex64 {
	off := cb.Index(c, p, 0)
	return cb.Data[off : off+cb.Ranges]
}

// PulseColumn copies the slow-time series for (channel c, range gate r)
// into dst, which must have length >= Pulses, and returns dst[:Pulses].
// If dst is nil a new slice is allocated.
func (cb *Cube) PulseColumn(c, r int, dst []complex64) []complex64 {
	if dst == nil {
		dst = make([]complex64, cb.Pulses)
	}
	dst = dst[:cb.Pulses]
	for p := 0; p < cb.Pulses; p++ {
		dst[p] = cb.Data[cb.Index(c, p, r)]
	}
	return dst
}

// Clone returns a deep copy of the cube.
func (cb *Cube) Clone() *Cube {
	out := New(cb.Dims)
	copy(out.Data, cb.Data)
	return out
}

// Fill sets every sample to v.
func (cb *Cube) Fill(v complex64) {
	for i := range cb.Data {
		cb.Data[i] = v
	}
}

// AddTo adds other into cb element-wise. The dimensions must match.
func (cb *Cube) AddTo(other *Cube) error {
	if cb.Dims != other.Dims {
		return fmt.Errorf("cube: dimension mismatch %v vs %v", cb.Dims, other.Dims)
	}
	for i, v := range other.Data {
		cb.Data[i] += v
	}
	return nil
}

// Scale multiplies every sample by s.
func (cb *Cube) Scale(s complex64) {
	for i := range cb.Data {
		cb.Data[i] *= s
	}
}

// Power returns the total power (sum of |x|^2) over all samples, computed
// in float64 for accuracy.
func (cb *Cube) Power() float64 {
	var sum float64
	for _, v := range cb.Data {
		re, im := float64(real(v)), float64(imag(v))
		sum += re*re + im*im
	}
	return sum
}

// MaxAbs returns the largest sample magnitude in the cube.
func (cb *Cube) MaxAbs() float64 {
	var m float64
	for _, v := range cb.Data {
		a := cmplx.Abs(complex128(v))
		if a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether two cubes have identical dimensions and samples
// within absolute tolerance tol per component.
func Equal(a, b *Cube, tol float64) bool {
	if a.Dims != b.Dims {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(real(a.Data[i])-real(b.Data[i]))) > tol ||
			math.Abs(float64(imag(a.Data[i])-imag(b.Data[i]))) > tol {
			return false
		}
	}
	return true
}
