package cube

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// encodeFile serialises a pseudo-random cube and returns the raw bytes.
func encodeFile(t *testing.T, d Dims, seq uint64) []byte {
	t.Helper()
	cb := New(d)
	rng := rand.New(rand.NewSource(int64(seq) + 99))
	for i := range cb.Data {
		cb.Data[i] = complex(rng.Float32()-0.5, rng.Float32()-0.5)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cb, seq); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripCarriesChecksum(t *testing.T) {
	raw := encodeFile(t, Dims{2, 3, 5}, 7)
	got, h, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasChecksum {
		t.Error("freshly written file should carry a checksum")
	}
	if h.Checksum != Checksum(raw[HeaderSize:]) {
		t.Error("header checksum does not match payload")
	}
	if h.Seq != 7 || got == nil {
		t.Errorf("round trip lost data: seq %d", h.Seq)
	}
}

func TestReadTruncatedTyped(t *testing.T) {
	raw := encodeFile(t, Dims{2, 3, 5}, 1)
	for _, cut := range []int{0, 5, HeaderSize - 1, HeaderSize, HeaderSize + 9, len(raw) - 1} {
		_, _, err := Read(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReadBitFlippedPayloadTyped(t *testing.T) {
	raw := encodeFile(t, Dims{2, 3, 5}, 2)
	for _, pos := range []int{HeaderSize, HeaderSize + 17, len(raw) - 1} {
		flipped := append([]byte(nil), raw...)
		flipped[pos] ^= 0x08
		_, _, err := Read(bytes.NewReader(flipped))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: got %v, want ErrCorrupt", pos, err)
		}
	}
	// A flipped magic byte is header corruption, also typed.
	flipped := append([]byte(nil), raw...)
	flipped[0] ^= 0x01
	if _, _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped magic: got %v, want ErrCorrupt", err)
	}
}

func TestVersion1FilesStillDecode(t *testing.T) {
	// A legacy file has version 1 and a zero checksum word; it must decode
	// without verification rather than being rejected as corrupt.
	raw := encodeFile(t, Dims{2, 3, 5}, 3)
	legacy := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(legacy[4:8], 1)
	binary.LittleEndian.PutUint32(legacy[28:32], 0)
	_, h, err := Read(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("version-1 file rejected: %v", err)
	}
	if h.HasChecksum {
		t.Error("version-1 header claims a checksum")
	}
	// Unknown future versions still fail.
	future := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(future[4:8], 99)
	if _, _, err := Read(bytes.NewReader(future)); err == nil {
		t.Error("future version should be rejected")
	}
}

func TestVerifyPayload(t *testing.T) {
	d := Dims{1, 2, 3}
	raw := encodeFile(t, d, 4)
	h, err := DecodeHeader(raw[:HeaderSize])
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPayload(h, raw[HeaderSize:]); err != nil {
		t.Errorf("clean payload rejected: %v", err)
	}
	if err := VerifyPayload(h, raw[HeaderSize:len(raw)-4]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: got %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), raw[HeaderSize:]...)
	bad[3] ^= 0x80
	if err := VerifyPayload(h, bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped payload: got %v, want ErrCorrupt", err)
	}
}
