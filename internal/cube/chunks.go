package cube

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Format version 3: chunked checksums.
//
// A version-3 file inserts a chunk table between the fixed 32-byte header
// and the sample payload:
//
//	offset  size  field
//	32      4     chunk size in bytes (uint32, a positive multiple of 8)
//	36      4     chunk count (uint32) == ceil(payload bytes / chunk size)
//	40      4*n   CRC-32C of each payload chunk, in order
//	40+4n   ...   samples
//
// The fixed header is unchanged — its checksum word still covers the whole
// payload, so v2 tooling semantics carry over — but the per-chunk CRCs let
// a reader shard verification and decoding across workers, and let a
// corrupt chunk be re-read individually instead of refetching the whole
// multi-megabyte cube. Every chunk except the last is exactly ChunkSize
// bytes; chunk boundaries fall on sample boundaries because the chunk size
// must be a multiple of the 8-byte sample encoding.

// FormatVersionChunked is the first format version carrying a chunk table.
const FormatVersionChunked = 3

// DefaultChunkSize is the chunk granularity the dataset writer uses: it
// matches the default 64 KiB stripe unit, so one degraded stripe server
// corrupts O(1) chunks of a cube rather than forcing a whole-file re-read.
const DefaultChunkSize = 64 << 10

// chunkTableFixed is the size of the chunk-table preamble (chunk size and
// chunk count words) preceding the per-chunk CRCs.
const chunkTableFixed = 8

// chunkCount returns how many chunks an n-byte payload splits into.
func chunkCount(n int64, chunkSize int) int {
	return int((n + int64(chunkSize) - 1) / int64(chunkSize))
}

// validChunkSize reports whether a chunk size is usable: positive and
// sample-aligned.
func validChunkSize(chunkSize int) bool {
	return chunkSize > 0 && chunkSize%8 == 0
}

// TableBytes returns the size of the header's chunk table — zero for the
// flat (v1/v2) formats.
func (h *Header) TableBytes() int64 {
	if h.Version < FormatVersionChunked {
		return 0
	}
	return chunkTableFixed + 4*int64(chunkCount(h.Bytes(), h.ChunkSize))
}

// PayloadOffset returns the file offset at which the sample payload starts.
func (h *Header) PayloadOffset() int64 { return HeaderSize + h.TableBytes() }

// Chunks returns the number of payload chunks (zero for flat formats).
func (h *Header) Chunks() int { return len(h.ChunkCRCs) }

// ChunkSpan returns the byte range [lo, hi) of chunk i within the payload.
func (h *Header) ChunkSpan(i int) (lo, hi int64) {
	lo = int64(i) * int64(h.ChunkSize)
	hi = lo + int64(h.ChunkSize)
	if n := h.Bytes(); hi > n {
		hi = n
	}
	return lo, hi
}

// FileBytesChunked returns the total encoded size of a version-3 cube file
// with dimensions d: header, chunk table, payload.
func FileBytesChunked(d Dims, chunkSize int) int64 {
	return HeaderSize + chunkTableFixed + 4*int64(chunkCount(d.Bytes(), chunkSize)) + d.Bytes()
}

// EncodeChunked serialises cb with sequence number seq into buf as a
// version-3 file: samples first, then the chunk table and header carrying
// their checksums. buf must be at least FileBytesChunked(cb.Dims, chunkSize)
// long. It panics on an invalid chunk size (not a positive multiple of 8) —
// a programmer error, like invalid dimensions in New.
func EncodeChunked(cb *Cube, seq uint64, chunkSize int, buf []byte) {
	if !validChunkSize(chunkSize) {
		panic(fmt.Sprintf("cube: invalid chunk size %d (want a positive multiple of 8)", chunkSize))
	}
	h := Header{Dims: cb.Dims, Seq: seq, HasChecksum: true,
		Version: FormatVersionChunked, ChunkSize: chunkSize}
	off := h.PayloadOffset()
	payload := buf[off : off+cb.Bytes()]
	EncodeSamples(cb, payload)
	h.Checksum = Checksum(payload)
	EncodeHeader(h, buf)
	table := buf[HeaderSize:off]
	n := chunkCount(cb.Bytes(), chunkSize)
	binary.LittleEndian.PutUint32(table[0:4], uint32(chunkSize))
	binary.LittleEndian.PutUint32(table[4:8], uint32(n))
	for i := 0; i < n; i++ {
		lo, hi := h.ChunkSpan(i)
		binary.LittleEndian.PutUint32(table[chunkTableFixed+4*i:], Checksum(payload[lo:hi]))
	}
}

// DecodeChunkTable parses the chunk table of a version-3 header from buf,
// which starts at file offset HeaderSize, filling h.ChunkSize and
// h.ChunkCRCs. Flat-format headers are left unchanged. A structurally
// impossible table (bad chunk size, count disagreeing with the payload
// size) reports ErrCorrupt; a buffer too short for the table, ErrTruncated.
func DecodeChunkTable(h *Header, buf []byte) error {
	if h.Version < FormatVersionChunked {
		return nil
	}
	if len(buf) < chunkTableFixed {
		return fmt.Errorf("%w: chunk table preamble is %d bytes, want %d", ErrTruncated, len(buf), chunkTableFixed)
	}
	cs := int(binary.LittleEndian.Uint32(buf[0:4]))
	n := int(binary.LittleEndian.Uint32(buf[4:8]))
	if !validChunkSize(cs) {
		return fmt.Errorf("%w: chunk size %d is not a positive multiple of 8", ErrCorrupt, cs)
	}
	if want := chunkCount(h.Bytes(), cs); n != want {
		return fmt.Errorf("%w: chunk count %d, want %d for %d payload bytes at chunk size %d",
			ErrCorrupt, n, want, h.Bytes(), cs)
	}
	if len(buf) < chunkTableFixed+4*n {
		return fmt.Errorf("%w: chunk table is %d bytes, want %d", ErrTruncated, len(buf), chunkTableFixed+4*n)
	}
	h.ChunkSize = cs
	h.ChunkCRCs = make([]uint32, n)
	for i := range h.ChunkCRCs {
		h.ChunkCRCs[i] = binary.LittleEndian.Uint32(buf[chunkTableFixed+4*i:])
	}
	return nil
}

// ParseHeader decodes the fixed header and, for chunked files, the chunk
// table from the front of a whole-file buffer.
func ParseHeader(buf []byte) (Header, error) {
	h, err := DecodeHeader(buf)
	if err != nil {
		return h, err
	}
	if err := DecodeChunkTable(&h, buf[HeaderSize:]); err != nil {
		return h, err
	}
	return h, nil
}

// VerifyChunk checks one payload chunk against its stored CRC.
func VerifyChunk(h *Header, payload []byte, i int) error {
	lo, hi := h.ChunkSpan(i)
	if int64(len(payload)) < hi {
		return fmt.Errorf("%w: payload is %d bytes, chunk %d ends at %d", ErrTruncated, len(payload), i, hi)
	}
	if got := Checksum(payload[lo:hi]); got != h.ChunkCRCs[i] {
		return fmt.Errorf("%w: chunk %d CRC %08x, table says %08x (CPI %d)", ErrCorrupt, i, got, h.ChunkCRCs[i], h.Seq)
	}
	return nil
}

// VerifyChunks checks payload chunks [lo, hi) against the header's chunk
// table and appends the indices of mismatching chunks to bad, returning the
// extended slice. A payload shorter than the chunked span is ErrTruncated.
func VerifyChunks(h *Header, payload []byte, lo, hi int, bad []int) ([]int, error) {
	if int64(len(payload)) < h.Bytes() {
		return bad, fmt.Errorf("%w: payload is %d bytes, want %d", ErrTruncated, len(payload), h.Bytes())
	}
	for i := lo; i < hi; i++ {
		clo, chi := h.ChunkSpan(i)
		if Checksum(payload[clo:chi]) != h.ChunkCRCs[i] {
			bad = append(bad, i)
		}
	}
	return bad, nil
}

// DecodeChunk parses the samples covered by payload chunk i into cb. For
// flat formats (no chunk table) it decodes the whole payload.
func DecodeChunk(cb *Cube, h *Header, payload []byte, i int) {
	if h.Chunks() == 0 {
		DecodeSampleRange(cb, payload, 0, len(cb.Data))
		return
	}
	lo, hi := h.ChunkSpan(i)
	DecodeSampleRange(cb, payload, int(lo/8), int(hi/8))
}

// VerifyChunkData checks a standalone chunk — the bytes of payload chunk i
// on their own, as they arrive from a stream — against the header's chunk
// table. The data must be exactly the chunk's span (short data is
// ErrTruncated, long data ErrCorrupt: a framing error either way).
func VerifyChunkData(h *Header, i int, data []byte) error {
	if i < 0 || i >= h.Chunks() {
		return fmt.Errorf("%w: chunk index %d out of range [0,%d)", ErrCorrupt, i, h.Chunks())
	}
	lo, hi := h.ChunkSpan(i)
	if int64(len(data)) < hi-lo {
		return fmt.Errorf("%w: chunk %d is %d bytes, want %d", ErrTruncated, i, len(data), hi-lo)
	}
	if int64(len(data)) > hi-lo {
		return fmt.Errorf("%w: chunk %d is %d bytes, want %d", ErrCorrupt, i, len(data), hi-lo)
	}
	if got := Checksum(data); got != h.ChunkCRCs[i] {
		return fmt.Errorf("%w: chunk %d CRC %08x, table says %08x (CPI %d)", ErrCorrupt, i, got, h.ChunkCRCs[i], h.Seq)
	}
	return nil
}

// DecodeChunkData parses a standalone chunk — data holding exactly the
// bytes of payload chunk i — into the chunk's sample range of cb. Unlike
// DecodeChunk, the data is the chunk alone, not the whole payload, so a
// streaming consumer can decode straight out of a transport read buffer
// without ever assembling the full file image. The caller is expected to
// have verified the chunk (VerifyChunkData) first.
func DecodeChunkData(cb *Cube, h *Header, i int, data []byte) {
	lo, _ := h.ChunkSpan(i)
	base := int(lo / 8)
	n := len(data) / 8
	for s := 0; s < n; s++ {
		cb.Data[base+s] = complex(
			math.Float32frombits(binary.LittleEndian.Uint32(data[s*8:])),
			math.Float32frombits(binary.LittleEndian.Uint32(data[s*8+4:])))
	}
}

// DecodeChunkFrom reads payload chunk i straight from r, verifies it, and
// decodes it into cb. scratch is reused when large enough (grown
// otherwise) and returned so callers can amortise it across chunks. On a
// CRC mismatch the chunk's bytes have still been consumed from r.
func DecodeChunkFrom(r io.Reader, cb *Cube, h *Header, i int, scratch []byte) ([]byte, error) {
	lo, hi := h.ChunkSpan(i)
	n := int(hi - lo)
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return scratch, fmt.Errorf("%w: chunk %d: %v", ErrTruncated, i, err)
	}
	if err := VerifyChunkData(h, i, scratch); err != nil {
		return scratch, err
	}
	DecodeChunkData(cb, h, i, scratch)
	return scratch, nil
}
