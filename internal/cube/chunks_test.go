package cube

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// randomCube fills a cube with pseudo-random samples.
func randomCube(d Dims, seed int64) *Cube {
	cb := New(d)
	rng := rand.New(rand.NewSource(seed))
	for i := range cb.Data {
		cb.Data[i] = complex(rng.Float32()-0.5, rng.Float32()-0.5)
	}
	return cb
}

// encodeChunkedFile serialises a pseudo-random cube as a v3 file.
func encodeChunkedFile(t *testing.T, d Dims, seq uint64, chunkSize int) (*Cube, []byte) {
	t.Helper()
	cb := randomCube(d, int64(seq)+7)
	var buf bytes.Buffer
	if err := WriteChunked(&buf, cb, seq, chunkSize, nil); err != nil {
		t.Fatal(err)
	}
	return cb, buf.Bytes()
}

func TestChunkedRoundTrip(t *testing.T) {
	d := Dims{Channels: 2, Pulses: 5, Ranges: 37} // 2960-byte payload
	for _, chunkSize := range []int{8, 64, 256, 4096} {
		want, raw := encodeChunkedFile(t, d, 11, chunkSize)
		if int64(len(raw)) != FileBytesChunked(d, chunkSize) {
			t.Fatalf("chunk %d: file is %d bytes, want %d", chunkSize, len(raw), FileBytesChunked(d, chunkSize))
		}
		got, h, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("chunk %d: %v", chunkSize, err)
		}
		if h.Version != FormatVersionChunked || h.ChunkSize != chunkSize || h.Seq != 11 {
			t.Fatalf("chunk %d: header %+v", chunkSize, h)
		}
		if wantN := chunkCount(d.Bytes(), chunkSize); h.Chunks() != wantN {
			t.Fatalf("chunk %d: %d chunks, want %d", chunkSize, h.Chunks(), wantN)
		}
		if !Equal(want, got, 0) {
			t.Fatalf("chunk %d: samples differ after round trip", chunkSize)
		}
		// The fixed header still carries the whole-payload CRC (v2 compat).
		if h.Checksum != Checksum(raw[h.PayloadOffset():]) {
			t.Fatalf("chunk %d: header CRC does not cover the payload", chunkSize)
		}
	}
}

func TestChunkSpansTileThePayload(t *testing.T) {
	d := Dims{Channels: 1, Pulses: 3, Ranges: 33} // 792 bytes: last chunk short
	_, raw := encodeChunkedFile(t, d, 1, 256)
	h, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	var pos int64
	for i := 0; i < h.Chunks(); i++ {
		lo, hi := h.ChunkSpan(i)
		if lo != pos || hi <= lo {
			t.Fatalf("chunk %d spans [%d, %d), expected to start at %d", i, lo, hi, pos)
		}
		pos = hi
	}
	if pos != h.Bytes() {
		t.Fatalf("chunks cover %d bytes, payload is %d", pos, h.Bytes())
	}
}

func TestChunkedDetectsAndLocatesCorruption(t *testing.T) {
	d := Dims{Channels: 2, Pulses: 4, Ranges: 64}
	_, raw := encodeChunkedFile(t, d, 3, 512)
	h, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	// Flip one bit in the middle of chunk 2.
	off := h.PayloadOffset() + 2*512 + 100
	flipped[off] ^= 0x10
	payload := flipped[h.PayloadOffset():]
	bad, err := VerifyChunks(&h, payload, 0, h.Chunks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("bad chunks = %v, want [2]", bad)
	}
	if err := VerifyChunk(&h, payload, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyChunk(2) = %v, want ErrCorrupt", err)
	}
	if err := VerifyChunk(&h, payload, 1); err != nil {
		t.Fatalf("clean chunk rejected: %v", err)
	}
	// The whole-file reader also rejects it, typed.
	if _, _, err := Read(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
}

func TestChunkTableValidation(t *testing.T) {
	d := Dims{Channels: 1, Pulses: 2, Ranges: 8}
	_, raw := encodeChunkedFile(t, d, 5, 64)
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), raw...)
		mutate(b)
		_, _, err := Read(bytes.NewReader(b))
		return err
	}
	// Chunk size not a multiple of 8.
	if err := corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[HeaderSize:], 13) }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("misaligned chunk size: %v, want ErrCorrupt", err)
	}
	// Zero chunk size.
	if err := corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[HeaderSize:], 0) }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero chunk size: %v, want ErrCorrupt", err)
	}
	// Chunk count disagreeing with the payload size.
	if err := corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[HeaderSize+4:], 99) }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong chunk count: %v, want ErrCorrupt", err)
	}
	// Truncation inside the chunk table.
	b := raw[:HeaderSize+3]
	if _, _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated table: %v, want ErrTruncated", err)
	}
}

func TestDecodeChunkCoversSampleRanges(t *testing.T) {
	d := Dims{Channels: 2, Pulses: 3, Ranges: 16}
	want, raw := encodeChunkedFile(t, d, 9, 128)
	h, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	payload := raw[h.PayloadOffset():]
	got := New(d)
	// Decode chunks in reverse order; the union must reconstruct the cube.
	for i := h.Chunks() - 1; i >= 0; i-- {
		DecodeChunk(got, &h, payload, i)
	}
	if !Equal(want, got, 0) {
		t.Fatal("chunkwise decode differs from the encoded cube")
	}
}

func TestWriteBufReadBufReuseBuffers(t *testing.T) {
	d := Dims{Channels: 2, Pulses: 3, Ranges: 11}
	cb := randomCube(d, 21)
	scratch := make([]byte, FileBytes(d))
	var enc bytes.Buffer
	if err := WriteBuf(&enc, cb, 4, scratch); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), enc.Bytes()...)

	// Steady-state v2 write into a reused buffer must not allocate.
	allocs := testing.AllocsPerRun(50, func() {
		if err := WriteBuf(io.Discard, cb, 4, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WriteBuf with pooled buffer: %v allocs/run, want 0", allocs)
	}

	// Steady-state v2 read into reused cube + buffer must not allocate.
	dst := New(d)
	rd := bytes.NewReader(raw)
	allocs = testing.AllocsPerRun(50, func() {
		rd.Reset(raw)
		got, h, err := ReadBuf(rd, dst, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if got != dst || h.Seq != 4 {
			t.Fatal("ReadBuf did not reuse the destination cube")
		}
	})
	if allocs != 0 {
		t.Errorf("ReadBuf with pooled cube+buffer: %v allocs/run, want 0", allocs)
	}
	if !Equal(cb, dst, 0) {
		t.Fatal("ReadBuf round trip lost data")
	}

	// A foreign-geometry destination is replaced, not corrupted.
	other := New(Dims{Channels: 1, Pulses: 1, Ranges: 3})
	rd.Reset(raw)
	got, _, err := ReadBuf(rd, other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got == other || got.Dims != d {
		t.Fatal("ReadBuf reused a cube of the wrong geometry")
	}
}
