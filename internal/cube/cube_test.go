package cube

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimsValid(t *testing.T) {
	cases := []struct {
		d    Dims
		want bool
	}{
		{Dims{1, 1, 1}, true},
		{Dims{16, 128, 1024}, true},
		{Dims{0, 1, 1}, false},
		{Dims{1, 0, 1}, false},
		{Dims{1, 1, 0}, false},
		{Dims{-1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := c.d.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestDimsSamplesAndBytes(t *testing.T) {
	d := Dims{Channels: 16, Pulses: 128, Ranges: 1024}
	if got, want := d.Samples(), 16*128*1024; got != want {
		t.Errorf("Samples = %d, want %d", got, want)
	}
	if got, want := d.Bytes(), int64(16*128*1024*8); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
	// The paper's reconstructed CPI file is 16 MiB of payload.
	if got, want := d.Bytes(), int64(16<<20); got != want {
		t.Errorf("paper cube payload = %d bytes, want 16 MiB = %d", got, want)
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	d := Dims{Channels: 3, Pulses: 5, Ranges: 7}
	seen := make(map[int]bool)
	for c := 0; c < d.Channels; c++ {
		for p := 0; p < d.Pulses; p++ {
			for r := 0; r < d.Ranges; r++ {
				i := d.Index(c, p, r)
				if i < 0 || i >= d.Samples() {
					t.Fatalf("Index(%d,%d,%d) = %d out of range", c, p, r, i)
				}
				if seen[i] {
					t.Fatalf("Index(%d,%d,%d) = %d collides", c, p, r, i)
				}
				seen[i] = true
				gc, gp, gr := d.Coords(i)
				if gc != c || gp != p || gr != r {
					t.Fatalf("Coords(%d) = (%d,%d,%d), want (%d,%d,%d)", i, gc, gp, gr, c, p, r)
				}
			}
		}
	}
	if len(seen) != d.Samples() {
		t.Errorf("Index covered %d offsets, want %d", len(seen), d.Samples())
	}
}

func TestIndexCoordsProperty(t *testing.T) {
	d := Dims{Channels: 11, Pulses: 13, Ranges: 17}
	f := func(c, p, r uint16) bool {
		cc := int(c) % d.Channels
		pp := int(p) % d.Pulses
		rr := int(r) % d.Ranges
		gc, gp, gr := d.Coords(d.Index(cc, pp, rr))
		return gc == cc && gp == pp && gr == rr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtSetAndRows(t *testing.T) {
	d := Dims{Channels: 2, Pulses: 3, Ranges: 4}
	cb := New(d)
	cb.Set(1, 2, 3, 5+6i)
	if got := cb.At(1, 2, 3); got != 5+6i {
		t.Errorf("At = %v, want 5+6i", got)
	}
	row := cb.PulseRow(1, 2)
	if len(row) != d.Ranges {
		t.Fatalf("PulseRow len = %d, want %d", len(row), d.Ranges)
	}
	if row[3] != 5+6i {
		t.Errorf("PulseRow[3] = %v, want 5+6i", row[3])
	}
	// PulseRow aliases storage.
	row[0] = 9i
	if cb.At(1, 2, 0) != 9i {
		t.Error("PulseRow does not alias cube storage")
	}

	col := cb.PulseColumn(1, 3, nil)
	if len(col) != d.Pulses {
		t.Fatalf("PulseColumn len = %d, want %d", len(col), d.Pulses)
	}
	if col[2] != 5+6i {
		t.Errorf("PulseColumn[2] = %v, want 5+6i", col[2])
	}
	// Reuse a destination buffer.
	buf := make([]complex64, 10)
	col2 := cb.PulseColumn(1, 3, buf)
	if &col2[0] != &buf[0] {
		t.Error("PulseColumn did not reuse provided buffer")
	}
}

func TestCloneIsDeep(t *testing.T) {
	cb := New(Dims{2, 2, 2})
	cb.Set(0, 0, 0, 1)
	cl := cb.Clone()
	cl.Set(0, 0, 0, 2)
	if cb.At(0, 0, 0) != 1 {
		t.Error("Clone is not deep")
	}
}

func TestAddToAndScale(t *testing.T) {
	a := New(Dims{1, 2, 2})
	b := New(Dims{1, 2, 2})
	a.Fill(1 + 1i)
	b.Fill(2)
	if err := a.AddTo(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1, 1) != 3+1i {
		t.Errorf("AddTo result = %v, want 3+1i", a.At(0, 1, 1))
	}
	a.Scale(2i)
	if got := a.At(0, 0, 0); got != complex64((3+1i)*2i) {
		t.Errorf("Scale result = %v", got)
	}
	c := New(Dims{2, 2, 2})
	if err := a.AddTo(c); err == nil {
		t.Error("AddTo with mismatched dims should error")
	}
}

func TestPowerAndMaxAbs(t *testing.T) {
	cb := New(Dims{1, 1, 4})
	cb.Data[0] = 3 + 4i // |.|^2 = 25, |.| = 5
	cb.Data[1] = 1
	if got := cb.Power(); math.Abs(got-26) > 1e-9 {
		t.Errorf("Power = %v, want 26", got)
	}
	if got := cb.MaxAbs(); math.Abs(got-5) > 1e-9 {
		t.Errorf("MaxAbs = %v, want 5", got)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := New(Dims{1, 1, 2})
	b := New(Dims{1, 1, 2})
	a.Data[0] = 1
	b.Data[0] = 1.0001
	if !Equal(a, b, 1e-3) {
		t.Error("Equal should accept within tolerance")
	}
	if Equal(a, b, 1e-6) {
		t.Error("Equal should reject outside tolerance")
	}
	c := New(Dims{1, 2, 1})
	if Equal(a, c, 1) {
		t.Error("Equal should reject different dims")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := Dims{Channels: 4, Pulses: 8, Ranges: 16}
	cb := New(d)
	for i := range cb.Data {
		cb.Data[i] = complex(rng.Float32()-0.5, rng.Float32()-0.5)
	}
	var buf bytes.Buffer
	if err := Write(&buf, cb, 77); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), FileBytes(d); got != want {
		t.Errorf("encoded size = %d, want %d", got, want)
	}
	got, h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 77 {
		t.Errorf("Seq = %d, want 77", h.Seq)
	}
	if h.Dims != d {
		t.Errorf("Dims = %v, want %v", h.Dims, d)
	}
	if !Equal(cb, got, 0) {
		t.Error("decoded cube differs from original")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, cRaw, pRaw, rRaw uint8, seq uint64) bool {
		d := Dims{
			Channels: int(cRaw)%4 + 1,
			Pulses:   int(pRaw)%6 + 1,
			Ranges:   int(rRaw)%16 + 1,
		}
		rng := rand.New(rand.NewSource(seed))
		cb := New(d)
		for i := range cb.Data {
			cb.Data[i] = complex(rng.Float32()*100-50, rng.Float32()*100-50)
		}
		var buf bytes.Buffer
		if err := Write(&buf, cb, seq); err != nil {
			return false
		}
		got, h, err := Read(&buf)
		if err != nil {
			return false
		}
		return h.Seq == seq && h.Dims == d && Equal(cb, got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, 10)); err == nil {
		t.Error("short header should error")
	}
	buf := make([]byte, HeaderSize)
	EncodeHeader(Header{Dims: Dims{1, 1, 1}, Seq: 0}, buf)
	buf[0] = 'X'
	if _, err := DecodeHeader(buf); err == nil {
		t.Error("bad magic should error")
	}
	EncodeHeader(Header{Dims: Dims{1, 1, 1}, Seq: 0}, buf)
	buf[4] = 99 // version
	if _, err := DecodeHeader(buf); err == nil {
		t.Error("bad version should error")
	}
	EncodeHeader(Header{Dims: Dims{0, 1, 1}, Seq: 0}, buf)
	if _, err := DecodeHeader(buf); err == nil {
		t.Error("invalid dims should error")
	}
}

func TestReadTruncated(t *testing.T) {
	d := Dims{1, 1, 4}
	cb := New(d)
	var buf bytes.Buffer
	if err := Write(&buf, cb, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := Read(bytes.NewReader(raw[:HeaderSize+3])); err == nil {
		t.Error("truncated payload should error")
	}
	if _, _, err := Read(bytes.NewReader(raw[:5])); err == nil {
		t.Error("truncated header should error")
	}
}

func TestSplitBasic(t *testing.T) {
	b := Split(10, 3)
	want := []Block{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("Split(10,3)[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSplitProperties(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		nn := int(n) % 5000
		pp := int(parts)%64 + 1
		blocks := Split(nn, pp)
		if len(blocks) != pp {
			return false
		}
		total := 0
		prev := 0
		minLen, maxLen := 1<<30, -1
		for _, b := range blocks {
			if b.Lo != prev || b.Hi < b.Lo {
				return false // not contiguous or negative length
			}
			prev = b.Hi
			total += b.Len()
			if b.Len() < minLen {
				minLen = b.Len()
			}
			if b.Len() > maxLen {
				maxLen = b.Len()
			}
		}
		// Covers [0,n), even to within one item.
		return prev == nn && total == nn && maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("parts=0", func() { Split(10, 0) })
	mustPanic("n<0", func() { Split(-1, 2) })
	mustPanic("New invalid", func() { New(Dims{0, 1, 1}) })
}

func TestOwnerConsistentWithSplit(t *testing.T) {
	f := func(n uint16, parts uint8) bool {
		nn := int(n)%2000 + 1
		pp := int(parts)%32 + 1
		blocks := Split(nn, pp)
		for i := 0; i < nn; i++ {
			o := Owner(nn, pp, i)
			if !blocks[o].Contains(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range item")
		}
	}()
	Owner(5, 2, 5)
}

func TestSplitBlockOffsets(t *testing.T) {
	sub := SplitBlock(Block{100, 110}, 3)
	if sub[0].Lo != 100 || sub[2].Hi != 110 {
		t.Errorf("SplitBlock endpoints wrong: %v", sub)
	}
	total := 0
	for _, b := range sub {
		total += b.Len()
	}
	if total != 10 {
		t.Errorf("SplitBlock total = %d, want 10", total)
	}
}

func TestIOPartitionAndByteRange(t *testing.T) {
	d := Dims{Channels: 4, Pulses: 4, Ranges: 64} // 1024 samples = 8 KiB
	parts := IOPartition(d, 8)
	var covered int64
	prevEnd := int64(0)
	for _, b := range parts {
		off, length := ByteRange(d, b)
		if off != prevEnd {
			t.Errorf("byte ranges not contiguous: off %d, want %d", off, prevEnd)
		}
		if off%8 != 0 || length%8 != 0 {
			t.Errorf("byte range not sample-aligned: off=%d len=%d", off, length)
		}
		prevEnd = off + length
		covered += length
	}
	if covered != d.Bytes() {
		t.Errorf("covered %d bytes, want %d", covered, d.Bytes())
	}
}
