package cube

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzCube builds a small deterministic cube for the seed corpus.
func fuzzCube() *Cube {
	d := Dims{Channels: 2, Pulses: 4, Ranges: 8}
	cb := New(d)
	for i := range cb.Data {
		cb.Data[i] = complex(float32(i), -float32(i))
	}
	return cb
}

// FuzzCodecRoundTrip drives the cube file reader with arbitrary bytes. Two
// invariants: the reader never panics (truncated headers, truncated or
// oversized chunk tables, hostile dims — everything must surface as an
// error), and any input it accepts re-encodes, in both the flat and the
// chunked layout, to a file that decodes back to the same samples.
func FuzzCodecRoundTrip(f *testing.F) {
	cb := fuzzCube()

	// v2 flat frame.
	flat := make([]byte, FileBytes(cb.Dims))
	Encode(cb, 3, flat)
	f.Add(flat)

	// v1 frame: version word 1, no checksum.
	v1 := append([]byte(nil), flat...)
	binary.LittleEndian.PutUint32(v1[4:8], 1)
	binary.LittleEndian.PutUint32(v1[28:32], 0)
	f.Add(v1)

	// v3 chunked frame, plus truncation points inside the chunk table and
	// the payload.
	chunked := make([]byte, FileBytesChunked(cb.Dims, 64))
	EncodeChunked(cb, 3, 64, chunked)
	f.Add(chunked)
	f.Add(chunked[:HeaderSize+2])                     // mid chunk-table preamble
	f.Add(chunked[:HeaderSize+11])                    // mid chunk-CRC table
	f.Add(chunked[:len(chunked)-5])                   // mid payload
	f.Add(flat[:HeaderSize-1])                        // mid header
	f.Add([]byte("SCPI"))                             // magic only
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+16))  // garbage
	corrupt := append([]byte(nil), chunked...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt) // checksum mismatch

	f.Fuzz(func(t *testing.T, data []byte) {
		// The reader trusts the header's dims for its payload allocation,
		// as any consumer of the format must; cap them so the fuzzer
		// explores the codec rather than the allocator.
		if len(data) >= HeaderSize {
			c := uint64(binary.LittleEndian.Uint32(data[8:12]))
			p := uint64(binary.LittleEndian.Uint32(data[12:16]))
			r := uint64(binary.LittleEndian.Uint32(data[16:20]))
			lim := uint64(1) << 17 // 1 MiB of samples
			if c > lim || p > lim || r > lim || c*p*r > lim {
				t.Skip()
			}
		}
		cb, h, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		if !h.Valid() || cb.Dims != h.Dims {
			t.Fatalf("accepted header with dims %v but cube %v", h.Dims, cb.Dims)
		}

		// Accepted input must survive a flat re-encode...
		flat := make([]byte, FileBytes(cb.Dims))
		Encode(cb, h.Seq, flat)
		rcb, rh, err := Read(bytes.NewReader(flat))
		if err != nil {
			t.Fatalf("flat re-encode of accepted input fails to decode: %v", err)
		}
		if rh.Seq != h.Seq {
			t.Fatalf("flat round trip changed seq %d -> %d", h.Seq, rh.Seq)
		}
		if !bytes.Equal(samplesOf(cb), samplesOf(rcb)) {
			t.Fatal("flat round trip changed the samples")
		}

		// ...and a chunked re-encode.
		ch := make([]byte, FileBytesChunked(cb.Dims, 64))
		EncodeChunked(cb, h.Seq, 64, ch)
		ccb, chh, err := Read(bytes.NewReader(ch))
		if err != nil {
			t.Fatalf("chunked re-encode of accepted input fails to decode: %v", err)
		}
		if chh.Seq != h.Seq || chh.Chunks() == 0 {
			t.Fatalf("chunked round trip: seq %d -> %d, %d chunks", h.Seq, chh.Seq, chh.Chunks())
		}
		if !bytes.Equal(samplesOf(cb), samplesOf(ccb)) {
			t.Fatal("chunked round trip changed the samples")
		}
	})
}

// samplesOf returns the cube's payload encoding for comparison.
func samplesOf(cb *Cube) []byte {
	buf := make([]byte, cb.Dims.Bytes())
	EncodeSamples(cb, buf)
	return buf
}
