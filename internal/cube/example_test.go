package cube_test

import (
	"fmt"

	"stapio/internal/cube"
)

// Splitting a task's workload evenly among compute nodes is the basic
// parallelisation step of every pipeline task.
func ExampleSplit() {
	for _, b := range cube.Split(10, 3) {
		fmt.Println(b)
	}
	// Output:
	// [0,4)
	// [4,7)
	// [7,10)
}

// The paper's CPI data cube: 16 channels x 128 pulses x 1024 range gates
// of complex64 samples is exactly a 16 MiB file payload.
func ExampleDims_Bytes() {
	d := cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024}
	fmt.Println(d, "=", d.Bytes()>>20, "MiB")
	// Output:
	// 16ch x 128pulse x 1024range = 16 MiB
}
