package cube

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// File format
//
// A cube file is the unit the radar writes and the STAP pipeline reads.
// It begins with a fixed 32-byte header followed by the flat complex64
// sample array in little-endian (real, imag) float32 pairs:
//
//	offset  size  field
//	0       4     magic "SCPI"
//	4       4     format version (uint32, currently 1)
//	8       4     channels (uint32)
//	12      4     pulses   (uint32)
//	16      4     ranges   (uint32)
//	20      8     CPI sequence number (uint64)
//	28      4     reserved (zero)
//	32      ...   samples
//
// The header size is deliberately smaller than one stripe unit so a file of
// N stripe units occupies N units plus a header tail; the dataset writer
// pads the header region to keep samples stripe-aligned when requested.

// Magic identifies a cube file.
const Magic = "SCPI"

// HeaderSize is the size in bytes of the fixed cube file header.
const HeaderSize = 32

// FormatVersion is the current cube file format version.
const FormatVersion = 1

// Header describes the metadata stored at the front of a cube file.
type Header struct {
	Dims
	Seq uint64 // CPI sequence number
}

// FileBytes returns the total encoded size of a cube with dimensions d:
// header plus payload.
func FileBytes(d Dims) int64 { return HeaderSize + d.Bytes() }

// EncodeHeader writes the 32-byte header for h into buf, which must be at
// least HeaderSize bytes long.
func EncodeHeader(h Header, buf []byte) {
	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(h.Channels))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(h.Pulses))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(h.Ranges))
	binary.LittleEndian.PutUint64(buf[20:28], h.Seq)
	binary.LittleEndian.PutUint32(buf[28:32], 0)
}

// DecodeHeader parses a 32-byte header.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("cube: header too short: %d bytes", len(buf))
	}
	if string(buf[0:4]) != Magic {
		return h, fmt.Errorf("cube: bad magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != FormatVersion {
		return h, fmt.Errorf("cube: unsupported format version %d", v)
	}
	h.Channels = int(binary.LittleEndian.Uint32(buf[8:12]))
	h.Pulses = int(binary.LittleEndian.Uint32(buf[12:16]))
	h.Ranges = int(binary.LittleEndian.Uint32(buf[16:20]))
	h.Seq = binary.LittleEndian.Uint64(buf[20:28])
	if !h.Valid() {
		return h, fmt.Errorf("cube: invalid dimensions in header: %v", h.Dims)
	}
	return h, nil
}

// EncodeSamples serialises the samples of cb into buf, which must be at
// least cb.Bytes() long.
func EncodeSamples(cb *Cube, buf []byte) {
	for i, v := range cb.Data {
		binary.LittleEndian.PutUint32(buf[i*8:], math.Float32bits(real(v)))
		binary.LittleEndian.PutUint32(buf[i*8+4:], math.Float32bits(imag(v)))
	}
}

// DecodeSamples parses len(cb.Data) samples from buf into cb.
func DecodeSamples(cb *Cube, buf []byte) error {
	need := int(cb.Bytes())
	if len(buf) < need {
		return fmt.Errorf("cube: payload too short: have %d want %d", len(buf), need)
	}
	for i := range cb.Data {
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4:]))
		cb.Data[i] = complex(re, im)
	}
	return nil
}

// Write serialises cb with sequence number seq to w.
func Write(w io.Writer, cb *Cube, seq uint64) error {
	buf := make([]byte, FileBytes(cb.Dims))
	EncodeHeader(Header{Dims: cb.Dims, Seq: seq}, buf)
	EncodeSamples(cb, buf[HeaderSize:])
	_, err := w.Write(buf)
	return err
}

// Read parses a full cube file from r.
func Read(r io.Reader) (*Cube, Header, error) {
	hbuf := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hbuf); err != nil {
		return nil, Header{}, fmt.Errorf("cube: reading header: %w", err)
	}
	h, err := DecodeHeader(hbuf)
	if err != nil {
		return nil, Header{}, err
	}
	cb := New(h.Dims)
	pbuf := make([]byte, h.Bytes())
	if _, err := io.ReadFull(r, pbuf); err != nil {
		return nil, Header{}, fmt.Errorf("cube: reading payload: %w", err)
	}
	if err := DecodeSamples(cb, pbuf); err != nil {
		return nil, Header{}, err
	}
	return cb, h, nil
}
