package cube

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// File format
//
// A cube file is the unit the radar writes and the STAP pipeline reads.
// It begins with a fixed 32-byte header followed by the flat complex64
// sample array in little-endian (real, imag) float32 pairs:
//
//	offset  size  field
//	0       4     magic "SCPI"
//	4       4     format version (uint32, currently 2)
//	8       4     channels (uint32)
//	12      4     pulses   (uint32)
//	16      4     ranges   (uint32)
//	20      8     CPI sequence number (uint64)
//	28      4     CRC-32C of the sample payload (v2; zero/unchecked in v1)
//	32      ...   samples
//
// The header size is deliberately smaller than one stripe unit so a file of
// N stripe units occupies N units plus a header tail; the dataset writer
// pads the header region to keep samples stripe-aligned when requested.
//
// Version 2 turns the reserved word into a payload checksum so a bit flip
// anywhere in the sample array — a degraded stripe server, a torn write —
// is detected instead of silently processed. Version-1 files (checksum
// word zero) still decode; their headers report HasChecksum false and the
// payload is accepted unverified. Version 3 (chunks.go) adds a per-chunk
// checksum table between the header and the payload; the header layout
// above is unchanged and its checksum word still covers the whole payload.

// Magic identifies a cube file.
const Magic = "SCPI"

// HeaderSize is the size in bytes of the fixed cube file header.
const HeaderSize = 32

// FormatVersion is the newest cube file format version this package reads
// and writes. Encode/Write still emit the flat version-2 layout;
// EncodeChunked/WriteChunked emit version 3.
const FormatVersion = FormatVersionChunked

// FormatVersionFlat is the flat (chunk-table-free) checksummed format.
const FormatVersionFlat = 2

// Typed codec failures, matched with errors.Is so the pipeline's resilience
// layer can distinguish detected corruption (retryable) from structural
// decode failures.
var (
	// ErrTruncated reports a file shorter than its header claims.
	ErrTruncated = errors.New("cube: truncated file")
	// ErrCorrupt reports a payload or header that fails integrity checks.
	ErrCorrupt = errors.New("cube: corrupt file")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of an encoded sample payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// Header describes the metadata stored at the front of a cube file.
type Header struct {
	Dims
	Seq uint64 // CPI sequence number
	// Checksum is the CRC-32C of the encoded payload (version >= 2).
	Checksum uint32
	// HasChecksum reports whether the file carries a payload checksum
	// (false for version-1 files, which decode unverified).
	HasChecksum bool
	// Version is the file's format version (encoders treat zero as the
	// flat version 2, so literal Headers keep their old meaning).
	Version int
	// ChunkSize is the payload chunk granularity in bytes (version >= 3;
	// zero for flat formats). Always a positive multiple of 8 once decoded.
	ChunkSize int
	// ChunkCRCs is the per-chunk CRC-32C table (version >= 3).
	ChunkCRCs []uint32
}

// FileBytes returns the total encoded size of a cube with dimensions d:
// header plus payload.
func FileBytes(d Dims) int64 { return HeaderSize + d.Bytes() }

// EncodeHeader writes the 32-byte header for h into buf, which must be at
// least HeaderSize bytes long. A zero h.Version encodes as the flat
// version 2.
func EncodeHeader(h Header, buf []byte) {
	v := h.Version
	if v == 0 {
		v = FormatVersionFlat
	}
	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(v))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(h.Channels))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(h.Pulses))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(h.Ranges))
	binary.LittleEndian.PutUint64(buf[20:28], h.Seq)
	binary.LittleEndian.PutUint32(buf[28:32], h.Checksum)
}

// DecodeHeader parses a 32-byte header.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("%w: header is %d bytes, want %d", ErrTruncated, len(buf), HeaderSize)
	}
	if string(buf[0:4]) != Magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:4])
	}
	v := binary.LittleEndian.Uint32(buf[4:8])
	if v < 1 || v > FormatVersion {
		return h, fmt.Errorf("cube: unsupported format version %d", v)
	}
	h.Version = int(v)
	h.Channels = int(binary.LittleEndian.Uint32(buf[8:12]))
	h.Pulses = int(binary.LittleEndian.Uint32(buf[12:16]))
	h.Ranges = int(binary.LittleEndian.Uint32(buf[16:20]))
	h.Seq = binary.LittleEndian.Uint64(buf[20:28])
	if v >= 2 {
		h.Checksum = binary.LittleEndian.Uint32(buf[28:32])
		h.HasChecksum = true
	}
	if !h.Valid() {
		return h, fmt.Errorf("%w: invalid dimensions in header: %v", ErrCorrupt, h.Dims)
	}
	// Bound each dimension so the sample count cannot overflow (and so a
	// corrupt header cannot demand a preposterous payload allocation from
	// a reader that trusts it). Real radar geometries sit far below this.
	if h.Channels > maxDim || h.Pulses > maxDim || h.Ranges > maxDim {
		return h, fmt.Errorf("%w: implausible dimensions in header: %v", ErrCorrupt, h.Dims)
	}
	return h, nil
}

// maxDim bounds each header dimension; three maxed dimensions still keep
// Dims.Bytes comfortably inside int64.
const maxDim = 1 << 16

// VerifyPayload checks an encoded payload against the header's checksum.
// Version-1 headers carry none, so they pass; a length shortfall reports
// ErrTruncated and a checksum mismatch ErrCorrupt.
func VerifyPayload(h Header, payload []byte) error {
	if int64(len(payload)) < h.Bytes() {
		return fmt.Errorf("%w: payload is %d bytes, want %d", ErrTruncated, len(payload), h.Bytes())
	}
	if !h.HasChecksum {
		return nil
	}
	if got := Checksum(payload[:h.Bytes()]); got != h.Checksum {
		return fmt.Errorf("%w: payload CRC %08x, header says %08x (CPI %d)", ErrCorrupt, got, h.Checksum, h.Seq)
	}
	return nil
}

// EncodeSamples serialises the samples of cb into buf, which must be at
// least cb.Bytes() long.
func EncodeSamples(cb *Cube, buf []byte) {
	for i, v := range cb.Data {
		binary.LittleEndian.PutUint32(buf[i*8:], math.Float32bits(real(v)))
		binary.LittleEndian.PutUint32(buf[i*8+4:], math.Float32bits(imag(v)))
	}
}

// DecodeSamples parses len(cb.Data) samples from buf into cb.
func DecodeSamples(cb *Cube, buf []byte) error {
	need := int(cb.Bytes())
	if len(buf) < need {
		return fmt.Errorf("cube: payload too short: have %d want %d", len(buf), need)
	}
	DecodeSampleRange(cb, buf, 0, len(cb.Data))
	return nil
}

// DecodeSampleRange parses samples [lo, hi) from the full payload buf into
// cb — the shard a decode worker handles. Bounds are the caller's problem
// (the chunk table guarantees sample-aligned spans).
func DecodeSampleRange(cb *Cube, buf []byte, lo, hi int) {
	for i := lo; i < hi; i++ {
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4:]))
		cb.Data[i] = complex(re, im)
	}
}

// Encode serialises cb with sequence number seq into buf, which must be at
// least FileBytes(cb.Dims) long: samples first, then the header carrying
// their checksum.
func Encode(cb *Cube, seq uint64, buf []byte) {
	EncodeSamples(cb, buf[HeaderSize:])
	h := Header{Dims: cb.Dims, Seq: seq, HasChecksum: true}
	h.Checksum = Checksum(buf[HeaderSize : HeaderSize+cb.Bytes()])
	EncodeHeader(h, buf)
}

// PatchSeq restamps the CPI sequence number of an already encoded cube
// file in place. The sequence number lives in the fixed header, outside
// every checksum (the payload CRC and the v3 chunk table cover samples
// only), so replaying one encoded cube under many sequence numbers — the
// network load generator's trick — costs a header patch, not a re-encode.
func PatchSeq(file []byte, seq uint64) error {
	if len(file) < HeaderSize {
		return fmt.Errorf("%w: file is %d bytes, want at least %d", ErrTruncated, len(file), HeaderSize)
	}
	if string(file[0:4]) != Magic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, file[0:4])
	}
	binary.LittleEndian.PutUint64(file[20:28], seq)
	return nil
}

// sizedBuf returns buf resliced to n bytes, reusing its capacity when it
// suffices and allocating otherwise.
func sizedBuf(buf []byte, n int64) []byte {
	if int64(cap(buf)) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}

// Write serialises cb with sequence number seq to w in the flat version-2
// format, allocating a transient file-sized buffer. Hot paths should use
// WriteBuf with a pooled buffer instead.
func Write(w io.Writer, cb *Cube, seq uint64) error {
	return WriteBuf(w, cb, seq, nil)
}

// WriteBuf is Write with a caller-supplied scratch buffer: when buf has
// capacity for the encoded file it is reused and the call allocates
// nothing. A nil or undersized buf falls back to allocating.
func WriteBuf(w io.Writer, cb *Cube, seq uint64, buf []byte) error {
	buf = sizedBuf(buf, FileBytes(cb.Dims))
	Encode(cb, seq, buf)
	_, err := w.Write(buf)
	return err
}

// WriteChunked serialises cb to w in the chunked version-3 format, reusing
// buf as scratch when it is large enough (nil allocates).
func WriteChunked(w io.Writer, cb *Cube, seq uint64, chunkSize int, buf []byte) error {
	buf = sizedBuf(buf, FileBytesChunked(cb.Dims, chunkSize))
	EncodeChunked(cb, seq, chunkSize, buf)
	_, err := w.Write(buf)
	return err
}

// readFull wraps io.ReadFull, typing short reads as ErrTruncated.
func readFull(r io.Reader, buf []byte, what string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return fmt.Errorf("cube: reading %s: %w", what, err)
	}
	return nil
}

// Read parses a full cube file (any supported version) from r, verifying
// its checksums.
func Read(r io.Reader) (*Cube, Header, error) {
	return ReadBuf(r, nil, nil)
}

// ReadBuf is Read with caller-supplied reuse: a cube of matching dimensions
// is decoded into rather than freshly allocated, and buf serves as the read
// scratch when large enough. Apart from the header's chunk-CRC table (v3
// files only) a sized call allocates nothing.
func ReadBuf(r io.Reader, cb *Cube, buf []byte) (*Cube, Header, error) {
	buf = sizedBuf(buf, HeaderSize)
	if err := readFull(r, buf[:HeaderSize], "header"); err != nil {
		return nil, Header{}, err
	}
	h, err := DecodeHeader(buf[:HeaderSize])
	if err != nil {
		return nil, Header{}, err
	}
	if h.Version >= FormatVersionChunked {
		// The table size depends on the chunk size, so read its fixed
		// preamble first, then the CRCs.
		pre := sizedBuf(buf, chunkTableFixed)
		if err := readFull(r, pre, "chunk table"); err != nil {
			return nil, Header{}, err
		}
		cs := int(binary.LittleEndian.Uint32(pre[0:4]))
		if !validChunkSize(cs) {
			return nil, Header{}, fmt.Errorf("%w: chunk size %d is not a positive multiple of 8", ErrCorrupt, cs)
		}
		table := make([]byte, chunkTableFixed+4*chunkCount(h.Bytes(), cs))
		copy(table, pre)
		if err := readFull(r, table[chunkTableFixed:], "chunk table"); err != nil {
			return nil, Header{}, err
		}
		if err := DecodeChunkTable(&h, table); err != nil {
			return nil, Header{}, err
		}
	}
	pbuf := sizedBuf(buf, h.Bytes())
	if err := readFull(r, pbuf, "payload"); err != nil {
		return nil, Header{}, err
	}
	if h.Chunks() > 0 {
		bad, err := VerifyChunks(&h, pbuf, 0, h.Chunks(), nil)
		if err != nil {
			return nil, Header{}, err
		}
		if len(bad) > 0 {
			return nil, Header{}, fmt.Errorf("%w: %d of %d chunks failed their CRC (first: chunk %d; CPI %d)",
				ErrCorrupt, len(bad), h.Chunks(), bad[0], h.Seq)
		}
	} else if err := VerifyPayload(h, pbuf); err != nil {
		return nil, Header{}, err
	}
	if cb == nil || cb.Dims != h.Dims {
		cb = New(h.Dims)
	}
	if err := DecodeSamples(cb, pbuf); err != nil {
		return nil, Header{}, err
	}
	return cb, h, nil
}
