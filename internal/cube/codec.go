package cube

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// File format
//
// A cube file is the unit the radar writes and the STAP pipeline reads.
// It begins with a fixed 32-byte header followed by the flat complex64
// sample array in little-endian (real, imag) float32 pairs:
//
//	offset  size  field
//	0       4     magic "SCPI"
//	4       4     format version (uint32, currently 2)
//	8       4     channels (uint32)
//	12      4     pulses   (uint32)
//	16      4     ranges   (uint32)
//	20      8     CPI sequence number (uint64)
//	28      4     CRC-32C of the sample payload (v2; zero/unchecked in v1)
//	32      ...   samples
//
// The header size is deliberately smaller than one stripe unit so a file of
// N stripe units occupies N units plus a header tail; the dataset writer
// pads the header region to keep samples stripe-aligned when requested.
//
// Version 2 turns the reserved word into a payload checksum so a bit flip
// anywhere in the sample array — a degraded stripe server, a torn write —
// is detected instead of silently processed. Version-1 files (checksum
// word zero) still decode; their headers report HasChecksum false and the
// payload is accepted unverified.

// Magic identifies a cube file.
const Magic = "SCPI"

// HeaderSize is the size in bytes of the fixed cube file header.
const HeaderSize = 32

// FormatVersion is the current cube file format version.
const FormatVersion = 2

// Typed codec failures, matched with errors.Is so the pipeline's resilience
// layer can distinguish detected corruption (retryable) from structural
// decode failures.
var (
	// ErrTruncated reports a file shorter than its header claims.
	ErrTruncated = errors.New("cube: truncated file")
	// ErrCorrupt reports a payload or header that fails integrity checks.
	ErrCorrupt = errors.New("cube: corrupt file")
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of an encoded sample payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// Header describes the metadata stored at the front of a cube file.
type Header struct {
	Dims
	Seq uint64 // CPI sequence number
	// Checksum is the CRC-32C of the encoded payload (version >= 2).
	Checksum uint32
	// HasChecksum reports whether the file carries a payload checksum
	// (false for version-1 files, which decode unverified).
	HasChecksum bool
}

// FileBytes returns the total encoded size of a cube with dimensions d:
// header plus payload.
func FileBytes(d Dims) int64 { return HeaderSize + d.Bytes() }

// EncodeHeader writes the 32-byte header for h into buf, which must be at
// least HeaderSize bytes long.
func EncodeHeader(h Header, buf []byte) {
	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(h.Channels))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(h.Pulses))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(h.Ranges))
	binary.LittleEndian.PutUint64(buf[20:28], h.Seq)
	binary.LittleEndian.PutUint32(buf[28:32], h.Checksum)
}

// DecodeHeader parses a 32-byte header.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderSize {
		return h, fmt.Errorf("%w: header is %d bytes, want %d", ErrTruncated, len(buf), HeaderSize)
	}
	if string(buf[0:4]) != Magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:4])
	}
	v := binary.LittleEndian.Uint32(buf[4:8])
	if v < 1 || v > FormatVersion {
		return h, fmt.Errorf("cube: unsupported format version %d", v)
	}
	h.Channels = int(binary.LittleEndian.Uint32(buf[8:12]))
	h.Pulses = int(binary.LittleEndian.Uint32(buf[12:16]))
	h.Ranges = int(binary.LittleEndian.Uint32(buf[16:20]))
	h.Seq = binary.LittleEndian.Uint64(buf[20:28])
	if v >= 2 {
		h.Checksum = binary.LittleEndian.Uint32(buf[28:32])
		h.HasChecksum = true
	}
	if !h.Valid() {
		return h, fmt.Errorf("%w: invalid dimensions in header: %v", ErrCorrupt, h.Dims)
	}
	return h, nil
}

// VerifyPayload checks an encoded payload against the header's checksum.
// Version-1 headers carry none, so they pass; a length shortfall reports
// ErrTruncated and a checksum mismatch ErrCorrupt.
func VerifyPayload(h Header, payload []byte) error {
	if int64(len(payload)) < h.Bytes() {
		return fmt.Errorf("%w: payload is %d bytes, want %d", ErrTruncated, len(payload), h.Bytes())
	}
	if !h.HasChecksum {
		return nil
	}
	if got := Checksum(payload[:h.Bytes()]); got != h.Checksum {
		return fmt.Errorf("%w: payload CRC %08x, header says %08x (CPI %d)", ErrCorrupt, got, h.Checksum, h.Seq)
	}
	return nil
}

// EncodeSamples serialises the samples of cb into buf, which must be at
// least cb.Bytes() long.
func EncodeSamples(cb *Cube, buf []byte) {
	for i, v := range cb.Data {
		binary.LittleEndian.PutUint32(buf[i*8:], math.Float32bits(real(v)))
		binary.LittleEndian.PutUint32(buf[i*8+4:], math.Float32bits(imag(v)))
	}
}

// DecodeSamples parses len(cb.Data) samples from buf into cb.
func DecodeSamples(cb *Cube, buf []byte) error {
	need := int(cb.Bytes())
	if len(buf) < need {
		return fmt.Errorf("cube: payload too short: have %d want %d", len(buf), need)
	}
	for i := range cb.Data {
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4:]))
		cb.Data[i] = complex(re, im)
	}
	return nil
}

// Encode serialises cb with sequence number seq into buf, which must be at
// least FileBytes(cb.Dims) long: samples first, then the header carrying
// their checksum.
func Encode(cb *Cube, seq uint64, buf []byte) {
	EncodeSamples(cb, buf[HeaderSize:])
	h := Header{Dims: cb.Dims, Seq: seq, HasChecksum: true}
	h.Checksum = Checksum(buf[HeaderSize : HeaderSize+cb.Bytes()])
	EncodeHeader(h, buf)
}

// Write serialises cb with sequence number seq to w.
func Write(w io.Writer, cb *Cube, seq uint64) error {
	buf := make([]byte, FileBytes(cb.Dims))
	Encode(cb, seq, buf)
	_, err := w.Write(buf)
	return err
}

// Read parses a full cube file from r, verifying the payload checksum.
func Read(r io.Reader) (*Cube, Header, error) {
	hbuf := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hbuf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return nil, Header{}, fmt.Errorf("cube: reading header: %w", err)
	}
	h, err := DecodeHeader(hbuf)
	if err != nil {
		return nil, Header{}, err
	}
	cb := New(h.Dims)
	pbuf := make([]byte, h.Bytes())
	if _, err := io.ReadFull(r, pbuf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return nil, Header{}, fmt.Errorf("cube: reading payload: %w", err)
	}
	if err := VerifyPayload(h, pbuf); err != nil {
		return nil, Header{}, err
	}
	if err := DecodeSamples(cb, pbuf); err != nil {
		return nil, Header{}, err
	}
	return cb, h, nil
}
