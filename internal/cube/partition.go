package cube

import "fmt"

// Partitioning helpers. Every task of the parallel pipeline evenly divides
// its workload among its compute nodes; the unit of division differs per
// task (range gates for Doppler filtering, Doppler bins for weight
// computation and beamforming, beam/Doppler pairs for pulse compression and
// CFAR). Block is the common currency: a half-open interval of work items.

// Block is a half-open interval [Lo, Hi) of work-item indices.
type Block struct {
	Lo, Hi int
}

// Len returns the number of items in the block.
func (b Block) Len() int { return b.Hi - b.Lo }

// Contains reports whether i falls inside the block.
func (b Block) Contains(i int) bool { return i >= b.Lo && i < b.Hi }

// String implements fmt.Stringer.
func (b Block) String() string { return fmt.Sprintf("[%d,%d)", b.Lo, b.Hi) }

// Split divides n work items as evenly as possible among parts workers and
// returns one block per worker. The first n%parts workers receive one extra
// item. Blocks are contiguous, disjoint, and cover [0, n). Split panics if
// parts <= 0 or n < 0.
func Split(n, parts int) []Block {
	if parts <= 0 {
		panic(fmt.Sprintf("cube: Split parts must be positive, got %d", parts))
	}
	if n < 0 {
		panic(fmt.Sprintf("cube: Split n must be non-negative, got %d", n))
	}
	blocks := make([]Block, parts)
	base := n / parts
	extra := n % parts
	lo := 0
	for i := range blocks {
		size := base
		if i < extra {
			size++
		}
		blocks[i] = Block{Lo: lo, Hi: lo + size}
		lo += size
	}
	return blocks
}

// SplitBlock is like Split but subdivides an existing block.
func SplitBlock(b Block, parts int) []Block {
	sub := Split(b.Len(), parts)
	for i := range sub {
		sub[i].Lo += b.Lo
		sub[i].Hi += b.Lo
	}
	return sub
}

// Owner returns the index of the worker that owns item i under Split(n,
// parts). It panics if i is out of [0, n).
func Owner(n, parts, i int) int {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("cube: Owner item %d out of range [0,%d)", i, n))
	}
	base := n / parts
	extra := n % parts
	// The first `extra` workers own base+1 items each.
	wide := extra * (base + 1)
	if i < wide {
		return i / (base + 1)
	}
	if base == 0 {
		// All items are owned by the first `extra` workers; unreachable
		// because i < n = wide in that case.
		panic("cube: Owner internal inconsistency")
	}
	return extra + (i-wide)/base
}

// ByteRange maps a block of range-gate-major samples for a set of channels
// into the byte interval of the cube file payload it occupies. It is used
// by the I/O nodes: node k of the first task reads the byte range of the
// file holding its exclusive portion of the cube. The interval is relative
// to the start of the payload (add HeaderSize for the file offset).
//
// The flat layout is channel-major, so an I/O partition over flat sample
// indices is contiguous on disk. Partition the full sample count and
// convert:
func ByteRange(d Dims, b Block) (off, length int64) {
	return int64(b.Lo) * 8, int64(b.Len()) * 8
}

// IOPartition partitions a cube file's payload among p reader nodes and
// returns, per node, the byte offset (relative to payload start) and
// length it must read. Partitions are 8-byte aligned (whole samples).
func IOPartition(d Dims, p int) []Block {
	return Split(d.Samples(), p)
}
