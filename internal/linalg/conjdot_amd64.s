//go:build amd64

#include "textflag.h"

// Conjugated-dot panel kernels (see conjdot.go for the reduction
// contract). Each complex128 is one xmm register: lane 0 real, lane 1
// imag. Per (beam, k) step the kernels run two packed fused
// multiply-adds,
//
//	P += [wr, wi] * [sr, si]   (lanes p0, p1)
//	Q += [wr, wi] * [si, sr]   (lanes q0, q1)
//
// and combine each accumulator pair once per row as (p0+p1, q0-q1) —
// exactly the math.FMA lanes of the generic path, so asm and generic
// agree bit for bit. Register plan: SI panel row, DI k byte offset,
// AX stride bytes, CX dof bytes, DX rows remaining, R8-R10 weights,
// R11-R13 outputs. Callers guarantee dof > 0 and n > 0.

// func conjDotPanel1Asm(panel *complex128, stride, dof, n int, w0, o0 *complex128)
TEXT ·conjDotPanel1Asm(SB), NOSPLIT, $0-48
	MOVQ panel+0(FP), SI
	MOVQ stride+8(FP), AX
	SHLQ $4, AX
	MOVQ dof+16(FP), CX
	SHLQ $4, CX
	MOVQ n+24(FP), DX
	MOVQ w0+32(FP), R8
	MOVQ o0+40(FP), R11

r1:
	TESTQ DX, DX
	JZ   done1
	VXORPD X0, X0, X0
	VXORPD X1, X1, X1
	XORQ DI, DI

k1:
	VMOVUPD (SI)(DI*1), X6
	VPERMILPD $1, X6, X7
	VMOVUPD (R8)(DI*1), X8
	VFMADD231PD X6, X8, X0
	VFMADD231PD X7, X8, X1
	ADDQ $16, DI
	CMPQ DI, CX
	JL   k1

	VPERMILPD $1, X0, X6
	VADDSD X6, X0, X0
	VPERMILPD $1, X1, X7
	VSUBSD X7, X1, X1
	VUNPCKLPD X1, X0, X0
	VMOVUPD X0, (R11)
	ADDQ AX, SI
	ADDQ $16, R11
	DECQ DX
	JMP  r1

done1:
	RET

// func conjDotPanel2Asm(panel *complex128, stride, dof, n int, w0, w1, o0, o1 *complex128)
TEXT ·conjDotPanel2Asm(SB), NOSPLIT, $0-64
	MOVQ panel+0(FP), SI
	MOVQ stride+8(FP), AX
	SHLQ $4, AX
	MOVQ dof+16(FP), CX
	SHLQ $4, CX
	MOVQ n+24(FP), DX
	MOVQ w0+32(FP), R8
	MOVQ w1+40(FP), R9
	MOVQ o0+48(FP), R11
	MOVQ o1+56(FP), R12

r2:
	TESTQ DX, DX
	JZ   done2
	VXORPD X0, X0, X0
	VXORPD X1, X1, X1
	VXORPD X2, X2, X2
	VXORPD X3, X3, X3
	XORQ DI, DI

k2:
	VMOVUPD (SI)(DI*1), X6
	VPERMILPD $1, X6, X7
	VMOVUPD (R8)(DI*1), X8
	VFMADD231PD X6, X8, X0
	VFMADD231PD X7, X8, X1
	VMOVUPD (R9)(DI*1), X9
	VFMADD231PD X6, X9, X2
	VFMADD231PD X7, X9, X3
	ADDQ $16, DI
	CMPQ DI, CX
	JL   k2

	VPERMILPD $1, X0, X6
	VADDSD X6, X0, X0
	VPERMILPD $1, X1, X7
	VSUBSD X7, X1, X1
	VUNPCKLPD X1, X0, X0
	VMOVUPD X0, (R11)
	VPERMILPD $1, X2, X6
	VADDSD X6, X2, X2
	VPERMILPD $1, X3, X7
	VSUBSD X7, X3, X3
	VUNPCKLPD X3, X2, X2
	VMOVUPD X2, (R12)
	ADDQ AX, SI
	ADDQ $16, R11
	ADDQ $16, R12
	DECQ DX
	JMP  r2

done2:
	RET

// func conjDotPanel3Asm(panel *complex128, stride, dof, n int, w0, w1, w2, o0, o1, o2 *complex128)
TEXT ·conjDotPanel3Asm(SB), NOSPLIT, $0-80
	MOVQ panel+0(FP), SI
	MOVQ stride+8(FP), AX
	SHLQ $4, AX
	MOVQ dof+16(FP), CX
	SHLQ $4, CX
	MOVQ n+24(FP), DX
	MOVQ w0+32(FP), R8
	MOVQ w1+40(FP), R9
	MOVQ w2+48(FP), R10
	MOVQ o0+56(FP), R11
	MOVQ o1+64(FP), R12
	MOVQ o2+72(FP), R13

r3:
	TESTQ DX, DX
	JZ   done3
	VXORPD X0, X0, X0
	VXORPD X1, X1, X1
	VXORPD X2, X2, X2
	VXORPD X3, X3, X3
	VXORPD X4, X4, X4
	VXORPD X5, X5, X5
	XORQ DI, DI

k3:
	VMOVUPD (SI)(DI*1), X6
	VPERMILPD $1, X6, X7
	VMOVUPD (R8)(DI*1), X8
	VFMADD231PD X6, X8, X0
	VFMADD231PD X7, X8, X1
	VMOVUPD (R9)(DI*1), X9
	VFMADD231PD X6, X9, X2
	VFMADD231PD X7, X9, X3
	VMOVUPD (R10)(DI*1), X10
	VFMADD231PD X6, X10, X4
	VFMADD231PD X7, X10, X5
	ADDQ $16, DI
	CMPQ DI, CX
	JL   k3

	VPERMILPD $1, X0, X6
	VADDSD X6, X0, X0
	VPERMILPD $1, X1, X7
	VSUBSD X7, X1, X1
	VUNPCKLPD X1, X0, X0
	VMOVUPD X0, (R11)
	VPERMILPD $1, X2, X6
	VADDSD X6, X2, X2
	VPERMILPD $1, X3, X7
	VSUBSD X7, X3, X3
	VUNPCKLPD X3, X2, X2
	VMOVUPD X2, (R12)
	VPERMILPD $1, X4, X6
	VADDSD X6, X4, X4
	VPERMILPD $1, X5, X7
	VSUBSD X7, X5, X5
	VUNPCKLPD X5, X4, X4
	VMOVUPD X4, (R13)
	ADDQ AX, SI
	ADDQ $16, R11
	ADDQ $16, R12
	ADDQ $16, R13
	DECQ DX
	JMP  r3

done3:
	RET
