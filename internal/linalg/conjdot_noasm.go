//go:build !amd64

package linalg

func conjDotPanel1(panel []complex128, stride, dof, n int, w0, o0 []complex128) {
	conjDotPanel1Generic(panel, stride, dof, n, w0, o0)
}

func conjDotPanel2(panel []complex128, stride, dof, n int, w0, w1, o0, o1 []complex128) {
	conjDotPanel2Generic(panel, stride, dof, n, w0, w1, o0, o1)
}

func conjDotPanel3(panel []complex128, stride, dof, n int, w0, w1, w2, o0, o1, o2 []complex128) {
	conjDotPanel3Generic(panel, stride, dof, n, w0, w1, w2, o0, o1, o2)
}
