// Package linalg implements the dense complex linear algebra needed by the
// STAP weight-computation tasks: matrix/vector products, Hermitian
// outer-product accumulation (sample covariance), Cholesky and Householder
// QR factorizations, and triangular solves. Everything is complex128 and
// row-major.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, element (i,j) at i*Cols+j
}

// NewMatrix allocates a zero r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d)", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MulVec computes y = m * x. len(x) must equal m.Cols; if y is nil a new
// slice is allocated, otherwise len(y) must equal m.Rows.
func (m *Matrix) MulVec(x, y []complex128) []complex128 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec len(x)=%d, Cols=%d", len(x), m.Cols))
	}
	if y == nil {
		y = make([]complex128, m.Rows)
	}
	if len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec len(y)=%d, Rows=%d", len(y), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var sum complex128
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// Mul computes and returns a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// ConjTranspose returns the Hermitian transpose m^H.
func (m *Matrix) ConjTranspose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// AddScaledIdentity adds s to every diagonal element of the square matrix m
// (diagonal loading of a sample covariance estimate).
func (m *Matrix) AddScaledIdentity(s complex128) {
	if m.Rows != m.Cols {
		panic("linalg: AddScaledIdentity on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += s
	}
}

// AccumulateOuter adds x * x^H (scaled by w) into the square matrix m:
// m += w * x x^H. This is the inner loop of sample covariance estimation.
func (m *Matrix) AccumulateOuter(x []complex128, w float64) {
	if m.Rows != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: AccumulateOuter dims %dx%d, len(x)=%d", m.Rows, m.Cols, len(x)))
	}
	for i := range x {
		xi := x[i] * complex(w, 0)
		row := m.Row(i)
		for j := range x {
			row[j] += xi * cmplx.Conj(x[j])
		}
	}
}

// SampleCovariance estimates R = (1/K) * sum_k x_k x_k^H from K training
// snapshots (each of dimension n) and applies diagonal loading delta*I.
// snapshots must be non-empty and all of equal length.
func SampleCovariance(snapshots [][]complex128, delta float64) *Matrix {
	if len(snapshots) == 0 {
		panic("linalg: SampleCovariance with no snapshots")
	}
	n := len(snapshots[0])
	r := NewMatrix(n, n)
	w := 1 / float64(len(snapshots))
	for _, x := range snapshots {
		if len(x) != n {
			panic("linalg: SampleCovariance snapshot length mismatch")
		}
		r.AccumulateOuter(x, w)
	}
	r.AddScaledIdentity(complex(delta, 0))
	return r
}

// Dot returns the Hermitian inner product x^H y.
func Dot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot len %d vs %d", len(x), len(y)))
	}
	var sum complex128
	for i := range x {
		sum += cmplx.Conj(x[i]) * y[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest element-wise magnitude difference between
// a and b, which must have identical shape.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// IsHermitian reports whether m equals its conjugate transpose within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}
