package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for the blocked and batched kernels: the cache-blocked GEMM, the
// blocked Hermitian panel update, and the conjugated-dot panel strips that
// back beamforming. The blocked kernels must agree with the scalar
// reference implementations to tight relative tolerance on awkward
// geometries (tile remainders, single rows, panels wider than the block),
// the panel update must be exactly Hermitian, and the asm and generic
// conj-dot paths must agree bit for bit.

func maxRelDiff(a, b *Matrix) float64 {
	var worst float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		mag := math.Max(1, math.Hypot(real(b.Data[i]), imag(b.Data[i])))
		if e := math.Hypot(real(d), imag(d)) / mag; e > worst {
			worst = e
		}
	}
	return worst
}

func TestMulBlockedMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 16, 5}, {16, 8, 512}, {33, 65, 257}, {40, 70, 300},
	} {
		a := randMatrix(rng, dims.m, dims.k)
		b := randMatrix(rng, dims.k, dims.n)
		want := Mul(a, b)
		got := MulBlocked(a, b)
		if e := maxRelDiff(got, want); e > 1e-12 {
			t.Errorf("MulBlocked %dx%dx%d: max relative error %g vs Mul", dims.m, dims.k, dims.n, e)
		}
	}
}

func TestMulBlockedIntoRejectsBadShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 5) // inner mismatch
	defer func() {
		if recover() == nil {
			t.Fatal("MulBlockedInto accepted mismatched inner dimensions")
		}
	}()
	MulBlockedInto(a, b, NewMatrix(2, 5))
}

func TestAccumulatePanelMatchesOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range []struct{ dof, gates int }{
		{1, 1}, {8, 16}, {16, 40}, {5, 7}, {16, 3},
	} {
		ref := NewMatrix(dims.dof, dims.dof)
		got := NewMatrix(dims.dof, dims.dof)
		panel := make([]complex128, dims.gates*dims.dof)
		for i := range panel {
			panel[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		w := 1 / float64(dims.gates)
		for g := 0; g < dims.gates; g++ {
			ref.AccumulateOuter(panel[g*dims.dof:(g+1)*dims.dof], w)
		}
		got.AccumulatePanel(panel, dims.gates, w)
		if e := maxRelDiff(got, ref); e > 1e-12 {
			t.Errorf("AccumulatePanel dof=%d gates=%d: max relative error %g vs AccumulateOuter",
				dims.dof, dims.gates, e)
		}
		// The blocked update mirrors the strict upper triangle by
		// conjugation, so Hermitian symmetry is exact, not approximate.
		for i := 0; i < dims.dof; i++ {
			for j := i + 1; j < dims.dof; j++ {
				u, l := got.At(i, j), got.At(j, i)
				if real(u) != real(l) || imag(u) != -imag(l) {
					t.Fatalf("AccumulatePanel dof=%d: (%d,%d)=%v not the exact conjugate of (%d,%d)=%v",
						dims.dof, i, j, u, j, i, l)
				}
			}
		}
	}
}

func TestAccumulatePanelSplitSchedule(t *testing.T) {
	// Splitting the gates across two flushes reassociates the per-element
	// sums, so it only matches a single flush to rounding — which is why
	// the covariance accumulation-order contract fixes the panel
	// boundaries globally (stap.covPanelGates) instead of letting band
	// geometry choose them. Here the split must stay within tolerance,
	// and repeating the identical schedule must reproduce itself exactly.
	rng := rand.New(rand.NewSource(9))
	const dof, gates = 6, 10
	panel := make([]complex128, gates*dof)
	for i := range panel {
		panel[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	whole := NewMatrix(dof, dof)
	whole.AccumulatePanel(panel, gates, 0.25)
	split := NewMatrix(dof, dof)
	split.AccumulatePanel(panel[:4*dof], 4, 0.25)
	split.AccumulatePanel(panel[4*dof:], gates-4, 0.25)
	if e := maxRelDiff(split, whole); e > 1e-12 {
		t.Errorf("split panel schedule drifted %g from single flush", e)
	}
	again := NewMatrix(dof, dof)
	again.AccumulatePanel(panel[:4*dof], 4, 0.25)
	again.AccumulatePanel(panel[4*dof:], gates-4, 0.25)
	for i := range split.Data {
		if split.Data[i] != again.Data[i] {
			t.Fatalf("identical panel schedule diverged at %d: %v vs %v", i, split.Data[i], again.Data[i])
		}
	}
}

func conjDotRef(w, snap []complex128) complex128 {
	// Scalar reference: plain conjugated dot, ascending index.
	var acc complex128
	for k := range w {
		acc += complex(real(w[k]), -imag(w[k])) * snap[k]
	}
	return acc
}

func TestConjDotPanelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, c := range []struct{ beams, stride, dof, n int }{
		{1, 8, 8, 17}, {2, 16, 16, 53}, {3, 16, 8, 512}, {4, 10, 7, 33}, {5, 9, 9, 1},
	} {
		panel := make([]complex128, c.n*c.stride)
		for i := range panel {
			panel[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		w := make([][]complex128, c.beams)
		o := make([][]complex128, c.beams)
		for b := range w {
			w[b] = make([]complex128, c.dof)
			for k := range w[b] {
				w[b][k] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			o[b] = make([]complex128, c.n)
		}
		ConjDotPanel(panel, c.stride, c.dof, c.n, w, o)
		for b := range w {
			for r := 0; r < c.n; r++ {
				want := conjDotRef(w[b], panel[r*c.stride:r*c.stride+c.dof])
				got := o[b][r]
				d := got - want
				if math.Hypot(real(d), imag(d)) > 1e-9*math.Max(1, math.Hypot(real(want), imag(want))) {
					t.Fatalf("beams=%d dof=%d: o[%d][%d] = %v, reference %v", c.beams, c.dof, b, r, got, want)
				}
			}
		}
	}
}

func TestConjDotPanelAsmMatchesGeneric(t *testing.T) {
	// The dispatch (asm on amd64 with FMA, generic elsewhere) must be
	// invisible: both run the same fused-lane reduction, so outputs are
	// bit-identical, not merely close. On platforms without the asm path
	// this compares the generic path with itself and passes trivially.
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ stride, dof, n int }{
		{8, 8, 64}, {16, 16, 53}, {16, 13, 7}, {1, 1, 3},
	} {
		panel := make([]complex128, c.n*c.stride)
		for i := range panel {
			panel[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ws := make([][]complex128, 3)
		for b := range ws {
			ws[b] = make([]complex128, c.dof)
			for k := range ws[b] {
				ws[b][k] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		got := [3][]complex128{}
		want := [3][]complex128{}
		for b := range got {
			got[b] = make([]complex128, c.n)
			want[b] = make([]complex128, c.n)
		}
		// One beam at a time, two at a time, three at a time: every strip
		// width must match its generic twin exactly.
		ConjDotPanel1(panel, c.stride, c.dof, c.n, ws[0], got[0])
		conjDotPanel1Generic(panel, c.stride, c.dof, c.n, ws[0], want[0])
		ConjDotPanel2(panel, c.stride, c.dof, c.n, ws[0], ws[1], got[0], got[1])
		conjDotPanel2Generic(panel, c.stride, c.dof, c.n, ws[0], ws[1], want[0], want[1])
		ConjDotPanel3(panel, c.stride, c.dof, c.n, ws[0], ws[1], ws[2], got[0], got[1], got[2])
		conjDotPanel3Generic(panel, c.stride, c.dof, c.n, ws[0], ws[1], ws[2], want[0], want[1], want[2])
		for b := range got {
			for r := range got[b] {
				if got[b][r] != want[b][r] {
					t.Fatalf("stride=%d dof=%d n=%d: strip output [%d][%d] = %v, generic %v",
						c.stride, c.dof, c.n, b, r, got[b][r], want[b][r])
				}
			}
		}
	}
}

func TestBlockedKernelsZeroAlloc(t *testing.T) {
	a := NewMatrix(16, 16)
	b := NewMatrix(16, 512)
	out := NewMatrix(16, 512)
	for i := range a.Data {
		a.Data[i] = complex(float64(i%5), 1)
	}
	for i := range b.Data {
		b.Data[i] = complex(1, float64(i%3))
	}
	cov := NewMatrix(16, 16)
	panel := make([]complex128, 16*16)
	for i := range panel {
		panel[i] = complex(float64(i%7), -1)
	}
	w0 := make([]complex128, 16)
	o0 := make([]complex128, 512)
	if n := testing.AllocsPerRun(10, func() {
		MulBlockedInto(a, b, out)
		cov.AccumulatePanel(panel, 16, 0.5)
		ConjDotPanel3(b.Data, 16, 16, 512, w0, w0, w0, o0, o0, o0)
	}); n != 0 {
		t.Errorf("blocked kernels allocated %v times per run, want 0", n)
	}
}
