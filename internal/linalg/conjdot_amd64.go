//go:build amd64

package linalg

// Implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasFMA reports whether the CPU supports the AVX+FMA kernels and the OS
// has enabled the extended vector state. The fused lanes the asm kernels
// run are the same correctly rounded operations as math.FMA, so the choice
// of path never changes a single output bit — only how fast it is.
var hasFMA = func() bool {
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	_, _, c, _ := cpuid(1, 0)
	if c&(osxsave|avx|fma) != osxsave|avx|fma {
		return false
	}
	lo, _ := xgetbv()
	return lo&6 == 6 // XMM and YMM state saved/restored by the OS
}()

// Implemented in conjdot_amd64.s.
func conjDotPanel1Asm(panel *complex128, stride, dof, n int, w0, o0 *complex128)
func conjDotPanel2Asm(panel *complex128, stride, dof, n int, w0, w1, o0, o1 *complex128)
func conjDotPanel3Asm(panel *complex128, stride, dof, n int, w0, w1, w2, o0, o1, o2 *complex128)

func conjDotPanel1(panel []complex128, stride, dof, n int, w0, o0 []complex128) {
	if !hasFMA || dof == 0 || n == 0 {
		conjDotPanel1Generic(panel, stride, dof, n, w0, o0)
		return
	}
	conjDotPanel1Asm(&panel[0], stride, dof, n, &w0[0], &o0[0])
}

func conjDotPanel2(panel []complex128, stride, dof, n int, w0, w1, o0, o1 []complex128) {
	if !hasFMA || dof == 0 || n == 0 {
		conjDotPanel2Generic(panel, stride, dof, n, w0, w1, o0, o1)
		return
	}
	conjDotPanel2Asm(&panel[0], stride, dof, n, &w0[0], &w1[0], &o0[0], &o1[0])
}

func conjDotPanel3(panel []complex128, stride, dof, n int, w0, w1, w2, o0, o1, o2 []complex128) {
	if !hasFMA || dof == 0 || n == 0 {
		conjDotPanel3Generic(panel, stride, dof, n, w0, w1, w2, o0, o1, o2)
		return
	}
	conjDotPanel3Asm(&panel[0], stride, dof, n, &w0[0], &w1[0], &w2[0], &o0[0], &o1[0], &o2[0])
}
