package linalg

import "fmt"

// Blocked kernels: cache-aware restructurings of the two O(n^3)-shaped
// operations on the STAP hot path — general matrix multiply and the
// Hermitian rank-k update behind sample covariance estimation. Both keep a
// fixed accumulation order so results are deterministic run-to-run and
// independent of how callers partition work:
//
//   - MulBlocked accumulates every output element over k in ascending
//     order into a single accumulator, exactly like the naive triple loop,
//     so tiling changes only the traversal order of independent outputs,
//     never the rounding of any one of them.
//   - AccumulatePanel consumes a packed panel of snapshots with one fixed
//     reduction order (columns ascending within the panel) and mirrors the
//     strict upper triangle onto the lower by conjugation, so the update
//     is exactly Hermitian and bit-identical wherever the same panel
//     boundaries are used.

// Blocking factors for MulBlocked. The tiles keep one a-row strip and the
// active b-panel resident in L1/L2 across the inner loops; correctness
// never depends on them.
const (
	mulBlockRows = 32  // rows of a per tile
	mulBlockK    = 64  // inner-dimension span per tile
	mulBlockCols = 256 // columns of b per tile
)

// MulBlockedInto computes out = a*b with cache blocking. out must be
// a.Rows x b.Cols and is overwritten; it must not alias a or b. Every
// output element is accumulated over the inner dimension in ascending
// order, so the result is independent of the blocking factors.
func MulBlockedInto(a, b, out *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MulBlocked %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulBlocked out %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if &out.Data[0] == &a.Data[0] || &out.Data[0] == &b.Data[0] {
		panic("linalg: MulBlocked output aliases an input")
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	n, kk, m := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < n; i0 += mulBlockRows {
		i1 := min(i0+mulBlockRows, n)
		// k-tiles ascend, so each out element still sums k in order.
		for k0 := 0; k0 < kk; k0 += mulBlockK {
			k1 := min(k0+mulBlockK, kk)
			for j0 := 0; j0 < m; j0 += mulBlockCols {
				j1 := min(j0+mulBlockCols, m)
				for i := i0; i < i1; i++ {
					arow := a.Data[i*kk : (i+1)*kk]
					orow := out.Data[i*m+j0 : i*m+j1]
					for k := k0; k < k1; k++ {
						av := arow[k]
						brow := b.Data[k*m+j0 : k*m+j1]
						for j, bv := range brow {
							orow[j] += av * bv
						}
					}
				}
			}
		}
	}
}

// MulBlocked computes and returns a*b using the cache-blocked kernel.
func MulBlocked(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MulBlockedInto(a, b, out)
	return out
}

// AccumulatePanel folds a packed panel of g snapshots into the square
// Hermitian matrix m: m += w * sum_t x_t x_t^H. The panel is gate-major —
// panel[t*n+i] is component i of snapshot t — so callers pack each
// snapshot with a single copy. Only the upper triangle is computed; the
// strict lower triangle is mirrored by conjugation, which both halves the
// work and keeps the accumulated matrix exactly Hermitian.
//
// The reduction order (t ascending within the panel, one panel-sum per
// element scaled once by w) is fixed: two callers that feed the same
// snapshots through the same panel boundaries get bit-identical matrices
// regardless of how they are otherwise partitioned. It is the blocked
// counterpart of g AccumulateOuter rank-1 updates and matches them to
// floating-point reassociation (covered by the equivalence tests), not
// bit-for-bit.
func (m *Matrix) AccumulatePanel(panel []complex128, g int, w float64) {
	n := m.Rows
	if m.Cols != n {
		panic(fmt.Sprintf("linalg: AccumulatePanel on %dx%d matrix", m.Rows, m.Cols))
	}
	if g < 0 || len(panel) < g*n {
		panic(fmt.Sprintf("linalg: AccumulatePanel g=%d, len(panel)=%d, n=%d", g, len(panel), n))
	}
	if g == 0 {
		return
	}
	panel = panel[:g*n]
	cw := complex(w, 0)
	for i := 0; i < n; i++ {
		rowI := m.Data[i*n : (i+1)*n]
		for j := i; j < n; j++ {
			var s complex128
			for t := 0; t < g; t++ {
				off := t * n
				pj := panel[off+j]
				s += panel[off+i] * complex(real(pj), -imag(pj))
			}
			s *= cw
			rowI[j] += s
			if j != i {
				m.Data[j*n+i] += complex(real(s), -imag(s))
			}
		}
	}
}
