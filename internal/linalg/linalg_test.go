package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// randHPD builds a random Hermitian positive-definite matrix A = B B^H + I.
func randHPD(rng *rand.Rand, n int) *Matrix {
	b := randMatrix(rng, n, n)
	a := Mul(b, b.ConjTranspose())
	a.AddScaledIdentity(1)
	return a
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 4+5i)
	if m.At(1, 2) != 4+5i {
		t.Error("Set/At mismatch")
	}
	if r := m.Row(1); r[2] != 4+5i {
		t.Error("Row does not alias")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone not deep")
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMulVecAndMul(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3i)
	m.Set(1, 1, 4)
	y := m.MulVec([]complex128{1, 1}, nil)
	if y[0] != 3 || y[1] != 4+3i {
		t.Errorf("MulVec = %v", y)
	}
	id := Identity(2)
	p := Mul(m, id)
	if MaxAbsDiff(p, m) > 1e-15 {
		t.Error("Mul by identity changed matrix")
	}
	// (AB)^H = B^H A^H
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 3, 4)
	b := randMatrix(rng, 4, 2)
	lhs := Mul(a, b).ConjTranspose()
	rhs := Mul(b.ConjTranspose(), a.ConjTranspose())
	if MaxAbsDiff(lhs, rhs) > 1e-12 {
		t.Error("(AB)^H != B^H A^H")
	}
}

func TestDotNorm(t *testing.T) {
	x := []complex128{1, 1i}
	y := []complex128{1i, 1}
	// x^H y = conj(1)*1i + conj(1i)*1 = 1i - 1i = 0
	if d := Dot(x, y); cmplx.Abs(d) > 1e-15 {
		t.Errorf("Dot = %v, want 0", d)
	}
	if n := Norm2([]complex128{3, 4i}); math.Abs(n-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", n)
	}
}

func TestSampleCovarianceHermitianPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	snaps := make([][]complex128, 20)
	for i := range snaps {
		v := make([]complex128, 6)
		for j := range v {
			v[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		snaps[i] = v
	}
	r := SampleCovariance(snaps, 0.1)
	if !r.IsHermitian(1e-12) {
		t.Error("sample covariance not Hermitian")
	}
	// Positive definite: Cholesky must succeed.
	if _, err := Cholesky(r); err != nil {
		t.Errorf("covariance not PD: %v", err)
	}
	// Diagonal loading shows up on the diagonal: E|x|^2 = 2 per component
	// (unit-variance real + imag), so diag ~ 2 + 0.1.
	for i := 0; i < 6; i++ {
		d := real(r.At(i, i))
		if d < 0.5 || d > 6 {
			t.Errorf("diag[%d] = %g implausible", i, d)
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16} {
		a := randHPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := Mul(l, l.ConjTranspose())
		if d := MaxAbsDiff(rec, a); d > 1e-9*float64(n) {
			t.Errorf("n=%d: ||L L^H - A|| = %g", n, d)
		}
		// Strictly upper part of L must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Errorf("L[%d][%d] = %v, want 0", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestSolveHermitianResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 3, 8, 32} {
		a := randHPD(rng, n)
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(want, nil)
		got, err := SolveHermitian(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var diff float64
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > diff {
				diff = d
			}
		}
		if diff > 1e-7*float64(n) {
			t.Errorf("n=%d: solve error %g", n, diff)
		}
	}
}

func TestSolveHermitianProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		a := randHPD(rng, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := SolveHermitian(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x, nil)
		for i := range res {
			res[i] -= b[i]
		}
		return Norm2(res) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSolveErrors(t *testing.T) {
	l := NewMatrix(2, 2) // zero diagonal -> singular
	if _, err := SolveLower(l, []complex128{1, 1}); err == nil {
		t.Error("expected singular error in SolveLower")
	}
	if _, err := SolveUpperH(l, []complex128{1, 1}); err == nil {
		t.Error("expected singular error in SolveUpperH")
	}
	if _, err := SolveLower(l, []complex128{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestQRFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range []struct{ m, n int }{{4, 4}, {8, 3}, {16, 16}, {20, 7}} {
		a := randMatrix(rng, dims.m, dims.n)
		f, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		r := f.R()
		// R upper triangular.
		for i := 0; i < dims.n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Errorf("R[%d][%d] = %v, want 0", i, j, r.At(i, j))
				}
			}
		}
		// Exact solve for square systems: a x = b.
		if dims.m == dims.n {
			want := make([]complex128, dims.n)
			for i := range want {
				want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			b := a.MulVec(want, nil)
			got, err := f.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if cmplx.Abs(got[i]-want[i]) > 1e-8 {
					t.Errorf("m=n=%d: x[%d] = %v, want %v", dims.m, i, got[i], want[i])
				}
			}
		}
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined system: residual of LS solution must be orthogonal to
	// the column space, i.e. A^H (A x - b) = 0.
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 12, 4)
	b := make([]complex128, 12)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	res := a.MulVec(x, nil)
	for i := range res {
		res[i] -= b[i]
	}
	proj := a.ConjTranspose().MulVec(res, nil)
	if Norm2(proj) > 1e-8 {
		t.Errorf("normal-equation residual %g, want ~0", Norm2(proj))
	}
}

func TestQRErrors(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for rows < cols")
	}
	rng := rand.New(rand.NewSource(7))
	f, err := NewQR(randMatrix(rng, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]complex128{1}); err == nil {
		t.Error("expected length error")
	}
	// Rank-deficient: zero matrix.
	z := NewMatrix(3, 2)
	fz, err := NewQR(z)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fz.Solve(make([]complex128, 3)); err == nil {
		t.Error("expected rank-deficiency error")
	}
}

func TestQRVsCholeskySolveAgreement(t *testing.T) {
	// For an HPD system both solvers must agree.
	rng := rand.New(rand.NewSource(8))
	n := 10
	a := randHPD(rng, n)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x1, err := SolveHermitian(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if cmplx.Abs(x1[i]-x2[i]) > 1e-7 {
			t.Errorf("solver disagreement at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestIsHermitian(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 1, 1+2i)
	a.Set(1, 0, 1-2i)
	if !a.IsHermitian(1e-12) {
		t.Error("should be Hermitian")
	}
	a.Set(1, 0, 1+2i)
	if a.IsHermitian(1e-12) {
		t.Error("should not be Hermitian")
	}
	if NewMatrix(2, 3).IsHermitian(1) {
		t.Error("non-square cannot be Hermitian")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewMatrix", func() { NewMatrix(0, 1) })
	mustPanic("MulVec x", func() { NewMatrix(2, 2).MulVec(make([]complex128, 3), nil) })
	mustPanic("Mul dims", func() { Mul(NewMatrix(2, 3), NewMatrix(2, 3)) })
	mustPanic("Dot", func() { Dot(make([]complex128, 2), make([]complex128, 3)) })
	mustPanic("AccumulateOuter", func() { NewMatrix(2, 2).AccumulateOuter(make([]complex128, 3), 1) })
	mustPanic("SampleCovariance empty", func() { SampleCovariance(nil, 0) })
	mustPanic("AddScaledIdentity", func() { NewMatrix(2, 3).AddScaledIdentity(1) })
}
