package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// (numerically) Hermitian positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of the Hermitian
// positive-definite matrix a such that a = L L^H. Only the lower triangle
// of a is read. The returned matrix has zeros above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		// Diagonal element.
		d := real(a.At(j, j))
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= real(v)*real(v) + imag(v)*imag(v)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		dj := math.Sqrt(d)
		l.Set(j, j, complex(dj, 0))
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * cmplx.Conj(l.At(j, k))
			}
			l.Set(i, j, s/complex(dj, 0))
		}
	}
	return l, nil
}

// SolveLower solves L y = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []complex128) ([]complex128, error) {
	n := l.Rows
	if l.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLower dims %dx%d, len(b)=%d", l.Rows, l.Cols, len(b))
	}
	y := make([]complex128, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		if row[i] == 0 {
			return nil, errors.New("linalg: singular lower-triangular matrix")
		}
		y[i] = s / row[i]
	}
	return y, nil
}

// SolveUpperH solves L^H x = y where l is lower triangular (so L^H is upper
// triangular) by back substitution.
func SolveUpperH(l *Matrix, y []complex128) ([]complex128, error) {
	n := l.Rows
	if l.Cols != n || len(y) != n {
		return nil, fmt.Errorf("linalg: SolveUpperH dims %dx%d, len(y)=%d", l.Rows, l.Cols, len(y))
	}
	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			// (L^H)[i][k] = conj(L[k][i])
			s -= cmplx.Conj(l.At(k, i)) * x[k]
		}
		d := cmplx.Conj(l.At(i, i))
		if d == 0 {
			return nil, errors.New("linalg: singular upper-triangular matrix")
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveHermitian solves a x = b for Hermitian positive-definite a via
// Cholesky factorization. This is the adaptive-weight solve R w = s at the
// heart of STAP weight computation.
func SolveHermitian(a *Matrix, b []complex128) ([]complex128, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y, err := SolveLower(l, b)
	if err != nil {
		return nil, err
	}
	return SolveUpperH(l, y)
}

// QR holds the compact Householder QR factorization of a matrix with
// Rows >= Cols: a = Q R with Q unitary (Rows x Rows, applied implicitly via
// the stored reflectors) and R upper-triangular (Cols x Cols).
type QR struct {
	rows, cols int
	qr         *Matrix      // Householder vectors below diagonal, R on/above
	tau        []complex128 // reflector coefficients
}

// NewQR factors a (which is not modified). It requires a.Rows >= a.Cols.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	tau := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k, rows k..m-1.
		var norm float64
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			tau[k] = 0
			continue
		}
		akk := qr.At(k, k)
		// alpha = -sign(akk) * norm, with complex sign akk/|akk|.
		alpha := complex(-norm, 0)
		if akk != 0 {
			alpha = -complex(norm, 0) * akk / complex(cmplx.Abs(akk), 0)
		}
		// v = x - alpha e1; store v (normalised so v[k]=1) below diagonal.
		vkk := akk - alpha
		if vkk == 0 {
			tau[k] = 0
			qr.Set(k, k, alpha)
			continue
		}
		var vnorm float64
		vkk2 := real(vkk)*real(vkk) + imag(vkk)*imag(vkk)
		vnorm = vkk2
		for i := k + 1; i < m; i++ {
			v := qr.At(i, k)
			vnorm += real(v)*real(v) + imag(v)*imag(v)
			qr.Set(i, k, v/vkk)
		}
		tau[k] = complex(2*vkk2/vnorm, 0)
		qr.Set(k, k, alpha)
		// Apply reflector to the remaining columns: A -= tau * v (v^H A).
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j) // v[k] = 1
			for i := k + 1; i < m; i++ {
				s += cmplx.Conj(qr.At(i, k)) * qr.At(i, j)
			}
			s *= tau[k]
			qr.Set(k, j, qr.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)-s*qr.At(i, k))
			}
		}
	}
	return &QR{rows: m, cols: n, qr: qr, tau: tau}, nil
}

// R returns the upper-triangular factor as a new Cols x Cols matrix.
func (f *QR) R() *Matrix {
	r := NewMatrix(f.cols, f.cols)
	for i := 0; i < f.cols; i++ {
		for j := i; j < f.cols; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// applyQH computes Q^H b in place (b has length rows).
func (f *QR) applyQH(b []complex128) {
	for k := 0; k < f.cols; k++ {
		if f.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < f.rows; i++ {
			s += cmplx.Conj(f.qr.At(i, k)) * b[i]
		}
		s *= f.tau[k]
		b[k] -= s
		for i := k + 1; i < f.rows; i++ {
			b[i] -= s * f.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimising |a x - b|_2.
func (f *QR) Solve(b []complex128) ([]complex128, error) {
	if len(b) != f.rows {
		return nil, fmt.Errorf("linalg: QR.Solve len(b)=%d, rows=%d", len(b), f.rows)
	}
	qtb := append([]complex128(nil), b...)
	f.applyQH(qtb)
	// Back-substitute R x = (Q^H b)[:cols].
	x := make([]complex128, f.cols)
	for i := f.cols - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < f.cols; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if d == 0 {
			return nil, errors.New("linalg: rank-deficient matrix in QR solve")
		}
		x[i] = s / d
	}
	return x, nil
}
