//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
