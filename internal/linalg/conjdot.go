package linalg

import "math"

// Conjugated-dot panel kernels: the beamforming inner loop. For each of n
// rows, row r of the panel is the snapshot panel[r*stride : r*stride+dof],
// and each output o_b[r] is the MVDR beam sample conj(w_b) . snap.
//
// The reduction order is part of the pipeline's determinism contract and
// is the same on every platform and code path: each product conj(w[k])*s
// is folded through four fused lanes per beam,
//
//	p0 = fma(wr, sr, p0)   p1 = fma(wi, si, p1)
//	q0 = fma(wr, si, q0)   q1 = fma(wi, sr, q1)
//
// over ascending k, and combined once per output as (p0+p1, q0-q1). The
// amd64 path keeps the (p, q) lane pairs in xmm registers and runs the
// same fused multiply-adds with VFMADD231PD; math.FMA is correctly
// rounded everywhere, and hardware FMA is the same correctly rounded
// operation, so the two implementations agree bit for bit (the asm/generic
// equivalence test pins this).

// ConjDotPanel computes o[b][r] = conj(w[b]) . panel[r*stride : +dof] for
// every beam b and row r in [0, n). Beams are processed in strips of up to
// three so each loaded snapshot element feeds all strip accumulators.
// Panics if a weight or output slice is shorter than dof or n.
func ConjDotPanel(panel []complex128, stride, dof, n int, w, o [][]complex128) {
	if len(w) != len(o) {
		panic("linalg: ConjDotPanel weight/output count mismatch")
	}
	for b := 0; b < len(w); b += 3 {
		switch len(w) - b {
		case 1:
			ConjDotPanel1(panel, stride, dof, n, w[b], o[b])
		case 2:
			ConjDotPanel2(panel, stride, dof, n, w[b], w[b+1], o[b], o[b+1])
		default:
			ConjDotPanel3(panel, stride, dof, n, w[b], w[b+1], w[b+2], o[b], o[b+1], o[b+2])
		}
	}
}

// checkConjDot bounds-checks the panel extent once up front, so the
// kernels can run unchecked.
func checkConjDot(panel []complex128, stride, dof, n int) {
	if dof > stride {
		panic("linalg: conj-dot dof exceeds panel stride")
	}
	if n > 0 && dof > 0 {
		_ = panel[(n-1)*stride+dof-1]
	}
}

// ConjDotPanel1 is the one-beam strip: o0[r] = conj(w0) . row r.
func ConjDotPanel1(panel []complex128, stride, dof, n int, w0, o0 []complex128) {
	checkConjDot(panel, stride, dof, n)
	conjDotPanel1(panel, stride, dof, n, w0[:dof], o0[:n])
}

// ConjDotPanel2 is the two-beam strip sharing each snapshot load.
func ConjDotPanel2(panel []complex128, stride, dof, n int, w0, w1, o0, o1 []complex128) {
	checkConjDot(panel, stride, dof, n)
	conjDotPanel2(panel, stride, dof, n, w0[:dof], w1[:dof], o0[:n], o1[:n])
}

// ConjDotPanel3 is the three-beam strip sharing each snapshot load.
func ConjDotPanel3(panel []complex128, stride, dof, n int, w0, w1, w2, o0, o1, o2 []complex128) {
	checkConjDot(panel, stride, dof, n)
	conjDotPanel3(panel, stride, dof, n, w0[:dof], w1[:dof], w2[:dof], o0[:n], o1[:n], o2[:n])
}

func conjDotPanel1Generic(panel []complex128, stride, dof, n int, w0, o0 []complex128) {
	w0 = w0[:dof]
	for r := 0; r < n; r++ {
		snap := panel[r*stride : r*stride+dof : r*stride+dof]
		var p0, p1, q0, q1 float64
		for k, s := range snap {
			sr, si := real(s), imag(s)
			wv := w0[k]
			wr, wi := real(wv), imag(wv)
			p0 = math.FMA(wr, sr, p0)
			p1 = math.FMA(wi, si, p1)
			q0 = math.FMA(wr, si, q0)
			q1 = math.FMA(wi, sr, q1)
		}
		o0[r] = complex(p0+p1, q0-q1)
	}
}

func conjDotPanel2Generic(panel []complex128, stride, dof, n int, w0, w1, o0, o1 []complex128) {
	w0, w1 = w0[:dof], w1[:dof]
	for r := 0; r < n; r++ {
		snap := panel[r*stride : r*stride+dof : r*stride+dof]
		var p00, p01, q00, q01 float64
		var p10, p11, q10, q11 float64
		for k, s := range snap {
			sr, si := real(s), imag(s)
			wv := w0[k]
			wr, wi := real(wv), imag(wv)
			p00 = math.FMA(wr, sr, p00)
			p01 = math.FMA(wi, si, p01)
			q00 = math.FMA(wr, si, q00)
			q01 = math.FMA(wi, sr, q01)
			wv = w1[k]
			wr, wi = real(wv), imag(wv)
			p10 = math.FMA(wr, sr, p10)
			p11 = math.FMA(wi, si, p11)
			q10 = math.FMA(wr, si, q10)
			q11 = math.FMA(wi, sr, q11)
		}
		o0[r] = complex(p00+p01, q00-q01)
		o1[r] = complex(p10+p11, q10-q11)
	}
}

func conjDotPanel3Generic(panel []complex128, stride, dof, n int, w0, w1, w2, o0, o1, o2 []complex128) {
	w0, w1, w2 = w0[:dof], w1[:dof], w2[:dof]
	for r := 0; r < n; r++ {
		snap := panel[r*stride : r*stride+dof : r*stride+dof]
		var p00, p01, q00, q01 float64
		var p10, p11, q10, q11 float64
		var p20, p21, q20, q21 float64
		for k, s := range snap {
			sr, si := real(s), imag(s)
			wv := w0[k]
			wr, wi := real(wv), imag(wv)
			p00 = math.FMA(wr, sr, p00)
			p01 = math.FMA(wi, si, p01)
			q00 = math.FMA(wr, si, q00)
			q01 = math.FMA(wi, sr, q01)
			wv = w1[k]
			wr, wi = real(wv), imag(wv)
			p10 = math.FMA(wr, sr, p10)
			p11 = math.FMA(wi, si, p11)
			q10 = math.FMA(wr, si, q10)
			q11 = math.FMA(wi, sr, q11)
			wv = w2[k]
			wr, wi = real(wv), imag(wv)
			p20 = math.FMA(wr, sr, p20)
			p21 = math.FMA(wi, si, p21)
			q20 = math.FMA(wr, si, q20)
			q21 = math.FMA(wi, sr, q21)
		}
		o0[r] = complex(p00+p01, q00-q01)
		o1[r] = complex(p10+p11, q10-q11)
		o2[r] = complex(p20+p21, q20-q21)
	}
}
