// Package signal provides the digital signal processing kernels used by the
// STAP pipeline: complex FFTs, window functions, fast convolution, and
// linear-FM chirp replica generation. All routines work on complex128 for
// numeric headroom; cube payloads (complex64) are widened at the task
// boundaries.
package signal

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT computes the in-place forward discrete Fourier transform of x.
// len(x) must be a power of two; use Plan or PadPow2 for other lengths.
// The transform is unnormalised: FFT followed by IFFT returns the input.
// After the first call at a given length the transform allocates nothing:
// the twiddle-factor and bit-reversal tables are cached process-wide and
// shared by all callers.
func FFT(x []complex128) {
	fftRadix2(x, false)
}

// IFFT computes the in-place inverse DFT of x, including the 1/N
// normalisation. len(x) must be a power of two.
func IFFT(x []complex128) {
	fftRadix2(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("signal: NextPow2 of non-positive %d", n))
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	tablesFor(n).transform(x, inverse)
}

// DFT computes the naive O(n^2) forward DFT of x into a new slice. It works
// for any length and exists as the reference implementation for tests and
// as the kernel of the Bluestein fallback verification.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// bluesteinPre is the immutable precomputation for a Bluestein (chirp-z)
// transform of one non-power-of-two length: the chirp sequence and the FFT
// of the conjugate chirp kernel. It carries no scratch, so one instance is
// shared by every plan of that length.
type bluesteinPre struct {
	m     int          // padded length (power of two >= 2n-1)
	chirp []complex128 // chirp[k] = exp(-i*pi*k^2/n), k in [0,n)
	bfft  []complex128 // FFT of the conjugate chirp kernel, length m
}

// preCache maps non-power-of-two transform length -> *bluesteinPre.
var preCache sync.Map

func bluesteinPreFor(n int) *bluesteinPre {
	if v, ok := preCache.Load(n); ok {
		return v.(*bluesteinPre)
	}
	p := &bluesteinPre{m: NextPow2(2*n - 1), chirp: make([]complex128, n)}
	for k := 0; k < n; k++ {
		// Use float64 k^2 mod 2n to avoid precision loss for large k.
		kk := float64(k) * float64(k)
		angle := -math.Pi * math.Mod(kk, 2*float64(n)) / float64(n)
		p.chirp[k] = cmplx.Exp(complex(0, angle))
	}
	b := make([]complex128, p.m)
	b[0] = cmplx.Conj(p.chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(p.chirp[k])
		b[k] = c
		b[p.m-k] = c
	}
	FFT(b)
	p.bfft = b
	preCache.Store(n, p)
	return p
}

// Plan is a reusable FFT plan for a fixed transform length. For power-of-two
// lengths it dispatches to the table-driven radix-2 kernel; for other
// lengths it uses Bluestein's algorithm (chirp-z) built on a padded
// power-of-two transform.
//
// The API is Forward and Inverse (plus the batched ForwardMany); both work
// in place on a caller-supplied slice of length Len and allocate nothing
// after plan construction.
//
// Concurrency: a power-of-two plan is stateless (its tables are immutable
// and shared process-wide) and safe for concurrent use by any number of
// goroutines. A Bluestein plan owns a scratch buffer, so a single plan must
// not be used from two goroutines at once — give each goroutine its own via
// Clone or PlanFor, which share the immutable precomputation and differ
// only in scratch.
type Plan struct {
	n       int
	pow2    bool
	pre     *bluesteinPre // shared immutable state (nil when pow2)
	scratch []complex128  // per-plan Bluestein scratch (nil when pow2)
}

// planCache maps power-of-two transform length -> *Plan. Power-of-two plans
// are stateless, so one shared instance per length serves every caller.
var planCache sync.Map

// NewPlan creates a plan for transforms of length n (n >= 1).
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("signal: NewPlan length %d < 1", n))
	}
	p := &Plan{n: n, pow2: IsPow2(n)}
	if p.pow2 {
		return p
	}
	p.pre = bluesteinPreFor(n)
	p.scratch = make([]complex128, p.pre.m)
	return p
}

// PlanFor returns a plan for transforms of length n from the process-wide
// cache. For power-of-two lengths the returned plan is shared (it is
// stateless, so concurrent use is safe). For other lengths each call
// returns a distinct plan that shares the cached immutable Bluestein
// precomputation but owns its scratch, so hand one to each goroutine.
func PlanFor(n int) *Plan {
	if IsPow2(n) {
		if v, ok := planCache.Load(n); ok {
			return v.(*Plan)
		}
		p := NewPlan(n)
		planCache.Store(n, p)
		return p
	}
	return NewPlan(n)
}

// Clone returns an independent plan for use by another goroutine. Cloned
// plans share the immutable tables and Bluestein precomputation; only the
// scratch buffer is duplicated.
func (p *Plan) Clone() *Plan {
	cp := *p
	if cp.scratch != nil {
		cp.scratch = make([]complex128, len(p.scratch))
	}
	return &cp
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// Forward computes the forward DFT of x (len(x) == p.Len()) in place.
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the normalised inverse DFT of x in place.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
}

// ForwardMany computes the forward DFT of every buffer in xs in place —
// the batched form the Doppler task uses to transform the stagger buffers
// of one (channel, range) column in a single call. Each buffer must have
// length Len. It is equivalent to calling Forward on each buffer (bit for
// bit), but for power-of-two lengths the butterfly passes run level-major
// across the batch: every buffer finishes one stage before the next
// begins, so each level's twiddle entries are walked while hot instead of
// once per buffer.
func (p *Plan) ForwardMany(xs [][]complex128) {
	if p.pow2 {
		if p.n <= 1 {
			return
		}
		t := tablesFor(p.n)
		for _, x := range xs {
			if len(x) != p.n {
				panic(fmt.Sprintf("signal: plan length %d, input length %d", p.n, len(x)))
			}
			t.permute(x)
		}
		t.stagesMany(xs, false)
		return
	}
	for _, x := range xs {
		p.Forward(x)
	}
}

// ForwardWindowedMany computes, for each i, the forward DFT of the
// windowed, widened source dsts[i][k] = DFT(complex128(srcs[i][t]) *
// win[t]) — the Doppler task's batched front end, where srcs are the K
// staggered views of the channel columns of one range gate. len(win) must
// be Len and every source at least Len long; each dst must have length
// Len. For power-of-two lengths the window multiply is fused into the
// bit-reversal copy (the widened product is scattered directly into
// bit-reversed order, eliminating the separate permutation pass) and the
// butterfly stages run level-major across the batch. The output is bit
// for bit what a widen-and-multiply fill followed by Forward produces.
func (p *Plan) ForwardWindowedMany(srcs [][]complex64, win []float64, dsts [][]complex128) {
	if len(srcs) != len(dsts) {
		panic(fmt.Sprintf("signal: ForwardWindowedMany %d sources for %d outputs", len(srcs), len(dsts)))
	}
	if len(win) != p.n {
		panic(fmt.Sprintf("signal: ForwardWindowedMany window length %d, plan length %d", len(win), p.n))
	}
	if p.pow2 {
		t := tablesFor(p.n)
		for i, src := range srcs {
			dst := dsts[i]
			if len(src) < p.n || len(dst) != p.n {
				panic(fmt.Sprintf("signal: ForwardWindowedMany buffer %d: len(src)=%d, len(dst)=%d, plan length %d",
					i, len(src), len(dst), p.n))
			}
			t.scatterWindowed(src, win, dst)
		}
		t.stagesMany(dsts, false)
		return
	}
	for i, src := range srcs {
		dst := dsts[i]
		if len(src) < p.n || len(dst) != p.n {
			panic(fmt.Sprintf("signal: ForwardWindowedMany buffer %d: len(src)=%d, len(dst)=%d, plan length %d",
				i, len(src), len(dst), p.n))
		}
		for k := 0; k < p.n; k++ {
			dst[k] = complex128(src[k]) * complex(win[k], 0)
		}
		p.Forward(dst)
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("signal: plan length %d, input length %d", p.n, len(x)))
	}
	if p.pow2 {
		if inverse {
			IFFT(x)
		} else {
			FFT(x)
		}
		return
	}
	if inverse {
		// IDFT(x)[t] = conj(DFT(conj(x))[t]) / n
		for i := range x {
			x[i] = cmplx.Conj(x[i])
		}
		p.bluestein(x)
		n := float64(p.n)
		for i := range x {
			x[i] = complex(real(x[i])/n, -imag(x[i])/n)
		}
		return
	}
	p.bluestein(x)
}

// bluestein computes the forward DFT of x (arbitrary length) in place using
// the chirp-z decomposition: X[k] = chirp[k] * (a ∗ b)[k], where
// a[t] = x[t]*chirp[t] and b is the conjugate chirp.
func (p *Plan) bluestein(x []complex128) {
	a := p.scratch
	for i := range a {
		a[i] = 0
	}
	for t := 0; t < p.n; t++ {
		a[t] = x[t] * p.pre.chirp[t]
	}
	FFT(a)
	for i := range a {
		a[i] *= p.pre.bfft[i]
	}
	IFFT(a)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * p.pre.chirp[k]
	}
}

// FFTShift rotates x so that the zero-frequency bin moves to the centre,
// matching the conventional Doppler spectrum display order. It returns a
// new slice.
func FFTShift(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	FFTShiftInto(x, out)
	return out
}

// FFTShiftInto is the allocation-free form of FFTShift: it writes the
// centre-ordered rotation of src into dst, which must have the same length
// and must not overlap src. It is generic over the element type because
// the rotation only moves elements — diagnostics use it both for complex
// spectra and for real power rows.
func FFTShiftInto[T any](src, dst []T) {
	n := len(src)
	if len(dst) != n {
		panic(fmt.Sprintf("signal: FFTShiftInto len(dst)=%d, len(src)=%d", len(dst), n))
	}
	half := (n + 1) / 2
	copy(dst, src[half:])
	copy(dst[n-half:], src[:half])
}
