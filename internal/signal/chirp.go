package signal

import (
	"fmt"
	"math"
	"math/cmplx"
)

// LFMChirp returns the baseband samples of a linear-FM (chirp) pulse of n
// samples sweeping bandwidth fraction bw in [0, 1] of the sampling rate,
// centred on zero frequency. It is used both by the radar scenario
// generator (the transmitted pulse convolved into the scene) and by the
// pulse-compression task (the matched-filter replica).
func LFMChirp(n int, bw float64) []complex128 {
	if n <= 0 {
		panic(fmt.Sprintf("signal: LFMChirp length %d <= 0", n))
	}
	if bw < 0 || bw > 1 {
		panic(fmt.Sprintf("signal: LFMChirp bandwidth fraction %v outside [0,1]", bw))
	}
	out := make([]complex128, n)
	// Instantaneous frequency sweeps -bw/2 .. +bw/2 cycles/sample.
	// phase(t) = 2*pi * ( -bw/2 * t + bw/(2n) * t^2 )
	for t := 0; t < n; t++ {
		tf := float64(t)
		phase := 2 * math.Pi * (-bw/2*tf + bw/(2*float64(n))*tf*tf)
		out[t] = cmplx.Exp(complex(0, phase))
	}
	return out
}

// MatchedFilter returns the matched-filter kernel for pulse p: the
// time-reversed complex conjugate, normalised to unit energy so that
// compression gain is purely the time-bandwidth product.
func MatchedFilter(p []complex128) []complex128 {
	n := len(p)
	out := make([]complex128, n)
	var energy float64
	for _, v := range p {
		energy += real(v)*real(v) + imag(v)*imag(v)
	}
	scale := 1.0
	if energy > 0 {
		scale = 1 / math.Sqrt(energy)
	}
	for i, v := range p {
		c := cmplx.Conj(v)
		out[n-1-i] = complex(real(c)*scale, imag(c)*scale)
	}
	return out
}

// SteeringVector returns the spatial steering vector for a uniform linear
// array of n elements with half-wavelength spacing, steered to normalised
// angle u = sin(theta) in [-1, 1]. Element k has phase 2*pi*(d/lambda)*k*u
// with d/lambda = 1/2.
func SteeringVector(n int, u float64) []complex128 {
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		phase := math.Pi * float64(k) * u
		out[k] = cmplx.Exp(complex(0, phase))
	}
	return out
}

// DopplerSteeringVector returns the temporal steering vector of n pulses
// for normalised Doppler frequency fd in cycles/PRI.
func DopplerSteeringVector(n int, fd float64) []complex128 {
	out := make([]complex128, n)
	for p := 0; p < n; p++ {
		phase := 2 * math.Pi * fd * float64(p)
		out[p] = cmplx.Exp(complex(0, phase))
	}
	return out
}
