package signal

import (
	"fmt"
	"math"
)

// WindowKind selects a taper applied to pulse data before Doppler filtering
// or to the pulse-compression replica to control sidelobes.
type WindowKind int

const (
	// WindowRect is the rectangular (no-op) window.
	WindowRect WindowKind = iota
	// WindowHann is the raised-cosine Hann window.
	WindowHann
	// WindowHamming is the Hamming window.
	WindowHamming
	// WindowBlackman is the three-term Blackman window.
	WindowBlackman
	// WindowKaiser is the Kaiser window with the package-default shape
	// parameter (KaiserDefaultBeta); use KaiserWindow for explicit beta.
	WindowKaiser
)

// KaiserDefaultBeta is the shape parameter used by WindowKaiser: ~70 dB
// sidelobes, a common choice for Doppler filter banks.
const KaiserDefaultBeta = 7.0

// String implements fmt.Stringer.
func (k WindowKind) String() string {
	switch k {
	case WindowRect:
		return "rect"
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowBlackman:
		return "blackman"
	case WindowKaiser:
		return "kaiser"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window returns the n coefficients of the requested window. The symmetric
// (periodic = false) form is used throughout the pipeline because Doppler
// filter banks here are plain windowed DFT banks.
func Window(k WindowKind, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("signal: window length %d <= 0", n))
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	if k == WindowKaiser {
		return KaiserWindow(n, KaiserDefaultBeta)
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		x := float64(i) / den
		switch k {
		case WindowRect:
			w[i] = 1
		case WindowHann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case WindowHamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case WindowBlackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		default:
			panic(fmt.Sprintf("signal: unknown window kind %d", int(k)))
		}
	}
	return w
}

// KaiserWindow returns the n-point Kaiser window with shape parameter
// beta >= 0 (0 degenerates to rectangular). Larger beta trades main-lobe
// width for lower sidelobes.
func KaiserWindow(n int, beta float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("signal: window length %d <= 0", n))
	}
	if beta < 0 {
		panic(fmt.Sprintf("signal: negative Kaiser beta %v", beta))
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := besselI0(beta)
	half := float64(n-1) / 2
	for i := 0; i < n; i++ {
		x := (float64(i) - half) / half
		w[i] = besselI0(beta*math.Sqrt(1-x*x)) / den
	}
	return w
}

// besselI0 evaluates the zeroth-order modified Bessel function of the
// first kind by its rapidly converging power series.
func besselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-16*sum {
			break
		}
	}
	return sum
}

// ApplyWindow multiplies x element-wise by the window coefficients w.
// len(w) must equal len(x).
func ApplyWindow(x []complex128, w []float64) {
	if len(x) != len(w) {
		panic(fmt.Sprintf("signal: window length %d != data length %d", len(w), len(x)))
	}
	for i := range x {
		x[i] *= complex(w[i], 0)
	}
}

// CoherentGain returns the window's coherent (DC) gain, sum(w)/n — the
// factor by which a windowed DFT scales a zero-frequency tone.
func CoherentGain(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	return s / float64(len(w))
}

// NoiseGain returns the window's incoherent (noise) power gain,
// sum(w^2)/n.
func NoiseGain(w []float64) float64 {
	var s float64
	for _, v := range w {
		s += v * v
	}
	return s / float64(len(w))
}
