package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// dftTabulated is the naive O(n^2) DFT reference with the complex
// exponentials tabulated once: exp(-2*pi*i*k*t/n) = table[(k*t) mod n].
// It is mathematically identical to DFT but fast enough to serve as the
// reference at length 8192.
func dftTabulated(x []complex128) []complex128 {
	n := len(x)
	tab := make([]complex128, n)
	for k := 0; k < n; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tab[k] = complex(c, s)
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		idx := 0
		for t := 0; t < n; t++ {
			sum += x[t] * tab[idx]
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		out[k] = sum
	}
	return out
}

// fftRecurrence is the pre-table radix-2 kernel: twiddles derived by the
// w *= wStep recurrence, which accumulates O(n) rounding drift across each
// stage. Kept here as the yardstick the table-driven kernel must beat.
func fftRecurrence(x []complex128) {
	n := len(x)
	t := tablesFor(n)
	for i, jj := range t.rev {
		if j := int(jj); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

func rmsError(got, want []complex128) float64 {
	var sum float64
	for i := range got {
		d := got[i] - want[i]
		sum += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(sum / float64(len(got)))
}

// TestFFTTableAccuracy checks that the table-driven radix-2 kernel matches
// the naive DFT reference at least as tightly as the old w *= wStep
// recurrence did, and within an absolute tolerance well below the
// recurrence's drift, at the pipeline's representative lengths.
func TestFFTTableAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{128, 1024, 8192} {
		x := randVec(rng, n)
		want := dftTabulated(x)

		table := append([]complex128(nil), x...)
		FFT(table)
		rec := append([]complex128(nil), x...)
		fftRecurrence(rec)

		tableErr := rmsError(table, want)
		recErr := rmsError(rec, want)
		t.Logf("n=%d: table rms error %.3g, recurrence rms error %.3g", n, tableErr, recErr)
		if tableErr > recErr {
			t.Errorf("n=%d: table kernel error %g exceeds recurrence error %g", n, tableErr, recErr)
		}
		// Absolute bound: a few rounding steps per butterfly stage. The
		// recurrence misses this bound at the larger lengths — that gap is
		// the point of the tables.
		bound := 1e-15 * float64(n) * math.Sqrt(math.Log2(float64(n)))
		if tableErr > bound {
			t.Errorf("n=%d: table kernel rms error %g above tolerance %g", n, tableErr, bound)
		}
	}
}

// TestFFTTableSingleToneExact checks accuracy against the analytic result:
// a unit-magnitude complex exponential at bin k transforms to exactly n at
// bin k and 0 elsewhere.
func TestFFTTableSingleToneExact(t *testing.T) {
	for _, n := range []int{128, 1024, 8192} {
		k := n/3 + 1
		x := make([]complex128, n)
		for i := 0; i < n; i++ {
			s, c := math.Sincos(2 * math.Pi * float64(k) * float64(i) / float64(n))
			x[i] = complex(c, s)
		}
		FFT(x)
		var worst float64
		for i, v := range x {
			want := complex128(0)
			if i == k {
				want = complex(float64(n), 0)
			}
			if d := cmplx.Abs(v - want); d > worst {
				worst = d
			}
		}
		if worst > 1e-10*float64(n) {
			t.Errorf("n=%d: single-tone max deviation %g", n, worst)
		}
	}
}
