package signal

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestBesselI0KnownValues(t *testing.T) {
	// Reference values of I0 (Abramowitz & Stegun).
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1, 1.2660658777520084},
		{2, 2.2795853023360673},
		{5, 27.239871823604442},
	}
	for _, c := range cases {
		if got := besselI0(c.x); math.Abs(got-c.want) > 1e-10*c.want {
			t.Errorf("I0(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
}

func TestKaiserWindowShape(t *testing.T) {
	w := KaiserWindow(65, 7)
	// Symmetric, peak 1 at centre, tapering monotonically outward.
	for i := 0; i < len(w)/2; i++ {
		if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
			t.Fatalf("not symmetric at %d", i)
		}
	}
	if math.Abs(w[32]-1) > 1e-12 {
		t.Errorf("centre = %g, want 1", w[32])
	}
	for i := 1; i <= 32; i++ {
		if w[i] < w[i-1] {
			t.Fatalf("not monotone rising at %d", i)
		}
	}
	// Beta 0 is rectangular.
	r := KaiserWindow(8, 0)
	for i, v := range r {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("beta=0 w[%d] = %g, want 1", i, v)
		}
	}
	if w := KaiserWindow(1, 5); w[0] != 1 {
		t.Error("length-1 Kaiser should be [1]")
	}
	if w := Window(WindowKaiser, 33); len(w) != 33 {
		t.Error("WindowKaiser dispatch broken")
	}
	if WindowKaiser.String() != "kaiser" {
		t.Error("String broken")
	}
}

func TestKaiserSidelobesBeatHann(t *testing.T) {
	// Measure the peak sidelobe of the windowed DFT of an on-bin tone:
	// Kaiser beta=9 must beat Hann's ~-31 dB first sidelobe comfortably.
	const n = 64
	const pad = 1024
	sidelobe := func(w []float64) float64 {
		x := make([]complex128, pad)
		for i := 0; i < n; i++ {
			x[i] = complex(w[i], 0)
		}
		FFT(x)
		var main float64
		for _, v := range x {
			if a := cmplx.Abs(v); a > main {
				main = a
			}
		}
		// Main lobe of the zero-frequency response occupies the lowest
		// few padded bins on both ends; search outside it.
		var worst float64
		lobe := pad / n * 8
		for i := lobe; i < pad-lobe; i++ {
			if a := cmplx.Abs(x[i]); a > worst {
				worst = a
			}
		}
		return 20 * math.Log10(worst/main)
	}
	hann := sidelobe(Window(WindowHann, n))
	kaiser := sidelobe(KaiserWindow(n, 9))
	if kaiser > hann-10 {
		t.Errorf("Kaiser sidelobe %.1f dB not clearly below Hann %.1f dB", kaiser, hann)
	}
	t.Logf("peak sidelobes: hann %.1f dB, kaiser(9) %.1f dB", hann, kaiser)
}

func TestKaiserPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("n<=0", func() { KaiserWindow(0, 1) })
	mustPanic("beta<0", func() { KaiserWindow(8, -1) })
}
