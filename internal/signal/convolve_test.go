package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvolveDirectKnown(t *testing.T) {
	x := []complex128{1, 2, 3}
	h := []complex128{1, 1}
	got := ConvolveDirect(x, h)
	want := []complex128{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ConvolveDirect(nil, h) != nil || ConvolveDirect(x, nil) != nil {
		t.Error("empty operand should produce nil")
	}
}

func TestFastConvolverMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, l int }{{8, 3}, {100, 17}, {64, 64}, {1, 1}, {33, 5}} {
		x := randVec(rng, tc.n)
		h := randVec(rng, tc.l)
		fc := NewFastConvolver(tc.n, h)
		got := fc.Convolve(x, nil)
		want := ConvolveDirect(x, h)
		if len(got) != len(want) || fc.OutLen() != len(want) {
			t.Fatalf("n=%d l=%d: len %d, want %d", tc.n, tc.l, len(got), len(want))
		}
		if d := maxDiff(got, want); d > 1e-8*float64(tc.n+tc.l) {
			t.Errorf("n=%d l=%d: fast vs direct diff %g", tc.n, tc.l, d)
		}
	}
}

func TestFastConvolverReuseAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := randVec(rng, 9)
	fc := NewFastConvolver(32, h)
	x1 := randVec(rng, 32)
	x2 := randVec(rng, 32)
	out := make([]complex128, fc.OutLen())
	got1 := fc.Convolve(x1, out)
	want1 := ConvolveDirect(x1, h)
	if d := maxDiff(got1, want1); d > 1e-8 {
		t.Errorf("first convolve diff %g", d)
	}
	cl := fc.Clone()
	got2 := cl.Convolve(x2, nil)
	want2 := ConvolveDirect(x2, h)
	if d := maxDiff(got2, want2); d > 1e-8 {
		t.Errorf("clone convolve diff %g", d)
	}
	// Reusing the original after cloning must still work (scratch is not shared).
	got1b := fc.Convolve(x1, nil)
	if d := maxDiff(got1b, want1); d > 1e-8 {
		t.Errorf("re-used convolver diff %g", d)
	}
}

func TestFastConvolverPanics(t *testing.T) {
	fc := NewFastConvolver(8, []complex128{1})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("wrong input length", func() { fc.Convolve(make([]complex128, 4), nil) })
	mustPanic("bad n", func() { NewFastConvolver(0, []complex128{1}) })
	mustPanic("empty kernel", func() { NewFastConvolver(4, nil) })
}

func TestConvolutionTheoremProperty(t *testing.T) {
	// conv(x, h) computed fast equals direct for random shapes.
	f := func(seed int64, nRaw, lRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%60 + 1
		l := int(lRaw)%20 + 1
		x := randVec(rng, n)
		h := randVec(rng, l)
		fc := NewFastConvolver(n, h)
		return maxDiff(fc.Convolve(x, nil), ConvolveDirect(x, h)) < 1e-7*float64(n+l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatchedFilterCompressesChirp(t *testing.T) {
	// Pulse compression of a chirp must concentrate energy at the target
	// gate with gain ~ sqrt(pulse length) relative to the uncompressed echo.
	const nRange = 256
	const pulseLen = 64
	chirp := LFMChirp(pulseLen, 0.8)
	mf := MatchedFilter(chirp)

	// Scene: a single unit scatterer at gate g0 produces a chirp echo
	// starting at g0.
	const g0 = 100
	scene := make([]complex128, nRange)
	for i, c := range chirp {
		scene[g0+i] = c
	}
	fc := NewFastConvolver(nRange, mf)
	full := fc.Convolve(scene, nil)
	prof := fc.MatchedOutput(full)
	if len(prof) != nRange {
		t.Fatalf("MatchedOutput length %d, want %d", len(prof), nRange)
	}
	// Peak must land exactly at g0.
	peakIdx, peakVal := -1, 0.0
	for i, v := range prof {
		if a := cmplx.Abs(v); a > peakVal {
			peakVal, peakIdx = a, i
		}
	}
	if peakIdx != g0 {
		t.Errorf("compressed peak at %d, want %d", peakIdx, g0)
	}
	// Unit-energy matched filter: peak value = sqrt(energy of pulse) = sqrt(pulseLen).
	if want := math.Sqrt(pulseLen); math.Abs(peakVal-want) > 0.05*want {
		t.Errorf("peak value %g, want ~%g", peakVal, want)
	}
	// Peak sidelobe at least ~10 dB below the main lobe away from the
	// mainlobe vicinity.
	var maxSide float64
	for i, v := range prof {
		if i >= g0-3 && i <= g0+3 {
			continue
		}
		if a := cmplx.Abs(v); a > maxSide {
			maxSide = a
		}
	}
	if maxSide > peakVal/3 {
		t.Errorf("sidelobe %g too high vs peak %g", maxSide, peakVal)
	}
}
