package signal

import "fmt"

// ConvolveDirect computes the full linear convolution of x and h directly in
// O(len(x)*len(h)). It is the reference implementation used by tests and is
// competitive for very short kernels.
func ConvolveDirect(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// FastConvolver performs repeated linear convolutions of length-n signals
// with a fixed kernel h using the FFT overlap-free (single-block) method:
// both operands are zero-padded to a power of two >= n+len(h)-1, the kernel
// spectrum is precomputed, and each Convolve costs two FFTs.
//
// This is the shape of pulse compression in the STAP pipeline: one fixed
// replica correlated against every (beam, Doppler) range profile.
type FastConvolver struct {
	n      int // signal length
	hLen   int
	m      int // padded FFT length
	hfft   []complex128
	buf    []complex128
	outLen int
}

// NewFastConvolver builds a convolver for signals of length n with kernel h.
func NewFastConvolver(n int, h []complex128) *FastConvolver {
	if n <= 0 || len(h) == 0 {
		panic(fmt.Sprintf("signal: NewFastConvolver n=%d len(h)=%d", n, len(h)))
	}
	outLen := n + len(h) - 1
	m := NextPow2(outLen)
	hf := make([]complex128, m)
	copy(hf, h)
	FFT(hf)
	return &FastConvolver{
		n:      n,
		hLen:   len(h),
		m:      m,
		hfft:   hf,
		buf:    make([]complex128, m),
		outLen: outLen,
	}
}

// OutLen returns the full convolution output length n+len(h)-1.
func (fc *FastConvolver) OutLen() int { return fc.outLen }

// Convolve computes the full linear convolution of x (len n) with the
// kernel into out (len >= OutLen()) and returns out[:OutLen()]. If out is
// nil a new slice is allocated. Convolve is not safe for concurrent use of
// a single FastConvolver; clone one per goroutine with Clone.
func (fc *FastConvolver) Convolve(x []complex128, out []complex128) []complex128 {
	if len(x) != fc.n {
		panic(fmt.Sprintf("signal: FastConvolver built for n=%d, got %d", fc.n, len(x)))
	}
	if out == nil {
		out = make([]complex128, fc.outLen)
	}
	b := fc.buf
	copy(b, x)
	for i := fc.n; i < fc.m; i++ {
		b[i] = 0
	}
	FFT(b)
	for i := range b {
		b[i] *= fc.hfft[i]
	}
	IFFT(b)
	copy(out[:fc.outLen], b[:fc.outLen])
	return out[:fc.outLen]
}

// MatchedOutput trims a full convolution with a matched filter of length L
// to the "valid + aligned" region used by pulse compression: the peak for a
// scatterer at range gate r appears at output index r+L-1 of the full
// convolution, so the compressed profile of length n is full[L-1 : L-1+n].
func (fc *FastConvolver) MatchedOutput(full []complex128) []complex128 {
	return full[fc.hLen-1 : fc.hLen-1+fc.n]
}

// Clone returns an independent convolver sharing the (immutable)
// precomputed kernel spectrum but with its own scratch buffer, suitable for
// use by another goroutine.
func (fc *FastConvolver) Clone() *FastConvolver {
	cp := *fc
	cp.buf = make([]complex128, fc.m)
	return &cp
}
