package signal

import "fmt"

// ConvolveDirect computes the full linear convolution of x and h directly in
// O(len(x)*len(h)). It is the reference implementation used by tests and is
// competitive for very short kernels.
func ConvolveDirect(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, xv := range x {
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// FastConvolver performs repeated linear convolutions of length-n signals
// with a fixed kernel h using the FFT overlap-free (single-block) method:
// both operands are zero-padded to a power of two >= n+len(h)-1, the kernel
// spectrum is precomputed, and each Convolve costs two FFTs.
//
// This is the shape of pulse compression in the STAP pipeline: one fixed
// replica correlated against every (beam, Doppler) range profile.
type FastConvolver struct {
	n      int // signal length
	hLen   int
	m      int // padded FFT length
	hfft   []complex128
	buf    []complex128
	bufs   [][]complex128 // batch scratch; bufs[0] == buf
	outLen int
}

// NewFastConvolver builds a convolver for signals of length n with kernel h.
func NewFastConvolver(n int, h []complex128) *FastConvolver {
	if n <= 0 || len(h) == 0 {
		panic(fmt.Sprintf("signal: NewFastConvolver n=%d len(h)=%d", n, len(h)))
	}
	outLen := n + len(h) - 1
	m := NextPow2(outLen)
	hf := make([]complex128, m)
	copy(hf, h)
	FFT(hf)
	fc := &FastConvolver{
		n:      n,
		hLen:   len(h),
		m:      m,
		hfft:   hf,
		buf:    make([]complex128, m),
		outLen: outLen,
	}
	fc.bufs = [][]complex128{fc.buf}
	return fc
}

// EnsureBatch grows the convolver's scratch so MatchedFilterMany can carry
// up to b signals through one batched transform pass. Shrinking is a
// no-op. Like all scratch mutation it is not safe concurrently with use.
func (fc *FastConvolver) EnsureBatch(b int) {
	for len(fc.bufs) < b {
		fc.bufs = append(fc.bufs, make([]complex128, fc.m))
	}
}

// OutLen returns the full convolution output length n+len(h)-1.
func (fc *FastConvolver) OutLen() int { return fc.outLen }

// Convolve computes the full linear convolution of x (len n) with the
// kernel into out (len >= OutLen()) and returns out[:OutLen()]. If out is
// nil a new slice is allocated. Convolve is not safe for concurrent use of
// a single FastConvolver; clone one per goroutine with Clone.
func (fc *FastConvolver) Convolve(x []complex128, out []complex128) []complex128 {
	if len(x) != fc.n {
		panic(fmt.Sprintf("signal: FastConvolver built for n=%d, got %d", fc.n, len(x)))
	}
	if out == nil {
		out = make([]complex128, fc.outLen)
	}
	b := fc.buf
	copy(b, x)
	for i := fc.n; i < fc.m; i++ {
		b[i] = 0
	}
	FFT(b)
	for i := range b {
		b[i] *= fc.hfft[i]
	}
	IFFT(b)
	copy(out[:fc.outLen], b[:fc.outLen])
	return out[:fc.outLen]
}

// MatchedOutput trims a full convolution with a matched filter of length L
// to the "valid + aligned" region used by pulse compression: the peak for a
// scatterer at range gate r appears at output index r+L-1 of the full
// convolution, so the compressed profile of length n is full[L-1 : L-1+n].
func (fc *FastConvolver) MatchedOutput(full []complex128) []complex128 {
	return full[fc.hLen-1 : fc.hLen-1+fc.n]
}

// MatchedFilterMany pulse-compresses every profile in place:
// prof <- MatchedOutput(Convolve(prof)), each profile of length n. The
// profiles move through the convolver's batch scratch in chunks (grow the
// chunk size with EnsureBatch), and within a chunk the forward and inverse
// transforms run level-major across the batch, walking the shared twiddle
// tables and the kernel spectrum once per stage instead of once per
// profile. Each profile's arithmetic is exactly Convolve's, so the
// compressed values are bit-identical to the one-at-a-time path.
func (fc *FastConvolver) MatchedFilterMany(profs [][]complex128) {
	t := tablesFor(fc.m)
	for len(profs) > 0 {
		chunk := profs
		if len(chunk) > len(fc.bufs) {
			chunk = chunk[:len(fc.bufs)]
		}
		profs = profs[len(chunk):]
		bufs := fc.bufs[:len(chunk)]
		for i, prof := range chunk {
			if len(prof) != fc.n {
				panic(fmt.Sprintf("signal: FastConvolver built for n=%d, got %d", fc.n, len(prof)))
			}
			b := bufs[i]
			copy(b, prof)
			for j := fc.n; j < fc.m; j++ {
				b[j] = 0
			}
			t.permute(b)
		}
		t.stagesMany(bufs, false)
		for _, b := range bufs {
			for j := range b {
				b[j] *= fc.hfft[j]
			}
			t.permute(b)
		}
		t.stagesMany(bufs, true)
		inv := float64(fc.m)
		for i, prof := range chunk {
			b := bufs[i]
			for j := range b {
				b[j] = complex(real(b[j])/inv, imag(b[j])/inv)
			}
			copy(prof, b[fc.hLen-1:fc.hLen-1+fc.n])
		}
	}
}

// Clone returns an independent convolver sharing the (immutable)
// precomputed kernel spectrum but with its own scratch buffers (including
// the batch scratch), suitable for use by another goroutine.
func (fc *FastConvolver) Clone() *FastConvolver {
	cp := *fc
	cp.buf = make([]complex128, fc.m)
	cp.bufs = [][]complex128{cp.buf}
	cp.EnsureBatch(len(fc.bufs))
	return &cp
}
