package signal_test

import (
	"fmt"
	"math/cmplx"

	"stapio/internal/signal"
)

// Pulse compression: correlate a range profile containing a chirp echo
// with the matched filter; the energy collapses onto the target's gate.
func ExampleFastConvolver() {
	const pulseLen = 32
	const nRange = 128
	const targetGate = 77
	chirp := signal.LFMChirp(pulseLen, 0.8)
	scene := make([]complex128, nRange)
	for i, c := range chirp {
		scene[targetGate+i] = c
	}
	fc := signal.NewFastConvolver(nRange, signal.MatchedFilter(chirp))
	profile := fc.MatchedOutput(fc.Convolve(scene, nil))
	peak, at := 0.0, -1
	for r, v := range profile {
		if a := cmplx.Abs(v); a > peak {
			peak, at = a, r
		}
	}
	fmt.Printf("compressed peak at gate %d, gain %.1f\n", at, peak)
	// Output:
	// compressed peak at gate 77, gain 5.7
}

// A forward/inverse transform pair is the identity for any length,
// power-of-two or not (Bluestein handles the rest).
func ExampleNewPlan() {
	x := []complex128{1, 2i, -3, 0, 5, -1i, 0.5}
	plan := signal.NewPlan(len(x))
	y := append([]complex128(nil), x...)
	plan.Forward(y)
	plan.Inverse(y)
	fmt.Printf("roundtrip exact to 1e-12: %v\n", maxErr(x, y) < 1e-12)
	// Output:
	// roundtrip exact to 1e-12: true
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
