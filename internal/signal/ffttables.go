package signal

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// fftTables holds the immutable precomputed state for power-of-two radix-2
// transforms of one length: the bit-reversal permutation and the twiddle
// factors tw[k] = exp(-2*pi*i*k/n) for k in [0, n/2). Each butterfly reads
// its twiddle directly from the table (conjugated for inverse transforms)
// instead of deriving it by the w *= wStep recurrence, which both removes
// the per-butterfly complex multiply and the O(n) rounding drift the
// recurrence accumulates across a stage.
//
// Tables are built once per length, cached process-wide, and never written
// after publication, so any number of goroutines may transform concurrently
// with the same tables.
type fftTables struct {
	n   int
	rev []int32
	tw  []complex128
}

// tableCache maps transform length -> *fftTables. Entries are immutable
// once stored; duplicate racing builds are harmless (last store wins, both
// values are identical).
var tableCache sync.Map

// tablesFor returns the cached tables for power-of-two length n, building
// them on first use.
func tablesFor(n int) *fftTables {
	if v, ok := tableCache.Load(n); ok {
		return v.(*fftTables)
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("signal: radix-2 FFT length %d is not a power of two", n))
	}
	t := &fftTables{n: n, rev: make([]int32, n), tw: make([]complex128, n/2)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		t.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	// Each twiddle is computed directly from its own angle, so the table
	// entry error is one rounding of sin/cos rather than k accumulated
	// complex multiplies.
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		s, c := math.Sincos(angle)
		t.tw[k] = complex(c, s)
	}
	tableCache.Store(n, t)
	return t
}

// transform runs the in-place radix-2 transform using the tables. The
// inverse transform is unnormalised (callers divide by n).
func (t *fftTables) transform(x []complex128, inverse bool) {
	n := t.n
	for i, jj := range t.rev {
		if j := int(jj); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			tk := 0
			for k := 0; k < half; k++ {
				w := t.tw[tk]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				tk += stride
			}
		}
	}
}
