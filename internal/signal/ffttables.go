package signal

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// fftTables holds the immutable precomputed state for power-of-two
// transforms of one length: the bit-reversal permutation and the twiddle
// factors tw[k] = exp(-2*pi*i*k/n) for k in [0, n/2). Each butterfly reads
// its twiddle directly from the table (conjugated for inverse transforms)
// instead of deriving it by the w *= wStep recurrence, which both removes
// the per-butterfly complex multiply and the O(n) rounding drift the
// recurrence accumulates across a stage.
//
// The butterfly passes run as a radix-2^2 kernel: pairs of radix-2 stages
// are fused so four elements are loaded, carried through both stages in
// registers, and stored once — half the loads and stores of the plain
// radix-2 sweep. The fused pass performs exactly the radix-2 operations in
// exactly the radix-2 order (the second stage's two twiddles are the table
// entries tw[2k] would address anyway, the odd one offset by n/4), so its
// output is bit-identical to two sequential radix-2 stages. That identity
// is a pinned contract: Doppler spectra, convolution results, and the
// banded-mode determinism tests all assume the transform of a given input
// never changes bits.
//
// Tables are built once per length, cached process-wide, and never written
// after publication, so any number of goroutines may transform concurrently
// with the same tables.
type fftTables struct {
	n   int
	rev []int32
	tw  []complex128
}

// tableCache maps transform length -> *fftTables. Entries are immutable
// once stored; duplicate racing builds are harmless (last store wins, both
// values are identical).
var tableCache sync.Map

// tablesFor returns the cached tables for power-of-two length n, building
// them on first use.
func tablesFor(n int) *fftTables {
	if v, ok := tableCache.Load(n); ok {
		return v.(*fftTables)
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("signal: radix-2 FFT length %d is not a power of two", n))
	}
	t := &fftTables{n: n, rev: make([]int32, n), tw: make([]complex128, n/2)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		t.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	// Each twiddle is computed directly from its own angle, so the table
	// entry error is one rounding of sin/cos rather than k accumulated
	// complex multiplies.
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		s, c := math.Sincos(angle)
		t.tw[k] = complex(c, s)
	}
	tableCache.Store(n, t)
	return t
}

// permute applies the bit-reversal permutation in place.
func (t *fftTables) permute(x []complex128) {
	for i, jj := range t.rev {
		if j := int(jj); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// scatterWindowed writes widen(src[i])*win[i] into dst in bit-reversed
// order — the Doppler window multiply fused into the bit-reversal copy, so
// the stages can run on dst without a separate permutation pass. The
// resulting array holds exactly the values a widen+multiply fill followed
// by permute would, so the transform output is unchanged bit for bit.
func (t *fftTables) scatterWindowed(src []complex64, win []float64, dst []complex128) {
	_ = src[len(t.rev)-1]
	_ = win[len(t.rev)-1]
	for i, jj := range t.rev {
		dst[jj] = complex128(src[i]) * complex(win[i], 0)
	}
}

// stages runs the butterfly passes over bit-reversal-permuted data. The
// inverse transform is unnormalised (callers divide by n).
func (t *fftTables) stages(x []complex128, inverse bool) {
	n := t.n
	size := 2
	for size*2 <= n {
		t.fusedPass(x, size, inverse)
		size <<= 2
	}
	if size <= n {
		t.radix2Pass(x, size, inverse)
	}
}

// fusedPass performs the radix-2 stages of span s and 2s in one sweep:
// each group of four elements is carried through both butterflies in
// registers. Operation-for-operation identical to the two plain stages.
func (t *fftTables) fusedPass(x []complex128, s int, inverse bool) {
	n := t.n
	h := s >> 1
	stride1 := n / s
	stride2 := stride1 >> 1
	quarter := n >> 2
	for st := 0; st < n; st += s << 1 {
		t1, t2 := 0, 0
		for k := 0; k < h; k++ {
			w1 := t.tw[t1]
			w2a := t.tw[t2]
			w2b := t.tw[t2+quarter]
			if inverse {
				w1 = complex(real(w1), -imag(w1))
				w2a = complex(real(w2a), -imag(w2a))
				w2b = complex(real(w2b), -imag(w2b))
			}
			i0, i1 := st+k, st+k+h
			i2, i3 := st+s+k, st+s+k+h
			// Stage s on both sub-blocks.
			b := x[i1] * w1
			a := x[i0]
			ta, tb := a+b, a-b
			d := x[i3] * w1
			c := x[i2]
			tc, td := c+d, c-d
			// Stage 2s across the sub-blocks.
			u := tc * w2a
			x[i0], x[i2] = ta+u, ta-u
			v := td * w2b
			x[i1], x[i3] = tb+v, tb-v
			t1 += stride1
			t2 += stride2
		}
	}
}

// radix2Pass performs one plain radix-2 stage of the given span — the
// trailing stage when the total stage count is odd.
func (t *fftTables) radix2Pass(x []complex128, size int, inverse bool) {
	n := t.n
	half := size >> 1
	stride := n / size
	for start := 0; start < n; start += size {
		tk := 0
		for k := 0; k < half; k++ {
			w := t.tw[tk]
			if inverse {
				w = complex(real(w), -imag(w))
			}
			a := x[start+k]
			b := x[start+k+half] * w
			x[start+k] = a + b
			x[start+k+half] = a - b
			tk += stride
		}
	}
}

// stagesMany runs the butterfly passes over a batch of permuted buffers
// level by level: every buffer finishes one stage pair before the next
// begins, so the twiddle entries of each level are walked while hot
// instead of once per buffer.
func (t *fftTables) stagesMany(xs [][]complex128, inverse bool) {
	n := t.n
	size := 2
	for size*2 <= n {
		for _, x := range xs {
			t.fusedPass(x, size, inverse)
		}
		size <<= 2
	}
	if size <= n {
		for _, x := range xs {
			t.radix2Pass(x, size, inverse)
		}
	}
}

// transform runs the in-place transform using the tables. The inverse
// transform is unnormalised (callers divide by n).
func (t *fftTables) transform(x []complex128, inverse bool) {
	t.permute(x)
	t.stages(x, inverse)
}
