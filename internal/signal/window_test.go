package signal

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestWindowShapes(t *testing.T) {
	const n = 64
	for _, k := range []WindowKind{WindowRect, WindowHann, WindowHamming, WindowBlackman} {
		w := Window(k, n)
		if len(w) != n {
			t.Fatalf("%v: len %d", k, len(w))
		}
		// Symmetry.
		for i := 0; i < n/2; i++ {
			if math.Abs(w[i]-w[n-1-i]) > 1e-12 {
				t.Errorf("%v: not symmetric at %d: %g vs %g", k, i, w[i], w[n-1-i])
			}
		}
		// Peak at (or near) centre, all coefficients within [0, 1+eps].
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v: w[%d] = %g outside [0,1]", k, i, v)
			}
		}
	}
	if w := Window(WindowHann, 1); w[0] != 1 {
		t.Errorf("length-1 window = %v, want [1]", w)
	}
}

func TestWindowTaperEnds(t *testing.T) {
	w := Window(WindowHann, 32)
	if w[0] > 1e-12 || w[31] > 1e-12 {
		t.Errorf("Hann endpoints = %g, %g, want 0", w[0], w[31])
	}
	h := Window(WindowHamming, 32)
	if math.Abs(h[0]-0.08) > 1e-9 {
		t.Errorf("Hamming endpoint = %g, want 0.08", h[0])
	}
}

func TestWindowGains(t *testing.T) {
	rect := Window(WindowRect, 100)
	if g := CoherentGain(rect); math.Abs(g-1) > 1e-12 {
		t.Errorf("rect coherent gain %g, want 1", g)
	}
	if g := NoiseGain(rect); math.Abs(g-1) > 1e-12 {
		t.Errorf("rect noise gain %g, want 1", g)
	}
	hann := Window(WindowHann, 4096)
	if g := CoherentGain(hann); math.Abs(g-0.5) > 1e-3 {
		t.Errorf("hann coherent gain %g, want ~0.5", g)
	}
	if g := NoiseGain(hann); math.Abs(g-0.375) > 1e-3 {
		t.Errorf("hann noise gain %g, want ~0.375", g)
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex128{2, 2, 2, 2}
	w := []float64{0, 0.5, 1, 0.25}
	ApplyWindow(x, w)
	want := []complex128{0, 1, 2, 0.5}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ApplyWindow = %v, want %v", x, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched lengths")
		}
	}()
	ApplyWindow(x, w[:2])
}

func TestWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n<=0")
		}
	}()
	Window(WindowHann, 0)
}

func TestWindowKindString(t *testing.T) {
	if WindowHann.String() != "hann" || WindowKind(99).String() == "" {
		t.Error("WindowKind.String misbehaves")
	}
}

func TestSteeringVectors(t *testing.T) {
	// Broadside (u=0): all ones.
	s := SteeringVector(8, 0)
	for i, v := range s {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("broadside element %d = %v", i, v)
		}
	}
	// Unit magnitude everywhere for any angle.
	s = SteeringVector(16, 0.37)
	for i, v := range s {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Errorf("element %d magnitude %g", i, cmplx.Abs(v))
		}
	}
	// Doppler steering at fd=0: all ones; at fd=0.5: alternating sign.
	d := DopplerSteeringVector(4, 0.5)
	want := []complex128{1, -1, 1, -1}
	for i := range want {
		if cmplx.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("doppler steer[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestLFMChirpProperties(t *testing.T) {
	c := LFMChirp(128, 0.9)
	// Constant modulus.
	for i, v := range c {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Errorf("chirp[%d] magnitude %g, want 1", i, cmplx.Abs(v))
		}
	}
	// Matched filter has unit energy.
	mf := MatchedFilter(c)
	var e float64
	for _, v := range mf {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("matched filter energy %g, want 1", e)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("n<=0", func() { LFMChirp(0, 0.5) })
	mustPanic("bw>1", func() { LFMChirp(8, 1.5) })
}
