package signal

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPlanForCachedAndEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 8, 15, 64, 127, 130} {
		p1 := PlanFor(n)
		p2 := PlanFor(n)
		if IsPow2(n) && p1 != p2 {
			t.Errorf("n=%d: power-of-two plans not shared", n)
		}
		if !IsPow2(n) && p1 == p2 {
			t.Errorf("n=%d: Bluestein plans must not share scratch", n)
		}
		x := randVec(rng, n)
		a := append([]complex128(nil), x...)
		b := append([]complex128(nil), x...)
		p1.Forward(a)
		np := NewPlan(n)
		np.Forward(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: cached plan disagrees with NewPlan at bin %d", n, i)
			}
		}
	}
}

func TestForwardManyMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{15, 64, 127} {
		p := PlanFor(n)
		const k = 3
		batch := make([][]complex128, k)
		single := make([][]complex128, k)
		for i := range batch {
			x := randVec(rng, n)
			batch[i] = append([]complex128(nil), x...)
			single[i] = append([]complex128(nil), x...)
			p.Forward(single[i])
		}
		p.ForwardMany(batch)
		for i := range batch {
			for j := range batch[i] {
				if batch[i][j] != single[i][j] {
					t.Fatalf("n=%d: ForwardMany diverges from Forward at buffer %d bin %d", n, i, j)
				}
			}
		}
	}
}

func TestPlanCloneIndependentScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := PlanFor(15)
	clones := []*Plan{p, p.Clone(), p.Clone()}
	inputs := make([][]complex128, len(clones))
	wants := make([][]complex128, len(clones))
	for i := range clones {
		inputs[i] = randVec(rng, 15)
		wants[i] = DFT(inputs[i])
	}
	var wg sync.WaitGroup
	for i, pl := range clones {
		wg.Add(1)
		go func(i int, pl *Plan) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				x := append([]complex128(nil), inputs[i]...)
				pl.Forward(x)
				if maxDiff(x, wants[i]) > 1e-8 {
					t.Errorf("clone %d: corrupted transform", i)
					return
				}
			}
		}(i, pl)
	}
	wg.Wait()
}

func TestConcurrentPow2PlanShared(t *testing.T) {
	// A shared power-of-two plan must be safe for concurrent use: it is
	// stateless and works in place on caller-owned buffers.
	p := PlanFor(256)
	rng := rand.New(rand.NewSource(10))
	x := randVec(rng, 256)
	want := append([]complex128(nil), x...)
	p.Forward(want)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				y := append([]complex128(nil), x...)
				p.Forward(y)
				if maxDiff(y, want) != 0 {
					t.Error("concurrent transforms disagree")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFFTZeroAllocSteadyState(t *testing.T) {
	// After the first call at a length, FFT/IFFT and plan transforms must
	// not allocate: the tables are cached process-wide.
	x := make([]complex128, 1024)
	x[1] = 1
	FFT(x) // warm the table cache
	if n := testing.AllocsPerRun(20, func() { FFT(x); IFFT(x) }); n != 0 {
		t.Errorf("FFT+IFFT allocated %v times per run, want 0", n)
	}
	p := PlanFor(15) // Bluestein
	y := make([]complex128, 15)
	y[1] = 1
	p.Forward(y)
	if n := testing.AllocsPerRun(20, func() { p.Forward(y); p.Inverse(y) }); n != 0 {
		t.Errorf("Bluestein plan allocated %v times per run, want 0", n)
	}
	bufs := [][]complex128{make([]complex128, 64), make([]complex128, 64)}
	pp := PlanFor(64)
	pp.ForwardMany(bufs)
	if n := testing.AllocsPerRun(20, func() { pp.ForwardMany(bufs) }); n != 0 {
		t.Errorf("ForwardMany allocated %v times per run, want 0", n)
	}
}
