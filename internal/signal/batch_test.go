package signal

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for the batched transform entry points: level-major ForwardMany,
// the fused window+scatter ForwardWindowedMany (both power-of-two and
// Bluestein lengths), the no-alloc FFTShiftInto, and the batched matched
// filter. Batching only restructures the order work is issued in — every
// per-buffer result must stay bit-identical to the one-at-a-time calls.

func TestForwardManyLevelMajorMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 8, 64, 128} {
		for _, batch := range []int{1, 2, 5} {
			p := NewPlan(n)
			one := make([][]complex128, batch)
			many := make([][]complex128, batch)
			for b := range one {
				one[b] = randVec(rng, n)
				many[b] = append([]complex128(nil), one[b]...)
				p.Forward(one[b])
			}
			p.ForwardMany(many)
			for b := range one {
				for i := range one[b] {
					if one[b][i] != many[b][i] {
						t.Fatalf("n=%d batch=%d: ForwardMany[%d][%d] = %v, Forward %v",
							n, batch, b, i, many[b][i], one[b][i])
					}
				}
			}
		}
	}
}

func TestForwardWindowedManyMatchesFillForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// 15 and 53 exercise the Bluestein fallback; the rest the fused
	// radix-2^2 scatter path.
	for _, n := range []int{4, 15, 32, 53, 128} {
		p := NewPlan(n)
		win := make([]float64, n)
		for i := range win {
			win[i] = 0.5 + 0.5*rng.Float64()
		}
		const batch = 3
		srcs := make([][]complex64, batch)
		dsts := make([][]complex128, batch)
		want := make([][]complex128, batch)
		for b := range srcs {
			srcs[b] = make([]complex64, n)
			for i := range srcs[b] {
				srcs[b][i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
			}
			dsts[b] = make([]complex128, n)
			// Reference: widen, multiply, transform one at a time.
			want[b] = make([]complex128, n)
			for i, v := range srcs[b] {
				want[b][i] = complex128(v) * complex(win[i], 0)
			}
			p.Forward(want[b])
		}
		p.ForwardWindowedMany(srcs, win, dsts)
		for b := range dsts {
			for i := range dsts[b] {
				if dsts[b][i] != want[b][i] {
					t.Fatalf("n=%d: ForwardWindowedMany[%d][%d] = %v, fill+Forward %v",
						n, b, i, dsts[b][i], want[b][i])
				}
			}
		}
	}
}

func TestForwardWindowedManyValidates(t *testing.T) {
	p := NewPlan(8)
	win := make([]float64, 8)
	srcs := [][]complex64{make([]complex64, 8)}
	for _, bad := range []func(){
		func() { p.ForwardWindowedMany(srcs, win, nil) },
		func() { p.ForwardWindowedMany(srcs, win[:4], [][]complex128{make([]complex128, 8)}) },
		func() { p.ForwardWindowedMany([][]complex64{make([]complex64, 4)}, win, [][]complex128{make([]complex128, 8)}) },
		func() { p.ForwardWindowedMany(srcs, win, [][]complex128{make([]complex128, 4)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("ForwardWindowedMany accepted mismatched geometry")
				}
			}()
			bad()
		}()
	}
}

func TestFFTShiftInto(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 9} {
		src := make([]int, n)
		for i := range src {
			src[i] = i
		}
		dst := make([]int, n)
		FFTShiftInto(src, dst)
		half := (n + 1) / 2
		for i := range dst {
			want := (i + half) % n
			if dst[i] != want {
				t.Fatalf("n=%d: FFTShiftInto[%d] = %d, want %d", n, i, dst[i], want)
			}
		}
		// The allocating form must agree.
		shifted := FFTShift(complexify(src))
		for i := range shifted {
			if int(real(shifted[i])) != dst[i] {
				t.Fatalf("n=%d: FFTShift disagrees with FFTShiftInto at %d", n, i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("FFTShiftInto accepted mismatched lengths")
		}
	}()
	FFTShiftInto(make([]int, 4), make([]int, 3))
}

func complexify(x []int) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(float64(v), 0)
	}
	return out
}

func TestMatchedFilterManyMatchesConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, c := range []struct{ n, hlen, batch int }{
		{53, 16, 1}, {53, 16, 4}, {64, 9, 3}, {17, 4, 7},
	} {
		h := randVec(rng, c.hlen)
		fc := NewFastConvolver(c.n, h)
		fc.EnsureBatch(c.batch)
		ref := NewFastConvolver(c.n, h)
		full := make([]complex128, ref.OutLen())
		profs := make([][]complex128, c.batch)
		want := make([][]complex128, c.batch)
		for b := range profs {
			profs[b] = randVec(rng, c.n)
			want[b] = append([]complex128(nil), profs[b]...)
			ref.Convolve(want[b], full)
			copy(want[b], ref.MatchedOutput(full))
		}
		fc.MatchedFilterMany(profs)
		for b := range profs {
			for i := range profs[b] {
				if profs[b][i] != want[b][i] {
					t.Fatalf("n=%d hlen=%d batch=%d: prof[%d][%d] = %v, Convolve %v",
						c.n, c.hlen, c.batch, b, i, profs[b][i], want[b][i])
				}
			}
		}
	}
}

func TestMatchedFilterManyBeyondBatch(t *testing.T) {
	// More profiles than EnsureBatch prepared for must still work: the
	// convolver chunks by its scratch depth.
	rng := rand.New(rand.NewSource(24))
	h := randVec(rng, 8)
	fc := NewFastConvolver(40, h)
	fc.EnsureBatch(2)
	ref := NewFastConvolver(40, h)
	full := make([]complex128, ref.OutLen())
	const batch = 5
	profs := make([][]complex128, batch)
	want := make([][]complex128, batch)
	for b := range profs {
		profs[b] = randVec(rng, 40)
		want[b] = append([]complex128(nil), profs[b]...)
		ref.Convolve(want[b], full)
		copy(want[b], ref.MatchedOutput(full))
	}
	fc.MatchedFilterMany(profs)
	for b := range profs {
		for i := range profs[b] {
			if profs[b][i] != want[b][i] {
				t.Fatalf("prof[%d][%d] = %v, want %v", b, i, profs[b][i], want[b][i])
			}
		}
	}
}

func TestFusedStagesMatchDFT(t *testing.T) {
	// The radix-2^2 fused passes must stay a correct DFT across sizes
	// that end on both a fused and a lone radix-2 level.
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 256, 1024} {
		x := randVec(rng, n)
		want := DFT(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		var worst float64
		for i := range got {
			d := got[i] - want[i]
			if e := math.Hypot(real(d), imag(d)); e > worst {
				worst = e
			}
		}
		if worst > 1e-9*float64(n) {
			t.Errorf("n=%d: fused-stage FFT differs from DFT by %g", n, worst)
		}
	}
}
