package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randVec(rng, n)
		want := DFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT differs from DFT by %g", n, d)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 16, 128, 1024} {
		x := randVec(rng, n)
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		if d := maxDiff(x, y); d > 1e-9*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two FFT")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin k transforms to n at bin k, 0 elsewhere.
	n, k := 64, 5
	x := make([]complex128, n)
	for t2 := 0; t2 < n; t2++ {
		x[t2] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)*float64(t2)/float64(n)))
	}
	FFT(x)
	for i, v := range x {
		want := complex128(0)
		if i == k {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(ar, ai, br, bi float64) bool {
		n := 32
		a := complex(math.Mod(ar, 4), math.Mod(ai, 4))
		b := complex(math.Mod(br, 4), math.Mod(bi, 4))
		x := randVec(rng, n)
		y := randVec(rng, n)
		// FFT(a*x + b*y) == a*FFT(x) + b*FFT(y)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = a*x[i] + b*y[i]
		}
		FFT(lhs)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		FFT(fx)
		FFT(fy)
		for i := range fx {
			if cmplx.Abs(lhs[i]-(a*fx[i]+b*fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		x := randVec(r, n)
		var te float64
		for _, v := range x {
			te += real(v)*real(v) + imag(v)*imag(v)
		}
		FFT(x)
		var fe float64
		for _, v := range x {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(fe/float64(n)-te) < 1e-6*(1+te)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPlanPow2AndBluestein(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 5, 12, 17, 100, 128, 130} {
		p := NewPlan(n)
		if p.Len() != n {
			t.Fatalf("Plan.Len = %d, want %d", p.Len(), n)
		}
		x := randVec(rng, n)
		want := DFT(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: Plan.Forward differs from DFT by %g", n, d)
		}
		p.Inverse(got)
		if d := maxDiff(got, x); d > 1e-8*float64(n) {
			t.Errorf("n=%d: Plan roundtrip error %g", n, d)
		}
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input length")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for NextPow2(0)")
		}
	}()
	NextPow2(0)
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
	// Odd length: zero bin x[0] must land at centre index n/2.
	x5 := []complex128{0, 1, 2, 3, 4}
	got5 := FFTShift(x5)
	if got5[2] != 0 {
		t.Errorf("FFTShift odd: centre = %v, want 0 (got %v)", got5[2], got5)
	}
}
