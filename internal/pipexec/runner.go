package pipexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/linalg"
	"stapio/internal/membudget"
	"stapio/internal/stap"
	"stapio/internal/tune"
)

// Config describes a real pipeline execution.
type Config struct {
	// Params are the STAP processing parameters.
	Params stap.Params
	// Workers assigns goroutine counts to the tasks (the analogue of the
	// paper's node assignments; IO is unused — striped reads parallelise
	// internally across stripe directories).
	Workers core.STAPNodes
	// SeparateIO inserts a dedicated read stage in front of the Doppler
	// stage (the paper's second I/O design). When false the Doppler stage
	// consumes the source directly (embedded I/O).
	SeparateIO bool
	// CombinePCCFAR merges pulse compression and CFAR into a single stage
	// (the paper's Section 6 task combination).
	CombinePCCFAR bool
	// Buffer is the inter-stage channel depth (flow control); values < 1
	// become 1.
	Buffer int
	// Reports, when non-nil, receives every CPI's detection reports from
	// the CFAR stage (the output-side I/O strategy).
	Reports ReportSink
	// Retry bounds re-reads of a CPI whose striped read fails or whose
	// payload fails its checksum (zero value: 3 attempts, exponential
	// backoff).
	Retry RetryPolicy
	// Degrade selects what happens when a read stays failed after Retry
	// is exhausted. The default, DegradeFailFast, aborts the run (the
	// pre-resilience behaviour).
	Degrade DegradePolicy
	// StageTimeout, when positive, is the per-CPI deadline of each stage:
	// a read wait that exceeds it is abandoned and retried, and compute
	// services that exceed it are counted in RunStats.DeadlineHits.
	StageTimeout time.Duration
	// ReadAhead is the readahead depth: how many striped reads the read
	// stage keeps in flight beyond the CPI currently being consumed.
	// Values < 1 mean 1, the classic one-deep prefetch (double
	// buffering); deeper windows hide multi-CPI read latency the same way
	// pipesim's PrefetchDepth does in the model.
	ReadAhead int
	// DecodeWorkers shards each cube's checksum verification and decode
	// across this many goroutines when the source supports it
	// (DecodeParallelSource). Values < 1 mean 1, the serial behaviour.
	DecodeWorkers int
	// MaxReadAhead caps how deep the auto-tuner may grow the readahead
	// window (values < 1 mean the default, 32). It also clamps live
	// depth stores from the test seam; the configured ReadAhead itself is
	// not clamped.
	MaxReadAhead int
	// AutoTune, when non-nil, enables the online worker rebalancer: a
	// tune.Controller watches the live per-stage busy counters and swaps
	// the per-stage worker counts between CPIs to equalise busy/workers
	// (the paper's balance condition). With AutoTune.Budget > 0 the
	// configured Workers are replaced by an even split of the budget (the
	// cold start the tuner refines); with Budget 0 the tuner starts from
	// Workers and keeps their sum as the budget. When the source is an
	// instrumentable file frontend the budget additionally covers the I/O
	// knobs — readahead depth and decode workers join the solve as tunable
	// stages, so a source-bound run trades compute workers for prefetch
	// depth (see DESIGN.md §12). Decisions are traced in
	// RunStats.TuneDecisions.
	AutoTune *tune.Config
	// StageLoad injects synthetic per-item service time into the compute
	// stages (see StageLoad) — a workload-shaping knob for benchmarks and
	// tuner tests. The zero value injects nothing.
	StageLoad StageLoad
	// MemBudget, when non-nil, charges every large per-CPI slab — input
	// cube, Doppler cube, beam cube — against a hierarchical byte budget:
	// reads and compute admissions block (deadlock-free, oldest CPI
	// first) until bytes are available, and the tracked residency never
	// exceeds the budget's path limit. nil means unlimited; the runner
	// still accounts against a private unlimited budget so
	// RunStats.MemHighWater works on unbudgeted runs too. Budgets should
	// be per-run (or per-replica children of a shared root): an aborted
	// run may leak charges into a budget that outlives it.
	MemBudget *membudget.Budget
	// Spill, when non-nil (and typically paired with MemBudget), enables
	// the spill tier: cold landed cubes — prefetched by the readahead
	// window but not yet consumed — are evicted to the striped store in
	// the chunked v3 format under budget pressure and transparently
	// reloaded (with per-chunk CRC verify and repair) when consumed.
	Spill *SpillConfig
	// BandRanges is the range-band size of the banded executor
	// (RunBanded); values < 1 mean the full range extent. Ignored by Run
	// and Stream.
	BandRanges int
	// testOnCPI, when set (tests only), runs on the terminal stage's
	// goroutine after each recorded CPI with a setter that swaps live
	// per-stage worker counts — the seam rebalance-determinism tests use
	// to exercise arbitrary swap schedules.
	testOnCPI func(cpi int, set func(stage, workers int))
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	w := c.Workers
	for _, n := range []int{w.Doppler, w.EasyWeight, w.HardWeight, w.EasyBF, w.HardBF, w.PulseComp, w.CFAR} {
		if n < 1 {
			return fmt.Errorf("pipexec: every task needs at least one worker, got %+v", w)
		}
	}
	return nil
}

// CPIResult is the pipeline output for one CPI.
type CPIResult struct {
	Seq        uint64
	Detections []stap.Detection
	// Latency is the wall-clock time from the head stage starting this
	// CPI to CFAR completing it.
	Latency time.Duration
	// Done is when CFAR completed this CPI.
	Done time.Time
}

// StageStat is the wall-clock busy time of one pipeline stage — the real
// executor's analogue of the paper's per-task timing rows.
type StageStat struct {
	Name string
	// CPIs is the number of CPIs the stage processed.
	CPIs int
	// Busy is the total time spent processing (excluding channel waits).
	Busy time.Duration
}

// MeanBusy returns the average processing time per CPI.
func (s StageStat) MeanBusy() time.Duration {
	if s.CPIs == 0 {
		return 0
	}
	return s.Busy / time.Duration(s.CPIs)
}

// Result summarises a run.
type Result struct {
	CPIs []CPIResult
	// Elapsed is the total wall-clock duration of the run.
	Elapsed time.Duration
	// Throughput is CPIs per second of wall-clock time over the whole
	// run (including pipeline fill, so slightly pessimistic).
	Throughput float64
	// Stages holds per-stage busy-time statistics in pipeline order.
	Stages []StageStat
	// Stats holds the resilience counters: retries, drops, checksum
	// failures, deadline hits, weight fallbacks.
	Stats RunStats
}

// SteadyThroughput returns the CPI completion rate between the first and
// last CFAR completions — excluding the pipeline-fill transient that
// Throughput includes. It needs at least two CPIs.
func (r *Result) SteadyThroughput() float64 {
	if len(r.CPIs) < 2 {
		return r.Throughput
	}
	span := r.CPIs[len(r.CPIs)-1].Done.Sub(r.CPIs[0].Done).Seconds()
	if span <= 0 {
		return r.Throughput
	}
	return float64(len(r.CPIs)-1) / span
}

// SteadyTail returns the CPI completion rate over the last k completions
// (in completion order) — the post-convergence throughput of an autotuned
// run, as opposed to SteadyThroughput, which averages the whole run
// including the cold-split phase. It needs at least two of the last k.
func (r *Result) SteadyTail(k int) float64 {
	if k > len(r.CPIs) {
		k = len(r.CPIs)
	}
	if k < 2 {
		return r.SteadyThroughput()
	}
	done := make([]time.Time, 0, len(r.CPIs))
	for _, c := range r.CPIs {
		done = append(done, c.Done)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Before(done[j]) })
	tail := done[len(done)-k:]
	span := tail[len(tail)-1].Sub(tail[0]).Seconds()
	if span <= 0 {
		return r.SteadyThroughput()
	}
	return float64(k-1) / span
}

// MeanLatency returns the average per-CPI latency.
func (r *Result) MeanLatency() time.Duration {
	if len(r.CPIs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, c := range r.CPIs {
		sum += c.Latency
	}
	return sum / time.Duration(len(r.CPIs))
}

// message types between stages

type cubeMsg struct {
	seq   uint64
	cb    *cube.Cube
	start time.Time // latency clock start (head stage service start)
}

type dopplerMsg struct {
	seq uint64
	// h carries the pooled Doppler cube with its fan-out refcount; every
	// consumer releases it when done reading (see pipePools).
	h     *dopplerHandle
	bc    *stap.BeamCube // shared output buffer both BF stages fill
	start time.Time
}

type beamMsg struct {
	seq   uint64
	bc    *stap.BeamCube
	start time.Time
}

// Run pushes n CPIs from src through the pipeline and collects the
// detection reports.
func Run(ctx context.Context, cfg Config, src CubeSource, n int) (*Result, error) {
	cfg, err := withAutoTuneDefaults(cfg, src)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("pipexec: need at least one CPI, got %d", n)
	}
	buf := cfg.Buffer
	if buf < 1 {
		buf = 1
	}
	r := newRunner(cfg, src, n)
	if err := r.initBudget(); err != nil {
		return nil, err
	}
	if err := r.setup(); err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.ctx, r.cancel = ctx, cancel

	start := time.Now()
	wg := r.launch(buf)
	wg.Wait()
	if r.err != nil {
		return nil, r.err
	}
	res := &Result{CPIs: r.results, Elapsed: time.Since(start), Stats: r.snapshotStats()}
	if res.Elapsed > 0 {
		res.Throughput = float64(len(r.results)) / res.Elapsed.Seconds()
	}
	sort.Slice(res.CPIs, func(i, j int) bool { return res.CPIs[i].Seq < res.CPIs[j].Seq })
	for _, c := range r.clocks {
		res.Stages = append(res.Stages, c.stat())
	}
	return res, nil
}

// newRunner builds the per-run state shared by Run and Stream: resolved
// bin sets plus the buffer pools that recycle the per-CPI intermediates.
func newRunner(cfg Config, src CubeSource, n int) *runner {
	r := &runner{cfg: cfg, n: n, src: src}
	r.p = &r.cfg.Params
	r.easyBins = r.p.EasyBins()
	r.hardBins = r.p.HardBins()
	r.pools = newPipePools(r.p)
	ra := cfg.ReadAhead
	if ra < 1 {
		ra = 1
	}
	r.raDepth.Store(int32(ra))
	dw := cfg.DecodeWorkers
	if dw < 1 {
		dw = 1
	}
	r.decW.Store(int32(dw))
	if dp, ok := src.(DecodeParallelSource); ok {
		r.decSrc = dp
		if cfg.DecodeWorkers > 0 {
			dp.SetDecodeWorkers(cfg.DecodeWorkers)
		}
	}
	// Sources keep cumulative ingest counters (they outlive runs), so the
	// run reports deltas against this baseline.
	if is, ok := src.(IOStatSource); ok {
		r.ioSrc = is
		r.ioBase = is.IOStats()
	}
	return r
}

// snapshotStats freezes the run's resilience counters, folding in the
// source's ingest counters (chunk re-reads, repaired reads) as deltas since
// the run began.
func (r *runner) snapshotStats() RunStats {
	st := r.stats.snapshot(r.dropped)
	if r.ioSrc != nil {
		now := r.ioSrc.IOStats()
		st.ChunkRereads = now.ChunkRereads - r.ioBase.ChunkRereads
		st.ChunkRereadBytes = now.ChunkRereadBytes - r.ioBase.ChunkRereadBytes
		st.RepairedReads = now.RepairedReads - r.ioBase.RepairedReads
	}
	st.StageTimes = make([]StageTimeStats, 0, len(r.clocks))
	for _, c := range r.clocks {
		st.StageTimes = append(st.StageTimes, c.timeStats())
	}
	st.FinalReadAhead = int(r.raDepth.Load())
	st.FinalDecodeWorkers = int(r.decW.Load())
	if n := r.stats.raOccupSamples.Load(); n > 0 {
		st.ReadaheadReady = float64(r.stats.raOccupSum.Load()) / float64(n)
	}
	if r.tuner != nil {
		st.TuneStages = r.tuner.StageNames()
		st.TuneDecisions = r.tuner.Trace()
		st.TuneFinalSplit = r.tuner.Split()
	}
	if r.budget != nil {
		ms := r.budget.Stats()
		st.MemLimit = r.budget.PathLimit()
		st.MemHighWater = ms.HighWater
		st.MemStalls = ms.Stalls
		st.MemStall = ms.StallTime
	}
	st.Spills = r.stats.spills.Load()
	st.SpillBytes = r.stats.spillBytes.Load()
	st.Reloads = r.stats.reloads.Load()
	st.ReloadBytes = r.stats.reloadBytes.Load()
	return st
}

// setup creates the stage clocks and the live worker counts (plus the
// tuner, when configured); it must run before launch. Split out of launch
// so controller-configuration errors surface before goroutines exist.
func (r *runner) setup() error {
	clock := func(name string) *stageClock {
		c := &stageClock{name: name}
		r.clocks = append(r.clocks, c)
		return c
	}
	r.ck.read = clock("read")
	r.ck.dop = clock("doppler")
	r.ck.we = clock("easy weight")
	r.ck.wh = clock("hard weight")
	r.ck.bfe = clock("easy BF")
	r.ck.bfh = clock("hard BF")
	if r.cfg.CombinePCCFAR {
		r.ck.pc = clock("pulse compr+CFAR")
	} else {
		r.ck.pc = clock("pulse compr")
		r.ck.cf = clock("CFAR")
	}
	// Instrumentable sources get frontend clocks: per-fetch striped-read
	// latency and per-cube verify+decode wall time, surfaced through
	// Stages/StageTimes like every compute stage and — with AutoTune —
	// feeding the joint I/O + compute solve.
	if cs, ok := r.src.(clockedSource); ok {
		r.srcRead = clock("src read")
		r.srcDecode = clock("src decode")
		cs.setStageClocks(r.srcRead, r.srcDecode)
	}
	return r.initTuning([numTunable]*stageClock{
		r.ck.dop, r.ck.we, r.ck.wh, r.ck.bfe, r.ck.bfh, r.ck.pc, r.ck.cf,
	})
}

// launch creates the inter-stage channels and starts every stage
// goroutine; the returned WaitGroup completes when all stages have exited.
// Shared by Run (fixed CPI count) and Stream (unbounded).
func (r *runner) launch(buf int) *sync.WaitGroup {
	cfg := r.cfg
	cubeCh := make(chan cubeMsg, buf)
	weIn := make(chan dopplerMsg, buf)
	whIn := make(chan dopplerMsg, buf)
	bfeIn := make(chan dopplerMsg, buf)
	bfhIn := make(chan dopplerMsg, buf)
	weOut := make(chan *stap.WeightSet, buf+1)
	whOut := make(chan *stap.WeightSet, buf+1)
	pcIn := make(chan beamMsg, 2*buf)
	cfarIn := make(chan beamMsg, buf)

	wg := &sync.WaitGroup{}
	spawn := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				r.fail(err)
			}
		}()
	}

	// Clocks and live worker counts were created by setup(); stages load
	// their counts from r.wcs once per CPI, so a tuner swap lands cleanly
	// on a CPI boundary.
	spawn(func() error { return r.readStage(r.ck.read, cubeCh) })
	spawn(func() error { return r.dopplerStage(r.ck.dop, cubeCh, weIn, whIn, bfeIn, bfhIn) })
	spawn(func() error { return r.weightStage(r.ck.we, weIn, weOut, r.easyBins, false, tsEasyWeight) })
	spawn(func() error { return r.weightStage(r.ck.wh, whIn, whOut, r.hardBins, true, tsHardWeight) })
	// pcIn has two producers, so neither BF stage may close it alone; a
	// closer goroutine does once both have exited. Downstream termination
	// is therefore by channel close, which stays correct when a skip
	// policy drops CPIs (a fixed CPI count would deadlock the collector).
	bfDone := &sync.WaitGroup{}
	bfDone.Add(2)
	spawnBF := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer bfDone.Done()
			if err := fn(); err != nil {
				r.fail(err)
			}
		}()
	}
	spawnBF(func() error { return r.bfStage(r.ck.bfe, bfeIn, weOut, pcIn, r.easyBins, tsEasyBF) })
	spawnBF(func() error { return r.bfStage(r.ck.bfh, bfhIn, whOut, pcIn, r.hardBins, tsHardBF) })
	wg.Add(1)
	go func() {
		defer wg.Done()
		bfDone.Wait()
		close(pcIn)
	}()
	if cfg.CombinePCCFAR {
		spawn(func() error { return r.pcStage(r.ck.pc, pcIn, nil) })
	} else {
		spawn(func() error { return r.pcStage(r.ck.pc, pcIn, cfarIn) })
		spawn(func() error { return r.cfarStage(r.ck.cf, cfarIn) })
	}
	return wg
}

// stageClock accumulates a stage's busy time in lock-free counters plus a
// service-time histogram. Written by the owning stage goroutine; readable
// live (the tuner samples busy/cpis without stopping the run) and after
// the run for the summary.
type stageClock struct {
	name string
	busy atomic.Int64 // cumulative busy nanoseconds
	cpis atomic.Int64
	hist durHist
}

// add records one CPI's processing time.
func (c *stageClock) add(d time.Duration) {
	c.busy.Add(int64(d))
	c.cpis.Add(1)
	c.hist.record(d)
}

// stat freezes the clock into a StageStat.
func (c *stageClock) stat() StageStat {
	return StageStat{Name: c.name, CPIs: int(c.cpis.Load()), Busy: time.Duration(c.busy.Load())}
}

// pipeClocks names the per-stage clocks (cf is nil in the combined design,
// where pc carries the merged PC+CFAR stage).
type pipeClocks struct {
	read, dop, we, wh, bfe, bfh, pc, cf *stageClock
}

type runner struct {
	cfg      Config
	p        *stap.Params
	n        int
	src      CubeSource
	easyBins []int
	hardBins []int
	pools    *pipePools

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	err     error
	results []CPIResult
	clocks  []*stageClock
	ck      pipeClocks

	// Live per-stage worker counts in tunable-slot order (see tsDoppler
	// etc.); stages Load theirs once per CPI, the tuner (or the test seam)
	// Stores new counts between CPIs.
	wcs []atomic.Int32
	// Live I/O knobs: the readahead depth the read stage loads every
	// window refill, and a mirror of the source's decode worker count.
	// The tuner (or the test seam) stores them between CPIs exactly like
	// the compute counts — growing the window issues more prefetches on
	// the next refill, shrinking drains naturally, and FIFO delivery keeps
	// detections byte-identical either way.
	raDepth atomic.Int32
	decW    atomic.Int32
	// decSrc is the source's decode-pool resize hook (nil when the source
	// has none); srcRead/srcDecode are the frontend stage clocks (nil when
	// the source is not instrumentable).
	decSrc    DecodeParallelSource
	srcRead   *stageClock
	srcDecode *stageClock
	// ioTune is true when the tuner's split carries the two I/O slots
	// after the compute slots.
	ioTune bool
	// Online tuner state; nil without Config.AutoTune. tuneClocks lists
	// the tunable stage clocks in slot order, tuneBusy/tuneCPIs are the
	// reusable snapshot buffers, cpisDone counts recorded CPIs (terminal
	// stage only).
	tuner      *tune.Controller
	tuneClocks []*stageClock
	tuneBusy   []int64
	tuneCPIs   []int64
	cpisDone   int

	// Resilience bookkeeping: atomic counters shared by the stages, plus
	// the dropped-CPI list, which only the read stage appends to and which
	// is read after every stage has exited.
	stats   runStats
	dropped []uint64

	// ioSrc/ioBase support per-run deltas of the source's cumulative
	// ingest counters (see snapshotStats); ioSrc is nil for sources
	// without counters.
	ioSrc  IOStatSource
	ioBase IOStats

	// streamOut, when non-nil, receives each CPI result instead of the
	// results slice accumulating (unbounded memory would defeat streaming).
	streamOut chan<- CPIResult

	// Memory budgeting (see membudget.go): the resolved budget (never nil
	// after initBudget — unbudgeted runs account against a private
	// unlimited one), the per-slab byte costs, the optional spill tier,
	// and the cube-charge registry pairing each issued read's charge with
	// the exactly-one release that retires it.
	budget      *membudget.Budget
	cubeB       int64
	dopB        int64
	beamB       int64
	spiller     *spiller
	chargeMu    sync.Mutex
	cubeCharged map[uint64]bool
}

// fail records the first error and cancels the run.
func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

func (r *runner) record(res CPIResult) {
	if r.streamOut != nil {
		select {
		case r.streamOut <- res:
		case <-r.ctx.Done():
		}
		return
	}
	r.mu.Lock()
	r.results = append(r.results, res)
	r.mu.Unlock()
}

// send delivers v or aborts when the run is cancelled.
func send[T any](r *runner, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// recv receives the next value; ok is false on close or cancellation.
func recv[T any](r *runner, ch <-chan T) (T, bool) {
	var zero T
	select {
	case v, ok := <-ch:
		return v, ok
	case <-r.ctx.Done():
		return zero, false
	}
}

// parallel partitions n work items across w goroutines and runs fn on each
// block, returning the first error. fn receives the worker index (always
// < w) so stages can address per-worker scratch state. With no work
// (n <= 0) fn is never called; w beyond n is truncated so no worker ever
// receives an empty block, and w < 1 degrades to serial.
func parallel(w, n int, fn func(widx int, blk cube.Block) error) error {
	if n <= 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		return fn(0, cube.Block{Lo: 0, Hi: n})
	}
	blocks := cube.Split(n, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i, blk := range blocks {
		wg.Add(1)
		go func(i int, blk cube.Block) {
			defer wg.Done()
			errs[i] = fn(i, blk)
		}(i, blk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// addBusy records one CPI's processing time on the stage clock and checks
// it against the optional per-stage deadline. A compute stage cannot be
// preempted mid-CPI, so an overrun is counted for monitoring rather than
// aborted (read waits, which can be abandoned, are bounded in waitCube).
func (r *runner) addBusy(clk *stageClock, d time.Duration) {
	clk.add(d)
	if r.cfg.StageTimeout > 0 && d > r.cfg.StageTimeout {
		r.stats.deadlineHits.Add(1)
	}
}

// beginRead starts a fetch, routing retries through attempt-aware sources
// so the fault plan re-draws.
func (r *runner) beginRead(seq uint64, attempt int) PendingCube {
	if attempt > 0 {
		if rs, ok := r.src.(RetryableSource); ok {
			return rs.BeginAttempt(seq, attempt)
		}
	}
	return r.src.Begin(seq)
}

// errReadDeadline marks a read wait abandoned at the stage deadline.
var errReadDeadline = errors.New("pipexec: read wait exceeded the stage deadline")

type cubeResult struct {
	cb  *cube.Cube
	err error
}

// waitCube blocks for an in-flight read, bounding the wait by the stage
// deadline (when configured) and by run cancellation. An abandoned wait's
// goroutine drains itself once the underlying read completes.
func (r *runner) waitCube(p PendingCube) (*cube.Cube, error) {
	ch := make(chan cubeResult, 1)
	go func() {
		cb, err := p.Wait()
		ch <- cubeResult{cb, err}
	}()
	var deadline <-chan time.Time
	if r.cfg.StageTimeout > 0 {
		t := time.NewTimer(r.cfg.StageTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case res := <-ch:
		return res.cb, res.err
	case <-deadline:
		r.stats.deadlineHits.Add(1)
		return nil, errReadDeadline
	case <-r.ctx.Done():
		return nil, r.ctx.Err()
	}
}

// sleep pauses for a backoff interval unless the run is cancelled first.
func (r *runner) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// awaitCube resolves CPI k's read under the retry and degradation
// policies. A (nil, nil) return means the CPI was dropped (skip policies)
// or the run was cancelled; the caller distinguishes via ctx.
func (r *runner) awaitCube(k int, pending PendingCube) (*cube.Cube, error) {
	max := r.cfg.Retry.attempts()
	for attempt := 0; ; attempt++ {
		cb, err := r.waitCube(pending)
		if err == nil {
			return cb, nil
		}
		if r.ctx.Err() != nil {
			return nil, nil
		}
		if errors.Is(err, cube.ErrCorrupt) {
			r.stats.checksumFailures.Add(1)
		}
		if attempt+1 >= max {
			if r.cfg.Degrade == DegradeFailFast {
				return nil, fmt.Errorf("pipexec: reading CPI %d (attempt %d of %d): %w", k, attempt+1, max, err)
			}
			r.stats.drops.Add(1)
			r.dropped = append(r.dropped, uint64(k))
			return nil, nil
		}
		r.stats.retries.Add(1)
		if !r.sleep(r.cfg.Retry.backoff(attempt + 1)) {
			return nil, nil
		}
		pending = r.beginRead(uint64(k), attempt+1)
	}
}

// readStage fetches cubes through a depth-D readahead window: while CPI k
// is being consumed, the reads of CPIs k+1 .. k+D are already in flight
// (Config.ReadAhead; depth 1 is the classic one-deep prefetch). Fetches
// complete in any order but are delivered strictly in sequence — the
// window is a FIFO, so downstream stages never see reordering. In the
// embedded design the stage still runs as a goroutine, but its channel
// hand-off is the "read phase" of the Doppler task: the latency clock
// starts when the Doppler stage receives the cube. In the separate design
// the clock starts when the read stage begins waiting for the data.
// Failed reads are retried per Config.Retry and, under a skip policy,
// dropped once exhausted; retries re-issue only the CPI at the window
// head, while the rest of the window stays in flight.
func (r *runner) readStage(clk *stageClock, out chan<- cubeMsg) error {
	defer close(out)
	window := make([]PendingCube, 0, r.liveReadAhead()+1)
	issued := 0
	for k := 0; k < r.n; k++ {
		// Keep depth reads in flight beyond CPI k (the one about to be
		// consumed): issue everything up to k+depth that hasn't started.
		// The depth is loaded fresh every CPI — the auto-tuner grows or
		// shrinks the window between CPIs; a grow issues more prefetches
		// right here, a shrink just stops issuing until the consumer
		// catches up. Delivery stays strictly FIFO either way, so a
		// rebalance can never reorder CPIs.
		depth := r.liveReadAhead()
		for issued < r.n && issued <= k+depth {
			seq := uint64(issued)
			// Budget admission: the window head (the CPI the pipeline
			// needs next) blocks for its cube; deeper prefetches are
			// opportunistic. Both paths take cube bytes only when doing
			// so still leaves one CPI's compute intermediates admissible,
			// so reads can never starve the Doppler stage into deadlock.
			// Priorities make the oldest CPI win every race.
			if issued == k {
				if err := r.acquireReadHead(seq); err != nil {
					if r.ctx.Err() != nil {
						return nil
					}
					return fmt.Errorf("pipexec: read CPI %d: %w", issued, err)
				}
			} else if !r.tryAcquireReadAhead() {
				break
			}
			r.setCubeCharged(seq)
			pend := r.beginRead(seq, 0)
			if r.spiller != nil {
				pend = r.spiller.track(seq, pend)
			}
			window = append(window, pend)
			issued++
		}
		// Occupancy + stall bookkeeping: how much of the window has landed
		// when the pipeline comes asking, and whether it must now stall on
		// the head fetch. Sources without readiness probes skip this.
		if head, ok := window[0].(ReadyPending); ok {
			ready := 0
			for _, p := range window {
				if rp, ok := p.(ReadyPending); ok && rp.Ready() {
					ready++
				}
			}
			r.stats.raOccupSum.Add(int64(ready))
			r.stats.raOccupSamples.Add(1)
			if !head.Ready() {
				r.stats.sourceStalls.Add(1)
			}
		}
		pending := window[0]
		copy(window, window[1:])
		window = window[:len(window)-1]
		startWait := time.Now()
		cb, err := r.awaitCube(k, pending)
		if err != nil {
			return err
		}
		wait := time.Since(startWait)
		clk.add(wait)
		r.stats.sourceStallNS.Add(int64(wait))
		if r.ctx.Err() != nil {
			return nil
		}
		if cb == nil {
			// Dropped under a skip policy: the cube never reaches the
			// Doppler stage, so its charge retires here.
			r.releaseCubeCharge(uint64(k))
			continue
		}
		msg := cubeMsg{seq: uint64(k), cb: cb}
		if r.cfg.SeparateIO {
			msg.start = startWait
		}
		if !send(r, out, msg) {
			return nil
		}
	}
	return nil
}

// maxReadAhead is the cap on live readahead depth (Config.MaxReadAhead;
// < 1 means the default).
func (r *runner) maxReadAhead() int {
	if r.cfg.MaxReadAhead < 1 {
		return defaultMaxReadAhead
	}
	return r.cfg.MaxReadAhead
}

// liveReadAhead loads the current readahead depth, clamped to [1, cap].
func (r *runner) liveReadAhead() int {
	d := int(r.raDepth.Load())
	if d < 1 {
		return 1
	}
	if max := r.maxReadAhead(); d > max && d > r.cfg.ReadAhead {
		return max
	}
	return d
}

// dopplerStage runs Doppler filter processing, partitioned by range gates.
// Each worker owns a DopplerScratch built once for the whole run, the
// output cube is leased from the pool, and the input cube is handed back to
// the source as soon as filtering has consumed it.
func (r *runner) dopplerStage(clk *stageClock, in <-chan cubeMsg, weOut, whOut, bfeOut, bfhOut chan<- dopplerMsg) error {
	defer close(weOut)
	defer close(whOut)
	defer close(bfeOut)
	defer close(bfhOut)
	var scratches []*stap.DopplerScratch
	for {
		msg, ok := recv(r, in)
		if !ok {
			return nil
		}
		if msg.start.IsZero() {
			msg.start = time.Now() // embedded design: latency starts here
		}
		// Budget admission for this CPI's intermediates (Doppler + beam
		// cubes), at the most urgent priority of any in-flight CPI —
		// FIFO delivery means this is always the oldest, so the wait is
		// bounded by downstream drains, never by newer reads. Outside
		// the stage clock: a budget stall is memory pressure, not
		// Doppler service time, and must not skew the tuner.
		if err := r.acquireMem(r.dopB+r.beamB, compPri(msg.seq)); err != nil {
			if r.ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("pipexec: doppler CPI %d: %w", msg.seq, err)
		}
		// The worker count is loaded once per CPI; scratches grow lazily so
		// a tuner upscale mid-run builds the extra state exactly once.
		workers := r.workersFor(tsDoppler)
		for len(scratches) < workers {
			scratches = append(scratches, stap.NewDopplerScratch(r.p))
		}
		t0 := time.Now()
		h := r.pools.getDoppler(msg.seq)
		err := parallel(workers, r.p.Dims.Ranges, func(widx int, blk cube.Block) error {
			if err := stap.DopplerFilterRanges(r.p, msg.cb, blk, h.dc, scratches[widx]); err != nil {
				return err
			}
			r.stageSleep(r.cfg.StageLoad.Doppler, blk.Len())
			return nil
		})
		if err != nil {
			return fmt.Errorf("pipexec: doppler CPI %d: %w", msg.seq, err)
		}
		r.recycleCube(msg.cb)
		r.releaseCubeCharge(msg.seq)
		r.addBusy(clk, time.Since(t0))
		out := dopplerMsg{seq: msg.seq, h: h, bc: r.pools.getBeam(msg.seq), start: msg.start}
		for _, ch := range []chan<- dopplerMsg{weOut, whOut, bfeOut, bfhOut} {
			if !send(r, ch, out) {
				return nil
			}
		}
	}
}

// weightStage computes adaptive weights for its bin set, partitioned by
// Doppler bins, and feeds them forward for the next CPI's beamforming.
// When Params.Forgetting is set, the stage smooths the covariance
// estimates across CPIs exactly as the sequential reference chain does.
func (r *runner) weightStage(clk *stageClock, in <-chan dopplerMsg, out chan<- *stap.WeightSet, bins []int, hard bool, slot int) error {
	defer close(out)
	smoother := stap.CovarianceSmoother{Lambda: r.p.Forgetting}
	var lastGood *stap.WeightSet
	for {
		msg, ok := recv(r, in)
		if !ok {
			return nil
		}
		workers := r.workersFor(slot)
		t0 := time.Now()
		ws, err := r.solveWeightSet(&smoother, msg, bins, hard, workers)
		if err != nil {
			// Under the last-good-weights policy a failed solve (e.g. a
			// singular covariance from degraded data) degrades the CPI
			// instead of killing the run: beamform with the weights of
			// the last CPI that solved.
			if r.cfg.Degrade != DegradeLastGoodWeights || lastGood == nil {
				return fmt.Errorf("pipexec: %s weights CPI %d: %w", setName(hard), msg.seq, err)
			}
			r.stats.weightFallbacks.Add(1)
			ws = &stap.WeightSet{Bins: lastGood.Bins, W: lastGood.W, Seq: msg.seq}
		} else {
			lastGood = ws
		}
		if r.pools.releaseDoppler(msg.h) {
			r.releaseMem(r.dopB)
		}
		r.addBusy(clk, time.Since(t0))
		if !send(r, out, ws) {
			return nil
		}
	}
}

// solveWeightSet estimates covariances and solves the adaptive weights for
// one CPI's bin set.
func (r *runner) solveWeightSet(smoother *stap.CovarianceSmoother, msg dopplerMsg, bins []int, hard bool, workers int) (*stap.WeightSet, error) {
	load := r.cfg.StageLoad.EasyWeight
	if hard {
		load = r.cfg.StageLoad.HardWeight
	}
	est := make([]*linalg.Matrix, len(bins))
	err := parallel(workers, len(bins), func(_ int, blk cube.Block) error {
		part, err := stap.EstimateCovariances(r.p, msg.h.dc, bins[blk.Lo:blk.Hi], hard)
		if err != nil {
			return err
		}
		copy(est[blk.Lo:blk.Hi], part)
		r.stageSleep(load, blk.Len())
		return nil
	})
	if err != nil {
		return nil, err
	}
	covs := smoother.Update(est)
	ws := &stap.WeightSet{Bins: bins, W: make([][][]complex128, len(bins)), Seq: msg.seq}
	err = parallel(workers, len(bins), func(_ int, blk cube.Block) error {
		part, err := stap.SolveWeights(r.p, covs[blk.Lo:blk.Hi], bins[blk.Lo:blk.Hi], msg.seq)
		if err != nil {
			return err
		}
		copy(ws.W[blk.Lo:blk.Hi], part.W)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ws, nil
}

func setName(hard bool) string {
	if hard {
		return "hard"
	}
	return "easy"
}

// bfStage beamforms its bin set using weights from the previous delivered
// CPI (the temporal dependency), partitioned by Doppler bins. "Previous
// delivered" rather than "seq-1": when a skip policy drops a CPI the
// weight stream simply misses that sequence number, and beamforming
// continues from the weights of the last CPI that made it through.
func (r *runner) bfStage(clk *stageClock, in <-chan dopplerMsg, weights <-chan *stap.WeightSet, out chan<- beamMsg, bins []int, slot int) error {
	load := r.cfg.StageLoad.EasyBF
	if slot == tsHardBF {
		load = r.cfg.StageLoad.HardBF
	}
	cur := stap.InitialWeights(r.p, bins)
	first := true
	var prevSeq uint64
	for {
		msg, ok := recv(r, in)
		if !ok {
			return nil
		}
		if !first {
			ws, ok := recv(r, weights)
			if !ok {
				return nil
			}
			if ws.Seq != prevSeq {
				return fmt.Errorf("pipexec: beamforming CPI %d got weights for CPI %d, want CPI %d", msg.seq, ws.Seq, prevSeq)
			}
			cur = ws
		}
		first = false
		prevSeq = msg.seq
		workers := r.workersFor(slot)
		t0 := time.Now()
		err := parallel(workers, len(bins), func(_ int, blk cube.Block) error {
			if err := stap.Beamform(r.p, msg.h.dc, cur, bins[blk.Lo:blk.Hi], msg.bc); err != nil {
				return err
			}
			r.stageSleep(load, blk.Len())
			return nil
		})
		if err != nil {
			return fmt.Errorf("pipexec: beamform CPI %d: %w", msg.seq, err)
		}
		if r.pools.releaseDoppler(msg.h) {
			r.releaseMem(r.dopB)
		}
		r.addBusy(clk, time.Since(t0))
		if !send(r, out, beamMsg{seq: msg.seq, bc: msg.bc, start: msg.start}) {
			return nil
		}
	}
}

// pcStage waits for both beamforming halves of a CPI, pulse-compresses all
// profiles (partitioned by (beam, bin) pairs), and either forwards to the
// CFAR stage or — in the combined design — runs CFAR itself.
func (r *runner) pcStage(clk *stageClock, in <-chan beamMsg, out chan<- beamMsg) error {
	if out != nil {
		defer close(out)
	}
	// Per-worker compressors, the (beam, bin) enumeration, and — in the
	// combined design — the CFAR worker state are built once and grown
	// lazily when a tuner upscale raises the worker count.
	comps := []*stap.Compressor{stap.NewCompressor(r.p)}
	pairs := stap.AllBeamBins(len(r.p.Beams), r.p.Bins())
	var cfar *cfarState
	if r.cfg.CombinePCCFAR {
		cfar = newCFARState(r.p, 1)
	}
	// firstHalf buffers the first beamforming half of each CPI until its
	// partner arrives; the entry is deleted on consumption, so the map
	// stays bounded by the number of CPIs in flight.
	firstHalf := make(map[uint64]struct{})
	// The input has two producers (the BF stages); launch closes it once
	// both have exited, so termination is by channel close — which stays
	// correct when a skip policy delivers fewer than n CPIs.
	for {
		msg, ok := recv(r, in)
		if !ok {
			return nil
		}
		// Both halves carry the same beam cube and start time; only
		// arrival order differs, so the second message stands for the CPI.
		if _, dup := firstHalf[msg.seq]; !dup {
			firstHalf[msg.seq] = struct{}{}
			continue
		}
		delete(firstHalf, msg.seq)
		workers := r.workersFor(tsPulseComp)
		for len(comps) < workers {
			comps = append(comps, comps[0].Clone())
		}
		t0 := time.Now()
		err := parallel(workers, len(pairs), func(widx int, blk cube.Block) error {
			if err := stap.Compress(r.p, msg.bc, comps[widx], pairs[blk.Lo:blk.Hi]); err != nil {
				return err
			}
			r.stageSleep(r.cfg.StageLoad.PulseComp, blk.Len())
			return nil
		})
		if err != nil {
			return fmt.Errorf("pipexec: pulse compression CPI %d: %w", msg.seq, err)
		}
		if r.cfg.CombinePCCFAR {
			cfar.resize(r.p, workers)
			if err := r.runCFAR(msg, cfar, workers); err != nil {
				return err
			}
			r.addBusy(clk, time.Since(t0))
			r.afterCPI()
			continue
		}
		r.addBusy(clk, time.Since(t0))
		if !send(r, out, msg) {
			return nil
		}
	}
}

// cfarState is the reusable worker state of the CFAR service: the (beam,
// bin) enumeration, its partition into worker blocks, the per-worker
// detector scratches, and the per-worker result slots. Built once per
// stage; with it a steady-state CPI without detections allocates nothing.
type cfarState struct {
	pairs   []stap.BeamBin
	blocks  []cube.Block
	partial [][]stap.Detection
	scratch []*stap.CFARScratch
}

func newCFARState(p *stap.Params, workers int) *cfarState {
	pairs := stap.AllBeamBins(len(p.Beams), p.Bins())
	st := &cfarState{
		pairs:   pairs,
		blocks:  cube.Split(len(pairs), workers),
		partial: make([][]stap.Detection, workers),
		scratch: make([]*stap.CFARScratch, workers),
	}
	for i := range st.scratch {
		st.scratch[i] = stap.NewCFARScratch(p)
	}
	return st
}

// resize re-partitions the (beam, bin) pairs for a new worker count and
// grows the per-worker state; scratches and result slots built for a
// larger earlier count are kept (shrinking is free, regrowth reuses them).
func (st *cfarState) resize(p *stap.Params, workers int) {
	if len(st.blocks) != workers {
		st.blocks = cube.Split(len(st.pairs), workers)
	}
	for len(st.partial) < workers {
		st.partial = append(st.partial, nil)
	}
	for len(st.scratch) < workers {
		st.scratch = append(st.scratch, stap.NewCFARScratch(p))
	}
}

// cfarStage runs CFAR detection, partitioned by (beam, bin) pairs.
func (r *runner) cfarStage(clk *stageClock, in <-chan beamMsg) error {
	st := newCFARState(r.p, r.workersFor(tsCFAR))
	for {
		msg, ok := recv(r, in)
		if !ok {
			return nil
		}
		workers := r.workersFor(tsCFAR)
		st.resize(r.p, workers)
		t0 := time.Now()
		if err := r.runCFAR(msg, st, workers); err != nil {
			return err
		}
		r.addBusy(clk, time.Since(t0))
		r.afterCPI()
	}
}

func (r *runner) runCFAR(msg beamMsg, st *cfarState, workers int) error {
	err := parallel(workers, workers, func(_ int, wblk cube.Block) error {
		for w := wblk.Lo; w < wblk.Hi; w++ {
			blk := st.blocks[w]
			dets, err := stap.CFARWithScratch(r.p, r.p.CFAR.Kind, msg.bc, st.pairs[blk.Lo:blk.Hi], st.scratch[w])
			if err != nil {
				return err
			}
			st.partial[w] = dets
			r.stageSleep(r.cfg.StageLoad.CFAR, blk.Len())
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("pipexec: CFAR CPI %d: %w", msg.seq, err)
	}
	var all []stap.Detection
	for w, d := range st.partial {
		all = append(all, d...)
		st.partial[w] = nil
	}
	stap.SortDetections(all)
	// The beam cube's detections are extracted; hand it back for the next
	// CPI before the (possibly slow) report write.
	r.pools.putBeam(msg.bc)
	r.releaseMem(r.beamB)
	if r.cfg.Reports != nil {
		if err := r.cfg.Reports.WriteReports(msg.seq, all); err != nil {
			return err
		}
	}
	now := time.Now()
	r.record(CPIResult{Seq: msg.seq, Detections: all, Latency: now.Sub(msg.start), Done: now})
	return nil
}
