package pipexec

import (
	"context"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

// TestMovingTargetTrackedAcrossCPIs pushes a walking target through the
// real pipeline and checks the detection gate follows the ground truth in
// every CPI.
func TestMovingTargetTrackedAcrossCPIs(t *testing.T) {
	dims := cube.Dims{Channels: 6, Pulses: 33, Ranges: 128}
	s := &radar.Scenario{
		Dims:       dims,
		PulseLen:   16,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: 0, Doppler: 0.25, Range: 30, SNR: 12}},
		Motion:     &radar.Motion{GatesPerCPI: 6},
		Seed:       31,
	}
	p := stap.DefaultParams(dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	p.CFAR.ThresholdDB = 15
	cfg := testConfig()
	cfg.Params = p

	const n = 5
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	wantBin := p.BinForDoppler(0.25)
	for _, c := range res.CPIs {
		wantGate := s.TargetGate(0, c.Seq)
		found := false
		for _, d := range stap.ClusterDetections(c.Detections, 4) {
			if d.Beam == 1 && absInt(d.Bin-wantBin) <= 1 && absInt(d.Range-wantGate) <= 2 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("CPI %d: moving target not detected at gate ~%d", c.Seq, wantGate)
		}
	}
}

// TestJammedSceneStillDetects runs the full pipeline against a scene with
// a strong jammer: the adaptive weights trained on CPI k-1 must null it
// so the target remains detectable from CPI 1 onward.
func TestJammedSceneStillDetects(t *testing.T) {
	dims := cube.Dims{Channels: 6, Pulses: 33, Ranges: 128}
	s := &radar.Scenario{
		Dims:       dims,
		PulseLen:   16,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: -0.3, Doppler: 0.25, Range: 60, SNR: 10}},
		Jammers:    []radar.Jammer{{Angle: 0.7, JNR: 25}},
		Seed:       77,
	}
	p := stap.DefaultParams(dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	p.TrainEasy = 48
	p.TrainHard = 64
	p.CFAR.ThresholdDB = 14
	p.Beams = []float64{-0.3, 0.2}
	cfg := testConfig()
	cfg.Params = p

	res, err := Run(context.Background(), cfg, ScenarioSource(s), 3)
	if err != nil {
		t.Fatal(err)
	}
	wantBin := p.BinForDoppler(0.25)
	last := res.CPIs[len(res.CPIs)-1] // adaptive weights in effect
	found := false
	for _, d := range stap.ClusterDetections(last.Detections, 4) {
		if d.Beam == 0 && absInt(d.Bin-wantBin) <= 1 && absInt(d.Range-60) <= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("target not detected under jamming; %d detections", len(last.Detections))
	}
	// False-alarm sanity: the jammer must not flood the reports.
	cells := len(p.Beams) * p.Bins() * dims.Ranges
	if len(last.Detections) > cells/50 {
		t.Errorf("%d detections out of %d cells — jammer not nulled", len(last.Detections), cells)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
