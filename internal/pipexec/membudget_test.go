package pipexec

import (
	"context"
	"errors"
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/membudget"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/stap"
	"stapio/internal/tune"
)

// chunkedKeepStore writes the round-robin dataset in the chunked (v3) format
// and opens a FileSource over it.
func chunkedKeepStore(t *testing.T, s *radar.Scenario, files, chunkSize int) (*pfs.RealFS, *FileSource, []*cube.Cube) {
	t.Helper()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := radar.WriteDatasetChunked(fs, s, files, files, true, chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, files)
	if err != nil {
		t.Fatal(err)
	}
	return fs, src, kept
}

// TestBudgetedRunByteIdentical is the spill-determinism gate: a run under
// the tightest admissible budget (one CPI's residency), with the spill
// tier armed, must produce byte-identical detections to an unlimited run
// at every readahead depth — and its tracked residency must never exceed
// the budget.
func TestBudgetedRunByteIdentical(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 8
	fs, src, _ := chunkedKeepStore(t, s, n, cube.DefaultChunkSize)

	base, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.MemHighWater <= 0 {
		t.Fatal("unlimited run reported no high-water residency; accounting is dead")
	}
	if base.Stats.MemLimit != 0 {
		t.Fatalf("unlimited run reports limit %d", base.Stats.MemLimit)
	}

	// 25% of the unlimited peak, floored at the pipeline's admissibility
	// threshold (a small test scenario's peak is only a few CPIs deep).
	budgetBytes := base.Stats.MemHighWater / 4
	if min := MinResidency(&cfg.Params); budgetBytes < min {
		budgetBytes = min
	}
	for _, ra := range []int{1, 2, 4} {
		bcfg := cfg
		bcfg.ReadAhead = ra
		bcfg.MemBudget = membudget.New("test", budgetBytes)
		bcfg.Spill = &SpillConfig{FS: fs}
		res, err := Run(context.Background(), bcfg, src, n)
		if err != nil {
			t.Fatalf("readahead %d: %v", ra, err)
		}
		if len(res.CPIs) != n {
			t.Fatalf("readahead %d: %d CPIs, want %d", ra, len(res.CPIs), n)
		}
		for k := range base.CPIs {
			if !sameDetections(base.CPIs[k].Detections, res.CPIs[k].Detections) {
				t.Errorf("readahead %d, CPI %d: budgeted run diverges from unlimited", ra, k)
			}
		}
		if res.Stats.MemLimit != budgetBytes {
			t.Errorf("readahead %d: reported limit %d, want %d", ra, res.Stats.MemLimit, budgetBytes)
		}
		if res.Stats.MemHighWater > budgetBytes {
			t.Errorf("readahead %d: high water %d exceeds budget %d", ra, res.Stats.MemHighWater, budgetBytes)
		}
	}
}

// TestBudgetedRunNoSpill: the budget must pin residency without the spill
// tier armed too. At the minimum admissible budget (and with deep
// readahead begging for more) the pipeline serializes instead of
// deadlocking: the head read's admission reserves intermediates headroom,
// so the oldest CPI's Doppler charge always stays admissible.
func TestBudgetedRunNoSpill(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 6
	want := referenceDetections(t, cfg.Params, s, n)
	for _, slack := range []int64{0, 4096} {
		for _, ra := range []int{1, 4} {
			bcfg := cfg
			bcfg.ReadAhead = ra
			budgetBytes := MinResidency(&cfg.Params) + slack
			bcfg.MemBudget = membudget.New("test", budgetBytes)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := Run(ctx, bcfg, ScenarioSource(s), n)
			cancel()
			if err != nil {
				t.Fatalf("slack %d readahead %d: %v", slack, ra, err)
			}
			if len(res.CPIs) != n {
				t.Fatalf("slack %d readahead %d: %d CPIs, want %d (stalled run?)", slack, ra, len(res.CPIs), n)
			}
			for k := range res.CPIs {
				if !sameDetections(res.CPIs[k].Detections, want[k]) {
					t.Errorf("slack %d readahead %d CPI %d: budgeted run diverges", slack, ra, k)
				}
			}
			if res.Stats.MemHighWater > budgetBytes {
				t.Errorf("slack %d readahead %d: high water %d exceeds budget %d",
					slack, ra, res.Stats.MemHighWater, budgetBytes)
			}
		}
	}
}

// TestSpillerEvictReload pins the eviction machinery deterministically at
// the unit level: a landed, budget-charged cube is evicted under explicit
// pressure — transferring its charge back to the budget and writing a v3
// spill file — and the subsequent Wait transparently re-admits and reloads
// it byte-for-byte.
func TestSpillerEvictReload(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	fs, err := pfs.CreateReal(t.TempDir(), 2, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MemBudget = membudget.New("test", 4*MinResidency(&cfg.Params))
	cfg.Spill = &SpillConfig{FS: fs, ChunkSize: 4096}
	r := newRunner(cfg, ScenarioSource(s), 4)
	if err := r.initBudget(); err != nil {
		t.Fatal(err)
	}
	r.ctx = context.Background()

	if err := r.acquireMem(r.cubeB, readPri(0)); err != nil {
		t.Fatal(err)
	}
	r.setCubeCharged(0)
	slot := r.spiller.track(0, r.beginRead(0, 0))
	deadline := time.Now().Add(5 * time.Second)
	for !slot.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("fetch never landed")
		}
		time.Sleep(time.Millisecond)
	}
	if freed := r.spiller.free(1); freed != r.cubeB {
		t.Fatalf("eviction freed %d bytes, want %d", freed, r.cubeB)
	}
	if got := r.budget.InUse(); got != 0 {
		t.Fatalf("after eviction %d bytes still charged", got)
	}
	if n := r.stats.spills.Load(); n != 1 {
		t.Fatalf("spills counter %d, want 1", n)
	}
	// A second pressure pass finds nothing evictable.
	if freed := r.spiller.free(1); freed != 0 {
		t.Fatalf("second eviction pass freed %d bytes", freed)
	}

	cb, err := slot.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n := r.stats.reloads.Load(); n != 1 {
		t.Fatalf("reloads counter %d, want 1", n)
	}
	if got := r.budget.InUse(); got != r.cubeB {
		t.Fatalf("reloaded cube charges %d bytes, want %d", got, r.cubeB)
	}
	want, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if cb.Data[i] != want.Data[i] {
			t.Fatalf("sample %d: reload %v, original %v", i, cb.Data[i], want.Data[i])
		}
	}
	if !r.releaseCubeCharge(0) {
		t.Fatal("reload did not re-register the cube charge")
	}
}

// TestSpillUnderBackpressure drives eviction end to end: a deliberately
// slow CFAR stage holds each CPI's beam slab for milliseconds, so the next
// CPI's Doppler admission blocks while freshly landed prefetches sit in
// the window — the spill tier must evict some of them, reload them when
// consumed, and the detections must stay identical to the sequential
// reference.
func TestSpillUnderBackpressure(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cubeB, dopB, beamB := MemCosts(&cfg.Params)
	// Six cubes + one CPI's intermediates. The delivery chain holds three
	// deregistered cubes (Doppler's hand, the stage channel buffer, the
	// read stage's hand), so a six-cube window keeps landed prefetches in
	// the spillable map; while CFAR k-1 sleeps on its beam slab, Doppler
	// k's admission cannot fit and pressure must evict from the tail.
	budgetBytes := 6*cubeB + dopB + beamB
	cfg.MemBudget = membudget.New("test", budgetBytes)
	cfg.ReadAhead = 8
	cfg.StageLoad = StageLoad{CFAR: 100 * time.Microsecond}
	fs, err := pfs.CreateReal(t.TempDir(), 2, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spill = &SpillConfig{FS: fs, ChunkSize: 4096}

	const n = 12
	want := referenceDetections(t, cfg.Params, s, n)
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]stap.Detection, 0, n)
	for _, c := range res.CPIs {
		got = append(got, c.Detections)
	}
	if res.Stats.Spills == 0 {
		t.Fatalf("no spill occurred under backpressure (budget %d)", budgetBytes)
	}
	if res.Stats.Reloads == 0 {
		t.Error("spilled cubes were never reloaded")
	}
	if res.Stats.SpillBytes <= 0 || res.Stats.ReloadBytes <= 0 {
		t.Errorf("spill byte counters dead: spill=%d reload=%d", res.Stats.SpillBytes, res.Stats.ReloadBytes)
	}
	if res.Stats.MemHighWater > budgetBytes {
		t.Errorf("high water %d exceeds budget %d", res.Stats.MemHighWater, budgetBytes)
	}
	if len(got) != n {
		t.Fatalf("drained %d CPIs, want %d", len(got), n)
	}
	for k := range got {
		if !sameDetections(got[k], want[k]) {
			t.Errorf("CPI %d: spilled run diverges from reference", k)
		}
	}
}

// TestBudgetBelowMinResidencyRejected pins the typed refusal: a budget the
// full-cube pipeline cannot fit in fails fast with ErrBudgetExceeded and
// points at the banded executor.
func TestBudgetBelowMinResidencyRejected(t *testing.T) {
	cfg := testConfig()
	cfg.MemBudget = membudget.New("tiny", MinResidency(&cfg.Params)-1)
	_, err := Run(context.Background(), cfg, ScenarioSource(radar.SmallTestScenario()), 2)
	if !errors.Is(err, membudget.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestBudgetCapsAutoTuner: with a budget that admits at most two resident
// cubes, the tuner must never be offered (nor end on) a deeper readahead
// window, however attractive the slow store makes prefetch.
func TestBudgetCapsAutoTuner(t *testing.T) {
	s := radar.SmallTestScenario()
	_, src := slowStore(t, s, 2*time.Millisecond)
	cfg := testConfig()
	cfg.SeparateIO = true
	cfg.ReadAhead = 1
	cfg.DecodeWorkers = 1
	cfg.AutoTune = &tune.Config{Budget: 12, Interval: 2, Warmup: 2, Hysteresis: -1}
	cubeB, _, _ := MemCosts(&cfg.Params)
	cfg.MemBudget = membudget.New("test", MinResidency(&cfg.Params)+cubeB)
	const maxRA = 2 // (limit - MinResidency)/cubeB + 1

	res, err := Run(context.Background(), cfg, src, 48)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalReadAhead > maxRA {
		t.Errorf("tuner grew readahead to %d past the budget cap %d", res.Stats.FinalReadAhead, maxRA)
	}
	if res.Stats.FinalDecodeWorkers > maxRA {
		t.Errorf("tuner grew decode workers to %d past the budget cap %d", res.Stats.FinalDecodeWorkers, maxRA)
	}
}
