package pipexec

import (
	"context"
	"testing"

	"stapio/internal/core"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

// TestDetectionDeterminism pins the blocked-kernel determinism contract:
// every reduction in the Doppler→covariance→beamform→compression chain
// runs in a fixed, platform-independent order, so detections must be
// byte-identical — full struct equality, Power and Threshold included,
// not just the (beam, bin, range) triple — across repeat runs, per-stage
// worker counts, readahead depths, and banded range-band sizes. Worker
// counts and band geometry only change which goroutine computes a value,
// never the order a value is reduced in.
func TestDetectionDeterminism(t *testing.T) {
	s := radar.SmallTestScenario()
	const n = 5

	exact := func(label string, got, want [][]stap.Detection) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d CPIs, want %d", label, len(got), len(want))
		}
		for k := range want {
			if len(got[k]) != len(want[k]) {
				t.Fatalf("%s: CPI %d has %d detections, want %d", label, k, len(got[k]), len(want[k]))
			}
			for i := range want[k] {
				if got[k][i] != want[k][i] {
					t.Fatalf("%s: CPI %d detection %d = %+v, want byte-identical %+v",
						label, k, i, got[k][i], want[k][i])
				}
			}
		}
	}
	collect := func(res *Result) [][]stap.Detection {
		out := make([][]stap.Detection, len(res.CPIs))
		for k := range res.CPIs {
			out[k] = res.CPIs[k].Detections
		}
		return out
	}
	run := func(cfg Config) [][]stap.Detection {
		t.Helper()
		res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
		if err != nil {
			t.Fatal(err)
		}
		return collect(res)
	}

	want := run(testConfig())

	// The sequential Processor shares every kernel with the pipeline, so
	// even it must agree to the byte.
	exact("sequential reference", referenceDetections(t, testConfig().Params, s, n), want)

	// Repeat runs of the identical configuration.
	exact("repeat run", run(testConfig()), want)

	// Per-stage worker counts: serial, the default mix again, and an
	// oversubscribed mix. Workers only partition (bin, beam) work items.
	for _, w := range []core.STAPNodes{
		{Doppler: 1, EasyWeight: 1, HardWeight: 1, EasyBF: 1, HardBF: 1, PulseComp: 1, CFAR: 1},
		{Doppler: 4, EasyWeight: 3, HardWeight: 3, EasyBF: 4, HardBF: 3, PulseComp: 4, CFAR: 3},
	} {
		cfg := testConfig()
		cfg.Workers = w
		exact("worker mix", run(cfg), want)
	}

	// Readahead depths behind a separate read stage: prefetch reorders
	// reads, never compute.
	for _, depth := range []int{1, 2, 4} {
		cfg := testConfig()
		cfg.SeparateIO = true
		cfg.ReadAhead = depth
		cfg.Buffer = depth
		exact("readahead depth", run(cfg), want)
	}

	// Banded execution: partial Doppler tiles, covariance panels carried
	// across band boundaries, and per-band beamform strips must land on
	// the same bytes as the full-cube path.
	for _, band := range []int{1, 7, s.Dims.Ranges} {
		cfg := testConfig()
		cfg.BandRanges = band
		res, err := RunBanded(context.Background(), cfg, scenarioBandSource(t, s), n)
		if err != nil {
			t.Fatalf("band %d: %v", band, err)
		}
		exact("band size", collect(res), want)
	}
}
