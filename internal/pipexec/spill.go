package pipexec

import (
	"fmt"
	"sync"

	"stapio/internal/cube"
	"stapio/internal/pfs"
)

// Spill tier: when the budget cannot admit a new reservation, cold landed
// cubes — fetched by the readahead window but not yet consumed by the
// Doppler stage — are evicted to the striped store in the v3 chunked
// format and re-read (with the same per-chunk CRC verify + partial-repair
// machinery as dataset ingest) when the pipeline finally asks for them.
// Eviction order is newest-first: the coldest cube is the one the FIFO
// window will consume last, so spilling from the tail frees bytes without
// stalling the head.
//
// The spiller hooks the budget's pressure callback, so a blocked acquire
// triggers eviction exactly when bytes are short, and the freed charge is
// handed straight to the waiter via the budget's grant pass.

// SpillConfig enables the spill tier of a budgeted run.
type SpillConfig struct {
	// FS is the striped store spill files are written to and re-read from
	// (required). It may be the dataset's own store — spill file names
	// never collide with staging files.
	FS *pfs.RealFS
	// ChunkSize is the v3 chunk granularity of spill files (values < 8 or
	// not multiples of 8 mean cube.DefaultChunkSize).
	ChunkSize int
	// Prefix names the spill files: "<prefix>_<seq>.dat" ("spill" when
	// empty).
	Prefix string
	// Retries bounds per-chunk re-read rounds when a reload hits a corrupt
	// chunk (values < 1 mean 2).
	Retries int
}

func (c *SpillConfig) chunkSize() int {
	if c.ChunkSize < 8 || c.ChunkSize%8 != 0 {
		return cube.DefaultChunkSize
	}
	return c.ChunkSize
}

func (c *SpillConfig) prefix() string {
	if c.Prefix == "" {
		return "spill"
	}
	return c.Prefix
}

func (c *SpillConfig) retries() int {
	if c.Retries < 1 {
		return 2
	}
	return c.Retries
}

// spiller tracks landed-but-unconsumed cubes and evicts them under budget
// pressure.
type spiller struct {
	r         *runner
	fs        *pfs.RealFS
	chunk     int
	prefix    string
	retries   int
	fileBytes int64

	mu     sync.Mutex
	landed map[uint64]*spillSlot

	bufs sync.Pool // *readBuf, spill-file sized
}

func newSpiller(r *runner, cfg *SpillConfig) (*spiller, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("pipexec: SpillConfig.FS is required")
	}
	sp := &spiller{
		r:       r,
		fs:      cfg.FS,
		chunk:   cfg.chunkSize(),
		prefix:  cfg.prefix(),
		retries: cfg.retries(),
		landed:  make(map[uint64]*spillSlot),
	}
	sp.fileBytes = cube.FileBytesChunked(r.p.Dims, sp.chunk)
	return sp, nil
}

func (sp *spiller) fileName(seq uint64) string {
	return fmt.Sprintf("%s_%d.dat", sp.prefix, seq)
}

func (sp *spiller) getBuf() *readBuf {
	if v := sp.bufs.Get(); v != nil {
		return v.(*readBuf)
	}
	return &readBuf{b: make([]byte, sp.fileBytes)}
}

// track wraps an in-flight fetch: once the inner read lands, the slot
// registers itself as spillable and kicks the budget so a stalled waiter
// re-examines pressure. The read stage waits on the slot instead of the
// inner pending.
func (sp *spiller) track(seq uint64, inner PendingCube) *spillSlot {
	s := &spillSlot{sp: sp, seq: seq, done: make(chan struct{})}
	go func() {
		cb, err := inner.Wait()
		s.mu.Lock()
		s.cb, s.err = cb, err
		s.mu.Unlock()
		if err == nil {
			sp.mu.Lock()
			sp.landed[seq] = s
			sp.mu.Unlock()
		}
		close(s.done)
		sp.r.budget.Kick()
	}()
	return s
}

// free is the budget's pressure handler: evict landed cubes, newest first,
// until need bytes are freed or nothing is left to evict. Returns the
// bytes actually freed.
func (sp *spiller) free(need int64) int64 {
	var freed int64
	for freed < need {
		s := sp.takeColdest()
		if s == nil {
			return freed
		}
		freed += sp.spill(s)
	}
	return freed
}

// takeColdest removes and returns the landed slot with the highest
// sequence number — the one the FIFO window consumes last.
func (sp *spiller) takeColdest() *spillSlot {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var pick *spillSlot
	for _, s := range sp.landed {
		if pick == nil || s.seq > pick.seq {
			pick = s
		}
	}
	if pick != nil {
		delete(sp.landed, pick.seq)
	}
	return pick
}

// spill encodes the slot's cube to the striped store, recycles the slab,
// and transfers the cube's budget charge back to the budget. Returns the
// bytes freed (0 when the write failed — the cube simply stays resident).
func (sp *spiller) spill(s *spillSlot) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cb == nil || s.err != nil {
		return 0
	}
	rb := sp.getBuf()
	cube.EncodeChunked(s.cb, s.seq, sp.chunk, rb.b)
	if err := sp.fs.WriteFile(sp.fileName(s.seq), rb.b); err != nil {
		sp.bufs.Put(rb)
		return 0
	}
	sp.bufs.Put(rb)
	sp.r.src.Recycle(s.cb)
	s.cb = nil
	s.spilled = true
	sp.r.stats.spills.Add(1)
	sp.r.stats.spillBytes.Add(sp.fileBytes)
	if !sp.r.stealCubeCharge(s.seq) {
		return 0 // charge already gone (dropped CPI): no budget bytes freed
	}
	sp.r.releaseMem(sp.r.cubeB)
	return sp.r.cubeB
}

// spillSlot is a PendingCube that may have been evicted between landing
// and consumption; Wait transparently reloads evicted cubes.
type spillSlot struct {
	sp   *spiller
	seq  uint64
	done chan struct{}

	mu      sync.Mutex
	cb      *cube.Cube
	err     error
	spilled bool
}

// Ready implements ReadyPending.
func (s *spillSlot) Ready() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Wait implements PendingCube. A slot that was spilled re-acquires the
// cube's budget charge (at the read priority of its own sequence number,
// so older CPIs still win) and reloads it from the striped store with
// chunk-level verify and repair.
func (s *spillSlot) Wait() (*cube.Cube, error) {
	<-s.done
	sp := s.sp
	// Deregister: once the pipeline is waiting on this CPI it is the
	// window head, never a cold-eviction candidate. A retry slot for the
	// same seq may have replaced us in the map — only remove ourselves.
	sp.mu.Lock()
	if sp.landed[s.seq] == s {
		delete(sp.landed, s.seq)
	}
	sp.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	if !s.spilled {
		cb := s.cb
		s.cb = nil
		return cb, nil
	}
	if s.cb != nil {
		return s.cb, nil // reloaded by an earlier abandoned wait
	}
	r := sp.r
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	// The charge was handed back at eviction; a reload takes it out
	// again. On a reload error the charge is kept: the pipeline's retry
	// policy re-reads the CPI from its staging file, and that fresh cube
	// consumes this same charge.
	if err := r.acquireMem(r.cubeB, readPri(s.seq)); err != nil {
		return nil, err
	}
	r.setCubeCharged(s.seq)
	cb, err := sp.reload(s.seq)
	if err != nil {
		return nil, err
	}
	s.cb = cb
	r.stats.reloads.Add(1)
	r.stats.reloadBytes.Add(sp.fileBytes)
	return cb, nil
}

// reload reads a spilled cube back, verifying per-chunk CRCs and repairing
// corrupt chunks with individual re-reads, exactly like dataset ingest.
func (sp *spiller) reload(seq uint64) (*cube.Cube, error) {
	name := sp.fileName(seq)
	tag := int(seq)<<8 | 0x7f // spill reload tag space, distinct from ingest attempts
	rb := sp.getBuf()
	defer sp.bufs.Put(rb)
	if err := sp.fs.ReadAtAttempt(name, 0, rb.b, tag); err != nil {
		return nil, fmt.Errorf("pipexec: reloading spilled CPI %d: %w", seq, err)
	}
	h, err := cube.ParseHeader(rb.b)
	if err != nil {
		return nil, fmt.Errorf("pipexec: reloading spilled CPI %d: %w", seq, err)
	}
	if h.Dims != sp.r.p.Dims {
		return nil, fmt.Errorf("pipexec: spill file %s holds %v, expected %v", name, h.Dims, sp.r.p.Dims)
	}
	payload := rb.b[h.PayloadOffset():]
	cb := cube.New(sp.r.p.Dims)
	var bad []int
	bad, err = cube.VerifyChunks(&h, payload, 0, h.Chunks(), bad)
	if err != nil {
		return nil, fmt.Errorf("pipexec: reloading spilled CPI %d: %w", seq, err)
	}
	// VerifyChunks returns the bad set sorted; decode the clean chunks now
	// and repair the bad ones individually below.
	next := 0
	for i := 0; i < h.Chunks(); i++ {
		if next < len(bad) && i == bad[next] {
			next++
			continue
		}
		cube.DecodeChunk(cb, &h, payload, i)
	}
	payOff := h.PayloadOffset()
	for round := 0; round < sp.retries && len(bad) > 0; round++ {
		remaining := bad[:0]
		for _, i := range bad {
			lo, hi := h.ChunkSpan(i)
			if sp.fs.ReadAtAttempt(name, payOff+lo, payload[lo:hi], tag+1+round) != nil ||
				cube.VerifyChunk(&h, payload, i) != nil {
				remaining = append(remaining, i)
				continue
			}
			cube.DecodeChunk(cb, &h, payload, i)
		}
		bad = remaining
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("pipexec: reloading spilled CPI %d: %w: %d of %d chunks unrecoverable (first: chunk %d)",
			seq, cube.ErrCorrupt, len(bad), h.Chunks(), bad[0])
	}
	return cb, nil
}

// Compile-time interface checks.
var (
	_ PendingCube  = (*spillSlot)(nil)
	_ ReadyPending = (*spillSlot)(nil)
)
