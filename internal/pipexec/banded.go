package pipexec

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"stapio/internal/cube"
	"stapio/internal/membudget"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

// Banded (external-memory) execution: RunBanded streams each CPI through
// the front of the STAP chain one range band at a time, so peak residency
// is O(band) for the cube and Doppler intermediates instead of O(cube).
// Only the beam cube — which pulse compression and CFAR consume along the
// range axis — is held whole; it is the residency floor of this mode (see
// DESIGN.md §14). Detections are byte-identical to Run and the sequential
// stap.Processor: every banded kernel is pinned bit-exact against its
// full-cube counterpart by the stap banded tests, and bands are fed in
// ascending range order so floating-point accumulation never reassociates.

// BandedSource supplies range-band slabs of CPI cubes: ReadBand fills dst
// (dims {Channels, Pulses, hi-lo}) with global range gates [lo, hi) of CPI
// seq. Implementations must be safe for sequential reuse of dst.
type BandedSource interface {
	ReadBand(seq uint64, lo, hi int, dst *cube.Cube) error
}

// FuncBandSource adapts a function to BandedSource — generator-backed
// tests build the full cube per CPI and CopyBand out of it.
type FuncBandSource func(seq uint64, lo, hi int, dst *cube.Cube) error

// ReadBand implements BandedSource.
func (f FuncBandSource) ReadBand(seq uint64, lo, hi int, dst *cube.Cube) error {
	return f(seq, lo, hi, dst)
}

// BandedMinResidency returns the tracked working set of a banded run at
// the given band size: the beam cube plus the band-sized cube and Doppler
// slabs (including the tail band's, when the extent does not divide).
func BandedMinResidency(p *stap.Params, band int) int64 {
	if band < 1 || band > p.Dims.Ranges {
		band = p.Dims.Ranges
	}
	_, _, beamB := MemCosts(p)
	snapB := int64(p.Bins()) * int64(p.StaggerCount()*p.Dims.Channels) * 16
	rowB := int64(p.Dims.Channels*p.Dims.Pulses) * 8
	total := beamB + int64(band)*(snapB+rowB)
	if tail := p.Dims.Ranges % band; tail != 0 && p.Dims.Ranges > band {
		total += int64(tail) * (snapB + rowB)
	}
	return total
}

// RunBanded pushes n CPIs from src through the banded chain. Config fields
// honoured: Params, Workers (per-stage parallelism within each band),
// BandRanges (the band size; < 1 means the full range extent), MemBudget
// (the working set is reserved up front and validated against the path
// limit), Reports, and CombinePCCFAR (stage accounting only — the math is
// identical). The pipelined-execution knobs (ReadAhead, AutoTune, Retry,
// Degrade, Spill) do not apply: the banded mode is a sequential
// out-of-core executor, trading the pipeline's overlap for an O(band)
// footprint.
func RunBanded(ctx context.Context, cfg Config, src BandedSource, n int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("pipexec: need at least one CPI, got %d", n)
	}
	p := &cfg.Params
	ranges := p.Dims.Ranges
	band := cfg.BandRanges
	if band < 1 || band > ranges {
		band = ranges
	}
	budget := cfg.MemBudget
	if budget == nil {
		budget = membudget.New("banded", 0)
	}
	working := BandedMinResidency(p, band)
	if lim := budget.PathLimit(); lim > 0 && lim < working {
		return nil, fmt.Errorf("pipexec: memory budget %s is below the banded working set %s at band %d: %w — shrink -band",
			membudget.FormatBytes(lim), membudget.FormatBytes(working), band, membudget.ErrBudgetExceeded)
	}
	// The whole working set is one reservation at the most urgent
	// priority: a banded run inside a shared budget (a serve replica
	// spilling its neighbours) must never deadlock against readahead.
	if err := budget.AcquirePri(ctx, working, 0); err != nil {
		return nil, err
	}
	defer budget.Release(working)

	b := newBandedRun(cfg, p, band)
	start := time.Now()
	res := &Result{}
	for k := 0; k < n; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cr, err := b.processCPI(src, uint64(k))
		if err != nil {
			return nil, err
		}
		if cfg.Reports != nil {
			if err := cfg.Reports.WriteReports(cr.Seq, cr.Detections); err != nil {
				return nil, err
			}
		}
		res.CPIs = append(res.CPIs, cr)
	}
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(len(res.CPIs)) / res.Elapsed.Seconds()
	}
	for _, c := range b.clocks {
		res.Stages = append(res.Stages, c.stat())
	}
	for _, c := range b.clocks {
		res.Stats.StageTimes = append(res.Stats.StageTimes, c.timeStats())
	}
	ms := budget.Stats()
	res.Stats.MemLimit = budget.PathLimit()
	res.Stats.MemHighWater = ms.HighWater
	res.Stats.MemStalls = ms.Stalls
	res.Stats.MemStall = ms.StallTime
	return res, nil
}

// bandedRun is the reusable state of one RunBanded invocation: the band
// slabs, per-worker scratches, covariance accumulators, weight feedback,
// and stage clocks.
type bandedRun struct {
	cfg  Config
	p    *stap.Params
	band int

	easyBins []int
	hardBins []int

	slab     *cube.Cube // band-sized input slab
	tailSlab *cube.Cube // tail band's slab (nil when the extent divides)
	dop      *stap.DopplerCube
	tailDop  *stap.DopplerCube
	bc       *stap.BeamCube

	scratches []*stap.DopplerScratch
	accEasy   *stap.CovAccumulator
	accHard   *stap.CovAccumulator
	smEasy    stap.CovarianceSmoother
	smHard    stap.CovarianceSmoother
	wEasy     *stap.WeightSet
	wHard     *stap.WeightSet

	comps []*stap.Compressor
	pairs []stap.BeamBin
	cfar  *cfarState

	clocks []*stageClock
	ck     struct {
		read, dop, we, wh, bfe, bfh, pc, cf *stageClock
	}
}

func newBandedRun(cfg Config, p *stap.Params, band int) *bandedRun {
	b := &bandedRun{cfg: cfg, p: p, band: band}
	b.easyBins = p.EasyBins()
	b.hardBins = p.HardBins()
	d := p.Dims
	b.slab = cube.New(cube.Dims{Channels: d.Channels, Pulses: d.Pulses, Ranges: band})
	b.dop = stap.NewDopplerCubeBand(p, band)
	if tail := d.Ranges % band; tail != 0 && d.Ranges > band {
		b.tailSlab = cube.New(cube.Dims{Channels: d.Channels, Pulses: d.Pulses, Ranges: tail})
		b.tailDop = stap.NewDopplerCubeBand(p, tail)
	}
	b.bc = stap.NewBeamCube(p)
	for i := 0; i < workersOf(cfg.Workers.Doppler); i++ {
		b.scratches = append(b.scratches, stap.NewDopplerScratch(p))
	}
	// The bin sets are validated by Params.Validate; accumulator
	// construction cannot fail after that.
	b.accEasy, _ = stap.NewCovAccumulator(p, b.easyBins, false)
	b.accHard, _ = stap.NewCovAccumulator(p, b.hardBins, true)
	b.smEasy = stap.CovarianceSmoother{Lambda: p.Forgetting}
	b.smHard = stap.CovarianceSmoother{Lambda: p.Forgetting}
	b.wEasy = stap.InitialWeights(p, b.easyBins)
	b.wHard = stap.InitialWeights(p, b.hardBins)
	b.comps = []*stap.Compressor{stap.NewCompressor(p)}
	b.pairs = stap.AllBeamBins(len(p.Beams), p.Bins())
	b.cfar = newCFARState(p, workersOf(cfg.Workers.CFAR))
	clock := func(name string) *stageClock {
		c := &stageClock{name: name}
		b.clocks = append(b.clocks, c)
		return c
	}
	b.ck.read = clock("band read")
	b.ck.dop = clock("doppler")
	b.ck.we = clock("easy weight")
	b.ck.wh = clock("hard weight")
	b.ck.bfe = clock("easy BF")
	b.ck.bfh = clock("hard BF")
	if cfg.CombinePCCFAR {
		b.ck.pc = clock("pulse compr+CFAR")
	} else {
		b.ck.pc = clock("pulse compr")
		b.ck.cf = clock("CFAR")
	}
	return b
}

func workersOf(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// processCPI runs one CPI through the banded chain: per band — read,
// Doppler filter, accumulate covariances, beamform with the previous CPI's
// weights — then solve this CPI's weights for the next, pulse-compress,
// and CFAR the assembled beam cube.
func (b *bandedRun) processCPI(src BandedSource, seq uint64) (CPIResult, error) {
	p := b.p
	start := time.Now()
	b.bc.Seq = seq // CFAR stamps this into every detection
	for lo := 0; lo < p.Dims.Ranges; lo += b.band {
		hi := lo + b.band
		slab, dop := b.slab, b.dop
		if hi > p.Dims.Ranges {
			hi = p.Dims.Ranges
			slab, dop = b.tailSlab, b.tailDop
		}
		if err := b.processBand(src, seq, lo, hi, slab, dop); err != nil {
			return CPIResult{}, err
		}
	}
	// Weight feedback: this CPI's accumulated covariances train the
	// weights the NEXT CPI beamforms with — the same temporal dependency
	// as the pipeline and the sequential chain.
	var err error
	b.wEasy, err = b.solve(b.ck.we, b.accEasy, &b.smEasy, b.easyBins, false, seq, workersOf(b.cfg.Workers.EasyWeight))
	if err != nil {
		return CPIResult{}, err
	}
	b.wHard, err = b.solve(b.ck.wh, b.accHard, &b.smHard, b.hardBins, true, seq, workersOf(b.cfg.Workers.HardWeight))
	if err != nil {
		return CPIResult{}, err
	}

	// Pulse compression over the assembled beam cube, per (beam, bin)
	// pair — identical partitioning and math to the pipeline's pcStage.
	pcW := workersOf(b.cfg.Workers.PulseComp)
	for len(b.comps) < pcW {
		b.comps = append(b.comps, b.comps[0].Clone())
	}
	t0 := time.Now()
	err = parallel(pcW, len(b.pairs), func(widx int, blk cube.Block) error {
		return stap.Compress(p, b.bc, b.comps[widx], b.pairs[blk.Lo:blk.Hi])
	})
	if err != nil {
		return CPIResult{}, fmt.Errorf("pipexec: banded pulse compression CPI %d: %w", seq, err)
	}
	pcClk, cfClk := b.ck.pc, b.ck.cf
	if b.cfg.CombinePCCFAR {
		cfClk = b.ck.pc
	} else {
		pcClk.add(time.Since(t0))
		t0 = time.Now()
	}
	cfW := workersOf(b.cfg.Workers.CFAR)
	b.cfar.resize(p, cfW)
	all, err := bandedCFAR(p, b.bc, b.cfar, cfW)
	if err != nil {
		return CPIResult{}, fmt.Errorf("pipexec: banded CFAR CPI %d: %w", seq, err)
	}
	cfClk.add(time.Since(t0))
	now := time.Now()
	return CPIResult{Seq: seq, Detections: all, Latency: now.Sub(start), Done: now}, nil
}

// processBand runs the front of the chain over global gates [lo, hi).
func (b *bandedRun) processBand(src BandedSource, seq uint64, lo, hi int, slab *cube.Cube, dop *stap.DopplerCube) error {
	p := b.p
	t0 := time.Now()
	if err := src.ReadBand(seq, lo, hi, slab); err != nil {
		return fmt.Errorf("pipexec: banded read CPI %d [%d,%d): %w", seq, lo, hi, err)
	}
	b.ck.read.add(time.Since(t0))

	t0 = time.Now()
	err := parallel(len(b.scratches), hi-lo, func(widx int, blk cube.Block) error {
		return stap.DopplerFilterBand(p, slab, blk, dop, b.scratches[widx])
	})
	if err != nil {
		return fmt.Errorf("pipexec: banded doppler CPI %d: %w", seq, err)
	}
	b.ck.dop.add(time.Since(t0))

	// Covariance accumulation: disjoint bin blocks touch disjoint
	// matrices, so each set shards across its stage's workers.
	accumulate := func(clk *stageClock, acc *stap.CovAccumulator, bins []int, workers int) error {
		t := time.Now()
		err := parallel(workers, len(bins), func(_ int, blk cube.Block) error {
			return acc.AddBand(dop, lo, blk)
		})
		clk.add(time.Since(t))
		return err
	}
	if err := accumulate(b.ck.we, b.accEasy, b.easyBins, workersOf(b.cfg.Workers.EasyWeight)); err != nil {
		return fmt.Errorf("pipexec: banded easy covariances CPI %d: %w", seq, err)
	}
	if err := accumulate(b.ck.wh, b.accHard, b.hardBins, workersOf(b.cfg.Workers.HardWeight)); err != nil {
		return fmt.Errorf("pipexec: banded hard covariances CPI %d: %w", seq, err)
	}

	// Beamform the band with the previous CPI's weights; easy and hard
	// fill disjoint bins of the shared beam cube.
	beamform := func(clk *stageClock, ws *stap.WeightSet, bins []int, workers int) error {
		t := time.Now()
		err := parallel(workers, len(bins), func(_ int, blk cube.Block) error {
			return stap.BeamformBand(p, dop, ws, bins[blk.Lo:blk.Hi], lo, b.bc)
		})
		clk.add(time.Since(t))
		return err
	}
	if err := beamform(b.ck.bfe, b.wEasy, b.easyBins, workersOf(b.cfg.Workers.EasyBF)); err != nil {
		return fmt.Errorf("pipexec: banded easy beamform CPI %d: %w", seq, err)
	}
	if err := beamform(b.ck.bfh, b.wHard, b.hardBins, workersOf(b.cfg.Workers.HardBF)); err != nil {
		return fmt.Errorf("pipexec: banded hard beamform CPI %d: %w", seq, err)
	}
	return nil
}

// solve finishes one bin set's covariance accumulation, smooths, and
// solves the weights — the banded counterpart of the pipeline's
// solveWeightSet, sharded the same way.
func (b *bandedRun) solve(clk *stageClock, acc *stap.CovAccumulator, sm *stap.CovarianceSmoother, bins []int, hard bool, seq uint64, workers int) (*stap.WeightSet, error) {
	t0 := time.Now()
	defer func() { clk.add(time.Since(t0)) }()
	est, err := acc.Finish()
	if err != nil {
		return nil, fmt.Errorf("pipexec: banded %s covariances CPI %d: %w", setName(hard), seq, err)
	}
	covs := sm.Update(est)
	ws := &stap.WeightSet{Bins: bins, W: make([][][]complex128, len(bins)), Seq: seq}
	err = parallel(workers, len(bins), func(_ int, blk cube.Block) error {
		part, err := stap.SolveWeights(b.p, covs[blk.Lo:blk.Hi], bins[blk.Lo:blk.Hi], seq)
		if err != nil {
			return err
		}
		copy(ws.W[blk.Lo:blk.Hi], part.W)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pipexec: banded %s weights CPI %d: %w", setName(hard), seq, err)
	}
	// SolveWeights clones the covariances it factors, and with smoothing
	// the smoother holds its own copies — resetting the accumulator for
	// the next CPI is safe in both lambda regimes.
	acc.Reset()
	return ws, nil
}

// bandedCFAR mirrors the pipeline's runCFAR exactly — same worker-block
// partition, same merge order, same sort — so detections stay
// byte-identical across executors.
func bandedCFAR(p *stap.Params, bc *stap.BeamCube, st *cfarState, workers int) ([]stap.Detection, error) {
	err := parallel(workers, workers, func(_ int, wblk cube.Block) error {
		for w := wblk.Lo; w < wblk.Hi; w++ {
			blk := st.blocks[w]
			dets, err := stap.CFARWithScratch(p, p.CFAR.Kind, bc, st.pairs[blk.Lo:blk.Hi], st.scratch[w])
			if err != nil {
				return err
			}
			st.partial[w] = dets
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []stap.Detection
	for w, d := range st.partial {
		all = append(all, d...)
		st.partial[w] = nil
	}
	stap.SortDetections(all)
	return all, nil
}

// ---- chunk-granular banded reads from the striped store ----

// ReadBand implements BandedSource over the dataset's staging files: it
// reads only the v3 chunks overlapping the requested range band — each
// (channel, pulse) row contributes one contiguous byte span — verifies
// their CRCs, repairs corrupt chunks with individual re-reads, and decodes
// the in-band samples straight into the band slab. The whole-file image is
// never materialised; per-call I/O is O(band) plus chunk-alignment waste.
func (s *FileSource) ReadBand(seq uint64, lo, hi int, dst *cube.Cube) error {
	d := s.Dims
	if dst.Dims.Channels != d.Channels || dst.Dims.Pulses != d.Pulses || dst.Dims.Ranges != hi-lo {
		return fmt.Errorf("pipexec: band slab %v does not hold [%d,%d) of %v", dst.Dims, lo, hi, d)
	}
	if lo < 0 || hi > d.Ranges || lo >= hi {
		return fmt.Errorf("pipexec: band [%d,%d) outside range extent %d", lo, hi, d.Ranges)
	}
	name := radar.FileName(radar.FileFor(seq, s.Files))
	h, err := s.bandHeader(name)
	if err != nil {
		return err
	}
	// Mark the chunks the band's row spans touch. Rows are range-minor:
	// row (c,p) holds samples [row*Ranges, (row+1)*Ranges), of which the
	// band needs [row*Ranges+lo, row*Ranges+hi).
	need := make([]bool, h.Chunks())
	rows := d.Channels * d.Pulses
	for row := 0; row < rows; row++ {
		bLo := int64(row*d.Ranges+lo) * 8
		bHi := int64(row*d.Ranges+hi) * 8
		for c := int(bLo / int64(h.ChunkSize)); int64(c)*int64(h.ChunkSize) < bHi && c < len(need); c++ {
			need[c] = true
		}
	}
	tag := int(seq) << 8
	var buf []byte
	for c := 0; c < len(need); {
		if !need[c] {
			c++
			continue
		}
		// Coalesce a run of consecutive needed chunks into one striped
		// read, capped so one run never balloons past ~1 MiB.
		runEnd := c
		for runEnd < len(need) && need[runEnd] &&
			(runEnd == c || int64(runEnd-c)*int64(h.ChunkSize) < 1<<20) {
			runEnd++
		}
		runLo, _ := h.ChunkSpan(c)
		_, runHi := h.ChunkSpan(runEnd - 1)
		n := int(runHi - runLo)
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if err := s.FS.ReadAtAttempt(name, h.PayloadOffset()+runLo, buf, tag); err != nil {
			return fmt.Errorf("pipexec: band read CPI %d: %w", seq, err)
		}
		for i := c; i < runEnd; i++ {
			clo, chi := h.ChunkSpan(i)
			data := buf[clo-runLo : chi-runLo]
			if cube.VerifyChunkData(h, i, data) != nil {
				if data, err = s.repairBandChunk(name, h, i, data, tag); err != nil {
					return fmt.Errorf("pipexec: band read CPI %d: %w", seq, err)
				}
			}
			decodeBandChunk(dst, h, d, lo, hi, i, data)
		}
		c = runEnd
	}
	return nil
}

// repairBandChunk re-reads one corrupt chunk individually, re-drawing the
// fault plan per round like dataset ingest; counters land on the same
// IOStats the pipeline reports.
func (s *FileSource) repairBandChunk(name string, h *cube.Header, i int, data []byte, tag int) ([]byte, error) {
	clo, chi := h.ChunkSpan(i)
	retries := s.chunkRetries()
	for r := 0; r < retries; r++ {
		s.chunkRereads.Add(1)
		s.chunkRereadBytes.Add(chi - clo)
		if s.FS.ReadAtAttempt(name, h.PayloadOffset()+clo, data, tag+1+r) == nil &&
			cube.VerifyChunkData(h, i, data) == nil {
			s.repairedReads.Add(1)
			return data, nil
		}
	}
	return data, fmt.Errorf("%w: chunk %d unrecoverable after %d re-read rounds", cube.ErrCorrupt, i, retries)
}

// decodeBandChunk decodes the in-band samples of payload chunk i (held
// standalone in data) into the band slab — the same little-endian float32
// pair decode as cube.DecodeChunkData, filtered to gates [lo, hi).
func decodeBandChunk(dst *cube.Cube, h *cube.Header, d cube.Dims, lo, hi, i int, data []byte) {
	clo, chi := h.ChunkSpan(i)
	sLo := int(clo / 8)
	sHi := int(chi / 8)
	bw := hi - lo
	rows := d.Channels * d.Pulses
	for row := sLo / d.Ranges; row < rows && row*d.Ranges < sHi; row++ {
		// Intersect the chunk's sample span with the row's in-band span.
		a := row*d.Ranges + lo
		z := row*d.Ranges + hi
		if a < sLo {
			a = sLo
		}
		if z > sHi {
			z = sHi
		}
		base := row*d.Ranges + lo // global sample index of the row's band start
		for s := a; s < z; s++ {
			off := (s - sLo) * 8
			dst.Data[row*bw+(s-base)] = complex(
				math.Float32frombits(binary.LittleEndian.Uint32(data[off:])),
				math.Float32frombits(binary.LittleEndian.Uint32(data[off+4:])))
		}
	}
}

// bandHeader returns the cached parsed header (fixed header + chunk table)
// of one staging file, probing it on first use. Banded reads require the
// chunked (v3) format — flat files cannot be partially verified. The probe
// bypasses fault injection, like NewFileSource's: startup metadata reads
// are not part of the modelled data path.
func (s *FileSource) bandHeader(name string) (*cube.Header, error) {
	s.bandMu.Lock()
	defer s.bandMu.Unlock()
	if h, ok := s.bandHdrs[name]; ok {
		return h, nil
	}
	pre := make([]byte, cube.HeaderSize+8)
	if err := s.FS.ProbeAt(name, 0, pre); err != nil {
		return nil, fmt.Errorf("pipexec: probing %s: %w", name, err)
	}
	fh, err := cube.DecodeHeader(pre[:cube.HeaderSize])
	if err != nil {
		return nil, fmt.Errorf("pipexec: probing %s: %w", name, err)
	}
	if fh.Version < cube.FormatVersionChunked {
		return nil, fmt.Errorf("pipexec: %s is a flat (v%d) cube file — banded reads need the chunked (v3) format (re-stage with pfsgen)", name, fh.Version)
	}
	chunk := int(binary.LittleEndian.Uint32(pre[cube.HeaderSize:]))
	if chunk <= 0 || chunk%8 != 0 {
		return nil, fmt.Errorf("pipexec: %s declares invalid chunk size %d", name, chunk)
	}
	// Re-probe the full header + chunk table prefix and parse it whole.
	fh.ChunkSize = chunk
	full := make([]byte, fh.PayloadOffset())
	if err := s.FS.ProbeAt(name, 0, full); err != nil {
		return nil, fmt.Errorf("pipexec: probing %s: %w", name, err)
	}
	h, err := cube.ParseHeader(full)
	if err != nil {
		return nil, fmt.Errorf("pipexec: probing %s: %w", name, err)
	}
	if s.bandHdrs == nil {
		s.bandHdrs = make(map[string]*cube.Header)
	}
	s.bandHdrs[name] = &h
	return &h, nil
}

var _ BandedSource = (*FileSource)(nil)
