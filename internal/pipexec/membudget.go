package pipexec

import (
	"fmt"

	"stapio/internal/membudget"
	"stapio/internal/stap"
)

// Memory-budgeted execution: every large per-CPI slab the pipeline holds —
// the input cube, the pooled Doppler cube, the pooled beam cube — is
// charged against a membudget.Budget before the slab is filled and
// released as soon as its last consumer drains it. Charges follow the
// slabs, not the stages: the read stage charges a cube when it issues the
// fetch, the Doppler stage releases it when filtering has consumed it and
// charges the Doppler+beam intermediates in the same breath, the last
// weight/BF consumer releases the Doppler cube, and CFAR releases the beam
// cube when the detections are extracted.
//
// Deadlock freedom comes from admission ordering, not from luck: only the
// read stage and the Doppler stage ever block on the budget, and their
// priorities are keyed to the CPI sequence number so the oldest in-flight
// CPI — the only one whose intermediates can drain the pipe — always
// outranks newer reads. Downstream stages (weights, BF, PC, CFAR) only
// release, so once a CPI's intermediates are admitted it runs to
// completion and frees its bytes. See DESIGN.md §14.

// MemCosts returns the tracked byte cost of the three per-CPI slabs: the
// input cube (complex64 samples), the Doppler cube (complex128 snapshots),
// and the beam cube (complex128 profiles).
func MemCosts(p *stap.Params) (cubeB, dopB, beamB int64) {
	cubeB = p.Dims.Bytes()
	dopB = int64(p.Bins()) * int64(p.Dims.Ranges) * int64(p.StaggerCount()*p.Dims.Channels) * 16
	beamB = int64(len(p.Beams)) * int64(p.Bins()) * int64(p.Dims.Ranges) * 16
	return
}

// MinResidency is the smallest budget the full-cube pipeline can run in:
// one CPI's cube plus its Doppler and beam intermediates. A tighter budget
// needs the banded executor (RunBanded), whose floor is the beam cube plus
// band slabs.
func MinResidency(p *stap.Params) int64 {
	cubeB, dopB, beamB := MemCosts(p)
	return cubeB + dopB + beamB
}

// Admission priorities (lower is more urgent): CPI seq's compute
// intermediates outrank its own read, and both outrank everything of every
// later CPI — the oldest CPI always wins, so the pipe drains front-first.
func compPri(seq uint64) uint64 { return seq * 2 }
func readPri(seq uint64) uint64 { return seq*2 + 1 }

// initBudget resolves the runner's budget: the configured one, or a
// private unlimited budget so the high-water/stall observability works on
// unbudgeted runs too. Called by Run and Stream after newRunner.
func (r *runner) initBudget() error {
	r.cubeB, r.dopB, r.beamB = MemCosts(r.p)
	r.budget = r.cfg.MemBudget
	if r.budget == nil {
		r.budget = membudget.New("pipeline", 0)
	}
	if lim := r.budget.PathLimit(); lim > 0 {
		if min := MinResidency(r.p); lim < min {
			return fmt.Errorf("pipexec: memory budget %s is below the pipeline's minimum residency %s (one cube + Doppler + beam intermediates): %w — use RunBanded for tighter budgets",
				membudget.FormatBytes(lim), membudget.FormatBytes(min), membudget.ErrBudgetExceeded)
		}
	}
	if r.cfg.Spill != nil {
		sp, err := newSpiller(r, r.cfg.Spill)
		if err != nil {
			return err
		}
		r.spiller = sp
		r.budget.OnPressure(sp.free)
	}
	if r.cubeCharged == nil {
		r.cubeCharged = make(map[uint64]bool)
	}
	return nil
}

// acquireMem blocks until n bytes are admitted at the given priority.
// Stall counts and stall time accumulate inside the budget itself
// (membudget.Stats), which snapshotStats folds into RunStats.
func (r *runner) acquireMem(n int64, pri uint64) error {
	return r.budget.AcquirePri(r.ctx, n, pri)
}

func (r *runner) tryAcquireMem(n int64) bool { return r.budget.TryAcquire(n) }
func (r *runner) releaseMem(n int64)         { r.budget.Release(n) }

// tryAcquireReadAhead admits one more readahead cube only when doing so
// still leaves room for one CPI's Doppler+beam intermediates: it reserves
// cube + headroom together, then hands the headroom straight back. This
// is the deadlock-freedom invariant of budgeted prefetch — however deep
// the window grows, the bytes the oldest CPI's compute admission needs
// were provably free after every opportunistic charge, and only drainable
// charges (which downstream stages always release) can take them.
func (r *runner) tryAcquireReadAhead() bool {
	headroom := r.dopB + r.beamB
	if !r.budget.TryAcquire(r.cubeB + headroom) {
		return false
	}
	r.budget.Release(headroom)
	return true
}

// acquireReadHead blocks until the window-head cube for CPI seq is
// admitted, under the same invariant as tryAcquireReadAhead: the cube is
// granted only together with headroom for one CPI's Doppler+beam
// intermediates, which is handed straight back. The head may not be
// admitted on cube bytes alone — if the reads of CPIs k and k+1 are both
// charged before Doppler's compute admission for k is even enqueued, the
// intermediates no longer fit and no downstream stage holds releasable
// bytes: a deadlock the spill tier would mask but an unspilled run hits.
func (r *runner) acquireReadHead(seq uint64) error {
	headroom := r.dopB + r.beamB
	if err := r.acquireMem(r.cubeB+headroom, readPri(seq)); err != nil {
		return err
	}
	r.releaseMem(headroom)
	return nil
}

// Cube-charge bookkeeping: the read stage charges each CPI's cube when the
// fetch is issued; whichever path consumes the cube — Doppler filtering,
// a drop, or a spill eviction — releases exactly once. chargeMu guards the
// map because the spiller's pressure handler races the Doppler stage.

func (r *runner) setCubeCharged(seq uint64) {
	r.chargeMu.Lock()
	r.cubeCharged[seq] = true
	r.chargeMu.Unlock()
}

// releaseCubeCharge drops CPI seq's cube charge if it is still held,
// returning whether this call released it.
func (r *runner) releaseCubeCharge(seq uint64) bool {
	r.chargeMu.Lock()
	held := r.cubeCharged[seq]
	delete(r.cubeCharged, seq)
	r.chargeMu.Unlock()
	if held {
		r.releaseMem(r.cubeB)
	}
	return held
}

// stealCubeCharge transfers CPI seq's cube charge to the caller (the
// spiller, which frees the bytes itself after evicting the slab). Returns
// false when the charge was already released or stolen.
func (r *runner) stealCubeCharge(seq uint64) bool {
	r.chargeMu.Lock()
	held := r.cubeCharged[seq]
	if held {
		r.cubeCharged[seq] = false
	}
	r.chargeMu.Unlock()
	return held
}
