package pipexec

import (
	"context"
	"math"
	"sync"
	"time"
)

// Streaming operation: a radar does not deliver a fixed number of CPIs and
// stop — it runs until shut down. Stream starts the same pipeline as Run
// without a CPI bound and delivers each CPI's results on a channel as CFAR
// completes it; Stop shuts the pipeline down and returns the summary.

// StreamHandle controls a streaming pipeline.
type StreamHandle struct {
	// Results delivers CPI results in completion order. The pipeline
	// applies backpressure through it: a slow consumer slows the
	// pipeline rather than growing a queue. It is closed once the
	// pipeline has fully stopped.
	Results <-chan CPIResult

	r       *runner
	results chan CPIResult
	cancel  context.CancelFunc
	start   time.Time
	done    chan struct{}
	stop    sync.Once
}

// Stream starts the pipeline against src and returns immediately. The
// caller must drain Results and call Stop exactly once when finished.
func Stream(ctx context.Context, cfg Config, src CubeSource) (*StreamHandle, error) {
	cfg, err := withAutoTuneDefaults(cfg, src)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buf := cfg.Buffer
	if buf < 1 {
		buf = 1
	}
	r := newRunner(cfg, src, math.MaxInt32)
	if err := r.initBudget(); err != nil {
		return nil, err
	}
	if err := r.setup(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	r.ctx, r.cancel = ctx, cancel

	h := &StreamHandle{
		r:       r,
		results: make(chan CPIResult, buf),
		cancel:  cancel,
		start:   time.Now(),
		done:    make(chan struct{}),
	}
	h.Results = h.results
	r.streamOut = h.results

	wg := r.launch(buf)
	go func() {
		wg.Wait()
		close(h.results)
		close(h.done)
	}()
	return h, nil
}

// IOStats returns a live snapshot of the pipeline's I/O frontend state —
// current readahead depth and decode workers (which the auto-tuner may
// have moved), source-stall counters, and readahead-window occupancy.
// Safe to call at any time, including while the pipeline is running.
func (h *StreamHandle) IOStats() IOSnapshot { return h.r.ioSnapshot() }

// Stop shuts the pipeline down, waits for every stage to exit, and
// returns the run summary (stage statistics; per-CPI results were already
// delivered through Results). The error is nil for a clean shutdown and
// the first stage error otherwise. Stop is idempotent.
func (h *StreamHandle) Stop() (*Result, error) {
	h.stop.Do(func() {
		h.cancel()
		// Drain anything the stages manage to emit while unwinding so
		// their sends cannot deadlock against a caller that stopped
		// consuming.
		go func() {
			for range h.results {
			}
		}()
	})
	<-h.done
	res := &Result{Elapsed: time.Since(h.start), Stats: h.r.snapshotStats()}
	var served int
	for _, c := range h.r.clocks {
		st := c.stat()
		res.Stages = append(res.Stages, st)
		if st.CPIs > served {
			served = st.CPIs
		}
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(served) / res.Elapsed.Seconds()
	}
	return res, h.r.err
}
