package pipexec

import (
	"context"
	"runtime"
	"testing"
	"time"

	"stapio/internal/radar"
)

func TestStreamDeliversSequentialResults(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	h, err := Stream(context.Background(), cfg, ScenarioSource(s))
	if err != nil {
		t.Fatal(err)
	}
	const want = 7
	var got []CPIResult
	for res := range h.Results {
		got = append(got, res)
		if len(got) == want {
			break
		}
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("consumed %d results, want %d", len(got), want)
	}
	for i, c := range got {
		if c.Seq != uint64(i) {
			t.Errorf("result %d has seq %d — stream must be in order", i, c.Seq)
		}
		if c.Latency <= 0 {
			t.Errorf("result %d has non-positive latency", i)
		}
	}
	// Stream detections match a bounded Run over the same source.
	ref, err := Run(context.Background(), cfg, ScenarioSource(s), want)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !sameDetections(got[i].Detections, ref.CPIs[i].Detections) {
			t.Errorf("CPI %d: stream and Run disagree", i)
		}
	}
	if res.Throughput <= 0 {
		t.Error("summary throughput should be positive")
	}
	if len(res.Stages) == 0 {
		t.Error("summary missing stage stats")
	}
	// Stop is idempotent.
	if _, err := h.Stop(); err != nil {
		t.Errorf("second Stop errored: %v", err)
	}
}

func TestStreamStopWithoutConsuming(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	h, err := Stream(context.Background(), cfg, ScenarioSource(s))
	if err != nil {
		t.Fatal(err)
	}
	// Give the pipeline a moment to fill its buffers, then stop without
	// ever reading Results — Stop must not deadlock.
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		if _, err := h.Stop(); err != nil {
			t.Errorf("Stop: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop deadlocked")
	}
}

// Stop must be safe before a single result has been consumed, and it must
// actually unwind every pipeline goroutine — not just return while stage or
// drain goroutines linger. A leak here is invisible to the deadlock test
// above but fatal to a server that starts and stops many streams.
func TestStreamStopBeforeFirstResultLeaksNoGoroutines(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		h, err := Stream(context.Background(), cfg, ScenarioSource(s))
		if err != nil {
			t.Fatal(err)
		}
		// No sleep, no consume: stop races the pipeline's own spin-up.
		if _, err := h.Stop(); err != nil {
			t.Fatalf("round %d: Stop: %v", i, err)
		}
	}
	// Goroutine counts settle asynchronously (closers, drainers); poll
	// rather than assert instantly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after 5 stream start/stop rounds\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStreamParentContextCancel(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	ctx, cancel := context.WithCancel(context.Background())
	h, err := Stream(ctx, cfg, ScenarioSource(s))
	if err != nil {
		t.Fatal(err)
	}
	<-h.Results // at least one CPI flows
	cancel()
	// The results channel must close shortly after cancellation.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-h.Results:
			if !ok {
				if _, err := h.Stop(); err != nil {
					t.Errorf("Stop after cancel: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("results channel did not close after context cancel")
		}
	}
}

func TestStreamRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Workers.Doppler = 0
	if _, err := Stream(context.Background(), cfg, ScenarioSource(radar.SmallTestScenario())); err == nil {
		t.Error("expected config validation error")
	}
}
