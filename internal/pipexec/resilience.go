package pipexec

import (
	"fmt"
	"sync/atomic"
	"time"

	"stapio/internal/tune"
)

// Resilience: the paper's system assumes every striped read succeeds; a
// production pipeline cannot. This file defines the knobs — a retry policy
// for striped reads, a per-stage deadline, and a degradation policy for
// reads that stay failed — and the counters a run reports so degraded
// stripe servers are measured, not guessed at.

// RetryPolicy bounds the re-reads of one CPI's staging file. The zero
// value means defaults: 3 attempts, 2ms base backoff doubling to 100ms.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts per CPI (>= 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 3
	}
	return p.MaxAttempts
}

// backoff returns the delay before attempt (1-based retry index).
func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	d := base << (retry - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// DegradePolicy selects what the pipeline does when a CPI's read has
// exhausted its retries (and, for DegradeLastGoodWeights, when a weight
// solve fails).
type DegradePolicy int

const (
	// DegradeFailFast aborts the run on the first exhausted retry — the
	// seed behaviour, appropriate when partial results are worthless.
	DegradeFailFast DegradePolicy = iota
	// DegradeSkipCPI drops the unreadable CPI and keeps the pipeline
	// flowing; downstream stages pair each CPI with the weights of the
	// previous *delivered* CPI.
	DegradeSkipCPI
	// DegradeLastGoodWeights is DegradeSkipCPI plus weight-stage
	// resilience: a failed weight solve falls back to the last
	// successfully solved weight set instead of aborting.
	DegradeLastGoodWeights
)

// String implements fmt.Stringer.
func (d DegradePolicy) String() string {
	switch d {
	case DegradeFailFast:
		return "fail-fast"
	case DegradeSkipCPI:
		return "skip-CPI"
	case DegradeLastGoodWeights:
		return "last-good-weights"
	default:
		return fmt.Sprintf("DegradePolicy(%d)", int(d))
	}
}

// ParseDegradePolicy maps the CLI names onto policies.
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	switch s {
	case "failfast", "fail-fast":
		return DegradeFailFast, nil
	case "skip", "skip-cpi":
		return DegradeSkipCPI, nil
	case "lastgood", "last-good-weights":
		return DegradeLastGoodWeights, nil
	default:
		return 0, fmt.Errorf("pipexec: unknown degradation policy %q (failfast | skip | lastgood)", s)
	}
}

// RunStats are the resilience counters of one run, aggregated across
// stages.
type RunStats struct {
	// Retries is the number of read attempts beyond each CPI's first.
	Retries int64
	// Drops is the number of CPIs abandoned after retry exhaustion.
	Drops int64
	// DroppedSeqs lists the abandoned CPIs in ascending order.
	DroppedSeqs []uint64
	// ChecksumFailures counts reads whose payload failed the cube CRC
	// (each one also triggers a retry).
	ChecksumFailures int64
	// DeadlineHits counts per-CPI stage services that exceeded
	// Config.StageTimeout (read waits are aborted and retried; compute
	// stages cannot be preempted, so theirs are recorded for monitoring).
	DeadlineHits int64
	// WeightFallbacks counts CPIs beamformed with stale weights under
	// DegradeLastGoodWeights.
	WeightFallbacks int64
	// ChunkRereads counts chunk-level re-read operations against corrupt
	// chunks of chunked (v3) cube files — the partial-re-read path that
	// replaces whole-file retries when per-chunk checksums locate the
	// damage. Zero for flat (v2) datasets and non-file sources.
	ChunkRereads int64
	// ChunkRereadBytes is the total bytes those chunk re-reads fetched.
	ChunkRereadBytes int64
	// RepairedReads counts cube reads that hit corrupt chunks but completed
	// clean via chunk re-reads; such reads surface no error, so they appear
	// here rather than in ChecksumFailures.
	RepairedReads int64
	// SourceStalls counts CPIs whose readahead-window head had not landed
	// when the pipeline came to consume it — the pipeline stalled on the
	// source. High stall counts with a shallow window are the signature of
	// an I/O-bound run (zero for sources without readiness probes).
	SourceStalls int64
	// SourceStall is the total time the read stage spent waiting on the
	// source (head-of-window waits, retries included).
	SourceStall time.Duration
	// ReadaheadReady is the mean number of landed fetches in the readahead
	// window at consumption time — window occupancy. Near 0 means the
	// pipeline is outrunning the source; near the depth means prefetch is
	// fully hiding the read latency.
	ReadaheadReady float64
	// FinalReadAhead and FinalDecodeWorkers are the I/O knob values the
	// run ended on — equal to the configured values unless the auto-tuner
	// moved them.
	FinalReadAhead     int
	FinalDecodeWorkers int
	// MemLimit is the effective memory budget (the tightest limit on the
	// budget's path to its root; 0 = unlimited), MemHighWater the peak
	// tracked residency in bytes, and MemStalls/MemStall the count and
	// total wall time of reservations that had to wait for bytes. The
	// high-water mark is tracked even without a budget, so unlimited runs
	// get residency observability for free.
	MemLimit     int64
	MemHighWater int64
	MemStalls    int64
	MemStall     time.Duration
	// Spills/SpillBytes count cold cubes evicted to the striped store
	// under budget pressure and the bytes written; Reloads/ReloadBytes
	// count evicted cubes read back when the pipeline consumed them. Zero
	// without Config.Spill.
	Spills      int64
	SpillBytes  int64
	Reloads     int64
	ReloadBytes int64
	// StageTimes holds each stage's per-CPI service-time distribution
	// (p50/p90/max from the live log-scale histograms), in pipeline order.
	StageTimes []StageTimeStats
	// TuneStages names the tunable stages in split order, TuneDecisions is
	// the auto-tuner's decision trace, and TuneFinalSplit is the worker
	// split the run ended on. All empty without Config.AutoTune.
	TuneStages     []string
	TuneDecisions  []tune.Decision
	TuneFinalSplit []int
}

// String summarises the counters.
func (s RunStats) String() string {
	return fmt.Sprintf("retries=%d drops=%d checksum-failures=%d deadline-hits=%d weight-fallbacks=%d chunk-rereads=%d repaired-reads=%d",
		s.Retries, s.Drops, s.ChecksumFailures, s.DeadlineHits, s.WeightFallbacks, s.ChunkRereads, s.RepairedReads)
}

// IOSnapshot is a live view of the pipeline's I/O frontend — the knob
// values currently in force plus the stall/occupancy counters so far.
// Cheap to take (atomic loads only), so services can expose it per
// replica while runs are in flight.
type IOSnapshot struct {
	// ReadAhead and DecodeWorkers are the knob values currently in force
	// (the auto-tuner may have moved them off the configured values).
	ReadAhead     int `json:"read_ahead"`
	DecodeWorkers int `json:"decode_workers"`
	// SourceStalls counts CPIs the pipeline had to wait for because the
	// window head had not landed; SourceStallNS is the total nanoseconds
	// spent in those head-of-window waits.
	SourceStalls  int64 `json:"source_stalls"`
	SourceStallNS int64 `json:"source_stall_ns"`
	// ReadaheadReady is the mean landed-fetch count in the readahead
	// window at consumption time (window occupancy).
	ReadaheadReady float64 `json:"readahead_ready"`
	// Memory accounting: the effective budget (0 = unlimited), current
	// and peak tracked residency, budget-stall count and nanoseconds, and
	// the spill tier's eviction/reload counters. Residency is tracked
	// even without a budget configured.
	MemLimit     int64 `json:"mem_limit"`
	MemInUse     int64 `json:"mem_in_use"`
	MemHighWater int64 `json:"mem_high_water"`
	MemStalls    int64 `json:"mem_stalls"`
	MemStallNS   int64 `json:"mem_stall_ns"`
	Spills       int64 `json:"spills"`
	SpillBytes   int64 `json:"spill_bytes"`
	Reloads      int64 `json:"reloads"`
	ReloadBytes  int64 `json:"reload_bytes"`
}

// ioSnapshot assembles the live view from the runner's atomics.
func (r *runner) ioSnapshot() IOSnapshot {
	snap := IOSnapshot{
		ReadAhead:     int(r.raDepth.Load()),
		DecodeWorkers: int(r.decW.Load()),
		SourceStalls:  r.stats.sourceStalls.Load(),
		SourceStallNS: r.stats.sourceStallNS.Load(),
	}
	if n := r.stats.raOccupSamples.Load(); n > 0 {
		snap.ReadaheadReady = float64(r.stats.raOccupSum.Load()) / float64(n)
	}
	if r.budget != nil {
		ms := r.budget.Stats()
		snap.MemLimit = r.budget.PathLimit()
		snap.MemInUse = ms.InUse
		snap.MemHighWater = ms.HighWater
		snap.MemStalls = ms.Stalls
		snap.MemStallNS = int64(ms.StallTime)
	}
	snap.Spills = r.stats.spills.Load()
	snap.SpillBytes = r.stats.spillBytes.Load()
	snap.Reloads = r.stats.reloads.Load()
	snap.ReloadBytes = r.stats.reloadBytes.Load()
	return snap
}

// runStats is the runner's live (atomic) counterpart of RunStats.
type runStats struct {
	retries          atomic.Int64
	drops            atomic.Int64
	checksumFailures atomic.Int64
	deadlineHits     atomic.Int64
	weightFallbacks  atomic.Int64
	sourceStalls     atomic.Int64
	sourceStallNS    atomic.Int64
	raOccupSum       atomic.Int64
	raOccupSamples   atomic.Int64
	spills           atomic.Int64
	spillBytes       atomic.Int64
	reloads          atomic.Int64
	reloadBytes      atomic.Int64
}

// snapshot freezes the counters; droppedSeqs is supplied by the read stage
// (it is the only writer and has exited by collection time).
func (s *runStats) snapshot(dropped []uint64) RunStats {
	return RunStats{
		Retries:          s.retries.Load(),
		Drops:            s.drops.Load(),
		DroppedSeqs:      dropped,
		ChecksumFailures: s.checksumFailures.Load(),
		DeadlineHits:     s.deadlineHits.Load(),
		WeightFallbacks:  s.weightFallbacks.Load(),
		SourceStalls:     s.sourceStalls.Load(),
		SourceStall:      time.Duration(s.sourceStallNS.Load()),
	}
}
