package pipexec

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"stapio/internal/core"
	"stapio/internal/tune"
)

// Online auto-tuning: the paper balances the seven STAP tasks by hand
// against measured service times; Config.AutoTune does it live. The stage
// clocks are lock-free (atomic busy/CPI counters plus a log-scale service
// histogram), so the controller reads them without stopping the run, and
// the per-stage worker counts are atomics the stages load once per CPI —
// rebalancing is a store between CPIs, no goroutine surgery. The terminal
// stage (CFAR, or the combined PC+CFAR stage) drives the controller after
// each recorded CPI; see internal/tune for the balance condition.

// Tunable-stage indices, in pipeline order. In the combined design the
// pulse-compression slot carries the merged PC+CFAR stage and the CFAR
// slot is absent.
const (
	tsDoppler = iota
	tsEasyWeight
	tsHardWeight
	tsEasyBF
	tsHardBF
	tsPulseComp
	tsCFAR
	numTunable
)

// StageLoad injects a synthetic per-item service time into each compute
// stage: every worker sleeps items x duration after processing its block,
// so a stage's wall time scales as items/workers exactly like the paper's
// W_i/P_i. Sleeping occupies a worker slot without burning CPU, which
// models blocking (I/O- or memory-wait-bound) stage time and — crucially
// for benchmarks — makes worker-split effects measurable on hosts with few
// cores, where pure-compute splits all serialise onto the same CPUs.
// Detections are unaffected: injection delays stages, it never touches
// data. The zero value injects nothing.
type StageLoad struct {
	// Per-item injected service times: Doppler per range gate, the weight
	// and beamforming stages per Doppler bin of their bin set, pulse
	// compression and CFAR per (beam, bin) pair.
	Doppler, EasyWeight, HardWeight, EasyBF, HardBF, PulseComp, CFAR time.Duration
}

func (l StageLoad) any() bool {
	return l.Doppler > 0 || l.EasyWeight > 0 || l.HardWeight > 0 ||
		l.EasyBF > 0 || l.HardBF > 0 || l.PulseComp > 0 || l.CFAR > 0
}

// stageSleep blocks one worker for items x perItem of injected service
// time (see StageLoad), honouring run cancellation.
func (r *runner) stageSleep(perItem time.Duration, items int) {
	if perItem <= 0 || items <= 0 {
		return
	}
	r.sleep(time.Duration(items) * perItem)
}

// defaultMaxReadAhead caps tuner-grown readahead depth when
// Config.MaxReadAhead is unset.
const defaultMaxReadAhead = 32

// maxDecodeWorkers caps the tunable decode pool — decode shards per cube,
// so counts beyond this see no useful parallelism on any plausible host.
const maxDecodeWorkers = 16

// ioTunable reports whether src supports the joint I/O + compute solve:
// it must expose frontend stage clocks (so the tuner can measure the read
// and decode paths) and a live-resizable decode pool.
func ioTunable(src CubeSource) bool {
	_, clocked := src.(clockedSource)
	_, decodes := src.(DecodeParallelSource)
	return clocked && decodes
}

// autoTuneWorkers derives the cold-start Workers split from an AutoTune
// budget: the budget spread as evenly as possible over the seven task
// slots, in pipeline order. (In the combined design the PC and CFAR slots
// merge into one stage, whose count is then their sum — the budget total
// is preserved either way.)
func autoTuneWorkers(budget int) (core.STAPNodes, error) {
	if budget < numTunable {
		return core.STAPNodes{}, fmt.Errorf("pipexec: autotune budget %d cannot cover the %d tasks", budget, numTunable)
	}
	s := tune.EvenSplit(budget, numTunable)
	return core.STAPNodes{
		Doppler: s[tsDoppler], EasyWeight: s[tsEasyWeight], HardWeight: s[tsHardWeight],
		EasyBF: s[tsEasyBF], HardBF: s[tsHardBF], PulseComp: s[tsPulseComp], CFAR: s[tsCFAR],
	}, nil
}

// withAutoTuneDefaults resolves the AutoTune cold start: a positive budget
// replaces Workers with the even split (the tuner refines it from there);
// budget 0 keeps the configured Workers as the tuner's starting split.
// With an I/O-tunable source the budget is shared with the I/O knobs: the
// configured ReadAhead and DecodeWorkers (at least 1 each) claim their
// slots and the compute stages split the rest — the tuner then moves
// budget freely across all nine.
func withAutoTuneDefaults(cfg Config, src CubeSource) (Config, error) {
	if cfg.AutoTune == nil || cfg.AutoTune.Budget == 0 {
		return cfg, nil
	}
	budget := cfg.AutoTune.Budget
	if ioTunable(src) {
		if cfg.ReadAhead < 1 {
			cfg.ReadAhead = 1
		}
		if cfg.DecodeWorkers < 1 {
			cfg.DecodeWorkers = 1
		}
		budget -= cfg.ReadAhead + cfg.DecodeWorkers
		if budget < numTunable {
			return cfg, fmt.Errorf("pipexec: autotune budget %d cannot cover the %d tasks plus readahead %d and decode workers %d",
				cfg.AutoTune.Budget, numTunable, cfg.ReadAhead, cfg.DecodeWorkers)
		}
	}
	w, err := autoTuneWorkers(budget)
	if err != nil {
		return cfg, err
	}
	cfg.Workers = w
	return cfg, nil
}

// initTuning builds the live per-stage worker counts (always — stages read
// them whether or not a tuner swaps them) and, with AutoTune configured,
// the controller. clks lists the tunable stage clocks in slot order; the
// CFAR slot is nil in the combined design.
func (r *runner) initTuning(clks [numTunable]*stageClock) error {
	w := r.cfg.Workers
	counts := []int{w.Doppler, w.EasyWeight, w.HardWeight, w.EasyBF, w.HardBF, w.PulseComp, w.CFAR}
	pairs := len(r.p.Beams) * r.p.Bins()
	caps := []int{r.p.Dims.Ranges, len(r.easyBins), len(r.hardBins), len(r.easyBins), len(r.hardBins), pairs, pairs}
	if r.cfg.CombinePCCFAR {
		counts[tsPulseComp] += counts[tsCFAR]
		counts = counts[:tsCFAR]
		caps = caps[:tsCFAR]
	}
	r.wcs = make([]atomic.Int32, len(counts))
	for i, n := range counts {
		r.wcs[i].Store(int32(n))
	}
	if r.cfg.AutoTune == nil {
		return nil
	}
	stages := make([]tune.Stage, len(counts))
	for i := range stages {
		stages[i] = tune.Stage{Name: clks[i].name, Max: caps[i]}
		r.tuneClocks = append(r.tuneClocks, clks[i])
	}
	// An instrumentable frontend joins the solve: the readahead window is
	// a serial (latency-hiding) stage whose "workers" are prefetch slots,
	// the decode pool a regular compute stage. Their knobs then trade off
	// against compute workers under the one shared budget.
	if r.srcRead != nil && r.decSrc != nil {
		r.ioTune = true
		// A memory budget turns available bytes into a hard cap on the I/O
		// frontend: beyond (limit − minimum residency)/cube there is no
		// admissible readahead slot, so offering the tuner deeper windows
		// (or more decoders than admissible cubes) only wastes its probes
		// on budget-stalled configurations.
		maxRA := r.maxReadAhead()
		if lim := r.budget.PathLimit(); lim > 0 && r.cubeB > 0 {
			if cap := int((lim-MinResidency(r.p))/r.cubeB) + 1; cap < maxRA {
				maxRA = cap
			}
			if maxRA < 1 {
				maxRA = 1
			}
		}
		maxDW := maxDecodeWorkers
		if maxRA < maxDW {
			maxDW = maxRA
		}
		ra, dw := int(r.raDepth.Load()), int(r.decW.Load())
		if ra > maxRA {
			ra = maxRA
			r.raDepth.Store(int32(ra))
		}
		if dw > maxDW {
			dw = maxDW
			r.decW.Store(int32(dw))
			r.decSrc.SetDecodeWorkers(dw)
		}
		stages = append(stages,
			tune.Stage{Name: r.srcRead.name, Max: maxRA, Serial: true},
			tune.Stage{Name: r.srcDecode.name, Max: maxDW},
		)
		counts = append(counts, ra, dw)
		r.tuneClocks = append(r.tuneClocks, r.srcRead, r.srcDecode)
	}
	ctl, err := tune.NewController(*r.cfg.AutoTune, stages, counts)
	if err != nil {
		return fmt.Errorf("pipexec: %w", err)
	}
	r.tuner = ctl
	r.tuneBusy = make([]int64, len(counts))
	r.tuneCPIs = make([]int64, len(counts))
	return nil
}

// workersFor loads stage slot i's live worker count (>= 1 by validation;
// a hostile store is still clamped so parallel() stays safe).
func (r *runner) workersFor(i int) int {
	n := int(r.wcs[i].Load())
	if n < 1 {
		return 1
	}
	return n
}

// applySplit installs a tuner split: the compute slots into the live
// worker counts, then — with I/O tuning — the readahead depth and the
// source's decode pool. All land between CPIs, so the next CPI sees a
// consistent assignment.
func (r *runner) applySplit(split []int) {
	for i := 0; i < len(r.wcs) && i < len(split); i++ {
		r.wcs[i].Store(int32(split[i]))
	}
	if !r.ioTune || len(split) < len(r.wcs)+2 {
		return
	}
	r.raDepth.Store(int32(split[len(r.wcs)]))
	dw := split[len(r.wcs)+1]
	r.decW.Store(int32(dw))
	r.decSrc.SetDecodeWorkers(dw)
}

// afterCPI runs on the terminal stage's goroutine after each recorded CPI:
// it feeds the tuner the live clock counters and installs any rebalanced
// split before the next CPI's stages load their counts. Single-threaded by
// construction (one terminal stage), so the controller needs no locking.
// The test seam's setter addresses the compute slots first, then — when
// the source supports them — slot len(wcs) is the readahead depth and
// len(wcs)+1 the decode workers.
func (r *runner) afterCPI() {
	r.cpisDone++
	if r.cfg.testOnCPI != nil {
		r.cfg.testOnCPI(r.cpisDone, func(stage, n int) {
			switch {
			case stage >= 0 && stage < len(r.wcs) && n >= 1:
				r.wcs[stage].Store(int32(n))
			case stage == len(r.wcs) && n >= 1:
				r.raDepth.Store(int32(n))
			case stage == len(r.wcs)+1 && n >= 1 && r.decSrc != nil:
				r.decW.Store(int32(n))
				r.decSrc.SetDecodeWorkers(n)
			}
		})
	}
	if r.tuner == nil {
		return
	}
	for i, c := range r.tuneClocks {
		r.tuneBusy[i] = c.busy.Load()
		r.tuneCPIs[i] = c.cpis.Load()
	}
	split, applied := r.tuner.Observe(r.tuneBusy, r.tuneCPIs)
	if applied {
		r.applySplit(split)
	}
}

// ---- service-time histograms ----

// durBuckets spans [1ns, ~3.9 days) in powers of two — bucket i holds
// durations d with bits.Len64(d) == i, i.e. [2^(i-1), 2^i).
const durBuckets = 48

// durHist is a lock-free log2-scale histogram of per-CPI stage service
// times. Recording is one atomic add plus a max CAS; quantiles are read
// after the run (or at any time, approximately).
type durHist struct {
	buckets [durBuckets]atomic.Int64
	max     atomic.Int64
}

func (h *durHist) record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= durBuckets {
		i = durBuckets - 1
	}
	h.buckets[i].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns an upper-bound estimate of the q-quantile: the upper
// edge of the bucket holding it, clamped to the exact observed maximum.
func (h *durHist) quantile(q float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			edge := int64(1) << i // upper edge of bucket i is 2^i - 1
			if max := h.max.Load(); edge > max {
				return time.Duration(max)
			}
			return time.Duration(edge - 1)
		}
	}
	return time.Duration(h.max.Load())
}

// StageTimeStats summarises one stage's per-CPI service-time distribution
// — the tuner's input doubling as an observability surface (stapdetect
// -stagestats). P50/P90 are log-bucket upper bounds (within 2x of exact);
// Max is exact.
type StageTimeStats struct {
	Name          string
	CPIs          int64
	P50, P90, Max time.Duration
}

// String formats one row.
func (s StageTimeStats) String() string {
	return fmt.Sprintf("%-18s cpis=%-6d p50=%-10v p90=%-10v max=%v",
		s.Name, s.CPIs, s.P50, s.P90, s.Max)
}

// timeStats freezes the clock's histogram.
func (c *stageClock) timeStats() StageTimeStats {
	return StageTimeStats{
		Name: c.name,
		CPIs: c.cpis.Load(),
		P50:  c.hist.quantile(0.50),
		P90:  c.hist.quantile(0.90),
		Max:  time.Duration(c.hist.max.Load()),
	}
}

// FormatSplit renders a worker split against its stage names, e.g.
// "doppler=2 easy weight=1 ...". Used by CLIs printing tuner traces.
func FormatSplit(names []string, split []int) string {
	out := ""
	for i := range split {
		if i > 0 {
			out += " "
		}
		name := "?"
		if i < len(names) {
			name = names[i]
		}
		out += fmt.Sprintf("%s=%d", name, split[i])
	}
	return out
}
