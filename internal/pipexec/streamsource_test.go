package pipexec

import (
	"context"
	"errors"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
)

// encodeScenarioCPI builds one chunked frame for the scenario's CPI k.
func encodeScenarioCPI(t *testing.T, s *radar.Scenario, k uint64, chunkSize int) ([]byte, cube.Header) {
	t.Helper()
	cb, err := s.Generate(k)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, cube.FileBytesChunked(s.Dims, chunkSize))
	cube.EncodeChunked(cb, k, chunkSize, frame)
	h, err := cube.ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	return frame, h
}

// TestStreamSourcePendingReadyOnError pins the ReadyPending contract: a
// publication resolved with an error counts as ready exactly like a
// delivered cube — the pipeline's occupancy sampling must see "an answer
// is waiting", not "a cube is waiting".
func TestStreamSourcePendingReadyOnError(t *testing.T) {
	s := radar.SmallTestScenario()
	src := NewStreamSource(s.Dims)
	defer src.Close()

	p := src.Begin(7).(interface {
		PendingCube
		Ready() bool
	})
	if p.Ready() {
		t.Fatal("pending ready before anything was published")
	}
	pub, err := src.Publish(7)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("producer died")
	pub.Abort(wantErr)
	if !p.Ready() {
		t.Fatal("delivered error does not count as ready")
	}
	if _, err := p.Wait(); !errors.Is(err, wantErr) {
		t.Fatalf("Wait: got %v, want %v", err, wantErr)
	}
	// A re-Begin of the same seq (the pipeline's retry path) must observe
	// the same resolved error immediately rather than hanging.
	p2 := src.Begin(7).(interface {
		PendingCube
		Ready() bool
	})
	if !p2.Ready() {
		t.Fatal("re-Begin of an errored seq is not ready")
	}
	if _, err := p2.Wait(); !errors.Is(err, wantErr) {
		t.Fatalf("re-Begin Wait: got %v, want %v", err, wantErr)
	}
}

// TestStreamSourceChunkRepairMidStream drives the chunk path by hand: a CRC
// mismatch mid-stream leaves exactly that chunk missing, a duplicate chunk
// is idempotent, and a clean re-send repairs the cube, which then decodes
// byte-identically to the generated original.
func TestStreamSourceChunkRepairMidStream(t *testing.T) {
	s := radar.SmallTestScenario()
	const chunkSize = 4096
	frame, h := encodeScenarioCPI(t, s, 0, chunkSize)
	payload := frame[h.PayloadOffset():]

	src := NewStreamSource(s.Dims)
	defer src.Close()
	pub, err := src.Publish(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Announce(h); err != nil {
		t.Fatal(err)
	}
	// A duplicate publication of a live seq must be refused — routing two
	// producers into one slab would be silent corruption.
	if _, err := src.Publish(0); err == nil {
		t.Fatal("second Publish of a live seq succeeded")
	}
	chunkOf := func(i int) []byte {
		lo, hi := h.ChunkSpan(i)
		return payload[lo:hi]
	}
	for i := 0; i < h.Chunks(); i++ {
		data := chunkOf(i)
		if i == 3 { // corrupt one chunk mid-stream
			bad := append([]byte(nil), data...)
			bad[5] ^= 0x40
			if err := pub.Chunk(i, bad); !errors.Is(err, cube.ErrCorrupt) {
				t.Fatalf("corrupt chunk: got %v, want ErrCorrupt", err)
			}
			continue
		}
		if err := pub.Chunk(i, data); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	// A truncated chunk re-send must fail cleanly and leave it missing.
	if err := pub.Chunk(3, chunkOf(3)[:10]); !errors.Is(err, cube.ErrTruncated) {
		t.Fatalf("truncated chunk: got %v, want ErrTruncated", err)
	}
	// A duplicate of an already-landed chunk is idempotent.
	if err := pub.Chunk(2, chunkOf(2)); err != nil {
		t.Fatalf("duplicate chunk: %v", err)
	}
	if m := pub.Missing(); len(m) != 1 || m[0] != 3 {
		t.Fatalf("missing = %v, want [3]", m)
	}
	if err := pub.Commit(); !errors.Is(err, cube.ErrTruncated) {
		t.Fatalf("commit with missing chunk: got %v, want ErrTruncated", err)
	}
	if err := pub.Chunk(3, chunkOf(3)); err != nil {
		t.Fatalf("repair re-send: %v", err)
	}
	if !pub.Repaired() {
		t.Fatal("clean re-send after a CRC mismatch did not mark the cube repaired")
	}
	if err := pub.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	got, err := src.Begin(0).Wait()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("sample %d: decoded %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	st := src.IOStats()
	if st.ChunkRereads != 1 || st.RepairedReads != 1 {
		t.Fatalf("IOStats = %+v, want 1 chunk re-read and 1 repaired read", st)
	}
}

// TestGeneratorSourceMatchesMemSource runs the full pipeline from the
// in-process generator source and checks it reproduces the MemSource run
// exactly — the streaming frontend must be correctness-neutral.
func TestGeneratorSourceMatchesMemSource(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 6

	ref, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGeneratorSource(s.Dims, 2, func(seq uint64) (*cube.Cube, error) {
		return s.Generate(seq)
	})
	defer gen.Close()
	res, err := Run(context.Background(), cfg, gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPIs) != len(ref.CPIs) {
		t.Fatalf("generator run produced %d CPIs, reference %d", len(res.CPIs), len(ref.CPIs))
	}
	for k := range ref.CPIs {
		a, b := ref.CPIs[k].Detections, res.CPIs[k].Detections
		if len(a) != len(b) {
			t.Fatalf("CPI %d: %d detections, reference %d", k, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("CPI %d detection %d: %+v, reference %+v", k, i, b[i], a[i])
			}
		}
	}
	// The slab pool must bound allocations at the generator window plus the
	// pipeline's in-flight CPIs, not one slab per CPI.
	if news := gen.PoolNews(); news > int64(n) {
		t.Errorf("pool allocated %d cubes for %d CPIs", news, n)
	}
}
