package pipexec

import (
	"context"
	"errors"
	"testing"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

func testConfig() Config {
	s := radar.SmallTestScenario()
	p := stap.DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	return Config{
		Params:  p,
		Workers: core.STAPNodes{Doppler: 3, EasyWeight: 2, HardWeight: 2, EasyBF: 3, HardBF: 2, PulseComp: 3, CFAR: 2},
	}
}

// referenceDetections runs the sequential chain for n CPIs.
func referenceDetections(t *testing.T, p stap.Params, s *radar.Scenario, n int) [][]stap.Detection {
	t.Helper()
	pr, err := stap.NewProcessor(p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]stap.Detection, n)
	for k := 0; k < n; k++ {
		cb, err := s.Generate(uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		dets, err := pr.Process(cb, uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		out[k] = dets
	}
	return out
}

func sameDetections(a, b []stap.Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Beam != b[i].Beam || a[i].Bin != b[i].Bin || a[i].Range != b[i].Range {
			return false
		}
	}
	return true
}

func TestPipelineMatchesSequentialReference(t *testing.T) {
	// The parallel pipeline must produce exactly the reference chain's
	// detections for every CPI, including the lag-1 weight feedback.
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 5
	want := referenceDetections(t, cfg.Params, s, n)
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPIs) != n {
		t.Fatalf("got %d CPI results, want %d", len(res.CPIs), n)
	}
	for k, c := range res.CPIs {
		if c.Seq != uint64(k) {
			t.Fatalf("result %d has seq %d", k, c.Seq)
		}
		if !sameDetections(c.Detections, want[k]) {
			t.Errorf("CPI %d: pipeline %d detections, reference %d", k, len(c.Detections), len(want[k]))
		}
		if c.Latency <= 0 {
			t.Errorf("CPI %d: non-positive latency", k)
		}
	}
	if res.Throughput <= 0 || res.Elapsed <= 0 {
		t.Error("expected positive throughput and elapsed time")
	}
	if res.MeanLatency() <= 0 {
		t.Error("expected positive mean latency")
	}
}

func TestStageStats(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 5
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 8 {
		t.Fatalf("got %d stages, want 8 (read + 7 tasks)", len(res.Stages))
	}
	names := map[string]bool{}
	for _, st := range res.Stages {
		names[st.Name] = true
		if st.CPIs != n {
			t.Errorf("stage %s processed %d CPIs, want %d", st.Name, st.CPIs, n)
		}
		if st.Busy <= 0 {
			t.Errorf("stage %s has non-positive busy time", st.Name)
		}
		if st.MeanBusy() <= 0 {
			t.Errorf("stage %s MeanBusy non-positive", st.Name)
		}
	}
	for _, want := range []string{"read", "doppler", "easy weight", "hard weight", "easy BF", "hard BF", "pulse compr", "CFAR"} {
		if !names[want] {
			t.Errorf("missing stage %q", want)
		}
	}
	// Combined design: 7 stages, merged name.
	cfg.CombinePCCFAR = true
	res, err = Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 7 {
		t.Fatalf("combined: got %d stages, want 7", len(res.Stages))
	}
	found := false
	for _, st := range res.Stages {
		if st.Name == "pulse compr+CFAR" {
			found = true
		}
	}
	if !found {
		t.Error("combined stage missing")
	}
	if (StageStat{}).MeanBusy() != 0 {
		t.Error("zero-CPI MeanBusy should be 0")
	}
}

func TestSeparateIOSameDetections(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 4
	base, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SeparateIO = true
	sep, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.CPIs {
		if !sameDetections(base.CPIs[k].Detections, sep.CPIs[k].Detections) {
			t.Errorf("CPI %d: I/O designs disagree", k)
		}
	}
}

func TestCombinedPCCFARSameDetections(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 4
	base, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CombinePCCFAR = true
	comb, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.CPIs {
		if !sameDetections(base.CPIs[k].Detections, comb.CPIs[k].Detections) {
			t.Errorf("CPI %d: task combining changed the detections", k)
		}
	}
}

func TestFileSourceEndToEnd(t *testing.T) {
	// Write the round-robin dataset to a striped store, run the pipeline
	// off the files, and compare with the in-memory run. Only the first
	// fileCount CPIs are distinct on disk; run exactly that many.
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	const files = 4
	if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	fromFiles, err := Run(context.Background(), cfg, src, files)
	if err != nil {
		t.Fatal(err)
	}
	fromMem, err := Run(context.Background(), cfg, ScenarioSource(s), files)
	if err != nil {
		t.Fatal(err)
	}
	for k := range fromMem.CPIs {
		if !sameDetections(fromFiles.CPIs[k].Detections, fromMem.CPIs[k].Detections) {
			t.Errorf("CPI %d: file-backed run disagrees with in-memory run", k)
		}
	}
}

func TestFileSourceValidation(t *testing.T) {
	fs, err := pfs.CreateReal(t.TempDir(), 2, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	s := radar.SmallTestScenario()
	if _, err := NewFileSource(fs, s.Dims, 0); err == nil {
		t.Error("expected error for zero files")
	}
	if _, err := NewFileSource(fs, s.Dims, 4); err == nil {
		t.Error("expected error for missing dataset")
	}
	if _, err := radar.WriteDataset(fs, s, 4, 4, false); err != nil {
		t.Fatal(err)
	}
	wrong := s.Dims
	wrong.Ranges *= 2
	if _, err := NewFileSource(fs, wrong, 4); err == nil {
		t.Error("expected error for geometry mismatch")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := testConfig()
	src := ScenarioSource(radar.SmallTestScenario())
	if _, err := Run(context.Background(), cfg, src, 0); err == nil {
		t.Error("expected error for zero CPIs")
	}
	bad := cfg
	bad.Workers.CFAR = 0
	if _, err := Run(context.Background(), bad, src, 1); err == nil {
		t.Error("expected config validation error")
	}
	badParams := cfg
	badParams.Params.Bandwidth = 0
	if _, err := Run(context.Background(), badParams, src, 1); err == nil {
		t.Error("expected params validation error")
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	cfg := testConfig()
	boom := errors.New("disk on fire")
	src := &MemSource{Generate: func(seq uint64) (*cube.Cube, error) {
		if seq == 2 {
			return nil, boom
		}
		return radar.SmallTestScenario().Generate(seq)
	}}
	_, err := Run(context.Background(), cfg, src, 5)
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("expected wrapped source error, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	cfg := testConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	res, err := Run(ctx, cfg, ScenarioSource(radar.SmallTestScenario()), 50)
	// A cancelled run must terminate promptly; partial results (or an
	// error) are both acceptable, but it must not hang or panic.
	if err == nil && len(res.CPIs) == 50 {
		t.Log("run finished before cancellation took effect (acceptable but unusual)")
	}
}

func TestGeneratedCubeMismatchCaught(t *testing.T) {
	cfg := testConfig()
	src := &MemSource{Generate: func(seq uint64) (*cube.Cube, error) {
		return cube.New(cube.Dims{Channels: 2, Pulses: 4, Ranges: 8}), nil
	}}
	if _, err := Run(context.Background(), cfg, src, 2); err == nil {
		t.Error("expected dims mismatch error from the Doppler stage")
	}
}

func TestSmoothedPipelineMatchesReference(t *testing.T) {
	// With covariance smoothing enabled, the parallel pipeline must still
	// reproduce the sequential reference exactly.
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.Params.Forgetting = 0.6
	const n = 4
	want := referenceDetections(t, cfg.Params, s, n)
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.CPIs {
		if !sameDetections(res.CPIs[k].Detections, want[k]) {
			t.Errorf("CPI %d: smoothed pipeline diverges from reference", k)
		}
	}
}
