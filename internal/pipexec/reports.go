package pipexec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"stapio/internal/radar"
	"stapio/internal/stap"
)

// Detection report persistence — the output half of the I/O strategies:
// the CFAR task writes each CPI's detection reports into the (striped)
// file store, mirroring the companion study's report-output experiments.

// reportMagic identifies a report file.
const reportMagic = "SRPT"

// reportVersion is the current report file format version.
const reportVersion = 1

// reportHeaderSize = magic(4) + version(4) + seq(8) + count(4).
const reportHeaderSize = 20

// reportRecordSize = beam(4) + bin(4) + range(4) + power(8) + threshold(8).
const reportRecordSize = 28

// EncodeReports serialises one CPI's detections.
func EncodeReports(seq uint64, dets []stap.Detection) []byte {
	buf := make([]byte, reportHeaderSize+len(dets)*reportRecordSize)
	copy(buf[0:4], reportMagic)
	binary.LittleEndian.PutUint32(buf[4:8], reportVersion)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(dets)))
	off := reportHeaderSize
	for _, d := range dets {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d.Beam))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(d.Bin))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(d.Range))
		binary.LittleEndian.PutUint64(buf[off+12:], math.Float64bits(d.Power))
		binary.LittleEndian.PutUint64(buf[off+20:], math.Float64bits(d.Threshold))
		off += reportRecordSize
	}
	return buf
}

// DecodeReports parses a report file.
func DecodeReports(buf []byte) (seq uint64, dets []stap.Detection, err error) {
	if len(buf) < reportHeaderSize {
		return 0, nil, fmt.Errorf("pipexec: report file too short: %d bytes", len(buf))
	}
	if string(buf[0:4]) != reportMagic {
		return 0, nil, fmt.Errorf("pipexec: bad report magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != reportVersion {
		return 0, nil, fmt.Errorf("pipexec: unsupported report version %d", v)
	}
	seq = binary.LittleEndian.Uint64(buf[8:16])
	count := int(binary.LittleEndian.Uint32(buf[16:20]))
	if want := reportHeaderSize + count*reportRecordSize; len(buf) < want {
		return 0, nil, fmt.Errorf("pipexec: report file truncated: %d bytes, want %d", len(buf), want)
	}
	dets = make([]stap.Detection, count)
	off := reportHeaderSize
	for i := range dets {
		dets[i] = stap.Detection{
			Seq:       seq,
			Beam:      int(binary.LittleEndian.Uint32(buf[off:])),
			Bin:       int(binary.LittleEndian.Uint32(buf[off+4:])),
			Range:     int(binary.LittleEndian.Uint32(buf[off+8:])),
			Power:     math.Float64frombits(binary.LittleEndian.Uint64(buf[off+12:])),
			Threshold: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+20:])),
		}
		off += reportRecordSize
	}
	return seq, dets, nil
}

// ReportSink receives each CPI's detection reports as they complete. A
// sink must be safe for concurrent use (the combined PC+CFAR and plain
// CFAR stages call it from their stage goroutine, but tests may share a
// sink across runs).
type ReportSink interface {
	WriteReports(seq uint64, dets []stap.Detection) error
}

// ReportFileName is the staging-file name for CPI seq's reports.
func ReportFileName(seq uint64) string { return fmt.Sprintf("reports_%06d.dat", seq) }

// FileReportSink persists reports into a file store (typically the striped
// pfs.RealFS, so report writes exercise the same stripe directories as the
// cube reads).
type FileReportSink struct {
	Store radar.FileStore
	mu    sync.Mutex
	count int
}

// WriteReports implements ReportSink.
func (s *FileReportSink) WriteReports(seq uint64, dets []stap.Detection) error {
	buf := EncodeReports(seq, dets)
	if err := s.Store.WriteFile(ReportFileName(seq), buf); err != nil {
		return fmt.Errorf("pipexec: writing reports for CPI %d: %w", seq, err)
	}
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	return nil
}

// Written returns the number of report files written.
func (s *FileReportSink) Written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
