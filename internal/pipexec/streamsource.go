package pipexec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
)

// ErrStreamClosed resolves every outstanding fetch and rejects every new
// publication once a StreamSource has been closed.
var ErrStreamClosed = errors.New("pipexec: stream source closed")

// errCubeConsumed surfaces on the rare second Wait racing the first for the
// same delivered cube (an abandoned deadline wait that completed anyway).
var errCubeConsumed = errors.New("pipexec: streamed cube already consumed")

// StreamSource is the streaming CubeSource: a rendezvous between live cube
// producers (network connections, load generators, in-process scenario
// generators) and the pipeline's pull frontend. Producers publish each CPI
// through a CubePublisher — announcing the cube's header, then feeding
// verified chunks straight into a pooled cube.Cube slab as the bytes
// arrive, so no whole-file image is ever materialized — while the pipeline
// consumes through the ordinary Begin/Wait readahead window. Either side
// may arrive first; fetches for not-yet-published sequence numbers simply
// park until the producer commits.
//
// StreamSource implements the full instrumentation surface FileSource has:
// ReadyPending handles (window-occupancy accounting), frontend stage
// clocks ("src read" records publish-to-commit transfer latency, "src
// decode" the per-chunk decode work), live decode-pool resizing, and
// IOStats repair counters — so a pipeline fed by a stream is eligible for
// the same joint I/O+compute autotune solve as a file-fed one.
//
// Error entries (aborted publications, close) are retained until Close so
// a retrying consumer re-Begins into the same terminal error instead of
// parking forever; successful entries are dropped as they are consumed.
type StreamSource struct {
	// Dims is the cube geometry every publication must match.
	Dims cube.Dims
	// OnDeliver, when set before first use, is called once per cube handed
	// to the pipeline — the credit hook bounding an open-loop producer.
	OnDeliver func()

	mu       sync.Mutex
	entries  map[uint64]*streamEntry
	closed   bool
	closeErr error

	cubes    sync.Pool // *cube.Cube slabs
	cubeNews atomic.Int64

	decodeW atomic.Int32
	clks    atomic.Pointer[srcClocks]

	chunkRereads     atomic.Int64
	chunkRereadBytes atomic.Int64
	repairedReads    atomic.Int64
}

// Compile-time checks: StreamSource carries the full tunable-source surface.
var (
	_ CubeSource           = (*StreamSource)(nil)
	_ IOStatSource         = (*StreamSource)(nil)
	_ DecodeParallelSource = (*StreamSource)(nil)
	_ clockedSource        = (*StreamSource)(nil)
	_ ReadyPending         = (*streamPending)(nil)
)

// streamEntry is one sequence number's rendezvous slot. done closes when
// the entry resolves (cube delivered or error); resolved guards against a
// second resolution (publisher abort racing Close).
type streamEntry struct {
	done     chan struct{}
	cb       *cube.Cube
	err      error
	pub      bool
	resolved bool
}

// NewStreamSource builds a streaming source for the given cube geometry.
func NewStreamSource(dims cube.Dims) *StreamSource {
	return &StreamSource{Dims: dims, entries: make(map[uint64]*streamEntry)}
}

// resolveLocked delivers an entry. Caller holds s.mu.
func (s *StreamSource) resolveLocked(e *streamEntry, cb *cube.Cube, err error) {
	if e.resolved {
		return
	}
	e.cb, e.err, e.resolved = cb, err, true
	close(e.done)
}

// entryLocked returns seq's rendezvous slot, creating it if needed. Caller
// holds s.mu and has checked closed.
func (s *StreamSource) entryLocked(seq uint64) *streamEntry {
	e, ok := s.entries[seq]
	if !ok {
		e = &streamEntry{done: make(chan struct{})}
		s.entries[seq] = e
	}
	return e
}

// Begin implements AsyncSource: the returned handle resolves when the
// producer commits (or aborts) sequence seq. Begin after Close resolves
// immediately with the close error.
func (s *StreamSource) Begin(seq uint64) PendingCube {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[seq]; ok {
		return &streamPending{s: s, seq: seq, e: e}
	}
	if s.closed {
		e := &streamEntry{done: make(chan struct{}), err: s.closeErr, resolved: true}
		close(e.done)
		return &streamPending{s: s, seq: seq, e: e}
	}
	return &streamPending{s: s, seq: seq, e: s.entryLocked(seq)}
}

// streamPending is an in-flight streamed fetch.
type streamPending struct {
	s   *StreamSource
	seq uint64
	e   *streamEntry
}

// Wait implements PendingCube.
func (p *streamPending) Wait() (*cube.Cube, error) {
	<-p.e.done
	if p.e.err != nil {
		return nil, p.e.err
	}
	if !p.s.consume(p.seq, p.e) {
		return nil, errCubeConsumed
	}
	return p.e.cb, nil
}

// Ready implements ReadyPending without blocking. A delivered error counts
// as ready — the window's occupancy accounting wants "will Wait return
// without blocking", not "is there a cube".
func (p *streamPending) Ready() bool {
	select {
	case <-p.e.done:
		return true
	default:
		return false
	}
}

// consume claims a delivered cube exactly once, dropping its map entry and
// firing the producer-credit hook. It reports false if another waiter (or
// Close) claimed it first.
func (s *StreamSource) consume(seq uint64, e *streamEntry) bool {
	s.mu.Lock()
	won := s.entries[seq] == e
	if won {
		delete(s.entries, seq)
	}
	s.mu.Unlock()
	if won && s.OnDeliver != nil {
		s.OnDeliver()
	}
	return won
}

// getCube leases a decode slab from the pool.
func (s *StreamSource) getCube() *cube.Cube {
	if v := s.cubes.Get(); v != nil {
		return v.(*cube.Cube)
	}
	s.cubeNews.Add(1)
	return cube.New(s.Dims)
}

// Recycle implements CubeSource: delivered cubes return to the slab pool
// once the pipeline has consumed them. Foreign geometry is refused.
func (s *StreamSource) Recycle(cb *cube.Cube) {
	if cb == nil || cb.Dims != s.Dims {
		return
	}
	s.cubes.Put(cb)
}

// PoolNews reports how many decode slabs the source has ever allocated.
// With recycling working it stays bounded by the readahead window plus the
// open publications, not the CPI count.
func (s *StreamSource) PoolNews() int64 { return s.cubeNews.Load() }

// IOStats implements IOStatSource: chunk re-reads are the repair-round
// chunk re-sends that landed clean, repaired reads the cubes that
// committed despite at least one corrupt chunk.
func (s *StreamSource) IOStats() IOStats {
	return IOStats{
		ChunkRereads:     s.chunkRereads.Load(),
		ChunkRereadBytes: s.chunkRereadBytes.Load(),
		RepairedReads:    s.repairedReads.Load(),
	}
}

// SetDecodeWorkers implements DecodeParallelSource; the count lands in an
// atomic so the auto-tuner can resize while publications are in flight.
func (s *StreamSource) SetDecodeWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.decodeW.Store(int32(n))
}

func (s *StreamSource) decodeWorkers() int {
	if n := s.decodeW.Load(); n > 0 {
		return int(n)
	}
	return 1
}

// setStageClocks implements clockedSource.
func (s *StreamSource) setStageClocks(read, dec *stageClock) {
	s.clks.Store(&srcClocks{read: read, dec: dec})
}

// Close fails every unresolved fetch with ErrStreamClosed, recycles
// delivered-but-unconsumed cubes, and rejects all further publications.
// Safe to call more than once.
func (s *StreamSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.closeErr = ErrStreamClosed
	for seq, e := range s.entries {
		if e.resolved {
			if e.err == nil && e.cb != nil {
				s.cubes.Put(e.cb)
			}
		} else {
			s.resolveLocked(e, nil, s.closeErr)
		}
		delete(s.entries, seq)
	}
}

// Publish registers a producer for sequence seq and returns its publisher
// handle. It fails once the source is closed or when seq already has a
// publisher (a duplicate in-flight CPI). The handle is not safe for
// concurrent use — one producer goroutine owns it.
func (s *StreamSource) Publish(seq uint64) (*CubePublisher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, s.closeErr
	}
	e := s.entryLocked(seq)
	if e.pub || e.resolved {
		return nil, fmt.Errorf("pipexec: duplicate publish for CPI %d", seq)
	}
	e.pub = true
	return &CubePublisher{s: s, seq: seq, e: e, t0: time.Now()}, nil
}

// CubePublisher feeds one CPI cube into a StreamSource. The zero-copy path
// is Announce + Chunk-per-chunk + Commit: each chunk is CRC-verified and
// decoded straight from the caller's transport buffer into the pooled slab,
// so the full file image never exists. CommitPayload covers whole-frame
// producers (the legacy submit path) and CommitCube in-process generators
// that already hold a decoded cube. Exactly one of Commit, CommitPayload,
// CommitCube, or Abort terminates the publication.
type CubePublisher struct {
	s   *StreamSource
	seq uint64
	e   *streamEntry
	t0  time.Time

	h        cube.Header
	cb       *cube.Cube
	got      []bool
	bad      []bool
	miss     int
	repaired bool
	decNS    int64
	done     bool
}

// Seq returns the sequence number this publisher feeds.
func (p *CubePublisher) Seq() uint64 { return p.seq }

// Announce declares the cube's header (geometry plus, for the chunk path,
// its chunk table) and leases the decode slab. It must precede Chunk.
func (p *CubePublisher) Announce(h cube.Header) error {
	if p.done {
		return ErrStreamClosed
	}
	if p.cb != nil {
		return errors.New("pipexec: cube already announced")
	}
	if h.Dims != p.s.Dims {
		return fmt.Errorf("pipexec: published cube is %v, source expects %v", h.Dims, p.s.Dims)
	}
	p.h = h
	p.cb = p.s.getCube()
	p.got = make([]bool, h.Chunks())
	p.bad = make([]bool, h.Chunks())
	p.miss = h.Chunks()
	return nil
}

// Chunk verifies payload chunk i against the announced chunk table and, on
// a clean CRC, decodes it into the slab. data is only read during the call
// — the caller may reuse its transport buffer immediately. A CRC mismatch
// leaves the chunk missing (reported by Missing) so the producer can
// re-send just that chunk; a re-send that lands clean counts as a chunk
// re-read repair.
func (p *CubePublisher) Chunk(i int, data []byte) error {
	if p.cb == nil || p.done {
		return errors.New("pipexec: chunk before announce")
	}
	if err := cube.VerifyChunkData(&p.h, i, data); err != nil {
		if i >= 0 && i < len(p.bad) && !p.got[i] {
			p.bad[i] = true
		}
		return err
	}
	d0 := time.Now()
	cube.DecodeChunkData(p.cb, &p.h, i, data)
	p.decNS += int64(time.Since(d0))
	if p.bad[i] {
		p.bad[i] = false
		p.s.chunkRereads.Add(1)
		p.s.chunkRereadBytes.Add(int64(len(data)))
		p.repaired = true
	}
	if !p.got[i] {
		p.got[i] = true
		p.miss--
	}
	return nil
}

// Missing returns the chunk indices not yet received clean, in order.
func (p *CubePublisher) Missing() []int {
	var m []int
	for i, ok := range p.got {
		if !ok {
			m = append(m, i)
		}
	}
	return m
}

// Repaired reports whether any chunk needed a clean re-send after a CRC
// mismatch.
func (p *CubePublisher) Repaired() bool { return p.repaired }

// Commit delivers the cube to the pipeline. Every chunk must have landed
// clean. The transfer latency (publish to commit, decode time excluded)
// lands on the "src read" stage clock and the accumulated decode time on
// "src decode" — the measurements the joint autotune solve consumes.
func (p *CubePublisher) Commit() error {
	if p.done {
		return ErrStreamClosed
	}
	if p.cb == nil {
		return errors.New("pipexec: commit before announce")
	}
	if p.miss > 0 {
		return fmt.Errorf("pipexec: CPI %d: %w: %d of %d chunks missing",
			p.seq, cube.ErrTruncated, p.miss, len(p.got))
	}
	return p.deliver(p.cb)
}

// deliver resolves the entry with a finished cube and stamps the clocks.
func (p *CubePublisher) deliver(cb *cube.Cube) error {
	p.done = true
	p.cb = nil
	if clks := p.s.clks.Load(); clks != nil {
		if read := time.Since(p.t0) - time.Duration(p.decNS); clks.read != nil {
			if read < 0 {
				read = 0
			}
			clks.read.add(read)
		}
		if clks.dec != nil {
			clks.dec.add(time.Duration(p.decNS))
		}
	}
	if p.repaired {
		p.s.repairedReads.Add(1)
	}
	s := p.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.Recycle(cb)
		return s.closeErr
	}
	s.resolveLocked(p.e, cb, nil)
	s.mu.Unlock()
	return nil
}

// CommitPayload decodes a whole already-verified payload — the legacy
// whole-frame submit path — sharding the decode across the live decode
// worker count, then delivers.
func (p *CubePublisher) CommitPayload(h cube.Header, payload []byte) error {
	if p.cb == nil {
		if err := p.Announce(h); err != nil {
			return err
		}
	}
	if int64(len(payload)) < h.Bytes() {
		err := fmt.Errorf("pipexec: CPI %d: %w: payload is %d bytes, want %d",
			p.seq, cube.ErrTruncated, len(payload), h.Bytes())
		p.Abort(err)
		return err
	}
	cb := p.cb
	d0 := time.Now()
	if err := parallel(p.s.decodeWorkers(), len(cb.Data), func(_ int, blk cube.Block) error {
		cube.DecodeSampleRange(cb, payload, blk.Lo, blk.Hi)
		return nil
	}); err != nil {
		p.Abort(err)
		return err
	}
	p.decNS += int64(time.Since(d0))
	for i := range p.got {
		p.got[i] = true
	}
	p.miss = 0
	return p.deliver(cb)
}

// CommitCube hands an already-decoded cube straight through — the
// in-process generator path. The cube becomes the source's (it joins the
// slab pool after the pipeline recycles it).
func (p *CubePublisher) CommitCube(cb *cube.Cube) error {
	if p.done {
		return ErrStreamClosed
	}
	if cb == nil || cb.Dims != p.s.Dims {
		return fmt.Errorf("pipexec: published cube geometry mismatch")
	}
	if p.cb != nil { // announced slab unused on this path
		p.s.Recycle(p.cb)
	}
	return p.deliver(cb)
}

// Abort terminates the publication with an error: the pipeline's fetch for
// this sequence number resolves to err (dropped under a skip policy) and
// the leased slab returns to the pool. Abort after Commit is a no-op.
func (p *CubePublisher) Abort(err error) {
	if p.done {
		return
	}
	p.done = true
	if err == nil {
		err = errors.New("pipexec: publication aborted")
	}
	if p.cb != nil {
		p.s.Recycle(p.cb)
		p.cb = nil
	}
	s := p.s
	s.mu.Lock()
	s.resolveLocked(p.e, nil, err)
	s.mu.Unlock()
}

// GeneratorSource pumps an in-process cube generator through a
// StreamSource: the streaming-ingest equivalent of MemSource, with a
// bounded window of generated-but-unconsumed cubes. It exists so the
// streaming frontend (and its autotune eligibility) can be exercised
// without a network in the loop.
type GeneratorSource struct {
	*StreamSource
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewGeneratorSource starts a producer goroutine publishing gen's cubes in
// sequence order, at most window cubes ahead of the pipeline's consumption.
func NewGeneratorSource(dims cube.Dims, window int, gen func(seq uint64) (*cube.Cube, error)) *GeneratorSource {
	if window < 1 {
		window = 1
	}
	g := &GeneratorSource{StreamSource: NewStreamSource(dims), stop: make(chan struct{})}
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	g.OnDeliver = func() {
		select {
		case credits <- struct{}{}:
		default:
		}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for seq := uint64(0); ; seq++ {
			select {
			case <-credits:
			case <-g.stop:
				return
			}
			pub, err := g.Publish(seq)
			if err != nil {
				return // source closed
			}
			cb, err := gen(seq)
			if err != nil {
				pub.Abort(err)
				continue
			}
			if pub.CommitCube(cb) != nil {
				return
			}
		}
	}()
	return g
}

// Close stops the producer and closes the underlying stream.
func (g *GeneratorSource) Close() {
	g.once.Do(func() {
		close(g.stop)
		g.StreamSource.Close()
		g.wg.Wait()
	})
}
