//go:build race

package pipexec

// raceEnabled reports that the race detector is active. sync.Pool
// deliberately drops a fraction of Put items under the race detector to
// shake out reuse races, so allocation-count bounds that depend on pool
// hit rates are only meaningful without it.
const raceEnabled = true
