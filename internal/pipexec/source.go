// Package pipexec executes the STAP pipeline for real: each task is a
// stage with a pool of worker goroutines partitioning its workload (range
// gates for Doppler filtering, Doppler bins for weight computation and
// beamforming, (beam, bin) profiles for pulse compression and CFAR),
// stages are connected by channels, and the temporal dependency is a
// weight feedback channel — beamforming of CPI k uses weights trained on
// CPI k-1, exactly as in the paper's system.
//
// Input arrives through an AsyncSource, either the striped parallel file
// system backend (pfs.RealFS, with iread/iowait-style prefetch) or an
// in-memory generator. Both I/O designs are supported: embedded (the
// Doppler stage consumes reads directly) and a separate read stage.
package pipexec

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
)

// AsyncSource supplies CPI cubes with an asynchronous begin/wait protocol
// mirroring the NX iread()/iowait() pair.
type AsyncSource interface {
	// Begin starts fetching the cube for CPI seq and returns a handle.
	Begin(seq uint64) PendingCube
}

// CubeSource is the full contract the pipeline consumes cubes through: the
// asynchronous begin/wait pull protocol plus cube recycling, so any source
// — striped files, in-memory generators, or a network stream — pools its
// decoded slabs and steady-state ingest allocates nothing. The pipeline
// hands each cube back via Recycle once Doppler filtering has consumed it;
// sources without a pool implement it as a no-op. Optional refinements a
// source may additionally implement: RetryableSource (fault re-draws per
// attempt), ReadyPending handles (readahead-occupancy accounting),
// DecodeParallelSource + clockedSource (the joint I/O+compute autotune
// solve), and IOStatSource (repair counters in RunStats).
type CubeSource interface {
	AsyncSource
	// Recycle returns a cube obtained from this source once the pipeline
	// is done with it. Must tolerate nil and foreign-geometry cubes.
	Recycle(cb *cube.Cube)
}

// RetryableSource is an AsyncSource whose fetches carry a retry-attempt
// number, so a deterministic fault plan re-draws on each retry instead of
// replaying the same injected fault forever.
type RetryableSource interface {
	AsyncSource
	// BeginAttempt starts fetch number attempt (0 = first try) of CPI seq.
	BeginAttempt(seq uint64, attempt int) PendingCube
}

// PendingCube is an in-flight cube fetch.
type PendingCube interface {
	// Wait blocks until the cube is available.
	Wait() (*cube.Cube, error)
}

// IOStats are a source's ingest counters. The pipeline reports them per
// run (RunStats) by differencing snapshots, so a source reused across runs
// keeps cumulative counts.
type IOStats struct {
	// ChunkRereads is the number of chunk-level re-read operations issued
	// against corrupt chunks of chunked (v3) cube files.
	ChunkRereads int64
	// ChunkRereadBytes is the total bytes those re-reads fetched — the
	// partial-re-read saving shows as this staying far below file size
	// times RepairedReads.
	ChunkRereadBytes int64
	// RepairedReads is the number of cube reads that hit corrupt chunks
	// but completed clean via chunk re-reads, avoiding a whole-file retry.
	RepairedReads int64
}

// IOStatSource is implemented by sources that track ingest counters.
type IOStatSource interface {
	IOStats() IOStats
}

// DecodeParallelSource is implemented by sources whose per-cube decode and
// verify work can shard across a worker pool; the pipeline wires
// Config.DecodeWorkers through it. SetDecodeWorkers must be safe to call
// while fetches are in flight — the auto-tuner resizes the pool live.
type DecodeParallelSource interface {
	SetDecodeWorkers(n int)
}

// ReadyPending is implemented by pending fetches that can report, without
// blocking, whether their cube has landed. The read stage uses it to count
// readahead-window occupancy and pipeline-stalls-on-source.
type ReadyPending interface {
	Ready() bool
}

// clockedSource is implemented by sources that can time their read and
// decode/verify paths on pipeline stage clocks. The read clock records
// each fetch's serial latency (issue to data landed) — concurrent fetches
// each record their full latency, which is exactly the serial-work input
// the tuner's latency-hiding model wants. The decode clock records each
// cube's verify+decode wall time at the current decode worker count.
type clockedSource interface {
	setStageClocks(read, dec *stageClock)
}

// srcClocks bundles the frontend clocks behind one atomic pointer: fetch
// goroutines may outlive the run that started them (abandoned deadline
// waits), so the source must never race a clock swap from the next run.
type srcClocks struct {
	read, dec *stageClock
}

// FileSource reads CPI cubes from the round-robin staging files of a
// striped file store, the paper's configuration. Fetch handles decode
// eagerly: as soon as the striped read lands, a goroutine verifies and
// decodes the payload — sharded across DecodeWorkers goroutines — so with
// readahead depth > 1 the decode work of several CPIs overlaps instead of
// serialising on the pipeline's read stage.
//
// Chunked (format v3) files verify per-chunk CRCs; a corrupt chunk is
// re-read individually (ChunkRetries attempts, each re-drawing the fault
// plan) rather than failing the whole multi-megabyte read. Flat (v2/v1)
// files keep the whole-payload check and fall back to whole-file retries
// through the pipeline's retry policy.
//
// Read buffers and decoded cubes are pooled: each staging-file-sized byte
// buffer is returned to the pool when its fetch resolves (success,
// corruption, or drop alike), and the pipeline hands decoded cubes back
// through Recycle once Doppler filtering has consumed them, so
// steady-state reads allocate nothing.
type FileSource struct {
	FS    *pfs.RealFS
	Dims  cube.Dims
	Files int

	// DecodeWorkers shards each cube's verify+decode across this many
	// goroutines (values < 1 mean 1, the pre-readahead serial behaviour).
	DecodeWorkers int
	// ChunkRetries bounds per-chunk re-read rounds before the whole read
	// reports ErrCorrupt (values < 1 mean 2).
	ChunkRetries int

	// fileBytes is the probed staging-file size (set by NewFileSource;
	// zero means the literal-construction fallback: flat v2 layout).
	fileBytes int64

	// decodeW, when > 0, overrides DecodeWorkers: SetDecodeWorkers stores
	// here so the auto-tuner can resize the pool while fetches are in
	// flight without racing the plain config field.
	decodeW atomic.Int32

	// clks holds the frontend stage clocks (nil until the pipeline wires
	// them); behind an atomic pointer because fetch goroutines can outlive
	// the run that armed them.
	clks atomic.Pointer[srcClocks]

	bufs     sync.Pool // *readBuf
	cubes    sync.Pool // *cube.Cube
	bufNews  atomic.Int64
	cubeNews atomic.Int64

	chunkRereads     atomic.Int64
	chunkRereadBytes atomic.Int64
	repairedReads    atomic.Int64

	// bandHdrs caches each staging file's parsed header + chunk table for
	// the banded read path (ReadBand); bandMu guards it.
	bandMu   sync.Mutex
	bandHdrs map[string]*cube.Header
}

// readBuf wraps a pooled staging-file buffer; pooling the wrapper rather
// than the slice keeps Put from boxing a fresh interface value per read.
type readBuf struct{ b []byte }

// fileSize returns the staging-file size reads must cover.
func (s *FileSource) fileSize() int64 {
	if s.fileBytes > 0 {
		return s.fileBytes
	}
	return cube.FileBytes(s.Dims)
}

// getBuf leases a staging-file-sized read buffer. The pools work without a
// constructor (FileSource may be built as a literal), so allocation is the
// nil-Get fallback rather than sync.Pool.New.
func (s *FileSource) getBuf() *readBuf {
	if v := s.bufs.Get(); v != nil {
		return v.(*readBuf)
	}
	s.bufNews.Add(1)
	return &readBuf{b: make([]byte, s.fileSize())}
}

func (s *FileSource) putBuf(rb *readBuf) { s.bufs.Put(rb) }

func (s *FileSource) getCube() *cube.Cube {
	if v := s.cubes.Get(); v != nil {
		return v.(*cube.Cube)
	}
	s.cubeNews.Add(1)
	return cube.New(s.Dims)
}

// Recycle implements CubeSource: the pipeline returns a decoded cube once
// Doppler filtering has consumed it. Cubes of foreign geometry are refused
// (decoding fully overwrites a recycled cube's samples, so matching dims
// are the only requirement).
func (s *FileSource) Recycle(cb *cube.Cube) {
	if cb == nil || cb.Dims != s.Dims {
		return
	}
	s.cubes.Put(cb)
}

// PoolNews reports how many read buffers and decoded cubes the source has
// ever allocated. With recycling working both stay bounded by the pipeline
// depth plus readahead, not the CPI count — the pool regression test pins
// this.
func (s *FileSource) PoolNews() (bufs, cubes int64) {
	return s.bufNews.Load(), s.cubeNews.Load()
}

// IOStats implements IOStatSource.
func (s *FileSource) IOStats() IOStats {
	return IOStats{
		ChunkRereads:     s.chunkRereads.Load(),
		ChunkRereadBytes: s.chunkRereadBytes.Load(),
		RepairedReads:    s.repairedReads.Load(),
	}
}

// SetDecodeWorkers implements DecodeParallelSource. Safe to call while
// fetches are in flight: the count lands in an atomic that in-flight
// decodes load once at their start.
func (s *FileSource) SetDecodeWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.decodeW.Store(int32(n))
}

func (s *FileSource) decodeWorkers() int {
	if n := s.decodeW.Load(); n > 0 {
		return int(n)
	}
	if s.DecodeWorkers < 1 {
		return 1
	}
	return s.DecodeWorkers
}

// setStageClocks implements clockedSource.
func (s *FileSource) setStageClocks(read, dec *stageClock) {
	s.clks.Store(&srcClocks{read: read, dec: dec})
}

func (s *FileSource) chunkRetries() int {
	if s.ChunkRetries < 1 {
		return 2
	}
	return s.ChunkRetries
}

// NewFileSource validates the geometry against the first staging file and
// learns the dataset's cube format (flat v2 or chunked v3) from its header,
// sizing the read-buffer pool accordingly. The probe bypasses fault
// injection — startup metadata reads are not part of the modelled data
// path.
func NewFileSource(fs *pfs.RealFS, dims cube.Dims, files int) (*FileSource, error) {
	if files < 1 {
		return nil, fmt.Errorf("pipexec: file count %d < 1", files)
	}
	name := radar.FileName(0)
	size, err := fs.FileSize(name)
	if err != nil {
		return nil, fmt.Errorf("pipexec: probing dataset: %w", err)
	}
	hbuf := make([]byte, cube.HeaderSize+8)
	if size < int64(len(hbuf)) {
		return nil, fmt.Errorf("pipexec: staging file is %d bytes, shorter than any cube header", size)
	}
	if err := fs.ProbeAt(name, 0, hbuf); err != nil {
		return nil, fmt.Errorf("pipexec: probing dataset: %w", err)
	}
	h, err := cube.DecodeHeader(hbuf[:cube.HeaderSize])
	if err != nil {
		return nil, fmt.Errorf("pipexec: probing dataset: %w", err)
	}
	if h.Dims != dims {
		return nil, fmt.Errorf("pipexec: staging file holds %v, expected %v", h.Dims, dims)
	}
	want := cube.FileBytes(dims)
	if h.Version >= cube.FormatVersionChunked {
		chunk := int(binary.LittleEndian.Uint32(hbuf[cube.HeaderSize:]))
		if chunk <= 0 || chunk%8 != 0 {
			return nil, fmt.Errorf("pipexec: staging file declares invalid chunk size %d", chunk)
		}
		want = cube.FileBytesChunked(dims, chunk)
	}
	if size != want {
		return nil, fmt.Errorf("pipexec: staging file is %d bytes, want %d for %v (format v%d)", size, want, dims, h.Version)
	}
	return &FileSource{FS: fs, Dims: dims, Files: files, fileBytes: want}, nil
}

// filePending is an in-flight fetch: the striped read, then eager verify
// and decode, run in their own goroutine so fetches deeper in the
// readahead window make decode progress before the pipeline waits on them.
type filePending struct {
	done chan struct{}
	cb   *cube.Cube
	err  error
}

// Begin implements AsyncSource: it issues a striped read of the whole
// staging file for the CPI.
func (s *FileSource) Begin(seq uint64) PendingCube {
	return s.BeginAttempt(seq, 0)
}

// BeginAttempt implements RetryableSource. The read's fault-plan tag folds
// the CPI sequence number in with the attempt: staging files are reused
// round-robin, so without the seq every visit to a file would draw the
// same injected fate.
func (s *FileSource) BeginAttempt(seq uint64, attempt int) PendingCube {
	rb := s.getBuf()
	name := radar.FileName(radar.FileFor(seq, s.Files))
	tag := int(seq)<<8 | attempt&0xff
	pend := s.FS.StartAttempt(name, 0, rb.b, tag)
	p := &filePending{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		// The read buffer is recycled on every exit — failed reads, corrupt
		// payloads, and dropped CPIs included — so retries and skip-policy
		// drops reuse buffers rather than leak them.
		defer s.putBuf(rb)
		p.cb, p.err = s.fetch(name, seq, tag, rb.b, pend)
	}()
	return p
}

// Wait implements PendingCube. A corrupt payload that chunk re-reads could
// not repair surfaces as cube.ErrCorrupt, which the pipeline's retry layer
// treats as retryable (whole-file re-read).
func (p *filePending) Wait() (*cube.Cube, error) {
	<-p.done
	return p.cb, p.err
}

// Ready implements ReadyPending without blocking.
func (p *filePending) Ready() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// fetch blocks on the striped read, then verifies and decodes the payload.
// With stage clocks armed (setStageClocks) the striped-read wait lands on
// the read clock — one per-fetch serial latency sample, the tuner's serial
// work for the frontend — and the verify+decode section lands on the
// decode clock.
func (s *FileSource) fetch(name string, seq uint64, tag int, buf []byte, pend *pfs.Pending) (*cube.Cube, error) {
	clks := s.clks.Load()
	t0 := time.Now()
	if err := pend.Wait(); err != nil {
		return nil, err
	}
	if clks != nil && clks.read != nil {
		clks.read.add(time.Since(t0))
	}
	h, err := cube.ParseHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Dims != s.Dims {
		return nil, fmt.Errorf("pipexec: file holds %v, expected %v", h.Dims, s.Dims)
	}
	payload := buf[h.PayloadOffset():]
	if int64(len(payload)) < h.Bytes() {
		return nil, fmt.Errorf("pipexec: CPI %d: %w: payload is %d bytes, want %d",
			seq, cube.ErrTruncated, len(payload), h.Bytes())
	}
	cb := s.getCube()
	d0 := time.Now()
	if h.Chunks() > 0 {
		err = s.decodeChunked(name, seq, tag, &h, payload, cb)
	} else {
		err = s.decodeFlat(seq, &h, payload, cb)
	}
	if clks != nil && clks.dec != nil {
		clks.dec.add(time.Since(d0))
	}
	if err != nil {
		s.Recycle(cb)
		return nil, err
	}
	return cb, nil
}

// decodeFlat verifies the whole-payload checksum and decodes, sharding the
// decode across the worker pool. Flat files carry no chunk table, so a
// corrupt payload cannot be repaired in place — the error propagates and
// the pipeline's retry policy re-reads the whole file.
func (s *FileSource) decodeFlat(seq uint64, h *cube.Header, payload []byte, cb *cube.Cube) error {
	if err := cube.VerifyPayload(*h, payload); err != nil {
		return fmt.Errorf("pipexec: CPI %d: %w", seq, err)
	}
	return parallel(s.decodeWorkers(), len(cb.Data), func(_ int, blk cube.Block) error {
		cube.DecodeSampleRange(cb, payload, blk.Lo, blk.Hi)
		return nil
	})
}

// decodeChunked verifies and decodes chunk by chunk across the worker
// pool, then repairs any chunks whose CRC failed by re-reading just those
// byte ranges from the striped store. Each repair round carries a fresh
// attempt number, so a deterministic fault plan re-draws per round exactly
// as it does for whole-file retries.
func (s *FileSource) decodeChunked(name string, seq uint64, tag int, h *cube.Header, payload []byte, cb *cube.Cube) error {
	workers := s.decodeWorkers()
	badPer := make([][]int, workers)
	err := parallel(workers, h.Chunks(), func(widx int, blk cube.Block) error {
		for i := blk.Lo; i < blk.Hi; i++ {
			if cube.VerifyChunk(h, payload, i) == nil {
				cube.DecodeChunk(cb, h, payload, i)
			} else {
				badPer[widx] = append(badPer[widx], i)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	var bad []int
	for _, b := range badPer {
		bad = append(bad, b...) // worker blocks are ordered, so bad stays sorted
	}
	if len(bad) == 0 {
		return nil
	}
	payOff := h.PayloadOffset()
	retries := s.chunkRetries()
	for r := 0; r < retries && len(bad) > 0; r++ {
		remaining := bad[:0]
		for _, i := range bad {
			lo, hi := h.ChunkSpan(i)
			s.chunkRereads.Add(1)
			s.chunkRereadBytes.Add(hi - lo)
			if s.FS.ReadAtAttempt(name, payOff+lo, payload[lo:hi], tag+1+r) != nil ||
				cube.VerifyChunk(h, payload, i) != nil {
				remaining = append(remaining, i)
				continue
			}
			cube.DecodeChunk(cb, h, payload, i)
		}
		bad = remaining
	}
	if len(bad) > 0 {
		return fmt.Errorf("pipexec: CPI %d: %w: %d of %d chunks unrecoverable after %d chunk re-read rounds (first: chunk %d)",
			seq, cube.ErrCorrupt, len(bad), h.Chunks(), retries, bad[0])
	}
	s.repairedReads.Add(1)
	return nil
}

// MemSource serves cubes from a generator function; used by tests and the
// in-memory examples. The generator must be safe for concurrent calls.
type MemSource struct {
	Generate func(seq uint64) (*cube.Cube, error)
}

// Recycle implements CubeSource as a no-op: generated cubes are freshly
// allocated per CPI and have no pool to return to.
func (s *MemSource) Recycle(cb *cube.Cube) {}

// Compile-time interface checks for the built-in sources.
var (
	_ CubeSource           = (*FileSource)(nil)
	_ RetryableSource      = (*FileSource)(nil)
	_ IOStatSource         = (*FileSource)(nil)
	_ DecodeParallelSource = (*FileSource)(nil)
	_ clockedSource        = (*FileSource)(nil)
	_ CubeSource           = (*MemSource)(nil)
)

type memPending struct {
	cb  *cube.Cube
	err error
}

// Begin implements AsyncSource, generating eagerly in a goroutine.
func (s *MemSource) Begin(seq uint64) PendingCube {
	p := &memPending{}
	done := make(chan struct{})
	go func() {
		p.cb, p.err = s.Generate(seq)
		close(done)
	}()
	return &waitPending{p: p, done: done}
}

type waitPending struct {
	p    *memPending
	done chan struct{}
}

func (w *waitPending) Wait() (*cube.Cube, error) {
	<-w.done
	return w.p.cb, w.p.err
}

// Ready implements ReadyPending without blocking.
func (w *waitPending) Ready() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// ScenarioSource builds a MemSource over a radar scenario.
func ScenarioSource(s *radar.Scenario) *MemSource {
	return &MemSource{Generate: func(seq uint64) (*cube.Cube, error) { return s.Generate(seq) }}
}
