// Package pipexec executes the STAP pipeline for real: each task is a
// stage with a pool of worker goroutines partitioning its workload (range
// gates for Doppler filtering, Doppler bins for weight computation and
// beamforming, (beam, bin) profiles for pulse compression and CFAR),
// stages are connected by channels, and the temporal dependency is a
// weight feedback channel — beamforming of CPI k uses weights trained on
// CPI k-1, exactly as in the paper's system.
//
// Input arrives through an AsyncSource, either the striped parallel file
// system backend (pfs.RealFS, with iread/iowait-style prefetch) or an
// in-memory generator. Both I/O designs are supported: embedded (the
// Doppler stage consumes reads directly) and a separate read stage.
package pipexec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
)

// AsyncSource supplies CPI cubes with an asynchronous begin/wait protocol
// mirroring the NX iread()/iowait() pair.
type AsyncSource interface {
	// Begin starts fetching the cube for CPI seq and returns a handle.
	Begin(seq uint64) PendingCube
}

// RetryableSource is an AsyncSource whose fetches carry a retry-attempt
// number, so a deterministic fault plan re-draws on each retry instead of
// replaying the same injected fault forever.
type RetryableSource interface {
	AsyncSource
	// BeginAttempt starts fetch number attempt (0 = first try) of CPI seq.
	BeginAttempt(seq uint64, attempt int) PendingCube
}

// PendingCube is an in-flight cube fetch.
type PendingCube interface {
	// Wait blocks until the cube is available.
	Wait() (*cube.Cube, error)
}

// FileSource reads CPI cubes from the round-robin staging files of a
// striped file store, the paper's configuration. Read buffers and decoded
// cubes are pooled: each staging-file-sized byte buffer is returned to the
// pool when its read resolves (success, corruption, or drop alike), and the
// pipeline hands decoded cubes back through Recycle once Doppler filtering
// has consumed them, so steady-state reads allocate nothing.
type FileSource struct {
	FS    *pfs.RealFS
	Dims  cube.Dims
	Files int

	bufs     sync.Pool // *readBuf
	cubes    sync.Pool // *cube.Cube
	bufNews  atomic.Int64
	cubeNews atomic.Int64
}

// readBuf wraps a pooled staging-file buffer; pooling the wrapper rather
// than the slice keeps Put from boxing a fresh interface value per read.
type readBuf struct{ b []byte }

// getBuf leases a staging-file-sized read buffer. The pools work without a
// constructor (FileSource may be built as a literal), so allocation is the
// nil-Get fallback rather than sync.Pool.New.
func (s *FileSource) getBuf() *readBuf {
	if v := s.bufs.Get(); v != nil {
		return v.(*readBuf)
	}
	s.bufNews.Add(1)
	return &readBuf{b: make([]byte, cube.FileBytes(s.Dims))}
}

func (s *FileSource) putBuf(rb *readBuf) { s.bufs.Put(rb) }

func (s *FileSource) getCube() *cube.Cube {
	if v := s.cubes.Get(); v != nil {
		return v.(*cube.Cube)
	}
	s.cubeNews.Add(1)
	return cube.New(s.Dims)
}

// Recycle implements CubeRecycler: the pipeline returns a decoded cube once
// Doppler filtering has consumed it. Cubes of foreign geometry are refused
// (DecodeSamples fully overwrites a recycled cube's samples, so matching
// dims are the only requirement).
func (s *FileSource) Recycle(cb *cube.Cube) {
	if cb == nil || cb.Dims != s.Dims {
		return
	}
	s.cubes.Put(cb)
}

// PoolNews reports how many read buffers and decoded cubes the source has
// ever allocated. With recycling working both stay bounded by the pipeline
// depth (plus abandoned reads), not the CPI count — the pool regression
// test pins this.
func (s *FileSource) PoolNews() (bufs, cubes int64) {
	return s.bufNews.Load(), s.cubeNews.Load()
}

// NewFileSource validates the geometry against the first staging file.
func NewFileSource(fs *pfs.RealFS, dims cube.Dims, files int) (*FileSource, error) {
	if files < 1 {
		return nil, fmt.Errorf("pipexec: file count %d < 1", files)
	}
	size, err := fs.FileSize(radar.FileName(0))
	if err != nil {
		return nil, fmt.Errorf("pipexec: probing dataset: %w", err)
	}
	if want := cube.FileBytes(dims); size != want {
		return nil, fmt.Errorf("pipexec: staging file is %d bytes, want %d for %v", size, want, dims)
	}
	return &FileSource{FS: fs, Dims: dims, Files: files}, nil
}

type filePending struct {
	src *FileSource
	seq uint64
	p   *pfs.Pending
	rb  *readBuf
}

// Begin implements AsyncSource: it issues a striped read of the whole
// staging file for the CPI.
func (s *FileSource) Begin(seq uint64) PendingCube {
	return s.BeginAttempt(seq, 0)
}

// BeginAttempt implements RetryableSource. The read's fault-plan tag folds
// the CPI sequence number in with the attempt: staging files are reused
// round-robin, so without the seq every visit to a file would draw the
// same injected fate.
func (s *FileSource) BeginAttempt(seq uint64, attempt int) PendingCube {
	rb := s.getBuf()
	name := radar.FileName(radar.FileFor(seq, s.Files))
	tag := int(seq)<<8 | attempt&0xff
	return &filePending{src: s, seq: seq, p: s.FS.StartAttempt(name, 0, rb.b, tag), rb: rb}
}

// Wait implements PendingCube: it blocks on the striped read, verifies the
// payload checksum, then decodes the cube. A corrupt payload surfaces as
// cube.ErrCorrupt, which the pipeline's retry layer treats as retryable.
// The read buffer is recycled on every exit — failed reads, corrupt
// payloads, and dropped CPIs included — so retries and skip-policy drops
// reuse buffers rather than leak them.
func (p *filePending) Wait() (*cube.Cube, error) {
	defer p.src.putBuf(p.rb)
	buf := p.rb.b
	if err := p.p.Wait(); err != nil {
		return nil, err
	}
	h, err := cube.DecodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Dims != p.src.Dims {
		return nil, fmt.Errorf("pipexec: file holds %v, expected %v", h.Dims, p.src.Dims)
	}
	if err := cube.VerifyPayload(h, buf[cube.HeaderSize:]); err != nil {
		return nil, fmt.Errorf("pipexec: CPI %d: %w", p.seq, err)
	}
	cb := p.src.getCube()
	if err := cube.DecodeSamples(cb, buf[cube.HeaderSize:]); err != nil {
		p.src.Recycle(cb)
		return nil, err
	}
	return cb, nil
}

// MemSource serves cubes from a generator function; used by tests and the
// in-memory examples. The generator must be safe for concurrent calls.
type MemSource struct {
	Generate func(seq uint64) (*cube.Cube, error)
}

type memPending struct {
	cb  *cube.Cube
	err error
}

// Begin implements AsyncSource, generating eagerly in a goroutine.
func (s *MemSource) Begin(seq uint64) PendingCube {
	p := &memPending{}
	done := make(chan struct{})
	go func() {
		p.cb, p.err = s.Generate(seq)
		close(done)
	}()
	return &waitPending{p: p, done: done}
}

type waitPending struct {
	p    *memPending
	done chan struct{}
}

func (w *waitPending) Wait() (*cube.Cube, error) {
	<-w.done
	return w.p.cb, w.p.err
}

// ScenarioSource builds a MemSource over a radar scenario.
func ScenarioSource(s *radar.Scenario) *MemSource {
	return &MemSource{Generate: func(seq uint64) (*cube.Cube, error) { return s.Generate(seq) }}
}
