package pipexec

import (
	"context"
	"testing"

	"stapio/internal/pfs"
	"stapio/internal/radar"
)

// chunkedStore writes the round-robin dataset at an explicit chunk size —
// small enough that the small test cube spans many chunks, so partial
// re-read is actually partial.
func chunkedStore(t *testing.T, s *radar.Scenario, chunkSize int) (*pfs.RealFS, *FileSource) {
	t.Helper()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radar.WriteDatasetChunked(fs, s, radar.DefaultFileCount, radar.DefaultFileCount, false, chunkSize); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, radar.DefaultFileCount)
	if err != nil {
		t.Fatal(err)
	}
	return fs, src
}

// Readahead depth and decode parallelism are performance knobs, not
// semantic ones: every (depth, workers) combination must deliver CPIs in
// order with detections identical to the depth-1 serial-decode baseline.
func TestReadaheadDepthsMatchBaseline(t *testing.T) {
	s := radar.SmallTestScenario()
	_, src := chunkedStore(t, s, 1024)
	cfg := testConfig()
	cfg.SeparateIO = true
	const n = 12

	base, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.CPIs) != n {
		t.Fatalf("baseline delivered %d CPIs, want %d", len(base.CPIs), n)
	}
	for _, depth := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4} {
			cfg := cfg
			cfg.ReadAhead = depth
			cfg.DecodeWorkers = workers
			res, err := Run(context.Background(), cfg, src, n)
			if err != nil {
				t.Fatalf("depth %d workers %d: %v", depth, workers, err)
			}
			if len(res.CPIs) != n {
				t.Fatalf("depth %d workers %d: %d CPIs, want %d", depth, workers, len(res.CPIs), n)
			}
			for k := range res.CPIs {
				if res.CPIs[k].Seq != base.CPIs[k].Seq {
					t.Fatalf("depth %d workers %d: CPI order diverged at %d", depth, workers, k)
				}
				if !sameDetections(res.CPIs[k].Detections, base.CPIs[k].Detections) {
					t.Errorf("depth %d workers %d: CPI %d detections differ from baseline", depth, workers, k)
				}
			}
		}
	}
}

// Injected corruption on a chunked dataset must be repaired by re-reading
// only the damaged chunks — not the whole file — and the repair must be
// invisible to the pipeline: no drops, detections identical to the
// fault-free run, and counters that are pure functions of the fault seed,
// so identical across readahead depths and decode-worker counts.
func TestPartialRereadRepairsCorruptChunks(t *testing.T) {
	s := radar.SmallTestScenario()
	const chunkSize = 1024
	fs, src := chunkedStore(t, s, chunkSize)
	cfg := testConfig()
	cfg.SeparateIO = true
	cfg.Retry = fastRetry
	cfg.Degrade = DegradeSkipCPI
	const n = 24

	clean, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}

	run := func(depth, workers int) RunStats {
		t.Helper()
		fs.SetFaults(&pfs.FaultPlan{Seed: 3, CorruptRate: 0.2})
		defer fs.SetFaults(nil)
		cfg := cfg
		cfg.ReadAhead = depth
		cfg.DecodeWorkers = workers
		res, err := Run(context.Background(), cfg, src, n)
		if err != nil {
			t.Fatalf("depth %d workers %d: %v", depth, workers, err)
		}
		st := res.Stats
		if st.Drops != 0 {
			t.Fatalf("depth %d workers %d: repairs should leave nothing to drop, got %v", depth, workers, st)
		}
		if len(res.CPIs) != n {
			t.Fatalf("depth %d workers %d: %d CPIs, want %d", depth, workers, len(res.CPIs), n)
		}
		for k := range res.CPIs {
			if !sameDetections(res.CPIs[k].Detections, clean.CPIs[k].Detections) {
				t.Errorf("depth %d workers %d: CPI %d detections differ from the fault-free run", depth, workers, k)
			}
		}
		return st
	}

	st := run(1, 1)
	if st.RepairedReads == 0 || st.ChunkRereads == 0 {
		t.Fatalf("fault plan injected no repairable corruption; the test exercises nothing: %v", st)
	}
	// Partial means partial: each re-read fetches at most one chunk, and
	// the total re-read traffic stays far below re-reading whole files
	// (the pre-chunking behaviour re-fetched FileBytes per corruption).
	if st.ChunkRereadBytes > st.ChunkRereads*chunkSize {
		t.Errorf("chunk re-reads fetched %d bytes over %d re-reads, more than %d bytes each",
			st.ChunkRereadBytes, st.ChunkRereads, chunkSize)
	}
	wholeFile := radar.DatasetFileBytes(s.Dims)
	if st.ChunkRereadBytes >= st.RepairedReads*wholeFile {
		t.Errorf("re-read traffic %d bytes is no better than %d whole-file re-reads (%d bytes)",
			st.ChunkRereadBytes, st.RepairedReads, st.RepairedReads*wholeFile)
	}

	// The fault draws are pure functions of (file, offset, stripe dir,
	// attempt) — never of timing — so deeper readahead and parallel decode
	// must reproduce the exact same repair counters.
	for _, c := range []struct{ depth, workers int }{{4, 1}, {1, 4}, {4, 4}} {
		a := run(c.depth, c.workers)
		if a.ChunkRereads != st.ChunkRereads || a.ChunkRereadBytes != st.ChunkRereadBytes ||
			a.RepairedReads != st.RepairedReads || a.ChecksumFailures != st.ChecksumFailures ||
			a.Retries != st.Retries {
			t.Errorf("depth %d workers %d: counters diverged from depth-1 baseline: %v vs %v",
				c.depth, c.workers, a, st)
		}
	}
}

// Flat (v2) datasets predate the chunk table: corruption there cannot be
// repaired in place, so it must surface as checksum failures and
// whole-file retries — and the reader must still accept the format.
func TestFlatDatasetFallsBackToWholeFileRetry(t *testing.T) {
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radar.WriteDatasetFlat(fs, s, radar.DefaultFileCount, radar.DefaultFileCount, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, radar.DefaultFileCount)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.SeparateIO = true
	cfg.ReadAhead = 2
	cfg.DecodeWorkers = 2
	cfg.Retry = fastRetry
	cfg.Degrade = DegradeSkipCPI
	const n = 16

	clean, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(&pfs.FaultPlan{Seed: 3, CorruptRate: 0.2})
	res, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.ChecksumFailures == 0 {
		t.Error("flat-format corruption should trip the whole-payload checksum")
	}
	if st.ChunkRereads != 0 || st.RepairedReads != 0 {
		t.Errorf("flat files have no chunks to repair, got %v", st)
	}
	for k := range res.CPIs {
		if !sameDetections(res.CPIs[k].Detections, clean.CPIs[k].Detections) {
			t.Errorf("CPI %d detections differ from the fault-free run", k)
		}
	}
}

// Deeper readahead holds more reads in flight, but the pool-news bound
// must still scale with the window, not with the CPI count.
func TestPoolsBoundedAtDeepReadahead(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items deliberately under the race detector; the news bound holds only without it")
	}
	s := radar.SmallTestScenario()
	_, src := chunkedStore(t, s, 1024)
	cfg := testConfig()
	cfg.SeparateIO = true
	cfg.ReadAhead = 4
	cfg.DecodeWorkers = 2
	cfg.Buffer = 2

	const cpis = 64
	res, err := Run(context.Background(), cfg, src, cpis)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPIs) != cpis {
		t.Fatalf("got %d CPIs, want %d", len(res.CPIs), cpis)
	}
	bufs, cubes := src.PoolNews()
	// Depth 4 keeps at most 5 reads in flight; with channel slots and
	// stage-held CPIs the bound has headroom, but it must not scale with
	// the 64 CPIs completed.
	const bound = 24
	if bufs > bound || cubes > bound {
		t.Errorf("pool news bufs=%d cubes=%d over %d CPIs at depth 4, want <= %d (readahead leaks pool items)",
			bufs, cubes, cpis, bound)
	}
}
