package pipexec

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
)

// fastRetry keeps test retries from sleeping noticeably.
var fastRetry = RetryPolicy{MaxAttempts: 6, BaseBackoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond}

// faultedStore writes the round-robin dataset to a fresh striped store and
// returns the store plus a source over it.
func faultedStore(t *testing.T, s *radar.Scenario) (*pfs.RealFS, *FileSource) {
	t.Helper()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radar.WriteDataset(fs, s, radar.DefaultFileCount, radar.DefaultFileCount, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, radar.DefaultFileCount)
	if err != nil {
		t.Fatal(err)
	}
	return fs, src
}

func TestFaultedRunSkipCPIMatchesCleanRun(t *testing.T) {
	// The acceptance scenario: a 32-CPI run off the striped store with 5%
	// per-stripe read failures and injected payload corruption, under the
	// skip-CPI policy with enough retry budget that every CPI eventually
	// reads clean. The run must complete, report exact (reproducible)
	// retry and checksum counters, and produce detections identical to the
	// fault-free run for every delivered CPI.
	s := radar.SmallTestScenario()
	fs, src := faultedStore(t, s)
	cfg := testConfig()
	cfg.Retry = fastRetry
	cfg.Degrade = DegradeSkipCPI
	const n = 32

	clean, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := clean.Stats; got.Retries != 0 || got.ChecksumFailures != 0 || got.Drops != 0 ||
		got.ChunkRereads != 0 || got.RepairedReads != 0 {
		t.Fatalf("fault-free run reported resilience activity: %v", got)
	}

	plan := &pfs.FaultPlan{Seed: 1, FailRate: 0.05, CorruptRate: 0.05}
	fs.SetFaults(plan)
	faulted, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	st := faulted.Stats
	if st.Drops != 0 || len(st.DroppedSeqs) != 0 {
		t.Fatalf("seed 1 should retry through every fault, got drops: %v", st)
	}
	if st.Retries == 0 {
		t.Error("expected injected failures to force retries")
	}
	// Payload corruption is absorbed by chunk-level repair (the dataset is
	// chunked v3); corruption landing in the header/chunk-table region has
	// no per-chunk CRC to repair against, so it still surfaces as a
	// checksum failure and a whole-file retry. Seed 1 exercises both.
	if st.ChunkRereads == 0 || st.RepairedReads == 0 {
		t.Errorf("expected injected payload corruption to be chunk-repaired: %v", st)
	}
	if st.ChecksumFailures == 0 {
		t.Error("expected header-area corruption to trip the cube checksum")
	}
	if len(faulted.CPIs) != n {
		t.Fatalf("got %d CPIs, want %d", len(faulted.CPIs), n)
	}
	for k := range clean.CPIs {
		if faulted.CPIs[k].Seq != clean.CPIs[k].Seq {
			t.Fatalf("CPI order diverged at %d", k)
		}
		if !sameDetections(faulted.CPIs[k].Detections, clean.CPIs[k].Detections) {
			t.Errorf("CPI %d: faulted run's detections differ from the clean run", k)
		}
	}

	// Determinism: the same seed must reproduce the same counters exactly,
	// whatever the goroutine interleaving.
	fs.SetFaults(&pfs.FaultPlan{Seed: 1, FailRate: 0.05, CorruptRate: 0.05})
	again, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	if a := again.Stats; a.Retries != st.Retries || a.ChecksumFailures != st.ChecksumFailures ||
		a.Drops != st.Drops || a.ChunkRereads != st.ChunkRereads ||
		a.ChunkRereadBytes != st.ChunkRereadBytes || a.RepairedReads != st.RepairedReads {
		t.Errorf("counters not reproducible: first %v, second %v", st, a)
	}
}

// stuckSource wraps a source and makes one CPI permanently unreadable.
type stuckSource struct {
	inner CubeSource
	seq   uint64
}

type errPending struct{ err error }

func (p errPending) Wait() (*cube.Cube, error) { return nil, p.err }

func (s *stuckSource) Begin(seq uint64) PendingCube {
	if seq == s.seq {
		return errPending{err: errors.New("stripe server offline")}
	}
	return s.inner.Begin(seq)
}

func (s *stuckSource) Recycle(cb *cube.Cube) { s.inner.Recycle(cb) }

func TestSkipCPIDropsStuckRead(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 100 * time.Microsecond}
	cfg.Degrade = DegradeSkipCPI
	const n = 5
	src := &stuckSource{inner: ScenarioSource(s), seq: 2}
	res, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Drops != 1 || len(st.DroppedSeqs) != 1 || st.DroppedSeqs[0] != 2 {
		t.Fatalf("want exactly CPI 2 dropped, got %v (dropped %v)", st, st.DroppedSeqs)
	}
	if st.Retries != 2 {
		t.Errorf("3 attempts should record 2 retries, got %d", st.Retries)
	}
	if len(res.CPIs) != n-1 {
		t.Fatalf("got %d CPIs, want %d", len(res.CPIs), n-1)
	}
	for _, c := range res.CPIs {
		if c.Seq == 2 {
			t.Fatal("dropped CPI appeared in the results")
		}
	}
	// CPIs before the drop are untouched by it and must match the
	// reference chain; CPI 3 legitimately differs (its weights come from
	// CPI 1, the previous delivered CPI).
	want := referenceDetections(t, cfg.Params, s, 2)
	for k := 0; k < 2; k++ {
		if !sameDetections(res.CPIs[k].Detections, want[k]) {
			t.Errorf("CPI %d diverged from reference before the drop", k)
		}
	}
}

func TestFailFastAbortsOnStuckRead(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Microsecond}
	src := &stuckSource{inner: ScenarioSource(s), seq: 1}
	if _, err := Run(context.Background(), cfg, src, 3); err == nil {
		t.Fatal("fail-fast run should abort on an unreadable CPI")
	}
}

func TestLastGoodWeightsSurvivesSolveFailure(t *testing.T) {
	// NaN samples make the covariance non-positive-definite, so both
	// weight stages fail their solve for that CPI. Under the last-good
	// policy each falls back to its previous weight set and the run
	// completes; under fail-fast it aborts.
	s := radar.SmallTestScenario()
	poisoned := &MemSource{Generate: func(seq uint64) (*cube.Cube, error) {
		cb, err := s.Generate(seq)
		if err != nil {
			return nil, err
		}
		if seq == 2 {
			nan := float32(math.NaN())
			for i := range cb.Data {
				cb.Data[i] = complex(nan, nan)
			}
		}
		return cb, nil
	}}
	cfg := testConfig()
	if _, err := Run(context.Background(), cfg, poisoned, 4); err == nil {
		t.Fatal("fail-fast run should abort on a failed weight solve")
	}
	cfg.Degrade = DegradeLastGoodWeights
	res, err := Run(context.Background(), cfg, poisoned, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WeightFallbacks != 2 {
		t.Errorf("want one fallback per weight stage (2), got %d", res.Stats.WeightFallbacks)
	}
	if len(res.CPIs) != 4 {
		t.Fatalf("got %d CPIs, want 4", len(res.CPIs))
	}
	want := referenceDetections(t, cfg.Params, s, 2)
	for k := 0; k < 2; k++ {
		if !sameDetections(res.CPIs[k].Detections, want[k]) {
			t.Errorf("CPI %d diverged from reference before the poisoned CPI", k)
		}
	}
}

func TestCancellationDrainsWorkers(t *testing.T) {
	// Cancelling a run mid-flight must unwind every stage and worker
	// goroutine promptly — no stage may stay blocked on a channel send.
	before := runtime.NumGoroutine()
	s := radar.SmallTestScenario()
	slow := &MemSource{Generate: func(seq uint64) (*cube.Cube, error) {
		time.Sleep(2 * time.Millisecond)
		return s.Generate(seq)
	}}
	cfg := testConfig()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond) // a few CPIs deep
		cancel()
	}()
	if _, err := Run(ctx, cfg, slow, 10000); err != nil {
		t.Fatalf("cancellation is a clean stop, not an error: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return // allow a little slack for runtime/test goroutines
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancellation: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStreamReportsStats(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Microsecond}
	cfg.Degrade = DegradeSkipCPI
	src := &stuckSource{inner: ScenarioSource(s), seq: 1}
	h, err := Stream(context.Background(), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for c := range h.Results {
		if c.Seq >= 4 {
			break
		}
	}
	res, err := h.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Drops < 1 || res.Stats.Retries < 1 {
		t.Errorf("stream summary missing resilience counters: %v", res.Stats)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	var p RetryPolicy
	if p.attempts() != 3 {
		t.Errorf("zero-value attempts = %d, want 3", p.attempts())
	}
	if d := p.backoff(1); d != 2*time.Millisecond {
		t.Errorf("first backoff = %v, want 2ms", d)
	}
	if d := p.backoff(2); d != 4*time.Millisecond {
		t.Errorf("second backoff = %v, want 4ms", d)
	}
	if d := p.backoff(30); d != 100*time.Millisecond {
		t.Errorf("late backoff = %v, want the 100ms cap", d)
	}
	q := RetryPolicy{MaxAttempts: 7, BaseBackoff: time.Second, MaxBackoff: 3 * time.Second}
	if q.attempts() != 7 {
		t.Errorf("attempts = %d, want 7", q.attempts())
	}
	if d := q.backoff(2); d != 2*time.Second {
		t.Errorf("backoff = %v, want 2s", d)
	}
	if d := q.backoff(5); d != 3*time.Second {
		t.Errorf("backoff = %v, want the 3s cap", d)
	}
}

func TestParseDegradePolicy(t *testing.T) {
	cases := map[string]DegradePolicy{
		"failfast": DegradeFailFast, "fail-fast": DegradeFailFast,
		"skip": DegradeSkipCPI, "skip-cpi": DegradeSkipCPI,
		"lastgood": DegradeLastGoodWeights, "last-good-weights": DegradeLastGoodWeights,
	}
	for s, want := range cases {
		got, err := ParseDegradePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseDegradePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseDegradePolicy("yolo"); err == nil {
		t.Error("unknown policy should fail to parse")
	}
	for _, p := range []DegradePolicy{DegradeFailFast, DegradeSkipCPI, DegradeLastGoodWeights, DegradePolicy(9)} {
		if p.String() == "" {
			t.Errorf("empty String() for %d", int(p))
		}
	}
}
