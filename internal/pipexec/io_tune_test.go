package pipexec

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/tune"
)

// slowStore writes the round-robin dataset to a striped store whose every
// read carries an injected latency — the I/O-bound regime where prefetch
// depth, not compute workers, decides throughput.
func slowStore(t *testing.T, s *radar.Scenario, delay time.Duration) (*pfs.RealFS, *FileSource) {
	t.Helper()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radar.WriteDataset(fs, s, radar.DefaultFileCount, radar.DefaultFileCount, false); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(&pfs.FaultPlan{Seed: 1, SlowRate: 1, SlowDelay: delay})
	src, err := NewFileSource(fs, s.Dims, radar.DefaultFileCount)
	if err != nil {
		t.Fatal(err)
	}
	return fs, src
}

// TestAutoTuneGrowsReadaheadOnSlowStore is the tentpole's end-to-end
// check: against a slow store, an autotuned run starting from a cold
// ReadAhead=1, DecodeWorkers=1 frontend must measure the read path as the
// bottleneck, make at least one I/O rebalance decision (growing the
// prefetch window out of the shared budget), and still deliver detections
// byte-identical to an untuned run off the same store.
func TestAutoTuneGrowsReadaheadOnSlowStore(t *testing.T) {
	s := radar.SmallTestScenario()
	_, src := slowStore(t, s, 3*time.Millisecond)
	cfg := testConfig()
	cfg.SeparateIO = true
	cfg.ReadAhead = 1
	cfg.DecodeWorkers = 1
	const n = 48

	base, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}

	cfg.AutoTune = &tune.Config{Budget: 12, Interval: 2, Warmup: 2, Hysteresis: -1}
	res, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}

	// The solve spans nine slots: seven compute stages plus the frontend.
	names := res.Stats.TuneStages
	if len(names) != numTunable+2 {
		t.Fatalf("TuneStages = %v, want %d compute + 2 I/O slots", names, numTunable)
	}
	if names[numTunable] != "src read" || names[numTunable+1] != "src decode" {
		t.Fatalf("I/O slots missing from the solve: %v", names)
	}

	// At least one applied decision must have moved an I/O knob.
	ioRebalances := 0
	for _, d := range res.Stats.TuneDecisions {
		if !d.Applied {
			continue
		}
		for i := numTunable; i < len(d.New); i++ {
			if d.New[i] != d.Old[i] {
				ioRebalances++
				break
			}
		}
	}
	if ioRebalances == 0 {
		t.Errorf("slow store never triggered an I/O rebalance; trace: %+v", res.Stats.TuneDecisions)
	}
	if res.Stats.FinalReadAhead <= 1 {
		t.Errorf("tuner left the readahead window at %d against a 3ms store", res.Stats.FinalReadAhead)
	}

	// The budget is conserved across compute and I/O slots.
	sum := 0
	for _, w := range res.Stats.TuneFinalSplit {
		sum += w
	}
	if sum != 12 {
		t.Errorf("final split %v spends %d slots, budget 12", res.Stats.TuneFinalSplit, sum)
	}

	// Rebalancing the frontend is correctness-neutral.
	if len(res.CPIs) != n {
		t.Fatalf("got %d CPIs, want %d", len(res.CPIs), n)
	}
	for k := range res.CPIs {
		if !sameDetections(res.CPIs[k].Detections, base.CPIs[k].Detections) {
			t.Errorf("CPI %d: autotuned I/O run diverged from the untuned baseline", k)
		}
	}
}

// TestSourceStallObservability: a shallow window against a slow store
// stalls the pipeline on nearly every CPI and the counters must say so; a
// deep window hides the same latency and the occupancy gauge must show
// the landed prefetches.
func TestSourceStallObservability(t *testing.T) {
	s := radar.SmallTestScenario()
	_, src := slowStore(t, s, 2*time.Millisecond)
	cfg := testConfig()
	cfg.SeparateIO = true
	cfg.ReadAhead = 1
	const n = 24

	shallow, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Stats.SourceStalls < n/2 {
		t.Errorf("depth-1 window against a slow store stalled only %d of %d CPIs", shallow.Stats.SourceStalls, n)
	}
	if shallow.Stats.SourceStall <= 0 {
		t.Error("stalled run reports zero source-stall time")
	}
	if shallow.Stats.FinalReadAhead != 1 || shallow.Stats.FinalDecodeWorkers != 1 {
		t.Errorf("untuned run must end on its configured knobs, got readahead=%d decode=%d",
			shallow.Stats.FinalReadAhead, shallow.Stats.FinalDecodeWorkers)
	}

	// The frontend clocks surface through StageTimes like compute stages.
	found := map[string]int64{}
	for _, st := range shallow.Stats.StageTimes {
		found[st.Name] = st.CPIs
	}
	if found["src read"] < int64(n) || found["src decode"] < int64(n) {
		t.Errorf("frontend stage clocks missing or undercounting: %v", found)
	}

	cfg.ReadAhead = 8
	deep, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Stats.SourceStalls > shallow.Stats.SourceStalls {
		t.Errorf("depth-8 window stalled more (%d) than depth-1 (%d)",
			deep.Stats.SourceStalls, shallow.Stats.SourceStalls)
	}
	if deep.Stats.ReadaheadReady <= shallow.Stats.ReadaheadReady {
		t.Errorf("deep-window occupancy %.2f not above shallow %.2f",
			deep.Stats.ReadaheadReady, shallow.Stats.ReadaheadReady)
	}
}

// TestRandomIOKnobScheduleDeterminism extends the rebalance-determinism
// guarantee to the I/O knobs: arbitrary live readahead-depth and
// decode-worker swaps (the seam slots after the compute stages) must never
// reorder CPIs or change a detection.
func TestRandomIOKnobScheduleDeterminism(t *testing.T) {
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radar.WriteDataset(fs, s, radar.DefaultFileCount, radar.DefaultFileCount, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, radar.DefaultFileCount)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.SeparateIO = true
	const n = 16

	base, err := Run(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		vcfg := cfg
		rng := rand.New(rand.NewSource(seed))
		vcfg.testOnCPI = func(cpi int, set func(stage, workers int)) {
			set(numTunable, 1+rng.Intn(6))   // readahead depth
			set(numTunable+1, 1+rng.Intn(4)) // decode workers
		}
		res, err := Run(context.Background(), vcfg, src, n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.CPIs) != n {
			t.Fatalf("seed %d: %d CPIs, want %d", seed, len(res.CPIs), n)
		}
		for k := range res.CPIs {
			if res.CPIs[k].Seq != base.CPIs[k].Seq {
				t.Fatalf("seed %d: CPI order diverged at %d", seed, k)
			}
			if !sameDetections(res.CPIs[k].Detections, base.CPIs[k].Detections) {
				t.Errorf("seed %d CPI %d: detections diverged under I/O knob schedule", seed, k)
			}
		}
	}
}
