package pipexec

import (
	"context"
	"errors"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/membudget"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

// scenarioBandSource adapts a generator scenario to BandedSource: the full
// cube is built once per CPI and bands are copied out of it.
func scenarioBandSource(t *testing.T, s *radar.Scenario) BandedSource {
	t.Helper()
	var (
		seq  = ^uint64(0)
		full *cube.Cube
	)
	return FuncBandSource(func(k uint64, lo, hi int, dst *cube.Cube) error {
		if k != seq {
			cb, err := s.Generate(k)
			if err != nil {
				return err
			}
			full, seq = cb, k
		}
		return stap.CopyBand(dst, full, lo)
	})
}

// TestRunBandedMatchesReference: the banded executor must reproduce the
// sequential chain's detections bit-exactly at every band size — including
// bands that do not divide the range extent — and with covariance
// smoothing on.
func TestRunBandedMatchesReference(t *testing.T) {
	s := radar.SmallTestScenario()
	for _, forgetting := range []float64{0, 0.6} {
		cfg := testConfig()
		cfg.Params.Forgetting = forgetting
		const n = 4
		want := referenceDetections(t, cfg.Params, s, n)
		for _, band := range []int{1, 7, 16, s.Dims.Ranges - 1, s.Dims.Ranges, 0} {
			cfg.BandRanges = band
			res, err := RunBanded(context.Background(), cfg, scenarioBandSource(t, s), n)
			if err != nil {
				t.Fatalf("band %d forgetting %v: %v", band, forgetting, err)
			}
			if len(res.CPIs) != n {
				t.Fatalf("band %d: %d CPIs, want %d", band, len(res.CPIs), n)
			}
			for k := range res.CPIs {
				if !sameDetections(res.CPIs[k].Detections, want[k]) {
					t.Errorf("band %d forgetting %v CPI %d: banded run diverges from reference",
						band, forgetting, k)
				}
			}
			if len(res.Stages) == 0 || res.Stages[0].Name != "band read" {
				t.Errorf("band %d: missing band-read stage accounting", band)
			}
		}
	}
}

// TestRunBandedFromFiles drives the whole out-of-core path: chunk-granular
// band reads from a striped v3 store through the banded chain, under a
// budget a full cube could never fit in, with byte-identical detections.
func TestRunBandedFromFiles(t *testing.T) {
	s := radar.SmallTestScenario()
	const n = 4
	// 256-byte chunks: each (channel, pulse) row spans two chunks, so band
	// reads genuinely subset the file.
	_, src, _ := chunkedKeepStore(t, s, n, 256)
	cfg := testConfig()
	cfg.BandRanges = 16
	want := referenceDetections(t, cfg.Params, s, n)

	budgetBytes := BandedMinResidency(&cfg.Params, cfg.BandRanges)
	if full := MinResidency(&cfg.Params); budgetBytes >= full {
		t.Fatalf("banded working set %d is not smaller than full residency %d; the mode is pointless", budgetBytes, full)
	}
	cfg.MemBudget = membudget.New("test", budgetBytes)
	res, err := RunBanded(context.Background(), cfg, src, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.CPIs {
		if !sameDetections(res.CPIs[k].Detections, want[k]) {
			t.Errorf("CPI %d: file-banded run diverges from reference", k)
		}
	}
	if res.Stats.MemHighWater > budgetBytes {
		t.Errorf("high water %d exceeds budget %d", res.Stats.MemHighWater, budgetBytes)
	}
	if res.Stats.MemLimit != budgetBytes {
		t.Errorf("reported limit %d, want %d", res.Stats.MemLimit, budgetBytes)
	}
}

// TestReadBandMatchesCube pins FileSource.ReadBand sample-for-sample
// against the staged cubes, across band positions, sizes, and chunk
// geometries (bands inside one chunk, spanning chunks, and chunk-aligned).
func TestReadBandMatchesCube(t *testing.T) {
	s := radar.SmallTestScenario()
	const files = 3
	for _, chunkSize := range []int{256, 1024, cube.DefaultChunkSize} {
		_, src, kept := chunkedKeepStore(t, s, files, chunkSize)
		d := s.Dims
		for _, band := range [][2]int{{0, 1}, {0, d.Ranges}, {5, 12}, {31, 33}, {d.Ranges - 1, d.Ranges}} {
			lo, hi := band[0], band[1]
			dst := cube.New(cube.Dims{Channels: d.Channels, Pulses: d.Pulses, Ranges: hi - lo})
			for seq := 0; seq < files; seq++ {
				if err := src.ReadBand(uint64(seq), lo, hi, dst); err != nil {
					t.Fatalf("chunk %d band [%d,%d) seq %d: %v", chunkSize, lo, hi, seq, err)
				}
				full := kept[seq]
				for row := 0; row < d.Channels*d.Pulses; row++ {
					for r := lo; r < hi; r++ {
						if got, want := dst.Data[row*(hi-lo)+(r-lo)], full.Data[row*d.Ranges+r]; got != want {
							t.Fatalf("chunk %d band [%d,%d) seq %d row %d range %d: got %v want %v",
								chunkSize, lo, hi, seq, row, r, got, want)
						}
					}
				}
			}
		}
	}
}

// TestReadBandRejectsFlatFiles: banded reads need per-chunk CRCs; a flat
// (v2) store must be refused with a re-staging hint, not silently
// misdecoded.
func TestReadBandRejectsFlatFiles(t *testing.T) {
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 2, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radar.WriteDatasetFlat(fs, s, 2, 2, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := cube.New(cube.Dims{Channels: s.Dims.Channels, Pulses: s.Dims.Pulses, Ranges: 4})
	if err := src.ReadBand(0, 0, 4, dst); err == nil {
		t.Fatal("flat-file band read succeeded; it must demand the chunked format")
	}
}

// TestRunBandedBudgetTooSmall pins the banded mode's own admissibility
// check and its error type.
func TestRunBandedBudgetTooSmall(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.BandRanges = 8
	cfg.MemBudget = membudget.New("tiny", BandedMinResidency(&cfg.Params, 8)-1)
	_, err := RunBanded(context.Background(), cfg, scenarioBandSource(t, s), 1)
	if !errors.Is(err, membudget.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}
