package pipexec

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

func TestReportCodecRoundTrip(t *testing.T) {
	dets := []stap.Detection{
		{Seq: 9, Beam: 1, Bin: 20, Range: 300, Power: 123.5, Threshold: 40.25},
		{Seq: 9, Beam: 2, Bin: 5, Range: 10, Power: 1e-3, Threshold: 1e-4},
	}
	buf := EncodeReports(9, dets)
	seq, got, err := DecodeReports(buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Errorf("seq = %d, want 9", seq)
	}
	if len(got) != len(dets) {
		t.Fatalf("decoded %d, want %d", len(got), len(dets))
	}
	for i := range dets {
		if got[i] != dets[i] {
			t.Errorf("det %d: %+v != %+v", i, got[i], dets[i])
		}
	}
	// Empty report files are valid.
	seq, got, err = DecodeReports(EncodeReports(4, nil))
	if err != nil || seq != 4 || len(got) != 0 {
		t.Errorf("empty roundtrip: seq=%d dets=%d err=%v", seq, len(got), err)
	}
}

func TestReportCodecProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 50
		dets := make([]stap.Detection, n)
		for i := range dets {
			dets[i] = stap.Detection{
				Seq:       uint64(seed),
				Beam:      rng.Intn(8),
				Bin:       rng.Intn(256),
				Range:     rng.Intn(4096),
				Power:     rng.ExpFloat64() * 100,
				Threshold: rng.ExpFloat64() * 10,
			}
		}
		seq, got, err := DecodeReports(EncodeReports(uint64(seed), dets))
		if err != nil || seq != uint64(seed) || len(got) != n {
			return false
		}
		for i := range dets {
			if got[i] != dets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReportCodecErrors(t *testing.T) {
	if _, _, err := DecodeReports(nil); err == nil {
		t.Error("nil buffer should error")
	}
	buf := EncodeReports(1, nil)
	buf[0] = 'X'
	if _, _, err := DecodeReports(buf); err == nil {
		t.Error("bad magic should error")
	}
	buf = EncodeReports(1, nil)
	buf[4] = 99
	if _, _, err := DecodeReports(buf); err == nil {
		t.Error("bad version should error")
	}
	buf = EncodeReports(1, []stap.Detection{{Beam: 1}})
	if _, _, err := DecodeReports(buf[:len(buf)-4]); err == nil {
		t.Error("truncated records should error")
	}
}

func TestFileReportSinkEndToEnd(t *testing.T) {
	// Run the pipeline with a striped report sink; read the files back
	// and compare against the in-memory results.
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	sink := &FileReportSink{Store: fs}
	cfg := testConfig()
	cfg.Reports = sink
	const n = 4
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Written() != n {
		t.Fatalf("sink wrote %d files, want %d", sink.Written(), n)
	}
	for _, c := range res.CPIs {
		name := ReportFileName(c.Seq)
		size, err := fs.FileSize(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		buf := make([]byte, size)
		if err := fs.ReadAt(name, 0, buf); err != nil {
			t.Fatal(err)
		}
		seq, dets, err := DecodeReports(buf)
		if err != nil {
			t.Fatal(err)
		}
		if seq != c.Seq {
			t.Errorf("file %s holds seq %d", name, seq)
		}
		if !sameDetections(dets, c.Detections) {
			t.Errorf("CPI %d: persisted reports differ from in-memory results", c.Seq)
		}
	}
}

type failingSink struct{ err error }

func (s failingSink) WriteReports(uint64, []stap.Detection) error { return s.err }

func TestReportSinkErrorPropagates(t *testing.T) {
	cfg := testConfig()
	boom := errors.New("report disk full")
	cfg.Reports = failingSink{err: boom}
	_, err := Run(context.Background(), cfg, ScenarioSource(radar.SmallTestScenario()), 3)
	if !errors.Is(err, boom) {
		t.Errorf("expected sink error, got %v", err)
	}
}

func TestReportSinkWithCombinedStage(t *testing.T) {
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 2, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	sink := &FileReportSink{Store: fs}
	cfg := testConfig()
	cfg.Reports = sink
	cfg.CombinePCCFAR = true
	if _, err := Run(context.Background(), cfg, ScenarioSource(s), 3); err != nil {
		t.Fatal(err)
	}
	if sink.Written() != 3 {
		t.Errorf("combined stage wrote %d report files, want 3", sink.Written())
	}
}
