package pipexec

import (
	"context"
	"testing"

	"stapio/internal/pfs"
	"stapio/internal/radar"
)

// The pools must turn per-CPI allocation of the big intermediates — read
// buffers, decoded cubes, Doppler cubes, beam cubes — into steady-state
// reuse: the number of buffers ever built ("news") is bounded by how many
// CPIs the pipeline holds in flight, not by how many it processes. Run far
// more CPIs than the pipeline depth and pin that bound.
func TestPoolsBoundedByPipelineDepth(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items deliberately under the race detector; the news bound holds only without it")
	}
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	const files = 4
	if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Buffer = 2

	const cpis = 64
	h, err := Stream(context.Background(), cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cpis; i++ {
		if _, ok := <-h.Results; !ok {
			t.Fatal("results channel closed early")
		}
	}
	if _, err := h.Stop(); err != nil {
		t.Fatal(err)
	}

	// The in-flight bound: every channel slot plus every stage actively
	// holding a CPI. With Buffer=2 that is well under 20; the point is
	// that it does not scale with the 64 CPIs completed.
	const bound = 20
	doppler := h.r.pools.dopplerNews.Load()
	beam := h.r.pools.beamNews.Load()
	bufs, cubes := src.PoolNews()
	for _, c := range []struct {
		name string
		news int64
	}{
		{"doppler cubes", doppler},
		{"beam cubes", beam},
		{"read buffers", bufs},
		{"decoded cubes", cubes},
	} {
		if c.news < 1 {
			t.Errorf("%s: pool never allocated, expected at least one", c.name)
		}
		if c.news > bound {
			t.Errorf("%s: %d allocated over %d CPIs, want <= %d (per-CPI allocation has crept back in)",
				c.name, c.news, cpis, bound)
		}
	}
}

// Dropped CPIs must recycle their read buffers rather than leak them: under
// a skip policy with injected read faults, buffer news stays bounded even
// though many reads fail and retry.
// A source's pools outlive one Run: a service restarting its pipeline over
// the same source must neither re-allocate the working set per restart nor
// hand one pooled cube to two runs at once. The news bound pins the first;
// identical detections across restarts pin the second — a double-returned
// cube would be overwritten mid-flight and change what CFAR sees.
func TestPoolsBoundedAcrossBackToBackRuns(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items deliberately under the race detector; the news bound holds only without it")
	}
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	const files = 4
	if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(fs, s.Dims, files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Buffer = 2

	const rounds, cpis = 6, 8
	var first []CPIResult
	for round := 0; round < rounds; round++ {
		res, err := Run(context.Background(), cfg, src, cpis)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(res.CPIs) != cpis {
			t.Fatalf("round %d: %d CPIs, want %d", round, len(res.CPIs), cpis)
		}
		if round == 0 {
			first = res.CPIs
			continue
		}
		for i := range res.CPIs {
			if !sameDetections(res.CPIs[i].Detections, first[i].Detections) {
				t.Errorf("round %d CPI %d: detections diverge from round 0 (pooled cube shared across runs?)",
					round, i)
			}
		}
	}
	bufs, cubes := src.PoolNews()
	// The bound covers one run's in-flight depth, not rounds * depth.
	const bound = 20
	if bufs > bound || cubes > bound {
		t.Errorf("source pools: %d buffers, %d cubes allocated over %d back-to-back runs, want <= %d each",
			bufs, cubes, rounds, bound)
	}
}

func TestPoolsRecycleOnDrops(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items deliberately under the race detector; the news bound holds only without it")
	}
	s := radar.SmallTestScenario()
	fs, err := pfs.CreateReal(t.TempDir(), 4, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	const files = 4
	if _, err := radar.WriteDataset(fs, s, files, files, false); err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(&pfs.FaultPlan{Seed: 7, FailRate: 0.3})
	src, err := NewFileSource(fs, s.Dims, files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Degrade = DegradeSkipCPI
	cfg.Retry = RetryPolicy{MaxAttempts: 2}

	const cpis = 48
	res, err := Run(context.Background(), cfg, src, cpis)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("fault plan injected no retries; the test exercises nothing")
	}
	bufs, _ := src.PoolNews()
	// Every attempt (first tries and retries) leases a buffer and must give
	// it back when the read resolves; the news count is therefore bounded
	// by concurrent reads, not by the attempt count.
	const bound = 20
	if bufs > bound {
		t.Errorf("read buffers: %d allocated across %d CPIs with faults, want <= %d (drop/retry paths leak buffers)",
			bufs, cpis, bound)
	}
}
