package pipexec

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/tune"
)

func TestParallelEdgeCases(t *testing.T) {
	// n == 0: fn must not run at all (no empty-block call).
	called := false
	if err := parallel(4, 0, func(widx int, blk cube.Block) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("parallel(4, 0) invoked fn")
	}

	// w > n: truncated to n workers, every item covered exactly once, no
	// empty blocks, and every widx < the truncated count.
	var mu sync.Mutex
	seen := make(map[int]int)
	if err := parallel(10, 3, func(widx int, blk cube.Block) error {
		if widx >= 3 {
			t.Errorf("widx %d with only 3 items", widx)
		}
		if blk.Len() == 0 {
			t.Error("empty block handed to a worker")
		}
		mu.Lock()
		for i := blk.Lo; i < blk.Hi; i++ {
			seen[i]++
		}
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Errorf("item %d covered %d times", i, seen[i])
		}
	}

	// w <= 0 degrades to serial, still covering everything once.
	total := 0
	if err := parallel(0, 5, func(widx int, blk cube.Block) error {
		total += blk.Len()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("parallel(0, 5) covered %d items", total)
	}
}

// testLoad skews the hard-weight stage hard enough that the balanced split
// must move workers there, while keeping the test fast. The injected load
// must dominate the stages' real compute (Doppler's FFTs are the largest)
// with margin: measured service times on a contended CI core are noisy,
// and the tuner's ranking has to survive that noise.
func testLoad() StageLoad {
	return StageLoad{
		Doppler:    20 * time.Microsecond,
		HardWeight: 2 * time.Millisecond,
		PulseComp:  2 * time.Microsecond,
	}
}

func TestAutoTuneMatchesReference(t *testing.T) {
	// Rebalancing must be correctness-neutral: an autotuned run under a
	// skewed injected load produces exactly the reference chain's
	// detections, and the tuner must actually have rebalanced.
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.AutoTune = &tune.Config{Interval: 2, Warmup: 2, Hysteresis: -1}
	cfg.StageLoad = testLoad()
	const n = 24
	want := referenceDetections(t, cfg.Params, s, n)
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CPIs) != n {
		t.Fatalf("got %d CPI results, want %d", len(res.CPIs), n)
	}
	for k, c := range res.CPIs {
		if !sameDetections(c.Detections, want[k]) {
			t.Errorf("CPI %d: autotuned run diverged from the reference chain", k)
		}
	}
	applied := 0
	for _, d := range res.Stats.TuneDecisions {
		if d.Applied {
			applied++
		}
	}
	if applied == 0 {
		t.Fatalf("no rebalance applied under a skewed load; trace: %+v", res.Stats.TuneDecisions)
	}
	if len(res.Stats.TuneStages) != 7 {
		t.Errorf("TuneStages = %v, want 7 stages", res.Stats.TuneStages)
	}
}

func TestAutoTuneConvergesOnSkew(t *testing.T) {
	// From a cold even split the tuner must shift workers toward the
	// loaded hard-weight stage while conserving the budget.
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.AutoTune = &tune.Config{Budget: 14, Interval: 2, Warmup: 2, Hysteresis: -1}
	cfg.StageLoad = testLoad()
	res, err := Run(context.Background(), cfg, ScenarioSource(s), 30)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Stats.TuneFinalSplit
	if len(final) != 7 {
		t.Fatalf("final split %v, want 7 stages", final)
	}
	sum := 0
	for i, w := range final {
		sum += w
		if w < 1 {
			t.Errorf("stage %s ended with %d workers", res.Stats.TuneStages[i], w)
		}
	}
	if sum != 14 {
		t.Errorf("final split %v spends %d workers, budget 14", final, sum)
	}
	// Slot 2 is the hard-weight stage (dominant injected load): it must
	// have gained over the even split's 2.
	if final[2] <= 2 {
		t.Errorf("hard weight kept %d workers despite dominating; split %v", final[2], final)
	}
}

func TestRandomRebalanceScheduleDeterminism(t *testing.T) {
	// A worker-count swap between CPIs must never re-partition a block
	// mid-CPI or skip rows: under arbitrary random swap schedules the
	// detections stay byte-identical to the reference chain.
	s := radar.SmallTestScenario()
	base := testConfig()
	const n = 12
	want := referenceDetections(t, base.Params, s, n)
	for _, combine := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := base
			cfg.CombinePCCFAR = combine
			rng := rand.New(rand.NewSource(seed))
			stages := 7
			if combine {
				stages = 6
			}
			cfg.testOnCPI = func(cpi int, set func(stage, workers int)) {
				set(rng.Intn(stages), 1+rng.Intn(4))
			}
			res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
			if err != nil {
				t.Fatalf("combine=%v seed %d: %v", combine, seed, err)
			}
			if len(res.CPIs) != n {
				t.Fatalf("combine=%v seed %d: %d CPIs, want %d", combine, seed, len(res.CPIs), n)
			}
			for k, c := range res.CPIs {
				if !sameDetections(c.Detections, want[k]) {
					t.Errorf("combine=%v seed %d CPI %d: detections diverged under rebalance schedule", combine, seed, k)
				}
			}
		}
	}
}

func TestStageTimeStats(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testConfig()
	const n = 6
	res, err := Run(context.Background(), cfg, ScenarioSource(s), n)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats.StageTimes
	if len(st) != 8 {
		t.Fatalf("got %d stage histograms, want 8", len(st))
	}
	for _, h := range st {
		if h.CPIs != n {
			t.Errorf("stage %s histogram has %d CPIs, want %d", h.Name, h.CPIs, n)
		}
		if h.P50 <= 0 || h.P90 <= 0 || h.Max <= 0 {
			t.Errorf("stage %s has non-positive quantiles: %+v", h.Name, h)
		}
		if h.P50 > h.P90 || h.P90 > h.Max {
			t.Errorf("stage %s quantiles not monotone: %+v", h.Name, h)
		}
	}
}

func TestAutoTuneBudgetColdStart(t *testing.T) {
	// AutoTune.Budget overrides Workers with the even split; too small a
	// budget must fail before the pipeline starts.
	s := radar.SmallTestScenario()
	cfg := testConfig()
	cfg.Workers.Doppler = 1 // ignored once Budget is set
	cfg.AutoTune = &tune.Config{Budget: 14, Interval: 4}
	res, err := Run(context.Background(), cfg, ScenarioSource(s), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 CPIs = the warmup window exactly: the trace records the warmup
	// baseline (a no-op entry, so quiet runs stay explainable) and nothing
	// else — no measured decision can have fired.
	for _, d := range res.Stats.TuneDecisions {
		if d.Applied || d.Reason != tune.ReasonWarmup {
			t.Errorf("unexpected decision before any window closed: %+v", d)
		}
	}
	cfg.AutoTune = &tune.Config{Budget: 3}
	if _, err := Run(context.Background(), cfg, ScenarioSource(s), 4); err == nil {
		t.Error("budget 3 over 7 tasks should fail validation")
	}
}

func TestDurHistQuantiles(t *testing.T) {
	var h durHist
	for i := 0; i < 90; i++ {
		h.record(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.record(10 * time.Millisecond)
	}
	p50, p90, max := h.quantile(0.5), h.quantile(0.9), time.Duration(h.max.Load())
	if max != 10*time.Millisecond {
		t.Errorf("max = %v", max)
	}
	// Log-bucket estimates are upper bounds within 2x of the true value.
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Errorf("p50 = %v, want within [100us, 200us]", p50)
	}
	if p90 < 100*time.Microsecond || p90 > 20*time.Millisecond {
		t.Errorf("p90 = %v out of range", p90)
	}
	if h.quantile(0.999) != max {
		t.Errorf("tail quantile %v should clamp to max %v", h.quantile(0.999), max)
	}
	var empty durHist
	if empty.quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}
