//go:build !race

package pipexec

const raceEnabled = false
