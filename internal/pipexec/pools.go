package pipexec

import (
	"sync"
	"sync/atomic"

	"stapio/internal/cube"
	"stapio/internal/stap"
)

// dopplerConsumers is the number of stages a Doppler cube fans out to: the
// easy and hard weight stages plus the easy and hard beamforming stages.
// Each releases its reference when done reading; the last release returns
// the cube to the pool for the next CPI.
const dopplerConsumers = 4

// dopplerHandle pairs a pooled DopplerCube with the count of downstream
// stages still reading it. The handle is pooled together with its cube so
// the refcount itself costs no per-CPI allocation.
type dopplerHandle struct {
	dc   *stap.DopplerCube
	refs atomic.Int32
}

// pipePools recycles the large per-CPI intermediates of one pipeline run —
// Doppler cubes and beam cubes — so steady-state CPIs reuse the buffers of
// CPIs that already drained instead of allocating fresh ones. Both cube
// kinds are fully overwritten by their producing stage (the union of range
// blocks covers every gate; easy and hard bins together cover every bin),
// so recycled buffers need no zeroing.
//
// The news counters record how many buffers were ever built; with hand-back
// working they are bounded by the pipeline depth, not the CPI count, which
// the pool regression test pins.
type pipePools struct {
	doppler sync.Pool // *dopplerHandle
	beam    sync.Pool // *stap.BeamCube

	dopplerNews atomic.Int64
	beamNews    atomic.Int64
}

func newPipePools(p *stap.Params) *pipePools {
	pl := &pipePools{}
	pl.doppler.New = func() any {
		pl.dopplerNews.Add(1)
		return &dopplerHandle{dc: stap.NewDopplerCube(p)}
	}
	pl.beam.New = func() any {
		pl.beamNews.Add(1)
		return stap.NewBeamCube(p)
	}
	return pl
}

// getDoppler leases a Doppler cube for one CPI with its fan-out references
// armed.
func (pl *pipePools) getDoppler(seq uint64) *dopplerHandle {
	h := pl.doppler.Get().(*dopplerHandle)
	h.dc.Seq = seq
	h.refs.Store(dopplerConsumers)
	return h
}

// releaseDoppler drops one stage's reference; the last consumer's release
// recycles the cube and reports true so the caller can retire the cube's
// budget charge. Error and cancellation paths may skip releasing — the
// run is dying and the garbage collector reclaims the cube.
func (pl *pipePools) releaseDoppler(h *dopplerHandle) bool {
	if h.refs.Add(-1) == 0 {
		pl.doppler.Put(h)
		return true
	}
	return false
}

func (pl *pipePools) getBeam(seq uint64) *stap.BeamCube {
	bc := pl.beam.Get().(*stap.BeamCube)
	bc.Seq = seq
	return bc
}

// putBeam recycles a beam cube once CFAR has extracted its detections.
func (pl *pipePools) putBeam(bc *stap.BeamCube) {
	pl.beam.Put(bc)
}

// recycleCube hands an input cube back to its source as soon as Doppler
// filtering has consumed it. Recycle is part of the CubeSource contract;
// pool-less sources implement it as a no-op and leave the cube to the
// garbage collector.
func (r *runner) recycleCube(cb *cube.Cube) {
	r.src.Recycle(cb)
}
