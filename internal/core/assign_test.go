package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stapio/internal/machine"
	"stapio/internal/pfs"
)

func TestOptimizeAssignmentBeatsProportional(t *testing.T) {
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50
	opt, optAn, err := OptimizeAssignment(p, prof, fsCfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Total() > budget {
		t.Fatalf("optimizer used %d nodes, budget %d", opt.Total(), budget)
	}
	prop, err := ProportionalAssignment(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	propPipe, err := p.Apply(prop)
	if err != nil {
		t.Fatal(err)
	}
	propAn, err := Analyze(propPipe, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if optAn.Throughput < propAn.Throughput*0.999 {
		t.Errorf("optimizer %.3f CPIs/s below proportional %.3f", optAn.Throughput, propAn.Throughput)
	}
	// And it beats the paper-style hand assignment too, or at least ties.
	handAn, err := Analyze(p, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if optAn.Throughput < handAn.Throughput*0.999 {
		t.Errorf("optimizer %.3f CPIs/s below hand assignment %.3f", optAn.Throughput, handAn.Throughput)
	}
	t.Logf("hand %.3f, proportional %.3f, optimized %.3f CPIs/s (assignment %v)",
		handAn.Throughput, propAn.Throughput, optAn.Throughput, opt)
}

func TestOptimizeAssignmentStopsWhenIOBound(t *testing.T) {
	// On a tiny stripe factor the Doppler task becomes read-bound: at some
	// point extra nodes buy nothing and the optimizer must stop early
	// rather than burn the budget.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(2)
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	a, an, err := OptimizeAssignment(p, prof, fsCfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() >= 5000 {
		t.Errorf("optimizer burned the whole huge budget (%d nodes) despite the I/O wall", a.Total())
	}
	// Throughput is pinned at the read time.
	readBound := 1 / fsCfg.EstimateReadTime(0, int64(p.Tasks[0].ReadBytes))
	if an.Throughput > readBound*1.01 {
		t.Errorf("throughput %.3f exceeds the read bound %.3f", an.Throughput, readBound)
	}
}

func TestOptimizerSpendsLeftoverNodesOnLatency(t *testing.T) {
	// When throughput hits an I/O wall, the optimizer should still use
	// some of the remaining budget to reduce latency — and never trade
	// throughput away for it.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(4) // read-bound quickly
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	aSmall, anSmall, err := OptimizeAssignment(p, prof, fsCfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	aBig, anBig, err := OptimizeAssignment(p, prof, fsCfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if anBig.Throughput < anSmall.Throughput*(1-1e-9) {
		t.Errorf("bigger budget lowered throughput: %.3f -> %.3f", anSmall.Throughput, anBig.Throughput)
	}
	if anBig.Latency >= anSmall.Latency {
		t.Errorf("leftover nodes did not improve latency: %.3f -> %.3f", anSmall.Latency, anBig.Latency)
	}
	if aBig.Total() <= aSmall.Total() {
		t.Errorf("bigger budget used no more nodes: %d vs %d", aBig.Total(), aSmall.Total())
	}
}

func TestOptimizeAssignmentProperty(t *testing.T) {
	// For random linear pipelines, the optimizer's bottleneck service is
	// never worse than a proportional split of the same budget.
	prof := machine.Paragon()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := rng.Intn(5) + 2
		tasks := make([]Task, nTasks)
		for i := range tasks {
			tasks[i] = Task{
				Name:  string(rune('a' + i)),
				Nodes: 1,
				Flops: float64(rng.Intn(900)+100) * 1e6,
			}
			if i > 0 {
				tasks[i].Deps = []Dep{{From: i - 1, Bytes: float64(rng.Intn(1 << 20))}}
			}
		}
		p := &Pipeline{Name: "rand", Tasks: tasks}
		budget := nTasks + rng.Intn(60)
		opt, optAn, err := OptimizeAssignment(p, prof, pfs.Config{}, budget)
		if err != nil {
			return false
		}
		if opt.Total() > budget {
			return false
		}
		prop, err := ProportionalAssignment(p, budget)
		if err != nil {
			return false
		}
		pp, err := p.Apply(prop)
		if err != nil {
			return false
		}
		propAn, err := Analyze(pp, prof, pfs.Config{})
		if err != nil {
			return false
		}
		return optAn.Throughput >= propAn.Throughput*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAssignmentErrors(t *testing.T) {
	prof := machine.Paragon()
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OptimizeAssignment(p, prof, pfs.ParagonPFS(16), 3); err == nil {
		t.Error("budget below task count should error")
	}
	if _, err := ProportionalAssignment(p, 3); err == nil {
		t.Error("proportional with tiny budget should error")
	}
	if _, err := p.Apply(Assignment{1, 2}); err == nil {
		t.Error("short assignment should error")
	}
	if _, err := p.Apply(make(Assignment, len(p.Tasks))); err == nil {
		t.Error("zero assignment should error")
	}
	bad := &Pipeline{Name: "bad"}
	if _, _, err := OptimizeAssignment(bad, prof, pfs.Config{}, 10); err == nil {
		t.Error("invalid pipeline should error")
	}
}

func TestProportionalAssignmentCoversBudget(t *testing.T) {
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{7, 20, 50, 200} {
		a, err := ProportionalAssignment(p, budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if a.Total() != budget {
			t.Errorf("budget %d: assignment uses %d", budget, a.Total())
		}
		for i, n := range a {
			if n < 1 {
				t.Errorf("budget %d: task %d got %d nodes", budget, i, n)
			}
		}
	}
}
