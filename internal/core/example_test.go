package core_test

import (
	"fmt"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/stap"
)

// Build the paper's embedded-I/O pipeline at the 50-node case and evaluate
// the analytic model (throughput = 1/max T_i, latency = the steady-state
// path sum).
func ExampleAnalyze() {
	params := stap.DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
	w := stap.ComputeWorkloads(&params)
	nodes := core.STAPNodes{
		Doppler: 16, EasyWeight: 2, HardWeight: 3,
		EasyBF: 8, HardBF: 4, PulseComp: 14, CFAR: 3,
	}
	p, err := core.BuildEmbedded(w, nodes)
	if err != nil {
		fmt.Println(err)
		return
	}
	a, err := core.Analyze(p, machine.Paragon(), pfs.ParagonPFS(64))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("throughput %.2f CPIs/s, latency %.3f s, bottleneck %s\n",
		a.Throughput, a.Latency, a.Timings[a.Bottleneck].Name)
	// Output:
	// throughput 2.72 CPIs/s, latency 0.820 s, bottleneck Doppler filter
}

// Task combination (paper Section 6): merge pulse compression and CFAR
// and observe the latency gain at unchanged throughput.
func ExamplePipeline_Merge() {
	params := stap.DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
	w := stap.ComputeWorkloads(&params)
	nodes := core.STAPNodes{
		Doppler: 16, EasyWeight: 2, HardWeight: 3,
		EasyBF: 8, HardBF: 4, PulseComp: 14, CFAR: 3,
	}
	p, _ := core.BuildEmbedded(w, nodes)
	m, err := core.CombinePCCFAR(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	before, _ := core.Analyze(p, machine.Paragon(), pfs.ParagonPFS(64))
	after, _ := core.Analyze(m, machine.Paragon(), pfs.ParagonPFS(64))
	fmt.Printf("%d -> %d tasks, latency %.3f -> %.3f s, throughput %.2f -> %.2f CPIs/s\n",
		len(p.Tasks), len(m.Tasks), before.Latency, after.Latency,
		before.Throughput, after.Throughput)
	// Output:
	// 7 -> 6 tasks, latency 0.820 -> 0.746 s, throughput 2.72 -> 2.72 CPIs/s
}
