// Package core implements the paper's parallel pipeline model: a directed
// acyclic graph of tasks, each parallelised over a set of compute nodes,
// connected by spatial (same-CPI) and temporal (lagged-CPI) data
// dependencies. It provides
//
//   - the pipeline description and its validation,
//   - the analytic performance equations (paper eqs. (1)-(4)):
//     throughput = 1 / max_i T_i and the steady-state latency recurrence
//     whose specialisation to the STAP graph is
//     latency = T_0 + max(T_3, T_4) + T_5 + T_6,
//   - the task-combination rewrite (Section 6) and its timing algebra
//     (eqs. (5)-(15)),
//   - the two I/O attachments: embedded (the first compute task reads from
//     the parallel file system) and separate (a dedicated I/O task heads
//     the pipeline).
//
// The model is executed two ways: internal/pipesim runs it on a
// discrete-event simulation of the machine, network, and parallel file
// system; internal/pipexec runs it for real with goroutine worker pools.
package core

import (
	"fmt"
)

// Dep is a data dependency of one task on another.
type Dep struct {
	// From is the producer task's index in Pipeline.Tasks.
	From int
	// Lag is the CPI distance: 0 means instance k consumes the producer's
	// output for CPI k (spatial dependency, drawn with solid arrows in the
	// paper); l >= 1 means instance k consumes the output for CPI k-l
	// (temporal dependency, dashed arrows). Temporal dependencies do not
	// contribute to latency.
	Lag int
	// Bytes is the per-CPI data volume transferred over this edge.
	Bytes float64
}

// Task is one stage of the pipeline.
type Task struct {
	// Name identifies the task in reports ("doppler", "easy weight", ...).
	Name string
	// Nodes is P_i, the number of compute nodes assigned to the task.
	Nodes int
	// Flops is W_i, the task's per-CPI computational workload.
	Flops float64
	// Deps are the task's input edges. Producers must precede the task in
	// Pipeline.Tasks (indices are topologically ordered).
	Deps []Dep
	// ReadBytes, when positive, is the per-CPI volume this task reads
	// from the parallel file system (the I/O attachment).
	ReadBytes float64
	// WriteBytes, when positive, is the per-CPI volume this task writes
	// to the parallel file system (e.g. the CFAR task persisting its
	// detection reports — the output-side I/O strategy studied in the
	// authors' companion work). Writes share the stripe servers with
	// reads.
	WriteBytes float64
	// Kernels is the number of processing kernels the task runs (>= 1; a
	// zero value is treated as 1). Task combination sums the constituents'
	// kernel counts: merging eliminates inter-task communication but not
	// the kernels themselves, so their fixed per-kernel overhead remains.
	Kernels int
}

// KernelCount returns Kernels, treating the zero value as 1.
func (t Task) KernelCount() int {
	if t.Kernels < 1 {
		return 1
	}
	return t.Kernels
}

// Spatial reports whether d is a same-CPI dependency.
func (d Dep) Spatial() bool { return d.Lag == 0 }

// Pipeline is the task graph. Tasks[0] is the head (the task whose service
// start begins the latency clock); the last task is the terminal whose
// completion ends it.
type Pipeline struct {
	Name  string
	Tasks []Task
}

// Validate checks structural invariants: at least one task, positive node
// counts, non-negative workloads, topologically ordered edges with
// non-negative lags, and exactly one head (task 0 has no spatial deps).
func (p *Pipeline) Validate() error {
	if len(p.Tasks) == 0 {
		return fmt.Errorf("core: pipeline %q has no tasks", p.Name)
	}
	for i, t := range p.Tasks {
		if t.Nodes < 1 {
			return fmt.Errorf("core: task %d (%s) has %d nodes", i, t.Name, t.Nodes)
		}
		if t.Flops < 0 || t.ReadBytes < 0 || t.WriteBytes < 0 {
			return fmt.Errorf("core: task %d (%s) has negative workload", i, t.Name)
		}
		for _, d := range t.Deps {
			if d.From < 0 || d.From >= len(p.Tasks) {
				return fmt.Errorf("core: task %d (%s) depends on missing task %d", i, t.Name, d.From)
			}
			if d.From >= i {
				return fmt.Errorf("core: task %d (%s) depends on %d: indices must be topologically ordered",
					i, t.Name, d.From)
			}
			if d.Lag < 0 {
				return fmt.Errorf("core: task %d (%s) has negative lag %d", i, t.Name, d.Lag)
			}
			if d.Bytes < 0 {
				return fmt.Errorf("core: task %d (%s) has negative edge volume", i, t.Name)
			}
		}
	}
	if len(p.Tasks[0].Deps) != 0 {
		return fmt.Errorf("core: head task %q must have no dependencies", p.Tasks[0].Name)
	}
	return nil
}

// TotalNodes returns the number of compute nodes allocated to the whole
// pipeline.
func (p *Pipeline) TotalNodes() int {
	var n int
	for _, t := range p.Tasks {
		n += t.Nodes
	}
	return n
}

// TaskIndex returns the index of the named task, or -1.
func (p *Pipeline) TaskIndex(name string) int {
	for i, t := range p.Tasks {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Consumers returns, for each task, the list of (consumer, dep) pairs fed
// by it.
func (p *Pipeline) Consumers(task int) []ConsumerEdge {
	var out []ConsumerEdge
	for j, t := range p.Tasks {
		for _, d := range t.Deps {
			if d.From == task {
				out = append(out, ConsumerEdge{To: j, Dep: d})
			}
		}
	}
	return out
}

// ConsumerEdge pairs a consumer task index with the dependency it holds on
// the producer.
type ConsumerEdge struct {
	To  int
	Dep Dep
}

// Clone returns a deep copy of the pipeline.
func (p *Pipeline) Clone() *Pipeline {
	out := &Pipeline{Name: p.Name, Tasks: make([]Task, len(p.Tasks))}
	for i, t := range p.Tasks {
		t.Deps = append([]Dep(nil), t.Deps...)
		out.Tasks[i] = t
	}
	return out
}
