package core

import (
	"fmt"
	"strings"
)

// Describe renders the pipeline structure as text — the programmatic form
// of the paper's Figures 2-4: every task with its node count and I/O
// attachments, and every edge with its kind (spatial or temporal) and
// per-CPI volume.
func (p *Pipeline) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d tasks, %d nodes\n", p.Name, len(p.Tasks), p.TotalNodes())
	for i, t := range p.Tasks {
		fmt.Fprintf(&b, "  [%d] %-18s P=%-4d W=%s", i, t.Name, t.Nodes, flops(t.Flops))
		if t.ReadBytes > 0 {
			fmt.Fprintf(&b, "  reads %s/CPI", bytes(t.ReadBytes))
		}
		if t.WriteBytes > 0 {
			fmt.Fprintf(&b, "  writes %s/CPI", bytes(t.WriteBytes))
		}
		if k := t.KernelCount(); k > 1 {
			fmt.Fprintf(&b, "  (%d kernels)", k)
		}
		b.WriteByte('\n')
		for _, d := range t.Deps {
			arrow := "<--"
			kind := "spatial"
			if !d.Spatial() {
				arrow = "<~~"
				kind = fmt.Sprintf("temporal lag %d", d.Lag)
			}
			fmt.Fprintf(&b, "        %s %s  (%s, %s/CPI)\n",
				arrow, p.Tasks[d.From].Name, kind, bytes(d.Bytes))
		}
	}
	return b.String()
}

// flops formats a floating-point operation count.
func flops(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.1fG", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.1fM", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.1fk", f/1e3)
	default:
		return fmt.Sprintf("%.0f", f)
	}
}

// bytes formats a byte volume.
func bytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}
