package core

import "fmt"

// Merge combines tasks i and j (i < j) into a single task running on the
// union of their nodes — the paper's task-combination transform (Section
// 6). The rules follow the paper:
//
//   - Only tasks connected by spatial dependencies may be combined (tasks
//     with temporal dependencies do not contribute to latency, so merging
//     them cannot help and is rejected).
//   - Every task strictly between i and j in the topological order must be
//     independent of both (no path through the merged pair), otherwise the
//     merged graph would not be topologically consistent.
//   - The merged task's workload is W_i + W_j on P_i + P_j nodes; the
//     internal i->j edge disappears (its communication cost is eliminated,
//     the paper's C_{5+6} < C_5 argument); all other edges are re-attached
//     to the merged task.
//
// Merge returns a new pipeline; the receiver is unchanged.
func (p *Pipeline) Merge(i, j int) (*Pipeline, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if i < 0 || j >= len(p.Tasks) || i >= j {
		return nil, fmt.Errorf("core: Merge(%d, %d) out of range or misordered", i, j)
	}
	// j must consume i spatially (directly); collect the internal edges.
	internal := false
	for _, d := range p.Tasks[j].Deps {
		if d.From == i {
			if !d.Spatial() {
				return nil, fmt.Errorf("core: cannot merge %q and %q across a temporal dependency",
					p.Tasks[i].Name, p.Tasks[j].Name)
			}
			internal = true
		}
	}
	if !internal {
		return nil, fmt.Errorf("core: %q does not directly consume %q", p.Tasks[j].Name, p.Tasks[i].Name)
	}
	// No task strictly between i and j may depend on i, and j may not
	// depend on any task strictly between them (that would create a path
	// i -> mid -> j that the merged node would collapse into a cycle-like
	// self-ordering problem).
	for mid := i + 1; mid < j; mid++ {
		for _, d := range p.Tasks[mid].Deps {
			if d.From == i {
				return nil, fmt.Errorf("core: task %q between the pair depends on %q",
					p.Tasks[mid].Name, p.Tasks[i].Name)
			}
		}
	}
	for _, d := range p.Tasks[j].Deps {
		if d.From > i && d.From < j {
			return nil, fmt.Errorf("core: %q depends on intermediate task %q",
				p.Tasks[j].Name, p.Tasks[d.From].Name)
		}
	}

	remap := func(old int) int {
		switch {
		case old == j:
			return i
		case old > j:
			return old - 1
		default:
			return old
		}
	}

	out := &Pipeline{Name: p.Name, Tasks: make([]Task, 0, len(p.Tasks)-1)}
	for k, t := range p.Tasks {
		if k == j {
			continue
		}
		nt := Task{
			Name:       t.Name,
			Nodes:      t.Nodes,
			Flops:      t.Flops,
			ReadBytes:  t.ReadBytes,
			WriteBytes: t.WriteBytes,
			Kernels:    t.KernelCount(),
		}
		if k == i {
			tj := p.Tasks[j]
			nt.Name = t.Name + "+" + tj.Name
			nt.Nodes += tj.Nodes
			nt.Flops += tj.Flops
			nt.ReadBytes += tj.ReadBytes
			nt.WriteBytes += tj.WriteBytes
			nt.Kernels += tj.KernelCount()
			// Deps: i's own plus j's external ones.
			for _, d := range t.Deps {
				d.From = remap(d.From)
				nt.Deps = append(nt.Deps, d)
			}
			for _, d := range tj.Deps {
				if d.From == i {
					continue // internal edge eliminated
				}
				d.From = remap(d.From)
				nt.Deps = append(nt.Deps, d)
			}
		} else {
			for _, d := range t.Deps {
				d.From = remap(d.From)
				nt.Deps = append(nt.Deps, d)
			}
		}
		out.Tasks = append(out.Tasks, nt)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: merged pipeline invalid: %w", err)
	}
	return out, nil
}

// MergePrediction applies the paper's Section 6 algebra to predict the
// merged task's time from the unmerged analysis: eq. (7),
// T_{i+j} = (W_i+W_j)/(P_i+P_j) + C_{i+j} + V_{i+j}, and the attendant
// inequalities T_{i+j} < T_i + T_j (eq. (11)) and throughput' >=
// throughput (eq. (14)).
type MergePrediction struct {
	// MergedService is the predicted service time of the combined task.
	MergedService float64
	// SeparateSum is T_i + T_j before merging.
	SeparateSum float64
	// LatencyGain is the predicted latency improvement (positive when the
	// merge helps).
	LatencyGain float64
}

// PredictMerge analyses the pipeline before and after merging (i, j) and
// returns the paper's comparison quantities.
func PredictMerge(p *Pipeline, i, j int, a *Analysis, merged *Analysis) MergePrediction {
	return MergePrediction{
		MergedService: merged.Timings[i].Service,
		SeparateSum:   a.Timings[i].Service + a.Timings[j].Service,
		LatencyGain:   a.Latency - merged.Latency,
	}
}
