package core

import (
	"math"
	"testing"
	"testing/quick"

	"stapio/internal/cube"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/stap"
)

func paperWorkloads() stap.Workloads {
	p := stap.DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
	return stap.ComputeWorkloads(&p)
}

func case1Nodes() STAPNodes {
	return STAPNodes{Doppler: 16, EasyWeight: 2, HardWeight: 3, EasyBF: 8, HardBF: 4, PulseComp: 14, CFAR: 3, IO: 8}
}

func TestSTAPNodesArithmetic(t *testing.T) {
	n := case1Nodes()
	if n.Compute() != 50 {
		t.Errorf("case-1 compute nodes = %d, want 50 (the paper's first case)", n.Compute())
	}
	d := n.Scale(2)
	if d.Compute() != 100 || d.IO != 16 {
		t.Errorf("Scale(2): compute %d IO %d", d.Compute(), d.IO)
	}
}

func TestBuildEmbeddedStructure(t *testing.T) {
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 7 {
		t.Fatalf("embedded pipeline has %d tasks, want 7", len(p.Tasks))
	}
	if p.Tasks[0].Name != NameDoppler || p.Tasks[0].ReadBytes == 0 {
		t.Error("task 0 must be the reading Doppler task")
	}
	if p.TotalNodes() != 50 {
		t.Errorf("total nodes %d, want 50", p.TotalNodes())
	}
	// Temporal edges: exactly the two weight->BF edges with lag 1.
	lag1 := 0
	for _, task := range p.Tasks {
		for _, d := range task.Deps {
			if d.Lag == 1 {
				lag1++
			}
			if d.Lag > 1 {
				t.Errorf("unexpected lag %d", d.Lag)
			}
		}
	}
	if lag1 != 2 {
		t.Errorf("%d temporal edges, want 2", lag1)
	}
}

func TestBuildSeparateStructure(t *testing.T) {
	p, err := BuildSeparate(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 8 {
		t.Fatalf("separate pipeline has %d tasks, want 8", len(p.Tasks))
	}
	if p.Tasks[0].Name != NameRead || p.Tasks[0].ReadBytes == 0 {
		t.Error("task 0 must be the parallel read task")
	}
	if p.Tasks[1].ReadBytes != 0 {
		t.Error("Doppler must not read in the separate design")
	}
	if p.TotalNodes() != 58 {
		t.Errorf("total nodes %d, want 58", p.TotalNodes())
	}
	// No IO nodes -> error.
	n := case1Nodes()
	n.IO = 0
	if _, err := BuildSeparate(paperWorkloads(), n); err == nil {
		t.Error("expected error without IO nodes")
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	good := Pipeline{Name: "g", Tasks: []Task{
		{Name: "a", Nodes: 1, Flops: 1},
		{Name: "b", Nodes: 1, Flops: 1, Deps: []Dep{{From: 0}}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good pipeline rejected: %v", err)
	}
	bad := []Pipeline{
		{Name: "empty"},
		{Name: "nodes", Tasks: []Task{{Name: "a", Nodes: 0}}},
		{Name: "negflops", Tasks: []Task{{Name: "a", Nodes: 1, Flops: -1}}},
		{Name: "self", Tasks: []Task{{Name: "a", Nodes: 1, Deps: []Dep{{From: 0}}}}},
		{Name: "forward", Tasks: []Task{
			{Name: "a", Nodes: 1},
			{Name: "b", Nodes: 1, Deps: []Dep{{From: 2}}},
			{Name: "c", Nodes: 1},
		}},
		{Name: "missing", Tasks: []Task{{Name: "a", Nodes: 1, Deps: []Dep{{From: 5}}}}},
		{Name: "neglag", Tasks: []Task{
			{Name: "a", Nodes: 1},
			{Name: "b", Nodes: 1, Deps: []Dep{{From: 0, Lag: -1}}},
		}},
		{Name: "headdep", Tasks: []Task{
			{Name: "a", Nodes: 1, Deps: nil},
		}},
	}
	// patch: last case should be a head with deps; rebuild it properly
	bad[len(bad)-1] = Pipeline{Name: "headdep", Tasks: []Task{
		{Name: "a", Nodes: 1},
		{Name: "b", Nodes: 1, Deps: []Dep{{From: 0}}},
	}}
	bad[len(bad)-1].Tasks[0].Deps = []Dep{{From: 0}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", p.Name)
		}
	}
}

func TestConsumersAndClone(t *testing.T) {
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cons := p.Consumers(0)
	if len(cons) != 4 {
		t.Errorf("Doppler has %d consumers, want 4 (two weight, two BF)", len(cons))
	}
	cl := p.Clone()
	cl.Tasks[0].Nodes = 999
	cl.Tasks[1].Deps[0].Bytes = 7
	if p.Tasks[0].Nodes == 999 || p.Tasks[1].Deps[0].Bytes == 7 {
		t.Error("Clone is not deep")
	}
	if p.TaskIndex(NameCFAR) != 6 || p.TaskIndex("nope") != -1 {
		t.Error("TaskIndex misbehaves")
	}
}

func TestAnalyzeEquationsHold(t *testing.T) {
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (1): throughput is 1/max T_i.
	var maxT float64
	for _, tt := range a.Timings {
		if tt.Service > maxT {
			maxT = tt.Service
		}
	}
	if math.Abs(a.Throughput*maxT-1) > 1e-12 {
		t.Errorf("throughput %v != 1/maxT %v", a.Throughput, 1/maxT)
	}
	if a.Timings[a.Bottleneck].Service != maxT {
		t.Error("Bottleneck index wrong")
	}
	// Eq. (2): latency = T_0 + max(T_3, T_4) + T_5 + T_6 (weight tasks
	// excluded by the temporal dependency).
	tt := a.Timings
	want := tt[0].Service + math.Max(tt[3].Service, tt[4].Service) + tt[5].Service + tt[6].Service
	if math.Abs(a.Latency-want) > 1e-9 {
		t.Errorf("latency %v, want paper eq. (2) value %v", a.Latency, want)
	}
	// The weight tasks must genuinely not matter: inflating their nodes
	// can only change their own service, never latency.
	p2 := p.Clone()
	p2.Tasks[1].Flops *= 3
	p2.Tasks[2].Flops *= 3
	a2, err := Analyze(p2, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	// (Only valid while the weight tasks stay under the period.)
	if a2.Timings[1].Service < a2.Timings[a2.Bottleneck].Service {
		if math.Abs(a2.Latency-a.Latency) > 1e-9 {
			t.Errorf("latency changed with weight-task workload: %v -> %v", a.Latency, a2.Latency)
		}
	}
}

func TestAnalyzeSeparateAddsLatencyTerm(t *testing.T) {
	// Paper eq. (4): the separate-I/O pipeline's latency has one more term
	// (T_read); throughput is roughly unchanged when the bottleneck task
	// is elsewhere.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	w := paperWorkloads()
	n := case1Nodes()
	emb, err := BuildEmbedded(w, n)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := BuildSeparate(w, n)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := Analyze(emb, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Analyze(sep, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if as.Latency <= ae.Latency {
		t.Errorf("separate latency %v should exceed embedded %v", as.Latency, ae.Latency)
	}
	relDiff := math.Abs(as.Throughput-ae.Throughput) / ae.Throughput
	if relDiff > 0.05 {
		t.Errorf("throughputs should be within 5%%: %v vs %v", as.Throughput, ae.Throughput)
	}
	// Eq. (4): latency = T_0 + T_1 + max(T_4, T_5) + T_6 + T_7 in the
	// 8-task numbering.
	tt := as.Timings
	want := tt[0].Service + tt[1].Service + math.Max(tt[4].Service, tt[5].Service) + tt[6].Service + tt[7].Service
	if math.Abs(as.Latency-want) > 1e-9 {
		t.Errorf("separate latency %v, want eq. (4) value %v", as.Latency, want)
	}
}

func TestAnalyzeSyncVsAsyncIO(t *testing.T) {
	// Async file systems overlap the read with compute; sync ones add it.
	prof := machine.Paragon()
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	async := pfs.ParagonPFS(64)
	sync := async
	sync.Async = false
	sync.Name = "PFS-64-sync"
	aa, err := Analyze(p, prof, async)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Analyze(p, prof, sync)
	if err != nil {
		t.Fatal(err)
	}
	t0a, t0s := aa.Timings[0], as.Timings[0]
	if math.Abs(t0a.Service-math.Max(t0a.Read, t0a.Rest())) > 1e-12 {
		t.Error("async service should be max(read, rest)")
	}
	if math.Abs(t0s.Service-(t0s.Read+t0s.Rest())) > 1e-12 {
		t.Error("sync service should be read + rest")
	}
	if as.Throughput >= aa.Throughput {
		t.Error("sync I/O should not beat async I/O")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	prof := machine.Paragon()
	bad := Pipeline{Name: "bad"}
	if _, err := Analyze(&bad, prof, pfs.Config{}); err == nil {
		t.Error("expected error for invalid pipeline")
	}
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(p, prof, pfs.Config{}); err == nil {
		t.Error("expected error for missing FS config on reading pipeline")
	}
	if _, err := Analyze(p, machine.Profile{Name: "zero"}, pfs.ParagonPFS(16)); err == nil {
		t.Error("expected error for invalid machine profile")
	}
	// A pipeline with zero work on a zero-overhead machine has no finite
	// throughput and must be rejected.
	zero := Pipeline{Name: "zero", Tasks: []Task{{Name: "a", Nodes: 1}}}
	noOvh := machine.Profile{Name: "ideal", NodeMFlops: 1, NodeBandwidth: 1}
	if _, err := Analyze(&zero, noOvh, pfs.Config{}); err == nil {
		t.Error("expected error for zero-work pipeline")
	}
}

func TestMergeStructure(t *testing.T) {
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	m, err := CombinePCCFAR(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks) != 6 {
		t.Fatalf("combined pipeline has %d tasks, want 6", len(m.Tasks))
	}
	mt := m.Tasks[5]
	if mt.Nodes != p.Tasks[5].Nodes+p.Tasks[6].Nodes {
		t.Errorf("merged nodes %d, want %d", mt.Nodes, p.Tasks[5].Nodes+p.Tasks[6].Nodes)
	}
	if math.Abs(mt.Flops-(p.Tasks[5].Flops+p.Tasks[6].Flops)) > 1 {
		t.Errorf("merged flops %g, want sum", mt.Flops)
	}
	if m.TotalNodes() != p.TotalNodes() {
		t.Errorf("total nodes changed: %d -> %d", p.TotalNodes(), m.TotalNodes())
	}
	// The merged task keeps the BF deps, loses the internal PC->CFAR edge.
	if len(mt.Deps) != 2 {
		t.Errorf("merged deps = %d, want 2 (from both BF tasks)", len(mt.Deps))
	}
}

func TestMergeReadIntoDopplerGivesEmbedded(t *testing.T) {
	// The paper observes the embedded design "can be viewed as combining
	// the first two tasks" of the separate design. Check the equivalence.
	w := paperWorkloads()
	n := case1Nodes()
	sep, err := BuildSeparate(w, n)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sep.Merge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := BuildEmbedded(w, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Tasks) != len(emb.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(merged.Tasks), len(emb.Tasks))
	}
	// Same reads and flops at the head (up to the forwarding copy work).
	if merged.Tasks[0].ReadBytes != emb.Tasks[0].ReadBytes {
		t.Error("merged head read bytes differ from embedded")
	}
	if math.Abs(merged.Tasks[0].Flops-emb.Tasks[0].Flops) > 1 {
		t.Errorf("merged head flops %g vs embedded %g", merged.Tasks[0].Flops, emb.Tasks[0].Flops)
	}
	// Identical downstream structure.
	for i := 1; i < len(emb.Tasks); i++ {
		a, b := merged.Tasks[i], emb.Tasks[i]
		if a.Name != b.Name && a.Name != NameRead+"+"+NameDoppler {
			t.Errorf("task %d name %q vs %q", i, a.Name, b.Name)
		}
		if a.Nodes != b.Nodes || len(a.Deps) != len(b.Deps) {
			t.Errorf("task %d structure differs", i)
		}
		for k := range a.Deps {
			if a.Deps[k].From != b.Deps[k].From || a.Deps[k].Lag != b.Deps[k].Lag {
				t.Errorf("task %d dep %d differs: %+v vs %+v", i, k, a.Deps[k], b.Deps[k])
			}
		}
	}
	// Except the merged head has extra nodes (the IO nodes joined it).
	if merged.Tasks[0].Nodes != n.IO+n.Doppler {
		t.Errorf("merged head nodes %d, want %d", merged.Tasks[0].Nodes, n.IO+n.Doppler)
	}
}

func TestMergeRejections(t *testing.T) {
	p, err := BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Merge(5, 5); err == nil {
		t.Error("i==j should fail")
	}
	if _, err := p.Merge(6, 5); err == nil {
		t.Error("i>j should fail")
	}
	if _, err := p.Merge(0, 6); err == nil {
		t.Error("non-adjacent (CFAR does not consume Doppler) should fail")
	}
	// Temporal edge: easy weight -> easy BF is lag 1.
	if _, err := p.Merge(1, 3); err == nil {
		t.Error("merging across temporal dependency should fail")
	}
	// Doppler -> easy BF is spatial but easy BF also depends on task 1
	// (between 0 and 3): intermediate dependency must be rejected.
	if _, err := p.Merge(0, 3); err == nil {
		t.Error("merge with intermediate dependent should fail")
	}
	// Doppler -> easy weight: task 2 (hard weight, between i and j after
	// merge ordering) does not block 0+1 merge... but tasks between 0 and
	// 1 do not exist, so this merge is allowed.
	if _, err := p.Merge(0, 1); err != nil {
		t.Errorf("merge(0,1) should succeed: %v", err)
	}
}

func TestMergeImprovesLatencyKeepsThroughput(t *testing.T) {
	// Paper Section 6: combining PC+CFAR improves latency in every
	// configuration and never decreases throughput.
	w := paperWorkloads()
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	for _, scale := range []int{1, 2, 4} {
		n := case1Nodes().Scale(scale)
		p, err := BuildEmbedded(w, n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := CombinePCCFAR(p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(p, prof, fsCfg)
		if err != nil {
			t.Fatal(err)
		}
		am, err := Analyze(m, prof, fsCfg)
		if err != nil {
			t.Fatal(err)
		}
		if am.Latency >= a.Latency {
			t.Errorf("scale %d: merged latency %v >= %v", scale, am.Latency, a.Latency)
		}
		if am.Throughput < a.Throughput*(1-1e-9) {
			t.Errorf("scale %d: merged throughput %v < %v", scale, am.Throughput, a.Throughput)
		}
		pred := PredictMerge(p, 5, 6, a, am)
		if pred.MergedService >= pred.SeparateSum {
			t.Errorf("scale %d: eq. (11) violated: %v >= %v", scale, pred.MergedService, pred.SeparateSum)
		}
		if pred.LatencyGain <= 0 {
			t.Errorf("scale %d: no latency gain", scale)
		}
	}
}

func TestMergeImprovementDecreasesWithNodes(t *testing.T) {
	// Paper Table 4: the percentage improvement decreases as nodes grow.
	w := paperWorkloads()
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	var prev float64 = math.Inf(1)
	for _, scale := range []int{1, 2, 4} {
		n := case1Nodes().Scale(scale)
		p, _ := BuildEmbedded(w, n)
		m, _ := CombinePCCFAR(p)
		a, err := Analyze(p, prof, fsCfg)
		if err != nil {
			t.Fatal(err)
		}
		am, err := Analyze(m, prof, fsCfg)
		if err != nil {
			t.Fatal(err)
		}
		imp := (a.Latency - am.Latency) / a.Latency
		if imp >= prev {
			t.Errorf("scale %d: improvement %.4f did not decrease (prev %.4f)", scale, imp, prev)
		}
		prev = imp
	}
}

func TestMergeComputeInequalityProperty(t *testing.T) {
	// Eq. (9) at the pipeline level: for random linear pipelines, merging
	// two spatially adjacent tasks never increases the analytic
	// throughput-determining service time beyond the pair's sum.
	prof := machine.Paragon()
	f := func(w1raw, w2raw uint32, p1raw, p2raw uint8) bool {
		w1 := float64(w1raw%1e9) + 1e6
		w2 := float64(w2raw%1e9) + 1e6
		p1 := int(p1raw%16) + 1
		p2 := int(p2raw%16) + 1
		p := Pipeline{Name: "prop", Tasks: []Task{
			{Name: "a", Nodes: 4, Flops: 1e8},
			{Name: "b", Nodes: p1, Flops: w1, Deps: []Dep{{From: 0, Bytes: 1e6}}},
			{Name: "c", Nodes: p2, Flops: w2, Deps: []Dep{{From: 1, Bytes: 1e6}}},
		}}
		m, err := p.Merge(1, 2)
		if err != nil {
			return false
		}
		a, err := Analyze(&p, prof, pfs.Config{})
		if err != nil {
			return false
		}
		am, err := Analyze(m, prof, pfs.Config{})
		if err != nil {
			return false
		}
		// Merged service below the pair's sum, and latency never worse.
		return am.Timings[1].Service <= a.Timings[1].Service+a.Timings[2].Service+1e-12 &&
			am.Latency <= a.Latency+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
