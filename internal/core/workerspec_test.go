package core

import "testing"

func TestParseWorkerSpec(t *testing.T) {
	base := STAPNodes{Doppler: 2, EasyWeight: 2, HardWeight: 2, EasyBF: 2, HardBF: 2, PulseComp: 2, CFAR: 2}
	got, err := ParseWorkerSpec("dop=3, wh=5,cfar=1", base)
	if err != nil {
		t.Fatal(err)
	}
	want := base
	want.Doppler, want.HardWeight, want.CFAR = 3, 5, 1
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}

	if got, err := ParseWorkerSpec("", base); err != nil || got != base {
		t.Errorf("empty spec should return base unchanged, got %+v, %v", got, err)
	}
	if got, err := ParseWorkerSpec("io=4", base); err != nil || got.IO != 4 {
		t.Errorf("io key: got %+v, %v", got, err)
	}
	for _, bad := range []string{"dop", "dop=x", "dop=-1", "nope=3"} {
		if _, err := ParseWorkerSpec(bad, base); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestFormatWorkerSpecRoundTrip(t *testing.T) {
	n := STAPNodes{Doppler: 3, EasyWeight: 1, HardWeight: 5, EasyBF: 2, HardBF: 2, PulseComp: 4, CFAR: 2, IO: 3}
	got, err := ParseWorkerSpec(FormatWorkerSpec(n), STAPNodes{})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("round trip: got %+v, want %+v", got, n)
	}
}
