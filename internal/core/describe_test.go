package core

import (
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	p, err := BuildSeparate(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	out, err := AttachReportOutput(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s := out.Describe()
	for _, want := range []string{
		"STAP/separate-IO", "8 tasks", "58 nodes",
		"parallel read", "reads 16.0MiB/CPI", "writes 4.0KiB/CPI",
		"<~~", "temporal lag 1", "<--", "spatial",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe missing %q:\n%s", want, s)
		}
	}
	m, err := CombinePCCFAR(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Describe(), "(2 kernels)") {
		t.Error("merged task should show kernel count")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[float64]string{5e9: "5.0G", 2e6: "2.0M", 3e3: "3.0k", 12: "12"}
	for in, want := range cases {
		if got := flops(in); got != want {
			t.Errorf("flops(%g) = %q, want %q", in, got, want)
		}
	}
	bcases := map[float64]string{3 << 30: "3.0GiB", 16 << 20: "16.0MiB", 64 << 10: "64.0KiB", 100: "100B"}
	for in, want := range bcases {
		if got := bytes(in); got != want {
			t.Errorf("bytes(%g) = %q, want %q", in, got, want)
		}
	}
}
