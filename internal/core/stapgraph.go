package core

import (
	"fmt"

	"stapio/internal/stap"
)

// Task names of the STAP pipeline, used by reports and tests.
const (
	NameRead       = "parallel read"
	NameDoppler    = "Doppler filter"
	NameEasyWeight = "easy weight"
	NameHardWeight = "hard weight"
	NameEasyBF     = "easy BF"
	NameHardBF     = "hard BF"
	NamePulseComp  = "pulse compr"
	NameCFAR       = "CFAR"
)

// STAPNodes is a node assignment for the STAP pipeline's tasks. IO is only
// used by the separate-I/O design.
type STAPNodes struct {
	Doppler, EasyWeight, HardWeight, EasyBF, HardBF, PulseComp, CFAR int
	IO                                                               int
}

// Compute returns the number of nodes assigned to the seven compute tasks
// (excluding the separate I/O task).
func (n STAPNodes) Compute() int {
	return n.Doppler + n.EasyWeight + n.HardWeight + n.EasyBF + n.HardBF + n.PulseComp + n.CFAR
}

// Scale multiplies every assignment by f (the paper's "each case doubles
// the number of nodes of another").
func (n STAPNodes) Scale(f int) STAPNodes {
	return STAPNodes{
		Doppler:    n.Doppler * f,
		EasyWeight: n.EasyWeight * f,
		HardWeight: n.HardWeight * f,
		EasyBF:     n.EasyBF * f,
		HardBF:     n.HardBF * f,
		PulseComp:  n.PulseComp * f,
		CFAR:       n.CFAR * f,
		IO:         n.IO * f,
	}
}

// readFlopsPerByte models the light per-byte work (buffer handling,
// scatter) performed by a task that reads and forwards the data cube.
const readFlopsPerByte = 0.5

// BuildEmbedded constructs the paper's first I/O design: the Doppler
// filter task itself reads each CPI file from the parallel file system
// ("I/O embedded in the first task", Figure 3). The pipeline has the seven
// STAP tasks.
func BuildEmbedded(w stap.Workloads, n STAPNodes) (*Pipeline, error) {
	p := buildCompute(w, n, 0)
	p.Name = "STAP/embedded-IO"
	p.Tasks[0].ReadBytes = w.CubeBytes + 32
	p.Tasks[0].Flops += readFlopsPerByte * w.CubeBytes
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// BuildSeparate constructs the paper's second I/O design: a dedicated
// parallel-read task heads the pipeline and forwards each cube to the
// Doppler task (Figure 4). The pipeline has eight tasks.
func BuildSeparate(w stap.Workloads, n STAPNodes) (*Pipeline, error) {
	if n.IO < 1 {
		return nil, fmt.Errorf("core: separate I/O design needs IO nodes, have %d", n.IO)
	}
	p := buildCompute(w, n, 1)
	p.Name = "STAP/separate-IO"
	read := Task{
		Name:      NameRead,
		Nodes:     n.IO,
		Flops:     readFlopsPerByte * w.CubeBytes,
		ReadBytes: w.CubeBytes + 32,
	}
	p.Tasks[0] = read
	p.Tasks[1].Deps = append(p.Tasks[1].Deps, Dep{From: 0, Lag: 0, Bytes: w.CubeBytes})
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// buildCompute lays out the seven STAP tasks starting at index base
// (0 for embedded, 1 to leave room for a read task).
func buildCompute(w stap.Workloads, n STAPNodes, base int) *Pipeline {
	t := make([]Task, base+7)
	d := base // Doppler index
	t[d+0] = Task{Name: NameDoppler, Nodes: n.Doppler, Flops: w.Flops[0]}
	t[d+1] = Task{Name: NameEasyWeight, Nodes: n.EasyWeight, Flops: w.Flops[1],
		Deps: []Dep{{From: d, Lag: 0, Bytes: w.DopplerToWeight[0]}}}
	t[d+2] = Task{Name: NameHardWeight, Nodes: n.HardWeight, Flops: w.Flops[2],
		Deps: []Dep{{From: d, Lag: 0, Bytes: w.DopplerToWeight[1]}}}
	t[d+3] = Task{Name: NameEasyBF, Nodes: n.EasyBF, Flops: w.Flops[3],
		Deps: []Dep{
			{From: d, Lag: 0, Bytes: w.DopplerToBF[0]},
			{From: d + 1, Lag: 1, Bytes: w.WeightToBF[0]},
		}}
	t[d+4] = Task{Name: NameHardBF, Nodes: n.HardBF, Flops: w.Flops[4],
		Deps: []Dep{
			{From: d, Lag: 0, Bytes: w.DopplerToBF[1]},
			{From: d + 2, Lag: 1, Bytes: w.WeightToBF[1]},
		}}
	t[d+5] = Task{Name: NamePulseComp, Nodes: n.PulseComp, Flops: w.Flops[5],
		Deps: []Dep{
			{From: d + 3, Lag: 0, Bytes: w.BFToPC[0]},
			{From: d + 4, Lag: 0, Bytes: w.BFToPC[1]},
		}}
	t[d+6] = Task{Name: NameCFAR, Nodes: n.CFAR, Flops: w.Flops[6],
		Deps: []Dep{{From: d + 5, Lag: 0, Bytes: w.PCToCFAR}}}
	return &Pipeline{Tasks: t}
}

// AttachReportOutput makes the pipeline's terminal task persist its
// detection reports to the parallel file system — the output-side I/O
// strategy of the authors' companion study ("I/O Implementation and
// Evaluation of Parallel Pipelined STAP on High Performance Computers").
// bytes is the per-CPI report volume; it returns a modified clone.
func AttachReportOutput(p *Pipeline, bytes float64) (*Pipeline, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("core: negative report volume %v", bytes)
	}
	out := p.Clone()
	out.Tasks[len(out.Tasks)-1].WriteBytes += bytes
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// CombinePCCFAR merges the pulse compression and CFAR tasks — the paper's
// Section 6 experiment. It works on both I/O designs.
func CombinePCCFAR(p *Pipeline) (*Pipeline, error) {
	i := p.TaskIndex(NamePulseComp)
	j := p.TaskIndex(NameCFAR)
	if i < 0 || j < 0 {
		return nil, fmt.Errorf("core: pipeline %q lacks pulse compression or CFAR", p.Name)
	}
	m, err := p.Merge(i, j)
	if err != nil {
		return nil, err
	}
	m.Name = p.Name + "/combined"
	return m, nil
}
