package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// workerKeys maps the CLI spelling of each task onto its STAPNodes field.
// The short names follow the paper's task order: dop (Doppler filtering),
// we/wh (easy/hard weight computation), bfe/bfh (easy/hard beamforming),
// pc (pulse compression), cfar, io.
var workerKeys = map[string]func(*STAPNodes) *int{
	"dop":  func(n *STAPNodes) *int { return &n.Doppler },
	"we":   func(n *STAPNodes) *int { return &n.EasyWeight },
	"wh":   func(n *STAPNodes) *int { return &n.HardWeight },
	"bfe":  func(n *STAPNodes) *int { return &n.EasyBF },
	"bfh":  func(n *STAPNodes) *int { return &n.HardBF },
	"pc":   func(n *STAPNodes) *int { return &n.PulseComp },
	"cfar": func(n *STAPNodes) *int { return &n.CFAR },
	"io":   func(n *STAPNodes) *int { return &n.IO },
}

// ParseWorkerSpec overlays a comma-separated per-stage worker spec, e.g.
// "dop=3,wh=4,cfar=2", onto base and returns the result. Unmentioned
// stages keep their base counts, so a spec can adjust just the stages it
// names (hand splits from the CLI, or replaying an autotune trace).
func ParseWorkerSpec(spec string, base STAPNodes) (STAPNodes, error) {
	out := base
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return base, fmt.Errorf("core: worker spec entry %q is not key=count", part)
		}
		field, known := workerKeys[strings.TrimSpace(key)]
		if !known {
			return base, fmt.Errorf("core: unknown stage %q in worker spec (%s)", strings.TrimSpace(key), workerSpecKeys())
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return base, fmt.Errorf("core: worker spec entry %q needs a non-negative count", part)
		}
		*field(&out) = n
	}
	return out, nil
}

// FormatWorkerSpec renders a STAPNodes as a spec string ParseWorkerSpec
// accepts, in pipeline order.
func FormatWorkerSpec(n STAPNodes) string {
	parts := []string{
		fmt.Sprintf("dop=%d", n.Doppler),
		fmt.Sprintf("we=%d", n.EasyWeight),
		fmt.Sprintf("wh=%d", n.HardWeight),
		fmt.Sprintf("bfe=%d", n.EasyBF),
		fmt.Sprintf("bfh=%d", n.HardBF),
		fmt.Sprintf("pc=%d", n.PulseComp),
		fmt.Sprintf("cfar=%d", n.CFAR),
	}
	if n.IO > 0 {
		parts = append(parts, fmt.Sprintf("io=%d", n.IO))
	}
	return strings.Join(parts, ",")
}

func workerSpecKeys() string {
	keys := make([]string, 0, len(workerKeys))
	for k := range workerKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " | ")
}
