package core

import (
	"fmt"

	"stapio/internal/machine"
	"stapio/internal/pfs"
)

// TaskTiming decomposes the analytic execution time of one task for one
// CPI, following the paper's T_i = W_i/P_i + C_i + V_i with the I/O phase
// added.
type TaskTiming struct {
	Name  string
	Nodes int
	// Read is the parallel file system read time (0 for tasks without an
	// I/O attachment).
	Read float64
	// Write is the parallel file system write time (0 for tasks that do
	// not persist output).
	Write float64
	// Recv is the time to receive this task's inputs from its producers.
	Recv float64
	// Compute is W_i / P_i.
	Compute float64
	// Send is the time to forward outputs to consumers.
	Send float64
	// Overhead is V_i, the parallelisation overhead.
	Overhead float64
	// Service is the task's steady-state occupancy per CPI: with an
	// asynchronous file system the I/O (Read + Write, which share the
	// stripe servers) overlaps the rest of the phases — max(IO, rest);
	// with a synchronous file system they add.
	Service float64
}

// Rest returns the non-I/O portion Recv + Compute + Send + Overhead.
func (t TaskTiming) Rest() float64 { return t.Recv + t.Compute + t.Send + t.Overhead }

// Analysis is the closed-form performance prediction for a pipeline on a
// machine + file system pair.
type Analysis struct {
	Pipeline *Pipeline
	Timings  []TaskTiming
	// Throughput is CPIs/second: 1 / max_i Service_i (paper eq. (1)/(3)).
	Throughput float64
	// Latency is the steady-state time from the head task starting a CPI
	// to the terminal task completing it (paper eq. (2)/(4)).
	Latency float64
	// Bottleneck is the index of the task with the largest service time.
	Bottleneck int
}

// Analyze computes the analytic model. fsCfg supplies the file system for
// tasks with ReadBytes > 0; it may be the zero Config if no task reads.
func Analyze(p *Pipeline, prof machine.Profile, fsCfg pfs.Config) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Tasks)
	timings := make([]TaskTiming, n)
	for i, t := range p.Tasks {
		tt := TaskTiming{Name: t.Name, Nodes: t.Nodes}
		tt.Compute = prof.ComputeTime(t.Flops, t.Nodes)
		tt.Overhead = prof.Overhead(t.Nodes, t.KernelCount())
		for _, d := range t.Deps {
			tt.Recv += prof.CommTime(d.Bytes, p.Tasks[d.From].Nodes, t.Nodes)
		}
		for _, c := range p.Consumers(i) {
			tt.Send += prof.CommTime(c.Dep.Bytes, t.Nodes, p.Tasks[c.To].Nodes)
		}
		if t.ReadBytes > 0 || t.WriteBytes > 0 {
			if err := fsCfg.Validate(); err != nil {
				return nil, fmt.Errorf("core: task %d (%s) does I/O but file system config invalid: %w",
					i, t.Name, err)
			}
			if t.ReadBytes > 0 {
				tt.Read = fsCfg.EstimateReadTime(0, int64(t.ReadBytes))
			}
			if t.WriteBytes > 0 {
				// Writes use the same striped service path as reads.
				tt.Write = fsCfg.EstimateReadTime(0, int64(t.WriteBytes))
			}
			if fsCfg.Async {
				tt.Service = maxf(tt.Read+tt.Write, tt.Rest())
			} else {
				tt.Service = tt.Read + tt.Write + tt.Rest()
			}
		} else {
			tt.Service = tt.Rest()
		}
		timings[i] = tt
	}

	a := &Analysis{Pipeline: p, Timings: timings}
	var period float64
	for i, tt := range timings {
		if tt.Service > period {
			period = tt.Service
			a.Bottleneck = i
		}
	}
	if period <= 0 {
		return nil, fmt.Errorf("core: pipeline %q has zero total work", p.Name)
	}
	a.Throughput = 1 / period

	// Steady-state latency recurrence: in a pipeline with period Period,
	// instance k of task i starts at s_i + k*Period. An edge (j -> i,
	// lag l) forces s_i >= s_j + Service_j - l*Period: the consumed output
	// was produced l periods earlier. Latency is the terminal completion
	// minus the head start. For the STAP graph this reduces to the paper's
	// latency = T_0 + max(T_3, T_4) + T_5 + T_6: the lag-1 weight edges
	// drop out because s_w + T_w - Period <= s_doppler-side constraint.
	start := make([]float64, n)
	for i, t := range p.Tasks {
		s := 0.0
		for _, d := range t.Deps {
			c := start[d.From] + timings[d.From].Service - float64(d.Lag)*period
			if c > s {
				s = c
			}
		}
		start[i] = s
	}
	term := n - 1
	a.Latency = start[term] + timings[term].Service - start[0]
	return a, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
