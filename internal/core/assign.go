package core

import (
	"fmt"

	"stapio/internal/machine"
	"stapio/internal/pfs"
)

// Node-assignment optimisation. The paper fixes its per-task node counts
// by hand; this solves the underlying design problem: given a total node
// budget, assign nodes to tasks to maximise throughput (minimise the
// maximum task service time), optionally breaking ties in favour of
// latency. The marginal-allocation greedy is optimal here because every
// task's service time is non-increasing in its own node count and
// independent of the other tasks' counts.

// Assignment maps task index to node count.
type Assignment []int

// Total returns the number of nodes used.
func (a Assignment) Total() int {
	var n int
	for _, v := range a {
		n += v
	}
	return n
}

// Apply returns a copy of the pipeline with the assignment installed.
func (p *Pipeline) Apply(a Assignment) (*Pipeline, error) {
	if len(a) != len(p.Tasks) {
		return nil, fmt.Errorf("core: assignment covers %d tasks, pipeline has %d", len(a), len(p.Tasks))
	}
	out := p.Clone()
	for i, n := range a {
		if n < 1 {
			return nil, fmt.Errorf("core: task %d assigned %d nodes", i, n)
		}
		out.Tasks[i].Nodes = n
	}
	return out, nil
}

// serviceTimeWith computes task i's analytic service time if it ran on n
// nodes (holding every other task's assignment fixed — service times are
// separable except for communication pairings, which we evaluate against
// the current counterpart counts).
func serviceTimeWith(p *Pipeline, prof machine.Profile, fsCfg pfs.Config, i, n int) float64 {
	t := p.Tasks[i]
	tt := prof.ComputeTime(t.Flops, n) + prof.Overhead(n, t.KernelCount())
	for _, d := range t.Deps {
		tt += prof.CommTime(d.Bytes, p.Tasks[d.From].Nodes, n)
	}
	for _, c := range p.Consumers(i) {
		tt += prof.CommTime(c.Dep.Bytes, n, p.Tasks[c.To].Nodes)
	}
	var io float64
	if t.ReadBytes > 0 {
		io += fsCfg.EstimateReadTime(0, int64(t.ReadBytes))
	}
	if t.WriteBytes > 0 {
		io += fsCfg.EstimateReadTime(0, int64(t.WriteBytes))
	}
	if io > 0 {
		if fsCfg.Async {
			return maxf(io, tt)
		}
		return io + tt
	}
	return tt
}

// OptimizeAssignment distributes total nodes over the pipeline's tasks to
// minimise the bottleneck service time: starting from one node each, it
// repeatedly grants the next node to the task with the largest current
// service time (skipping tasks whose service no longer improves, e.g.
// I/O-bound ones). It returns the assignment and the predicted analysis.
func OptimizeAssignment(p *Pipeline, prof machine.Profile, fsCfg pfs.Config, total int) (Assignment, *Analysis, error) {
	n := len(p.Tasks)
	if total < n {
		return nil, nil, fmt.Errorf("core: %d nodes cannot cover %d tasks", total, n)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, nil, err
	}
	a := make(Assignment, n)
	for i := range a {
		a[i] = 1
	}
	work := p.Clone()
	install := func() {
		for i, v := range a {
			work.Tasks[i].Nodes = v
		}
	}
	install()
	svc := make([]float64, n)
	refresh := func() {
		for i := range svc {
			svc[i] = serviceTimeWith(work, prof, fsCfg, i, a[i])
		}
	}
	refresh()
	for used := n; used < total; used++ {
		// Pick the current bottleneck that can still improve.
		best, bestGain := -1, 0.0
		for i := range svc {
			gain := svc[i] - serviceTimeWith(work, prof, fsCfg, i, a[i]+1)
			if gain <= 0 {
				continue
			}
			// Prefer relieving the largest service time; among tasks
			// within epsilon of the bottleneck, prefer the larger gain.
			if best == -1 || svc[i] > svc[best]+1e-12 ||
				(svc[i] > svc[best]-1e-12 && gain > bestGain) {
				best, bestGain = i, gain
			}
		}
		if best == -1 {
			// Throughput cannot improve further. Spend what remains on
			// latency: give nodes to whichever task yields the largest
			// analytic latency reduction, while never increasing the
			// period.
			rest := total - used
			a = refineLatency(work, prof, fsCfg, a, rest)
			break
		}
		a[best]++
		install()
		refresh()
	}
	final, err := p.Apply(a)
	if err != nil {
		return nil, nil, err
	}
	an, err := Analyze(final, prof, fsCfg)
	if err != nil {
		return nil, nil, err
	}
	return a, an, nil
}

// latencyGainFloor is the smallest relative latency improvement worth one
// more node; below it refineLatency stops rather than burn budget on
// vanishing returns.
const latencyGainFloor = 1e-3

// refineLatency greedily assigns up to spare extra nodes to minimise the
// analytic latency without hurting throughput. It stops as soon as no
// single-node grant improves latency by at least latencyGainFloor
// (relative).
func refineLatency(p *Pipeline, prof machine.Profile, fsCfg pfs.Config, a Assignment, spare int) Assignment {
	cur := append(Assignment(nil), a...)
	apply := func(asg Assignment) *Analysis {
		pp, err := p.Apply(asg)
		if err != nil {
			return nil
		}
		an, err := Analyze(pp, prof, fsCfg)
		if err != nil {
			return nil
		}
		return an
	}
	base := apply(cur)
	if base == nil {
		return cur
	}
	for ; spare > 0; spare-- {
		best := -1
		bestLat := base.Latency * (1 - latencyGainFloor)
		for i := range cur {
			cur[i]++
			if an := apply(cur); an != nil &&
				an.Latency < bestLat &&
				an.Throughput >= base.Throughput*(1-1e-12) {
				best = i
				bestLat = an.Latency
			}
			cur[i]--
		}
		if best == -1 {
			break
		}
		cur[best]++
		base = apply(cur)
		if base == nil {
			break
		}
	}
	return cur
}

// ProportionalAssignment divides total nodes proportionally to task
// workloads (at least one each) — the naive baseline the optimiser is
// compared against.
func ProportionalAssignment(p *Pipeline, total int) (Assignment, error) {
	n := len(p.Tasks)
	if total < n {
		return nil, fmt.Errorf("core: %d nodes cannot cover %d tasks", total, n)
	}
	var sum float64
	for _, t := range p.Tasks {
		sum += t.Flops
	}
	a := make(Assignment, n)
	used := 0
	for i, t := range p.Tasks {
		share := 1
		if sum > 0 {
			share = int(t.Flops / sum * float64(total))
		}
		if share < 1 {
			share = 1
		}
		a[i] = share
		used += share
	}
	// Trim or pad to hit the budget exactly, adjusting the largest/
	// smallest holders.
	for used > total {
		big := 0
		for i := range a {
			if a[i] > a[big] {
				big = i
			}
		}
		if a[big] == 1 {
			return nil, fmt.Errorf("core: cannot fit %d tasks in %d nodes", n, total)
		}
		a[big]--
		used--
	}
	for used < total {
		// Give spare nodes to the heaviest per-node workload.
		best, bestLoad := 0, -1.0
		for i, t := range p.Tasks {
			load := t.Flops / float64(a[i])
			if load > bestLoad {
				best, bestLoad = i, load
			}
		}
		a[best]++
		used++
	}
	return a, nil
}
