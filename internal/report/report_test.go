package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"task", "nodes", "time"}}
	tb.AddRow("Doppler filter", "16", "0.368")
	tb.AddRow("CFAR", "3") // short row padded
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T\n", "task", "Doppler filter", "16", "0.368", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "nodes" column starts at the same offset in all rows.
	idxHeader := strings.Index(lines[1], "nodes")
	idxRow := strings.Index(lines[3], "16")
	if idxHeader != idxRow {
		t.Errorf("column misaligned: header at %d, row at %d", idxHeader, idxRow)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow(`x,y`, `say "hi"`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestBarChartRender(t *testing.T) {
	c := &BarChart{
		Title: "Throughput",
		Unit:  "CPIs/s",
		Width: 20,
		Group: []BarGroup{
			{Label: "case 1", Bars: []Bar{{"PFS-16", 2.7}, {"PFS-64", 2.7}}},
			{Label: "case 3", Bars: []Bar{{"PFS-16", 5.5}, {"PFS-64", 9.9}}},
		},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Throughput", "case 1", "case 3", "PFS-16", "CPIs/s", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Largest value gets the full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Errorf("max bar should span the full width:\n%s", out)
	}
	// A tiny but positive value still paints one mark.
	c2 := &BarChart{Width: 10, Group: []BarGroup{{Label: "g", Bars: []Bar{{"big", 100}, {"tiny", 0.01}}}}}
	buf.Reset()
	c2.Render(&buf)
	if !strings.Contains(buf.String(), "tiny |#") {
		t.Errorf("tiny bar missing mark:\n%s", buf.String())
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "empty"}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart should say so:\n%s", buf.String())
	}
}
