package report

import (
	"fmt"
	"io"
	"math"
)

// heatRamp maps normalised intensity to a character, dark to bright.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a 2-D intensity grid (rows x cols) as ASCII art with a
// logarithmic (dB) intensity scale — the text rendering of the classic
// angle-Doppler map.
type Heatmap struct {
	Title string
	// RowLabels annotates rows (same length as Values); optional.
	RowLabels []string
	// ColLabel describes the column axis.
	ColLabel string
	// Values holds the intensities; rows may not be ragged.
	Values [][]float64
	// FloorDB is the dynamic range below the peak mapped to the darkest
	// character (default 40 dB).
	FloorDB float64
}

// Render draws the map.
func (h *Heatmap) Render(w io.Writer) {
	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	if len(h.Values) == 0 || len(h.Values[0]) == 0 {
		fmt.Fprintf(w, "  (no data)\n")
		return
	}
	floor := h.FloorDB
	if floor <= 0 {
		floor = 40
	}
	var peak float64
	cols := len(h.Values[0])
	for _, row := range h.Values {
		if len(row) != cols {
			fmt.Fprintf(w, "  (ragged rows)\n")
			return
		}
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	if peak <= 0 {
		fmt.Fprintf(w, "  (all zero)\n")
		return
	}
	labelW := 0
	for _, l := range h.RowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, row := range h.Values {
		label := ""
		if i < len(h.RowLabels) {
			label = h.RowLabels[i]
		}
		line := make([]byte, cols)
		for j, v := range row {
			db := -floor
			if v > 0 {
				db = 10 * math.Log10(v/peak)
			}
			// Map [-floor, 0] dB to ramp indices.
			t := (db + floor) / floor
			if t < 0 {
				t = 0
			}
			idx := int(t * float64(len(heatRamp)-1))
			if idx >= len(heatRamp) {
				idx = len(heatRamp) - 1
			}
			line[j] = heatRamp[idx]
		}
		fmt.Fprintf(w, "  %s |%s|\n", pad(label, labelW), line)
	}
	if h.ColLabel != "" {
		fmt.Fprintf(w, "  %s  %s\n", pad("", labelW), h.ColLabel)
	}
}
