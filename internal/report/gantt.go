package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// GanttSpan is one interval of a timeline lane.
type GanttSpan struct {
	Lane  string // e.g. the task name
	Mark  byte   // character painted for this span's phase
	Start float64
	End   float64
}

// Gantt renders a set of spans as an ASCII timeline: one lane per task,
// time flowing left to right, each column showing the phase occupying
// that time bucket. It is the visual form of the pipeline's steady-state
// schedule — the I/O bottleneck appears as long runs of the read-wait
// mark in the first lane.
type Gantt struct {
	Title string
	// Width is the number of time buckets (default 100).
	Width int
	// From/To bound the rendered window; when both are zero the full span
	// extent is used.
	From, To float64
	Spans    []GanttSpan
}

// Render draws the chart. Lanes appear in order of first span.
func (g *Gantt) Render(w io.Writer) {
	width := g.Width
	if width <= 0 {
		width = 100
	}
	if g.Title != "" {
		fmt.Fprintf(w, "%s\n", g.Title)
	}
	if len(g.Spans) == 0 {
		fmt.Fprintf(w, "  (no spans)\n")
		return
	}
	from, to := g.From, g.To
	if from == 0 && to == 0 {
		from, to = g.Spans[0].Start, g.Spans[0].End
		for _, s := range g.Spans {
			if s.Start < from {
				from = s.Start
			}
			if s.End > to {
				to = s.End
			}
		}
	}
	if to <= from {
		fmt.Fprintf(w, "  (empty window)\n")
		return
	}
	// Stable lane order: first appearance.
	var lanes []string
	seen := map[string]int{}
	for _, s := range g.Spans {
		if _, ok := seen[s.Lane]; !ok {
			seen[s.Lane] = len(lanes)
			lanes = append(lanes, s.Lane)
		}
	}
	rows := make([][]byte, len(lanes))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / (to - from)
	// Paint later spans over earlier ones deterministically: sort by
	// (lane, start).
	spans := append([]GanttSpan(nil), g.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Lane != spans[j].Lane {
			return seen[spans[i].Lane] < seen[spans[j].Lane]
		}
		return spans[i].Start < spans[j].Start
	})
	for _, s := range spans {
		if s.End <= from || s.Start >= to {
			continue
		}
		lo := int((maxFloat(s.Start, from) - from) * scale)
		hi := int((minFloat(s.End, to) - from) * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		row := rows[seen[s.Lane]]
		for c := lo; c < hi; c++ {
			row[c] = s.Mark
		}
	}
	laneW := 0
	for _, l := range lanes {
		if len(l) > laneW {
			laneW = len(l)
		}
	}
	fmt.Fprintf(w, "  %s |%s|\n", pad("t (s)", laneW),
		timeAxis(from, to, width))
	for i, l := range lanes {
		fmt.Fprintf(w, "  %s |%s|\n", pad(l, laneW), rows[i])
	}
}

// timeAxis builds a width-character ruler labelled with the window bounds.
func timeAxis(from, to float64, width int) string {
	left := fmt.Sprintf("%.3f", from)
	right := fmt.Sprintf("%.3f", to)
	if len(left)+len(right)+2 >= width {
		return strings.Repeat("-", width)
	}
	mid := strings.Repeat("-", width-len(left)-len(right))
	return left + mid + right
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
