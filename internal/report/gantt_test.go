package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestGanttRender(t *testing.T) {
	g := &Gantt{
		Title: "pipeline schedule",
		Width: 40,
		Spans: []GanttSpan{
			{Lane: "doppler", Mark: '#', Start: 0, End: 1},
			{Lane: "doppler", Mark: '>', Start: 1, End: 1.2},
			{Lane: "cfar", Mark: '#', Start: 1.2, End: 2},
		},
	}
	var buf bytes.Buffer
	g.Render(&buf)
	out := buf.String()
	for _, want := range []string{"pipeline schedule", "doppler", "cfar", "#", ">", "0.000", "2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, axis, two lanes
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Doppler computes the first half of the window.
	dopplerRow := lines[2]
	body := dopplerRow[strings.Index(dopplerRow, "|")+1 : strings.LastIndex(dopplerRow, "|")]
	if body[0] != '#' {
		t.Errorf("doppler lane should start with compute: %q", body)
	}
	if body[len(body)-1] != '.' {
		t.Errorf("doppler lane should end idle: %q", body)
	}
	// CFAR idle at start.
	cfarRow := lines[3]
	cbody := cfarRow[strings.Index(cfarRow, "|")+1 : strings.LastIndex(cfarRow, "|")]
	if cbody[0] != '.' {
		t.Errorf("cfar lane should start idle: %q", cbody)
	}
}

func TestGanttWindow(t *testing.T) {
	g := &Gantt{
		Width: 10,
		From:  5, To: 6,
		Spans: []GanttSpan{
			{Lane: "a", Mark: 'x', Start: 0, End: 100}, // clipped to window
			{Lane: "b", Mark: 'y', Start: 0, End: 1},   // entirely outside
		},
	}
	var buf bytes.Buffer
	g.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "xxxxxxxxxx") {
		t.Errorf("span should fill the clipped window:\n%s", out)
	}
	if strings.Contains(out, "y") {
		t.Errorf("out-of-window span should not paint:\n%s", out)
	}
}

func TestGanttEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	(&Gantt{Title: "empty"}).Render(&buf)
	if !strings.Contains(buf.String(), "no spans") {
		t.Error("empty gantt should say so")
	}
	buf.Reset()
	g := &Gantt{From: 2, To: 1, Spans: []GanttSpan{{Lane: "a", Mark: 'x', Start: 0, End: 1}}}
	g.Render(&buf)
	if !strings.Contains(buf.String(), "empty window") {
		t.Error("inverted window should be reported")
	}
	// Very short span still paints one column.
	buf.Reset()
	g2 := &Gantt{Width: 10, Spans: []GanttSpan{
		{Lane: "a", Mark: 'x', Start: 0, End: 10},
		{Lane: "b", Mark: 'z', Start: 0, End: 0.0001},
	}}
	g2.Render(&buf)
	if !strings.Contains(buf.String(), "z") {
		t.Errorf("tiny span should paint one column:\n%s", buf.String())
	}
}
