package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:     "map",
		RowLabels: []string{"-1.0", "+1.0"},
		ColLabel:  "doppler",
		Values: [][]float64{
			{1, 0.1, 0.001},
			{0, 0.5, 1},
		},
	}
	var buf bytes.Buffer
	h.Render(&buf)
	out := buf.String()
	for _, want := range []string{"map", "-1.0", "+1.0", "doppler", "@"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + axis label
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Peak cell renders the brightest character; zero cell the darkest.
	row0 := lines[1]
	body := row0[strings.Index(row0, "|")+1 : strings.LastIndex(row0, "|")]
	if body[0] != '@' {
		t.Errorf("peak cell = %q, want '@' (%q)", body[0], body)
	}
	row1 := lines[2]
	body1 := row1[strings.Index(row1, "|")+1 : strings.LastIndex(row1, "|")]
	if body1[0] != ' ' {
		t.Errorf("zero cell = %q, want ' '", body1[0])
	}
}

func TestHeatmapEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	(&Heatmap{}).Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty heatmap should say so")
	}
	buf.Reset()
	(&Heatmap{Values: [][]float64{{0, 0}}}).Render(&buf)
	if !strings.Contains(buf.String(), "all zero") {
		t.Error("all-zero heatmap should say so")
	}
	buf.Reset()
	(&Heatmap{Values: [][]float64{{1, 2}, {3}}}).Render(&buf)
	if !strings.Contains(buf.String(), "ragged") {
		t.Error("ragged heatmap should be rejected")
	}
}
