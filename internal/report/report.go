// Package report renders experiment results as fixed-width text tables,
// ASCII bar charts (the paper's figures), and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV emits the table as comma-separated values with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	rows := append([][]string{t.Columns}, t.Rows...)
	for _, row := range rows {
		quoted := make([]string, len(row))
		for i, cell := range row {
			quoted[i] = csvQuote(cell)
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(quoted, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
}

// BarGroup is a labelled cluster of bars (e.g. one node-count case).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// BarChart is a grouped horizontal ASCII bar chart, the text rendering of
// the paper's figures.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar area width in characters (default 44)
	Group []BarGroup
}

// Render draws the chart. Bars are scaled to the maximum value.
func (c *BarChart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 44
	}
	var maxVal float64
	labelW := 0
	for _, g := range c.Group {
		for _, b := range g.Bars {
			if b.Value > maxVal {
				maxVal = b.Value
			}
			if len(b.Label) > labelW {
				labelW = len(b.Label)
			}
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	if maxVal <= 0 {
		fmt.Fprintf(w, "  (no data)\n")
		return
	}
	for _, g := range c.Group {
		fmt.Fprintf(w, "  %s\n", g.Label)
		for _, b := range g.Bars {
			n := int(b.Value/maxVal*float64(width) + 0.5)
			if n < 1 && b.Value > 0 {
				n = 1
			}
			fmt.Fprintf(w, "    %s |%s %.3g %s\n",
				pad(b.Label, labelW), strings.Repeat("#", n), b.Value, c.Unit)
		}
	}
}
