package experiments

import (
	"fmt"

	"stapio/internal/core"
	"stapio/internal/pipesim"
	"stapio/internal/report"
)

// OptimizedComparison is the library's extension experiment ("Table 5"):
// re-run the embedded-I/O grid with node assignments produced by the
// marginal-allocation optimiser instead of the paper-style hand
// assignment, holding each case's total node budget fixed.
type OptimizedComparison struct {
	Hand      *Grid
	Optimized *Grid
}

// RunOptimized builds and measures optimizer-assigned pipelines for every
// (setup, case) cell of the embedded design.
func RunOptimized(hand *Grid, opts pipesim.Options) (*OptimizedComparison, error) {
	if hand.Design != Embedded {
		return nil, fmt.Errorf("experiments: optimized comparison expects the embedded grid")
	}
	out := &OptimizedComparison{Hand: hand, Optimized: &Grid{Design: Embedded}}
	for _, row := range hand.Cells {
		var orow []Cell
		for _, cell := range row {
			budget := cell.Pipeline.TotalNodes()
			asg, _, err := core.OptimizeAssignment(cell.Pipeline, cell.Setup.Prof, cell.Setup.FS, budget)
			if err != nil {
				return nil, err
			}
			p, err := cell.Pipeline.Apply(asg)
			if err != nil {
				return nil, err
			}
			p.Name = cell.Pipeline.Name + "/optimized"
			res, err := pipesim.Measure(p, cell.Setup.Prof, cell.Setup.FS, opts)
			if err != nil {
				return nil, err
			}
			an, err := core.Analyze(p, cell.Setup.Prof, cell.Setup.FS)
			if err != nil {
				return nil, err
			}
			orow = append(orow, Cell{
				Setup: cell.Setup, Case: cell.Case,
				Pipeline: p, Measured: res, Analytic: an,
			})
		}
		out.Optimized.Cells = append(out.Optimized.Cells, orow)
	}
	return out, nil
}

// Table renders the hand-vs-optimized comparison.
func (oc *OptimizedComparison) Table() *report.Table {
	t := &report.Table{
		Title: "Table 5 (extension): paper-style hand assignment vs marginal-allocation optimizer, embedded I/O",
		Columns: []string{"file system", "case", "nodes",
			"thr hand", "thr opt", "gain", "lat hand (s)", "lat opt (s)"},
	}
	for si, row := range oc.Hand.Cells {
		for ci, h := range row {
			o := oc.Optimized.Cells[si][ci]
			gain := (o.Measured.Throughput/h.Measured.Throughput - 1) * 100
			t.AddRow(h.Setup.Label, h.Case.Label,
				fmt.Sprintf("%d", h.Pipeline.TotalNodes()),
				fmt.Sprintf("%.2f", h.Measured.Throughput),
				fmt.Sprintf("%.2f", o.Measured.Throughput),
				fmt.Sprintf("%+.0f%%", gain),
				fmt.Sprintf("%.3f", h.Measured.Latency),
				fmt.Sprintf("%.3f", o.Measured.Latency),
			)
		}
	}
	return t
}
