package experiments

import (
	"strings"
	"testing"
)

func TestFaultSweepShape(t *testing.T) {
	rates := []float64{0, 0.05}
	sw, err := RunFaultSweep(rates, 42, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 2 {
		t.Fatalf("want the two Paragon PFS rows, got %d", len(sw.Cells))
	}
	for _, row := range sw.Cells {
		if len(row) != len(rates) {
			t.Fatalf("row has %d cells, want %d", len(row), len(rates))
		}
		healthy, faulty := row[0], row[1]
		if healthy.Measured.FaultRetries != 0 {
			t.Errorf("%s: healthy cell reports %d retries", healthy.Setup.Label, healthy.Measured.FaultRetries)
		}
		if faulty.Measured.FaultRetries == 0 {
			t.Errorf("%s: faulty cell reports no retries", faulty.Setup.Label)
		}
		if faulty.Measured.Throughput >= healthy.Measured.Throughput {
			t.Errorf("%s: faults did not cost throughput (%.3f vs %.3f)",
				faulty.Setup.Label, faulty.Measured.Throughput, healthy.Measured.Throughput)
		}
	}
	// The wider stripe spreads the re-served requests across more servers,
	// so it holds more of its healthy throughput — the paper's stripe-factor
	// argument extended to degraded servers.
	rel16 := sw.Cells[0][1].Measured.Throughput / sw.Cells[0][0].Measured.Throughput
	rel64 := sw.Cells[1][1].Measured.Throughput / sw.Cells[1][0].Measured.Throughput
	if rel64 <= rel16 {
		t.Errorf("stripe 64 should degrade more gracefully: kept %.1f%% vs stripe 16's %.1f%%",
			100*rel64, 100*rel16)
	}
	tbl := FaultTable(sw, "Table 6")
	if len(tbl.Rows) != 4 {
		t.Errorf("table has %d rows, want 4", len(tbl.Rows))
	}
	var b strings.Builder
	tbl.Render(&b)
	if !strings.Contains(b.String(), "fault rate") {
		t.Error("rendered table missing the fault-rate column")
	}
}
