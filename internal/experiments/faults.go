package experiments

import (
	"fmt"

	"stapio/internal/pfs"
	"stapio/internal/pipesim"
	"stapio/internal/report"
)

// The paper evaluates the I/O designs on healthy stripe servers. This
// extension asks what the same pipeline delivers when servers degrade: a
// deterministic fault plan makes a fraction of stripe requests fail (the
// server re-serves them, pricing a retry with backoff) or run slow, and the
// sweep measures throughput and latency as that fraction grows. Because the
// paper's bottleneck task is the one exposed to the file system, injected
// stripe faults translate directly into pipeline-rate loss — the sweep
// quantifies how quickly.

// DefaultFaultRates are the sweep points of the fault-injection table.
func DefaultFaultRates() []float64 { return []float64{0, 0.01, 0.02, 0.05, 0.10} }

// FaultCell is one (setup, fault-rate) measurement of the sweep.
type FaultCell struct {
	Setup Setup
	// Rate is the per-stripe-request fail and slow probability injected.
	Rate     float64
	Measured *pipesim.Result
}

// FaultSweep is the fault-injection measurement grid: the two Paragon PFS
// columns of the paper's tables, swept over fault rates at one node case.
type FaultSweep struct {
	Case  Case
	Rates []float64
	Cells [][]FaultCell // [setup][rate]
}

// RunFaultSweep measures the embedded-I/O pipeline at the paper's largest
// node case (case 3, 200 compute nodes — the configuration where the file
// system is the bottleneck) across fault rates on both Paragon PFS stripe
// factors. Each rate injects the same seeded plan, so the sweep is
// reproducible run to run.
func RunFaultSweep(rates []float64, seed int64, opts pipesim.Options) (*FaultSweep, error) {
	if len(rates) == 0 {
		rates = DefaultFaultRates()
	}
	c := Cases()[2]
	sweep := &FaultSweep{Case: c, Rates: rates}
	for _, s := range Setups()[:2] {
		var row []FaultCell
		for _, rate := range rates {
			p, err := Build(Embedded, c.Scale)
			if err != nil {
				return nil, err
			}
			o := opts
			if rate > 0 {
				o.Faults = &pfs.FaultPlan{Seed: seed, FailRate: rate, SlowRate: rate}
			}
			res, err := pipesim.Measure(p, s.Prof, s.FS, o)
			if err != nil {
				return nil, fmt.Errorf("experiments: fault sweep %s rate %.2f: %w", s.Label, rate, err)
			}
			row = append(row, FaultCell{Setup: s, Rate: rate, Measured: res})
		}
		sweep.Cells = append(sweep.Cells, row)
	}
	return sweep, nil
}

// FaultTable renders the sweep as Table 6: throughput and latency versus
// injected fault rate, with the degradation relative to the healthy run.
func FaultTable(sw *FaultSweep, title string) *report.Table {
	t := &report.Table{
		Title: title,
		Columns: []string{"file system", "fault rate", "throughput (CPIs/s)",
			"vs healthy", "latency (s)", "latency p95 (s)", "stripe retries"},
	}
	for _, row := range sw.Cells {
		base := row[0].Measured.Throughput
		for _, cell := range row {
			rel := "100.0%"
			if base > 0 && cell.Rate > 0 {
				rel = fmt.Sprintf("%.1f%%", 100*cell.Measured.Throughput/base)
			}
			t.AddRow(cell.Setup.Label,
				fmt.Sprintf("%.0f%%", 100*cell.Rate),
				fmt.Sprintf("%.2f", cell.Measured.Throughput),
				rel,
				fmtS(cell.Measured.Latency),
				fmtS(cell.Measured.LatencyP95),
				fmt.Sprintf("%d", cell.Measured.FaultRetries))
		}
	}
	return t
}
