package experiments

import (
	"fmt"
	"io"

	"stapio/internal/pipesim"
	"stapio/internal/report"
)

// PhaseMarks maps each traced phase to its Gantt character.
var PhaseMarks = map[pipesim.Phase]byte{
	pipesim.PhaseReadWait:  'r',
	pipesim.PhaseRecv:      '=',
	pipesim.PhaseCompute:   '#',
	pipesim.PhaseSend:      '>',
	pipesim.PhaseWriteWait: 'w',
}

// WriteTimelineCSV emits the traced spans as CSV (task, cpi, phase,
// start, end) for external plotting tools.
func WriteTimelineCSV(w io.Writer, res *pipesim.Result) error {
	if _, err := fmt.Fprintln(w, "task,cpi,phase,start,end"); err != nil {
		return err
	}
	for _, s := range res.Timeline {
		if _, err := fmt.Fprintf(w, "%q,%d,%s,%.9f,%.9f\n",
			s.Task, s.CPI, s.Phase, s.Start, s.End); err != nil {
			return err
		}
	}
	return nil
}

// TimelineChart converts a traced simulation result into an ASCII Gantt
// chart over [from, to] (full extent when both are zero). Legend:
// r = waiting on the parallel read, = receive, # compute, > send,
// w = waiting on the report write, . idle.
func TimelineChart(res *pipesim.Result, title string, from, to float64) *report.Gantt {
	g := &report.Gantt{Title: title, From: from, To: to}
	for _, s := range res.Timeline {
		mark, ok := PhaseMarks[s.Phase]
		if !ok {
			mark = '?'
		}
		g.Spans = append(g.Spans, report.GanttSpan{
			Lane:  s.Task,
			Mark:  mark,
			Start: s.Start,
			End:   s.End,
		})
	}
	return g
}
