package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"stapio/internal/pipesim"
	"stapio/internal/report"
)

// grids are expensive enough to share across assertions.
var (
	gridEmbedded *Grid
	gridSeparate *Grid
	gridCombined *Grid
)

func grids(t *testing.T) (*Grid, *Grid, *Grid) {
	t.Helper()
	if gridEmbedded == nil {
		var err error
		opts := QuickOptions()
		if gridEmbedded, err = RunGrid(Embedded, opts); err != nil {
			t.Fatal(err)
		}
		if gridSeparate, err = RunGrid(Separate, opts); err != nil {
			t.Fatal(err)
		}
		if gridCombined, err = RunGrid(Combined, opts); err != nil {
			t.Fatal(err)
		}
	}
	return gridEmbedded, gridSeparate, gridCombined
}

// setup indices into the grid rows.
const (
	iPFS16 = 0
	iPFS64 = 1
	iPIOFS = 2
)

func TestGridGeometry(t *testing.T) {
	emb, sep, comb := grids(t)
	for _, g := range []*Grid{emb, sep, comb} {
		if len(g.Cells) != 3 {
			t.Fatalf("%s: %d setups, want 3", g.Design, len(g.Cells))
		}
		for _, row := range g.Cells {
			if len(row) != 3 {
				t.Fatalf("%s: %d cases, want 3", g.Design, len(row))
			}
		}
	}
	if n := emb.Cells[iPFS16][0].Pipeline.TotalNodes(); n != 50 {
		t.Errorf("embedded case 1 total nodes = %d, want 50", n)
	}
	if n := sep.Cells[iPFS16][0].Pipeline.TotalNodes(); n != 58 {
		t.Errorf("separate case 1 total nodes = %d, want 58", n)
	}
	if n := comb.Cells[iPFS16][2].Pipeline.TotalNodes(); n != 200 {
		t.Errorf("combined case 3 total nodes = %d, want 200", n)
	}
}

// Shape 1 (DESIGN.md): PFS-64 scales ~linearly in throughput and latency.
func TestShapePFS64Scales(t *testing.T) {
	emb, _, _ := grids(t)
	row := emb.Cells[iPFS64]
	if r := row[1].Measured.Throughput / row[0].Measured.Throughput; r < 1.8 {
		t.Errorf("case1->2 throughput ratio %.2f, want >= 1.8", r)
	}
	if r := row[2].Measured.Throughput / row[1].Measured.Throughput; r < 1.7 {
		t.Errorf("case2->3 throughput ratio %.2f, want >= 1.7", r)
	}
	if r := row[0].Measured.Latency / row[2].Measured.Latency; r < 2.5 {
		t.Errorf("latency case1/case3 ratio %.2f, want >= 2.5", r)
	}
}

// Shape 2: PFS-16 bottlenecks at 200 nodes; relieved by PFS-64.
func TestShapeIOBottleneck(t *testing.T) {
	emb, _, _ := grids(t)
	r16, r64 := emb.Cells[iPFS16], emb.Cells[iPFS64]
	for c := 0; c < 2; c++ {
		rel := math.Abs(r16[c].Measured.Throughput-r64[c].Measured.Throughput) / r64[c].Measured.Throughput
		if rel > 0.05 {
			t.Errorf("case %d: stripe factors should match before the bottleneck (%.1f%% apart)", c+1, rel*100)
		}
	}
	if r16[2].Measured.Throughput > 0.8*r64[2].Measured.Throughput {
		t.Errorf("case 3: PFS-16 %.2f vs PFS-64 %.2f — bottleneck missing",
			r16[2].Measured.Throughput, r64[2].Measured.Throughput)
	}
	// The Doppler task's read-wait phase reveals the bottleneck.
	if r16[2].Measured.Tasks[0].ReadWait < 10*r64[2].Measured.Tasks[0].ReadWait {
		t.Error("case 3 PFS-16 should expose a large read-wait phase")
	}
}

// Shape 3: latency only mildly affected by the bottleneck.
func TestShapeLatencyMildlyAffected(t *testing.T) {
	emb, _, _ := grids(t)
	l16 := emb.Cells[iPFS16][2].Measured.Latency
	l64 := emb.Cells[iPFS64][2].Measured.Latency
	if l16 <= l64 {
		t.Errorf("PFS-16 latency %.3f should slightly exceed PFS-64 %.3f", l16, l64)
	}
	if l16 > 1.6*l64 {
		t.Errorf("latency inflated %.2fx — should be mild", l16/l64)
	}
}

// Shape 4: PIOFS (no async I/O) scales worse than Paragon PFS-64 despite
// faster CPUs.
func TestShapePIOFSPoorScaling(t *testing.T) {
	emb, _, _ := grids(t)
	piofs := emb.Cells[iPIOFS]
	pfs64 := emb.Cells[iPFS64]
	scaleSP := piofs[2].Measured.Throughput / piofs[0].Measured.Throughput
	scalePG := pfs64[2].Measured.Throughput / pfs64[0].Measured.Throughput
	if scaleSP >= scalePG {
		t.Errorf("SP scaling %.2fx should trail Paragon %.2fx", scaleSP, scalePG)
	}
	if scaleSP > 2.5 {
		t.Errorf("SP throughput scaling %.2fx too good for synchronous I/O", scaleSP)
	}
}

// Shape 5: separate I/O task — throughput about the same (on the async
// machine), latency strictly worse everywhere.
func TestShapeSeparateIO(t *testing.T) {
	emb, sep, _ := grids(t)
	for _, si := range []int{iPFS16, iPFS64} {
		for ci := range emb.Cells[si] {
			e, s := emb.Cells[si][ci].Measured, sep.Cells[si][ci].Measured
			if rel := math.Abs(e.Throughput-s.Throughput) / e.Throughput; rel > 0.07 {
				t.Errorf("setup %d case %d: throughput differs %.1f%%", si, ci, rel*100)
			}
		}
	}
	for si := range emb.Cells {
		for ci := range emb.Cells[si] {
			e, s := emb.Cells[si][ci].Measured, sep.Cells[si][ci].Measured
			if s.Latency <= e.Latency {
				t.Errorf("setup %d case %d: separate latency %.3f not worse than embedded %.3f",
					si, ci, s.Latency, e.Latency)
			}
		}
	}
}

// Documented deviation (EXPERIMENTS.md): on the synchronous PIOFS, the
// separate-task design restores the pipelining that embedded sync reads
// forfeit, so its throughput may exceed embedded at the larger cases. Pin
// the behaviour so a model change that silently flips it is caught.
func TestShapePIOFSSeparateDeviation(t *testing.T) {
	emb, sep, _ := grids(t)
	for ci := 1; ci < 3; ci++ {
		e := emb.Cells[iPIOFS][ci].Measured.Throughput
		s := sep.Cells[iPIOFS][ci].Measured.Throughput
		if s < e*0.95 {
			t.Errorf("case %d: PIOFS separate %.2f unexpectedly below embedded %.2f", ci+1, s, e)
		}
	}
}

// Shape 6: task combination improves latency in every cell, keeps
// throughput, and the improvement percentage decreases with node count.
func TestShapeTaskCombination(t *testing.T) {
	emb, _, comb := grids(t)
	for si := range emb.Cells {
		prev := math.Inf(1)
		for ci := range emb.Cells[si] {
			e, c := emb.Cells[si][ci].Measured, comb.Cells[si][ci].Measured
			if c.Latency >= e.Latency {
				t.Errorf("setup %d case %d: combining did not improve latency", si, ci)
			}
			if c.Throughput < 0.99*e.Throughput {
				t.Errorf("setup %d case %d: combining hurt throughput", si, ci)
			}
			imp := (e.Latency - c.Latency) / e.Latency
			if imp >= prev {
				t.Errorf("setup %d: improvement did not decrease at case %d (%.1f%% after %.1f%%)",
					si, ci, imp*100, prev*100)
			}
			prev = imp
			// The paper's Table 4 band: improvements of roughly 4-12%.
			if imp < 0.02 || imp > 0.20 {
				t.Errorf("setup %d case %d: improvement %.1f%% outside the plausible band", si, ci, imp*100)
			}
		}
	}
}

// Shape 7: the DES agrees with the analytic equations when the file system
// is not the bottleneck.
func TestShapeAnalyticAgreement(t *testing.T) {
	emb, sep, comb := grids(t)
	for _, g := range []*Grid{emb, sep, comb} {
		for _, si := range []int{iPFS64} {
			for ci := range g.Cells[si] {
				cell := g.Cells[si][ci]
				m, a := cell.Measured, cell.Analytic
				if rel := math.Abs(m.Throughput-a.Throughput) / a.Throughput; rel > 0.05 {
					t.Errorf("%s setup %d case %d: throughput DES %.2f vs analytic %.2f",
						g.Design, si, ci, m.Throughput, a.Throughput)
				}
				if rel := math.Abs(m.Latency-a.Latency) / a.Latency; rel > 0.10 {
					t.Errorf("%s setup %d case %d: latency DES %.3f vs analytic %.3f",
						g.Design, si, ci, m.Latency, a.Latency)
				}
			}
		}
	}
}

func TestTablesRender(t *testing.T) {
	emb, sep, comb := grids(t)
	var buf bytes.Buffer
	t1 := TaskTable(emb, "Table 1")
	t1.Render(&buf)
	if !strings.Contains(buf.String(), "Doppler filter") {
		t.Error("Table 1 missing Doppler row")
	}
	// 3 setups x 3 cases x (7 tasks + 2 summary rows).
	if got, want := len(t1.Rows), 3*3*9; got != want {
		t.Errorf("Table 1 rows = %d, want %d", got, want)
	}
	t2 := TaskTable(sep, "Table 2")
	if got, want := len(t2.Rows), 3*3*10; got != want {
		t.Errorf("Table 2 rows = %d, want %d", got, want)
	}
	t3 := TaskTable(comb, "Table 3")
	if got, want := len(t3.Rows), 3*3*8; got != want {
		t.Errorf("Table 3 rows = %d, want %d", got, want)
	}
	if !strings.Contains(tableString(t3), "pulse compr+CFAR") {
		t.Error("Table 3 missing combined task row")
	}
	t4, err := ImprovementTable(emb, comb)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 3 {
		t.Errorf("Table 4 rows = %d, want 3", len(t4.Rows))
	}
	if !strings.Contains(tableString(t4), "%") {
		t.Error("Table 4 missing percentages")
	}
	sum := SummaryTable(emb, "summary")
	if len(sum.Rows) != 9 {
		t.Errorf("summary rows = %d, want 9", len(sum.Rows))
	}
}

func tableString(t *report.Table) string {
	var buf bytes.Buffer
	t.Render(&buf)
	return buf.String()
}

func TestFiguresRender(t *testing.T) {
	emb, _, comb := grids(t)
	thr, lat := Figure(emb, "Figure 5")
	var buf bytes.Buffer
	thr.Render(&buf)
	lat.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 5", "CPIs/s", "case 3", "Paragon PFS stripe=64"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q", want)
		}
	}
	f8t, f8l := Figure8(emb, comb)
	buf.Reset()
	f8t.Render(&buf)
	f8l.Render(&buf)
	if !strings.Contains(buf.String(), "7 tasks") || !strings.Contains(buf.String(), "6 tasks") {
		t.Error("Figure 8 missing task-count bars")
	}
}

// TestTableValuesMatchCells verifies the rendered tables carry exactly the
// measured values (no formatting drift between cells and rows).
func TestTableValuesMatchCells(t *testing.T) {
	emb, _, _ := grids(t)
	sum := SummaryTable(emb, "s")
	idx := 0
	for _, row := range emb.Cells {
		for _, cell := range row {
			r := sum.Rows[idx]
			if r[0] != cell.Setup.Label || r[1] != cell.Case.Label {
				t.Fatalf("row %d labels %v mismatch cell %s/%s", idx, r[:2], cell.Setup.Label, cell.Case.Label)
			}
			if want := fmt.Sprintf("%.2f", cell.Measured.Throughput); r[3] != want {
				t.Errorf("row %d throughput %q, want %q", idx, r[3], want)
			}
			if want := fmt.Sprintf("%.3f", cell.Measured.Latency); r[4] != want {
				t.Errorf("row %d latency %q, want %q", idx, r[4], want)
			}
			idx++
		}
	}
}

// TestOptimizedComparison runs the extension experiment: optimizer
// assignments never lose to the hand assignment at the same budget.
func TestOptimizedComparison(t *testing.T) {
	emb, _, _ := grids(t)
	oc, err := RunOptimized(emb, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for si, row := range oc.Hand.Cells {
		for ci, h := range row {
			o := oc.Optimized.Cells[si][ci]
			if o.Pipeline.TotalNodes() > h.Pipeline.TotalNodes() {
				t.Errorf("cell %d/%d: optimizer used more nodes (%d > %d)",
					si, ci, o.Pipeline.TotalNodes(), h.Pipeline.TotalNodes())
			}
			if o.Measured.Throughput < h.Measured.Throughput*0.98 {
				t.Errorf("cell %d/%d: optimized throughput %.2f below hand %.2f",
					si, ci, o.Measured.Throughput, h.Measured.Throughput)
			}
		}
	}
	tbl := oc.Table()
	if len(tbl.Rows) != 9 {
		t.Errorf("Table 5 rows = %d, want 9", len(tbl.Rows))
	}
	if !strings.Contains(tableString(tbl), "optimizer") {
		t.Error("Table 5 title missing")
	}
	// Wrong-grid input is rejected.
	_, sep, _ := grids(t)
	if _, err := RunOptimized(sep, QuickOptions()); err == nil {
		t.Error("expected rejection of non-embedded grid")
	}
}

func TestTimelineChartAndCSV(t *testing.T) {
	p, err := Build(Embedded, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Setups()[1]
	opts := QuickOptions()
	opts.Trace = true
	res, err := pipesim.Run(p, s.Prof, s.FS, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := TimelineChart(res, "t", 0, 0)
	var buf bytes.Buffer
	g.Render(&buf)
	if !strings.Contains(buf.String(), "Doppler filter") {
		t.Error("chart missing Doppler lane")
	}
	buf.Reset()
	if err := WriteTimelineCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "task,cpi,phase,start,end" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != len(res.Timeline)+1 {
		t.Errorf("CSV rows = %d, want %d", len(lines)-1, len(res.Timeline))
	}
	if !strings.Contains(buf.String(), "compute") {
		t.Error("CSV missing compute phases")
	}
}

func TestBuildDesigns(t *testing.T) {
	for _, d := range []Design{Embedded, Separate, Combined} {
		p, err := Build(d, 1)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
	if _, err := Build(Design(99), 1); err == nil {
		t.Error("expected error for unknown design")
	}
	if Design(99).String() == "" {
		t.Error("Design.String should never be empty")
	}
}
