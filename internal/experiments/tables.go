package experiments

import (
	"fmt"

	"stapio/internal/report"
)

// fmtS formats seconds with millisecond resolution.
func fmtS(v float64) string { return fmt.Sprintf("%.3f", v) }

// TaskTable renders one grid as the paper's Table 1/2/3 layout: for each
// file system column and each node case, the per-task node counts and
// phase times, then the throughput and latency summary rows.
func TaskTable(g *Grid, title string) *report.Table {
	t := &report.Table{
		Title:   title,
		Columns: []string{"file system", "case", "task", "nodes", "read wait (s)", "recv (s)", "compute (s)", "send (s)", "total (s)"},
	}
	for _, row := range g.Cells {
		for _, cell := range row {
			for _, ts := range cell.Measured.Tasks {
				t.AddRow(
					cell.Setup.Label, cell.Case.Label, ts.Name,
					fmt.Sprintf("%d", ts.Nodes),
					fmtS(ts.ReadWait), fmtS(ts.Recv), fmtS(ts.Compute), fmtS(ts.Send),
					fmtS(ts.Service),
				)
			}
			t.AddRow(cell.Setup.Label, cell.Case.Label, "throughput (CPIs/s)", "",
				"", "", "", "", fmt.Sprintf("%.2f", cell.Measured.Throughput))
			t.AddRow(cell.Setup.Label, cell.Case.Label, "latency (s)", "",
				"", "", "", "", fmtS(cell.Measured.Latency))
		}
	}
	return t
}

// SummaryTable renders just throughput and latency per (setup, case).
func SummaryTable(g *Grid, title string) *report.Table {
	t := &report.Table{
		Title:   title,
		Columns: []string{"file system", "case", "nodes", "throughput (CPIs/s)", "latency (s)"},
	}
	for _, row := range g.Cells {
		for _, cell := range row {
			t.AddRow(cell.Setup.Label, cell.Case.Label,
				fmt.Sprintf("%d", cell.Pipeline.TotalNodes()),
				fmt.Sprintf("%.2f", cell.Measured.Throughput),
				fmtS(cell.Measured.Latency))
		}
	}
	return t
}

// ImprovementTable computes the paper's Table 4: the percentage latency
// improvement of the combined design over the embedded design, per file
// system and case.
func ImprovementTable(embedded, combined *Grid) (*report.Table, error) {
	if len(embedded.Cells) != len(combined.Cells) {
		return nil, fmt.Errorf("experiments: grid shapes differ")
	}
	t := &report.Table{
		Title:   "Table 4: percentage of latency improvement when pulse compression and CFAR are combined",
		Columns: []string{"file system", "case 1 (50)", "case 2 (100)", "case 3 (200)"},
	}
	for i, row := range embedded.Cells {
		cells := []string{row[0].Setup.Label}
		for j, e := range row {
			c := combined.Cells[i][j]
			imp := 100 * (e.Measured.Latency - c.Measured.Latency) / e.Measured.Latency
			cells = append(cells, fmt.Sprintf("%.1f%%", imp))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Figure renders the paper's bar-chart figures for one grid: a throughput
// chart and a latency chart (Figures 5, 6, 7).
func Figure(g *Grid, title string) (throughput, latency *report.BarChart) {
	throughput = &report.BarChart{Title: title + " — throughput", Unit: "CPIs/s"}
	latency = &report.BarChart{Title: title + " — latency", Unit: "s"}
	for ci := range Cases() {
		tg := report.BarGroup{Label: Cases()[ci].Label}
		lg := report.BarGroup{Label: Cases()[ci].Label}
		for si := range g.Cells {
			cell := g.Cells[si][ci]
			tg.Bars = append(tg.Bars, report.Bar{Label: cell.Setup.Label, Value: cell.Measured.Throughput})
			lg.Bars = append(lg.Bars, report.Bar{Label: cell.Setup.Label, Value: cell.Measured.Latency})
		}
		throughput.Group = append(throughput.Group, tg)
		latency.Group = append(latency.Group, lg)
	}
	return throughput, latency
}

// Figure8 renders the with/without-combining comparison across the grid.
func Figure8(embedded, combined *Grid) (throughput, latency *report.BarChart) {
	throughput = &report.BarChart{Title: "Figure 8 — throughput, 7 tasks vs 6 tasks (combined)", Unit: "CPIs/s"}
	latency = &report.BarChart{Title: "Figure 8 — latency, 7 tasks vs 6 tasks (combined)", Unit: "s"}
	for si, row := range embedded.Cells {
		for ci, e := range row {
			c := combined.Cells[si][ci]
			label := fmt.Sprintf("%s, %s", e.Setup.Label, e.Case.Label)
			throughput.Group = append(throughput.Group, report.BarGroup{
				Label: label,
				Bars: []report.Bar{
					{Label: "7 tasks", Value: e.Measured.Throughput},
					{Label: "6 tasks", Value: c.Measured.Throughput},
				},
			})
			latency.Group = append(latency.Group, report.BarGroup{
				Label: label,
				Bars: []report.Bar{
					{Label: "7 tasks", Value: e.Measured.Latency},
					{Label: "6 tasks", Value: c.Measured.Latency},
				},
			})
		}
	}
	return throughput, latency
}
