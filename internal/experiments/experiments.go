// Package experiments defines the paper's evaluation grid — three parallel
// file system configurations times three node-assignment cases times the
// I/O designs — and regenerates every table and figure of the evaluation
// section:
//
//	Table 1 / Figure 5 — I/O embedded in the Doppler filter task
//	Table 2 / Figure 6 — a separate parallel-read task
//	Table 3 / Figure 7 — pulse compression + CFAR combined
//	Table 4           — percentage latency improvement from combining
//	Figure 8          — 7-task vs 6-task comparison across the grid
//
// The numeric parameters (cube geometry, stripe factors, node counts) are
// the reconstructions documented in DESIGN.md; all qualitative claims of
// the paper are asserted over these grids in shape_test.go.
package experiments

import (
	"fmt"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/pipesim"
	"stapio/internal/stap"
)

// Setup is one machine + file system column of the paper's tables.
type Setup struct {
	// Label identifies the column, e.g. "Paragon PFS stripe=16".
	Label string
	Prof  machine.Profile
	FS    pfs.Config
}

// Setups returns the paper's three evaluation columns.
func Setups() []Setup {
	return []Setup{
		{Label: "Paragon PFS stripe=16", Prof: machine.Paragon(), FS: pfs.ParagonPFS(16)},
		{Label: "Paragon PFS stripe=64", Prof: machine.Paragon(), FS: pfs.ParagonPFS(64)},
		{Label: "SP PIOFS stripe=80", Prof: machine.SP(), FS: pfs.PIOFS()},
	}
}

// Case is one node-assignment row group ("each doubles the number of nodes
// of another").
type Case struct {
	Label string
	Scale int
}

// Cases returns the paper's three cases: 50, 100, and 200 compute nodes.
func Cases() []Case {
	return []Case{
		{Label: "case 1: 50 compute nodes", Scale: 1},
		{Label: "case 2: 100 compute nodes", Scale: 2},
		{Label: "case 3: 200 compute nodes", Scale: 4},
	}
}

// PaperParams returns the reconstructed STAP processing parameters: a
// 16 x 128 x 1024 cube, 16 MiB per CPI file.
func PaperParams() stap.Params {
	return stap.DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
}

// BaseNodes returns the case-1 node assignment (50 compute nodes + 8 I/O
// nodes for the separate design), proportioned to the task workloads so
// the Doppler filter task determines the throughput — consistent with the
// paper's observation that the bottleneck task is neither pulse
// compression nor CFAR and is the task whose receive phase exposes the
// I/O bottleneck.
func BaseNodes() core.STAPNodes {
	return core.STAPNodes{
		Doppler: 16, EasyWeight: 2, HardWeight: 3,
		EasyBF: 8, HardBF: 4, PulseComp: 14, CFAR: 3,
		IO: 8,
	}
}

// Design selects the pipeline variant.
type Design int

const (
	// Embedded is the paper's first I/O design (Table 1).
	Embedded Design = iota
	// Separate is the second design with a dedicated read task (Table 2).
	Separate
	// Combined is the embedded design with pulse compression and CFAR
	// merged (Table 3).
	Combined
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case Embedded:
		return "embedded I/O"
	case Separate:
		return "separate I/O task"
	case Combined:
		return "PC+CFAR combined"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// Build constructs the pipeline for a design at a node scale.
func Build(d Design, scale int) (*core.Pipeline, error) {
	p := PaperParams()
	w := stap.ComputeWorkloads(&p)
	n := BaseNodes().Scale(scale)
	switch d {
	case Embedded:
		return core.BuildEmbedded(w, n)
	case Separate:
		return core.BuildSeparate(w, n)
	case Combined:
		emb, err := core.BuildEmbedded(w, n)
		if err != nil {
			return nil, err
		}
		return core.CombinePCCFAR(emb)
	default:
		return nil, fmt.Errorf("experiments: unknown design %d", int(d))
	}
}

// Cell is one (setup, case) measurement.
type Cell struct {
	Setup    Setup
	Case     Case
	Pipeline *core.Pipeline
	// Measured is the discrete-event simulation result (two-phase
	// protocol: free-run throughput, radar-paced latency).
	Measured *pipesim.Result
	// Analytic is the closed-form model prediction for cross-checking.
	Analytic *core.Analysis
}

// Grid is the full 3x3 measurement grid for one design.
type Grid struct {
	Design Design
	Cells  [][]Cell // [setup][case]
}

// RunGrid measures a design across all setups and cases.
func RunGrid(d Design, opts pipesim.Options) (*Grid, error) {
	g := &Grid{Design: d}
	for _, s := range Setups() {
		var row []Cell
		for _, c := range Cases() {
			p, err := Build(d, c.Scale)
			if err != nil {
				return nil, err
			}
			res, err := pipesim.Measure(p, s.Prof, s.FS, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s / %s / %s: %w", d, s.Label, c.Label, err)
			}
			an, err := core.Analyze(p, s.Prof, s.FS)
			if err != nil {
				return nil, err
			}
			row = append(row, Cell{Setup: s, Case: c, Pipeline: p, Measured: res, Analytic: an})
		}
		g.Cells = append(g.Cells, row)
	}
	return g, nil
}

// QuickOptions returns simulation options sized for tests: fewer CPIs than
// DefaultOptions but still past the pipeline fill.
func QuickOptions() pipesim.Options {
	return pipesim.Options{CPIs: 30, Warmup: 8, PrefetchDepth: 1, BufferDepth: 2}
}
