package serve

import (
	"context"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/tune"
)

// BenchmarkServeLoopback measures the sustained end-to-end CPI rate of the
// detection service over loopback TCP: one closed-loop producer replaying
// pre-encoded small-scenario cubes against an in-process server. This is
// the networked counterpart of BenchmarkRealPipelineReadahead — the
// difference between the two is the cost of the wire.
func BenchmarkServeLoopback(b *testing.B) {
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1
	cfg.MaxInFlight = 32
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	frames, err := radar.EncodeCPIs(s, 8, testChunkSize)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := Dial(srv.Addr().String(), Options{Dims: s.Dims, ResultBuffer: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	window := cl.MaxInFlight()
	// Rotate a fixed set of frame buffers: one per in-flight slot, returned
	// when the slot's result arrives, so the producer allocates nothing.
	bufs := make(chan []byte, window)
	for i := 0; i < window; i++ {
		bufs <- make([]byte, len(frames[0]))
	}
	var mu sync.Mutex
	inFlight := make(map[uint64][]byte, window)
	done := make(chan error, 1)
	go func() {
		got := 0
		for r := range cl.Results() {
			if r.Err != nil {
				done <- r.Err
				return
			}
			mu.Lock()
			buf := inFlight[r.Seq]
			delete(inFlight, r.Seq)
			mu.Unlock()
			bufs <- buf
			if got++; got == b.N {
				done <- nil
				return
			}
		}
	}()

	b.ResetTimer()
	start := time.Now()
	for seq := 0; seq < b.N; seq++ {
		buf := <-bufs
		buf = append(buf[:0], frames[seq%len(frames)]...)
		if err := cube.PatchSeq(buf, uint64(seq)); err != nil {
			b.Fatal(err)
		}
		mu.Lock()
		inFlight[uint64(seq)] = buf
		mu.Unlock()
		if _, err := cl.Submit(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "CPIs/s")
}

// benchLoopbackFixed drives a fixed number of CPIs closed-loop through one
// replica per b.N iteration and reports the sustained rate of the last
// iteration. The fixed count (rather than b.N CPIs total) keeps
// `-benchtime 1x` meaningful — one iteration is one full 512-CPI run —
// which is how bench7 records the framed-vs-streamed comparison.
func benchLoopbackFixed(b *testing.B, streaming bool) {
	const n = 512
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1
	cfg.MaxInFlight = 32
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	frames, err := radar.EncodeCPIs(s, 8, testChunkSize)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := Dial(srv.Addr().String(), Options{Dims: s.Dims, ResultBuffer: 64, Streaming: streaming})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	window := cl.MaxInFlight()
	bufs := make(chan []byte, window)
	for i := 0; i < window; i++ {
		bufs <- make([]byte, len(frames[0]))
	}
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var mu sync.Mutex
		inFlight := make(map[uint64][]byte, window)
		done := make(chan error, 1)
		go func() {
			got := 0
			for r := range cl.Results() {
				if r.Err != nil {
					done <- r.Err
					return
				}
				mu.Lock()
				buf := inFlight[r.Seq]
				delete(inFlight, r.Seq)
				mu.Unlock()
				bufs <- buf
				if got++; got == n {
					done <- nil
					return
				}
			}
		}()
		start := time.Now()
		for seq := 0; seq < n; seq++ {
			buf := <-bufs
			buf = append(buf[:0], frames[seq%len(frames)]...)
			if err := cube.PatchSeq(buf, uint64(i*n+seq)); err != nil {
				b.Fatal(err)
			}
			mu.Lock()
			inFlight[uint64(i*n+seq)] = buf
			mu.Unlock()
			if _, err := cl.Submit(buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		rate = float64(n) / time.Since(start).Seconds()
	}
	b.StopTimer()
	b.ReportMetric(rate, "CPIs/s")
	if streamed := srv.Stats().StreamedCPIs; streaming && streamed < int64(n*b.N) {
		b.Fatalf("only %d of %d CPIs took the streaming path", streamed, n*b.N)
	}
}

// BenchmarkServeFramedLoopback is the framed-submit baseline at a fixed
// CPI count — the BENCH_4-comparable path, now decoding submissions
// through the replica's pooled slabs instead of an assembled cube copy.
func BenchmarkServeFramedLoopback(b *testing.B) { benchLoopbackFixed(b, false) }

// BenchmarkServeStreamLoopback is the same producer over streamed ingest:
// every cube crosses the wire as header + chunk frames in one vectored
// write and decodes straight from the connection read buffer into the
// replica's pooled slab — no file image is ever assembled server-side.
func BenchmarkServeStreamLoopback(b *testing.B) { benchLoopbackFixed(b, true) }

// BenchmarkServeStreamAutotune is the slow-producer streaming scenario
// behind BENCH_7.json: several paced producers stream cubes chunk-by-chunk
// into one autotuned replica that starts cold at ingest depth 1. The
// producers connect over synchronous in-process pipes (see pipeListener),
// so ChunkPace is wire time the server actually experiences — kernel
// socket buffering cannot absorb a slow producer's pace, and the ingest
// gate's admission decisions are the only source of upload overlap. Cold,
// the gate admits one upload at a time and the replica is transfer-bound;
// the joint I/O + compute solve must discover that budget slots are worth
// more as ingest depth than as compute workers and grow the window until
// uploads overlap. "cold-CPIs/s" is the arrival rate over the first eighth
// of the run (the tuner is still warming up there), "warm-CPIs/s" over the
// last quarter, and "warmup-x" their ratio — the tuner's convergence gain.
// Each iteration runs a fixed CPI count against a fresh cold server, so
// -benchtime 1x measures exactly one run.
func BenchmarkServeStreamAutotune(b *testing.B) {
	const (
		producers = 8
		n         = 128
		pace      = 800 * time.Microsecond // 16 chunks -> ~13ms of wire time per upload
	)
	s := radar.SmallTestScenario()
	frames, err := radar.EncodeCPIs(s, 8, testChunkSize)
	if err != nil {
		b.Fatal(err)
	}

	var cold, warm, overall float64
	var finalRA int
	for i := 0; i < b.N; i++ {
		cfg := testServerConfig()
		cfg.Replicas = 1
		cfg.MaxInFlight = 32
		cfg.AutoTune = &tune.Config{Interval: 4, Warmup: 4, Budget: 18}
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ln := newPipeListener()
		if err := srv.Serve(ln); err != nil {
			b.Fatal(err)
		}

		var mu sync.Mutex
		arrivals := make([]time.Time, 0, n)
		errs := make(chan error, producers)
		var next atomic.Uint64 // shared: every producer stays active to the end
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := ln.dial(Options{
					Dims: s.Dims, ResultBuffer: 4,
					Streaming: true, ChunkPace: pace,
				})
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				// One upload in flight per producer, CPIs drawn from a shared
				// counter: the producer is the slow element, the server
				// decides how many overlap, and the offered load stays at
				// `producers` uploads until the run is out of CPIs (fixed
				// per-producer quotas would thin the load out in the tail and
				// understate the warm rate).
				for {
					seq := next.Add(1) - 1
					if seq >= n {
						return
					}
					frame := append([]byte(nil), frames[int(seq)%len(frames)]...)
					if err := cube.PatchSeq(frame, seq); err != nil {
						errs <- err
						return
					}
					if _, err := cl.Submit(frame); err != nil {
						errs <- err
						return
					}
					r := <-cl.Results()
					if r.Err != nil {
						errs <- r.Err
						return
					}
					mu.Lock()
					arrivals = append(arrivals, time.Now())
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errs:
			b.Fatal(err)
		default:
		}
		finalRA = srv.replicas[0].h.IOStats().ReadAhead
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()

		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].Before(arrivals[j]) })
		cold = arrivalRate(arrivals[:n/8])
		warm = arrivalRate(arrivals[n-n/4:])
		overall = arrivalRate(arrivals)
	}
	b.ReportMetric(overall, "CPIs/s")
	b.ReportMetric(cold, "cold-CPIs/s")
	b.ReportMetric(warm, "warm-CPIs/s")
	if cold > 0 {
		b.ReportMetric(warm/cold, "warmup-x")
	}
	b.ReportMetric(float64(finalRA), "final-readahead")
}

// arrivalRate is results-per-second across a window of arrival times.
func arrivalRate(a []time.Time) float64 {
	if len(a) < 2 {
		return 0
	}
	span := a[len(a)-1].Sub(a[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(a)-1) / span
}

// pipeListener serves synchronous in-process connections: a net.Pipe write
// blocks until the peer reads it, so a producer's pacing reaches the
// server exactly as offered — no kernel socket buffer silently absorbs a
// slow upload while the ingest gate holds its reader parked. That keeps
// the slow-producer benchmark's backpressure honest and host-independent.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the server one pipe half and performs the client handshake
// over the other.
func (l *pipeListener) dial(opt Options) (*Client, error) {
	sc, cc := net.Pipe()
	select {
	case l.conns <- sc:
	case <-l.done:
		cc.Close()
		return nil, net.ErrClosed
	}
	return DialConn(cc, opt)
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
