package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/radar"
)

// BenchmarkServeLoopback measures the sustained end-to-end CPI rate of the
// detection service over loopback TCP: one closed-loop producer replaying
// pre-encoded small-scenario cubes against an in-process server. This is
// the networked counterpart of BenchmarkRealPipelineReadahead — the
// difference between the two is the cost of the wire.
func BenchmarkServeLoopback(b *testing.B) {
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1
	cfg.MaxInFlight = 32
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	frames, err := radar.EncodeCPIs(s, 8, testChunkSize)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := Dial(srv.Addr().String(), Options{Dims: s.Dims, ResultBuffer: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	window := cl.MaxInFlight()
	// Rotate a fixed set of frame buffers: one per in-flight slot, returned
	// when the slot's result arrives, so the producer allocates nothing.
	bufs := make(chan []byte, window)
	for i := 0; i < window; i++ {
		bufs <- make([]byte, len(frames[0]))
	}
	var mu sync.Mutex
	inFlight := make(map[uint64][]byte, window)
	done := make(chan error, 1)
	go func() {
		got := 0
		for r := range cl.Results() {
			if r.Err != nil {
				done <- r.Err
				return
			}
			mu.Lock()
			buf := inFlight[r.Seq]
			delete(inFlight, r.Seq)
			mu.Unlock()
			bufs <- buf
			if got++; got == b.N {
				done <- nil
				return
			}
		}
	}()

	b.ResetTimer()
	start := time.Now()
	for seq := 0; seq < b.N; seq++ {
		buf := <-bufs
		buf = append(buf[:0], frames[seq%len(frames)]...)
		if err := cube.PatchSeq(buf, uint64(seq)); err != nil {
			b.Fatal(err)
		}
		mu.Lock()
		inFlight[uint64(seq)] = buf
		mu.Unlock()
		if _, err := cl.Submit(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "CPIs/s")
}
