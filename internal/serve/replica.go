package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pipexec"
	"stapio/internal/tune"
)

// A replica is one long-running pipexec.Stream pipeline fed over a channel
// source. The server owns N of them; each accepted CPI is dispatched to
// one replica, which assigns it the replica's next internal sequence
// number (the pipeline's weight feedback is a per-replica temporal chain,
// so internal sequencing is per replica, not global), runs it through the
// real pipeline, and routes the detection reports back to the submitting
// connection.

// job is one accepted CPI travelling through a replica.
type job struct {
	conn *serverConn
	seq  uint64 // the producer's sequence number (unique per connection)
	cb   *cube.Cube
	t0   time.Time // server receipt time, for the reported latency
}

// srcItem is one delivery from the dispatcher to the pipeline's read stage.
type srcItem struct {
	cb  *cube.Cube
	err error
}

// chanSource adapts the dispatcher's push model to pipexec's pull-based
// AsyncSource: the pipeline's read stage Begins internal sequence numbers
// in order, and deliver hands each the matching cube. A Begin may race
// ahead of its delivery (readahead) or trail it (a burst of dispatches);
// both orders rendezvous through the slots/ready maps. Close releases
// every waiting Begin with ErrClosed so abandoned read waits cannot leak.
type chanSource struct {
	mu     sync.Mutex
	slots  map[uint64]chan srcItem // Begin arrived first; deliver fills
	ready  map[uint64]srcItem      // deliver arrived first; Begin drains
	closed bool

	// recycle returns decoded cubes to the server's pool once the pipeline
	// has consumed them (pipexec hands them back after Doppler filtering).
	recycle func(*cube.Cube)
}

func newChanSource(recycle func(*cube.Cube)) *chanSource {
	return &chanSource{
		slots:   make(map[uint64]chan srcItem),
		ready:   make(map[uint64]srcItem),
		recycle: recycle,
	}
}

// slotPending implements pipexec.PendingCube over the rendezvous channel.
type slotPending struct{ ch chan srcItem }

func (p slotPending) Wait() (*cube.Cube, error) {
	it := <-p.ch
	return it.cb, it.err
}

// Ready implements pipexec.ReadyPending: the rendezvous channel is
// buffered (size 1), so a delivered item is observable without blocking.
// This feeds the pipeline's source-stall and window-occupancy counters —
// for a push-fed replica a "stall" means the dispatcher had nothing for
// us, i.e. the replica is starved rather than I/O-bound.
func (p slotPending) Ready() bool { return len(p.ch) > 0 }

// Begin implements pipexec.AsyncSource.
func (s *chanSource) Begin(seq uint64) pipexec.PendingCube {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan srcItem, 1)
	if it, ok := s.ready[seq]; ok {
		delete(s.ready, seq)
		ch <- it
		return slotPending{ch}
	}
	if s.closed {
		ch <- srcItem{err: ErrClosed}
		return slotPending{ch}
	}
	s.slots[seq] = ch
	return slotPending{ch}
}

// deliver hands the cube for internal sequence number seq to the pipeline.
func (s *chanSource) deliver(seq uint64, cb *cube.Cube) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if ch, ok := s.slots[seq]; ok {
		delete(s.slots, seq)
		ch <- srcItem{cb: cb}
		return nil
	}
	s.ready[seq] = srcItem{cb: cb}
	return nil
}

// Close fails every outstanding and future Begin. Safe to call after the
// pipeline has stopped: the buffered rendezvous channels mean the sends
// never block even if nobody waits anymore.
func (s *chanSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for seq, ch := range s.slots {
		delete(s.slots, seq)
		ch <- srcItem{err: ErrClosed}
	}
	for seq, it := range s.ready {
		delete(s.ready, seq)
		if it.cb != nil && s.recycle != nil {
			s.recycle(it.cb)
		}
	}
}

// Recycle implements pipexec.CubeRecycler: decoded cubes flow back to the
// server's pool as soon as Doppler filtering has consumed them.
func (s *chanSource) Recycle(cb *cube.Cube) {
	if s.recycle != nil {
		s.recycle(cb)
	}
}

// replica wraps one streaming pipeline instance.
type replica struct {
	id  int
	src *chanSource
	h   *pipexec.StreamHandle

	mu   sync.Mutex
	next uint64
	jobs map[uint64]job

	dispatched atomic.Int64
	completed  atomic.Int64

	// final holds the pipeline summary after stop (nil while running).
	final *pipexec.Result
	ferr  error

	done chan struct{}
}

// startReplica launches the pipeline and its result router.
func startReplica(ctx context.Context, id int, cfg pipexec.Config, src *chanSource, route func(job, pipexec.CPIResult)) (*replica, error) {
	h, err := pipexec.Stream(ctx, cfg, src)
	if err != nil {
		return nil, err
	}
	r := &replica{id: id, src: src, h: h, jobs: make(map[uint64]job), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		for res := range h.Results {
			j, ok := r.take(res.Seq)
			if !ok {
				// Unreachable unless the pipeline invents sequence numbers;
				// drop rather than crash the service.
				continue
			}
			r.completed.Add(1)
			route(j, res)
		}
	}()
	return r, nil
}

// submit assigns the job the replica's next internal sequence number and
// feeds it to the pipeline.
func (r *replica) submit(j job) error {
	r.mu.Lock()
	seq := r.next
	r.next++
	r.jobs[seq] = j
	r.mu.Unlock()
	if err := r.src.deliver(seq, j.cb); err != nil {
		r.take(seq)
		return err
	}
	r.dispatched.Add(1)
	return nil
}

func (r *replica) take(seq uint64) (job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[seq]
	if ok {
		delete(r.jobs, seq)
	}
	return j, ok
}

// inFlight reports how many dispatched CPIs have not completed yet.
func (r *replica) inFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// stop shuts the pipeline down and waits for the result router to finish.
// Jobs still in the pipeline when stop is called are abandoned (the server
// drains in-flight work before stopping replicas, so in normal shutdown
// there are none).
func (r *replica) stop() (*pipexec.Result, error) {
	res, err := r.h.Stop()
	// The pipeline has fully exited; release any read waits it abandoned
	// so their goroutines unwind (see pipexec waitCube).
	r.src.Close()
	<-r.done
	r.mu.Lock()
	r.final, r.ferr = res, err
	r.mu.Unlock()
	return res, err
}

// summary returns the post-stop pipeline result, or nil while running.
func (r *replica) summary() (*pipexec.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.final, r.ferr
}

// replicaConfig derives the per-replica pipeline configuration from the
// service configuration.
func replicaConfig(cfg Config) pipexec.Config {
	pc := pipexec.Config{
		Params:        cfg.Params,
		Workers:       cfg.Workers,
		CombinePCCFAR: cfg.CombinePCCFAR,
		Buffer:        cfg.Buffer,
		// Each replica gets its own controller instance (tune.Controller
		// is single-run state), so a replica pool converges per replica
		// against its own measured load.
		AutoTune: cloneTuneConfig(cfg.AutoTune),
		// The source is push-fed; depth-1 readahead just keeps one Begin
		// slot open ahead of the CPI being consumed.
		ReadAhead: 1,
	}
	w := &pc.Workers
	for _, n := range []*int{&w.Doppler, &w.EasyWeight, &w.HardWeight, &w.EasyBF, &w.HardBF, &w.PulseComp, &w.CFAR} {
		if *n < 1 {
			*n = 1
		}
	}
	return pc
}

// cloneTuneConfig copies the tuner config so every replica owns its own
// (pipexec keeps the pointer; shared mutable config across replicas would
// be a trap).
func cloneTuneConfig(c *tune.Config) *tune.Config {
	if c == nil {
		return nil
	}
	cp := *c
	return &cp
}
