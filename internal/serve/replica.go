package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pipexec"
	"stapio/internal/tune"
)

// A replica is one long-running pipexec.Stream pipeline fed through a
// pipexec.StreamSource. The server owns N of them; each accepted CPI is
// opened on one replica as a streaming publication — chunks decode straight
// from the connection read buffer into the source's pooled slab — and the
// replica assigns it the replica's next internal sequence number (the
// pipeline's weight feedback is a per-replica temporal chain, so internal
// sequencing is per replica, not global), runs it through the real
// pipeline, and routes the detection reports back to the submitting
// connection.

// job is one accepted CPI travelling through a replica.
type job struct {
	conn *serverConn
	seq  uint64    // the producer's sequence number (unique per connection)
	t0   time.Time // server receipt time, for the reported latency
}

// ingest is one CPI admitted into a replica: a leased gate slot plus the
// stream publication feeding the pipeline's slab for that internal
// sequence number. Exactly one of commit/commitPayload/abort must follow.
type ingest struct {
	r   *replica
	pub *pipexec.CubePublisher
	seq uint64 // internal pipeline sequence number
}

// commit finishes a chunk-streamed publication (every chunk landed clean)
// and hands the decoded cube to the pipeline.
func (in *ingest) commit() error {
	err := in.pub.Commit()
	in.r.gate.release()
	if err != nil {
		in.r.take(in.seq)
		return err
	}
	in.r.dispatched.Add(1)
	return nil
}

// commitPayload decodes a fully-assembled (already chunk-verified) frame
// payload into the slab with the source's decode pool and commits it — the
// framed-submit path through the same publication machinery.
func (in *ingest) commitPayload(h cube.Header, payload []byte) error {
	err := in.pub.CommitPayload(h, payload)
	in.r.gate.release()
	if err != nil {
		in.r.take(in.seq)
		return err
	}
	in.r.dispatched.Add(1)
	return nil
}

// abort cancels the publication (producer died, repair budget exhausted,
// duplicate sequence). The pipeline sees an errored read for the internal
// seq and — replicas run DegradeSkipCPI with a single read attempt — drops
// exactly that CPI and keeps streaming. Returns the registered job so the
// caller can settle its admission token.
func (in *ingest) abort(err error) (job, bool) {
	in.pub.Abort(err)
	in.r.gate.release()
	return in.r.take(in.seq)
}

// ingestGate bounds how many publications a replica holds open at once by
// the pipeline's LIVE readahead depth — the I/O knob the per-replica
// auto-tuner moves. Depth 1 serialises uploads into the replica; a tuner
// that grows the depth lets that many producer transfers overlap, which is
// exactly the latency-hiding the readahead window models for file sources.
type ingestGate struct {
	mu    sync.Mutex
	used  int
	depth func() int
	wake  chan struct{}
}

func newIngestGate(depth func() int) *ingestGate {
	return &ingestGate{depth: depth, wake: make(chan struct{}, 1)}
}

// acquire claims a slot, waiting for a release — and polling, so a tuner
// growing the depth mid-wait is noticed — up to the timeout or ctx cancel.
func (g *ingestGate) acquire(ctx context.Context, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		g.mu.Lock()
		d := g.depth()
		if d < 1 {
			d = 1
		}
		if g.used < d {
			g.used++
			g.mu.Unlock()
			return true
		}
		g.mu.Unlock()
		if time.Now().After(deadline) {
			return false
		}
		t := time.NewTimer(2 * time.Millisecond)
		select {
		case <-g.wake:
			t.Stop()
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return false
		}
	}
}

func (g *ingestGate) release() {
	g.mu.Lock()
	g.used--
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// openTimeout bounds how long an open waits for a gate slot before the
// server answers CodeOverloaded; parked repairs can hold slots across
// client round trips, so this is minutes of margin, not milliseconds.
const openTimeout = 5 * time.Second

// replica wraps one streaming pipeline instance.
type replica struct {
	id   int
	ctx  context.Context
	src  *pipexec.StreamSource
	h    *pipexec.StreamHandle
	gate *ingestGate

	mu   sync.Mutex
	next uint64
	jobs map[uint64]job

	dispatched atomic.Int64
	completed  atomic.Int64

	// final holds the pipeline summary after stop (nil while running).
	final *pipexec.Result
	ferr  error

	done chan struct{}
}

// startReplica launches the pipeline over a fresh StreamSource and its
// result router.
func startReplica(ctx context.Context, id int, cfg pipexec.Config, src *pipexec.StreamSource, route func(job, pipexec.CPIResult)) (*replica, error) {
	h, err := pipexec.Stream(ctx, cfg, src)
	if err != nil {
		return nil, err
	}
	r := &replica{id: id, ctx: ctx, src: src, h: h, jobs: make(map[uint64]job), done: make(chan struct{})}
	r.gate = newIngestGate(func() int { return h.IOStats().ReadAhead })
	go func() {
		defer close(r.done)
		for res := range h.Results {
			j, ok := r.take(res.Seq)
			if !ok {
				// Unreachable unless the pipeline invents sequence numbers;
				// drop rather than crash the service.
				continue
			}
			r.completed.Add(1)
			route(j, res)
		}
	}()
	return r, nil
}

// open admits one CPI: it claims a gate slot, assigns the next internal
// sequence number, registers the job, and opens the stream publication the
// connection will feed chunks into. On success exactly one of
// ingest.commit/commitPayload/abort must follow.
func (r *replica) open(j job, h cube.Header) (*ingest, error) {
	if !r.gate.acquire(r.ctx, openTimeout) {
		return nil, ErrOverloaded
	}
	r.mu.Lock()
	seq := r.next
	r.next++
	r.jobs[seq] = j
	r.mu.Unlock()
	pub, err := r.src.Publish(seq)
	if err == nil {
		err = pub.Announce(h)
		if err != nil {
			pub.Abort(err)
		}
	}
	if err != nil {
		r.take(seq)
		r.gate.release()
		return nil, err
	}
	return &ingest{r: r, pub: pub, seq: seq}, nil
}

func (r *replica) take(seq uint64) (job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[seq]
	if ok {
		delete(r.jobs, seq)
	}
	return j, ok
}

// inFlight reports how many opened CPIs have not completed yet.
func (r *replica) inFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// stop shuts the pipeline down and waits for the result router to finish.
// Jobs still in the pipeline when stop is called are abandoned (the server
// drains in-flight work before stopping replicas, so in normal shutdown
// there are none).
func (r *replica) stop() (*pipexec.Result, error) {
	res, err := r.h.Stop()
	// The pipeline has fully exited; release any read waits it abandoned
	// so their goroutines unwind (see pipexec waitCube), and recycle
	// committed-but-unconsumed slabs back to the source pool.
	r.src.Close()
	<-r.done
	r.mu.Lock()
	r.final, r.ferr = res, err
	r.mu.Unlock()
	return res, err
}

// summary returns the post-stop pipeline result, or nil while running.
func (r *replica) summary() (*pipexec.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.final, r.ferr
}

// replicaConfig derives the per-replica pipeline configuration from the
// service configuration.
func replicaConfig(cfg Config) pipexec.Config {
	pc := pipexec.Config{
		Params:        cfg.Params,
		Workers:       cfg.Workers,
		CombinePCCFAR: cfg.CombinePCCFAR,
		Buffer:        cfg.Buffer,
		StageLoad:     cfg.StageLoad,
		// Each replica gets its own controller instance (tune.Controller
		// is single-run state), so a replica pool converges per replica
		// against its own measured load.
		AutoTune: cloneTuneConfig(cfg.AutoTune),
		// An aborted publication (producer died mid-cube, repair budget
		// exhausted) resolves its internal seq with an error; one attempt
		// plus skip-CPI degradation drops exactly that CPI and keeps the
		// replica streaming. Clean CPIs never take this path, so
		// detections stay byte-identical to a file-fed run.
		Degrade: pipexec.DegradeSkipCPI,
		Retry:   pipexec.RetryPolicy{MaxAttempts: 1},
	}
	if cfg.AutoTune != nil {
		// Cold start at depth 1: the joint I/O + compute solve owns the
		// readahead depth (= concurrently open ingests, see ingestGate)
		// and grows it against measured transfer and decode times.
		pc.ReadAhead = 1
	} else {
		// Untimed replicas keep the static admission share: this replica's
		// fraction of the server's in-flight budget may stream in at once.
		ra := cfg.maxInFlight() / cfg.replicas()
		if ra < 1 {
			ra = 1
		}
		pc.ReadAhead = ra
	}
	w := &pc.Workers
	for _, n := range []*int{&w.Doppler, &w.EasyWeight, &w.HardWeight, &w.EasyBF, &w.HardBF, &w.PulseComp, &w.CFAR} {
		if *n < 1 {
			*n = 1
		}
	}
	return pc
}

// cloneTuneConfig copies the tuner config so every replica owns its own
// (pipexec keeps the pointer; shared mutable config across replicas would
// be a trap).
func cloneTuneConfig(c *tune.Config) *tune.Config {
	if c == nil {
		return nil
	}
	cp := *c
	return &cp
}
