// Package serve turns the STAP reproduction into a long-running network
// detection service: remote producers stream CPI cubes over TCP, a server
// dispatches them across a pool of real pipeline replicas (pipexec.Stream),
// and each CPI's detection reports stream back on the same connection.
//
// The wire protocol frames the existing chunked cube file format (cube
// format v3), so the per-chunk CRC-32C protection the striped file store
// uses carries over the network unchanged: a frame whose payload arrives
// with corrupt chunks is repaired by re-requesting exactly those chunks
// from the producer — the network mirror of the file path's partial
// re-read — instead of dropping or re-sending the whole CPI.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"stapio/internal/cube"
)

// Protocol constants.
const (
	// ProtoMagic opens every hello payload, rejecting strays that happen
	// to connect to the service port.
	ProtoMagic = "SNET"
	// ProtoVersion is the wire protocol version this package speaks.
	ProtoVersion = 1

	// framePrelude is the fixed per-frame prefix: payload length (uint32),
	// frame type (uint8), and three reserved zero bytes.
	framePrelude = 8

	// DefaultMaxFrameBytes bounds a single frame; connections exceeding it
	// are dropped (a length that large is corruption or abuse, and the
	// reader must not allocate it). 16 MiB cubes plus framing fit with
	// room to spare.
	DefaultMaxFrameBytes = 64 << 20
)

// Frame types. The submit payload is an entire encoded cube file (v3
// chunked preferred; flat v2 is accepted but cannot be chunk-repaired), so
// the cube header — dims, sequence number, chunk table — needs no
// duplication in the framing.
const (
	fHello     = 1 // client → server: magic, proto version, cube dims
	fHelloAck  = 2 // server → client: proto version, admission capacity
	fSubmit    = 3 // client → server: one encoded cube file
	fAccept    = 4 // server → client: seq verified and dispatched
	fReject    = 5 // server → client: seq refused (typed code + message)
	fRepairReq = 6 // server → client: seq, repair round, corrupt chunk list
	fRepair    = 7 // client → server: seq, round, re-sent chunk bytes
	fResult    = 8 // server → client: server latency + encoded reports
	fGoodbye   = 9 // server → client: draining; stop submitting

	// Streaming ingest (client → server): a chunked cube travels as one
	// fSubmitHdr carrying only the encoded header + chunk table, then one
	// fChunk per chunk (16-byte prefix + raw chunk bytes), then fSubmitEnd.
	// The server decodes each chunk straight from the connection read
	// buffer into a pooled cube slab — no file image is ever materialised
	// server-side. Corrupt chunks are repaired through the same
	// fRepairReq/fRepair exchange as framed submits.
	fSubmitHdr = 10 // client → server: cube header + chunk table only
	fChunk     = 11 // client → server: seq, chunk index, raw chunk bytes
	fSubmitEnd = 12 // client → server: seq; all chunks sent
)

// Reject codes — the typed reasons a submitted CPI is refused.
const (
	// CodeOverloaded: admission control found no in-flight slot free. The
	// producer should back off; nothing was queued.
	CodeOverloaded = 1
	// CodeDraining: the server is shutting down gracefully and accepts no
	// new CPIs (in-flight ones still complete).
	CodeDraining = 2
	// CodeCorrupt: the payload failed its checksums and chunk re-requests
	// could not repair it within the server's repair budget.
	CodeCorrupt = 3
	// CodeBadFrame: the frame was structurally invalid (bad cube header,
	// length mismatch, malformed repair).
	CodeBadFrame = 4
	// CodeBadDims: the cube geometry does not match the service's
	// configured pipeline parameters.
	CodeBadDims = 5
)

// rejectCodeName maps codes onto the strings logs and errors show.
func rejectCodeName(code uint32) string {
	switch code {
	case CodeOverloaded:
		return "overloaded"
	case CodeDraining:
		return "draining"
	case CodeCorrupt:
		return "corrupt"
	case CodeBadFrame:
		return "bad-frame"
	case CodeBadDims:
		return "bad-dims"
	default:
		return fmt.Sprintf("code-%d", code)
	}
}

// Typed sentinel errors the client surfaces for rejects, matched with
// errors.Is.
var (
	// ErrOverloaded reports an admission-control reject: the server had no
	// free in-flight slot for the CPI.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrDraining reports a reject because the server is shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrCorrupt reports a CPI the server could not repair via chunk
	// re-requests.
	ErrCorrupt = errors.New("serve: unrecoverable frame corruption")
	// ErrClosed reports an operation on a closed connection.
	ErrClosed = errors.New("serve: connection closed")
)

// rejectError converts a wire reject code into the client-facing error.
func rejectError(code uint32, msg string) error {
	switch code {
	case CodeOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, msg)
	case CodeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	case CodeCorrupt:
		return fmt.Errorf("%w: %s", ErrCorrupt, msg)
	default:
		return fmt.Errorf("serve: CPI rejected (%s): %s", rejectCodeName(code), msg)
	}
}

// putPrelude fills the 8-byte frame prelude.
func putPrelude(buf []byte, ftype byte, n int) {
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[4] = ftype
	buf[5], buf[6], buf[7] = 0, 0, 0
}

// writeFrame writes one frame (prelude + payload) to w. On a net.Conn the
// two spans go out as one vectored write, so every frame — including the
// 64 KiB submit hot path — costs a single syscall and no payload copy.
func writeFrame(w io.Writer, ftype byte, payload []byte) error {
	var pre [framePrelude]byte
	putPrelude(pre[:], ftype, len(payload))
	if len(payload) == 0 {
		_, err := w.Write(pre[:])
		return err
	}
	if c, ok := w.(net.Conn); ok {
		bufs := net.Buffers{pre[:], payload}
		_, err := bufs.WriteTo(c)
		return err
	}
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrames writes a batch of frames — each a prelude plus any number of
// payload spans — as one vectored write on a net.Conn. A full streaming
// submit (header frame, every chunk frame, end frame) goes out in a single
// writev with zero payload copies; preludes are built here, payload spans
// are referenced in place.
type frameSpans struct {
	ftype byte
	spans [][]byte
}

func writeFrames(w io.Writer, frames []frameSpans) error {
	bufs := make(net.Buffers, 0, len(frames)*3)
	pres := make([]byte, len(frames)*framePrelude)
	for i, f := range frames {
		n := 0
		for _, s := range f.spans {
			n += len(s)
		}
		pre := pres[i*framePrelude : (i+1)*framePrelude]
		putPrelude(pre, f.ftype, n)
		bufs = append(bufs, pre)
		for _, s := range f.spans {
			if len(s) > 0 {
				bufs = append(bufs, s)
			}
		}
	}
	if c, ok := w.(net.Conn); ok {
		_, err := bufs.WriteTo(c)
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Chunk frame prefix: seq(8) chunk-index(4) reserved(4), followed by the
// chunk's raw payload bytes.
const chunkPrefixLen = 16

func putChunkPrefix(buf []byte, seq uint64, idx int) {
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(idx))
	binary.LittleEndian.PutUint32(buf[12:16], 0)
}

func decodeChunkPrefix(buf []byte) (seq uint64, idx int, err error) {
	if len(buf) < chunkPrefixLen {
		return 0, 0, fmt.Errorf("serve: chunk frame of %d bytes is shorter than its %d-byte prefix", len(buf), chunkPrefixLen)
	}
	return binary.LittleEndian.Uint64(buf[0:8]), int(binary.LittleEndian.Uint32(buf[8:12])), nil
}

// Submit-end payload: seq(8).
const submitEndLen = 8

func encodeSubmitEnd(seq uint64) []byte {
	buf := make([]byte, submitEndLen)
	binary.LittleEndian.PutUint64(buf, seq)
	return buf
}

func decodeSubmitEnd(buf []byte) (uint64, error) {
	if len(buf) != submitEndLen {
		return 0, fmt.Errorf("serve: submit-end payload is %d bytes, want %d", len(buf), submitEndLen)
	}
	return binary.LittleEndian.Uint64(buf), nil
}

// readPrelude reads the next frame's prelude, returning its type and
// payload length, bounded by maxFrame.
func readPrelude(r io.Reader, maxFrame int64) (ftype byte, n int, err error) {
	var pre [framePrelude]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return 0, 0, err
	}
	length := int64(binary.LittleEndian.Uint32(pre[0:4]))
	if length > maxFrame {
		return 0, 0, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", length, maxFrame)
	}
	return pre[4], int(length), nil
}

// Hello payload: magic(4) version(4) channels(4) pulses(4) ranges(4).
const helloLen = 20

func encodeHello(d cube.Dims) []byte {
	buf := make([]byte, helloLen)
	copy(buf[0:4], ProtoMagic)
	binary.LittleEndian.PutUint32(buf[4:8], ProtoVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(d.Channels))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(d.Pulses))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(d.Ranges))
	return buf
}

func decodeHello(buf []byte) (cube.Dims, error) {
	var d cube.Dims
	if len(buf) != helloLen {
		return d, fmt.Errorf("serve: hello payload is %d bytes, want %d", len(buf), helloLen)
	}
	if string(buf[0:4]) != ProtoMagic {
		return d, fmt.Errorf("serve: bad hello magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != ProtoVersion {
		return d, fmt.Errorf("serve: unsupported protocol version %d (want %d)", v, ProtoVersion)
	}
	d.Channels = int(binary.LittleEndian.Uint32(buf[8:12]))
	d.Pulses = int(binary.LittleEndian.Uint32(buf[12:16]))
	d.Ranges = int(binary.LittleEndian.Uint32(buf[16:20]))
	if !d.Valid() {
		return d, fmt.Errorf("serve: hello carries invalid dims %v", d)
	}
	return d, nil
}

// HelloAck payload: version(4) max-in-flight(4).
const helloAckLen = 8

func encodeHelloAck(maxInFlight int) []byte {
	buf := make([]byte, helloAckLen)
	binary.LittleEndian.PutUint32(buf[0:4], ProtoVersion)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(maxInFlight))
	return buf
}

func decodeHelloAck(buf []byte) (maxInFlight int, err error) {
	if len(buf) != helloAckLen {
		return 0, fmt.Errorf("serve: hello-ack payload is %d bytes, want %d", len(buf), helloAckLen)
	}
	if v := binary.LittleEndian.Uint32(buf[0:4]); v != ProtoVersion {
		return 0, fmt.Errorf("serve: unsupported protocol version %d (want %d)", v, ProtoVersion)
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), nil
}

// Accept payload: seq(8).
func encodeAccept(seq uint64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, seq)
	return buf
}

func decodeAccept(buf []byte) (uint64, error) {
	if len(buf) != 8 {
		return 0, fmt.Errorf("serve: accept payload is %d bytes, want 8", len(buf))
	}
	return binary.LittleEndian.Uint64(buf), nil
}

// Reject payload: seq(8) code(4) message.
func encodeReject(seq uint64, code uint32, msg string) []byte {
	buf := make([]byte, 12+len(msg))
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], code)
	copy(buf[12:], msg)
	return buf
}

func decodeReject(buf []byte) (seq uint64, code uint32, msg string, err error) {
	if len(buf) < 12 {
		return 0, 0, "", fmt.Errorf("serve: reject payload is %d bytes, want >= 12", len(buf))
	}
	return binary.LittleEndian.Uint64(buf[0:8]), binary.LittleEndian.Uint32(buf[8:12]), string(buf[12:]), nil
}

// RepairReq payload: seq(8) round(4) count(4) chunk-index(4)*count.
func encodeRepairReq(seq uint64, round int, chunks []int) []byte {
	buf := make([]byte, 16+4*len(chunks))
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(round))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(chunks)))
	for i, c := range chunks {
		binary.LittleEndian.PutUint32(buf[16+4*i:], uint32(c))
	}
	return buf
}

func decodeRepairReq(buf []byte) (seq uint64, round int, chunks []int, err error) {
	if len(buf) < 16 {
		return 0, 0, nil, fmt.Errorf("serve: repair request is %d bytes, want >= 16", len(buf))
	}
	seq = binary.LittleEndian.Uint64(buf[0:8])
	round = int(binary.LittleEndian.Uint32(buf[8:12]))
	n := int(binary.LittleEndian.Uint32(buf[12:16]))
	if len(buf) != 16+4*n {
		return 0, 0, nil, fmt.Errorf("serve: repair request declares %d chunks in %d bytes", n, len(buf))
	}
	chunks = make([]int, n)
	for i := range chunks {
		chunks[i] = int(binary.LittleEndian.Uint32(buf[16+4*i:]))
	}
	return seq, round, chunks, nil
}

// Repair payload: seq(8) round(4) count(4), then per chunk:
// index(4) length(4) bytes.
type repairChunk struct {
	index int
	data  []byte
}

func encodeRepair(seq uint64, round int, chunks []repairChunk) []byte {
	n := 16
	for _, c := range chunks {
		n += 8 + len(c.data)
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(round))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(chunks)))
	off := 16
	for _, c := range chunks {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c.index))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(len(c.data)))
		copy(buf[off+8:], c.data)
		off += 8 + len(c.data)
	}
	return buf
}

// decodeRepair parses a repair frame; the returned chunk data slices alias
// buf, so the caller must consume them before recycling the frame buffer.
func decodeRepair(buf []byte) (seq uint64, round int, chunks []repairChunk, err error) {
	if len(buf) < 16 {
		return 0, 0, nil, fmt.Errorf("serve: repair payload is %d bytes, want >= 16", len(buf))
	}
	seq = binary.LittleEndian.Uint64(buf[0:8])
	round = int(binary.LittleEndian.Uint32(buf[8:12]))
	n := int(binary.LittleEndian.Uint32(buf[12:16]))
	// The count is attacker-controlled; every chunk needs at least its
	// 8-byte index/length prefix, so bound it by the frame length before
	// sizing the slice (mirrors decodeRepairReq's length check).
	if n < 0 || n > (len(buf)-16)/8 {
		return 0, 0, nil, fmt.Errorf("serve: repair payload declares %d chunks in %d bytes", n, len(buf))
	}
	chunks = make([]repairChunk, 0, n)
	off := 16
	for i := 0; i < n; i++ {
		if len(buf) < off+8 {
			return 0, 0, nil, fmt.Errorf("serve: repair payload truncated at chunk %d", i)
		}
		idx := int(binary.LittleEndian.Uint32(buf[off:]))
		ln := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		if ln < 0 || len(buf) < off+ln {
			return 0, 0, nil, fmt.Errorf("serve: repair chunk %d declares %d bytes past the frame end", i, ln)
		}
		chunks = append(chunks, repairChunk{index: idx, data: buf[off : off+ln]})
		off += ln
	}
	if off != len(buf) {
		return 0, 0, nil, fmt.Errorf("serve: repair payload has %d trailing bytes", len(buf)-off)
	}
	return seq, round, chunks, nil
}

// Result payload: server-side latency in nanoseconds (8), then the encoded
// report file (pipexec.EncodeReports), which itself carries the seq.
func encodeResultPrefix(serverNs int64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(serverNs))
	return buf
}
