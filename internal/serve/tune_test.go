package serve

import (
	"context"
	"testing"
	"time"

	"stapio/internal/radar"
	"stapio/internal/tune"
)

func TestServeAutoTunedReplicaMatchesReference(t *testing.T) {
	// A replica with an online tuner must stay correctness-neutral (the
	// networked results still match the sequential chain) and must have
	// evaluated rebalance decisions by the end of the run.
	const n = 30
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1
	cfg.AutoTune = &tune.Config{Interval: 2, Warmup: 2, Hysteresis: -1}

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	shut := false
	shutdown := func() {
		if shut {
			return
		}
		shut = true
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	defer shutdown()
	cl := dialTest(t, srv, Options{})

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceDetections(t, cfg.Params, s, n)
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed: %v", r.Seq, r.Err)
		}
		if !sameDetections(r.Detections, want[k]) {
			t.Errorf("CPI %d: autotuned replica diverged from the sequential reference", k)
		}
	}
	cl.Close()
	shutdown()

	res, ferr := srv.replicas[0].summary()
	if ferr != nil {
		t.Fatalf("replica summary: %v", ferr)
	}
	if res == nil {
		t.Fatal("no replica summary after shutdown")
	}
	// Replica sources are I/O-tunable (stream sources expose frontend
	// clocks and a resizable decode pool), so the tuner runs the joint
	// solve over the seven compute stages plus readahead and decode.
	if len(res.Stats.TuneStages) != 9 {
		t.Errorf("replica tuner names %v, want 9 stages (7 compute + src read + src decode)", res.Stats.TuneStages)
	}
	if len(res.Stats.TuneDecisions) == 0 {
		t.Error("replica tuner evaluated no decisions over 30 CPIs at interval 2")
	}
	if len(res.Stats.TuneFinalSplit) != 9 {
		t.Errorf("final split %v, want 9 stages", res.Stats.TuneFinalSplit)
	}
}

func TestServeReplicasGetIndependentTuners(t *testing.T) {
	// Two replicas must each own a controller: both summaries carry their
	// own trace state and the shared Config pointer is cloned per replica.
	cfg := testServerConfig()
	cfg.Replicas = 2
	cfg.AutoTune = &tune.Config{Interval: 2, Warmup: 1, Hysteresis: -1}
	pc1, pc2 := replicaConfig(cfg), replicaConfig(cfg)
	if pc1.AutoTune == nil || pc2.AutoTune == nil {
		t.Fatal("replica configs lost the tuner")
	}
	if pc1.AutoTune == cfg.AutoTune || pc1.AutoTune == pc2.AutoTune {
		t.Error("replica tuner configs must be cloned, not shared")
	}
}
