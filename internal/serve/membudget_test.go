package serve

import (
	"testing"

	"stapio/internal/pipexec"
	"stapio/internal/radar"
)

// TestServeMemBudgetSplitsAcrossReplicas: a budgeted server must process
// CPIs identically to an unbudgeted one, report the budget and live
// residency on the stats surface, and expose per-replica budget state in
// each replica's io block.
func TestServeMemBudgetSplitsAcrossReplicas(t *testing.T) {
	const n = 8
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 2
	// Each replica's share covers exactly two CPIs' residency.
	perReplica := 2 * pipexec.MinResidency(&cfg.Params)
	cfg.MemBudget = int64(cfg.Replicas) * perReplica
	srv := startServer(t, cfg)
	cl := dialTest(t, srv, Options{})

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed: %v", r.Seq, r.Err)
		}
	}
	st := srv.Stats()
	if st.MemBudget != cfg.MemBudget {
		t.Errorf("stats mem_budget %d, want %d", st.MemBudget, cfg.MemBudget)
	}
	if st.MemHighWater <= 0 {
		t.Error("server-wide high-water residency never moved")
	}
	if st.MemHighWater > cfg.MemBudget {
		t.Errorf("high water %d exceeds server budget %d", st.MemHighWater, cfg.MemBudget)
	}
	for _, rs := range st.Replicas {
		if rs.IO.MemLimit != perReplica {
			t.Errorf("replica %d io.mem_limit %d, want %d", rs.ID, rs.IO.MemLimit, perReplica)
		}
		if rs.IO.MemHighWater > perReplica {
			t.Errorf("replica %d residency %d exceeds its share %d", rs.ID, rs.IO.MemHighWater, perReplica)
		}
	}
}

// TestServeMemBudgetTooSmallFailsStartup: a share below one CPI's
// residency cannot run a pipeline; Serve must refuse to come up rather
// than deadlock on first ingest.
func TestServeMemBudgetTooSmallFailsStartup(t *testing.T) {
	cfg := testServerConfig()
	cfg.Replicas = 2
	cfg.MemBudget = pipexec.MinResidency(&cfg.Params) // halved per replica: too small
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		srv.Kill()
		t.Fatal("server started with an inadmissible per-replica budget")
	}
}
