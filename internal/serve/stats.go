package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"stapio/internal/pipexec"
)

// counters are the server's live atomic counters.
type counters struct {
	connsTotal  atomic.Int64
	connsActive atomic.Int64

	accepted         atomic.Int64
	completed        atomic.Int64
	resultsSent      atomic.Int64
	orphaned         atomic.Int64
	rejectedOverload atomic.Int64
	rejectedDraining atomic.Int64
	rejectedCorrupt  atomic.Int64
	rejectedOther    atomic.Int64

	repairReqs       atomic.Int64
	repairedFrames   atomic.Int64
	chunkResends     atomic.Int64
	chunkResendBytes atomic.Int64

	streamedCPIs   atomic.Int64
	streamedChunks atomic.Int64
	streamMaxFrame atomic.Int64
}

// noteStreamFrame records a streaming-ingest frame's payload size; the
// running maximum is the observable proof that the streamed path never
// materialises a whole-cube file image (it stays at one chunk + prefix, vs
// the full encoded cube a framed submit buffers).
func (c *counters) noteStreamFrame(n int) {
	for {
		cur := c.streamMaxFrame.Load()
		if int64(n) <= cur || c.streamMaxFrame.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// ReplicaStats is one pipeline replica's slice of a stats snapshot.
type ReplicaStats struct {
	ID         int   `json:"id"`
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	InFlight   int   `json:"in_flight"`
	// IO is the replica pipeline's live frontend view: current readahead
	// depth and decode workers, source-stall counters, and window
	// occupancy — sampled while the replica runs, so operators can tell
	// an I/O-starved replica from a compute-bound one without stopping it.
	IO pipexec.IOSnapshot `json:"io"`
	// Pipeline carries the replica's pipexec resilience counters and stage
	// stats once the replica has stopped (nil while running — pipexec only
	// summarises on Stop).
	Pipeline *pipexec.Result `json:"pipeline,omitempty"`
}

// Stats is a point-in-time snapshot of the service, as served on the HTTP
// stats endpoint.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	ConnsActive int64 `json:"conns_active"`
	ConnsTotal  int64 `json:"conns_total"`

	InFlight    int64 `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`

	// MemBudget is the configured server-wide residency cap (0 =
	// unlimited); MemInUse/MemHighWater aggregate the live and peak
	// tracked bytes across every replica; MemStalls counts reservations
	// that had to wait for budget anywhere in the tree. Per-replica
	// breakdowns ride in each replica's "io" block.
	MemBudget    int64 `json:"mem_budget"`
	MemInUse     int64 `json:"mem_in_use"`
	MemHighWater int64 `json:"mem_high_water"`
	MemStalls    int64 `json:"mem_stalls"`

	Accepted    int64 `json:"accepted"`
	Completed   int64 `json:"completed"`
	ResultsSent int64 `json:"results_sent"`
	Orphaned    int64 `json:"orphaned"`

	Rejected map[string]int64 `json:"rejected"`

	// RepairReqs counts chunk re-request rounds issued, RepairedFrames the
	// CPIs that arrived corrupt but were repaired and processed,
	// ChunkResends/ChunkResendBytes the re-sent chunks — the network
	// mirror of the file path's RunStats.ChunkRereads.
	RepairReqs       int64 `json:"repair_reqs"`
	RepairedFrames   int64 `json:"repaired_frames"`
	ChunkResends     int64 `json:"chunk_resends"`
	ChunkResendBytes int64 `json:"chunk_resend_bytes"`

	// StreamedCPIs counts CPIs accepted through chunk-streamed ingest,
	// StreamedChunks their chunk frames, and StreamMaxFrameBytes the
	// largest streaming-ingest frame payload seen — bounded by one chunk
	// plus its 16-byte prefix, never a whole cube image.
	StreamedCPIs        int64 `json:"streamed_cpis"`
	StreamedChunks      int64 `json:"streamed_chunks"`
	StreamMaxFrameBytes int64 `json:"stream_max_frame_bytes"`

	Replicas []ReplicaStats `json:"replicas"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		ConnsActive:   s.stats.connsActive.Load(),
		ConnsTotal:    s.stats.connsTotal.Load(),
		InFlight:      s.outstanding.Load(),
		MaxInFlight:   s.cfg.maxInFlight(),
		Accepted:      s.stats.accepted.Load(),
		Completed:     s.stats.completed.Load(),
		ResultsSent:   s.stats.resultsSent.Load(),
		Orphaned:      s.stats.orphaned.Load(),
		Rejected: map[string]int64{
			"overloaded": s.stats.rejectedOverload.Load(),
			"draining":   s.stats.rejectedDraining.Load(),
			"corrupt":    s.stats.rejectedCorrupt.Load(),
			"other":      s.stats.rejectedOther.Load(),
		},
		RepairReqs:          s.stats.repairReqs.Load(),
		RepairedFrames:      s.stats.repairedFrames.Load(),
		ChunkResends:        s.stats.chunkResends.Load(),
		ChunkResendBytes:    s.stats.chunkResendBytes.Load(),
		StreamedCPIs:        s.stats.streamedCPIs.Load(),
		StreamedChunks:      s.stats.streamedChunks.Load(),
		StreamMaxFrameBytes: s.stats.streamMaxFrame.Load(),
	}
	if s.budget != nil {
		ms := s.budget.Stats()
		st.MemBudget = s.cfg.MemBudget
		st.MemInUse = ms.InUse
		st.MemHighWater = ms.HighWater
		st.MemStalls = ms.Stalls
	}
	for _, r := range s.replicas {
		rs := ReplicaStats{
			ID:         r.id,
			Dispatched: r.dispatched.Load(),
			Completed:  r.completed.Load(),
			InFlight:   r.inFlight(),
			IO:         r.h.IOStats(),
		}
		if res, err := r.summary(); err == nil && res != nil {
			rs.Pipeline = res
		}
		st.Replicas = append(st.Replicas, rs)
	}
	return st
}

// StatsHandler returns the health/stats HTTP handler:
//
//	GET /healthz  200 "ok" while serving, 503 "draining" once shutdown began
//	GET /stats    the Stats snapshot as JSON
func (s *Server) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	return mux
}
