package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
	"stapio/internal/stap"
)

// testChunkSize splits the small scenario's 64 KiB payload into 16 chunks,
// enough granularity for the repair tests.
const testChunkSize = 4096

func testServerConfig() Config {
	s := radar.SmallTestScenario()
	p := stap.DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	return Config{
		Params:  p,
		Workers: core.STAPNodes{Doppler: 2, EasyWeight: 1, HardWeight: 1, EasyBF: 2, HardBF: 1, PulseComp: 2, CFAR: 1},
	}
}

// startServer builds, starts, and schedules shutdown of a service.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

func dialTest(t *testing.T, srv *Server, opt Options) *Client {
	t.Helper()
	if !opt.Dims.Valid() {
		opt.Dims = srv.cfg.Params.Dims
	}
	cl, err := Dial(srv.Addr().String(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// submitAll pushes every frame closed-loop — at most the server's advertised
// in-flight window outstanding — and collects one result per submission.
func submitAll(t *testing.T, cl *Client, frames [][]byte) []Result {
	t.Helper()
	results := make([]Result, 0, len(frames))
	window := make(chan struct{}, cl.MaxInFlight())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := range cl.Results() {
			results = append(results, r)
			<-window
			if len(results) == len(frames) {
				return
			}
		}
	}()
	for _, f := range frames {
		window <- struct{}{}
		if _, err := cl.Submit(f); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].Seq < results[j].Seq })
	return results
}

// referenceDetections runs the sequential STAP chain over the scenario's
// CPIs 0..n-1 — the ground truth the networked pipeline must reproduce.
func referenceDetections(t *testing.T, p stap.Params, s *radar.Scenario, n int) [][]stap.Detection {
	t.Helper()
	pr, err := stap.NewProcessor(p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]stap.Detection, n)
	for k := 0; k < n; k++ {
		cb, err := s.Generate(uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		if out[k], err = pr.Process(cb, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func sameDetections(a, b []stap.Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Beam != b[i].Beam || a[i].Bin != b[i].Bin || a[i].Range != b[i].Range {
			return false
		}
	}
	return true
}

func TestServeRoundTripMatchesSequentialReference(t *testing.T) {
	const n = 8
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1 // one pipeline => submission order is the weight chain
	srv := startServer(t, cfg)
	cl := dialTest(t, srv, Options{})

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceDetections(t, cfg.Params, s, n)
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed: %v", r.Seq, r.Err)
		}
		if r.Seq != uint64(k) {
			t.Fatalf("result %d carries seq %d", k, r.Seq)
		}
		if !sameDetections(r.Detections, want[k]) {
			t.Errorf("CPI %d: networked pipeline found %d detections, sequential reference %d",
				k, len(r.Detections), len(want[k]))
		}
		if r.Latency <= 0 || r.ServerLatency <= 0 {
			t.Errorf("CPI %d: non-positive latency %v / %v", k, r.Latency, r.ServerLatency)
		}
	}
	st := srv.Stats()
	if st.Accepted != n || st.ResultsSent != n || st.Orphaned != 0 {
		t.Errorf("stats: accepted=%d results=%d orphaned=%d, want %d/%d/0",
			st.Accepted, st.ResultsSent, st.Orphaned, n, n)
	}
}

func TestServeConcurrentProducers(t *testing.T) {
	const producers, perProducer = 3, 10
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 2
	cfg.MaxInFlight = 16
	srv := startServer(t, cfg)

	templates, err := radar.EncodeCPIs(s, 4, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, producers*perProducer)
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String(), Options{Dims: s.Dims})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			// Each producer keeps a small window so the three of them stay
			// within the shared admission capacity.
			window := make(chan struct{}, 2)
			got := make(chan struct{})
			go func() {
				defer close(got)
				n := 0
				for r := range cl.Results() {
					if r.Err != nil {
						errs <- r.Err
					}
					<-window
					if n++; n == perProducer {
						return
					}
				}
			}()
			for k := 0; k < perProducer; k++ {
				frame := append([]byte(nil), templates[k%len(templates)]...)
				if err := cube.PatchSeq(frame, uint64(k)); err != nil {
					errs <- err
					return
				}
				window <- struct{}{}
				if _, err := cl.Submit(frame); err != nil {
					errs <- err
					return
				}
			}
			<-got
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("producer: %v", err)
	}
	st := srv.Stats()
	if want := int64(producers * perProducer); st.Completed != want {
		t.Errorf("completed %d CPIs, want %d", st.Completed, want)
	}
	var dispatched int64
	for _, r := range st.Replicas {
		dispatched += r.Dispatched
	}
	if dispatched != int64(producers*perProducer) {
		t.Errorf("replicas dispatched %d CPIs, want %d", dispatched, producers*perProducer)
	}
}

func TestServeOverloadedReject(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.MaxInFlight = 2
	srv := startServer(t, cfg)
	cl := dialTest(t, srv, Options{})

	frames, err := radar.EncodeCPIs(s, 2, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the admission window from the inside so the reject is
	// deterministic rather than a race against the pipeline.
	for i := 0; i < cfg.MaxInFlight; i++ {
		if !srv.tryAcquire() {
			t.Fatal("could not drain the admission tokens")
		}
	}
	if _, err := cl.Submit(frames[0]); err != nil {
		t.Fatal(err)
	}
	r := <-cl.Results()
	if !errors.Is(r.Err, ErrOverloaded) {
		t.Fatalf("submit into a full window: got %v, want ErrOverloaded", r.Err)
	}
	if st := srv.Stats(); st.Rejected["overloaded"] != 1 {
		t.Errorf("overloaded reject count = %d, want 1", st.Rejected["overloaded"])
	}
	for i := 0; i < cfg.MaxInFlight; i++ {
		srv.release()
	}
	// The same frame is admitted once a slot frees up.
	if _, err := cl.Submit(frames[1]); err != nil {
		t.Fatal(err)
	}
	if r := <-cl.Results(); r.Err != nil {
		t.Fatalf("submit after release failed: %v", r.Err)
	}
}

func TestServeDrainRejectsAndShutsDownCleanly(t *testing.T) {
	s := radar.SmallTestScenario()
	srv := startServer(t, testServerConfig())
	cl := dialTest(t, srv, Options{})

	frames, err := radar.EncodeCPIs(s, 4, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	results := submitAll(t, cl, frames)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed before drain: %v", r.Seq, r.Err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The goodbye (or the closed connection) must stop further submits with
	// a typed drain/closed error.
	extra := append([]byte(nil), frames[0]...)
	if err := cube.PatchSeq(extra, 99); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cl.Submit(extra)
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrClosed) {
			break
		}
		if err == nil {
			// Accepted into a closing window; its result (an error) will
			// flow back or the connection will die — keep probing.
			<-cl.Results()
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit after shutdown: got %v, want ErrDraining or ErrClosed", err)
		}
		time.Sleep(time.Millisecond)
	}
	if st := srv.Stats(); !st.Draining || st.Orphaned != 0 {
		t.Errorf("post-shutdown stats: draining=%v orphaned=%d, want true/0", st.Draining, st.Orphaned)
	}
}

func TestServeRepairsCorruptFramesWithoutDropping(t *testing.T) {
	const n = 20
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.RepairRounds = 8
	srv := startServer(t, cfg)

	// A quarter of the chunks arrive corrupt; re-sent chunks re-draw per
	// round, so every CPI repairs within the round budget for this seed.
	plan := &pfs.FaultPlan{Seed: 7, CorruptRate: 0.25}
	cl := dialTest(t, srv, Options{Faults: plan})

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d dropped despite chunk repair: %v", r.Seq, r.Err)
		}
	}
	_, resends, injected := cl.RepairStats()
	if injected == 0 {
		t.Fatal("fault plan injected no corruption; the test exercised nothing")
	}
	st := srv.Stats()
	if st.RepairedFrames == 0 || st.ChunkResends == 0 || st.RepairReqs == 0 {
		t.Errorf("server repaired %d frames via %d resends (%d requests), want all > 0",
			st.RepairedFrames, st.ChunkResends, st.RepairReqs)
	}
	if st.Rejected["corrupt"] != 0 {
		t.Errorf("%d CPIs rejected as corrupt; repair should have saved them", st.Rejected["corrupt"])
	}
	if resends < st.ChunkResends {
		t.Errorf("client sent %d chunk resends, server counted %d", resends, st.ChunkResends)
	}
	if got := cl.RepairedFrames(); got != st.RepairedFrames {
		t.Errorf("client counted %d repaired frames, server %d", got, st.RepairedFrames)
	}
	t.Logf("injected %d corruptions, repaired %d frames via %d chunk resends (%d bytes)",
		injected, st.RepairedFrames, st.ChunkResends, st.ChunkResendBytes)
}

func TestServeRejectsUnrepairableFlatFrame(t *testing.T) {
	s := radar.SmallTestScenario()
	srv := startServer(t, testServerConfig())
	cl := dialTest(t, srv, Options{})

	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	// A flat (v2) frame has no chunk table, so corruption is terminal.
	frame := make([]byte, cube.FileBytes(s.Dims))
	cube.Encode(cb, 0, frame)
	frame[len(frame)-1] ^= 0xff
	if _, err := cl.Submit(frame); err != nil {
		t.Fatal(err)
	}
	r := <-cl.Results()
	if !errors.Is(r.Err, ErrCorrupt) {
		t.Fatalf("corrupt flat frame: got %v, want ErrCorrupt", r.Err)
	}
	if st := srv.Stats(); st.Rejected["corrupt"] != 1 {
		t.Errorf("corrupt reject count = %d, want 1", st.Rejected["corrupt"])
	}
}

func TestServeRejectsMismatchedDims(t *testing.T) {
	srv := startServer(t, testServerConfig())
	_, err := Dial(srv.Addr().String(), Options{Dims: cube.Dims{Channels: 2, Pulses: 8, Ranges: 32}})
	if err == nil {
		t.Fatal("handshake with wrong dims succeeded")
	}
}

// rawHandshake dials the service and completes the hello exchange,
// returning the open connection for hand-rolled frame traffic.
func rawHandshake(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := writeFrame(c, fHello, encodeHello(srv.cfg.Params.Dims)); err != nil {
		t.Fatal(err)
	}
	ftype, n, err := readPrelude(c, DefaultMaxFrameBytes)
	if err != nil || ftype != fHelloAck {
		t.Fatalf("handshake: type %d, err %v", ftype, err)
	}
	if _, err := io.ReadFull(c, make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	return c
}

// readFrame reads one whole frame under a deadline.
func readFrame(t *testing.T, c net.Conn) (byte, []byte) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	ftype, n, err := readPrelude(c, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read frame payload: %v", err)
	}
	return ftype, buf
}

func TestServeDropsMalformedStream(t *testing.T) {
	srv := startServer(t, testServerConfig())

	// A structurally invalid submit earns a typed seq-0 reject and then the
	// connection closes: the framing can no longer be trusted, and dropping
	// the connection resolves the producer's pending CPIs promptly.
	c := rawHandshake(t, srv)
	if err := writeFrame(c, fSubmit, []byte("not a cube")); err != nil {
		t.Fatal(err)
	}
	ftype, buf := readFrame(t, c)
	if ftype != fReject {
		t.Fatalf("bad submit answer: type %d, want reject", ftype)
	}
	seq, code, _, err := decodeReject(buf)
	if err != nil || code != CodeBadFrame {
		t.Fatalf("bad submit reject: code %d, err %v", code, err)
	}
	if seq != 0 {
		t.Fatalf("bad submit reject carries seq %d, want 0", seq)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection stayed open after an unparseable submit")
	}

	// An unknown frame type ends the conversation too.
	c = rawHandshake(t, srv)
	if err := writeFrame(c, 0x7f, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection stayed open after an unknown frame type")
	}
}

// TestServeRepairRoundIsServerTracked pins the repair-budget fix: the
// server advances its own round counter and rejects a repair whose echoed
// round does not match its outstanding request, so a client that always
// echoes round 0 cannot park a CPI (and its admission token) forever.
func TestServeRepairRoundIsServerTracked(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.RepairRounds = 8 // far above the two rounds the test plays out
	srv := startServer(t, cfg)
	c := rawHandshake(t, srv)

	frames, err := radar.EncodeCPIs(s, 1, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	frame := frames[0]
	h, err := cube.ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one chunk so the submit parks for repair.
	lo, hi := h.ChunkSpan(0)
	frame[h.PayloadOffset()+lo] ^= 0x40
	if err := writeFrame(c, fSubmit, frame); err != nil {
		t.Fatal(err)
	}
	ftype, buf := readFrame(t, c)
	if ftype != fRepairReq {
		t.Fatalf("corrupt submit answered with type %d, want repair-req", ftype)
	}
	seq, round, bad, err := decodeRepairReq(buf)
	if err != nil || round != 0 || len(bad) != 1 {
		t.Fatalf("first repair-req: seq %d round %d chunks %v err %v", seq, round, bad, err)
	}
	// Round 0: echo the correct round but re-send the chunk still corrupt,
	// so the server asks again — now at round 1.
	still := frame[h.PayloadOffset()+lo : h.PayloadOffset()+hi]
	if err := writeFrame(c, fRepair, encodeRepair(seq, 0, []repairChunk{{index: 0, data: still}})); err != nil {
		t.Fatal(err)
	}
	if ftype, buf = readFrame(t, c); ftype != fRepairReq {
		t.Fatalf("second answer type %d, want repair-req", ftype)
	}
	if _, round, _, err = decodeRepairReq(buf); err != nil || round != 1 {
		t.Fatalf("second repair-req at round %d (err %v), want the server-tracked round 1", round, err)
	}
	// Now echo the stale round 0 again, as a budget-pinning client would.
	if err := writeFrame(c, fRepair, encodeRepair(seq, 0, []repairChunk{{index: 0, data: still}})); err != nil {
		t.Fatal(err)
	}
	ftype, buf = readFrame(t, c)
	if ftype != fReject {
		t.Fatalf("stale-round repair answered with type %d, want reject", ftype)
	}
	if rseq, code, _, err := decodeReject(buf); err != nil || rseq != seq || code != CodeBadFrame {
		t.Fatalf("stale-round reject: seq %d code %d err %v, want seq %d bad-frame", rseq, code, err, seq)
	}
	// The CPI was answered, so its admission token must be free again.
	waitFor(t, 5*time.Second, func() bool { return srv.outstanding.Load() == 0 })
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShutdownCountsAbandonedCPIsOnce pins the drain accounting fix: a CPI
// parked for repair when the drain deadline expires is counted orphaned
// exactly once, and in_flight settles at zero rather than going negative.
func TestShutdownCountsAbandonedCPIsOnce(t *testing.T) {
	s := radar.SmallTestScenario()
	srv, err := New(testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := rawHandshake(t, srv)

	frames, err := radar.EncodeCPIs(s, 1, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	frame := frames[0]
	h, err := cube.ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := h.ChunkSpan(0)
	frame[h.PayloadOffset()+lo] ^= 0x40
	if err := writeFrame(c, fSubmit, frame); err != nil {
		t.Fatal(err)
	}
	if ftype, _ := readFrame(t, c); ftype != fRepairReq {
		t.Fatalf("corrupt submit answered with type %d, want repair-req", ftype)
	}
	// Never answer the repair request: the CPI stays parked, holding its
	// admission token, and an already-expired drain deadline abandons it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("shutdown with a parked CPI and an expired deadline reported a clean drain")
	}
	st := srv.Stats()
	if st.Orphaned != 1 {
		t.Errorf("orphaned = %d, want exactly 1 (no double count)", st.Orphaned)
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d after shutdown, want 0", st.InFlight)
	}
}

// TestServerKillFailsPendingSubmitsPromptly pins the abrupt-crash
// semantics a failover layer depends on: when a server dies mid-stream
// (Kill — the in-process equivalent of SIGKILL, the connections just
// reset), every outstanding Submit on the client fails promptly with a
// typed error instead of hanging, and Results closes.
func TestServerKillFailsPendingSubmitsPromptly(t *testing.T) {
	const n = 8
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.MaxInFlight = n
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr().String(), Options{Dims: s.Dims})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the whole admission window without draining results, so CPIs are
	// guaranteed to be pending when the server dies.
	for _, f := range frames {
		if _, err := cl.Submit(f); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	srv.Kill()

	answered := 0
	deadline := time.After(10 * time.Second)
	for answered < n {
		select {
		case r, ok := <-cl.Results():
			if !ok {
				t.Fatalf("Results closed after %d of %d answers", answered, n)
			}
			if r.Err != nil && !errors.Is(r.Err, ErrClosed) && !errors.Is(r.Err, ErrDraining) {
				t.Errorf("CPI %d failed with untyped error: %v", r.Seq, r.Err)
			}
			answered++
		case <-deadline:
			t.Fatalf("only %d of %d pending CPIs answered after the kill; the rest hang", answered, n)
		}
	}
	// The reader noticed the dead connection; the channel must now close.
	select {
	case _, ok := <-cl.Results():
		if ok {
			t.Error("extra result after all pending CPIs were answered")
		}
	case <-time.After(5 * time.Second):
		t.Error("Results did not close after the connection died")
	}
	// A killed server must also settle its own books: nothing in flight.
	if st := srv.Stats(); st.InFlight != 0 {
		t.Errorf("in_flight = %d after Kill, want 0", st.InFlight)
	}
}

// TestDialFailsFastWhenHandshakeStalls pins the connect-timeout path: a
// server that accepts the TCP connection but never answers the hello (a
// black-holed or wedged process) must fail the Dial within the dial
// timeout, not hang the caller.
func TestDialFailsFastWhenHandshakeStalls(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the connection open, never respond
		}
	}()
	s := radar.SmallTestScenario()
	start := time.Now()
	_, err = Dial(ln.Addr().String(), Options{Dims: s.Dims, DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial to a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Dial took %v to fail; the handshake deadline did not bite", elapsed)
	}
}

func TestServeStatsEndpoint(t *testing.T) {
	srv := startServer(t, testServerConfig())
	hs := httptest.NewServer(srv.StatsHandler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %q", resp.StatusCode, body)
	}
	for _, want := range []string{`"max_in_flight"`, `"replicas"`, `"rejected"`,
		`"io"`, `"source_stalls"`, `"readahead_ready"`, `"read_ahead"`, `"decode_workers"`} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("stats JSON lacks %s: %s", want, body)
		}
	}
	// The per-replica I/O view must carry live knob values, not zeros.
	if st := srv.Stats(); len(st.Replicas) == 0 || st.Replicas[0].IO.ReadAhead < 1 || st.Replicas[0].IO.DecodeWorkers < 1 {
		t.Errorf("replica IO snapshot not live: %+v", srv.Stats().Replicas)
	}

	srv.draining.Store(true)
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	srv.draining.Store(false)
}
