package serve

import (
	"testing"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/radar"
)

// TestStreamingIngestMatchesReferenceWithoutFileImage is the streaming
// round trip: a streaming client's detections must be byte-identical to
// the sequential reference, and the server must never have buffered a
// whole-cube file image on the ingest path — the largest streaming frame
// it saw stays bounded by one chunk plus its 16-byte prefix.
func TestStreamingIngestMatchesReferenceWithoutFileImage(t *testing.T) {
	const n = 8
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1 // one pipeline => submission order is the weight chain
	srv := startServer(t, cfg)
	cl := dialTest(t, srv, Options{Streaming: true})

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cube.ParseHeader(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	want := referenceDetections(t, cfg.Params, s, n)
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed: %v", r.Seq, r.Err)
		}
		if !sameDetections(r.Detections, want[k]) {
			t.Errorf("CPI %d: streamed ingest diverged from the sequential reference", k)
		}
	}

	st := srv.Stats()
	if st.StreamedCPIs != n {
		t.Errorf("streamed_cpis = %d, want %d", st.StreamedCPIs, n)
	}
	if wantChunks := int64(n * h.Chunks()); st.StreamedChunks != wantChunks {
		t.Errorf("streamed_chunks = %d, want %d", st.StreamedChunks, wantChunks)
	}
	// The no-file-image bound: every streaming-ingest frame fits one chunk
	// plus its prefix — a buffered cube image would be the whole frame.
	if max := st.StreamMaxFrameBytes; max > int64(chunkPrefixLen+testChunkSize) {
		t.Errorf("largest streaming frame was %d bytes, want <= %d (one chunk + prefix)",
			max, chunkPrefixLen+testChunkSize)
	}
	if max := st.StreamMaxFrameBytes; max >= int64(len(frames[0])) {
		t.Errorf("largest streaming frame (%d bytes) is a whole file image (%d bytes)",
			max, len(frames[0]))
	}
	if st.RepairedFrames != 0 || st.Rejected["corrupt"] != 0 {
		t.Errorf("clean streaming run shows repairs: %+v", st)
	}
}

// TestStreamingRepairsCorruptChunks injects deterministic wire corruption
// under streaming ingest: every CPI must still come back, repaired through
// chunk re-sends of exactly the corrupt chunks, with detections matching
// the sequential reference.
func TestStreamingRepairsCorruptChunks(t *testing.T) {
	const n = 20
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1
	cfg.RepairRounds = 8
	srv := startServer(t, cfg)
	cl := dialTest(t, srv, Options{
		Streaming: true,
		Faults:    &pfs.FaultPlan{Seed: 7, CorruptRate: 0.25},
	})

	frames, err := radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceDetections(t, cfg.Params, s, n)
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for k, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed: %v", r.Seq, r.Err)
		}
		if !sameDetections(r.Detections, want[k]) {
			t.Errorf("CPI %d: repaired streamed CPI diverged from the reference", k)
		}
	}
	_, _, injected := cl.RepairStats()
	if injected == 0 {
		t.Fatal("fault plan injected nothing; the test exercised no repairs")
	}
	st := srv.Stats()
	if st.RepairedFrames == 0 || st.ChunkResends == 0 || st.RepairReqs == 0 {
		t.Errorf("no streaming repairs recorded despite %d injected corruptions: %+v", injected, st)
	}
	if st.Rejected["corrupt"] != 0 {
		t.Errorf("%d CPIs rejected corrupt; repair should have recovered all", st.Rejected["corrupt"])
	}
	if cl.RepairedFrames() == 0 {
		t.Error("client saw no repaired frames")
	}
}

// TestStreamingProducerDeathMidCubeRecovers kills a producer between its
// header and its last chunk: the replica must drop exactly that CPI
// (admission token returned, slab recycled, counted orphaned) and keep
// serving other producers, with the source's slab pool staying bounded.
func TestStreamingProducerDeathMidCubeRecovers(t *testing.T) {
	s := radar.SmallTestScenario()
	cfg := testServerConfig()
	cfg.Replicas = 1
	srv := startServer(t, cfg)

	frames, err := radar.EncodeCPIs(s, 1, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cube.ParseHeader(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	// Hand-roll a streaming submit that dies after three chunks.
	c := rawHandshake(t, srv)
	if err := writeFrame(c, fSubmitHdr, frames[0][:h.PayloadOffset()]); err != nil {
		t.Fatal(err)
	}
	payload := frames[0][h.PayloadOffset():]
	for i := 0; i < 3; i++ {
		lo, hi := h.ChunkSpan(i)
		var prefix [chunkPrefixLen]byte
		putChunkPrefix(prefix[:], h.Seq, i)
		if err := writeFrames(c, []frameSpans{{ftype: fChunk, spans: [][]byte{prefix[:], payload[lo:hi]}}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().StreamedChunks == 3 })
	c.Close() // producer dies mid-cube

	// The reader unwind must settle the CPI: token back, orphan counted.
	waitFor(t, 5*time.Second, func() bool {
		st := srv.Stats()
		return st.InFlight == 0 && st.Orphaned == 1
	})

	// The service keeps working for a healthy streaming producer.
	const n = 6
	cl := dialTest(t, srv, Options{Streaming: true})
	frames, err = radar.EncodeCPIs(s, n, testChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	results := submitAll(t, cl, frames)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("CPI %d failed after producer death: %v", r.Seq, r.Err)
		}
	}
	// The aborted publication's slab went back to the pool; allocations
	// stay bounded by the concurrent window, not one slab per CPI (and
	// certainly do not leak one per dead producer).
	if news := srv.replicas[0].src.PoolNews(); news > int64(2*cfg.maxInFlight()) {
		t.Errorf("replica slab pool allocated %d cubes for %d CPIs (max in flight %d)",
			news, n+1, cfg.maxInFlight())
	}
}
